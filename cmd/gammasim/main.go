// Command gammasim runs the paper's motivating application (§V.C):
// gamma correction of a grayscale image through a 6th-order Bernstein
// polynomial, computed exactly, by the electronic ReSC baseline and
// by the optical stochastic-computing unit. It reports PSNR against
// the exact result, the optical unit's laser energy, and the
// throughput advantage over a 100 MHz electronic implementation.
//
// Usage:
//
//	gammasim -gamma 0.45 -degree 6 -size 128 -stream 4096
//	gammasim -in photo.pgm -out corrected.pgm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	img "repro/internal/image"
)

func main() {
	gamma := flag.Float64("gamma", 0.45, "gamma exponent")
	degree := flag.Int("degree", 6, "Bernstein polynomial degree")
	size := flag.Int("size", 128, "synthetic image edge length (ignored with -in)")
	stream := flag.Int("stream", 4096, "stochastic stream length per gray level")
	spacing := flag.Float64("spacing", 0.3, "optical wavelength spacing in nm")
	inPath := flag.String("in", "", "input PGM (default: synthetic radial test image)")
	outPath := flag.String("out", "", "write the optically corrected PGM here")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	if err := run(*gamma, *degree, *size, *stream, *spacing, *inPath, *outPath, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gammasim:", err)
		os.Exit(1)
	}
}

func run(gamma float64, degree, size, stream int, spacing float64, inPath, outPath string, seed uint64) error {
	var src *img.Gray
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		src, err = img.ReadPGM(f)
		if err != nil {
			return err
		}
	} else {
		src = img.Radial(size, size)
	}
	fmt.Printf("input: %dx%d, gamma %.2f, degree %d, stream length %d\n", src.W, src.H, gamma, degree, stream)

	exact := img.GammaExact(src, gamma)
	ele, err := img.GammaReSC(src, gamma, degree, stream, seed)
	if err != nil {
		return err
	}
	opt, err := img.GammaOptical(src, gamma, degree, spacing, stream, seed+1)
	if err != nil {
		return err
	}

	fmt.Printf("electronic ReSC:  PSNR %.2f dB, MAE %.2f levels\n", img.PSNR(exact, ele), img.MeanAbsoluteError(exact, ele))
	fmt.Printf("optical SC unit:  PSNR %.2f dB, MAE %.2f levels\n", img.PSNR(exact, opt), img.MeanAbsoluteError(exact, opt))

	p, err := core.MRRFirst(core.MRRFirstSpec{Order: degree, WLSpacingNM: spacing})
	if err != nil {
		return err
	}
	e := core.ParamsEnergy(p)
	bitsPerPixel := float64(stream)
	fmt.Printf("optical energy:   %.2f pJ/bit -> %.2f nJ/pixel at %d-bit streams\n",
		e.TotalPJ(), e.TotalPJ()*bitsPerPixel/1e3, stream)
	fmt.Printf("throughput:       %.3g pixels/s at 1 Gb/s (%.0fx the 100 MHz electronic ReSC)\n",
		p.ThroughputBitsPerSec(stream), p.SpeedupVsElectronic(100))

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := opt.WritePGM(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}
