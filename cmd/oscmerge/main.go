// Command oscmerge assembles a sharded sweep: it merges the
// shard-tagged checkpoint snapshots that `oscbench -fig yield
// -checkpoint yield.json -shard k/n` legs write into one complete
// checkpoint, byte-identical to the snapshot an unsharded run would
// have saved — so a follow-up `oscbench -fig yield -checkpoint
// <merged> -resume` renders the study without recomputing a die.
//
// Usage:
//
//	oscmerge -o yield.json yield.shard0of3.json yield.shard1of3.json yield.shard2of3.json
//
// The merge fails closed on every distributed-run failure mode: a
// snapshot from a different study (content-hash key mismatch), two
// snapshots disagreeing on the same point (the determinism contract
// says shards of one key are bit-identical, so disagreement is
// corruption, not a tiebreak), and points no shard completed (resume
// the missing shard instead of shipping a gap). Overlapping points
// that agree byte-for-byte are fine — re-running a shard is a
// legitimate recovery — and are reported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dse"
)

func main() {
	out := flag.String("o", "", "output path for the merged checkpoint (required)")
	flag.Parse()
	if err := run(os.Stdout, *out, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "oscmerge:", err)
		os.Exit(1)
	}
}

// run merges the input snapshots into out and prints the contribution
// summary. Split from main so the fail-closed contract is testable.
func run(w io.Writer, out string, inputs []string) error {
	if out == "" {
		return fmt.Errorf("-o is required: the merged checkpoint path")
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no shard checkpoints to merge (pass them as arguments)")
	}
	rep, err := dse.MergeCheckpoints(out, inputs)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "merged %d/%d points into %s (key %s, seed %d)\n",
		rep.Merged, rep.N, out, rep.Key.Figure, rep.Key.Seed); err != nil {
		return err
	}
	for i, c := range rep.PerInput {
		if _, err := fmt.Fprintf(w, "  %s: %d point(s)\n", inputs[i], c); err != nil {
			return err
		}
	}
	if rep.Overlap > 0 {
		if _, err := fmt.Fprintf(w, "  %d overlapping point(s) agreed byte-for-byte\n", rep.Overlap); err != nil {
			return err
		}
	}
	return nil
}
