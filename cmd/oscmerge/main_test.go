package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/stochastic"
)

func testKey(n int) dse.CheckpointKey {
	return dse.CheckpointKey{Figure: "merge-cli-test", Config: "f(i)=derive(seed,i)", Seed: 7, N: n}
}

func testPoint(i int) float64 {
	return float64(stochastic.DeriveSeed(7, i)%1000) / 3.0
}

// writeShards runs the test sweep as a family of shard legs, the way
// oscbench's -shard legs would, returning the snapshot paths.
func writeShards(t *testing.T, dir string, total, shards int) []string {
	t.Helper()
	paths := make([]string, shards)
	for k := 0; k < shards; k++ {
		paths[k] = dse.ShardCheckpointPath(filepath.Join(dir, "ck.json"), k, shards)
		cp := dse.NewCheckpointer[float64](paths[k], 0, testKey(total))
		_, err := cp.Run(context.Background(), engine.Shard{K: k, N: shards, Inner: engine.Serial}, testPoint)
		if !errors.Is(err, engine.ErrShardRemainder) {
			t.Fatalf("shard %d/%d: err = %v, want ErrShardRemainder", k, shards, err)
		}
	}
	return paths
}

// TestRunMergesAndSummarizes: the happy path merges a complete shard
// family and reports per-input contributions.
func TestRunMergesAndSummarizes(t *testing.T) {
	dir := t.TempDir()
	paths := writeShards(t, dir, 11, 3)
	out := filepath.Join(dir, "merged.json")
	var buf bytes.Buffer
	if err := run(&buf, out, paths); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "merged 11/11 points") {
		t.Errorf("summary does not report the merge: %q", buf.String())
	}
	for _, p := range paths {
		if !strings.Contains(buf.String(), p) {
			t.Errorf("summary does not credit input %s: %q", p, buf.String())
		}
	}
	// The merged snapshot restores completely under the same key.
	cp := dse.NewCheckpointer[float64](out, 0, testKey(11))
	if restored, err := cp.Load(); err != nil || restored != 11 {
		t.Fatalf("merged checkpoint: restored=%d err=%v", restored, err)
	}
}

// TestRunFlagContract: a missing -o and an empty input list are loud
// errors before any file is touched.
func TestRunFlagContract(t *testing.T) {
	if err := run(&bytes.Buffer{}, "", []string{"a.json"}); err == nil || !strings.Contains(err.Error(), "-o") {
		t.Errorf("missing -o: err = %v", err)
	}
	if err := run(&bytes.Buffer{}, "out.json", nil); err == nil {
		t.Error("empty input list accepted")
	}
}

// TestRunFailsClosedOnGap: a family missing one shard refuses to merge
// and leaves no output file.
func TestRunFailsClosedOnGap(t *testing.T) {
	dir := t.TempDir()
	paths := writeShards(t, dir, 9, 3)
	out := filepath.Join(dir, "merged.json")
	err := run(&bytes.Buffer{}, out, paths[:2])
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("gapped merge: err = %v, want a missing-points error", err)
	}
	if _, statErr := os.Stat(out); !errors.Is(statErr, os.ErrNotExist) {
		t.Error("failed merge left an output file")
	}
}

// TestRunFailsClosedOnForeignShard: mixing in a snapshot of a
// different study is refused with the stale-checkpoint error.
func TestRunFailsClosedOnForeignShard(t *testing.T) {
	dir := t.TempDir()
	paths := writeShards(t, dir, 8, 2)
	foreign := filepath.Join(dir, "foreign.json")
	otherKey := testKey(8)
	otherKey.Seed++
	if _, err := dse.NewCheckpointer[float64](foreign, 0, otherKey).
		Run(context.Background(), engine.Serial, testPoint); err != nil {
		t.Fatal(err)
	}
	err := run(&bytes.Buffer{}, filepath.Join(dir, "merged.json"), []string{paths[0], foreign, paths[1]})
	if !errors.Is(err, dse.ErrStaleCheckpoint) {
		t.Fatalf("foreign shard: err = %v, want ErrStaleCheckpoint", err)
	}
}

// TestRunFailsClosedOnDisagreement: two snapshots claiming the same
// point with different bytes name the point and refuse.
func TestRunFailsClosedOnDisagreement(t *testing.T) {
	dir := t.TempDir()
	paths := writeShards(t, dir, 6, 2)
	lying := filepath.Join(dir, "lying.json")
	cp := dse.NewCheckpointer[float64](lying, 0, testKey(6))
	if _, err := cp.Run(context.Background(), engine.Shard{K: 0, N: 2, Inner: engine.Serial}, func(i int) float64 {
		return testPoint(i) + 1
	}); !errors.Is(err, engine.ErrShardRemainder) {
		t.Fatal(err)
	}
	err := run(&bytes.Buffer{}, filepath.Join(dir, "merged.json"), append(paths, lying))
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("disagreeing merge: err = %v, want a disagreement error", err)
	}
}
