package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/dse"
	"repro/internal/figures"
)

func runErr(t *testing.T, fig string, cfg figures.Config) error {
	t.Helper()
	return run(context.Background(), io.Discard, fig, cfg, 0, false)
}

// TestCheckpointFlagValidation pins the flag contract: -resume without
// a snapshot file and checkpoint flags on non-yield figures are loud
// errors, never silent no-ops.
func TestCheckpointFlagValidation(t *testing.T) {
	base := figures.Defaults()

	cfg := base
	cfg.Resume = true
	err := runErr(t, "yield", cfg)
	if err == nil || !strings.Contains(err.Error(), "-resume needs a -checkpoint") {
		t.Errorf("-resume without -checkpoint: err = %v, want a -checkpoint complaint", err)
	}

	for _, fig := range []string{"5a", "waterfall", "all"} {
		cfg = base
		cfg.Checkpoint = "snap.json"
		err = runErr(t, fig, cfg)
		if err == nil || !strings.Contains(err.Error(), "-fig yield only") {
			t.Errorf("-checkpoint with -fig %s: err = %v, want a yield-only complaint", fig, err)
		}
		if err != nil && !strings.Contains(err.Error(), fig) {
			t.Errorf("-checkpoint with -fig %s: err %q does not name the offending figure", fig, err)
		}
	}

	// Both flags together on a non-yield figure: still one clear error.
	cfg = base
	cfg.Checkpoint = "snap.json"
	cfg.Resume = true
	if err = runErr(t, "edge", cfg); err == nil || !strings.Contains(err.Error(), "-fig yield only") {
		t.Errorf("-checkpoint -resume with -fig edge: err = %v", err)
	}
}

// TestParseShard pins the -shard spec grammar: k/n with 0 <= k < n,
// empty for unsharded, everything else a loud parse error.
func TestParseShard(t *testing.T) {
	if k, n, err := parseShard(""); k != 0 || n != 0 || err != nil {
		t.Errorf(`parseShard("") = %d, %d, %v, want 0, 0, nil`, k, n, err)
	}
	if k, n, err := parseShard("2/5"); k != 2 || n != 5 || err != nil {
		t.Errorf(`parseShard("2/5") = %d, %d, %v, want 2, 5, nil`, k, n, err)
	}
	if k, n, err := parseShard("0/1"); k != 0 || n != 1 || err != nil {
		t.Errorf(`parseShard("0/1") = %d, %d, %v, want 0, 1, nil`, k, n, err)
	}
	for _, bad := range []string{"3/3", "-1/2", "a/b", "1", "1/", "/3", "0/0", "1/2/3", "0.5/2"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Errorf("parseShard(%q) accepted a malformed spec", bad)
		} else if !strings.Contains(err.Error(), bad) {
			t.Errorf("parseShard(%q) error %q does not quote the spec", bad, err)
		}
	}
}

// TestShardFlagValidation: -shard without -checkpoint and -shard on
// non-yield figures are loud errors, and an out-of-range spec reaching
// the config layer is rejected there too.
func TestShardFlagValidation(t *testing.T) {
	base := figures.Defaults()

	cfg := base
	cfg.ShardK, cfg.ShardN = 0, 3
	err := runErr(t, "yield", cfg)
	if err == nil || !strings.Contains(err.Error(), "needs -checkpoint") {
		t.Errorf("-shard without -checkpoint: err = %v, want a -checkpoint complaint", err)
	}

	for _, fig := range []string{"5a", "all"} {
		cfg = base
		cfg.ShardK, cfg.ShardN = 1, 3
		cfg.Checkpoint = "snap.json"
		err = runErr(t, fig, cfg)
		if err == nil || !strings.Contains(err.Error(), "-fig yield only") {
			t.Errorf("-shard with -fig %s: err = %v, want a yield-only complaint", fig, err)
		}
	}

	// A spec that bypassed parseShard (e.g. a future caller building
	// Config directly) still fails Config.Validate.
	cfg = base
	cfg.ShardK, cfg.ShardN = 3, 3
	cfg.Checkpoint = "snap.json"
	if err = runErr(t, "yield", cfg); err == nil || !strings.Contains(err.Error(), "-shard") {
		t.Errorf("out-of-range shard config: err = %v, want a -shard complaint", err)
	}
}

// TestUnknownFigureListsSortedKeys pins the satellite contract that
// every unknown-name error enumerates the valid names in sorted order.
func TestUnknownFigureListsSortedKeys(t *testing.T) {
	err := runErr(t, "nope", figures.Defaults())
	if err == nil {
		t.Fatal("unknown figure did not error")
	}
	keys := figures.SortedKeys()
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("figures.SortedKeys() is not sorted: %v", keys)
	}
	want := strings.Join(keys, ", ")
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not list sorted keys %q", err, want)
	}
}

// TestShardMergeResumeByteIdentical is the CI shard-merge job
// in-process: three -shard legs of the yield figure, an oscmerge-style
// merge of their snapshots, and a -resume render of the merged
// checkpoint must produce output byte-identical to an unsharded run —
// with zero dies recomputed (the resumed line says N/N).
func TestShardMergeResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := figures.Defaults()
	cfg.Samples = 3 // 4 sigmas x 3 dies: small but sharded unevenly over 3

	var ref bytes.Buffer
	if err := run(context.Background(), &ref, "yield", cfg, 0, false); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(dir, "yield.json")
	shardPaths := make([]string, 3)
	for k := range shardPaths {
		leg := cfg
		leg.Checkpoint = ckpt
		leg.ShardK, leg.ShardN = k, 3
		var out bytes.Buffer
		if err := run(context.Background(), &out, "yield", leg, 0, false); err != nil {
			t.Fatalf("shard %d/3 leg: %v", k, err)
		}
		if !strings.Contains(out.String(), fmt.Sprintf("shard %d/3:", k)) {
			t.Errorf("shard leg %d did not report its progress: %q", k, out.String())
		}
		shardPaths[k] = dse.ShardCheckpointPath(ckpt, k, 3)
	}

	if _, err := dse.MergeCheckpoints(ckpt, shardPaths); err != nil {
		t.Fatal(err)
	}

	res := cfg
	res.Checkpoint = ckpt
	res.Resume = true
	var merged bytes.Buffer
	if err := run(context.Background(), &merged, "yield", res, 0, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(merged.String(), "resumed ") {
		t.Fatalf("merged render did not resume: %q", merged.String())
	}
	// Strip the resumed line (the only extra output of a resume), then
	// the rest must be byte-identical to the unsharded render.
	var clean strings.Builder
	for _, line := range strings.SplitAfter(merged.String(), "\n") {
		if strings.HasPrefix(line, "resumed ") {
			if !strings.Contains(line, "resumed 12/12 dies") {
				t.Errorf("merged resume recomputed dies: %q", line)
			}
			continue
		}
		clean.WriteString(line)
	}
	if clean.String() != ref.String() {
		t.Errorf("merged render diverges from unsharded run\n got: %q\nwant: %q", clean.String(), ref.String())
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := figures.Defaults()
	cfg.GridN = 1
	if err := runErr(t, "6a", cfg); err == nil {
		t.Error("grid 1 accepted")
	}
	if err := run(context.Background(), io.Discard, "5a", figures.Defaults(), -1, false); err == nil {
		t.Error("workers -1 accepted")
	}
}
