package main

import (
	"context"
	"io"
	"sort"
	"strings"
	"testing"

	"repro/internal/figures"
)

func runErr(t *testing.T, fig string, cfg figures.Config) error {
	t.Helper()
	return run(context.Background(), io.Discard, fig, cfg, 0, false)
}

// TestCheckpointFlagValidation pins the flag contract: -resume without
// a snapshot file and checkpoint flags on non-yield figures are loud
// errors, never silent no-ops.
func TestCheckpointFlagValidation(t *testing.T) {
	base := figures.Defaults()

	cfg := base
	cfg.Resume = true
	err := runErr(t, "yield", cfg)
	if err == nil || !strings.Contains(err.Error(), "-resume needs a -checkpoint") {
		t.Errorf("-resume without -checkpoint: err = %v, want a -checkpoint complaint", err)
	}

	for _, fig := range []string{"5a", "waterfall", "all"} {
		cfg = base
		cfg.Checkpoint = "snap.json"
		err = runErr(t, fig, cfg)
		if err == nil || !strings.Contains(err.Error(), "-fig yield only") {
			t.Errorf("-checkpoint with -fig %s: err = %v, want a yield-only complaint", fig, err)
		}
		if err != nil && !strings.Contains(err.Error(), fig) {
			t.Errorf("-checkpoint with -fig %s: err %q does not name the offending figure", fig, err)
		}
	}

	// Both flags together on a non-yield figure: still one clear error.
	cfg = base
	cfg.Checkpoint = "snap.json"
	cfg.Resume = true
	if err = runErr(t, "edge", cfg); err == nil || !strings.Contains(err.Error(), "-fig yield only") {
		t.Errorf("-checkpoint -resume with -fig edge: err = %v", err)
	}
}

// TestUnknownFigureListsSortedKeys pins the satellite contract that
// every unknown-name error enumerates the valid names in sorted order.
func TestUnknownFigureListsSortedKeys(t *testing.T) {
	err := runErr(t, "nope", figures.Defaults())
	if err == nil {
		t.Fatal("unknown figure did not error")
	}
	keys := figures.SortedKeys()
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("figures.SortedKeys() is not sorted: %v", keys)
	}
	want := strings.Join(keys, ", ")
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not list sorted keys %q", err, want)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := figures.Defaults()
	cfg.GridN = 1
	if err := runErr(t, "6a", cfg); err == nil {
		t.Error("grid 1 accepted")
	}
	if err := run(context.Background(), io.Discard, "5a", figures.Defaults(), -1, false); err == nil {
		t.Error("workers -1 accepted")
	}
}
