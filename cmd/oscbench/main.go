// Command oscbench regenerates the evaluation figures of "Stochastic
// Computing with Integrated Optics" (DATE 2019) as text tables.
//
// Usage:
//
//	oscbench -fig all          # every figure and the anchor summary
//	oscbench -fig 5a|5b|5c     # Fig. 5 worked examples and bands
//	oscbench -fig 6a|6b|6c     # probe-power design-space studies
//	oscbench -fig 7a|7b        # energy studies
//	oscbench -fig summary      # in-text anchors, paper vs measured
//	oscbench -fig tradeoff     # throughput-accuracy extension (§V.B)
//	oscbench -fig sweep        # noiseless accuracy vs stream length (batch engine)
//	oscbench -fig noise        # Monte-Carlo noise study (batched noisy engine)
//	oscbench -fig edge         # image PSNR vs stream length (packed tiled engine)
//	oscbench -fig waterfall    # BER waterfall, parallel over probe powers
//	oscbench -fig trace        # pulse-gated transient waveform (word-parallel)
//	oscbench -fig video        # gamma video batch (cross-frame LUT cache)
//	oscbench -fig yield        # checkpointable process-variation yield study
//	oscbench -fig ablation     # ring linewidth / APD / parallel array / link budget
//
// The registry itself lives in internal/figures, shared with the
// oscserve HTTP service. Every sweep dispatches on a deterministic
// evaluation engine (internal/engine), so figures are identical on any
// engine at any worker count:
//
//	oscbench -engine serial    # run every sweep on the serial engine
//	oscbench -engine parallel  # run on the word-parallel engine (default)
//	oscbench -workers 4        # cap the parallel worker pool at 4
//	oscbench -timing           # print per-figure wall time
//	oscbench -grid 12          # denser Fig 6(a) grid (>= 2)
//	oscbench -sweep 21         # denser Fig 7(a) spacing sweep (>= 2)
//
// Long sweeps are interruptible: SIGINT (or -timeout) cancels at the
// next item boundary and reports a typed partial-result error instead
// of crashing. The yield study can additionally snapshot to disk and
// resume, reassembling bit-identical results:
//
//	oscbench -fig yield -samples 500 -checkpoint yield.json
//	^C                         # interrupt; completed dies are on disk
//	oscbench -fig yield -samples 500 -checkpoint yield.json -resume
//
// The yield study also shards across processes or machines: -shard k/n
// runs only the dies shard k of n owns (round-robin by die index) into
// a shard-tagged snapshot (yield.json -> yield.shard<k>of<n>.json).
// Because every die derives its randomness from the die index alone,
// the shards' snapshots merge (cmd/oscmerge) into a checkpoint
// byte-identical to an unsharded run's, which -resume then renders
// without recomputing anything:
//
//	oscbench -fig yield -checkpoint yield.json -shard 0/3   # one per host
//	oscbench -fig yield -checkpoint yield.json -shard 1/3
//	oscbench -fig yield -checkpoint yield.json -shard 2/3
//	oscmerge -o yield.json yield.shard*of3.json
//	oscbench -fig yield -checkpoint yield.json -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate ("+strings.Join(figures.Keys(), ", ")+", all)")
	gridN := flag.Int("grid", figures.Defaults().GridN, "grid resolution for Fig 6(a) (>= 2)")
	sweepN := flag.Int("sweep", figures.Defaults().SweepN, "sweep points for Fig 7(a) (>= 2)")
	workers := flag.Int("workers", 0, "cap the parallel worker pool (0 = all cores)")
	engName := flag.String("engine", "", "evaluation engine for every sweep ("+strings.Join(engine.Names(), ", ")+"; default: "+engine.Default().Name()+")")
	timing := flag.Bool("timing", false, "print per-figure wall time")
	timeout := flag.Duration("timeout", 0, "cancel the run after this long (0 = no deadline)")
	samples := flag.Int("samples", figures.Defaults().Samples, "dies per sigma for -fig yield (>= 1)")
	checkpoint := flag.String("checkpoint", "", "snapshot file for -fig yield (enables interrupt/resume)")
	resume := flag.Bool("resume", false, "resume -fig yield from the -checkpoint file")
	shard := flag.String("shard", "", "run only shard k of n of -fig yield as k/n (e.g. 0/3; needs -checkpoint, merge with oscmerge)")
	flag.Parse()

	shardK, shardN, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oscbench:", err)
		os.Exit(1)
	}

	if *engName != "" {
		e, err := engine.Get(*engName)
		if err == nil {
			err = engine.SetDefault(e)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "oscbench:", err)
			os.Exit(1)
		}
	}

	// SIGINT cancels the sweep context; conforming dispatch paths stop
	// at the next item boundary and surface a *engine.Partial. A second
	// SIGINT (after stop()) kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := figures.Config{
		GridN:      *gridN,
		SweepN:     *sweepN,
		Samples:    *samples,
		Checkpoint: *checkpoint,
		Resume:     *resume,
		ShardK:     shardK,
		ShardN:     shardN,
	}
	if err := run(ctx, os.Stdout, *fig, cfg, *workers, *timing); err != nil {
		fmt.Fprintln(os.Stderr, "oscbench:", err)
		os.Exit(1)
	}
}

// parseShard parses a -shard spec: "" means unsharded, otherwise "k/n"
// with 0 <= k < n. Range errors phrase the constraint for flag users.
func parseShard(spec string) (k, n int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	lhs, rhs, found := strings.Cut(spec, "/")
	if !found {
		return 0, 0, fmt.Errorf("-shard %q: want k/n (e.g. 0/3)", spec)
	}
	k, err = strconv.Atoi(lhs)
	if err != nil {
		return 0, 0, fmt.Errorf("-shard %q: shard index %q is not an integer", spec, lhs)
	}
	n, err = strconv.Atoi(rhs)
	if err != nil {
		return 0, 0, fmt.Errorf("-shard %q: shard count %q is not an integer", spec, rhs)
	}
	if n < 1 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("-shard %q: shard index must be in [0, n) with n >= 1", spec)
	}
	return k, n, nil
}

// run validates the flag set and renders the selected figure(s). Split
// from main so the validation contract (checkpoint flags only with
// -fig yield, -resume only with -checkpoint, unknown figures listing
// the sorted registry) is testable.
func run(ctx context.Context, w io.Writer, fig string, cfg figures.Config, workers int, timing bool) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if workers < 0 {
		return fmt.Errorf("-workers %d: need >= 0", workers)
	}
	if cfg.Resume && cfg.Checkpoint == "" {
		return fmt.Errorf("-resume needs a -checkpoint file naming the snapshot to load")
	}
	if (cfg.Checkpoint != "" || cfg.Resume) && fig != "yield" {
		return fmt.Errorf("-checkpoint/-resume apply to -fig yield only (got -fig %s); they would be silently ignored otherwise", fig)
	}
	if cfg.ShardN > 0 {
		if fig != "yield" {
			return fmt.Errorf("-shard applies to -fig yield only (got -fig %s); other figures do not shard yet", fig)
		}
		if cfg.Checkpoint == "" {
			return fmt.Errorf("-shard %d/%d needs -checkpoint: a shard's output is its snapshot file, merged later with oscmerge", cfg.ShardK, cfg.ShardN)
		}
	}
	if workers > 0 {
		// The worker pool sizes itself from GOMAXPROCS; capping it here
		// bounds every sweep's parallelism. Results are unaffected: all
		// sweeps are deterministic by index.
		runtime.GOMAXPROCS(workers)
	}

	any := false
	for _, f := range figures.All() {
		if fig != "all" && fig != f.Key {
			continue
		}
		any = true
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stopping before %s: %w", f.Key, err)
		}
		if _, err := fmt.Fprintf(w, "\n==== %s ====\n\n", f.Title); err != nil {
			return err
		}
		start := time.Now()
		if err := f.Render(ctx, w, cfg); err != nil {
			return err
		}
		if timing {
			if _, err := fmt.Fprintf(w, "[%s: %v]\n", f.Key, time.Since(start).Round(time.Microsecond)); err != nil {
				return err
			}
		}
	}
	if !any {
		return fmt.Errorf("unknown figure %q (available: %s, all)", fig, strings.Join(figures.SortedKeys(), ", "))
	}
	return nil
}
