// Command oscbench regenerates the evaluation figures of "Stochastic
// Computing with Integrated Optics" (DATE 2019) as text tables.
//
// Usage:
//
//	oscbench -fig all          # every figure and the anchor summary
//	oscbench -fig 5a|5b|5c     # Fig. 5 worked examples and bands
//	oscbench -fig 6a|6b|6c     # probe-power design-space studies
//	oscbench -fig 7a|7b        # energy studies
//	oscbench -fig summary      # in-text anchors, paper vs measured
//	oscbench -fig tradeoff     # throughput-accuracy extension (§V.B)
//	oscbench -fig sweep        # noiseless accuracy vs stream length (batch engine)
//	oscbench -fig noise        # Monte-Carlo noise study (batched noisy engine)
//	oscbench -fig edge         # image PSNR vs stream length (packed tiled engine)
//	oscbench -fig ablation     # ring linewidth / APD / parallel array / link budget
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/stochastic"
	"repro/internal/transient"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5a, 5b, 5c, 6a, 6b, 6c, 7a, 7b, summary, tradeoff, sweep, noise, edge, ablation, all")
	gridN := flag.Int("grid", 6, "grid resolution for Fig 6(a)")
	sweepN := flag.Int("sweep", 11, "sweep points for Fig 7(a)")
	flag.Parse()

	if err := run(*fig, *gridN, *sweepN); err != nil {
		fmt.Fprintln(os.Stderr, "oscbench:", err)
		os.Exit(1)
	}
}

func run(fig string, gridN, sweepN int) error {
	w := os.Stdout
	section := func(name string) { fmt.Fprintf(w, "\n==== %s ====\n\n", name) }

	want := func(name string) bool { return fig == "all" || fig == name }

	any := false
	if want("5a") {
		any = true
		section("Fig 5(a)")
		if err := dse.RenderFig5Case(w, dse.Fig5A()); err != nil {
			return err
		}
	}
	if want("5b") {
		any = true
		section("Fig 5(b)")
		if err := dse.RenderFig5Case(w, dse.Fig5B()); err != nil {
			return err
		}
	}
	if want("5c") {
		any = true
		section("Fig 5(c)")
		if err := dse.RenderFig5C(w, dse.Fig5C()); err != nil {
			return err
		}
	}
	if want("6a") {
		any = true
		section("Fig 6(a)")
		if err := dse.RenderFig6A(w, dse.Fig6A(gridN, gridN)); err != nil {
			return err
		}
	}
	if want("6b") {
		any = true
		section("Fig 6(b)")
		pts, err := dse.Fig6B([]float64{1e-2, 1e-4, 1e-6})
		if err != nil {
			return err
		}
		if err := dse.RenderFig6B(w, pts); err != nil {
			return err
		}
	}
	if want("6c") {
		any = true
		section("Fig 6(c)")
		if err := dse.RenderFig6C(w, dse.Fig6C()); err != nil {
			return err
		}
	}
	if want("7a") {
		any = true
		section("Fig 7(a)")
		series, err := dse.Fig7A([]int{2, 4, 6}, sweepN)
		if err != nil {
			return err
		}
		if err := dse.RenderFig7A(w, series); err != nil {
			return err
		}
		fmt.Fprintln(w, "\nn=2 curves (chart):")
		chartPts := core.NewEnergyModel(2).Sweep(0.11, 0.3, 48)
		if err := dse.RenderEnergyChartASCII(w, chartPts, 96, 18, 70); err != nil {
			return err
		}
		fmt.Fprintln(w)
		profile, err := dse.ApplicationProfile()
		if err != nil {
			return err
		}
		if err := dse.RenderApplicationProfile(w, profile); err != nil {
			return err
		}
	}
	if want("7b") {
		any = true
		section("Fig 7(b)")
		rows, err := dse.Fig7B([]int{2, 4, 8, 12, 16})
		if err != nil {
			return err
		}
		if err := dse.RenderFig7B(w, rows); err != nil {
			return err
		}
	}
	if want("summary") {
		any = true
		section("Summary")
		s, err := dse.Summary()
		if err != nil {
			return err
		}
		if err := dse.RenderSummary(w, s); err != nil {
			return err
		}
	}
	if want("tradeoff") {
		any = true
		section("Throughput-accuracy trade-off (§V.B extension)")
		if err := renderTradeoff(w); err != nil {
			return err
		}
	}
	if want("sweep") {
		any = true
		section("Accuracy vs stream length (word-parallel batch engine)")
		const sweepPoints = 17
		rows, err := dse.StreamLengthSweep([]int{64, 256, 1024, 4096, 16384}, sweepPoints, 9)
		if err != nil {
			return err
		}
		if err := dse.RenderStreamLengthSweep(w, rows, sweepPoints); err != nil {
			return err
		}
	}
	if want("noise") {
		any = true
		section("Monte-Carlo noise study (accuracy/BER vs length, probe power, sigma)")
		spec, err := dse.DefaultNoiseStudySpec()
		if err != nil {
			return err
		}
		rows, err := dse.NoiseStudy(spec)
		if err != nil {
			return err
		}
		if err := dse.RenderNoiseStudy(w, rows, spec); err != nil {
			return err
		}
	}
	if want("edge") {
		any = true
		section("Image PSNR vs stream length (packed tiled engine)")
		rows, err := dse.EdgeStudy([]int{64, 256, 1024, 4096}, 7)
		if err != nil {
			return err
		}
		if err := dse.RenderEdgeStudy(w, rows); err != nil {
			return err
		}
	}
	if want("ablation") {
		any = true
		section("Ablations")
		if err := dse.RenderRingSensitivity(w, dse.RingSensitivity([]float64{0.75, 1.0, 1.25, 1.5})); err != nil {
			return err
		}
		fmt.Fprintln(w)
		rows, err := dse.APDComparison(1e-6)
		if err != nil {
			return err
		}
		if err := dse.RenderAPDComparison(w, rows, 1e-6); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ps, err := dse.ParallelScaling([]int{1, 4, 16, 64}, 256)
		if err != nil {
			return err
		}
		if err := dse.RenderParallelScaling(w, ps, 256); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := core.MustCircuit(core.PaperParams()).ComputeLinkBudget().Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := renderYield(w); err != nil {
			return err
		}
	}
	if !any {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func renderYield(w *os.File) error {
	fmt.Fprintln(w, "Monte-Carlo process variation (ring resonance σ, 200 dies, BER target 1e-6):")
	p := core.PaperParams()
	t := dse.NewTable("resonance σ (nm)", "yield", "mean eye (mW)", "worst BER")
	for _, sigma := range []float64{0.01, 0.05, 0.1, 0.2} {
		r, err := core.AnalyzeYield(p, core.VariationSpec{
			RingResonanceSigmaNM: sigma,
			Samples:              200,
			Seed:                 99,
			TargetBER:            1e-6,
		})
		if err != nil {
			return err
		}
		t.AddRow(
			fmt.Sprintf("%.2f", sigma),
			fmt.Sprintf("%.1f%%", r.Yield*100),
			fmt.Sprintf("%.4f", r.MeanEyeMW),
			fmt.Sprintf("%.3g", r.WorstBER),
		)
	}
	return t.Render(w)
}

func renderTradeoff(w *os.File) error {
	// Size the paper circuit for a deliberately noisy 1e-2 link, then
	// show RMSE vs stream length with the implied throughput.
	p := core.PaperParams()
	p.ProbePowerMW = core.MustCircuit(p).MinProbePowerMW(1e-2)
	c, err := core.NewCircuit(p)
	if err != nil {
		return err
	}
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 7)
	if err != nil {
		return err
	}
	sim := transient.NewSimulator(u, 8)
	fmt.Fprintf(w, "probe sized for BER 1e-2: %.4f mW; analytic worst-case BER %.2e\n\n",
		p.ProbePowerMW, sim.AnalyticWorstCaseBER())
	pts, err := sim.AccuracyVsLength(0.5, []int{64, 256, 1024, 4096, 16384}, 30)
	if err != nil {
		return err
	}
	t := dse.NewTable("stream length", "RMSE", "results/s @1 Gb/s")
	for _, pt := range pts {
		t.AddRow(fmt.Sprint(pt.StreamLen), fmt.Sprintf("%.4f", pt.RMSE), fmt.Sprintf("%.3g", pt.ThroughputResultsPerSec))
	}
	return t.Render(w)
}
