// Command oscbench regenerates the evaluation figures of "Stochastic
// Computing with Integrated Optics" (DATE 2019) as text tables.
//
// Usage:
//
//	oscbench -fig all          # every figure and the anchor summary
//	oscbench -fig 5a|5b|5c     # Fig. 5 worked examples and bands
//	oscbench -fig 6a|6b|6c     # probe-power design-space studies
//	oscbench -fig 7a|7b        # energy studies
//	oscbench -fig summary      # in-text anchors, paper vs measured
//	oscbench -fig tradeoff     # throughput-accuracy extension (§V.B)
//	oscbench -fig sweep        # noiseless accuracy vs stream length (batch engine)
//	oscbench -fig noise        # Monte-Carlo noise study (batched noisy engine)
//	oscbench -fig edge         # image PSNR vs stream length (packed tiled engine)
//	oscbench -fig waterfall    # BER waterfall, parallel over probe powers
//	oscbench -fig trace        # pulse-gated transient waveform (word-parallel)
//	oscbench -fig video        # gamma video batch (cross-frame LUT cache)
//	oscbench -fig ablation     # ring linewidth / APD / parallel array / link budget
//
// Every sweep dispatches on a deterministic evaluation engine
// (internal/engine), so figures are identical on any engine at any
// worker count:
//
//	oscbench -engine serial    # run every sweep on the serial engine
//	oscbench -engine parallel  # run on the word-parallel engine (default)
//	oscbench -workers 4        # cap the parallel worker pool at 4
//	oscbench -timing           # print per-figure wall time
//	oscbench -grid 12          # denser Fig 6(a) grid (>= 2)
//	oscbench -sweep 21         # denser Fig 7(a) spacing sweep (>= 2)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	img "repro/internal/image"
	"repro/internal/stochastic"
	"repro/internal/transient"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5a, 5b, 5c, 6a, 6b, 6c, 7a, 7b, summary, tradeoff, sweep, noise, edge, waterfall, trace, video, ablation, all")
	gridN := flag.Int("grid", 6, "grid resolution for Fig 6(a) (>= 2)")
	sweepN := flag.Int("sweep", 11, "sweep points for Fig 7(a) (>= 2)")
	workers := flag.Int("workers", 0, "cap the parallel worker pool (0 = all cores)")
	engName := flag.String("engine", "", "evaluation engine for every sweep ("+strings.Join(engine.Names(), ", ")+"; default: "+engine.Default().Name()+")")
	timing := flag.Bool("timing", false, "print per-figure wall time")
	flag.Parse()

	if *engName != "" {
		e, err := engine.Get(*engName)
		if err == nil {
			err = engine.SetDefault(e)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "oscbench:", err)
			os.Exit(1)
		}
	}
	if err := run(os.Stdout, *fig, *gridN, *sweepN, *workers, *timing); err != nil {
		fmt.Fprintln(os.Stderr, "oscbench:", err)
		os.Exit(1)
	}
}

// figure is one renderable section: its -fig key, display title and
// generator.
type figure struct {
	key, title string
	render     func(w io.Writer, gridN, sweepN int) error
}

// figures lists every section in -fig all order.
var figures = []figure{
	{"5a", "Fig 5(a)", func(w io.Writer, _, _ int) error {
		return dse.RenderFig5Case(w, dse.Fig5A())
	}},
	{"5b", "Fig 5(b)", func(w io.Writer, _, _ int) error {
		return dse.RenderFig5Case(w, dse.Fig5B())
	}},
	{"5c", "Fig 5(c)", func(w io.Writer, _, _ int) error {
		return dse.RenderFig5C(w, dse.Fig5C())
	}},
	{"6a", "Fig 6(a)", func(w io.Writer, gridN, _ int) error {
		return dse.RenderFig6A(w, dse.Fig6A(gridN, gridN))
	}},
	{"6b", "Fig 6(b)", func(w io.Writer, _, _ int) error {
		pts, err := dse.Fig6B([]float64{1e-2, 1e-4, 1e-6})
		if err != nil {
			return err
		}
		return dse.RenderFig6B(w, pts)
	}},
	{"6c", "Fig 6(c)", func(w io.Writer, _, _ int) error {
		return dse.RenderFig6C(w, dse.Fig6C())
	}},
	{"7a", "Fig 7(a)", renderFig7A},
	{"7b", "Fig 7(b)", func(w io.Writer, _, _ int) error {
		rows, err := dse.Fig7B([]int{2, 4, 8, 12, 16})
		if err != nil {
			return err
		}
		return dse.RenderFig7B(w, rows)
	}},
	{"summary", "Summary", func(w io.Writer, _, _ int) error {
		s, err := dse.Summary()
		if err != nil {
			return err
		}
		return dse.RenderSummary(w, s)
	}},
	{"tradeoff", "Throughput-accuracy trade-off (§V.B extension)", func(w io.Writer, _, _ int) error {
		return renderTradeoff(w)
	}},
	{"sweep", "Accuracy vs stream length (word-parallel batch engine)", func(w io.Writer, _, _ int) error {
		const sweepPoints = 17
		rows, err := dse.StreamLengthSweep([]int{64, 256, 1024, 4096, 16384}, sweepPoints, 9)
		if err != nil {
			return err
		}
		return dse.RenderStreamLengthSweep(w, rows, sweepPoints)
	}},
	{"noise", "Monte-Carlo noise study (accuracy/BER vs length, probe power, sigma)", func(w io.Writer, _, _ int) error {
		spec, err := dse.DefaultNoiseStudySpec()
		if err != nil {
			return err
		}
		rows, err := dse.NoiseStudy(spec)
		if err != nil {
			return err
		}
		return dse.RenderNoiseStudy(w, rows, spec)
	}},
	{"edge", "Image PSNR vs stream length (packed tiled engine)", func(w io.Writer, _, _ int) error {
		rows, err := dse.EdgeStudy([]int{64, 256, 1024, 4096}, 7)
		if err != nil {
			return err
		}
		return dse.RenderEdgeStudy(w, rows)
	}},
	{"waterfall", "BER waterfall (parallel over probe powers)", renderWaterfall},
	{"trace", "Transient waveform (word-parallel trace)", renderTrace},
	{"video", "Gamma video batch (cross-frame LUT cache)", renderVideo},
	{"ablation", "Ablations", renderAblations},
}

func run(w io.Writer, fig string, gridN, sweepN, workers int, timing bool) error {
	if gridN < 2 {
		return fmt.Errorf("-grid %d: need >= 2 points per axis", gridN)
	}
	if sweepN < 2 {
		return fmt.Errorf("-sweep %d: need >= 2 points", sweepN)
	}
	if workers < 0 {
		return fmt.Errorf("-workers %d: need >= 0", workers)
	}
	if workers > 0 {
		// The worker pool sizes itself from GOMAXPROCS; capping it here
		// bounds every sweep's parallelism. Results are unaffected: all
		// sweeps are deterministic by index.
		runtime.GOMAXPROCS(workers)
	}

	any := false
	for _, f := range figures {
		if fig != "all" && fig != f.key {
			continue
		}
		any = true
		if _, err := fmt.Fprintf(w, "\n==== %s ====\n\n", f.title); err != nil {
			return err
		}
		start := time.Now()
		if err := f.render(w, gridN, sweepN); err != nil {
			return err
		}
		if timing {
			if _, err := fmt.Fprintf(w, "[%s: %v]\n", f.key, time.Since(start).Round(time.Microsecond)); err != nil {
				return err
			}
		}
	}
	if !any {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func renderFig7A(w io.Writer, _, sweepN int) error {
	series, err := dse.Fig7A([]int{2, 4, 6}, sweepN)
	if err != nil {
		return err
	}
	if err := dse.RenderFig7A(w, series); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nn=2 curves (chart):"); err != nil {
		return err
	}
	chartPts := core.NewEnergyModel(2).Sweep(0.11, 0.3, 48)
	if err := dse.RenderEnergyChartASCII(w, chartPts, 96, 18, 70); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	profile, err := dse.ApplicationProfile()
	if err != nil {
		return err
	}
	return dse.RenderApplicationProfile(w, profile)
}

func renderAblations(w io.Writer, _, _ int) error {
	if err := dse.RenderRingSensitivity(w, dse.RingSensitivity([]float64{0.75, 1.0, 1.25, 1.5})); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	rows, err := dse.APDComparison(1e-6)
	if err != nil {
		return err
	}
	if err := dse.RenderAPDComparison(w, rows, 1e-6); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	ps, err := dse.ParallelScaling([]int{1, 4, 16, 64}, 256)
	if err != nil {
		return err
	}
	if err := dse.RenderParallelScaling(w, ps, 256); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := core.MustCircuit(core.PaperParams()).ComputeLinkBudget().Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return renderYield(w)
}

func renderYield(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Monte-Carlo process variation (ring resonance σ, 200 dies, BER target 1e-6):"); err != nil {
		return err
	}
	p := core.PaperParams()
	t := dse.NewTable("resonance σ (nm)", "yield", "mean eye (mW)", "worst BER")
	for _, sigma := range []float64{0.01, 0.05, 0.1, 0.2} {
		r, err := core.AnalyzeYield(p, core.VariationSpec{
			RingResonanceSigmaNM: sigma,
			Samples:              200,
			Seed:                 99,
			TargetBER:            1e-6,
		})
		if err != nil {
			return err
		}
		t.AddRow(
			fmt.Sprintf("%.2f", sigma),
			fmt.Sprintf("%.1f%%", r.Yield*100),
			fmt.Sprintf("%.4f", r.MeanEyeMW),
			fmt.Sprintf("%.3g", r.WorstBER),
		)
	}
	return t.Render(w)
}

// renderWaterfall regenerates the BER waterfall: worst-case measured
// vs Eq. (9) analytic BER across probe powers sized for BER 1e-1 down
// to 1e-4. The points fan over the worker pool with per-point derived
// seeds, so the table is identical at any -workers setting.
func renderWaterfall(w io.Writer, _, _ int) error {
	base := core.PaperParams()
	c := core.MustCircuit(base)
	powers := []float64{
		c.MinProbePowerMW(1e-1),
		c.MinProbePowerMW(1e-2),
		c.MinProbePowerMW(1e-3),
		c.MinProbePowerMW(1e-4),
	}
	pts, err := transient.BERWaterfall(base, powers, 200_000, 29)
	if err != nil {
		return err
	}
	t := dse.NewTable("probe (mW)", "measured BER", "analytic BER")
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%.4f", p.ProbeMW), fmt.Sprintf("%.3g", p.MeasuredBER), fmt.Sprintf("%.3g", p.AnalyticBER))
	}
	return t.Render(w)
}

// renderTrace regenerates the pulse-gated transient waveform on a
// deliberately hot link (probe sized for BER 1e-3), one row per slot:
// the decision bit and the gated received-power peak. The trace runs
// word-parallel (core.Unit.Cycles + block noise) and is single-stream,
// so the table is identical at any -workers setting.
func renderTrace(w io.Writer, _, _ int) error {
	p := core.PaperParams()
	p.ProbePowerMW = core.MustCircuit(p).MinProbePowerMW(1e-3)
	c, err := core.NewCircuit(p)
	if err != nil {
		return err
	}
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 7)
	if err != nil {
		return err
	}
	sim := transient.NewSimulator(u, 8)
	const bits, spb = 16, 8
	tr, err := sim.Trace(0.5, bits, spb)
	if err != nil {
		return err
	}
	t := dse.NewTable("slot", "bit", "gated peak (mW)")
	for b := 0; b < bits; b++ {
		peak := 0.0
		for k := 0; k < spb; k++ {
			if pt := tr[b*spb+k]; pt.Gated && pt.ReceivedMW > peak {
				peak = pt.ReceivedMW
			}
		}
		t.AddRow(fmt.Sprint(b), fmt.Sprint(tr[b*spb].Bit), fmt.Sprintf("%.4f", peak))
	}
	return t.Render(w)
}

// renderVideo regenerates the gamma video batch: four synthetic
// frames corrected through one cached LUT (built once per recipe,
// applied per frame over the pool), scored against the exact
// transfer function.
func renderVideo(w io.Writer, _, _ int) error {
	frames := []*img.Gray{
		img.Gradient(48, 32),
		img.Radial(48, 32),
		img.Checkerboard(48, 32, 6, 40, 210),
		img.Gradient(48, 32),
	}
	var cache img.GammaLUTCache
	out, err := img.GammaVideo(frames, 0.45, 6, 0.3, 1024, 13, &cache)
	if err != nil {
		return err
	}
	t := dse.NewTable("frame", "PSNR vs exact (dB)", "MAE")
	for i, f := range out {
		exact := img.GammaExact(frames[i], 0.45)
		t.AddRow(fmt.Sprint(i), fmt.Sprintf("%.2f", img.PSNR(exact, f)), fmt.Sprintf("%.3f", img.MeanAbsoluteError(exact, f)))
	}
	return t.Render(w)
}

func renderTradeoff(w io.Writer) error {
	// Size the paper circuit for a deliberately noisy 1e-2 link, then
	// show RMSE vs stream length with the implied throughput.
	p := core.PaperParams()
	p.ProbePowerMW = core.MustCircuit(p).MinProbePowerMW(1e-2)
	c, err := core.NewCircuit(p)
	if err != nil {
		return err
	}
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 7)
	if err != nil {
		return err
	}
	sim := transient.NewSimulator(u, 8)
	if _, err := fmt.Fprintf(w, "probe sized for BER 1e-2: %.4f mW; analytic worst-case BER %.2e\n\n",
		p.ProbePowerMW, sim.AnalyticWorstCaseBER()); err != nil {
		return err
	}
	pts, err := sim.AccuracyVsLength(0.5, []int{64, 256, 1024, 4096, 16384}, 30)
	if err != nil {
		return err
	}
	t := dse.NewTable("stream length", "RMSE", "results/s @1 Gb/s")
	for _, pt := range pts {
		t.AddRow(fmt.Sprint(pt.StreamLen), fmt.Sprintf("%.4f", pt.RMSE), fmt.Sprintf("%.3g", pt.ThroughputResultsPerSec))
	}
	return t.Render(w)
}
