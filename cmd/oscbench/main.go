// Command oscbench regenerates the evaluation figures of "Stochastic
// Computing with Integrated Optics" (DATE 2019) as text tables.
//
// Usage:
//
//	oscbench -fig all          # every figure and the anchor summary
//	oscbench -fig 5a|5b|5c     # Fig. 5 worked examples and bands
//	oscbench -fig 6a|6b|6c     # probe-power design-space studies
//	oscbench -fig 7a|7b        # energy studies
//	oscbench -fig summary      # in-text anchors, paper vs measured
//	oscbench -fig tradeoff     # throughput-accuracy extension (§V.B)
//	oscbench -fig sweep        # noiseless accuracy vs stream length (batch engine)
//	oscbench -fig noise        # Monte-Carlo noise study (batched noisy engine)
//	oscbench -fig edge         # image PSNR vs stream length (packed tiled engine)
//	oscbench -fig waterfall    # BER waterfall, parallel over probe powers
//	oscbench -fig trace        # pulse-gated transient waveform (word-parallel)
//	oscbench -fig video        # gamma video batch (cross-frame LUT cache)
//	oscbench -fig yield        # checkpointable process-variation yield study
//	oscbench -fig ablation     # ring linewidth / APD / parallel array / link budget
//
// Every sweep dispatches on a deterministic evaluation engine
// (internal/engine), so figures are identical on any engine at any
// worker count:
//
//	oscbench -engine serial    # run every sweep on the serial engine
//	oscbench -engine parallel  # run on the word-parallel engine (default)
//	oscbench -workers 4        # cap the parallel worker pool at 4
//	oscbench -timing           # print per-figure wall time
//	oscbench -grid 12          # denser Fig 6(a) grid (>= 2)
//	oscbench -sweep 21         # denser Fig 7(a) spacing sweep (>= 2)
//
// Long sweeps are interruptible: SIGINT (or -timeout) cancels at the
// next item boundary and reports a typed partial-result error instead
// of crashing. The yield study can additionally snapshot to disk and
// resume, reassembling bit-identical results:
//
//	oscbench -fig yield -samples 500 -checkpoint yield.json
//	^C                         # interrupt; completed dies are on disk
//	oscbench -fig yield -samples 500 -checkpoint yield.json -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	img "repro/internal/image"
	"repro/internal/stochastic"
	"repro/internal/transient"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate ("+strings.Join(figureKeys(), ", ")+", all)")
	gridN := flag.Int("grid", 6, "grid resolution for Fig 6(a) (>= 2)")
	sweepN := flag.Int("sweep", 11, "sweep points for Fig 7(a) (>= 2)")
	workers := flag.Int("workers", 0, "cap the parallel worker pool (0 = all cores)")
	engName := flag.String("engine", "", "evaluation engine for every sweep ("+strings.Join(engine.Names(), ", ")+"; default: "+engine.Default().Name()+")")
	timing := flag.Bool("timing", false, "print per-figure wall time")
	timeout := flag.Duration("timeout", 0, "cancel the run after this long (0 = no deadline)")
	samples := flag.Int("samples", 200, "dies per sigma for -fig yield (>= 1)")
	checkpoint := flag.String("checkpoint", "", "snapshot file for -fig yield (enables interrupt/resume)")
	resume := flag.Bool("resume", false, "resume -fig yield from the -checkpoint file")
	flag.Parse()

	if *engName != "" {
		e, err := engine.Get(*engName)
		if err == nil {
			err = engine.SetDefault(e)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "oscbench:", err)
			os.Exit(1)
		}
	}

	// SIGINT cancels the sweep context; conforming dispatch paths stop
	// at the next item boundary and surface a *engine.Partial. A second
	// SIGINT (after stop()) kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := renderConfig{
		gridN:      *gridN,
		sweepN:     *sweepN,
		samples:    *samples,
		checkpoint: *checkpoint,
		resume:     *resume,
	}
	if err := run(ctx, os.Stdout, *fig, cfg, *workers, *timing); err != nil {
		fmt.Fprintln(os.Stderr, "oscbench:", err)
		os.Exit(1)
	}
}

// renderConfig carries the per-figure knobs into the renderers.
type renderConfig struct {
	gridN, sweepN int
	samples       int
	checkpoint    string
	resume        bool
}

// figure is one renderable section: its -fig key, display title and
// generator.
type figure struct {
	key, title string
	render     func(ctx context.Context, w io.Writer, cfg renderConfig) error
}

// figures lists every section in -fig all order.
var figures = []figure{
	{"5a", "Fig 5(a)", func(_ context.Context, w io.Writer, _ renderConfig) error {
		return dse.RenderFig5Case(w, dse.Fig5A())
	}},
	{"5b", "Fig 5(b)", func(_ context.Context, w io.Writer, _ renderConfig) error {
		return dse.RenderFig5Case(w, dse.Fig5B())
	}},
	{"5c", "Fig 5(c)", func(_ context.Context, w io.Writer, _ renderConfig) error {
		return dse.RenderFig5C(w, dse.Fig5C())
	}},
	{"6a", "Fig 6(a)", func(_ context.Context, w io.Writer, cfg renderConfig) error {
		return dse.RenderFig6A(w, dse.Fig6A(cfg.gridN, cfg.gridN))
	}},
	{"6b", "Fig 6(b)", func(_ context.Context, w io.Writer, _ renderConfig) error {
		pts, err := dse.Fig6B([]float64{1e-2, 1e-4, 1e-6})
		if err != nil {
			return err
		}
		return dse.RenderFig6B(w, pts)
	}},
	{"6c", "Fig 6(c)", func(_ context.Context, w io.Writer, _ renderConfig) error {
		return dse.RenderFig6C(w, dse.Fig6C())
	}},
	{"7a", "Fig 7(a)", renderFig7A},
	{"7b", "Fig 7(b)", func(_ context.Context, w io.Writer, _ renderConfig) error {
		rows, err := dse.Fig7B([]int{2, 4, 8, 12, 16})
		if err != nil {
			return err
		}
		return dse.RenderFig7B(w, rows)
	}},
	{"summary", "Summary", func(_ context.Context, w io.Writer, _ renderConfig) error {
		s, err := dse.Summary()
		if err != nil {
			return err
		}
		return dse.RenderSummary(w, s)
	}},
	{"tradeoff", "Throughput-accuracy trade-off (§V.B extension)", func(_ context.Context, w io.Writer, _ renderConfig) error {
		return renderTradeoff(w)
	}},
	{"sweep", "Accuracy vs stream length (word-parallel batch engine)", func(_ context.Context, w io.Writer, _ renderConfig) error {
		const sweepPoints = 17
		rows, err := dse.StreamLengthSweep([]int{64, 256, 1024, 4096, 16384}, sweepPoints, 9)
		if err != nil {
			return err
		}
		return dse.RenderStreamLengthSweep(w, rows, sweepPoints)
	}},
	{"noise", "Monte-Carlo noise study (accuracy/BER vs length, probe power, sigma)", func(_ context.Context, w io.Writer, _ renderConfig) error {
		spec, err := dse.DefaultNoiseStudySpec()
		if err != nil {
			return err
		}
		rows, err := dse.NoiseStudy(spec)
		if err != nil {
			return err
		}
		return dse.RenderNoiseStudy(w, rows, spec)
	}},
	{"edge", "Image PSNR vs stream length (packed tiled engine)", func(_ context.Context, w io.Writer, _ renderConfig) error {
		rows, err := dse.EdgeStudy([]int{64, 256, 1024, 4096}, 7)
		if err != nil {
			return err
		}
		return dse.RenderEdgeStudy(w, rows)
	}},
	{"waterfall", "BER waterfall (parallel over probe powers)", renderWaterfall},
	{"trace", "Transient waveform (word-parallel trace)", renderTrace},
	{"video", "Gamma video batch (cross-frame LUT cache)", renderVideo},
	{"yield", "Process-variation yield study (checkpointable)", renderYieldStudy},
	{"ablation", "Ablations", renderAblations},
}

// figureKeys lists every registered -fig key in -fig all order.
func figureKeys() []string {
	keys := make([]string, len(figures))
	for i, f := range figures {
		keys[i] = f.key
	}
	return keys
}

func run(ctx context.Context, w io.Writer, fig string, cfg renderConfig, workers int, timing bool) error {
	if cfg.gridN < 2 {
		return fmt.Errorf("-grid %d: need >= 2 points per axis", cfg.gridN)
	}
	if cfg.sweepN < 2 {
		return fmt.Errorf("-sweep %d: need >= 2 points", cfg.sweepN)
	}
	if cfg.samples < 1 {
		return fmt.Errorf("-samples %d: need >= 1 die per sigma", cfg.samples)
	}
	if workers < 0 {
		return fmt.Errorf("-workers %d: need >= 0", workers)
	}
	if (cfg.checkpoint != "" || cfg.resume) && fig != "yield" {
		return fmt.Errorf("-checkpoint/-resume apply to -fig yield only (got -fig %s)", fig)
	}
	if cfg.resume && cfg.checkpoint == "" {
		return fmt.Errorf("-resume needs a -checkpoint file")
	}
	if workers > 0 {
		// The worker pool sizes itself from GOMAXPROCS; capping it here
		// bounds every sweep's parallelism. Results are unaffected: all
		// sweeps are deterministic by index.
		runtime.GOMAXPROCS(workers)
	}

	any := false
	for _, f := range figures {
		if fig != "all" && fig != f.key {
			continue
		}
		any = true
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stopping before %s: %w", f.key, err)
		}
		if _, err := fmt.Fprintf(w, "\n==== %s ====\n\n", f.title); err != nil {
			return err
		}
		start := time.Now()
		if err := f.render(ctx, w, cfg); err != nil {
			return err
		}
		if timing {
			if _, err := fmt.Fprintf(w, "[%s: %v]\n", f.key, time.Since(start).Round(time.Microsecond)); err != nil {
				return err
			}
		}
	}
	if !any {
		return fmt.Errorf("unknown figure %q (available: %s, all)", fig, strings.Join(figureKeys(), ", "))
	}
	return nil
}

func renderFig7A(_ context.Context, w io.Writer, cfg renderConfig) error {
	series, err := dse.Fig7A([]int{2, 4, 6}, cfg.sweepN)
	if err != nil {
		return err
	}
	if err := dse.RenderFig7A(w, series); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nn=2 curves (chart):"); err != nil {
		return err
	}
	chartPts := core.NewEnergyModel(2).Sweep(0.11, 0.3, 48)
	if err := dse.RenderEnergyChartASCII(w, chartPts, 96, 18, 70); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	profile, err := dse.ApplicationProfile()
	if err != nil {
		return err
	}
	return dse.RenderApplicationProfile(w, profile)
}

func renderAblations(ctx context.Context, w io.Writer, _ renderConfig) error {
	if err := dse.RenderRingSensitivity(w, dse.RingSensitivity([]float64{0.75, 1.0, 1.25, 1.5})); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	rows, err := dse.APDComparison(1e-6)
	if err != nil {
		return err
	}
	if err := dse.RenderAPDComparison(w, rows, 1e-6); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	ps, err := dse.ParallelScaling([]int{1, 4, 16, 64}, 256)
	if err != nil {
		return err
	}
	if err := dse.RenderParallelScaling(w, ps, 256); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := core.MustCircuit(core.PaperParams()).ComputeLinkBudget().Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return renderYield(ctx, w)
}

func renderYield(ctx context.Context, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Monte-Carlo process variation (ring resonance σ, 200 dies, BER target 1e-6):"); err != nil {
		return err
	}
	p := core.PaperParams()
	t := dse.NewTable("resonance σ (nm)", "yield", "mean eye (mW)", "worst BER")
	for _, sigma := range []float64{0.01, 0.05, 0.1, 0.2} {
		r, err := core.AnalyzeYieldCtx(ctx, engine.Default(), p, core.VariationSpec{
			RingResonanceSigmaNM: sigma,
			Samples:              200,
			Seed:                 99,
			TargetBER:            1e-6,
		})
		if err != nil {
			return err
		}
		t.AddRow(
			fmt.Sprintf("%.2f", sigma),
			fmt.Sprintf("%.1f%%", r.Yield*100),
			fmt.Sprintf("%.4f", r.MeanEyeMW),
			fmt.Sprintf("%.3g", r.WorstBER),
		)
	}
	return t.Render(w)
}

// yieldCheckpointEvery is the save cadence of the checkpointed yield
// study: a durable snapshot every this many completed dies
// (count-based so the cadence is deterministic).
const yieldCheckpointEvery = 10

// renderYieldStudy regenerates the standalone yield figure: one row
// per ring-resonance sigma, -samples dies each, dispatched die-by-die
// on the default engine. With -checkpoint the completed dies snapshot
// to disk (and survive SIGINT); with -resume a matching snapshot is
// loaded first and only the missing dies re-run — the reassembled
// figure is bit-identical to an uninterrupted run.
func renderYieldStudy(ctx context.Context, w io.Writer, cfg renderConfig) error {
	s := dse.YieldStudy{
		Params:    core.PaperParams(),
		SigmasNM:  []float64{0.01, 0.05, 0.1, 0.2},
		Samples:   cfg.samples,
		Seed:      99,
		TargetBER: 1e-6,
	}
	var points []dse.YieldPoint
	var err error
	if cfg.checkpoint != "" {
		cp := dse.NewCheckpointer[core.DieOutcome](cfg.checkpoint, yieldCheckpointEvery, s.Key())
		if cfg.resume {
			restored, lerr := cp.Load()
			if lerr != nil {
				return lerr
			}
			if _, perr := fmt.Fprintf(w, "resumed %d/%d dies from %s\n", restored, s.N(), cfg.checkpoint); perr != nil {
				return perr
			}
		}
		points, err = s.RunCheckpointed(ctx, engine.Default(), cp)
	} else {
		points, err = s.RunCtx(ctx, engine.Default())
	}
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%d dies per sigma, BER target %g, seed %d:\n", s.Samples, s.TargetBER, s.Seed); err != nil {
		return err
	}
	t := dse.NewTable("resonance σ (nm)", "yield", "mean eye (mW)", "worst BER")
	for _, pt := range points {
		t.AddRow(
			fmt.Sprintf("%.2f", pt.SigmaNM),
			fmt.Sprintf("%.1f%%", pt.Result.Yield*100),
			fmt.Sprintf("%.4f", pt.Result.MeanEyeMW),
			fmt.Sprintf("%.3g", pt.Result.WorstBER),
		)
	}
	return t.Render(w)
}

// renderWaterfall regenerates the BER waterfall: worst-case measured
// vs Eq. (9) analytic BER across probe powers sized for BER 1e-1 down
// to 1e-4. The points fan over the worker pool with per-point derived
// seeds, so the table is identical at any -workers setting.
func renderWaterfall(ctx context.Context, w io.Writer, _ renderConfig) error {
	base := core.PaperParams()
	c := core.MustCircuit(base)
	powers := []float64{
		c.MinProbePowerMW(1e-1),
		c.MinProbePowerMW(1e-2),
		c.MinProbePowerMW(1e-3),
		c.MinProbePowerMW(1e-4),
	}
	pts, err := transient.BERWaterfallCtx(ctx, engine.Default(), base, powers, 200_000, 29)
	if err != nil {
		return err
	}
	t := dse.NewTable("probe (mW)", "measured BER", "analytic BER")
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%.4f", p.ProbeMW), fmt.Sprintf("%.3g", p.MeasuredBER), fmt.Sprintf("%.3g", p.AnalyticBER))
	}
	return t.Render(w)
}

// renderTrace regenerates the pulse-gated transient waveform on a
// deliberately hot link (probe sized for BER 1e-3), one row per slot:
// the decision bit and the gated received-power peak. The trace runs
// word-parallel (core.Unit.Cycles + block noise) and is single-stream,
// so the table is identical at any -workers setting.
func renderTrace(_ context.Context, w io.Writer, _ renderConfig) error {
	p := core.PaperParams()
	p.ProbePowerMW = core.MustCircuit(p).MinProbePowerMW(1e-3)
	c, err := core.NewCircuit(p)
	if err != nil {
		return err
	}
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 7)
	if err != nil {
		return err
	}
	sim := transient.NewSimulator(u, 8)
	const bits, spb = 16, 8
	tr, err := sim.Trace(0.5, bits, spb)
	if err != nil {
		return err
	}
	t := dse.NewTable("slot", "bit", "gated peak (mW)")
	for b := 0; b < bits; b++ {
		peak := 0.0
		for k := 0; k < spb; k++ {
			if pt := tr[b*spb+k]; pt.Gated && pt.ReceivedMW > peak {
				peak = pt.ReceivedMW
			}
		}
		t.AddRow(fmt.Sprint(b), fmt.Sprint(tr[b*spb].Bit), fmt.Sprintf("%.4f", peak))
	}
	return t.Render(w)
}

// renderVideo regenerates the gamma video batch: four synthetic
// frames corrected through one cached LUT (built once per recipe,
// applied per frame over the pool), scored against the exact
// transfer function.
func renderVideo(ctx context.Context, w io.Writer, _ renderConfig) error {
	frames := []*img.Gray{
		img.Gradient(48, 32),
		img.Radial(48, 32),
		img.Checkerboard(48, 32, 6, 40, 210),
		img.Gradient(48, 32),
	}
	var cache img.GammaLUTCache
	out, err := img.GammaVideoCtx(ctx, engine.Default(), frames, 0.45, 6, 0.3, 1024, 13, &cache)
	if err != nil {
		return err
	}
	t := dse.NewTable("frame", "PSNR vs exact (dB)", "MAE")
	for i, f := range out {
		exact := img.GammaExact(frames[i], 0.45)
		t.AddRow(fmt.Sprint(i), fmt.Sprintf("%.2f", img.PSNR(exact, f)), fmt.Sprintf("%.3f", img.MeanAbsoluteError(exact, f)))
	}
	return t.Render(w)
}

func renderTradeoff(w io.Writer) error {
	// Size the paper circuit for a deliberately noisy 1e-2 link, then
	// show RMSE vs stream length with the implied throughput.
	p := core.PaperParams()
	p.ProbePowerMW = core.MustCircuit(p).MinProbePowerMW(1e-2)
	c, err := core.NewCircuit(p)
	if err != nil {
		return err
	}
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 7)
	if err != nil {
		return err
	}
	sim := transient.NewSimulator(u, 8)
	if _, err := fmt.Fprintf(w, "probe sized for BER 1e-2: %.4f mW; analytic worst-case BER %.2e\n\n",
		p.ProbePowerMW, sim.AnalyticWorstCaseBER()); err != nil {
		return err
	}
	pts, err := sim.AccuracyVsLength(0.5, []int{64, 256, 1024, 4096, 16384}, 30)
	if err != nil {
		return err
	}
	t := dse.NewTable("stream length", "RMSE", "results/s @1 Gb/s")
	for _, pt := range pts {
		t.AddRow(fmt.Sprint(pt.StreamLen), fmt.Sprintf("%.4f", pt.RMSE), fmt.Sprintf("%.3g", pt.ThroughputResultsPerSec))
	}
	return t.Render(w)
}
