// Command oscserve runs the crash-safe simulation service: the figure
// registry, BER/yield analyses and stochastic image operators behind
// a JSON HTTP API with backpressure, deadlines and graceful drain.
// See internal/serve for the API reference.
//
// On SIGTERM or SIGINT the server stops admitting jobs, drains
// in-flight work for up to -grace, cancels whatever remains so long
// sweeps checkpoint at an item boundary, and exits 0. With
// -checkpoint-dir set, re-POSTing an interrupted /v1/yield study to a
// restarted server resumes from the snapshot and returns bytes
// identical to an uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "oscserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("oscserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8765", "listen address")
		engName  = fs.String("engine", "", "evaluation engine (default: process default; see -list-engines)")
		list     = fs.Bool("list-engines", false, "list registered engines and exit")
		workers  = fs.Int("workers", 0, "concurrent jobs (default 2)")
		queue    = fs.Int("queue", 0, "queued jobs beyond workers before 503 (default 8)")
		slots    = fs.Int("slots", 0, "concurrent work items across all jobs (default GOMAXPROCS)")
		deadline = fs.Duration("deadline", 0, "default per-job deadline when the request sets none (0 = none)")
		maxDL    = fs.Duration("max-deadline", 0, "cap on per-request timeout_ms (default 5m)")
		cacheN   = fs.Int("cache", 0, "result cache entries (default 256, negative disables)")
		ckptDir  = fs.String("checkpoint-dir", "", "directory for /v1/yield snapshots (empty = no checkpointing)")
		ckptEach = fs.Int("checkpoint-every", 0, "snapshot cadence in completed dies (default 10)")
		grace    = fs.Duration("grace", 30*time.Second, "drain budget after SIGTERM before cancelling jobs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(os.Stdout, strings.Join(engine.Names(), "\n"))
		return nil
	}
	eng := engine.Default()
	if *engName != "" {
		e, err := engine.Get(*engName)
		if err != nil {
			return err
		}
		eng = e
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("creating -checkpoint-dir: %w", err)
		}
	}

	srv := serve.New(serve.Config{
		Engine:          eng,
		Slots:           *slots,
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultTimeout:  *deadline,
		MaxTimeout:      *maxDL,
		CacheEntries:    *cacheN,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEach,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "oscserve: listening on %s (engine %s)\n", *addr, srv.Engine().Name())
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintf(os.Stderr, "oscserve: draining (grace %s)\n", *grace)
	hardCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	srv.Drain(hardCtx)
	if err := hs.Shutdown(hardCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "oscserve: drained, exiting")
	return nil
}
