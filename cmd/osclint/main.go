// Command osclint runs the repo's static-analysis suite
// (internal/lint) over the module: five analyzers that enforce the
// determinism, oracle-pair, and error-propagation conventions every
// engine in this reproduction relies on.
//
// Usage:
//
//	osclint ./...                 # whole module (what CI runs)
//	osclint ./internal/... ./cmd/...
//	osclint -rules detrand,mapiter ./internal/optics
//	osclint -json ./...           # machine-readable findings
//	osclint -all ./...            # include suppressed findings, marked
//	osclint -exitzero ./...       # list findings without failing
//
// Exit status: 0 when clean, 1 when findings remain (unless
// -exitzero), 2 on a driver error. Rules are documented in
// internal/lint/doc.go; intentional violations are annotated in place
// with `//osclint:ignore rule reason`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	all := flag.Bool("all", false, "include suppressed findings, marked with their reasons")
	exitZero := flag.Bool("exitzero", false, "exit 0 even when findings remain (listing mode)")
	rules := flag.String("rules", "", "comma-separated rule subset (default: all of "+strings.Join(lint.AnalyzerNames(), ",")+")")
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "osclint:", err)
		os.Exit(2)
	}
	opt := lint.Options{All: *all}
	if *rules != "" {
		opt.Rules = strings.Split(*rules, ",")
	}
	patterns := flag.Args()
	findings, err := lint.Run(root, patterns, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osclint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "osclint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	unsuppressed := 0
	for _, f := range findings {
		if !f.Suppressed {
			unsuppressed++
		}
	}
	if unsuppressed > 0 {
		if !*jsonOut {
			fmt.Printf("osclint: %d finding(s)\n", unsuppressed)
		}
		if !*exitZero {
			os.Exit(1)
		}
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, so osclint runs correctly from any subdirectory.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
