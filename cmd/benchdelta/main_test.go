package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/transient
BenchmarkTrace-4         	       3	    100000 ns/op	     120 B/op	       5 allocs/op
BenchmarkTrace-4         	       3	     90000 ns/op	     120 B/op	       5 allocs/op
BenchmarkTrace-4         	       3	     95000 ns/op	     120 B/op	       5 allocs/op
BenchmarkTraceSerial-4   	       3	    400000 ns/op	      64 B/op	       2 allocs/op
BenchmarkNoAllocs-4      	     100	      1234 ns/op
PASS
`

func TestParseKeepsMinAcrossCounts(t *testing.T) {
	table, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := table.Benchmarks["BenchmarkTrace"]
	if !ok {
		t.Fatalf("BenchmarkTrace missing: %+v", table)
	}
	if got.NsPerOp != 90000 || got.AllocsPerOp != 5 {
		t.Errorf("min not kept: %+v", got)
	}
	if _, ok := table.Benchmarks["BenchmarkNoAllocs"]; !ok {
		t.Error("benchmark without -benchmem columns dropped")
	}
	if len(table.Benchmarks) != 3 {
		t.Errorf("%d benchmarks parsed, want 3", len(table.Benchmarks))
	}
}

func TestCompareGates(t *testing.T) {
	base := Table{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 100},
		"BenchmarkB": {NsPerOp: 100},
		"BenchmarkC": {NsPerOp: 100},
	}}
	// Within threshold, one untracked extra: passes.
	next := Table{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 125},
		"BenchmarkB": {NsPerOp: 80},
		"BenchmarkC": {NsPerOp: 100},
		"BenchmarkD": {NsPerOp: 9999},
	}}
	var sb strings.Builder
	if err := Compare(&sb, base, next, 0.30); err != nil {
		t.Errorf("within-threshold run failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "untracked") {
		t.Error("new benchmark not reported")
	}
	// A >30% regression fails.
	next.Benchmarks["BenchmarkA"] = Result{NsPerOp: 131}
	if err := Compare(&strings.Builder{}, base, next, 0.30); err == nil {
		t.Error("regression not gated")
	}
	// A missing tracked benchmark fails.
	next.Benchmarks["BenchmarkA"] = Result{NsPerOp: 100}
	delete(next.Benchmarks, "BenchmarkB")
	if err := Compare(&strings.Builder{}, base, next, 0.30); err == nil {
		t.Error("missing tracked benchmark not gated")
	}
}
