package main

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/transient
BenchmarkTrace-4         	       3	    100000 ns/op	     120 B/op	       5 allocs/op
BenchmarkTrace-4         	       3	     90000 ns/op	     120 B/op	       5 allocs/op
BenchmarkTrace-4         	       3	     95000 ns/op	     120 B/op	       5 allocs/op
BenchmarkTraceSerial-4   	       3	    400000 ns/op	      64 B/op	       2 allocs/op
BenchmarkNoAllocs-4      	     100	      1234 ns/op
PASS
`

func parse(t *testing.T, input string) Table {
	t.Helper()
	table, err := Parse(strings.NewReader(input), io.Discard)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return table
}

func TestParseKeepsMinAcrossCounts(t *testing.T) {
	table := parse(t, sample)
	got, ok := table.Benchmarks["BenchmarkTrace"]
	if !ok {
		t.Fatalf("BenchmarkTrace missing: %+v", table)
	}
	if got.NsPerOp != 90000 || got.AllocsPerOp != 5 {
		t.Errorf("min not kept: %+v", got)
	}
	if _, ok := table.Benchmarks["BenchmarkNoAllocs"]; !ok {
		t.Error("benchmark without -benchmem columns dropped")
	}
	if len(table.Benchmarks) != 3 {
		t.Errorf("%d benchmarks parsed, want 3", len(table.Benchmarks))
	}
}

// TestParseRejectsMalformedLines: missing columns, non-numeric,
// non-finite and non-positive ns/op must all be skipped —
// strconv.ParseFloat accepts "NaN" and "Inf" without error, and a NaN
// in the table would make every later threshold comparison silently
// false, turning the gate vacuously green.
func TestParseRejectsMalformedLines(t *testing.T) {
	table := parse(t, strings.Join([]string{
		"BenchmarkTruncated-8",
		"BenchmarkNoUnit-8  10  123456",
		"BenchmarkWrongUnit-8  10  123456 MB/s",
		"BenchmarkBadNumber-8  10  fast ns/op",
		"BenchmarkNaN-8  10  NaN ns/op",
		"BenchmarkInf-8  10  +Inf ns/op",
		"BenchmarkZero-8  10  0 ns/op",
		"BenchmarkNegative-8  10  -5 ns/op",
	}, "\n"))
	if len(table.Benchmarks) != 0 {
		t.Errorf("malformed lines produced entries: %+v", table.Benchmarks)
	}
}

// TestRunEmptyInput: a bench run that produced no benchmark lines
// (e.g. a bad -bench regexp) must fail, not record or gate vacuously.
func TestRunEmptyInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, []byte("goos: linux\nPASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(in, "", "", 0.30, false)
	if err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("run on empty bench output: err = %v, want no-benchmark-lines error", err)
	}
}

func TestRunRejectsBadThreshold(t *testing.T) {
	for _, thr := range []float64{0, -0.3, math.NaN(), math.Inf(1)} {
		if err := run("", "", "", thr, false); err == nil {
			t.Errorf("threshold %v accepted", thr)
		}
	}
}

func TestReadJSONRejectsCorruptBaselines(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"zero.json":     `{"benchmarks":{"BenchmarkX":{"ns_per_op":0,"allocs_per_op":0}}}`,
		"negative.json": `{"benchmarks":{"BenchmarkX":{"ns_per_op":-12,"allocs_per_op":0}}}`,
		"empty.json":    `{"benchmarks":{}}`,
		"garbage.json":  `not json at all`,
	}
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(cases[name]), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readJSON(path); err == nil {
			t.Errorf("%s: corrupt baseline accepted", name)
		}
	}
	if _, err := readJSON(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing baseline file accepted")
	}
	// The committed baseline format still reads back.
	good := filepath.Join(dir, "good.json")
	if err := writeJSON(good, parse(t, sample)); err != nil {
		t.Fatal(err)
	}
	table, err := readJSON(good)
	if err != nil {
		t.Fatalf("round-trip baseline rejected: %v", err)
	}
	if len(table.Benchmarks) != 3 {
		t.Errorf("round-trip lost benchmarks: %+v", table)
	}
}

func TestCompareGates(t *testing.T) {
	base := Table{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 100},
		"BenchmarkB": {NsPerOp: 100},
		"BenchmarkC": {NsPerOp: 100},
	}}
	// Within threshold, one untracked extra: passes.
	next := Table{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 125},
		"BenchmarkB": {NsPerOp: 80},
		"BenchmarkC": {NsPerOp: 100},
		"BenchmarkD": {NsPerOp: 9999},
	}}
	var sb strings.Builder
	if err := Compare(&sb, base, next, 0.30); err != nil {
		t.Errorf("within-threshold run failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "untracked") {
		t.Error("new benchmark not reported")
	}
	// A >30% regression fails.
	next.Benchmarks["BenchmarkA"] = Result{NsPerOp: 131}
	if err := Compare(&strings.Builder{}, base, next, 0.30); err == nil {
		t.Error("regression not gated")
	}
	// A missing tracked benchmark fails.
	next.Benchmarks["BenchmarkA"] = Result{NsPerOp: 100}
	delete(next.Benchmarks, "BenchmarkB")
	if err := Compare(&strings.Builder{}, base, next, 0.30); err == nil {
		t.Error("missing tracked benchmark not gated")
	}
}

// TestCompareNaNFailsClosed: even if a non-finite value reaches
// Compare (belt and braces behind readJSON/Parse validation), the
// gate fails rather than reporting vacuous ok.
func TestCompareNaNFailsClosed(t *testing.T) {
	base := Table{Benchmarks: map[string]Result{"BenchmarkA": {NsPerOp: math.NaN()}}}
	next := Table{Benchmarks: map[string]Result{"BenchmarkA": {NsPerOp: 100}}}
	if err := Compare(&strings.Builder{}, base, next, 0.30); err == nil {
		t.Fatal("NaN baseline produced a passing gate")
	}
}
