// Command benchdelta turns `go test -bench` output into a compact
// JSON benchmark table and gates CI on a committed baseline — the
// perf-regression tracker behind the bench-delta job.
//
// Record a run (CI writes BENCH_PR5.json and uploads it as an
// artifact):
//
//	go test -run '^$' -bench 'Trace|BERWaterfall|AccuracyVsLength|OptimalSpacing|GammaVideo' \
//	    -benchmem -benchtime=3x -count=3 ./internal/transient ./internal/core ./internal/image \
//	  | go run ./cmd/benchdelta -out BENCH_PR5.json -baseline BENCH_BASELINE.json -threshold 0.30
//
// The run fails (exit 1) if any benchmark tracked by the baseline is
// missing from the new output or regresses in ns/op by more than the
// threshold. New benchmarks absent from the baseline are reported but
// do not fail the run — commit a refreshed baseline to start tracking
// them.
//
// Refresh the committed baseline (also `make bench-baseline`):
//
//	go test -run '^$' -bench ... -benchmem -benchtime=3x -count=3 ./... \
//	  | go run ./cmd/benchdelta -update -baseline BENCH_BASELINE.json
//
// With -count > 1 the minimum ns/op across repetitions is kept — the
// least-noise estimate of a benchmark's true cost.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded cost.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Table is the JSON document: benchmark name (with the -GOMAXPROCS
// suffix stripped) to cost.
type Table struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "bench output to parse (default stdin)")
	out := flag.String("out", "", "write the parsed table as JSON to this path")
	baseline := flag.String("baseline", "", "baseline JSON to compare against (or to write with -update)")
	threshold := flag.Float64("threshold", 0.30, "fail when ns/op regresses by more than this fraction")
	update := flag.Bool("update", false, "write the parsed table to -baseline instead of comparing")
	flag.Parse()

	if err := run(*in, *out, *baseline, *threshold, *update); err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
}

func run(in, out, baseline string, threshold float64, update bool) error {
	if math.IsNaN(threshold) || math.IsInf(threshold, 0) || threshold <= 0 {
		return fmt.Errorf("threshold %v is not a positive fraction", threshold)
	}
	src := io.Reader(os.Stdin)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	table, err := Parse(src, os.Stdout)
	if err != nil {
		return err
	}
	if len(table.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	if out != "" {
		if err := writeJSON(out, table); err != nil {
			return err
		}
	}
	if update {
		if baseline == "" {
			return fmt.Errorf("-update needs -baseline")
		}
		fmt.Printf("recorded %d benchmarks to %s\n", len(table.Benchmarks), baseline)
		return writeJSON(baseline, table)
	}
	if baseline == "" {
		fmt.Printf("parsed %d benchmarks (no -baseline, nothing to gate)\n", len(table.Benchmarks))
		return nil
	}
	base, err := readJSON(baseline)
	if err != nil {
		return err
	}
	return Compare(os.Stdout, base, table, threshold)
}

// Parse reads `go test -bench` output and keeps, per benchmark name,
// the minimum ns/op (and its allocs/op) across repetitions. Every
// input line is echoed to echo (the CI log pass-through). Lines whose
// ns/op column is missing, non-numeric, non-finite or non-positive are
// skipped: strconv.ParseFloat accepts "NaN" and "Inf" without error,
// and letting those into the table would make every later threshold
// comparison silently false — a vacuously green gate.
func Parse(r io.Reader, echo io.Writer) (Table, error) {
	t := Table{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if _, err := fmt.Fprintln(echo, line); err != nil {
			return t, err
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-P  N  ns ns/op  [B B/op  allocs allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || math.IsNaN(ns) || math.IsInf(ns, 0) || ns <= 0 {
			continue
		}
		var allocs int64
		for i := 4; i+1 < len(fields); i += 2 {
			if fields[i+1] == "allocs/op" {
				//osclint:ignore errprop a malformed allocs column keeps the informational default 0; only ns/op gates the run
				allocs, _ = strconv.ParseInt(fields[i], 10, 64)
			}
		}
		if prev, ok := t.Benchmarks[name]; !ok || ns < prev.NsPerOp {
			t.Benchmarks[name] = Result{NsPerOp: ns, AllocsPerOp: allocs}
		}
	}
	return t, sc.Err()
}

// Compare gates the new table against the baseline: every baseline
// benchmark must be present and within threshold of its recorded
// ns/op. It prints one line per tracked benchmark and an overall
// verdict, returning an error when the gate fails.
func Compare(w io.Writer, base, next Table, threshold float64) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		b := base.Benchmarks[name]
		n, ok := next.Benchmarks[name]
		if !ok {
			if _, err := fmt.Fprintf(w, "MISSING  %-40s baseline %.0f ns/op, not in this run\n", name, b.NsPerOp); err != nil {
				return err
			}
			failed++
			continue
		}
		delta := n.NsPerOp/b.NsPerOp - 1
		status := "ok      "
		// !(delta <= threshold) rather than delta > threshold: a NaN
		// delta (corrupt baseline or run) must fail the gate, not slip
		// through as vacuously ok.
		if !(delta <= threshold) {
			status = "REGRESS "
			failed++
		}
		if _, err := fmt.Fprintf(w, "%s %-40s %12.0f -> %12.0f ns/op (%+.1f%%), %d allocs/op\n",
			status, name, b.NsPerOp, n.NsPerOp, delta*100, n.AllocsPerOp); err != nil {
			return err
		}
	}
	var freshNames []string
	for name := range next.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			freshNames = append(freshNames, name)
		}
	}
	sort.Strings(freshNames)
	fresh := len(freshNames)
	for _, name := range freshNames {
		if _, err := fmt.Fprintf(w, "new      %-40s %12.0f ns/op (untracked; refresh the baseline to gate)\n",
			name, next.Benchmarks[name].NsPerOp); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d tracked benchmarks regressed past %.0f%% (or went missing)",
			failed, len(names), threshold*100)
	}
	_, err := fmt.Fprintf(w, "all %d tracked benchmarks within %.0f%% of baseline (%d untracked)\n",
		len(names), threshold*100, fresh)
	return err
}

func writeJSON(path string, t Table) error {
	buf, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func readJSON(path string) (Table, error) {
	var t Table
	buf, err := os.ReadFile(path)
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(buf, &t); err != nil {
		return t, fmt.Errorf("%s: %w", path, err)
	}
	if len(t.Benchmarks) == 0 {
		return t, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	// A zero, negative or non-finite baseline ns/op would poison every
	// delta computed against it; refuse to gate on a corrupt baseline.
	for name, r := range t.Benchmarks {
		if math.IsNaN(r.NsPerOp) || math.IsInf(r.NsPerOp, 0) || r.NsPerOp <= 0 {
			return t, fmt.Errorf("%s: benchmark %q has unusable baseline ns/op %v", path, name, r.NsPerOp)
		}
	}
	return t, nil
}
