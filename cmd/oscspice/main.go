// Command oscspice runs a SPICE-like transient simulation of the
// optical stochastic-computing circuit from a textual netlist deck —
// the workflow the paper's future work sketches ("a SPICE model for
// transient simulation of the optical circuit").
//
// Usage:
//
//	oscspice deck.osc
//	echo "order 2
//	poly 0.25 0.625 0.75
//	input 0.5" | oscspice -
//
// See internal/netlist for the deck grammar. The run reports the
// sized design, the de-randomized result against the analytic value,
// the measured vs analytic worst-case BER, and eye statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/netlist"
	"repro/internal/transient"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: oscspice <deck.osc | ->")
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "oscspice:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	var src io.Reader
	if path == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	deck, err := netlist.Parse(src)
	if err != nil {
		return err
	}
	e, err := netlist.Elaborate(deck)
	if err != nil {
		return err
	}

	p := e.Params
	fmt.Printf("design (%s):\n", deck.Method)
	fmt.Printf("  order %d, spacing %.4f nm, λref %.4f nm\n", p.Order, p.WLSpacingNM, p.LambdaRefNM())
	fmt.Printf("  MZI IL %.2f dB, ER %.2f dB\n", p.MZI.ILdB, p.MZI.ERdB)
	fmt.Printf("  pump %.2f mW, probes %d × %.4f mW\n", p.PumpPowerMW, p.Order+1, p.ProbePowerMW)
	fmt.Printf("  polynomial: %v\n\n", e.Poly)

	analytic := e.Poly.Eval(deck.InputX)
	if deck.Noise {
		sim := transient.NewSimulator(e.Unit, deck.Seed+1)
		got, _, err := sim.EvaluateWords(deck.InputX, deck.Bits)
		if err != nil {
			return err
		}
		measured, err := sim.MeasureWorstCaseBER(200_000)
		if err != nil {
			return err
		}
		fmt.Printf("transient (noisy, σ = %.4g mW):\n", sim.SigmaMW)
		fmt.Printf("  B(%.4g) = %.5f  (analytic %.5f, %d bits)\n", deck.InputX, got, analytic, deck.Bits)
		fmt.Printf("  worst-case BER: measured %.3e, analytic %.3e\n",
			measured, sim.AnalyticWorstCaseBER())
		fmt.Printf("  %v\n", sim.MeasureEye(deck.InputX, 20_000))
	} else {
		got, _ := e.Unit.EvaluateWords(deck.InputX, deck.Bits)
		fmt.Println("transient (noiseless):")
		fmt.Printf("  B(%.4g) = %.5f  (analytic %.5f, %d bits)\n", deck.InputX, got, analytic, deck.Bits)
	}
	return nil
}
