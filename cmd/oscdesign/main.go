// Command oscdesign runs the paper's design-space-exploration methods
// (§IV.B) from the command line and prints the sized parameter set.
//
// Usage:
//
//	oscdesign -method mrr-first -order 2 -spacing 1.0 -il 4.5 -ber 1e-6
//	oscdesign -method mzi-first -order 2 -il 6.5 -er 7.5 -pump 600
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/optics"
)

func main() {
	method := flag.String("method", "mrr-first", "design method: mrr-first or mzi-first")
	order := flag.Int("order", 2, "polynomial degree n")
	spacing := flag.Float64("spacing", 1.0, "wavelength spacing in nm (mrr-first)")
	il := flag.Float64("il", 4.5, "MZI insertion loss in dB")
	er := flag.Float64("er", 7.5, "MZI extinction ratio in dB (mzi-first)")
	pump := flag.Float64("pump", 600, "pump laser power in mW (mzi-first)")
	ber := flag.Float64("ber", 1e-6, "target bit-error rate")
	fig5 := flag.Bool("fig5rings", false, "use the Fig 5 ring calibration instead of the dense preset")
	save := flag.String("save", "", "write the sized design as JSON to this path")
	load := flag.String("load", "", "skip sizing; report a previously saved design")
	flag.Parse()

	var p core.Params
	var err error
	if *load != "" {
		p, err = core.LoadParamsFile(*load)
	} else {
		p, err = design(*method, *order, *spacing, *il, *er, *pump, *ber, *fig5)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oscdesign:", err)
		os.Exit(1)
	}
	if *save != "" {
		if err := core.SaveParamsFile(*save, p); err != nil {
			fmt.Fprintln(os.Stderr, "oscdesign:", err)
			os.Exit(1)
		}
		fmt.Printf("saved design to %s\n", *save)
	}
	report(p)
}

func design(method string, order int, spacing, il, er, pump, ber float64, fig5 bool) (core.Params, error) {
	switch method {
	case "mrr-first":
		spec := core.MRRFirstSpec{
			Order:       order,
			WLSpacingNM: spacing,
			MZIILdB:     il,
			TargetBER:   ber,
		}
		if fig5 {
			spec.ModShape = core.Fig5ModulatorShape()
			spec.FilterShape = core.Fig5FilterShape()
		}
		return core.MRRFirst(spec)
	case "mzi-first":
		spec := core.MZIFirstSpec{
			Order:       order,
			MZI:         optics.MZI{ILdB: il, ERdB: er},
			PumpPowerMW: pump,
			TargetBER:   ber,
		}
		if fig5 {
			spec.ModShape = core.Fig5ModulatorShape()
			spec.FilterShape = core.Fig5FilterShape()
		}
		return core.MZIFirst(spec)
	default:
		return core.Params{}, fmt.Errorf("unknown method %q", method)
	}
}

func report(p core.Params) {
	c := core.MustCircuit(p)
	fmt.Printf("order:            %d\n", p.Order)
	fmt.Printf("wavelengths:      λ0..λ%d = %.3f..%.3f nm (spacing %.4f nm)\n",
		p.Order, p.Lambda(0), p.LambdaMaxNM, p.WLSpacingNM)
	fmt.Printf("filter:           λref = %.4f nm (offset %.4f nm)\n", p.LambdaRefNM(), p.FilterOffsetNM)
	fmt.Printf("MZI:              IL %.2f dB, ER %.2f dB\n", p.MZI.ILdB, p.MZI.ERdB)
	fmt.Printf("pump laser:       %.2f mW\n", p.PumpPowerMW)
	fmt.Printf("probe lasers:     %d × %.4f mW\n", p.Order+1, p.ProbePowerMW)
	fmt.Printf("worst-case BER:   %.3e\n", c.BER())
	fmt.Printf("alignment error:  %.2e nm\n", c.AlignmentErrorNM())
	minZ, maxZ, minO, maxO := c.PowerBands()
	fmt.Printf("received bands:   '0' %.4f-%.4f mW, '1' %.4f-%.4f mW\n", minZ, maxZ, minO, maxO)
	e := core.ParamsEnergy(p)
	fmt.Printf("energy:           pump %.2f pJ + probe %.2f pJ = %.2f pJ/bit\n",
		e.PumpPJ, e.ProbePJ, e.TotalPJ())
}
