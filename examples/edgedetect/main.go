// Edgedetect: the second classic error-tolerant image workload of
// stochastic computing — Robert's-cross edge detection built from two
// correlated-XOR absolute-difference gates and an averaging
// multiplexer. Demonstrates the SC gate library on streams and the
// noise robustness SC is prized for.
package main

import (
	"fmt"
	"log"
	"os"

	img "repro/internal/image"
)

func main() {
	const stream = 2048

	src := img.Checkerboard(64, 64, 8, 30, 220)
	exact := img.RobertsCrossExact(src)
	sc := img.RobertsCrossSC(src, stream, 7)

	fmt.Printf("Robert's cross on a 64x64 checkerboard (%d-bit streams)\n", stream)
	fmt.Printf("SC vs exact: PSNR %.2f dB, MAE %.2f gray levels\n",
		img.PSNR(exact, sc), img.MeanAbsoluteError(exact, sc))

	// Edges fire, flats stay dark.
	fmt.Printf("response on an edge pixel:  exact %3d, SC %3d\n", exact.At(7, 2), sc.At(7, 2))
	fmt.Printf("response on a flat pixel:   exact %3d, SC %3d\n", exact.At(3, 3), sc.At(3, 3))

	for name, im := range map[string]*img.Gray{
		"edges_input.pgm": src,
		"edges_exact.pgm": exact,
		"edges_sc.pgm":    sc,
	} {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := im.WritePGM(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	fmt.Println("wrote edges_{input,exact,sc}.pgm")
}
