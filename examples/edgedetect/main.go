// Edgedetect: the second classic error-tolerant image workload of
// stochastic computing — Robert's-cross edge detection built from two
// correlated-XOR absolute-difference gates and an averaging
// multiplexer. Runs the packed tiled multi-core engine against the
// bit-serial oracle to show they emit the same image, and the speedup.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	img "repro/internal/image"
)

func main() {
	const stream = 2048

	src := img.Checkerboard(64, 64, 8, 30, 220)
	exact := img.RobertsCrossExact(src)

	start := time.Now()
	sc, err := img.RobertsCrossSC(src, stream, 7)
	if err != nil {
		log.Fatal(err)
	}
	packed := time.Since(start)

	start = time.Now()
	oracle, err := img.RobertsCrossSCSerial(src, stream, 7)
	if err != nil {
		log.Fatal(err)
	}
	serial := time.Since(start)

	fmt.Printf("Robert's cross on a 64x64 checkerboard (%d-bit streams)\n", stream)
	fmt.Printf("SC vs exact: PSNR %.2f dB, MAE %.2f gray levels\n",
		img.PSNR(exact, sc), img.MeanAbsoluteError(exact, sc))
	if img.MeanAbsoluteError(oracle, sc) != 0 {
		log.Fatal("packed engine diverged from the bit-serial oracle")
	}
	fmt.Printf("packed tiled engine %v vs bit-serial oracle %v (%.1fx), bit-identical\n",
		packed.Round(time.Millisecond), serial.Round(time.Millisecond),
		float64(serial)/float64(packed))

	// Edges fire, flats stay dark.
	fmt.Printf("response on an edge pixel:  exact %3d, SC %3d\n", exact.At(7, 2), sc.At(7, 2))
	fmt.Printf("response on a flat pixel:   exact %3d, SC %3d\n", exact.At(3, 3), sc.At(3, 3))

	for name, im := range map[string]*img.Gray{
		"edges_input.pgm": src,
		"edges_exact.pgm": exact,
		"edges_sc.pgm":    sc,
	} {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := im.WritePGM(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	fmt.Println("wrote edges_{input,exact,sc}.pgm")
}
