// Designspace: run both of the paper's design methods (§IV.B) and
// the Fig. 7 energy optimization, showing how the MRR-first and
// MZI-first flows trade pump power, extinction ratio, probe power and
// wavelength spacing against each other.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/optics"
)

func main() {
	// MRR-first: fix the wavelength plan, derive lasers and ER.
	mrr, err := core.MRRFirst(core.MRRFirstSpec{
		Order:       2,
		WLSpacingNM: 1.0,
		ModShape:    core.Fig5ModulatorShape(),
		FilterShape: core.Fig5FilterShape(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MRR-first (§V.A reference):")
	fmt.Printf("  pump %.1f mW, ER %.2f dB, probe %.4f mW\n\n",
		mrr.PumpPowerMW, mrr.MZI.ERdB, mrr.ProbePowerMW)

	// MZI-first: fix the device and pump, derive the comb.
	mzi, err := core.MZIFirst(core.MZIFirstSpec{
		Order:       2,
		MZI:         optics.MZI{ILdB: 6.5, ERdB: 7.5}, // Xiao et al. [19]
		PumpPowerMW: 600,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MZI-first (Xiao et al. device, 0.6 W pump):")
	fmt.Printf("  spacing %.3f nm, λ0 %.3f nm, probe %.4f mW (paper: 0.26 mW)\n\n",
		mzi.WLSpacingNM, mzi.Lambda(0), mzi.ProbePowerMW)

	// Energy optimization across the spacing range (Fig. 7a).
	model := core.NewEnergyModel(2)
	fmt.Println("energy vs spacing (n=2):")
	for _, b := range model.Sweep(0.1, 0.3, 9) {
		fmt.Printf("  %.3f nm: pump %6.2f + probe %6.2f = %6.2f pJ/bit\n",
			b.WLSpacingNM, b.PumpPJ, b.ProbePJ, b.TotalPJ())
	}
	opt, err := model.OptimalSpacing(0.1, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimum: %.3f nm -> %.2f pJ/bit (paper: 0.165 nm, 20.1 pJ)\n",
		opt.WLSpacingNM, opt.TotalPJ())

	saving, fixed, _, err := model.EnergySavingVsFixed(1.0, 0.1, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saving vs 1 nm spacing (%.1f pJ): %.1f%% (paper: 76.6%%)\n",
		fixed.TotalPJ(), saving*100)
}
