// Transient: time-domain simulation of the optical SC unit (the
// paper's future-work item ii). Shows the pulse-gated detection
// waveform, the measured vs analytical bit-error rate, and the
// throughput-accuracy trade-off of §V.B.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/stochastic"
	"repro/internal/transient"
)

func main() {
	// Run the link deliberately hot: probe sized for BER 1e-3 so
	// errors are visible in short simulations.
	params := core.PaperParams()
	params.ProbePowerMW = core.MustCircuit(params).MinProbePowerMW(1e-3)
	circuit, err := core.NewCircuit(params)
	if err != nil {
		log.Fatal(err)
	}
	unit, err := core.NewUnit(circuit, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 11)
	if err != nil {
		log.Fatal(err)
	}
	sim := transient.NewSimulator(unit, 12)

	fmt.Printf("probe power: %.4f mW (sized for BER 1e-3); noise sigma %.4f mW\n\n",
		params.ProbePowerMW, sim.SigmaMW)

	// 1. Waveform: 8 bit slots, 16 samples each.
	fmt.Println("pulse-gated waveform (x = received power, gated samples uppercase):")
	trace, err := sim.Trace(0.5, 8, 16)
	if err != nil {
		log.Fatal(err)
	}
	maxP := 0.0
	for _, pt := range trace {
		if pt.ReceivedMW > maxP {
			maxP = pt.ReceivedMW
		}
	}
	var sb strings.Builder
	for _, pt := range trace {
		level := int(pt.ReceivedMW / (maxP + 1e-12) * 8)
		ch := " .:-=+*#%@"[minInt(level, 9)]
		if pt.Gated {
			sb.WriteByte(byte(ch))
		} else {
			sb.WriteByte('_')
		}
	}
	fmt.Println(sb.String())
	fmt.Println("(one 26 ps pump pulse per 1 ns slot; detection happens in the gated window)")

	// 2. Eye statistics.
	eye := sim.MeasureEye(0.5, 20000)
	fmt.Printf("\n%v\n", eye)

	// 3. BER: measured vs Eq. (9).
	analytic := sim.AnalyticWorstCaseBER()
	measured, err := sim.MeasureWorstCaseBER(400000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst-case BER: measured %.3e vs analytic %.3e\n", measured, analytic)

	// 4. Throughput-accuracy trade-off, word-parallel.
	fmt.Println("\naccuracy vs stream length at x=0.5:")
	pts, err := sim.AccuracyVsLength(0.5, []int{64, 256, 1024, 4096}, 40)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range pts {
		fmt.Printf("  %v\n", pt)
	}

	// 5. Monte-Carlo batch: 32 independent noisy trials per input,
	// fanned over all cores with per-trial seeds.
	fmt.Println("\nbatched Monte-Carlo (32 trials x 4096 bits per input):")
	for _, x := range []float64{0.25, 0.5, 0.75} {
		xs := make([]float64, 32)
		for i := range xs {
			xs[i] = x
		}
		vals, err := sim.EvaluateBatch(xs, 4096)
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		fmt.Printf("  x=%.2f: mean %.5f (analytic %.5f)\n", x, mean, unit.Poly.Eval(x))
	}
	fmt.Println("\nlonger streams absorb transmission errors (§V.B): halve the power, double the bits.")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
