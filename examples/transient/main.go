// Transient: time-domain simulation of the optical SC unit (the
// paper's future-work item ii). Shows the pulse-gated detection
// waveform, the measured vs analytical bit-error rate, and the
// throughput-accuracy trade-off of §V.B.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/stochastic"
	"repro/internal/transient"
)

func main() {
	// Run the link deliberately hot: probe sized for BER 1e-3 so
	// errors are visible in short simulations.
	params := core.PaperParams()
	params.ProbePowerMW = core.MustCircuit(params).MinProbePowerMW(1e-3)
	circuit, err := core.NewCircuit(params)
	if err != nil {
		log.Fatal(err)
	}
	unit, err := core.NewUnit(circuit, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 11)
	if err != nil {
		log.Fatal(err)
	}
	sim := transient.NewSimulator(unit, 12)

	fmt.Printf("probe power: %.4f mW (sized for BER 1e-3); noise sigma %.4f mW\n\n",
		params.ProbePowerMW, sim.SigmaMW)

	// 1. Waveform: 8 bit slots, 16 samples each.
	fmt.Println("pulse-gated waveform (x = received power, gated samples uppercase):")
	trace := sim.Trace(0.5, 8, 16)
	maxP := 0.0
	for _, pt := range trace {
		if pt.ReceivedMW > maxP {
			maxP = pt.ReceivedMW
		}
	}
	var sb strings.Builder
	for _, pt := range trace {
		level := int(pt.ReceivedMW / (maxP + 1e-12) * 8)
		ch := " .:-=+*#%@"[minInt(level, 9)]
		if pt.Gated {
			sb.WriteByte(byte(ch))
		} else {
			sb.WriteByte('_')
		}
	}
	fmt.Println(sb.String())
	fmt.Println("(one 26 ps pump pulse per 1 ns slot; detection happens in the gated window)")

	// 2. Eye statistics.
	eye := sim.MeasureEye(0.5, 20000)
	fmt.Printf("\n%v\n", eye)

	// 3. BER: measured vs Eq. (9).
	analytic := sim.AnalyticWorstCaseBER()
	measured := sim.MeasureWorstCaseBER(400000)
	fmt.Printf("\nworst-case BER: measured %.3e vs analytic %.3e\n", measured, analytic)

	// 4. Throughput-accuracy trade-off.
	fmt.Println("\naccuracy vs stream length at x=0.5:")
	for _, pt := range sim.AccuracyVsLength(0.5, []int{64, 256, 1024, 4096}, 40) {
		fmt.Printf("  %v\n", pt)
	}
	fmt.Println("\nlonger streams absorb transmission errors (§V.B): halve the power, double the bits.")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
