// Reconfigurable: the paper's conclusion proposes exploiting the
// order-independence of the optimal wavelength spacing to build one
// circuit that evaluates polynomials of several degrees. This example
// sizes designs for orders 2..4 at the shared optimal spacing and
// runs a different polynomial on each.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stochastic"
)

func main() {
	// Locate the optimal spacing for the smallest order; the paper's
	// observation is that it serves the others too.
	opt, err := core.NewEnergyModel(2).OptimalSpacing(0.1, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared spacing: %.3f nm (n=2 optimum)\n\n", opt.WLSpacingNM)

	rc, err := core.NewReconfigurable(core.MRRFirstSpec{}, opt.WLSpacingNM, []int{2, 3, 4})
	if err != nil {
		log.Fatal(err)
	}

	polys := map[int]stochastic.BernsteinPoly{
		2: stochastic.NewBernstein([]float64{0.9, 0.2, 0.6}),
		3: stochastic.PaperF1(), // the paper's running example
		4: stochastic.NewBernstein([]float64{0.1, 0.3, 0.5, 0.7, 0.9}),
	}

	const bits = 1 << 14
	for _, n := range rc.Orders() {
		poly := polys[n]
		fmt.Printf("order %d: %v\n", n, poly)
		for _, x := range []float64{0.25, 0.5, 0.75} {
			got, err := rc.Evaluate(poly, x, bits, uint64(100+n))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  B(%.2f) = %.4f (analytic %.4f)\n", x, got, poly.Eval(x))
		}
	}

	fmt.Println("\nenergy at the shared spacing vs each order's own optimum:")
	// Walk the orders in rc.Orders() order, not map order: ranging the
	// EnergyByOrder map directly shuffled the lines run to run.
	energy := rc.EnergyByOrder()
	for _, n := range rc.Orders() {
		e := energy[n]
		own, err := core.NewEnergyModel(n).OptimalSpacing(0.1, 0.3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%d: %.2f pJ/bit shared vs %.2f pJ/bit own optimum (+%.1f%%)\n",
			n, e.TotalPJ(), own.TotalPJ(), 100*(e.TotalPJ()/own.TotalPJ()-1))
	}
}
