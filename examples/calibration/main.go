// Calibration: the paper's future-work item (i) — a feedback control
// loop that monitors the multiplexing filter and holds its resonance
// on target against thermal drift, using a heater as the actuator.
// Shows lock acquisition, tracking residual, heater energy, and the
// eye degradation the loop prevents.
package main

import (
	"fmt"
	"log"

	"repro/internal/control"
	"repro/internal/core"
)

func main() {
	// Plant: the paper circuit's filter drifting with ±5 K ambient
	// swings (≈ ±0.05 nm of resonance wander).
	env, err := control.NewThermalEnvironment(5, 1e-3, 0.02, 42)
	if err != nil {
		log.Fatal(err)
	}
	heater, err := control.NewHeater(0.25, 4) // up to 1 nm of trim
	if err != nil {
		log.Fatal(err)
	}
	target := core.PaperParams().LambdaRefNM()
	// The heater only pushes red, so the cold resonance is parked
	// half the actuator range blue of the target.
	ring := control.NewDriftedRing(target-0.5, env, heater)
	monitor, err := control.NewMonitor(0.05, 1e-5, 43)
	if err != nil {
		log.Fatal(err)
	}
	loop, err := control.NewLoop(ring, core.DenseFilterShape().At(ring.ColdResonanceNM), target, 1.0, monitor)
	if err != nil {
		log.Fatal(err)
	}

	samples := loop.Run(5000)
	var worstLocked, worstFree float64
	for _, s := range samples[len(samples)/2:] {
		if a := abs(s.MisalignNM); a > worstLocked {
			worstLocked = a
		}
		if a := abs(s.UncontrolledNM); a > worstFree {
			worstFree = a
		}
	}
	fmt.Printf("target:                 %.4f nm\n", target)
	fmt.Printf("thermal drift:          ±%.3f nm (±5 K)\n", 5*control.SiliconThermalShiftNMPerK)
	fmt.Printf("locked misalignment:    %.4f nm worst-case (steady state)\n", worstLocked)
	fmt.Printf("uncontrolled baseline:  %.4f nm worst-case\n", worstFree)
	fmt.Printf("heater energy:          %.1f pJ over %d calibration periods\n\n",
		loop.EnergyPJ(), len(samples))

	// Why it matters: the received-power eye of the SC unit under
	// the drift the loop removes vs the residual it leaves.
	eye := func(driftNM float64) float64 {
		p := core.PaperParams()
		p.FilterOffsetNM += driftNM
		return core.MustCircuit(p).EyeOpeningMW()
	}
	fmt.Printf("eye opening: aligned %.3f mW | locked residual %.3f mW | uncorrected drift %.3f mW\n",
		eye(0), eye(worstLocked), eye(0.05))

	// A few trajectory points for intuition.
	fmt.Println("\n t (µs)   misalign (nm)   heater (mW)")
	for _, k := range []int{0, 1, 2, 5, 10, 100, 1000, 4999} {
		s := samples[k]
		fmt.Printf(" %6.1f   %+.5f        %.3f\n", s.TimeS*1e6, s.MisalignNM, s.HeaterMW)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
