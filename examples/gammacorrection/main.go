// Gammacorrection: the paper's motivating image-processing workload
// (§V.C). A 6th-order Bernstein approximation of x^0.45 corrects a
// synthetic photograph through the optical stochastic-computing unit;
// quality is compared against the exact transfer function and the
// electronic ReSC baseline.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	img "repro/internal/image"
	"repro/internal/stochastic"
)

func main() {
	const (
		gamma   = 0.45
		degree  = 6
		stream  = 4096
		spacing = 0.3 // nm
	)

	// How well can a degree-6 Bernstein polynomial represent the
	// transfer function at all?
	poly, fitErr, err := stochastic.GammaCorrection(gamma, degree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degree-%d Bernstein fit of x^%.2f: max error %.4f\n", degree, gamma, fitErr)
	fmt.Printf("coefficients: %v\n\n", poly.Coef)

	src := img.Radial(128, 128)
	exact := img.GammaExact(src, gamma)

	electronic, err := img.GammaReSC(src, gamma, degree, stream, 7)
	if err != nil {
		log.Fatal(err)
	}
	optical, err := img.GammaOptical(src, gamma, degree, spacing, stream, 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PSNR vs exact: electronic ReSC %.2f dB, optical unit %.2f dB\n",
		img.PSNR(exact, electronic), img.PSNR(exact, optical))

	// Cost of the optical implementation.
	p, err := core.MRRFirst(core.MRRFirstSpec{Order: degree, WLSpacingNM: spacing})
	if err != nil {
		log.Fatal(err)
	}
	e := core.ParamsEnergy(p)
	fmt.Printf("optical unit: %.1f pJ/bit, %.3g pixels/s at %d-bit streams (%.0fx vs 100 MHz ReSC)\n",
		e.TotalPJ(), p.ThroughputBitsPerSec(stream), stream, p.SpeedupVsElectronic(100))

	// Persist the three results for visual inspection.
	for name, im := range map[string]*img.Gray{
		"gamma_input.pgm":      src,
		"gamma_exact.pgm":      exact,
		"gamma_electronic.pgm": electronic,
		"gamma_optical.pgm":    optical,
	} {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := im.WritePGM(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	fmt.Println("wrote gamma_{input,exact,electronic,optical}.pgm")
}
