// Quickstart: build the paper's 2nd-order optical stochastic-
// computing circuit, evaluate a Bernstein polynomial on it, and
// compare against the analytic value and the electronic ReSC
// baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stochastic"
)

func main() {
	// The §V.A reference design: 2nd order, 1 nm spacing, λ2 =
	// 1550 nm, 591.8 mW pump, 13.22 dB extinction ratio.
	params := core.PaperParams()
	circuit, err := core.NewCircuit(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pump laser:  %.1f mW\n", params.PumpPowerMW)
	fmt.Printf("MZI:         IL %.1f dB, ER %.2f dB\n", params.MZI.ILdB, params.MZI.ERdB)
	fmt.Printf("worst BER:   %.2e\n\n", circuit.BER())

	// An order-2 Bernstein polynomial with probability coefficients:
	// B(x) = 0.25·B02 + 0.625·B12 + 0.75·B22.
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})

	unit, err := core.NewUnit(circuit, poly, 2024)
	if err != nil {
		log.Fatal(err)
	}

	// Electronic baseline with independent randomness.
	resc, err := stochastic.NewReSCWithSeeds(poly, 4096)
	if err != nil {
		log.Fatal(err)
	}

	const bits = 1 << 14
	fmt.Printf("%-6s %-10s %-10s %-10s\n", "x", "analytic", "optical", "electronic")
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		optical, _ := unit.Evaluate(x, bits)
		electronic, _ := resc.Evaluate(x, bits)
		fmt.Printf("%-6.2f %-10.4f %-10.4f %-10.4f\n", x, poly.Eval(x), optical, electronic)
	}

	// The same sweep through the word-parallel batch engine: inputs
	// fan out over all cores, each with index-derived randomness, so
	// the result is reproducible on any machine.
	xs := []float64{0, 0.25, 0.5, 0.75, 1}
	batch := unit.EvaluateBatch(xs, bits)
	fmt.Printf("\n%-6s %-10s\n", "x", "batch")
	for i, x := range xs {
		fmt.Printf("%-6.2f %-10.4f\n", x, batch[i])
	}

	e := core.ParamsEnergy(params)
	fmt.Printf("\nlaser energy: %.1f pJ per computed bit (pump %.1f + %d probes %.1f)\n",
		e.TotalPJ(), e.PumpPJ, e.ProbeLasers, e.ProbePJ)
}
