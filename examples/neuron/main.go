// Neuron: the paper's introduction lists neural computation among the
// error-tolerant applications suited to stochastic computing. This
// example builds a two-input stochastic neuron entirely from the
// library: a MUX-based scaled addition combines the weighted inputs
// and the optical SC unit applies a logistic activation fitted as a
// degree-5 Bernstein polynomial.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/stochastic"
)

func main() {
	// Activation: logistic σ(4(x−½)) rescaled to [0,1] — a steep
	// sigmoid through (0.5, 0.5), comfortably representable.
	activation := func(x float64) float64 {
		return 1 / (1 + math.Exp(-4*(x-0.5)))
	}

	fu, err := core.NewFunctionUnit(activation, 5, 0.25, core.MRRFirstSpec{}, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("activation fit: degree 5, max error %.4f\n", fu.FitMaxErr)
	fmt.Printf("optical unit:   pump %.1f mW, %d probes × %.3f mW\n\n",
		fu.Unit.Circuit.P.PumpPowerMW, fu.Unit.Circuit.P.Order+1, fu.Unit.Circuit.P.ProbePowerMW)

	// Neuron: z = σ(w1·a + w2·b) with w1 + w2 = 1 realized by a MUX
	// whose select probability is w2.
	const (
		w2   = 0.35 // select probability => weights (0.65, 0.35)
		bits = 1 << 14
	)
	sng := func(seed uint64) *stochastic.SNG {
		return stochastic.NewSNG(stochastic.NewSplitMix64(seed))
	}

	fmt.Printf("%-8s %-8s %-12s %-12s %-12s\n", "a", "b", "pre-act", "optical", "exact")
	for _, in := range [][2]float64{{0.1, 0.2}, {0.5, 0.5}, {0.9, 0.3}, {0.2, 0.95}, {0.8, 0.9}} {
		a, b := in[0], in[1]
		sa := sng(7).Generate(a, bits)
		sb := sng(8).Generate(b, bits)
		sel := sng(9).Generate(w2, bits)
		pre := stochastic.ScaledAdd(sel, sa, sb) // 0.65a + 0.35b
		// The pre-activation stream's value feeds the optical unit.
		z := fu.Evaluate(pre.Value(), bits)
		exact := activation(0.65*a + 0.35*b)
		fmt.Printf("%-8.2f %-8.2f %-12.4f %-12.4f %-12.4f\n", a, b, pre.Value(), z, exact)
	}

	fmt.Println("\nthe whole chain — weighting, addition, activation — runs on probabilities;")
	fmt.Println("bit flips from optical noise shift values by 1/L instead of corrupting MSBs.")
}
