package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
)

// TestBuiltinsImplementCtxEngine: both built-ins expose native ctx
// dispatch, so the package adapters never fall back to polling for
// them.
func TestBuiltinsImplementCtxEngine(t *testing.T) {
	for _, e := range []Engine{Serial, WordParallel} {
		if _, ok := e.(CtxEngine); !ok {
			t.Errorf("%s does not implement CtxEngine", e.Name())
		}
	}
}

// TestForCtxCompletes: with a live context every index runs exactly
// once on every registered engine, and the error is nil.
func TestForCtxCompletes(t *testing.T) {
	for _, e := range All() {
		const n = 97
		visits := make([]int32, n)
		if err := ForCtx(context.Background(), e, n, func(i int) {
			atomic.AddInt32(&visits[i], 1)
		}); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("%s: index %d visited %d times", e.Name(), i, v)
			}
		}
	}
}

// TestForCtxPreCanceled: a dead-on-arrival context runs nothing and
// surfaces context.Canceled from every registered engine.
func TestForCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range All() {
		err := ForCtx(ctx, e, 50, func(i int) {
			t.Errorf("%s ran item %d under a canceled ctx", e.Name(), i)
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", e.Name(), err)
		}
	}
}

// TestForCtxCancelMidSweep: cancelling during the sweep stops dispatch
// at an item boundary — the serial engine (deterministic order) must
// skip everything after the cancelling item.
func TestForCtxCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int32
	err := ForCtx(ctx, Serial, 100, func(i int) {
		atomic.AddInt32(&ran, 1)
		if i == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran; got != 11 {
		t.Errorf("serial engine ran %d items after cancel at 10, want 11", got)
	}
}

// TestForCtxNilEngine: the adapters report a nil engine instead of
// panicking, matching Check.
func TestForCtxNilEngine(t *testing.T) {
	if err := ForCtx(context.Background(), nil, 4, func(int) {}); err == nil {
		t.Error("ForCtx(nil engine) accepted")
	}
	if err := ForWorkerCtx(context.Background(), nil, 4, 1, func(_, _ int) {}); err == nil {
		t.Error("ForWorkerCtx(nil engine) accepted")
	}
}

// plainEngine deliberately does not implement CtxEngine, forcing the
// package adapters down the polling path.
type plainEngine struct{}

func (plainEngine) Name() string    { return "plain-test" }
func (plainEngine) Workers(int) int { return 1 }
func (plainEngine) For(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
func (plainEngine) ForWorker(n, _ int, fn func(worker, i int)) {
	for i := 0; i < n; i++ {
		fn(0, i)
	}
}

// TestAdapterOnPlainEngine: an engine without ctx support still honors
// cancellation at item boundaries and converts panics to typed errors
// through the generic adapter.
func TestAdapterOnPlainEngine(t *testing.T) {
	if _, ok := Engine(plainEngine{}).(CtxEngine); ok {
		t.Fatal("fixture engine unexpectedly implements CtxEngine")
	}

	// Completion.
	var ran int32
	if err := ForCtx(context.Background(), plainEngine{}, 20, func(i int) {
		atomic.AddInt32(&ran, 1)
	}); err != nil || ran != 20 {
		t.Fatalf("complete: err=%v ran=%d", err, ran)
	}

	// Cancellation mid-sweep skips the tail.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran = 0
	err := ForCtx(ctx, plainEngine{}, 100, func(i int) {
		atomic.AddInt32(&ran, 1)
		if i == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel: err = %v", err)
	}
	if ran != 6 {
		t.Errorf("adapter ran %d items after cancel at 5, want 6", ran)
	}

	// Panic conversion with index attribution.
	err = ForWorkerCtx(context.Background(), plainEngine{}, 10, 1, func(w, i int) {
		if i == 7 {
			panic("adapter fault")
		}
	})
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic: err = %v (%T), want *parallel.PanicError", err, err)
	}
	if pe.Index != 7 {
		t.Errorf("panic attributed to index %d, want 7", pe.Index)
	}
}

// TestRunCtxComplete: a full run returns nil and fills the completion
// bitmap; a mis-sized bitmap is rejected.
func TestRunCtxComplete(t *testing.T) {
	done := make([]bool, 30)
	if err := RunCtx(context.Background(), WordParallel, 30, done, func(i int) {}); err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("index %d not marked done", i)
		}
	}
	if err := RunCtx(context.Background(), Serial, 30, make([]bool, 7), func(i int) {}); err == nil {
		t.Error("mis-sized done bitmap accepted")
	}
}

// TestRunCtxPartialOnCancel: an interrupted run surfaces a *Partial
// whose bitmap names exactly the completed points, with the context
// error reachable underneath.
func TestRunCtxPartialOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran [100]int32
	err := RunCtx(ctx, Serial, 100, nil, func(i int) {
		atomic.AddInt32(&ran[i], 1)
		if i == 20 {
			cancel()
		}
	})
	var p *Partial
	if !errors.As(err, &p) {
		t.Fatalf("err = %v (%T), want *Partial", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Partial does not unwrap to context.Canceled: %v", err)
	}
	if p.N != 100 || len(p.Done) != 100 {
		t.Fatalf("Partial N=%d len(Done)=%d", p.N, len(p.Done))
	}
	if p.Completed != 21 {
		t.Errorf("Completed = %d, want 21 (serial cancel at 20)", p.Completed)
	}
	for i, d := range p.Done {
		if d != (ran[i] == 1) {
			t.Errorf("Done[%d] = %v but item ran %d times", i, d, ran[i])
		}
	}
}

// TestRunCtxPartialOnPanic: a panicking work item surfaces as a
// *Partial wrapping the *parallel.PanicError that names the failing
// index — the typed-error half of the acceptance criteria.
func TestRunCtxPartialOnPanic(t *testing.T) {
	err := RunCtx(context.Background(), WordParallel, 64, nil, func(i int) {
		if i == 33 {
			panic("die fault")
		}
	})
	var p *Partial
	if !errors.As(err, &p) {
		t.Fatalf("err = %v (%T), want *Partial", err, err)
	}
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Partial does not unwrap to *parallel.PanicError: %v", err)
	}
	if pe.Index != 33 {
		t.Errorf("panic attributed to index %d, want 33", pe.Index)
	}
	if p.Done[33] {
		t.Error("panicking item marked done")
	}
}

// TestChunkedEdgeCases: the documented degenerate shapes — empty
// input, n below minChunk, a chunk size that does not divide n, and
// single-item chunks — all tile [0, n) exactly once.
func TestChunkedEdgeCases(t *testing.T) {
	// n == 0 (and negative): no chunks at all.
	for _, n := range []int{0, -3} {
		Chunked(WordParallel, n, 8, func(lo, hi int) {
			t.Errorf("Chunked(n=%d) ran chunk [%d, %d)", n, lo, hi)
		})
	}

	check := func(name string, e Engine, n, minChunk, wantChunks int) {
		t.Helper()
		covered := make([]int32, n)
		var chunks, single int32
		Chunked(e, n, minChunk, func(lo, hi int) {
			atomic.AddInt32(&chunks, 1)
			if hi-lo == 1 {
				atomic.AddInt32(&single, 1)
			}
			if lo < 0 || hi > n || hi <= lo {
				t.Errorf("%s: bad chunk [%d, %d)", name, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
			if minChunk > 1 && hi-lo < minChunk && chunks > 1 {
				// A multi-chunk partition must respect the floor; the
				// single-chunk fallback may be smaller than minChunk.
				t.Errorf("%s: chunk [%d, %d) below minChunk %d", name, lo, hi, minChunk)
			}
		})
		for i := range covered {
			if covered[i] != 1 {
				t.Fatalf("%s: index %d covered %d times", name, i, covered[i])
			}
		}
		if wantChunks > 0 && int(chunks) != wantChunks {
			t.Errorf("%s: %d chunks, want %d", name, chunks, wantChunks)
		}
	}

	// n < minChunk: collapses to the single inline chunk.
	check("n<minChunk", WordParallel, 5, 64, 1)
	// Chunk size not dividing n: 10 items, minChunk 3 → at most
	// ceil(10/3)=4 chunks (bounded also by workers), covering exactly.
	check("non-dividing", WordParallel, 10, 3, 0)
	// Single-item chunks: n == workers cap with minChunk 1 gives hi-lo
	// == 1 everywhere when the engine has at least n workers; with the
	// serial engine it is one chunk of n.
	if WordParallel.Workers(2) >= 2 {
		covered := make([]int32, 2)
		Chunked(WordParallel, 2, 1, func(lo, hi int) {
			atomic.AddInt32(&covered[lo], 1)
			if hi-lo != 1 {
				t.Errorf("chunk [%d, %d), want single-item", lo, hi)
			}
		})
		for i := range covered {
			if covered[i] != 1 {
				t.Errorf("single-item: index %d covered %d times", i, covered[i])
			}
		}
	}
	check("serial-single", Serial, 4, 1, 1)
}
