// Package enginetest is the single generic cross-engine equivalence
// and GOMAXPROCS-determinism suite. Each package with engine-accepting
// entry points registers one Case per entry point and calls Run once;
// the suite replays every case on every registered engine (engine.All)
// at GOMAXPROCS 1 and 4 and requires results deeply equal to the
// engine.Serial reference. A new engine therefore inherits the full
// equivalence battery by calling engine.Register — no per-path oracle
// tests to re-write. The osclint oraclepair rule enforces the
// registration side: every engine-accepting entry point must appear in
// a test file that invokes Run.
//
// The package deliberately does not import testing, so Run can also be
// driven by a recording TB — that is how its own teeth are proven:
// Lossy, a deliberately broken engine that drops the final index (the
// deterministic stand-in for a nondeterministic engine's missed work),
// must fail the suite.
package enginetest

import (
	"errors"
	"reflect"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/parallel"
)

// TB is the minimal testing surface Run needs; *testing.T satisfies
// it. (testing.TB itself cannot be implemented outside package
// testing, and the teeth test needs a recording implementation.)
type TB interface {
	Helper()
	Logf(format string, args ...any)
	Errorf(format string, args ...any)
}

// Case is one engine-accepting entry point under test. Eval must
// build any stateful fixtures (simulators, caches) fresh on every
// call and run the entry point on the given engine, returning the
// result and error exactly as produced.
type Case struct {
	Name string
	Eval func(e engine.Engine) (any, error)
}

// gomaxprocsLevels are the scheduler widths every (case, engine) pair
// replays under: the degenerate single-proc pool and a contended one.
var gomaxprocsLevels = []int{1, 4}

// Run replays every case on every engine at each GOMAXPROCS level and
// reports divergence from the engine.Serial reference through t. A
// nil engines slice means engine.All() — the standard call, so future
// registered engines are picked up automatically.
func Run(t TB, engines []engine.Engine, cases []Case) {
	t.Helper()
	if engines == nil {
		engines = engine.All()
	}
	for _, c := range cases {
		if c.Name == "" || c.Eval == nil {
			t.Errorf("enginetest: case %q has no name or no Eval", c.Name)
			continue
		}
		ref, refErr := evalAt(1, engine.Serial, c.Eval)
		if refErr != nil {
			t.Errorf("enginetest: %s: serial reference failed: %v", c.Name, refErr)
			continue
		}
		for _, e := range engines {
			for _, procs := range gomaxprocsLevels {
				got, err := evalAt(procs, e, c.Eval)
				if err != nil {
					t.Errorf("enginetest: %s: engine %q at GOMAXPROCS %d: %v", c.Name, e.Name(), procs, err)
					continue
				}
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("enginetest: %s: engine %q at GOMAXPROCS %d diverges from the serial reference\n got: %+v\nwant: %+v",
						c.Name, e.Name(), procs, got, ref)
				}
			}
		}
	}
}

// evalAt runs eval under a pinned GOMAXPROCS and restores the prior
// setting before returning.
func evalAt(procs int, e engine.Engine, eval func(engine.Engine) (any, error)) (any, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	return eval(e)
}

// chaosSuiteSeed fixes the fault schedule RunChaos uses, so a chaos
// failure reproduces identically on every run and machine.
const chaosSuiteSeed = 0xA24BAED4963EE407

// RunChaos is the adversarial counterpart of Run: it replays every
// case on every engine wrapped in fault-injecting engine.Chaos
// instances and asserts the repo's two robustness invariants hold
// under attack.
//
//  1. Recovery: with recoverable faults only (half the items dropped
//     and retried, some delayed), results must stay bit-identical to
//     the engine.Serial reference — reordering and scheduling jitter
//     must not leak into output.
//  2. Typed failure: with a panic injected at item 0, the case must
//     fail loudly and typed — either a panic carrying a
//     *parallel.PanicError or a returned error wrapping one, with the
//     injected engine.ChaosPanic reachable via errors.As. An engine
//     (or entry point) that swallows the fault and returns a result
//     anyway fails the suite.
//
// A nil engines slice means engine.All(). Like Run, it takes the TB
// surface so a recording TB can prove the suite's own teeth.
func RunChaos(t TB, engines []engine.Engine, cases []Case) {
	t.Helper()
	if engines == nil {
		engines = engine.All()
	}
	for _, c := range cases {
		if c.Name == "" || c.Eval == nil {
			t.Errorf("enginetest: chaos case %q has no name or no Eval", c.Name)
			continue
		}
		ref, refErr := evalAt(1, engine.Serial, c.Eval)
		if refErr != nil {
			t.Errorf("enginetest: %s: serial reference failed: %v", c.Name, refErr)
			continue
		}
		for _, e := range engines {
			recov := engine.NewChaos("chaos-recover("+e.Name()+")", e, chaosSuiteSeed, engine.ChaosSpec{
				DropProb:  0.5,
				DelayProb: 0.02,
				Delay:     20 * time.Microsecond,
			})
			got, err := evalAt(4, recov, c.Eval)
			switch {
			case err != nil:
				t.Errorf("enginetest: %s: engine %q errored under recoverable chaos: %v", c.Name, e.Name(), err)
			case !reflect.DeepEqual(got, ref):
				t.Errorf("enginetest: %s: engine %q diverges from the serial reference under recoverable chaos\n got: %+v\nwant: %+v",
					c.Name, e.Name(), got, ref)
			}

			boom := engine.NewChaos("chaos-panic("+e.Name()+")", e, chaosSuiteSeed, engine.ChaosSpec{
				DropProb: 0.25,
				Panic:    true,
				PanicAt:  0,
			})
			err, recovered := probe(boom, c.Eval)
			switch {
			case recovered != nil:
				pe, ok := recovered.(*parallel.PanicError)
				if !ok {
					t.Errorf("enginetest: %s: engine %q re-raised an untyped panic %v (%T), want *parallel.PanicError",
						c.Name, e.Name(), recovered, recovered)
				} else if !errors.As(pe, new(engine.ChaosPanic)) {
					t.Errorf("enginetest: %s: engine %q lost the injected fault under the panic: %v", c.Name, e.Name(), pe)
				}
			case err != nil:
				if !errors.As(err, new(engine.ChaosPanic)) {
					t.Errorf("enginetest: %s: engine %q returned an error not wrapping the injected fault: %v",
						c.Name, e.Name(), err)
				}
			default:
				t.Errorf("enginetest: %s: engine %q swallowed an injected panic and returned a result — panic propagation is broken",
					c.Name, e.Name())
			}
		}
	}
}

// probe runs eval under a pinned GOMAXPROCS, separating a returned
// error from a propagated panic.
func probe(e engine.Engine, eval func(engine.Engine) (any, error)) (err error, recovered any) {
	defer func() { recovered = recover() }()
	_, err = evalAt(4, e, eval)
	return err, nil
}

// Lossy is a deliberately broken Engine: it drops the final index of
// every fan-out — the deterministic stand-in for the work a racy
// engine loses. It exists so tests can prove Run has teeth (see
// TestSuiteCatchesLossyEngine) and is not in the registry.
var Lossy engine.Engine = lossyEngine{}

type lossyEngine struct{}

func (lossyEngine) Name() string    { return "lossy" }
func (lossyEngine) Workers(int) int { return 1 }

func (lossyEngine) For(n int, fn func(i int)) {
	for i := 0; i < n-1; i++ {
		fn(i)
	}
}

func (lossyEngine) ForWorker(n, _ int, fn func(worker, i int)) {
	for i := 0; i < n-1; i++ {
		fn(0, i)
	}
}

// mustUnion builds a shard union for the fixture engines below; the
// specs are static, so a constructor error is a programming bug.
func mustUnion(name string, shards ...engine.Shard) engine.Engine {
	u, err := engine.NewShardUnion(name, shards...)
	if err != nil {
		panic(err)
	}
	return u
}

// GappedShards is a deliberately incomplete shard composition: shards
// 0/3 and 2/3 without 1/3, the distributed-run failure mode of a shard
// that never ran (or a merge that accepted a gap). Indices owned by
// the missing shard stay zero-valued, so Run must flag it — the same
// divergence oscmerge's missing-index check fails closed on. Not in
// the registry; see TestSuiteCatchesGappedShards.
var GappedShards engine.Engine = mustUnion("gapped-shards",
	engine.Shard{K: 0, N: 3, Inner: engine.Serial},
	engine.Shard{K: 2, N: 3, Inner: engine.Serial},
)

// OverlapShards is the complementary broken composition: shard 0/3
// appears twice, so its indices run twice — the double-execution a
// merge of overlapping-but-disagreeing checkpoints would paper over.
// Any case that accumulates (the worker-scratch pattern) diverges, so
// Run must flag it. Not in the registry; see
// TestSuiteCatchesOverlappingShards.
var OverlapShards engine.Engine = mustUnion("overlap-shards",
	engine.Shard{K: 0, N: 3, Inner: engine.Serial},
	engine.Shard{K: 0, N: 3, Inner: engine.Serial},
	engine.Shard{K: 1, N: 3, Inner: engine.Serial},
	engine.Shard{K: 2, N: 3, Inner: engine.Serial},
)

// Swallow is the second deliberately broken Engine: it recovers and
// discards any panic a work item raises, then carries on — the
// anti-pattern the panic-propagation contract forbids (a fault
// silently becomes missing work). RunChaos must flag it (see
// TestChaosSuiteCatchesSwallowedPanics); it is not in the registry.
var Swallow engine.Engine = swallowEngine{}

type swallowEngine struct{}

func (swallowEngine) Name() string    { return "swallow" }
func (swallowEngine) Workers(int) int { return 1 }

func (swallowEngine) For(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		swallowOne(func() { fn(i) })
	}
}

func (swallowEngine) ForWorker(n, _ int, fn func(worker, i int)) {
	for i := 0; i < n; i++ {
		swallowOne(func() { fn(0, i) })
	}
}

func swallowOne(fn func()) {
	defer func() { _ = recover() }()
	fn()
}
