// Package enginetest is the single generic cross-engine equivalence
// and GOMAXPROCS-determinism suite. Each package with engine-accepting
// entry points registers one Case per entry point and calls Run once;
// the suite replays every case on every registered engine (engine.All)
// at GOMAXPROCS 1 and 4 and requires results deeply equal to the
// engine.Serial reference. A new engine therefore inherits the full
// equivalence battery by calling engine.Register — no per-path oracle
// tests to re-write. The osclint oraclepair rule enforces the
// registration side: every engine-accepting entry point must appear in
// a test file that invokes Run.
//
// The package deliberately does not import testing, so Run can also be
// driven by a recording TB — that is how its own teeth are proven:
// Lossy, a deliberately broken engine that drops the final index (the
// deterministic stand-in for a nondeterministic engine's missed work),
// must fail the suite.
package enginetest

import (
	"reflect"
	"runtime"

	"repro/internal/engine"
)

// TB is the minimal testing surface Run needs; *testing.T satisfies
// it. (testing.TB itself cannot be implemented outside package
// testing, and the teeth test needs a recording implementation.)
type TB interface {
	Helper()
	Logf(format string, args ...any)
	Errorf(format string, args ...any)
}

// Case is one engine-accepting entry point under test. Eval must
// build any stateful fixtures (simulators, caches) fresh on every
// call and run the entry point on the given engine, returning the
// result and error exactly as produced.
type Case struct {
	Name string
	Eval func(e engine.Engine) (any, error)
}

// gomaxprocsLevels are the scheduler widths every (case, engine) pair
// replays under: the degenerate single-proc pool and a contended one.
var gomaxprocsLevels = []int{1, 4}

// Run replays every case on every engine at each GOMAXPROCS level and
// reports divergence from the engine.Serial reference through t. A
// nil engines slice means engine.All() — the standard call, so future
// registered engines are picked up automatically.
func Run(t TB, engines []engine.Engine, cases []Case) {
	t.Helper()
	if engines == nil {
		engines = engine.All()
	}
	for _, c := range cases {
		if c.Name == "" || c.Eval == nil {
			t.Errorf("enginetest: case %q has no name or no Eval", c.Name)
			continue
		}
		ref, refErr := evalAt(1, engine.Serial, c.Eval)
		if refErr != nil {
			t.Errorf("enginetest: %s: serial reference failed: %v", c.Name, refErr)
			continue
		}
		for _, e := range engines {
			for _, procs := range gomaxprocsLevels {
				got, err := evalAt(procs, e, c.Eval)
				if err != nil {
					t.Errorf("enginetest: %s: engine %q at GOMAXPROCS %d: %v", c.Name, e.Name(), procs, err)
					continue
				}
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("enginetest: %s: engine %q at GOMAXPROCS %d diverges from the serial reference\n got: %+v\nwant: %+v",
						c.Name, e.Name(), procs, got, ref)
				}
			}
		}
	}
}

// evalAt runs eval under a pinned GOMAXPROCS and restores the prior
// setting before returning.
func evalAt(procs int, e engine.Engine, eval func(engine.Engine) (any, error)) (any, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	return eval(e)
}

// Lossy is a deliberately broken Engine: it drops the final index of
// every fan-out — the deterministic stand-in for the work a racy
// engine loses. It exists so tests can prove Run has teeth (see
// TestSuiteCatchesLossyEngine) and is not in the registry.
var Lossy engine.Engine = lossyEngine{}

type lossyEngine struct{}

func (lossyEngine) Name() string    { return "lossy" }
func (lossyEngine) Workers(int) int { return 1 }

func (lossyEngine) For(n int, fn func(i int)) {
	for i := 0; i < n-1; i++ {
		fn(i)
	}
}

func (lossyEngine) ForWorker(n, _ int, fn func(worker, i int)) {
	for i := 0; i < n-1; i++ {
		fn(0, i)
	}
}
