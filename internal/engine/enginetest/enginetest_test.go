package enginetest

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/stochastic"
)

// suiteCases is a miniature but representative workload: an indexed
// fan-out with per-index derived seeds and index-ordered aggregation,
// via both For and ForWorker.
func suiteCases() []Case {
	return []Case{
		{
			Name: "derived-seed-sweep",
			Eval: func(e engine.Engine) (any, error) {
				out := make([]uint64, 9)
				e.For(len(out), func(i int) {
					out[i] = stochastic.DeriveSeed(7, i)
				})
				return out, nil
			},
		},
		{
			Name: "worker-scratch-sum",
			Eval: func(e engine.Engine) (any, error) {
				const n = 33
				workers := e.Workers(n)
				partial := make([]float64, workers)
				e.ForWorker(n, workers, func(w, i int) {
					partial[w] += float64(i * i)
				})
				var sum float64
				for _, p := range partial {
					sum += p
				}
				return sum, nil
			},
		},
	}
}

// recorder is a TB that records failures instead of failing, so the
// suite itself can be put under test.
type recorder struct {
	failures []string
}

func (r *recorder) Helper() {}

func (r *recorder) Logf(format string, args ...any) {}

func (r *recorder) Errorf(format string, args ...any) {
	r.failures = append(r.failures, fmt.Sprintf(format, args...))
}

// TestBuiltinEnginesPassSuite: both registered engines reproduce the
// serial reference on the miniature workload — the suite run every
// evaluated package repeats with its real entry points.
func TestBuiltinEnginesPassSuite(t *testing.T) {
	Run(t, nil, suiteCases())
}

// TestSuiteCatchesLossyEngine proves the suite has teeth: an engine
// that violates exactly-once dispatch (Lossy drops the last index)
// must fail every case, deterministically.
func TestSuiteCatchesLossyEngine(t *testing.T) {
	rec := &recorder{}
	Run(rec, []engine.Engine{Lossy}, suiteCases())
	if len(rec.failures) == 0 {
		t.Fatal("suite accepted an engine that drops work; it has no teeth")
	}
	for _, want := range []string{"derived-seed-sweep", "worker-scratch-sum"} {
		found := false
		for _, f := range rec.failures {
			if strings.Contains(f, want) && strings.Contains(f, `"lossy"`) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("lossy engine not flagged on case %s; failures: %v", want, rec.failures)
		}
	}
}

// TestSuiteCatchesGappedShards: a shard family with a missing member
// leaves its indices zero-valued and must diverge from the serial
// reference — the suite-side proof that a gapped distributed run (or
// a merge that accepted one) cannot pass silently.
func TestSuiteCatchesGappedShards(t *testing.T) {
	rec := &recorder{}
	Run(rec, []engine.Engine{GappedShards}, suiteCases())
	if len(rec.failures) == 0 {
		t.Fatal("suite accepted a gapped shard union; it has no teeth")
	}
	found := false
	for _, f := range rec.failures {
		if strings.Contains(f, `"gapped-shards"`) && strings.Contains(f, "diverges") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("gapped shard union not flagged; failures: %v", rec.failures)
	}
}

// TestSuiteCatchesOverlappingShards: a family with a duplicated member
// runs its indices twice; the accumulating worker-scratch case must
// diverge, proving overlap cannot reassemble silently either.
func TestSuiteCatchesOverlappingShards(t *testing.T) {
	rec := &recorder{}
	Run(rec, []engine.Engine{OverlapShards}, suiteCases())
	found := false
	for _, f := range rec.failures {
		if strings.Contains(f, `"overlap-shards"`) && strings.Contains(f, "worker-scratch-sum") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("overlapping shard union not flagged; failures: %v", rec.failures)
	}
}

// TestRegisteredEnginesPassChaosSuite: every registered engine (the
// built-ins plus the registered chaos wrapper) recovers bit-identically
// from drop/delay faults and fails typed under injected panics.
func TestRegisteredEnginesPassChaosSuite(t *testing.T) {
	RunChaos(t, nil, suiteCases())
}

// TestChaosSuiteCatchesSwallowedPanics proves the chaos suite has
// teeth on the propagation side: an engine that recovers and discards
// work-item panics (Swallow) must be flagged for returning a result
// where a typed failure was due.
func TestChaosSuiteCatchesSwallowedPanics(t *testing.T) {
	rec := &recorder{}
	RunChaos(rec, []engine.Engine{Swallow}, suiteCases())
	if len(rec.failures) == 0 {
		t.Fatal("chaos suite accepted an engine that swallows panics; it has no teeth")
	}
	found := false
	for _, f := range rec.failures {
		if strings.Contains(f, `"swallow"`) && strings.Contains(f, "swallowed an injected panic") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("swallow engine not flagged for swallowing; failures: %v", rec.failures)
	}
}

// TestChaosSuiteCatchesDroppedWork proves the teeth on the recovery
// side: if retry/dispatch logic loses an item (Lossy drops the final
// dispatch slot, exactly what broken drop-then-retry would do), the
// recoverable-chaos replay must diverge from the serial reference.
func TestChaosSuiteCatchesDroppedWork(t *testing.T) {
	rec := &recorder{}
	RunChaos(rec, []engine.Engine{Lossy}, suiteCases())
	found := false
	for _, f := range rec.failures {
		if strings.Contains(f, `"lossy"`) && strings.Contains(f, "recoverable chaos") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("lossy engine not flagged under recoverable chaos; failures: %v", rec.failures)
	}
}

// TestSuiteRejectsMalformedCases: unnamed or Eval-less cases are
// reported rather than silently skipped.
func TestSuiteRejectsMalformedCases(t *testing.T) {
	rec := &recorder{}
	Run(rec, nil, []Case{{Name: "no-eval"}, {Eval: func(engine.Engine) (any, error) { return nil, nil }}})
	if len(rec.failures) != 2 {
		t.Fatalf("expected 2 malformed-case failures, got %v", rec.failures)
	}
}

// TestSuiteReportsReferenceFailure: a case whose serial reference
// errors is reported as such, not compared.
func TestSuiteReportsReferenceFailure(t *testing.T) {
	rec := &recorder{}
	Run(rec, nil, []Case{{
		Name: "broken-reference",
		Eval: func(e engine.Engine) (any, error) { return nil, fmt.Errorf("boom") },
	}})
	if len(rec.failures) != 1 || !strings.Contains(rec.failures[0], "serial reference failed") {
		t.Fatalf("reference failure not reported: %v", rec.failures)
	}
}
