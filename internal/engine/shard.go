package engine

import (
	"context"
	"errors"
	"fmt"
)

// ErrShardRemainder reports that a sharded dispatch completed every
// index it owns and deliberately skipped the rest. It is the expected
// "failure" of a Shard-wrapped sweep: RunCtx wraps it in a *Partial
// whose Done bitmap marks exactly the owned indices, so checkpointing
// layers persist the shard's slice of the study and a merge step (or a
// resume on the union of shard snapshots) reassembles the whole run
// bit-identically. Callers distinguish it from a real interruption with
// errors.Is.
var ErrShardRemainder = errors.New("engine: shard dispatch complete; non-owned indices skipped")

// Shard is the distributing wrapper engine: it filters an n-item
// dispatch down to the indices shard K of N owns and runs only those on
// the inner engine, preserving the index-ordered, bit-identical
// semantics of every item it runs. Because the sweeps in this repo
// derive all per-item randomness from the item index
// (stochastic.DeriveSeed), any index subset computes the same values it
// would in a full run — which is what makes every XOn entry point
// shardable across processes or machines with no per-path code.
//
// Ownership is round-robin by default (i % N == K, which balances any
// sweep shape) or a contiguous block partition when Contiguous is set
// (block K of a balanced split of [0, n), for shards that want cache
// locality over balance). Both partitions are total and disjoint across
// K = 0..N-1, so the union of all N shards covers every index exactly
// once.
//
// A Shard deliberately breaks the "every index runs exactly once"
// engine contract for the indices it does not own: plain For/ForWorker
// leave them untouched (zero-valued results), and the ctx dispatch
// reports them through ErrShardRemainder so RunCtx-based sweeps surface
// a *Partial with the owned indices marked Done. A bare Shard therefore
// does not register in the engine registry; the registered "sharded"
// engine is a ShardUnion of a full shard family, which restores the
// contract and proves reassembly equals the Serial reference through
// the enginetest suite.
type Shard struct {
	// K is this shard's id in [0, N); N is the total shard count.
	K, N int
	// Contiguous switches ownership from round-robin (i % N == K) to
	// the K-th block of a balanced partition of the index range.
	Contiguous bool
	// Inner runs the owned indices; it sees a dense [0, owned) dispatch
	// and must satisfy the usual engine contract for it.
	Inner Engine
}

// Validate reports a malformed shard spec: K out of [0, N), N < 1, or
// a missing inner engine.
func (s Shard) Validate() error {
	if s.N < 1 {
		return fmt.Errorf("engine: shard %d/%d: need at least 1 shard", s.K, s.N)
	}
	if s.K < 0 || s.K >= s.N {
		return fmt.Errorf("engine: shard %d/%d: shard index must be in [0, %d)", s.K, s.N, s.N)
	}
	if s.Inner == nil {
		return fmt.Errorf("engine: shard %d/%d has no inner engine", s.K, s.N)
	}
	return nil
}

// mustValidate panics on a malformed spec — For/ForWorker have no error
// return, matching Use's precedent for engine misuse.
func (s Shard) mustValidate() {
	if err := s.Validate(); err != nil {
		panic(err.Error())
	}
}

// Name implements Engine.
func (s Shard) Name() string {
	inner := "nil"
	if s.Inner != nil {
		inner = s.Inner.Name()
	}
	if s.Contiguous {
		return fmt.Sprintf("shard(%d/%d:block,%s)", s.K, s.N, inner)
	}
	return fmt.Sprintf("shard(%d/%d,%s)", s.K, s.N, inner)
}

// Owns reports whether this shard owns index i of a total-item sweep.
// Round-robin ownership ignores total; the contiguous block partition
// needs it.
func (s Shard) Owns(i, total int) bool {
	if i < 0 || (total >= 0 && i >= total) {
		return false
	}
	if s.Contiguous {
		return i >= s.K*total/s.N && i < (s.K+1)*total/s.N
	}
	return i%s.N == s.K
}

// owned lists the indices of [0, n) this shard owns, ascending — the
// dense sub-range the inner engine dispatches.
func (s Shard) owned(n int) []int {
	if n <= 0 {
		return nil
	}
	if s.Contiguous {
		lo, hi := s.K*n/s.N, (s.K+1)*n/s.N
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}
	out := make([]int, 0, n/s.N+1)
	for i := s.K; i < n; i += s.N {
		out = append(out, i)
	}
	return out
}

// Workers implements Engine: the inner pool size for the owned item
// count (at least 1 for n > 0, per the contract, even when this shard
// owns nothing).
func (s Shard) Workers(n int) int {
	s.mustValidate()
	w := s.Inner.Workers(len(s.owned(n)))
	if w < 1 && n > 0 {
		w = 1
	}
	return w
}

// For implements Engine for the owned indices; non-owned indices are
// skipped (their results stay zero-valued).
func (s Shard) For(n int, fn func(i int)) {
	s.mustValidate()
	owned := s.owned(n)
	s.Inner.For(len(owned), func(j int) { fn(owned[j]) })
}

// ForWorker implements Engine for the owned indices.
func (s Shard) ForWorker(n, workers int, fn func(worker, i int)) {
	s.mustValidate()
	owned := s.owned(n)
	s.Inner.ForWorker(len(owned), workers, func(w, j int) { fn(w, owned[j]) })
}

// ForCtx implements CtxEngine: the owned indices dispatch on the inner
// engine under ctx, and a run that finishes them all while skipping
// non-owned ones returns ErrShardRemainder — which RunCtx turns into a
// *Partial whose Done bitmap marks exactly the owned indices.
func (s Shard) ForCtx(ctx context.Context, n int, fn func(i int)) error {
	if err := s.Validate(); err != nil {
		return err
	}
	owned := s.owned(n)
	if err := ForCtx(ctx, s.Inner, len(owned), func(j int) { fn(owned[j]) }); err != nil {
		return err
	}
	if len(owned) < n {
		return ErrShardRemainder
	}
	return nil
}

// ForWorkerCtx implements CtxEngine with the same remainder semantics.
func (s Shard) ForWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if err := s.Validate(); err != nil {
		return err
	}
	owned := s.owned(n)
	if err := ForWorkerCtx(ctx, s.Inner, len(owned), workers, func(w, j int) { fn(w, owned[j]) }); err != nil {
		return err
	}
	if len(owned) < n {
		return ErrShardRemainder
	}
	return nil
}

// AsShard unwraps an engine selection to its Shard when the outermost
// wrapper is one (value or pointer) — the hook shard-aware layers like
// dse.Checkpointer use to filter by true item index before dispatching
// on the inner engine.
func AsShard(e Engine) (Shard, bool) {
	switch sh := e.(type) {
	case Shard:
		return sh, true
	case *Shard:
		if sh != nil {
			return *sh, true
		}
	}
	return Shard{}, false
}

// ShardsOf builds the complete round-robin shard family over inner:
// n shards whose ownership partitions any index range exactly. The
// family's union (ShardUnion) satisfies the full engine contract.
func ShardsOf(inner Engine, n int) []Shard {
	inner = Use(inner)
	if n < 1 {
		panic(fmt.Sprintf("engine: ShardsOf needs n >= 1 shards, got %d", n))
	}
	out := make([]Shard, n)
	for k := range out {
		out[k] = Shard{K: k, N: n, Inner: inner}
	}
	return out
}

// ShardUnion dispatches every one of its shards in order — the
// in-process composition of a distributed run, and the proof obligation
// behind it: when the shards are a complete family (ShardsOf), every
// index runs exactly once and the union satisfies the full determinism
// contract, so the registered "sharded" instance passes the generic
// enginetest suite. The constructor deliberately does not check
// coverage: a union over a gapped or overlapping shard list is exactly
// the broken composition the enginetest teeth fixtures (and oscmerge's
// fail-closed merge) must catch.
type ShardUnion struct {
	name   string
	shards []Shard
}

// NewShardUnion builds a union over the given shards. Each shard must
// validate individually; the list must be non-empty.
func NewShardUnion(name string, shards ...Shard) (*ShardUnion, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("engine: NewShardUnion %q: no shards", name)
	}
	for _, sh := range shards {
		if err := sh.Validate(); err != nil {
			return nil, fmt.Errorf("engine: NewShardUnion %q: %w", name, err)
		}
	}
	return &ShardUnion{name: name, shards: shards}, nil
}

// Name implements Engine.
func (u *ShardUnion) Name() string { return u.name }

// Workers implements Engine: the widest pool any member shard uses.
func (u *ShardUnion) Workers(n int) int {
	w := 1
	for _, sh := range u.shards {
		if sw := sh.Workers(n); sw > w {
			w = sw
		}
	}
	return w
}

// For implements Engine by running each shard's slice in turn.
func (u *ShardUnion) For(n int, fn func(i int)) {
	for _, sh := range u.shards {
		sh.For(n, fn)
	}
}

// ForWorker implements Engine.
func (u *ShardUnion) ForWorker(n, workers int, fn func(worker, i int)) {
	for _, sh := range u.shards {
		sh.ForWorker(n, workers, fn)
	}
}

// ForCtx implements CtxEngine. Each member shard's ErrShardRemainder
// is its normal completion — the union is responsible for the whole
// range only through the family it was built from, and a gap a partial
// family leaves is the enginetest suite's (or merge layer's) to catch.
func (u *ShardUnion) ForCtx(ctx context.Context, n int, fn func(i int)) error {
	for _, sh := range u.shards {
		if err := sh.ForCtx(ctx, n, fn); err != nil && !errors.Is(err, ErrShardRemainder) {
			return err
		}
	}
	return nil
}

// ForWorkerCtx implements CtxEngine.
func (u *ShardUnion) ForWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	for _, sh := range u.shards {
		if err := sh.ForWorkerCtx(ctx, n, workers, fn); err != nil && !errors.Is(err, ErrShardRemainder) {
			return err
		}
	}
	return nil
}

func init() {
	// The registered sharded composition: a complete 3-way round-robin
	// family over the word-parallel engine. Every package's enginetest
	// suite replays on it, pinning the scale-out story's core claim —
	// K shards reassemble bit-identically to the Serial reference.
	u, err := NewShardUnion("sharded", ShardsOf(WordParallel, 3)...)
	if err == nil {
		err = Register(u)
	}
	if err != nil {
		panic(err)
	}
}
