// Package engine is the pluggable evaluation-engine layer: a small
// interface over "run n independent, index-addressed work items" that
// every sweep, study and image batch in this repo dispatches through.
// Two engines are built in — Serial, the in-order reference
// implementation, and WordParallel, the internal/parallel worker pool
// the word-parallel migration runs on — and callers select one per
// call (the ...On entry points) or per process (SetDefault, oscbench's
// -engine flag). Serial oracles are no longer parallel code copies:
// XSerial is the same implementation run on engine.Serial.
//
// # The determinism contract
//
// An Engine is a scheduler, not a randomness source. Any Engine — the
// built-ins, a future bipolar or nanocavity backend, a remote shard —
// must satisfy the contract that makes results engine-independent:
//
//   - Exactly once: For(n, fn) and ForWorker(n, workers, fn) call fn
//     for every index in [0, n) exactly once, and return only after
//     every call has completed. No index may be skipped, duplicated,
//     or left in flight.
//   - Index-derived randomness: which goroutine runs which index is
//     the engine's business, so work functions must derive any
//     randomness from the index alone — stochastic.DeriveSeed(base, i)
//     — never from worker identity, shared generators, or the clock.
//     (The detrand lint rule enforces this at the call sites.)
//   - Index-ordered aggregation: engines impose no execution order;
//     callers write results to out[i] and reduce in index order, so
//     floating-point sums fold identically under any scheduling.
//   - O(workers) scratch: ForWorker's worker argument is in
//     [0, workers) and each concurrent goroutine owns a distinct
//     worker index for the duration of the call, so callers may
//     address per-worker scratch without locks. Workers(n) reports the
//     pool size the engine will use for n items, so scratch can be
//     sized before the fan-out; callers pass that same count back to
//     ForWorker.
//
// Any implementation holding those four properties produces results
// bit-identical to engine.Serial. That is not left to inspection: new
// engines register once (Register) and the generic
// enginetest.Run suite — one registration per package, covering every
// engine-accepting entry point — replays each path on every registered
// engine at GOMAXPROCS 1 and 4 against the Serial reference.
//
// Single-stream paths (transient.Simulator.TraceOn, MeasureEyeOn)
// consume one sequential noise stream and cannot fan out; they run
// their walk as a single work item, so every conforming engine emits
// the identical waveform and the suite still catches engines that
// violate exactly-once dispatch.
//
// Chunked batches cheap per-item work into contiguous index ranges
// (at most Workers ranges, each at least minChunk items) so paths
// whose items are a few microseconds — the OptimalSpacing bracketing
// scan — pay per-chunk rather than per-item dispatch overhead. With
// one worker (or one chunk) it degrades to the pure serial walk.
//
// # Cancellation, checkpointing, and fault injection
//
// Long sweeps are interruptible without giving up the contract. An
// engine may implement CtxEngine (both built-ins do) to dispatch
// under a context: ForCtx/ForWorkerCtx stop handing out items at the
// next item boundary once the context fires — items never run
// partially, are never re-run, and a worker panic surfaces as a typed
// *parallel.PanicError naming the faulting index instead of crashing
// the process. Engines without the ctx methods are adapted
// transparently (a per-item poll around the plain dispatch), so every
// registered engine is cancellable. RunCtx wraps an interruption in
// *Partial: the per-index Done bitmap and Completed count that tell a
// caller exactly which items finished — the unit of resumability
// dse.Checkpointer builds on (periodic durable snapshots, fail-closed
// key hashing, resume re-runs only the missing indices with
// bit-identical reassembly; oscbench -fig yield -checkpoint/-resume).
//
// Because "stops cleanly and resumes bit-identically" is a claim
// about failure paths, it is tested under injected faults: Chaos
// wraps any inner engine and — deterministically, from a seed —
// drops-then-retries items, delays them, or panics at a chosen index,
// while still satisfying the exactly-once contract when configured
// recoverably (the registered "chaos" engine runs the full enginetest
// suite like any backend). enginetest.RunChaos replays every entry
// point under recoverable chaos (must match the Serial reference
// bit-for-bit) and under an injected panic (must surface a typed
// error or panic that names the fault — silently swallowing it fails
// the suite).
//
// # Sharding
//
// Index-derived randomness also makes sweeps distributable: because
// item i's result never depends on which process ran it, a sweep can
// split across machines by index alone. Shard{K, N, Inner} wraps any
// engine and dispatches only the indices shard K of N owns (i%N == K,
// or contiguous blocks with Contiguous), bit-identical to the full
// run on the owned subset. A shard deliberately breaks exactly-once
// over [0, n) — it is exactly-once over its slice — so its ctx
// dispatch reports the unowned remainder through the normal Partial
// machinery with ErrShardRemainder as the cause and the Done bitmap
// equal to ownership; callers (dse.Checkpointer, oscbench -shard,
// /v1/yield's shard/of fields) treat that as "my share is complete"
// and assemble shards back into a full study with cmd/oscmerge or
// ShardUnion. The registered "sharded" engine is a ShardUnion of
// three round-robin shards over WordParallel: the union restores
// exactly-once coverage, so it passes the full enginetest suite —
// gapped or overlapping unions are the teeth fixtures that prove the
// suite would catch a wrong split.
package engine
