package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestLimitedRunsEveryIndexOnce: the semaphore changes scheduling
// only — every index still runs exactly once, on both dispatch faces.
func TestLimitedRunsEveryIndexOnce(t *testing.T) {
	l := NewLimited("t", WordParallel, 2)
	const n = 64
	var counts [n]atomic.Int32
	l.For(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("For: index %d ran %d times, want 1", i, got)
		}
		counts[i].Store(0)
	}
	w := l.Workers(n)
	l.ForWorker(n, w, func(_, i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("ForWorker: index %d ran %d times, want 1", i, got)
		}
	}
}

// TestLimitedCapsConcurrency: at no instant do more than Slots()
// items run, even when the inner pool is wider.
func TestLimitedCapsConcurrency(t *testing.T) {
	const slots = 2
	l := NewLimited("t", WordParallel, slots)
	var cur, peak atomic.Int32
	l.For(128, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > slots {
		t.Fatalf("peak concurrency %d exceeds the %d-slot cap", p, slots)
	}
	if in := l.InFlight(); in != 0 {
		t.Fatalf("InFlight() = %d after dispatch returned, want 0", in)
	}
}

// TestLimitedWorkersCappedBySlots: Workers never reports more
// parallelism than the semaphore allows.
func TestLimitedWorkersCappedBySlots(t *testing.T) {
	l := NewLimited("t", WordParallel, 1)
	if w := l.Workers(100); w != 1 {
		t.Fatalf("Workers(100) = %d with 1 slot, want 1", w)
	}
	if s := l.Slots(); s != 1 {
		t.Fatalf("Slots() = %d, want 1", s)
	}
}

// TestLimitedReleasesSlotOnPanic: a panicking item must not leak
// semaphore capacity; the panic itself still propagates typed.
func TestLimitedReleasesSlotOnPanic(t *testing.T) {
	l := NewLimited("t", Serial, 1)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("panic did not propagate through Limited")
			}
		}()
		l.For(1, func(int) { panic("boom") })
	}()
	if in := l.InFlight(); in != 0 {
		t.Fatalf("InFlight() = %d after a panic, want 0 (leaked slot)", in)
	}
	// The freed slot must still be usable.
	ran := false
	l.For(1, func(int) { ran = true })
	if !ran {
		t.Fatal("dispatch after a panic did not run")
	}
}

// TestLimitedCtxCancelWhileSaturated: a dispatch cancelled while the
// semaphore is held by someone else reports the cancellation — never
// a silent success with work skipped.
func TestLimitedCtxCancelWhileSaturated(t *testing.T) {
	l := NewLimited("t", WordParallel, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		l.For(1, func(int) { close(started); <-block })
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	ran := make(chan struct{}, 1)
	go func() {
		errCh <- l.ForCtx(ctx, 1, func(int) { ran <- struct{}{} })
	}()
	cancel()
	err := <-errCh
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx under a held slot returned %v, want context.Canceled", err)
	}
	select {
	case <-ran:
		t.Fatal("cancelled dispatch ran its item anyway")
	default:
	}
	close(block)
	<-holderDone
}

// TestLimitedMisuse: the constructor rejects broken configurations
// loudly.
func TestLimitedMisuse(t *testing.T) {
	for name, build := range map[string]func(){
		"nil inner": func() { NewLimited("t", nil, 1) },
		"zero slot": func() { NewLimited("t", Serial, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewLimited did not panic", name)
				}
			}()
			build()
		}()
	}
}

// TestLimitedRegistered: the shared "limited" instance is in the
// registry, so every package's enginetest suite replays on it.
func TestLimitedRegistered(t *testing.T) {
	e, err := Get("limited")
	if err != nil {
		t.Fatalf("Get(limited): %v", err)
	}
	l, ok := e.(*Limited)
	if !ok {
		t.Fatalf("registered limited engine is %T, want *Limited", e)
	}
	if l.Slots() < 1 {
		t.Fatalf("registered limited engine has %d slots", l.Slots())
	}
	if _, ok := e.(CtxEngine); !ok {
		t.Fatal("*Limited does not implement CtxEngine")
	}
}
