package engine

import (
	"context"
	"sync/atomic"
)

// Limited wraps an inner engine behind a shared slot semaphore: at
// most `slots` work items run concurrently across every dispatch that
// goes through the same Limited instance. It is the admission seam a
// long-running service needs — N concurrent jobs can all dispatch on
// one Limited engine without oversubscribing the machine, because the
// cap applies to the union of their items, not per dispatch.
//
// Limiting changes scheduling only: every index still runs exactly
// once with the same derived seeds, so a Limited engine satisfies the
// full determinism contract and passes the generic enginetest suite
// (its results are bit-identical to engine.Serial).
type Limited struct {
	name  string
	inner Engine
	slots chan struct{}
}

// NewLimited wraps inner behind a semaphore of `slots` concurrently
// running items. A nil inner or slots < 1 panics (engine misuse, like
// Use).
func NewLimited(name string, inner Engine, slots int) *Limited {
	if slots < 1 {
		panic("engine: NewLimited needs slots >= 1")
	}
	return &Limited{name: name, inner: Use(inner), slots: make(chan struct{}, slots)}
}

// Name implements Engine.
func (l *Limited) Name() string { return l.name }

// Workers implements Engine: the inner pool size, capped at the slot
// count (more workers than slots would only block on the semaphore).
func (l *Limited) Workers(n int) int {
	w := l.inner.Workers(n)
	if cap(l.slots) < w {
		return cap(l.slots)
	}
	return w
}

// Slots reports the concurrency cap the engine was built with.
func (l *Limited) Slots() int { return cap(l.slots) }

// InFlight reports how many items are running right now — what a
// service health endpoint surfaces as dispatch load.
func (l *Limited) InFlight() int { return len(l.slots) }

// run executes one item inside a slot, releasing it even when the
// item panics so a fault never leaks semaphore capacity.
func (l *Limited) run(fn func()) {
	l.slots <- struct{}{}
	defer func() { <-l.slots }()
	fn()
}

// For implements Engine.
func (l *Limited) For(n int, fn func(i int)) {
	l.inner.For(n, func(i int) { l.run(func() { fn(i) }) })
}

// ForWorker implements Engine.
func (l *Limited) ForWorker(n, workers int, fn func(worker, i int)) {
	l.inner.ForWorker(n, workers, func(w, i int) { l.run(func() { fn(w, i) }) })
}

// ForCtx implements CtxEngine. Cancellation is observed both by the
// inner engine's own handout and while waiting for a slot, so a
// saturated semaphore cannot outlive the caller's deadline. An item
// skipped at the slot wait is reported through the returned error —
// the inner dispatch may have walked past it, but ForCtx never
// returns nil with work undone.
func (l *Limited) ForCtx(ctx context.Context, n int, fn func(i int)) error {
	var skipped atomic.Bool
	err := ForCtx(ctx, l.inner, n, func(i int) { l.runCtx(ctx, &skipped, func() { fn(i) }) })
	if err == nil && skipped.Load() {
		err = ctx.Err()
	}
	return err
}

// ForWorkerCtx implements CtxEngine.
func (l *Limited) ForWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	var skipped atomic.Bool
	err := ForWorkerCtx(ctx, l.inner, n, workers, func(w, i int) { l.runCtx(ctx, &skipped, func() { fn(w, i) }) })
	if err == nil && skipped.Load() {
		err = ctx.Err()
	}
	return err
}

func init() {
	// A shared registered instance with a deliberately tight cap, so
	// every package's enginetest suite replays on a slot-starved
	// dispatch — proof that admission limiting never changes results.
	if err := Register(NewLimited("limited", WordParallel, 2)); err != nil {
		panic(err)
	}
}

// runCtx is run with a cancellable slot acquisition: when the context
// fires before a slot frees, the item is skipped and flagged so the
// dispatch reports the cancellation instead of success — a skipped
// item is never silently treated as done.
func (l *Limited) runCtx(ctx context.Context, skipped *atomic.Bool, fn func()) {
	if ctx == nil {
		l.run(fn)
		return
	}
	select {
	case l.slots <- struct{}{}:
	case <-ctx.Done():
		skipped.Store(true)
		return
	}
	defer func() { <-l.slots }()
	fn()
}
