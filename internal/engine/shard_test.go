package engine

import (
	"context"
	"errors"
	"testing"
)

// TestShardOwnershipPartitions: both ownership modes are total and
// disjoint — every index of a sweep is owned by exactly one shard of
// the family, for shard counts that divide the range and ones that
// don't.
func TestShardOwnershipPartitions(t *testing.T) {
	for _, contiguous := range []bool{false, true} {
		for _, total := range []int{0, 1, 2, 7, 33, 64} {
			for _, n := range []int{1, 2, 3, 5} {
				owners := make([]int, total)
				for i := range owners {
					owners[i] = -1
				}
				for k := 0; k < n; k++ {
					sh := Shard{K: k, N: n, Contiguous: contiguous, Inner: Serial}
					for i := 0; i < total; i++ {
						if !sh.Owns(i, total) {
							continue
						}
						if owners[i] != -1 {
							t.Fatalf("contiguous=%v total=%d n=%d: index %d owned by shards %d and %d",
								contiguous, total, n, i, owners[i], k)
						}
						owners[i] = k
					}
				}
				for i, k := range owners {
					if k == -1 {
						t.Fatalf("contiguous=%v total=%d n=%d: index %d owned by no shard",
							contiguous, total, n, i)
					}
				}
			}
		}
	}
}

// TestShardOwnsRejectsOutOfRange: indices outside [0, total) are never
// owned, so a stale index can't sneak into a shard's slice.
func TestShardOwnsRejectsOutOfRange(t *testing.T) {
	sh := Shard{K: 0, N: 3, Inner: Serial}
	if sh.Owns(-3, 10) {
		t.Error("Owns(-3, 10) = true, want false")
	}
	if sh.Owns(12, 10) {
		t.Error("Owns(12, 10) = true, want false")
	}
}

// TestShardForRunsOwnedIndicesOnce: For and ForWorker run exactly the
// owned indices, exactly once, and leave the rest untouched.
func TestShardForRunsOwnedIndicesOnce(t *testing.T) {
	const n = 20
	for _, contiguous := range []bool{false, true} {
		sh := Shard{K: 1, N: 3, Contiguous: contiguous, Inner: WordParallel}
		counts := make([]int, n)
		sh.For(n, func(i int) { counts[i]++ })
		for i, c := range counts {
			want := 0
			if sh.Owns(i, n) {
				want = 1
			}
			if c != want {
				t.Errorf("contiguous=%v For: index %d ran %d times, want %d", contiguous, i, c, want)
			}
		}

		counts = make([]int, n)
		w := sh.Workers(n)
		sh.ForWorker(n, w, func(_, i int) { counts[i]++ })
		for i, c := range counts {
			want := 0
			if sh.Owns(i, n) {
				want = 1
			}
			if c != want {
				t.Errorf("contiguous=%v ForWorker: index %d ran %d times, want %d", contiguous, i, c, want)
			}
		}
	}
}

// TestShardValidate pins the malformed-spec errors the CLI surfaces.
func TestShardValidate(t *testing.T) {
	cases := []struct {
		name string
		sh   Shard
		ok   bool
	}{
		{"valid", Shard{K: 0, N: 1, Inner: Serial}, true},
		{"valid-last", Shard{K: 2, N: 3, Inner: Serial}, true},
		{"k==n", Shard{K: 3, N: 3, Inner: Serial}, false},
		{"negative-k", Shard{K: -1, N: 2, Inner: Serial}, false},
		{"zero-n", Shard{K: 0, N: 0, Inner: Serial}, false},
		{"nil-inner", Shard{K: 0, N: 2}, false},
	}
	for _, c := range cases {
		err := c.sh.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: Validate() = nil, want error", c.name)
		}
	}
}

// TestShardForPanicsOnInvalidSpec: the no-error dispatch faces treat a
// malformed spec as misuse, like Use does for a nil engine.
func TestShardForPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("For on an invalid shard did not panic")
		}
	}()
	Shard{K: 3, N: 3, Inner: Serial}.For(4, func(int) {})
}

// TestShardForCtxReportsRemainderAsPartial: the ctx face reports the
// skipped non-owned indices through RunCtx as a *Partial wrapping
// ErrShardRemainder, with the Done bitmap marking exactly the owned
// indices — the contract the checkpoint and merge layers build on.
func TestShardForCtxReportsRemainderAsPartial(t *testing.T) {
	const n = 10
	sh := Shard{K: 2, N: 3, Inner: WordParallel}
	got := make([]int, n)
	err := RunCtx(context.Background(), sh, n, nil, func(i int) { got[i] = i + 1 })
	var p *Partial
	if !errors.As(err, &p) {
		t.Fatalf("RunCtx error = %v, want *Partial", err)
	}
	if !errors.Is(err, ErrShardRemainder) {
		t.Fatalf("RunCtx error = %v, want to wrap ErrShardRemainder", err)
	}
	owned := 0
	for i := 0; i < n; i++ {
		if sh.Owns(i, n) {
			owned++
		}
		if p.Done[i] != sh.Owns(i, n) {
			t.Errorf("Done[%d] = %v, want %v", i, p.Done[i], sh.Owns(i, n))
		}
		want := 0
		if sh.Owns(i, n) {
			want = i + 1
		}
		if got[i] != want {
			t.Errorf("item %d = %d, want %d", i, got[i], want)
		}
	}
	if p.N != n || p.Completed != owned {
		t.Errorf("Partial = %d/%d completed, want %d/%d", p.Completed, p.N, owned, n)
	}
}

// TestShardForCtxFullCoverageSucceeds: a 1-of-1 shard owns everything
// and returns nil, not a remainder.
func TestShardForCtxFullCoverageSucceeds(t *testing.T) {
	sh := Shard{K: 0, N: 1, Inner: Serial}
	ran := 0
	if err := sh.ForCtx(context.Background(), 5, func(int) { ran++ }); err != nil {
		t.Fatalf("ForCtx = %v, want nil", err)
	}
	if ran != 5 {
		t.Fatalf("ran %d items, want 5", ran)
	}
}

// TestShardForCtxPropagatesCancellation: a real interruption inside the
// owned slice surfaces as the context error, not as a remainder.
func TestShardForCtxPropagatesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sh := Shard{K: 0, N: 2, Inner: Serial}
	err := sh.ForCtx(ctx, 8, func(int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrShardRemainder) {
		t.Fatal("cancellation must not masquerade as a shard remainder")
	}
}

// TestShardForCtxInvalidSpecReturnsError: the ctx faces return the
// validation error instead of panicking, so the CLI path fails typed.
func TestShardForCtxInvalidSpecReturnsError(t *testing.T) {
	sh := Shard{K: -1, N: 2, Inner: Serial}
	if err := sh.ForCtx(context.Background(), 4, func(int) {}); err == nil {
		t.Fatal("ForCtx on an invalid shard returned nil error")
	}
}

// TestAsShard: value and pointer shards unwrap; anything else doesn't.
func TestAsShard(t *testing.T) {
	sh := Shard{K: 1, N: 2, Inner: Serial}
	if got, ok := AsShard(sh); !ok || got != sh {
		t.Errorf("AsShard(value) = %v, %v", got, ok)
	}
	if got, ok := AsShard(&sh); !ok || got != sh {
		t.Errorf("AsShard(pointer) = %v, %v", got, ok)
	}
	if _, ok := AsShard(Serial); ok {
		t.Error("AsShard(Serial) = true, want false")
	}
	if _, ok := AsShard((*Shard)(nil)); ok {
		t.Error("AsShard(nil *Shard) = true, want false")
	}
}

// TestShardsOfUnionCoversExactlyOnce: the complete family's union runs
// every index exactly once — the reassembly identity the registered
// "sharded" engine carries into every package's enginetest suite.
func TestShardsOfUnionCoversExactlyOnce(t *testing.T) {
	u, err := NewShardUnion("t", ShardsOf(Serial, 4)...)
	if err != nil {
		t.Fatal(err)
	}
	const n = 21
	counts := make([]int, n)
	u.For(n, func(i int) { counts[i]++ })
	for i, c := range counts {
		if c != 1 {
			t.Errorf("For: index %d ran %d times, want 1", i, c)
		}
	}
	if err := u.ForCtx(context.Background(), n, func(int) {}); err != nil {
		t.Errorf("complete-family ForCtx = %v, want nil (remainders are internal)", err)
	}
}

// TestNewShardUnionFailsClosed: empty lists and invalid members are
// rejected at construction.
func TestNewShardUnionFailsClosed(t *testing.T) {
	if _, err := NewShardUnion("t"); err == nil {
		t.Error("empty union accepted")
	}
	if _, err := NewShardUnion("t", Shard{K: 2, N: 2, Inner: Serial}); err == nil {
		t.Error("invalid member shard accepted")
	}
}

// TestShardedEngineRegistered: the "sharded" composition is in the
// registry, so every enginetest suite replays on it automatically.
func TestShardedEngineRegistered(t *testing.T) {
	e, err := Get("sharded")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*ShardUnion); !ok {
		t.Fatalf("registered sharded engine is %T, want *ShardUnion", e)
	}
}

// TestShardWorkersAtLeastOne: even a shard that owns nothing at small n
// reports a usable pool size, per the Workers contract.
func TestShardWorkersAtLeastOne(t *testing.T) {
	sh := Shard{K: 2, N: 3, Inner: WordParallel}
	if w := sh.Workers(2); w < 1 {
		t.Fatalf("Workers(2) = %d, want >= 1", w)
	}
}
