package engine

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/parallel"
)

// CtxEngine is the optional context-aware face of an Engine. Both
// built-ins implement it; engines that do not are still usable through
// the package-level ForCtx/ForWorkerCtx adapters, which poll the
// context at item boundaries around the engine's plain dispatch.
//
// The contract extends the Engine one: on a nil error every index in
// [0, n) ran exactly once; on a non-nil error no item was interrupted
// mid-run (cancellation is only observed between items), undispatched
// items were skipped, and the error is either the context's error or a
// *parallel.PanicError attributing a panicking item.
type CtxEngine interface {
	Engine
	// ForCtx is For with cooperative cancellation and panic-to-error
	// conversion.
	ForCtx(ctx context.Context, n int, fn func(i int)) error
	// ForWorkerCtx is ForWorker with the same semantics.
	ForWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error
}

func (serialEngine) ForCtx(ctx context.Context, n int, fn func(i int)) error {
	return serialEngine{}.ForWorkerCtx(ctx, n, 1, func(_, i int) { fn(i) })
}

func (serialEngine) ForWorkerCtx(ctx context.Context, n, _ int, fn func(worker, i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if pe := parallel.Capture(0, i, func() { fn(0, i) }); pe != nil {
			return pe
		}
	}
	return nil
}

func (wordParallelEngine) ForCtx(ctx context.Context, n int, fn func(i int)) error {
	return parallel.ForCtx(ctx, n, fn)
}

func (wordParallelEngine) ForWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	return parallel.ForWorkerCtx(ctx, n, workers, fn)
}

// ForCtx dispatches fn over [0, n) on e under ctx: engines that
// implement CtxEngine cancel through their own handout; any other
// engine is adapted by polling ctx at item boundaries around its plain
// For, with panics captured into the returned error. A nil engine is
// an error; a nil ctx means context.Background().
func ForCtx(ctx context.Context, e Engine, n int, fn func(i int)) error {
	if err := Check(e); err != nil {
		return err
	}
	if ce, ok := e.(CtxEngine); ok {
		return ce.ForCtx(ctx, n, fn)
	}
	return adaptCtx(ctx, n, func(w, i int) { fn(i) }, func(run func(w, i int)) {
		e.For(n, func(i int) { run(0, i) })
	})
}

// ForWorkerCtx is ForCtx with the ForWorker scratch contract.
func ForWorkerCtx(ctx context.Context, e Engine, n, workers int, fn func(worker, i int)) error {
	if err := Check(e); err != nil {
		return err
	}
	if ce, ok := e.(CtxEngine); ok {
		return ce.ForWorkerCtx(ctx, n, workers, fn)
	}
	return adaptCtx(ctx, n, fn, func(run func(w, i int)) {
		e.ForWorker(n, workers, run)
	})
}

// adaptCtx bolts item-boundary cancellation and panic capture onto a
// plain Engine dispatch for engines that do not implement CtxEngine.
// dispatch runs the engine's own For/ForWorker with the wrapped work
// function; the wrapper skips items once ctx has fired (the engine
// still walks the remaining indices — a plain Engine has no early
// exit — but no further user work runs) and converts panics into a
// *parallel.PanicError re-raised through the engine, which must
// propagate work-function panics per the Engine contract.
func adaptCtx(ctx context.Context, n int, fn func(worker, i int), dispatch func(run func(w, i int))) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	inner := func(run func(w, i int)) (pe *parallel.PanicError) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if p, ok := r.(*parallel.PanicError); ok {
				pe = p
				return
			}
			// A plain panic that crossed the engine: attribute what is
			// known (the dispatch, not a worker identity).
			pe = &parallel.PanicError{Worker: -1, Index: -1, Value: r}
		}()
		dispatch(run)
		return nil
	}
	var skipped atomic.Bool
	pe := inner(func(w, i int) {
		if ctx.Err() != nil {
			skipped.Store(true)
			return
		}
		if pe := parallel.Capture(w, i, func() { fn(w, i) }); pe != nil {
			panic(pe)
		}
	})
	if pe != nil {
		return pe
	}
	if skipped.Load() {
		return ctx.Err()
	}
	return nil
}

// Partial is the typed error an interrupted sweep returns: which
// points completed before the run stopped, and why it stopped. The
// cause is reachable through errors.Is/As — context.Canceled or
// context.DeadlineExceeded for cancellation, *parallel.PanicError for
// a panicking work item.
//
// A Partial accompanies partial results: sweep runners that return it
// also return their output slice with Done[i]==true entries valid, so
// checkpointing layers can persist what finished.
type Partial struct {
	// N is the sweep size; Completed counts finished points.
	N, Completed int
	// Done reports per-index completion; len(Done) == N.
	Done []bool
	// Cause is the underlying interruption.
	Cause error
}

// Error implements error.
func (p *Partial) Error() string {
	return fmt.Sprintf("engine: sweep interrupted after %d/%d points: %v", p.Completed, p.N, p.Cause)
}

// Unwrap exposes the cause to errors.Is/As.
func (p *Partial) Unwrap() error { return p.Cause }

// RunCtx dispatches fn over [0, n) on e under ctx and reports
// interruption as a *Partial carrying the per-index completion bitmap
// — the primitive the ctx-aware sweep entry points (dse.SweepCtx,
// transient.BERWaterfallCtx, ...) are built on. Returns nil once every
// item completed. done, when non-nil, receives per-index completion
// (it must have length n); pass nil to let RunCtx track internally.
func RunCtx(ctx context.Context, e Engine, n int, done []bool, fn func(i int)) error {
	if err := Check(e); err != nil {
		return err
	}
	if n < 0 {
		n = 0
	}
	if done == nil {
		done = make([]bool, n)
	} else if len(done) != n {
		return fmt.Errorf("engine: RunCtx done bitmap has %d entries for %d items", len(done), n)
	}
	err := ForCtx(ctx, e, n, func(i int) {
		fn(i)
		done[i] = true
	})
	if err == nil {
		return nil
	}
	completed := 0
	for _, d := range done {
		if d {
			completed++
		}
	}
	return &Partial{N: n, Completed: completed, Done: done, Cause: err}
}
