package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/parallel"
	"repro/internal/stochastic"
)

// ChaosSpec selects the faults a Chaos engine injects. The zero value
// is benign (no faults). All randomness is drawn per index from the
// engine's seed via stochastic.DeriveSeed, so a given (seed, spec, n)
// always faults the same items — chaos runs are as reproducible as the
// sweeps they stress.
type ChaosSpec struct {
	// DropProb is the probability an index is dropped from the first
	// dispatch pass and retried in a second one. Every index still runs
	// exactly once, so a conforming work function produces bit-identical
	// results; what the drop stresses is order-independence.
	DropProb float64
	// DelayProb is the probability an index sleeps Delay before running,
	// perturbing scheduling without touching results.
	DelayProb float64
	// Delay is the injected sleep for delayed items.
	Delay time.Duration
	// Panic, when set, makes item PanicAt (clamped to [0, n-1]) panic
	// with a ChaosPanic instead of running — exercising the panic
	// capture and typed-error propagation path end to end.
	Panic bool
	// PanicAt is the index to panic at when Panic is set.
	PanicAt int
}

// ChaosPanic is the error value a Chaos engine panics with when
// ChaosSpec.Panic is set. It is reachable from the surfaced
// *parallel.PanicError through errors.As (PanicError.Unwrap exposes
// error panic values), so tests can tell an injected fault from a real
// one.
type ChaosPanic struct {
	// Index is the item the panic was injected at.
	Index int
}

// Error implements error.
func (c ChaosPanic) Error() string {
	return fmt.Sprintf("engine: chaos: injected panic at item %d", c.Index)
}

// Chaos is a fault-injecting wrapper engine: it dispatches on an inner
// engine but reorders dropped-then-retried items, delays some, and
// optionally panics at a chosen index, per its ChaosSpec. With a
// benign spec (no Panic) it satisfies the full determinism contract —
// every index runs exactly once — so it can sit in the registry and
// pass the generic equivalence suite while stressing scheduling,
// ordering and recovery assumptions in every dispatch.
type Chaos struct {
	name  string
	inner Engine
	seed  uint64
	spec  ChaosSpec
}

// NewChaos wraps inner in a fault injector named name, drawing its
// per-index fault decisions from seed. A nil inner panics (Use).
func NewChaos(name string, inner Engine, seed uint64, spec ChaosSpec) *Chaos {
	return &Chaos{name: name, inner: Use(inner), seed: seed, spec: spec}
}

// Name implements Engine.
func (c *Chaos) Name() string { return c.name }

// Workers implements Engine by deferring to the inner engine.
func (c *Chaos) Workers(n int) int { return c.inner.Workers(n) }

// Spec returns the fault plan the engine was built with.
func (c *Chaos) Spec() ChaosSpec { return c.spec }

// plan draws the deterministic fault plan for an n-item dispatch: the
// index handout order (kept items first, dropped ones retried at the
// end) and the per-index delay decisions. Both draws happen for every
// index regardless of the spec's probabilities, so enabling one fault
// never shifts another's decisions.
func (c *Chaos) plan(n int) (order []int, delayed []bool) {
	order = make([]int, 0, n)
	retry := make([]int, 0, n/4+1)
	delayed = make([]bool, n)
	for i := 0; i < n; i++ {
		rng := stochastic.NewSplitMix64(stochastic.DeriveSeed(c.seed, i))
		drop := rng.Next() < c.spec.DropProb
		delayed[i] = rng.Next() < c.spec.DelayProb
		if drop {
			retry = append(retry, i)
		} else {
			order = append(order, i)
		}
	}
	return append(order, retry...), delayed
}

// panicAt returns the clamped injection index, or -1 when panic
// injection is off.
func (c *Chaos) panicAt(n int) int {
	if !c.spec.Panic || n <= 0 {
		return -1
	}
	at := c.spec.PanicAt
	if at < 0 {
		at = 0
	}
	if at >= n {
		at = n - 1
	}
	return at
}

// exec runs dispatch position j of an n-item plan: it remaps j to the
// planned item index and re-attributes any panic to that real index
// (the inner engine only sees the dispatch position, which the
// drop-then-retry reorder divorces from the item). The re-raised
// *parallel.PanicError passes through the inner engine's own capture
// unchanged, so the caller sees the failing item, not its slot.
func (c *Chaos) exec(w, j, panicAt int, order []int, delayed []bool, fn func(i int)) {
	i := order[j]
	pe := parallel.Capture(w, i, func() {
		if i == panicAt {
			panic(ChaosPanic{Index: i})
		}
		if delayed[i] {
			time.Sleep(c.spec.Delay)
		}
		fn(i)
	})
	if pe != nil {
		panic(pe)
	}
}

// For implements Engine.
func (c *Chaos) For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	order, delayed := c.plan(n)
	at := c.panicAt(n)
	c.inner.For(n, func(j int) {
		c.exec(0, j, at, order, delayed, fn)
	})
}

// ForWorker implements Engine.
func (c *Chaos) ForWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	order, delayed := c.plan(n)
	at := c.panicAt(n)
	c.inner.ForWorker(n, workers, func(w, j int) {
		c.exec(w, j, at, order, delayed, func(i int) { fn(w, i) })
	})
}

// ForCtx implements CtxEngine, threading cancellation through the
// inner engine (or the generic adapter when it has no ctx support).
func (c *Chaos) ForCtx(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ForCtx(ctx, c.inner, n, fn)
	}
	order, delayed := c.plan(n)
	at := c.panicAt(n)
	return ForCtx(ctx, c.inner, n, func(j int) {
		c.exec(0, j, at, order, delayed, fn)
	})
}

// ForWorkerCtx implements CtxEngine.
func (c *Chaos) ForWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if n <= 0 {
		return ForWorkerCtx(ctx, c.inner, n, workers, fn)
	}
	order, delayed := c.plan(n)
	at := c.panicAt(n)
	return ForWorkerCtx(ctx, c.inner, n, workers, func(w, j int) {
		c.exec(w, j, at, order, delayed, func(i int) { fn(w, i) })
	})
}

// chaosSeed seeds the registered instance; fixed so every process
// stresses the same schedule.
const chaosSeed = 0x9E3779B97F4A7C15

func init() {
	// The registered chaos engine injects only recoverable faults —
	// drop-then-retry reordering on a quarter of the items plus rare
	// tiny delays — so it honors the determinism contract and every
	// package's enginetest suite replays on it. Panic injection is for
	// purpose-built instances (enginetest.RunChaos).
	if err := Register(NewChaos("chaos", WordParallel, chaosSeed, ChaosSpec{
		DropProb:  0.25,
		DelayProb: 0.02,
		Delay:     50 * time.Microsecond,
	})); err != nil {
		panic(err)
	}
}
