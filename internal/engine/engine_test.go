package engine

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestSerialEngineOrdering: the reference engine runs indices in
// ascending order, inline, with worker identity 0 throughout.
func TestSerialEngineOrdering(t *testing.T) {
	var order []int
	Serial.For(5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("For order %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("For ran %d of 5 items", len(order))
	}
	order = order[:0]
	Serial.ForWorker(4, Serial.Workers(4), func(w, i int) {
		if w != 0 {
			t.Fatalf("serial worker identity %d", w)
		}
		order = append(order, i)
	})
	if len(order) != 4 || order[0] != 0 || order[3] != 3 {
		t.Fatalf("ForWorker order %v", order)
	}
	if Serial.Workers(100) != 1 {
		t.Fatalf("serial Workers(100) = %d", Serial.Workers(100))
	}
	if Serial.Name() != "serial" {
		t.Fatalf("serial Name %q", Serial.Name())
	}
}

// TestWordParallelEngineCoversAllIndices: the pooled engine visits
// every index exactly once and honors its advertised worker bound —
// the exactly-once half of the contract, under -race.
func TestWordParallelEngineCoversAllIndices(t *testing.T) {
	const n = 257
	visits := make([]int32, n)
	WordParallel.For(n, func(i int) { atomic.AddInt32(&visits[i], 1) })
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("For visited index %d %d times", i, v)
		}
	}
	workers := WordParallel.Workers(n)
	if workers < 1 || workers > n {
		t.Fatalf("Workers(%d) = %d out of range", n, workers)
	}
	visits = make([]int32, n)
	WordParallel.ForWorker(n, workers, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker %d outside [0, %d)", w, workers)
		}
		atomic.AddInt32(&visits[i], 1)
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("ForWorker visited index %d %d times", i, v)
		}
	}
}

// TestRegistryResolution: the built-ins resolve by name; unknown and
// empty names error cleanly, naming the available engines.
func TestRegistryResolution(t *testing.T) {
	for _, want := range []Engine{Serial, WordParallel} {
		got, err := Get(want.Name())
		if err != nil || got != want {
			t.Fatalf("Get(%q) = %v, %v", want.Name(), got, err)
		}
	}
	for _, bogus := range []string{"bogus", ""} {
		if _, err := Get(bogus); err == nil {
			t.Errorf("Get(%q) accepted", bogus)
		} else if !strings.Contains(err.Error(), "serial") || !strings.Contains(err.Error(), "parallel") {
			t.Errorf("Get(%q) error does not name the choices: %v", bogus, err)
		}
	}
	names := Names()
	if len(names) < 2 || names[0] > names[1] {
		t.Fatalf("Names() = %v (want sorted, >= 2 entries)", names)
	}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() has %d engines for %d names", len(all), len(names))
	}
	for i, e := range all {
		if e.Name() != names[i] {
			t.Fatalf("All()[%d] = %q, want %q", i, e.Name(), names[i])
		}
	}
}

// namedEngine wraps Serial under another name for registry tests.
type namedEngine struct {
	Engine
	name string
}

func (e namedEngine) Name() string { return e.name }

// TestRegisterValidation: nil engines, empty names and duplicates are
// rejected; a valid registration becomes Get/All-visible.
func TestRegisterValidation(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Error("Register(nil) accepted")
	}
	if err := Register(namedEngine{Serial, ""}); err == nil {
		t.Error("Register with empty name accepted")
	}
	if err := Register(namedEngine{Serial, "serial"}); err == nil {
		t.Error("Register with duplicate name accepted")
	}
	e := namedEngine{Serial, "test-registered"}
	if err := Register(e); err != nil {
		t.Fatalf("Register: %v", err)
	}
	defer func() {
		regMu.Lock()
		delete(registry, e.name)
		regMu.Unlock()
	}()
	got, err := Get(e.name)
	if err != nil || got.(namedEngine) != e {
		t.Fatalf("Get after Register = %v, %v", got, err)
	}
}

// TestDefaultEngine: the process default starts as WordParallel, is
// swappable, and rejects nil.
func TestDefaultEngine(t *testing.T) {
	orig := Default()
	if orig != WordParallel {
		t.Fatalf("initial default %q", orig.Name())
	}
	defer func() {
		if err := SetDefault(orig); err != nil {
			t.Fatal(err)
		}
	}()
	if err := SetDefault(Serial); err != nil {
		t.Fatal(err)
	}
	if Default() != Serial {
		t.Fatal("SetDefault(Serial) did not take")
	}
	if err := SetDefault(nil); err == nil {
		t.Error("SetDefault(nil) accepted")
	}
	if Default() != Serial {
		t.Error("rejected SetDefault(nil) still clobbered the default")
	}
}

// TestNilEngineMisuse: Check errors and Use panics, both with a
// message pointing at the valid selections.
func TestNilEngineMisuse(t *testing.T) {
	if err := Check(nil); err == nil || !strings.Contains(err.Error(), "nil engine") {
		t.Errorf("Check(nil) = %v", err)
	}
	if err := Check(Serial); err != nil {
		t.Errorf("Check(Serial) = %v", err)
	}
	if Use(Serial) != Serial {
		t.Error("Use(Serial) did not return its engine")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Use(nil) did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "nil engine") {
			t.Fatalf("Use(nil) panic = %v", r)
		}
	}()
	Use(nil)
}

// TestChunkedPartition: chunks tile [0, n) exactly, in order, respect
// the minimum chunk size, and degenerate cases fall back to one
// inline range (or nothing for empty input).
func TestChunkedPartition(t *testing.T) {
	for _, tc := range []struct {
		e               Engine
		n, minChunk     int
		maxChunks       int
		wantSingleChunk bool
	}{
		{Serial, 61, 16, 1, true},        // serial engine: always one inline range
		{WordParallel, 61, 16, 4, false}, // ceil(61/16) = 4 chunks at most
		{WordParallel, 61, 100, 1, true}, // minChunk > n: serial fallback
		{WordParallel, 3, 0, 3, false},   // minChunk clamps to 1
	} {
		covered := make([]int, tc.n)
		var chunks int32
		Chunked(tc.e, tc.n, tc.minChunk, func(lo, hi int) {
			atomic.AddInt32(&chunks, 1)
			if hi <= lo {
				t.Errorf("empty chunk [%d, %d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("e=%s n=%d minChunk=%d: index %d covered %d times", tc.e.Name(), tc.n, tc.minChunk, i, c)
			}
		}
		if int(chunks) > tc.maxChunks {
			t.Errorf("e=%s n=%d minChunk=%d: %d chunks, want <= %d", tc.e.Name(), tc.n, tc.minChunk, chunks, tc.maxChunks)
		}
		if tc.wantSingleChunk && chunks != 1 {
			t.Errorf("e=%s n=%d minChunk=%d: %d chunks, want exactly 1", tc.e.Name(), tc.n, tc.minChunk, chunks)
		}
	}
	Chunked(Serial, 0, 8, func(lo, hi int) { t.Error("Chunked ran a chunk for n=0") })
}
