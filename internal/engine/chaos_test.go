package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/parallel"
)

// TestChaosRegistered: a "chaos" engine sits in the registry with a
// benign (recoverable-faults-only) spec, so every package's enginetest
// suite replays on it.
func TestChaosRegistered(t *testing.T) {
	e, err := Get("chaos")
	if err != nil {
		t.Fatalf("Get(chaos): %v", err)
	}
	c, ok := e.(*Chaos)
	if !ok {
		t.Fatalf("registered chaos is %T", e)
	}
	if c.Spec().Panic {
		t.Error("registered chaos injects panics; it must stay recoverable")
	}
	if c.Spec().DropProb <= 0 {
		t.Error("registered chaos drops nothing; it stresses no reordering")
	}
}

// TestChaosExactlyOnce: even with aggressive drop-then-retry the
// chaos engine runs every index exactly once — the property that makes
// it contract-conforming and bit-identical to serial.
func TestChaosExactlyOnce(t *testing.T) {
	c := NewChaos("chaos-test", WordParallel, 7, ChaosSpec{DropProb: 0.5})
	const n = 513
	visits := make([]int32, n)
	c.For(n, func(i int) { atomic.AddInt32(&visits[i], 1) })
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("For: index %d ran %d times", i, v)
		}
	}
	visits = make([]int32, n)
	workers := c.Workers(n)
	c.ForWorker(n, workers, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker %d outside [0, %d)", w, workers)
		}
		atomic.AddInt32(&visits[i], 1)
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("ForWorker: index %d ran %d times", i, v)
		}
	}
}

// TestChaosPlanDeterministic: the fault plan is a pure function of
// (seed, spec, n) — same seed, same order; different seed, (almost
// surely) different order; and always a permutation of [0, n).
func TestChaosPlanDeterministic(t *testing.T) {
	a := NewChaos("a", Serial, 42, ChaosSpec{DropProb: 0.3})
	b := NewChaos("b", Serial, 42, ChaosSpec{DropProb: 0.3})
	other := NewChaos("c", Serial, 43, ChaosSpec{DropProb: 0.3})
	const n = 200
	orderA, _ := a.plan(n)
	orderB, _ := b.plan(n)
	orderC, _ := other.plan(n)
	seen := make([]bool, n)
	same := true
	diff := false
	for j := range orderA {
		if seen[orderA[j]] {
			t.Fatalf("plan repeats index %d", orderA[j])
		}
		seen[orderA[j]] = true
		if orderA[j] != orderB[j] {
			same = false
		}
		if orderA[j] != orderC[j] {
			diff = true
		}
	}
	if len(orderA) != n {
		t.Fatalf("plan has %d slots for %d items", len(orderA), n)
	}
	if !same {
		t.Error("same seed produced different plans")
	}
	if !diff {
		t.Error("different seeds produced identical plans (suspicious)")
	}
}

// TestChaosPanicInjection: a panic-injecting chaos engine surfaces a
// *parallel.PanicError attributed to the real (reordered) item index,
// with the injected ChaosPanic reachable via errors.As underneath.
func TestChaosPanicInjection(t *testing.T) {
	for _, inner := range []Engine{Serial, WordParallel} {
		c := NewChaos("chaos-panic", inner, 11, ChaosSpec{DropProb: 0.4, Panic: true, PanicAt: 5})
		err := ForCtx(context.Background(), c, 32, func(i int) {})
		var pe *parallel.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("inner=%s: err = %v (%T), want *parallel.PanicError", inner.Name(), err, err)
		}
		if pe.Index != 5 {
			t.Errorf("inner=%s: panic attributed to index %d, want 5 (the item, not its dispatch slot)", inner.Name(), pe.Index)
		}
		var cp ChaosPanic
		if !errors.As(err, &cp) || cp.Index != 5 {
			t.Errorf("inner=%s: ChaosPanic not reachable: %v", inner.Name(), err)
		}
	}
}

// TestChaosPanicAtClamped: out-of-range PanicAt clamps into [0, n-1]
// instead of silently never firing.
func TestChaosPanicAtClamped(t *testing.T) {
	for _, tc := range []struct{ at, want int }{{99, 2}, {-7, 0}} {
		c := NewChaos("chaos-clamp", Serial, 3, ChaosSpec{Panic: true, PanicAt: tc.at})
		err := ForCtx(context.Background(), c, 3, func(i int) {})
		var cp ChaosPanic
		if !errors.As(err, &cp) {
			t.Fatalf("PanicAt=%d: no ChaosPanic: %v", tc.at, err)
		}
		if cp.Index != tc.want {
			t.Errorf("PanicAt=%d fired at %d, want clamped %d", tc.at, cp.Index, tc.want)
		}
	}
}

// TestChaosZeroSpecTransparent: the zero spec is a no-op wrapper —
// serial inner, ascending order, no faults.
func TestChaosZeroSpecTransparent(t *testing.T) {
	c := NewChaos("chaos-zero", Serial, 1, ChaosSpec{})
	var order []int
	c.For(6, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("zero-spec chaos reordered: %v", order)
		}
	}
	if len(order) != 6 {
		t.Fatalf("ran %d of 6", len(order))
	}
	c.For(0, func(i int) { t.Errorf("n=0 ran item %d", i) })
	c.For(-1, func(i int) { t.Errorf("n=-1 ran item %d", i) })
}

// TestChaosDelayStillCompletes: delays perturb scheduling but never
// results — a fully delayed sweep still covers every index.
func TestChaosDelayStillCompletes(t *testing.T) {
	c := NewChaos("chaos-delay", WordParallel, 3, ChaosSpec{DelayProb: 1, Delay: 100 * time.Microsecond})
	var ran atomic.Int32
	c.For(16, func(i int) { ran.Add(1) })
	if ran.Load() != 16 {
		t.Fatalf("delayed sweep ran %d of 16", ran.Load())
	}
}

// TestChaosCancellation: the ctx path cancels through the wrapper like
// any other engine.
func TestChaosCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewChaos("chaos-ctx", WordParallel, 5, ChaosSpec{DropProb: 0.2})
	err := c.ForCtx(ctx, 40, func(i int) { t.Errorf("ran %d under dead ctx", i) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
