package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// Engine schedules n independent, index-addressed work items. See the
// package comment for the determinism contract every implementation
// must satisfy; conforming engines are interchangeable bit-for-bit.
type Engine interface {
	// Name identifies the engine in registries, flags and test output
	// (the built-ins are "serial" and "parallel").
	Name() string
	// Workers reports the pool size the engine will use for n items
	// (at least 1 for n > 0), so callers can size per-worker scratch
	// before fanning out and pass the same count to ForWorker.
	Workers(n int) int
	// For runs fn(i) for every i in [0, n) exactly once and returns
	// after all calls complete.
	For(n int, fn func(i int))
	// ForWorker is For with a stable worker identity in [0, workers)
	// for lock-free per-worker scratch; workers should come from
	// Workers(n).
	ForWorker(n, workers int, fn func(worker, i int))
}

// serialEngine is the in-order reference implementation: one
// goroutine, ascending indices, worker 0 throughout.
type serialEngine struct{}

func (serialEngine) Name() string    { return "serial" }
func (serialEngine) Workers(int) int { return 1 }

func (serialEngine) For(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func (serialEngine) ForWorker(n, _ int, fn func(worker, i int)) {
	for i := 0; i < n; i++ {
		fn(0, i)
	}
}

// wordParallelEngine dispatches onto the internal/parallel worker
// pool (GOMAXPROCS-sized, atomic index handout, inline when the pool
// degenerates to one worker).
type wordParallelEngine struct{}

func (wordParallelEngine) Name() string      { return "parallel" }
func (wordParallelEngine) Workers(n int) int { return parallel.Workers(n) }

func (wordParallelEngine) For(n int, fn func(i int)) {
	parallel.For(n, fn)
}

func (wordParallelEngine) ForWorker(n, workers int, fn func(worker, i int)) {
	parallel.ForWorker(n, workers, fn)
}

// The built-in engines. Serial is the reference oracle every XSerial
// shim runs on; WordParallel carries the word-parallel production
// paths and is the process default.
var (
	Serial       Engine = serialEngine{}
	WordParallel Engine = wordParallelEngine{}
)

var (
	regMu    sync.RWMutex
	registry = map[string]Engine{
		Serial.Name():       Serial,
		WordParallel.Name(): WordParallel,
	}
)

// Register adds an engine to the process registry under e.Name() so
// Get can resolve it and enginetest.Run exercises it via All. It
// rejects nil engines, empty names and duplicates.
func Register(e Engine) error {
	if e == nil {
		return fmt.Errorf("engine: Register(nil)")
	}
	name := e.Name()
	if name == "" {
		return fmt.Errorf("engine: Register: empty engine name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("engine: Register: %q already registered", name)
	}
	registry[name] = e
	return nil
}

// Get resolves a registered engine by name; unknown or empty names
// error with the available choices.
func Get(name string) (Engine, error) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (have %v)", name, Names())
	}
	return e, nil
}

// Names lists the registered engine names, sorted.
func Names() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}

// All returns every registered engine, sorted by name — the set the
// generic equivalence suite replays each path on.
func All() []Engine {
	names := Names()
	engines := make([]Engine, 0, len(names))
	regMu.RLock()
	defer regMu.RUnlock()
	for _, name := range names {
		engines = append(engines, registry[name])
	}
	return engines
}

// defaultEngine holds the process default behind a pointer so
// concurrent SetDefault/Default are race-free.
var defaultEngine atomic.Pointer[Engine]

func init() {
	defaultEngine.Store(&WordParallel)
}

// Default returns the process-default engine (WordParallel unless
// SetDefault changed it); the engine-less entry points (dse.Sweep,
// transient.Trace, ...) all dispatch through it.
func Default() Engine {
	return *defaultEngine.Load()
}

// SetDefault replaces the process-default engine — what oscbench's
// -engine flag does. It rejects nil.
func SetDefault(e Engine) error {
	if e == nil {
		return fmt.Errorf("engine: SetDefault(nil)")
	}
	defaultEngine.Store(&e)
	return nil
}

// Check validates an engine selection for error-returning entry
// points: nil is reported, anything else passes.
func Check(e Engine) error {
	if e == nil {
		return fmt.Errorf("engine: nil engine (use engine.Serial, engine.WordParallel or engine.Default())")
	}
	return nil
}

// Use validates an engine selection for entry points with no error
// return: it panics on nil with an actionable message (the precedent
// set by core.Params.SpeedupVsElectronic) and returns e otherwise.
func Use(e Engine) Engine {
	if e == nil {
		panic("engine: nil engine (use engine.Serial, engine.WordParallel or engine.Default())")
	}
	return e
}

// Chunked maps fn over the half-open ranges of a balanced partition
// of [0, n): at most e.Workers(n) chunks, each at least minChunk
// items (so cheap per-item work pays per-chunk dispatch overhead),
// falling back to one inline chunk — the pure serial walk — when the
// engine or the partition degenerates to a single range.
func Chunked(e Engine, n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	chunks := Use(e).Workers(n)
	if max := (n + minChunk - 1) / minChunk; chunks > max {
		chunks = max
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	e.For(chunks, func(c int) {
		fn(c*n/chunks, (c+1)*n/chunks)
	})
}
