package dse

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

func TestSweepOrdersResults(t *testing.T) {
	got := Sweep(100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}
	if len(Sweep(0, func(int) int { return 1 })) != 0 {
		t.Error("empty sweep not empty")
	}
}

func TestSweepErrReturnsLowestIndexError(t *testing.T) {
	_, err := SweepErr(10, func(i int) (int, error) {
		if i%3 == 2 { // fails at 2, 5, 8
			return 0, fmt.Errorf("point %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "point 2" {
		t.Fatalf("err = %v, want the lowest failing index", err)
	}
	got, err := SweepErr(4, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
}

func TestSweepSeededDerivesPerPointSeeds(t *testing.T) {
	a := SweepSeeded(8, 42, func(_ int, seed uint64) uint64 { return seed })
	b := SweepSeeded(8, 42, func(_ int, seed uint64) uint64 { return seed })
	if !reflect.DeepEqual(a, b) {
		t.Error("seeded sweep not reproducible")
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate derived seed %d", s)
		}
		seen[s] = true
	}
	c := SweepSeeded(8, 43, func(_ int, seed uint64) uint64 { return seed })
	if reflect.DeepEqual(a, c) {
		t.Error("different base seeds derived identical point seeds")
	}
}

func TestGridRowMajorOrder(t *testing.T) {
	got := Grid(3, 4, func(r, c int) [2]int { return [2]int{r, c} })
	if len(got) != 12 {
		t.Fatalf("%d cells", len(got))
	}
	for i, cell := range got {
		if cell != [2]int{i / 4, i % 4} {
			t.Fatalf("cell %d = %v", i, cell)
		}
	}
	if len(Grid(0, 5, func(r, c int) int { return 0 })) != 0 {
		t.Error("empty grid not empty")
	}
}

// withGOMAXPROCS runs f at the given GOMAXPROCS, restoring the old
// value afterwards.
func withGOMAXPROCS(n int, f func()) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(n))
	f()
}

// assertDeterministic evaluates gen at GOMAXPROCS 1 and 4 and requires
// deeply equal results — the contract every rewired figure sweep
// carries.
func assertDeterministic[T any](t *testing.T, name string, gen func() (T, error)) {
	t.Helper()
	var single, multi T
	var errSingle, errMulti error
	withGOMAXPROCS(1, func() { single, errSingle = gen() })
	withGOMAXPROCS(4, func() { multi, errMulti = gen() })
	if (errSingle == nil) != (errMulti == nil) {
		t.Fatalf("%s: errors differ: %v vs %v", name, errSingle, errMulti)
	}
	if errSingle != nil {
		t.Fatalf("%s: %v", name, errSingle)
	}
	if !reflect.DeepEqual(single, multi) {
		t.Errorf("%s: GOMAXPROCS=1 and 4 disagree\n  1: %+v\n  4: %+v", name, single, multi)
	}
}

func TestFig6ADeterministicAcrossGOMAXPROCS(t *testing.T) {
	assertDeterministic(t, "Fig6A", func() ([]Fig6APoint, error) {
		return Fig6A(4, 3), nil
	})
}

func TestFig6BDeterministicAcrossGOMAXPROCS(t *testing.T) {
	assertDeterministic(t, "Fig6B", func() ([]Fig6BPoint, error) {
		return Fig6B([]float64{1e-2, 1e-4, 1e-6})
	})
}

func TestFig6CDeterministicAcrossGOMAXPROCS(t *testing.T) {
	assertDeterministic(t, "Fig6C", func() ([]Fig6CPoint, error) {
		pts := Fig6C()
		// Errors carry unstable fmt pointers; compare the data fields.
		for i := range pts {
			pts[i].Err = nil
		}
		return pts, nil
	})
}

func TestFig7ADeterministicAcrossGOMAXPROCS(t *testing.T) {
	assertDeterministic(t, "Fig7A", func() ([]Fig7ASeries, error) {
		return Fig7A([]int{2, 4}, 7)
	})
}

func TestFig7BDeterministicAcrossGOMAXPROCS(t *testing.T) {
	assertDeterministic(t, "Fig7B", func() ([]Fig7BRow, error) {
		return Fig7B([]int{2, 4})
	})
}

func TestRingSensitivityDeterministicAcrossGOMAXPROCS(t *testing.T) {
	assertDeterministic(t, "RingSensitivity", func() ([]RingSensitivityRow, error) {
		return RingSensitivity([]float64{0.75, 1.0, 1.25}), nil
	})
}

func TestNoiseStudyDeterministicAcrossGOMAXPROCS(t *testing.T) {
	spec := NoiseStudySpec{
		X:       0.5,
		Lengths: []int{64, 128},
		ProbeMW: []float64{1, 0.5},
		Trials:  4,
		BERBits: 2_000,
		Seed:    21,
	}
	assertDeterministic(t, "NoiseStudy", func() ([]NoiseRow, error) {
		return NoiseStudy(spec)
	})
}

func TestEdgeStudyDeterministicAcrossGOMAXPROCS(t *testing.T) {
	assertDeterministic(t, "EdgeStudy", func() ([]EdgeStudyRow, error) {
		return EdgeStudy([]int{64, 128}, 7)
	})
}

func TestStreamLengthSweepDeterministicAcrossGOMAXPROCS(t *testing.T) {
	assertDeterministic(t, "StreamLengthSweep", func() ([]StreamSweepRow, error) {
		return StreamLengthSweep([]int{64, 128}, 5, 9)
	})
}
