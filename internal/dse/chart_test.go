package dse

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRenderEnergyChart(t *testing.T) {
	m := core.NewEnergyModel(2)
	pts := m.Sweep(0.11, 0.3, 15)
	var sb strings.Builder
	if err := RenderEnergyChartASCII(&sb, pts, 80, 16, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"P", "p", "T", "pJ/bit", "0.300"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Degenerate inputs.
	if err := RenderEnergyChartASCII(&sb, pts[:1], 80, 16, 0); err == nil {
		t.Error("single point accepted")
	}
	// Tiny dimensions clamp rather than fail.
	if err := RenderEnergyChartASCII(&sb, pts, 5, 2, 100); err != nil {
		t.Errorf("clamped chart failed: %v", err)
	}
}

func TestApplicationProfile(t *testing.T) {
	rows, err := ApplicationProfile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Energy per bit grows with order; throughput falls with stream
	// length.
	if !(rows[0].Energy.TotalPJ() < rows[1].Energy.TotalPJ() &&
		rows[1].Energy.TotalPJ() < rows[2].Energy.TotalPJ()) {
		t.Error("energy not increasing with order")
	}
	if !(rows[0].ResultsPerSec > rows[2].ResultsPerSec) {
		t.Error("throughput ordering wrong")
	}
	// Average power = pJ/bit at 1 Gb/s numerically equals mW.
	for _, r := range rows {
		if diff := r.AvgPowerMW - r.Energy.TotalPJ(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: avg power %g vs energy %g", r.Application, r.AvgPowerMW, r.Energy.TotalPJ())
		}
	}
	var sb strings.Builder
	if err := RenderApplicationProfile(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gamma correction") {
		t.Error("profile table missing rows")
	}
}
