package dse

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeStudyQualityGrowsWithLength(t *testing.T) {
	rows, err := EdgeStudy([]int{64, 1024}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	long, short := rows[1], rows[0]
	if long.EdgePSNR <= short.EdgePSNR {
		t.Errorf("edge PSNR did not improve: %.2f -> %.2f dB", short.EdgePSNR, long.EdgePSNR)
	}
	if long.GammaPSNR <= short.GammaPSNR {
		t.Errorf("gamma PSNR did not improve: %.2f -> %.2f dB", short.GammaPSNR, long.GammaPSNR)
	}
	if long.EdgeMAE >= short.EdgeMAE {
		t.Errorf("edge MAE did not shrink: %.2f -> %.2f", short.EdgeMAE, long.EdgeMAE)
	}
	// 1024-bit streams resolve the checkerboard essentially exactly.
	if long.EdgePSNR < 30 {
		t.Errorf("1024-bit edge PSNR = %.2f dB", long.EdgePSNR)
	}
}

func TestEdgeStudyErrors(t *testing.T) {
	if _, err := EdgeStudy([]int{64, 0}, 1); err == nil {
		t.Error("non-positive stream length accepted")
	}
}

func TestRenderEdgeStudy(t *testing.T) {
	rows, err := EdgeStudy([]int{128}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderEdgeStudy(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stream length", "edge PSNR", "gamma PSNR", "128"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
