package dse

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/optics"
)

// Fig6APoint is one cell of the Fig. 6(a) grid: the minimum probe
// power for an MZI with the given insertion loss and extinction ratio
// at 0.6 W pump and 1e-6 BER, designed with the MZI-first method.
type Fig6APoint struct {
	ILdB, ERdB  float64
	ProbeMW     float64
	WLSpacingNM float64
	Feasible    bool
}

// Fig6A sweeps the IL × ER grid of the paper's Fig. 6(a)
// (IL 3–7.4 dB, ER 4–7.6 dB). Each cell is a full MZI-first design
// solve; the grid fans out over the worker pool (Grid) and returns in
// row-major (IL-major) order, identical at any GOMAXPROCS. Fewer than
// 2 points per axis are clamped to 2 (cmd/oscbench rejects such grids
// up front instead).
func Fig6A(ilPoints, erPoints int) []Fig6APoint {
	if ilPoints < 2 {
		ilPoints = 2
	}
	if erPoints < 2 {
		erPoints = 2
	}
	return Grid(ilPoints, erPoints, func(i, j int) Fig6APoint {
		il := 3.0 + (7.4-3.0)*float64(i)/float64(ilPoints-1)
		er := 4.0 + (7.6-4.0)*float64(j)/float64(erPoints-1)
		pt := Fig6APoint{ILdB: il, ERdB: er}
		p, err := core.MZIFirst(core.MZIFirstSpec{
			Order:       2,
			MZI:         optics.MZI{ILdB: il, ERdB: er},
			PumpPowerMW: 600,
			TargetBER:   1e-6,
		})
		if err == nil {
			pt.ProbeMW = p.ProbePowerMW
			pt.WLSpacingNM = p.WLSpacingNM
			pt.Feasible = true
		}
		return pt
	})
}

// RenderFig6A writes the grid with IL rows and ER columns.
func RenderFig6A(w io.Writer, pts []Fig6APoint) error {
	if _, err := fmt.Fprintln(w, "Fig 6(a): min OPLaser_probe (mW) vs MZI IL (rows) and ER (cols); pump 0.6 W, BER 1e-6"); err != nil {
		return err
	}
	// Collect the distinct axes preserving order.
	var ils, ers []float64
	seenIL := map[float64]bool{}
	seenER := map[float64]bool{}
	for _, p := range pts {
		if !seenIL[p.ILdB] {
			seenIL[p.ILdB] = true
			ils = append(ils, p.ILdB)
		}
		if !seenER[p.ERdB] {
			seenER[p.ERdB] = true
			ers = append(ers, p.ERdB)
		}
	}
	header := []string{"IL\\ER dB"}
	for _, er := range ers {
		header = append(header, fmt.Sprintf("%.1f", er))
	}
	t := NewTable(header...)
	idx := func(il, er float64) *Fig6APoint {
		for i := range pts {
			if pts[i].ILdB == il && pts[i].ERdB == er {
				return &pts[i]
			}
		}
		return nil
	}
	for _, il := range ils {
		row := []string{fmt.Sprintf("%.1f", il)}
		for _, er := range ers {
			p := idx(il, er)
			switch {
			case p == nil:
				row = append(row, "?")
			case !p.Feasible:
				row = append(row, "inf")
			default:
				row = append(row, fmt.Sprintf("%.3f", p.ProbeMW))
			}
		}
		t.AddRow(row...)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "paper anchor: IL=6.5, ER=7.5 -> 0.26 mW")
	return err
}

// Fig6BPoint is one bar of Fig. 6(b): probe power vs BER target for
// the anchor MZI.
type Fig6BPoint struct {
	BER     float64
	ProbeMW float64
}

// Fig6B sizes the anchor design for each BER target. The paper uses
// {1e-2, 1e-4, 1e-6} and observes a 50 % probe-power reduction at
// 1e-2 relative to 1e-6.
func Fig6B(targets []float64) ([]Fig6BPoint, error) {
	return SweepErr(len(targets), func(i int) (Fig6BPoint, error) {
		ber := targets[i]
		p, err := core.MZIFirst(core.MZIFirstSpec{
			Order:       2,
			MZI:         optics.MZI{ILdB: 6.5, ERdB: 7.5},
			PumpPowerMW: 600,
			TargetBER:   ber,
		})
		if err != nil {
			return Fig6BPoint{}, fmt.Errorf("dse: Fig6B at BER %g: %w", ber, err)
		}
		return Fig6BPoint{BER: ber, ProbeMW: p.ProbePowerMW}, nil
	})
}

// RenderFig6B writes the BER table with the power-reduction ratio.
func RenderFig6B(w io.Writer, pts []Fig6BPoint) error {
	if _, err := fmt.Fprintln(w, "Fig 6(b): min OPLaser_probe vs targeted BER (anchor MZI, pump 0.6 W)"); err != nil {
		return err
	}
	t := NewTable("BER target", "probe (mW)", "vs 1e-6")
	var ref float64
	for _, p := range pts {
		if p.BER == 1e-6 {
			ref = p.ProbeMW
		}
	}
	for _, p := range pts {
		rel := "-"
		if ref > 0 {
			rel = fmt.Sprintf("%.0f%%", p.ProbeMW/ref*100)
		}
		t.AddRow(fmt.Sprintf("%.0e", p.BER), fmt.Sprintf("%.4f", p.ProbeMW), rel)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "paper: 1e-2 needs ~50% of the 1e-6 power")
	return err
}

// Fig6CPoint is one bar of Fig. 6(c): a published device with its
// speed, phase-shifter length and required probe power.
type Fig6CPoint struct {
	Device  core.MZIDevice
	ProbeMW float64
	Err     error
}

// Fig6C sizes the four library devices at 0.6 W pump and 1e-6 BER.
func Fig6C() []Fig6CPoint {
	lib := core.DeviceLibrary()
	return Sweep(len(lib), func(i int) Fig6CPoint {
		pt := Fig6CPoint{Device: lib[i]}
		p, err := core.MZIFirst(core.MZIFirstSpec{
			Order:       2,
			MZI:         lib[i].Dev,
			PumpPowerMW: 600,
			TargetBER:   1e-6,
		})
		if err != nil {
			pt.Err = err
		} else {
			pt.ProbeMW = p.ProbePowerMW
		}
		return pt
	})
}

// RenderFig6C writes the device-comparison table.
func RenderFig6C(w io.Writer, pts []Fig6CPoint) error {
	if _, err := fmt.Fprintln(w, "Fig 6(c): min OPLaser_probe per published MZI (speed, phase-shifter length)"); err != nil {
		return err
	}
	t := NewTable("device", "IL dB", "ER dB", "speed Gb/s", "P.S.L. mm", "probe (mW)")
	for _, p := range pts {
		probe := "inf"
		if p.Err == nil && !math.IsInf(p.ProbeMW, 1) {
			probe = fmt.Sprintf("%.4f", p.ProbeMW)
		}
		t.AddRowf(p.Device.Name, p.Device.Dev.ILdB, p.Device.Dev.ERdB,
			p.Device.Dev.SpeedGbps, p.Device.Dev.PhaseShifterLenMM, probe)
	}
	return t.Render(w)
}
