package dse

import (
	"context"

	"repro/internal/engine"
	"repro/internal/stochastic"
)

// This file adds cooperative cancellation to the sweep layer. The ctx
// variants stop at a point boundary when the context fires and return
// a *engine.Partial (wrapping the context error, or the
// *parallel.PanicError of a faulting point) alongside the partially
// filled result slice: entries at indices the Partial's Done bitmap
// marks true are valid and safe to persist — what the Checkpointer
// does on interruption.

// SweepCtx is SweepOn under ctx. On a nil error the returned slice is
// complete; on a *engine.Partial it is partial as described above.
func SweepCtx[T any](ctx context.Context, e engine.Engine, n int, point func(i int) T) ([]T, error) {
	if n < 0 {
		n = 0
	}
	out := make([]T, n)
	if err := engine.RunCtx(ctx, e, n, nil, func(i int) { out[i] = point(i) }); err != nil {
		return out, err
	}
	return out, nil
}

// SweepSeededCtx is SweepSeededOn under ctx.
func SweepSeededCtx[T any](ctx context.Context, e engine.Engine, n int, seed uint64, point func(i int, pointSeed uint64) T) ([]T, error) {
	return SweepCtx(ctx, e, n, func(i int) T { return point(i, stochastic.DeriveSeed(seed, i)) })
}

// GridCtx is GridOn under ctx, row-major like GridOn.
func GridCtx[T any](ctx context.Context, e engine.Engine, rows, cols int, point func(r, c int) T) ([]T, error) {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	return SweepCtx(ctx, e, rows*cols, func(i int) T { return point(i/cols, i%cols) })
}
