package dse

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// YieldStudy is the long-running Monte-Carlo campaign of the paper's
// process-variation concern (§I) as a flat, checkpointable sweep: a
// grid of ring-resonance sigmas × fabricated dies, one die per sweep
// point, folded per sigma into core.YieldResult rows. Because die
// (sigma s, die d) depends only on (Params, the variation at s, d) —
// core.MeasureDie derives its Gaussians from (Seed, d) alone — the
// study shards, checkpoints and resumes by point index with
// bit-identical reassembly.
type YieldStudy struct {
	Params core.Params
	// SigmasNM are the ring-resonance sigma values (nm) studied.
	SigmasNM []float64
	// Samples is the die count per sigma; Seed the base RNG seed;
	// TargetBER defines a passing die.
	Samples   int
	Seed      uint64
	TargetBER float64
}

// YieldPoint is one sigma row of the study.
type YieldPoint struct {
	SigmaNM float64          `json:"sigma_nm"`
	Result  core.YieldResult `json:"result"`
}

// N is the total die count: len(SigmasNM) * Samples.
func (s YieldStudy) N() int { return len(s.SigmasNM) * s.Samples }

// Variation is the core.VariationSpec for one sigma row.
func (s YieldStudy) Variation(sigmaNM float64) core.VariationSpec {
	return core.VariationSpec{
		RingResonanceSigmaNM: sigmaNM,
		Samples:              s.Samples,
		Seed:                 s.Seed,
		TargetBER:            s.TargetBER,
	}
}

// Key builds the checkpoint identity for this study: every field that
// affects a die's outcome is rendered into the config string, so a
// checkpoint from a different study fails closed.
func (s YieldStudy) Key() CheckpointKey {
	return CheckpointKey{
		Figure: "yield",
		Config: fmt.Sprintf("params=%+v sigmas=%v samples=%d target=%g", s.Params, s.SigmasNM, s.Samples, s.TargetBER),
		Seed:   s.Seed,
		N:      s.N(),
	}
}

// check validates the study shape.
func (s YieldStudy) check() error {
	if len(s.SigmasNM) == 0 {
		return fmt.Errorf("dse: yield study has no sigmas")
	}
	if s.Samples < 1 {
		return fmt.Errorf("dse: yield study needs >= 1 sample per sigma")
	}
	return nil
}

// Die measures sweep point i: die i%Samples under sigma row
// i/Samples. This is the unit of checkpointing.
func (s YieldStudy) Die(i int) core.DieOutcome {
	return core.MeasureDie(s.Params, s.Variation(s.SigmasNM[i/s.Samples]), i%s.Samples)
}

// Fold turns the flat die results (index order, len N()) into one
// YieldPoint per sigma, the same aggregation core.FoldYield performs
// for core.AnalyzeYield — so a study row equals a standalone
// AnalyzeYield run bit for bit.
func (s YieldStudy) Fold(dies []core.DieOutcome) ([]YieldPoint, error) {
	if len(dies) != s.N() {
		return nil, fmt.Errorf("dse: folding %d die results for an N=%d study", len(dies), s.N())
	}
	points := make([]YieldPoint, len(s.SigmasNM))
	for r, sigma := range s.SigmasNM {
		points[r] = YieldPoint{
			SigmaNM: sigma,
			Result:  core.FoldYield(s.Variation(sigma), dies[r*s.Samples:(r+1)*s.Samples]),
		}
	}
	return points, nil
}

// RunOn runs the whole study on e without checkpointing.
func (s YieldStudy) RunOn(e engine.Engine) ([]YieldPoint, error) {
	if err := engine.Check(e); err != nil {
		return nil, err
	}
	if err := s.check(); err != nil {
		return nil, err
	}
	dies := SweepOn(e, s.N(), s.Die)
	return s.Fold(dies)
}

// RunCtx is RunOn under cooperative cancellation: an interruption
// surfaces the sweep layer's *engine.Partial.
func (s YieldStudy) RunCtx(ctx context.Context, e engine.Engine) ([]YieldPoint, error) {
	if err := engine.Check(e); err != nil {
		return nil, err
	}
	if err := s.check(); err != nil {
		return nil, err
	}
	dies, err := SweepCtx(ctx, e, s.N(), s.Die)
	if err != nil {
		return nil, err
	}
	return s.Fold(dies)
}

// RunCheckpointed runs the study through cp (which must carry s.Key();
// anything else fails closed), resuming from whatever cp already
// restored and snapshotting as configured. The fold only happens on a
// complete run; an interrupted one returns the *engine.Partial from
// the checkpointer with the completed dies safely on disk.
func (s YieldStudy) RunCheckpointed(ctx context.Context, e engine.Engine, cp *Checkpointer[core.DieOutcome]) ([]YieldPoint, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	if cp.Key != s.Key() {
		return nil, fmt.Errorf("dse: checkpointer key %+v is not this study's %+v: %w", cp.Key, s.Key(), ErrStaleCheckpoint)
	}
	dies, err := cp.Run(ctx, e, s.Die)
	if err != nil {
		return nil, err
	}
	return s.Fold(dies)
}
