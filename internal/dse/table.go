package dse

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of cells and renders them with aligned
// columns — enough formatting for reproducible terminal output
// without external dependencies.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted cells; each argument is
// formatted with %v unless it is a float64, which uses %.4g.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}
