package dse

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func smallNoiseSpec(t *testing.T) NoiseStudySpec {
	t.Helper()
	c, err := core.NewCircuit(core.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	return NoiseStudySpec{
		X:          0.5,
		Lengths:    []int{32, 4096},
		ProbeMW:    []float64{core.PaperParams().ProbePowerMW, c.MinProbePowerMW(1e-2)},
		SigmaScale: []float64{1, 2},
		Trials:     40,
		BERBits:    50_000,
		Seed:       5,
	}
}

func TestNoiseStudyShape(t *testing.T) {
	spec := smallNoiseSpec(t)
	rows, err := NoiseStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(spec.ProbeMW) * len(spec.SigmaScale) * len(spec.Lengths)
	if len(rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if r.RMSE <= 0 || r.SigmaMW <= 0 || r.AnalyticBER < 0 || r.MeasuredBER < 0 {
			t.Errorf("implausible row %+v", r)
		}
	}
	// Longer streams average fluctuation and transmission errors
	// away: within each (probe, sigma) combo, the 4096-bit RMSE must
	// sit below the 32-bit RMSE.
	for i := 0; i+1 < len(rows); i += 2 {
		if rows[i].StreamLen != 32 || rows[i+1].StreamLen != 4096 {
			t.Fatalf("unexpected row order: %+v", rows[i])
		}
		if rows[i+1].RMSE >= rows[i].RMSE {
			t.Errorf("probe %.3f σx%g: RMSE did not shrink: %g -> %g",
				rows[i].ProbeMW, rows[i].SigmaScale, rows[i].RMSE, rows[i+1].RMSE)
		}
	}
	// More probe power means a wider eye: the analytic BER at the
	// paper's 1 mW probes must undercut the 1e-2-sized link's at
	// equal sigma scale.
	if !(rows[0].AnalyticBER < rows[len(rows)-1].AnalyticBER) {
		t.Errorf("BER not improved by probe power: %g vs %g",
			rows[0].AnalyticBER, rows[len(rows)-1].AnalyticBER)
	}
}

func TestNoiseStudyDeterministic(t *testing.T) {
	spec := smallNoiseSpec(t)
	spec.Trials = 8
	spec.BERBits = 10_000
	a, err := NoiseStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NoiseStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d not reproducible: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestNoiseStudyMeasuredTracksAnalytic(t *testing.T) {
	c, err := core.NewCircuit(core.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	spec := NoiseStudySpec{
		X:       0.5,
		Lengths: []int{64},
		ProbeMW: []float64{c.MinProbePowerMW(1e-2)}, // hot link: ~500 errors expected
		Trials:  4,
		BERBits: 50_000,
		Seed:    11,
	}
	rows, err := NoiseStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0].MeasuredBER / rows[0].AnalyticBER
	if r < 0.6 || r > 1.6 {
		t.Errorf("measured %g vs analytic %g (ratio %.2f)", rows[0].MeasuredBER, rows[0].AnalyticBER, r)
	}
}

func TestNoiseStudyValidation(t *testing.T) {
	bad := []NoiseStudySpec{
		{X: 0.5, ProbeMW: []float64{1}},                                               // no lengths
		{X: 0.5, Lengths: []int{0}, ProbeMW: []float64{1}},                            // bad length
		{X: 0.5, Lengths: []int{64}},                                                  // no probes
		{X: 0.5, Lengths: []int{64}, ProbeMW: []float64{-1}},                          // bad probe
		{X: 0.5, Lengths: []int{64}, ProbeMW: []float64{1}, SigmaScale: []float64{0}}, // bad scale
	}
	for i, spec := range bad {
		if _, err := NoiseStudy(spec); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestDefaultNoiseStudySpecRuns(t *testing.T) {
	spec, err := DefaultNoiseStudySpec()
	if err != nil {
		t.Fatal(err)
	}
	// Shrink for test time; keep the sweep structure.
	spec.Trials = 4
	spec.BERBits = 5_000
	spec.Lengths = []int{64, 256}
	rows, err := NoiseStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderNoiseStudy(&sb, rows, spec); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Monte-Carlo noise study") || !strings.Contains(out, "analytic BER") {
		t.Errorf("render missing headers:\n%s", out)
	}
}
