package dse

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/stochastic"
)

// StreamSweepRow is one stream length of the noiseless
// accuracy-vs-length study run through the word-parallel batch
// engines: RMSE of the electronic ReSC baseline and of the optical
// unit against the analytic Bernstein value, over a grid of inputs.
type StreamSweepRow struct {
	StreamLen      int
	RMSEElectronic float64
	RMSEOptical    float64
}

// StreamLengthSweep evaluates the paper's order-2 reference design
// across `points` inputs on [0, 1] for each stream length, using the
// multi-core batch evaluators (stochastic.EvaluateBatch and
// core.Unit.EvaluateBatch). It is the noiseless companion of the
// transient §V.B trade-off: only stochastic fluctuation remains, so
// RMSE falls like 1/√L.
func StreamLengthSweep(lengths []int, points int, seed uint64) ([]StreamSweepRow, error) {
	if points < 2 {
		points = 2
	}
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})
	c, err := core.NewCircuit(core.PaperParams())
	if err != nil {
		return nil, err
	}
	unit, err := core.NewUnit(c, poly, seed)
	if err != nil {
		return nil, err
	}
	xs := numeric.Linspace(0, 1, points)
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = poly.Eval(x)
	}
	rmse := func(got []float64) float64 {
		s := 0.0
		for i := range got {
			d := got[i] - want[i]
			s += d * d
		}
		return math.Sqrt(s / float64(len(got)))
	}
	for _, l := range lengths {
		if l < 1 {
			return nil, fmt.Errorf("dse: stream length %d, need >= 1", l)
		}
	}
	// Lengths fan out over the worker pool on top of the per-input
	// fan-out inside the batch evaluators; every stream derives its
	// seed from (seed, input index) alone, so the table is identical
	// at any GOMAXPROCS.
	return SweepErr(len(lengths), func(i int) (StreamSweepRow, error) {
		l := lengths[i]
		ele, err := stochastic.EvaluateBatch(poly, xs, l, seed)
		if err != nil {
			return StreamSweepRow{}, err
		}
		return StreamSweepRow{
			StreamLen:      l,
			RMSEElectronic: rmse(ele),
			RMSEOptical:    rmse(unit.EvaluateBatch(xs, l)),
		}, nil
	})
}

// RenderStreamLengthSweep writes the sweep table.
func RenderStreamLengthSweep(w io.Writer, rows []StreamSweepRow, points int) error {
	if _, err := fmt.Fprintf(w, "Noiseless accuracy vs stream length (%d inputs, batch engine)\n", points); err != nil {
		return err
	}
	t := NewTable("stream length", "RMSE electronic", "RMSE optical")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprint(r.StreamLen),
			fmt.Sprintf("%.4f", r.RMSEElectronic),
			fmt.Sprintf("%.4f", r.RMSEOptical),
		)
	}
	return t.Render(w)
}
