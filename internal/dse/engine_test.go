package dse

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/enginetest"
	"repro/internal/numeric"
)

// TestEngineSuite registers every sweep runner into the generic
// cross-engine equivalence and GOMAXPROCS-determinism suite. The
// figure generators all reduce to these runners, so pinning them here
// carries every figure (their per-figure determinism tests in
// sweep_test.go stay as integration coverage).
func TestEngineSuite(t *testing.T) {
	enginetest.Run(t, nil, []enginetest.Case{
		{
			Name: "dse.SweepOn",
			Eval: func(e engine.Engine) (any, error) {
				return SweepOn(e, 100, func(i int) int { return i * i }), nil
			},
		},
		{
			Name: "dse.SweepErrOn",
			Eval: func(e engine.Engine) (any, error) {
				return SweepErrOn(e, 50, func(i int) (int, error) { return i + 1, nil })
			},
		},
		{
			Name: "dse.SweepSeededOn",
			Eval: func(e engine.Engine) (any, error) {
				return SweepSeededOn(e, 32, 42, func(_ int, seed uint64) uint64 { return seed }), nil
			},
		},
		{
			Name: "dse.SweepSeededErrOn",
			Eval: func(e engine.Engine) (any, error) {
				return SweepSeededErrOn(e, 32, 42, func(i int, seed uint64) (uint64, error) { return seed ^ uint64(i), nil })
			},
		},
		{
			Name: "dse.GridOn",
			Eval: func(e engine.Engine) (any, error) {
				return GridOn(e, 7, 5, func(r, c int) [2]int { return [2]int{r, c} }), nil
			},
		},
		{
			Name: "dse.SweepCtx",
			Eval: func(e engine.Engine) (any, error) {
				return SweepCtx(context.Background(), e, 64, func(i int) int { return i * 3 })
			},
		},
		{
			Name: "dse.SweepSeededCtx",
			Eval: func(e engine.Engine) (any, error) {
				return SweepSeededCtx(context.Background(), e, 32, 42, func(i int, seed uint64) uint64 { return seed ^ uint64(i) })
			},
		},
		{
			Name: "dse.GridCtx",
			Eval: func(e engine.Engine) (any, error) {
				return GridCtx(context.Background(), e, 4, 6, func(r, c int) int { return r*100 + c })
			},
		},
		{
			Name: "dse.YieldStudy.RunOn",
			Eval: func(e engine.Engine) (any, error) {
				return yieldStudyFixture().RunOn(e)
			},
		},
		{
			Name: "dse.YieldStudy.RunCtx",
			Eval: func(e engine.Engine) (any, error) {
				return yieldStudyFixture().RunCtx(context.Background(), e)
			},
		},
		{
			Name: "dse.Checkpointer.Run+RunCheckpointed",
			Eval: func(e engine.Engine) (any, error) {
				// A fresh un-persisted checkpointer (empty Path would
				// fail the save, so use a per-eval temp file) replays the
				// study through Checkpointer.Run via RunCheckpointed.
				s := yieldStudyFixture()
				dir, err := os.MkdirTemp("", "dse-enginetest-*")
				if err != nil {
					return nil, err
				}
				defer os.RemoveAll(dir)
				cp := NewCheckpointer[core.DieOutcome](filepath.Join(dir, "ck.json"), 0, s.Key())
				return s.RunCheckpointed(context.Background(), e, cp)
			},
		},
	})
}

// yieldStudyFixture is a small but non-trivial study shared by the
// suite cases and the checkpoint tests.
func yieldStudyFixture() YieldStudy {
	return YieldStudy{
		Params:    core.PaperParams(),
		SigmasNM:  []float64{0.01, 0.1},
		Samples:   6,
		Seed:      99,
		TargetBER: 1e-6,
	}
}

// TestSweepErrOnLowestIndexError: the deterministic error choice holds
// on an explicit engine too, and a nil engine is a clean error.
func TestSweepErrOnLowestIndexError(t *testing.T) {
	for _, e := range engine.All() {
		_, err := SweepErrOn(e, 10, func(i int) (int, error) {
			if i%3 == 2 { // fails at 2, 5, 8
				return 0, fmt.Errorf("point %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "point 2" {
			t.Fatalf("engine %q: err = %v, want the lowest failing index", e.Name(), err)
		}
	}
}

// TestNilEngineMisuse: the error-returning runners reject a nil engine
// cleanly; the value-returning ones panic, matching engine.Use.
func TestNilEngineMisuse(t *testing.T) {
	if _, err := SweepErrOn(nil, 4, func(i int) (int, error) { return i, nil }); err == nil {
		t.Error("SweepErrOn(nil) did not error")
	}
	if _, err := SweepSeededErrOn(nil, 4, 1, func(i int, _ uint64) (int, error) { return i, nil }); err == nil {
		t.Error("SweepSeededErrOn(nil) did not error")
	}
	mustPanic(t, "SweepOn", func() { SweepOn(nil, 4, func(i int) int { return i }) })
	mustPanic(t, "SweepSeededOn", func() { SweepSeededOn(nil, 4, 1, func(i int, _ uint64) int { return i }) })
	mustPanic(t, "GridOn", func() { GridOn(nil, 2, 2, func(r, c int) int { return r + c }) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s(nil engine) did not panic", name)
		}
	}()
	f()
}

// sweepEngineBench drives a representative engine-dispatched workload —
// 64 independent MRR-first energy solves, the grain of the Fig. 7
// sweeps — through SweepErrOn on the given engine.
func sweepEngineBench(b *testing.B, e engine.Engine) {
	m := core.NewEnergyModel(2)
	ws := numeric.Linspace(0.11, 0.3, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SweepErrOn(e, len(ws), func(k int) (core.EnergyBreakdown, error) {
			return m.Breakdown(ws[k])
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepEngineSerial(b *testing.B) { sweepEngineBench(b, engine.Serial) }

func BenchmarkSweepEngine(b *testing.B) { sweepEngineBench(b, engine.WordParallel) }
