package dse

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
)

// shardSnapshots runs the numeric sweep as n separate shard processes
// (fresh checkpointer each, shard-tagged paths) and returns the
// snapshot paths — the distributed run every merge test starts from.
func shardSnapshots(t *testing.T, dir string, total, shards int) []string {
	t.Helper()
	paths := make([]string, shards)
	for k := 0; k < shards; k++ {
		paths[k] = ShardCheckpointPath(filepath.Join(dir, "ck.json"), k, shards)
		cp := NewCheckpointer[float64](paths[k], 0, numericKey(total))
		_, err := cp.Run(context.Background(), engine.Shard{K: k, N: shards, Inner: engine.WordParallel}, numericPoint)
		if !errors.Is(err, engine.ErrShardRemainder) {
			t.Fatalf("shard %d/%d run err = %v, want ErrShardRemainder", k, shards, err)
		}
	}
	return paths
}

// TestShardCheckpointPath pins the tag format the CI job and docs use.
func TestShardCheckpointPath(t *testing.T) {
	if got := ShardCheckpointPath("out/yield.json", 0, 3); got != "out/yield.shard0of3.json" {
		t.Errorf("got %q", got)
	}
	if got := ShardCheckpointPath("yield", 2, 4); got != "yield.shard2of4" {
		t.Errorf("extensionless: got %q", got)
	}
}

// TestCheckpointerShardRunOwnsTrueIndices: a sharded checkpoint run
// completes exactly the owned point indices, reports the rest through
// a *engine.Partial wrapping ErrShardRemainder, and persists a
// loadable snapshot of its slice.
func TestCheckpointerShardRunOwnsTrueIndices(t *testing.T) {
	const n = 23
	path := filepath.Join(t.TempDir(), "ck.json")
	sh := engine.Shard{K: 1, N: 3, Inner: engine.Serial}
	cp := NewCheckpointer[float64](path, 4, numericKey(n))
	out, err := cp.Run(context.Background(), sh, numericPoint)
	if out != nil {
		t.Errorf("shard run returned full results %v, want nil with a remainder", out)
	}
	var p *engine.Partial
	if !errors.As(err, &p) || !errors.Is(err, engine.ErrShardRemainder) {
		t.Fatalf("err = %v, want *engine.Partial wrapping ErrShardRemainder", err)
	}
	for i := 0; i < n; i++ {
		if p.Done[i] != sh.Owns(i, n) {
			t.Errorf("Done[%d] = %v, want %v", i, p.Done[i], sh.Owns(i, n))
		}
	}
	results := cp.Results()
	for i, r := range results {
		switch {
		case sh.Owns(i, n) && r == nil:
			t.Errorf("owned point %d not recorded", i)
		case sh.Owns(i, n) && *r != numericPoint(i):
			t.Errorf("point %d = %v, want %v", i, *r, numericPoint(i))
		case !sh.Owns(i, n) && r != nil:
			t.Errorf("non-owned point %d was computed", i)
		}
	}
	// The snapshot restores exactly the owned slice.
	cp2 := NewCheckpointer[float64](path, 0, numericKey(n))
	restored, err := cp2.Load()
	if err != nil || restored != p.Completed {
		t.Fatalf("Load: restored=%d err=%v, want %d", restored, err, p.Completed)
	}
}

// TestCheckpointerShardResumeFiltersByPointIndex guards the remap trap
// the shard-aware Run exists for: after a partial restore the dispatch
// runs over the missing subset, where position j is not point j — a
// resume must still compute exactly the owned missing points.
func TestCheckpointerShardResumeFiltersByPointIndex(t *testing.T) {
	const n = 30
	path := filepath.Join(t.TempDir(), "ck.json")
	sh := engine.Shard{K: 2, N: 3, Inner: engine.Serial}

	// Interrupt the shard run partway.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int32
	cp := NewCheckpointer[float64](path, 2, numericKey(n))
	_, err := cp.Run(ctx, sh, func(i int) float64 {
		if completed.Add(1) == 4 {
			cancel()
		}
		return numericPoint(i)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted shard run err = %v, want context.Canceled", err)
	}

	// Resume: only owned, still-missing points run, by true index.
	cp2 := NewCheckpointer[float64](path, 0, numericKey(n))
	restored, err := cp2.Load()
	if err != nil || restored == 0 {
		t.Fatalf("Load: restored=%d err=%v", restored, err)
	}
	ran := make(map[int]bool)
	_, err = cp2.Run(context.Background(), sh, func(i int) float64 {
		if ran[i] {
			t.Errorf("point %d ran twice on resume", i)
		}
		ran[i] = true
		return numericPoint(i)
	})
	if !errors.Is(err, engine.ErrShardRemainder) {
		t.Fatalf("resumed shard run err = %v, want ErrShardRemainder", err)
	}
	for i := range ran {
		if !sh.Owns(i, n) {
			t.Errorf("resume ran non-owned point %d", i)
		}
	}
	for i, r := range cp2.Results() {
		if sh.Owns(i, n) && r == nil {
			t.Errorf("owned point %d still missing after resume", i)
		}
	}
}

// TestCheckpointerShardInvalidSpecFailsClosed: a malformed shard spec
// is rejected before any dispatch.
func TestCheckpointerShardInvalidSpecFailsClosed(t *testing.T) {
	cp := NewCheckpointer[float64](filepath.Join(t.TempDir(), "ck.json"), 0, numericKey(5))
	ran := false
	_, err := cp.Run(context.Background(), engine.Shard{K: 3, N: 3, Inner: engine.Serial}, func(i int) float64 {
		ran = true
		return 0
	})
	if err == nil || ran {
		t.Fatalf("invalid shard: err=%v ran=%v, want error without dispatch", err, ran)
	}
}

// TestMergeCheckpointsByteIdenticalToUnsharded is the tentpole's core
// claim in miniature: merging K shard snapshots produces a checkpoint
// file byte-identical to the one an unsharded run saves, and resuming
// from it re-runs nothing.
func TestMergeCheckpointsByteIdenticalToUnsharded(t *testing.T) {
	const n = 31
	dir := t.TempDir()

	// Unsharded reference snapshot.
	refPath := filepath.Join(dir, "ref.json")
	ref, err := NewCheckpointer[float64](refPath, 0, numericKey(n)).
		Run(context.Background(), engine.Serial, numericPoint)
	if err != nil {
		t.Fatal(err)
	}

	// Three shard processes, then the merge.
	paths := shardSnapshots(t, dir, n, 3)
	mergedPath := filepath.Join(dir, "merged.json")
	rep, err := MergeCheckpoints(mergedPath, paths)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != n || rep.Merged != n || rep.Overlap != 0 {
		t.Errorf("report = %+v, want %d merged, 0 overlap", rep, n)
	}
	sum := 0
	for _, c := range rep.PerInput {
		sum += c
	}
	if sum != n {
		t.Errorf("per-input contributions %v sum to %d, want %d", rep.PerInput, sum, n)
	}

	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, gotBytes) {
		t.Fatalf("merged checkpoint is not byte-identical to the unsharded snapshot\n got: %s\nwant: %s", gotBytes, refBytes)
	}

	// Resume from the merged file: zero re-runs, identical results.
	cp := NewCheckpointer[float64](mergedPath, 0, numericKey(n))
	if _, err := cp.Load(); err != nil {
		t.Fatal(err)
	}
	got, err := cp.Run(context.Background(), engine.Serial, func(i int) float64 {
		t.Errorf("resume from merged checkpoint re-ran point %d", i)
		return numericPoint(i)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Error("results resumed from merged checkpoint diverge from the unsharded run")
	}
}

// TestMergeCheckpointsAgreedOverlapCounts: byte-identical overlapping
// entries merge fine and are reported, because re-running a shard (or
// a wider one) is legitimate in a distributed recovery.
func TestMergeCheckpointsAgreedOverlapCounts(t *testing.T) {
	const n = 12
	dir := t.TempDir()
	paths := shardSnapshots(t, dir, n, 2)
	// A full unsharded snapshot overlaps every index of both shards.
	fullPath := filepath.Join(dir, "full.json")
	if _, err := NewCheckpointer[float64](fullPath, 0, numericKey(n)).
		Run(context.Background(), engine.Serial, numericPoint); err != nil {
		t.Fatal(err)
	}
	rep, err := MergeCheckpoints(filepath.Join(dir, "merged.json"), append(paths, fullPath))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overlap != n {
		t.Errorf("Overlap = %d, want %d", rep.Overlap, n)
	}
}

// TestMergeCheckpointsFailsClosedOnForeignKey: a snapshot from a
// different study refuses to merge.
func TestMergeCheckpointsFailsClosedOnForeignKey(t *testing.T) {
	const n = 10
	dir := t.TempDir()
	paths := shardSnapshots(t, dir, n, 2)
	foreign := filepath.Join(dir, "foreign.json")
	otherKey := numericKey(n)
	otherKey.Seed++
	if _, err := NewCheckpointer[float64](foreign, 0, otherKey).
		Run(context.Background(), engine.Serial, numericPoint); err != nil {
		t.Fatal(err)
	}
	_, err := MergeCheckpoints(filepath.Join(dir, "merged.json"), []string{paths[0], foreign, paths[1]})
	if !errors.Is(err, ErrStaleCheckpoint) {
		t.Fatalf("foreign-key merge err = %v, want ErrStaleCheckpoint", err)
	}
}

// TestMergeCheckpointsFailsClosedOnDisagreement: two snapshots claiming
// the same index with different bytes refuse to merge, naming the
// index and both files.
func TestMergeCheckpointsFailsClosedOnDisagreement(t *testing.T) {
	const n = 9
	dir := t.TempDir()
	paths := shardSnapshots(t, dir, n, 2)
	// A corrupted copy of shard 0: same key, one altered value.
	lying := filepath.Join(dir, "lying.json")
	cp := NewCheckpointer[float64](lying, 0, numericKey(n))
	if _, err := cp.Run(context.Background(), engine.Shard{K: 0, N: 2, Inner: engine.Serial}, func(i int) float64 {
		if i == 4 {
			return numericPoint(i) + 1
		}
		return numericPoint(i)
	}); !errors.Is(err, engine.ErrShardRemainder) {
		t.Fatal(err)
	}
	_, err := MergeCheckpoints(filepath.Join(dir, "merged.json"), []string{paths[0], paths[1], lying})
	if err == nil {
		t.Fatal("disagreeing merge succeeded")
	}
	if !strings.Contains(err.Error(), "point 4") || !strings.Contains(err.Error(), "disagrees") {
		t.Errorf("disagreement error does not name the point: %v", err)
	}
}

// TestMergeCheckpointsFailsClosedOnGaps: a missing shard leaves
// uncovered indices and the merge refuses, naming the gap size.
func TestMergeCheckpointsFailsClosedOnGaps(t *testing.T) {
	const n = 10
	dir := t.TempDir()
	paths := shardSnapshots(t, dir, n, 3)
	out := filepath.Join(dir, "merged.json")
	_, err := MergeCheckpoints(out, []string{paths[0], paths[2]})
	if err == nil {
		t.Fatal("gapped merge succeeded")
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Errorf("gap error does not say missing: %v", err)
	}
	if _, statErr := os.Stat(out); !errors.Is(statErr, os.ErrNotExist) {
		t.Error("failed merge left an output file behind")
	}
}

// TestMergeCheckpointsRejectsBadInputs: empty input lists, unreadable
// files, corrupt JSON and self-inconsistent headers all fail closed.
func TestMergeCheckpointsRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "merged.json")
	if _, err := MergeCheckpoints(out, nil); err == nil {
		t.Error("empty input list accepted")
	}
	if _, err := MergeCheckpoints(out, []string{filepath.Join(dir, "nope.json")}); err == nil {
		t.Error("missing input accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints(out, []string{bad}); err == nil {
		t.Error("corrupt input accepted")
	}
	// A header whose hash does not match its own key (tampered file).
	tampered := filepath.Join(dir, "tampered.json")
	if err := os.WriteFile(tampered,
		[]byte(`{"version":1,"hash":"deadbeef","key":{"figure":"x","config":"y","seed":1,"n":1},"results":[null]}`),
		0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints(out, []string{tampered}); !errors.Is(err, ErrStaleCheckpoint) {
		t.Errorf("self-inconsistent input err = %v, want ErrStaleCheckpoint", err)
	}
}
