package dse

import (
	"repro/internal/engine"
	"repro/internal/stochastic"
)

// This file is the deterministic sweep layer the figure generators
// run on. Every design-space study in this package is an
// index-ordered list of independent points — a grid cell of Fig. 6(a),
// one polynomial order of Fig. 7, one (probe, sigma) combination of
// the noise study — so they all reduce to "evaluate point i"
// dispatched on an evaluation engine (internal/engine; the ...On
// variants take one explicitly, the rest use engine.Default()). The
// runners keep results in index order and derive any randomness from
// the point index alone (stochastic.DeriveSeed), so a sweep returns
// identical results on every conforming engine, at any GOMAXPROCS and
// under any scheduling — which carries every figure built on them
// through the cross-engine equivalence suite for free. Nested
// parallelism is fine: point functions may themselves call the batch
// evaluators (which use the same pool primitive), as the noise and
// stream-length studies do.

// SweepOn evaluates point(i) for every i in [0, n) on the given
// engine and returns the results in index order. A nil engine panics
// (this entry point has no error return).
func SweepOn[T any](e engine.Engine, n int, point func(i int) T) []T {
	out := make([]T, n)
	engine.Use(e).For(n, func(i int) { out[i] = point(i) })
	return out
}

// Sweep is SweepOn on the process-default engine.
func Sweep[T any](n int, point func(i int) T) []T {
	return SweepOn(engine.Default(), n, point)
}

// SweepErrOn is SweepOn for fallible points. Every point runs; if any
// fail, the error of the lowest failing index is returned (a
// deterministic choice) along with a nil slice. A nil engine is an
// error.
func SweepErrOn[T any](e engine.Engine, n int, point func(i int) (T, error)) ([]T, error) {
	if err := engine.Check(e); err != nil {
		return nil, err
	}
	out := make([]T, n)
	errs := make([]error, n)
	e.For(n, func(i int) { out[i], errs[i] = point(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepErr is SweepErrOn on the process-default engine.
func SweepErr[T any](n int, point func(i int) (T, error)) ([]T, error) {
	return SweepErrOn(engine.Default(), n, point)
}

// SweepSeededOn is SweepOn with a per-point seed derived from the
// base seed and the index alone — the hook Monte-Carlo sweeps use to
// stay reproducible on any core count.
func SweepSeededOn[T any](e engine.Engine, n int, seed uint64, point func(i int, pointSeed uint64) T) []T {
	return SweepOn(e, n, func(i int) T { return point(i, stochastic.DeriveSeed(seed, i)) })
}

// SweepSeeded is SweepSeededOn on the process-default engine.
func SweepSeeded[T any](n int, seed uint64, point func(i int, pointSeed uint64) T) []T {
	return SweepSeededOn(engine.Default(), n, seed, point)
}

// SweepSeededErrOn is SweepErrOn with a derived per-point seed.
func SweepSeededErrOn[T any](e engine.Engine, n int, seed uint64, point func(i int, pointSeed uint64) (T, error)) ([]T, error) {
	return SweepErrOn(e, n, func(i int) (T, error) { return point(i, stochastic.DeriveSeed(seed, i)) })
}

// SweepSeededErr is SweepSeededErrOn on the process-default engine.
func SweepSeededErr[T any](n int, seed uint64, point func(i int, pointSeed uint64) (T, error)) ([]T, error) {
	return SweepSeededErrOn(engine.Default(), n, seed, point)
}

// GridOn evaluates point(r, c) for every cell of an rows × cols grid
// on the given engine and returns the results in row-major order —
// the shape of the Fig. 6(a) design-space study. A nil engine panics,
// matching SweepOn.
func GridOn[T any](e engine.Engine, rows, cols int, point func(r, c int) T) []T {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	return SweepOn(e, rows*cols, func(i int) T { return point(i/cols, i%cols) })
}

// Grid is GridOn on the process-default engine.
func Grid[T any](rows, cols int, point func(r, c int) T) []T {
	return GridOn(engine.Default(), rows, cols, point)
}
