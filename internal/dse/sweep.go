package dse

import (
	"repro/internal/parallel"
	"repro/internal/stochastic"
)

// This file is the deterministic parallel sweep engine the figure
// generators run on. Every design-space study in this package is an
// index-ordered list of independent points — a grid cell of Fig. 6(a),
// one polynomial order of Fig. 7, one (probe, sigma) combination of
// the noise study — so they all reduce to "evaluate point i" fanned
// over the internal/parallel worker pool. The runners keep results in
// index order and derive any randomness from the point index alone
// (stochastic.DeriveSeed), so a sweep returns identical results at any
// GOMAXPROCS and under any scheduling. Nested parallelism is fine:
// point functions may themselves call the batch evaluators (which use
// the same pool primitive), as the noise and stream-length studies do.

// Sweep evaluates point(i) for every i in [0, n) over the worker pool
// and returns the results in index order.
func Sweep[T any](n int, point func(i int) T) []T {
	out := make([]T, n)
	parallel.For(n, func(i int) { out[i] = point(i) })
	return out
}

// SweepErr is Sweep for fallible points. Every point runs; if any
// fail, the error of the lowest failing index is returned (a
// deterministic choice) along with a nil slice.
func SweepErr[T any](n int, point func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	parallel.For(n, func(i int) { out[i], errs[i] = point(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepSeeded is Sweep with a per-point seed derived from the base
// seed and the index alone — the hook Monte-Carlo sweeps use to stay
// reproducible on any core count.
func SweepSeeded[T any](n int, seed uint64, point func(i int, pointSeed uint64) T) []T {
	return Sweep(n, func(i int) T { return point(i, stochastic.DeriveSeed(seed, i)) })
}

// SweepSeededErr is SweepErr with a derived per-point seed.
func SweepSeededErr[T any](n int, seed uint64, point func(i int, pointSeed uint64) (T, error)) ([]T, error) {
	return SweepErr(n, func(i int) (T, error) { return point(i, stochastic.DeriveSeed(seed, i)) })
}

// Grid evaluates point(r, c) for every cell of an rows × cols grid
// over the worker pool and returns the results in row-major order —
// the shape of the Fig. 6(a) design-space study.
func Grid[T any](rows, cols int, point func(r, c int) T) []T {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	return Sweep(rows*cols, func(i int) T { return point(i/cols, i%cols) })
}
