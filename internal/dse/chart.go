package dse

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
)

// RenderEnergyChartASCII draws the Fig. 7(a) curves — pump ('P'),
// probe ('p') and total ('T') energy versus wavelength spacing — as a
// fixed-width ASCII chart, the text-mode analogue of the paper's
// figure. The y axis is linear in pJ, clipped to maxPJ (0 picks the
// largest finite sample).
func RenderEnergyChartASCII(w io.Writer, points []core.EnergyBreakdown, width, height int, maxPJ float64) error {
	if len(points) < 2 {
		return fmt.Errorf("dse: chart needs >= 2 points")
	}
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	lo := points[0].WLSpacingNM
	hi := points[len(points)-1].WLSpacingNM
	if maxPJ <= 0 {
		for _, p := range points {
			maxPJ = math.Max(maxPJ, p.TotalPJ())
		}
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	plot := func(x, yPJ float64, r rune) {
		if yPJ > maxPJ {
			yPJ = maxPJ
		}
		col := int((x - lo) / (hi - lo) * float64(width-1))
		row := height - 1 - int(yPJ/maxPJ*float64(height-1))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		// Total wins collisions so the optimum is visible.
		if grid[row][col] == 'T' && r != 'T' {
			return
		}
		grid[row][col] = r
	}
	for _, p := range points {
		plot(p.WLSpacingNM, p.PumpPJ, 'P')
		plot(p.WLSpacingNM, p.ProbePJ, 'p')
		plot(p.WLSpacingNM, p.TotalPJ(), 'T')
	}
	for i, line := range grid {
		label := "      | "
		switch i {
		case 0:
			label = fmt.Sprintf("%5.0f | ", maxPJ)
		case height - 1:
			label = "    0 | "
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "        %-*.3f%*.3f nm\n", width/2, lo, width-width/2, hi); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "        P = pump laser, p = probe lasers, T = total (pJ/bit)")
	return err
}

// ApplicationProfileRow realizes the §V.C remark that the model lets
// a designer "estimate a circuit power consumption and throughput,
// taking into account the required polynomial degree": one row per
// application, with its degree, sized lasers and throughput.
type ApplicationProfileRow struct {
	Application string
	Order       int
	StreamLen   int
	Energy      core.EnergyBreakdown
	// ResultsPerSec is the output rate at 1 Gb/s streams.
	ResultsPerSec float64
	// AvgPowerMW is the average electrical laser power.
	AvgPowerMW float64
}

// ApplicationProfile sizes representative SC workloads at the optimal
// spacing: a 2nd-order polynomial kernel, the paper's running
// 3rd-order f1 (elevated to its degree), and 6th-order gamma
// correction.
func ApplicationProfile() ([]ApplicationProfileRow, error) {
	apps := []struct {
		name   string
		order  int
		stream int
	}{
		{"order-2 polynomial kernel", 2, 256},
		{"f1(x) (paper Fig. 1b)", 3, 1024},
		{"gamma correction (§V.C)", 6, 4096},
	}
	out := make([]ApplicationProfileRow, 0, len(apps))
	for _, a := range apps {
		m := core.NewEnergyModel(a.order)
		opt, err := m.OptimalSpacing(0.1, 0.3)
		if err != nil {
			return nil, fmt.Errorf("dse: profiling %s: %w", a.name, err)
		}
		// Average power = energy per bit × bit rate.
		avgMW := opt.TotalPJ() * 1e-12 * 1e9 * 1e3 // pJ/bit × 1 Gb/s → mW
		out = append(out, ApplicationProfileRow{
			Application:   a.name,
			Order:         a.order,
			StreamLen:     a.stream,
			Energy:        opt,
			ResultsPerSec: 1e9 / float64(a.stream),
			AvgPowerMW:    avgMW,
		})
	}
	return out, nil
}

// RenderApplicationProfile writes the workload table.
func RenderApplicationProfile(w io.Writer, rows []ApplicationProfileRow) error {
	if _, err := fmt.Fprintln(w, "Application profile at the optimal spacing (1 Gb/s, §V.C)"); err != nil {
		return err
	}
	t := NewTable("application", "order", "stream", "energy (pJ/bit)", "avg power (mW)", "results/s")
	for _, r := range rows {
		t.AddRow(
			r.Application,
			fmt.Sprint(r.Order),
			fmt.Sprint(r.StreamLen),
			fmt.Sprintf("%.1f", r.Energy.TotalPJ()),
			fmt.Sprintf("%.2f", r.AvgPowerMW),
			fmt.Sprintf("%.3g", r.ResultsPerSec),
		)
	}
	return t.Render(w)
}
