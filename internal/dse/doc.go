// Package dse (design-space exploration) regenerates every evaluated
// figure of the paper as structured data plus text-table renderings:
//
//   - Fig. 5(a)/(b): transmission spectra of the modulator rings and
//     filter with per-channel totals for the two worked examples;
//   - Fig. 5(c): received optical power for every (x, z) combination,
//     grouped into the '0' and '1' de-randomizer bands;
//   - Fig. 6(a): minimum probe laser power over an (IL, ER) grid at
//     fixed pump power and BER target (MZI-first method);
//   - Fig. 6(b): minimum probe power versus BER target;
//   - Fig. 6(c): minimum probe power for four published MZI devices;
//   - Fig. 7(a): laser energy per bit versus wavelength spacing, per
//     polynomial order, with the pump/probe crossover and optimum;
//   - Fig. 7(b): total energy versus polynomial order at 1 nm and at
//     the optimal spacing, with the headline energy saving.
//
// The functions return plain structs so tests can assert on the data,
// and each has a Render* companion writing the human-readable table
// that cmd/oscbench prints.
//
// # Parallel sweep engine
//
// Every study above runs on the generic sweep runners in sweep.go —
// Sweep, SweepErr, SweepSeeded(Err) and Grid — which fan independent
// points over the internal/parallel worker pool and return results in
// index order. Randomness, where a study needs it, derives from the
// base seed and the point index alone (stochastic.DeriveSeed), so
// every sweep is bit-identical at any GOMAXPROCS and under any
// scheduling; nested use is fine (a point function may itself call the
// word-parallel batch evaluators, as NoiseStudy and StreamLengthSweep
// do). Quickstart:
//
//	pts := dse.Fig6A(12, 12)        // 144 MZI-first solves over the pool
//	rows := dse.Sweep(n, point)     // custom study: point(i) -> row, index-ordered
//	rows, err := dse.SweepSeededErr(n, seed, func(i int, s uint64) (Row, error) {
//	    ...                         // Monte-Carlo point with its own derived seed
//	})
package dse
