// Package dse (design-space exploration) regenerates every evaluated
// figure of the paper as structured data plus text-table renderings:
//
//   - Fig. 5(a)/(b): transmission spectra of the modulator rings and
//     filter with per-channel totals for the two worked examples;
//   - Fig. 5(c): received optical power for every (x, z) combination,
//     grouped into the '0' and '1' de-randomizer bands;
//   - Fig. 6(a): minimum probe laser power over an (IL, ER) grid at
//     fixed pump power and BER target (MZI-first method);
//   - Fig. 6(b): minimum probe power versus BER target;
//   - Fig. 6(c): minimum probe power for four published MZI devices;
//   - Fig. 7(a): laser energy per bit versus wavelength spacing, per
//     polynomial order, with the pump/probe crossover and optimum;
//   - Fig. 7(b): total energy versus polynomial order at 1 nm and at
//     the optimal spacing, with the headline energy saving.
//
// The functions return plain structs so tests can assert on the data,
// and each has a Render* companion writing the human-readable table
// that cmd/oscbench prints.
package dse
