package dse

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/optics"
	"repro/internal/stochastic"
)

// RingSensitivityRow measures how the Fig. 7 energy optimum moves
// when the filter linewidth changes — the design-choice DESIGN.md
// calls out (the paper never states ring geometry; this quantifies
// how much that omission matters).
type RingSensitivityRow struct {
	// FWHMScale multiplies the dense preset's filter linewidth.
	FWHMScale float64
	// FilterFWHMNM is the resulting linewidth.
	FilterFWHMNM float64
	// OptSpacingNM and OptTotalPJ describe the resulting optimum.
	OptSpacingNM float64
	OptTotalPJ   float64
	Feasible     bool
}

// RingSensitivity sweeps the filter-linewidth scale over the worker
// pool (one energy-optimum search per scale). Scales are realized by
// adjusting the symmetric coupling r so the analytic FWHM hits the
// target.
func RingSensitivity(scales []float64) []RingSensitivityRow {
	base := core.DenseFilterShape()
	baseFWHM := base.At(optics.CBandCenterNM).FWHMNM()
	return Sweep(len(scales), func(i int) RingSensitivityRow {
		s := scales[i]
		row := RingSensitivityRow{FWHMScale: s}
		shape, err := filterShapeWithFWHM(base, baseFWHM*s)
		if err == nil {
			row.FilterFWHMNM = shape.At(optics.CBandCenterNM).FWHMNM()
			m := core.EnergyModel{Spec: core.MRRFirstSpec{Order: 2, FilterShape: shape}}
			if opt, err := m.OptimalSpacing(0.1, 0.4); err == nil {
				row.OptSpacingNM = opt.WLSpacingNM
				row.OptTotalPJ = opt.TotalPJ()
				row.Feasible = true
			}
		}
		return row
	})
}

// filterShapeWithFWHM solves the symmetric coupling giving the target
// linewidth: FWHM = FSR(1-p)/(π√p) with p = a·r².
func filterShapeWithFWHM(base core.RingShape, fwhmNM float64) (core.RingShape, error) {
	if fwhmNM <= 0 {
		return core.RingShape{}, fmt.Errorf("dse: non-positive FWHM")
	}
	c := math.Pi * fwhmNM / base.FSRNM
	// (1-p)/√p = c  =>  √p = (-c + √(c²+4))/2.
	s := (-c + math.Sqrt(c*c+4)) / 2
	p := s * s
	r := math.Sqrt(p / base.A)
	if r <= 0 || r >= 1 {
		return core.RingShape{}, fmt.Errorf("dse: linewidth %g nm unrealizable", fwhmNM)
	}
	out := base
	out.R1, out.R2 = r, r
	return out, nil
}

// RenderRingSensitivity writes the sensitivity table.
func RenderRingSensitivity(w io.Writer, rows []RingSensitivityRow) error {
	if _, err := fmt.Fprintln(w, "Ablation: filter linewidth vs Fig 7 optimum (n=2)"); err != nil {
		return err
	}
	t := NewTable("FWHM scale", "FWHM (nm)", "opt spacing (nm)", "opt total (pJ)")
	for _, r := range rows {
		if !r.Feasible {
			t.AddRow(fmt.Sprintf("%.2f", r.FWHMScale), "-", "infeasible", "-")
			continue
		}
		t.AddRow(
			fmt.Sprintf("%.2f", r.FWHMScale),
			fmt.Sprintf("%.3f", r.FilterFWHMNM),
			fmt.Sprintf("%.3f", r.OptSpacingNM),
			fmt.Sprintf("%.1f", r.OptTotalPJ),
		)
	}
	return t.Render(w)
}

// APDComparisonRow contrasts detector options for the probe lasers —
// the paper's future-work ref [21].
type APDComparisonRow struct {
	Name          string
	ProbeMW       float64
	ProbeEnergyPJ float64
}

// APDComparison sizes the paper design's probe power with the
// calibrated pin detector and with the APD at the same thermal noise
// floor.
func APDComparison(ber float64) ([]APDComparisonRow, error) {
	pin := core.DefaultDetector()
	apd := optics.PaperAPD(pin.NoiseCurrentA)

	rows := make([]APDComparisonRow, 0, 2)
	for _, d := range []struct {
		name string
		det  optics.Photodetector
	}{
		{"pin (calibrated baseline)", pin},
		{fmt.Sprintf("APD (M=%.0f, x=%.1f)", apd.Gain, apd.ExcessNoiseExp), apd.EffectiveDetector()},
	} {
		p := core.PaperParams()
		p.Detector = d.det
		c, err := core.NewCircuit(p)
		if err != nil {
			return nil, err
		}
		probe := c.MinProbePowerMW(ber)
		p.ProbePowerMW = probe
		e := core.ParamsEnergy(p)
		rows = append(rows, APDComparisonRow{Name: d.name, ProbeMW: probe, ProbeEnergyPJ: e.ProbePJ})
	}
	return rows, nil
}

// RenderAPDComparison writes the detector table.
func RenderAPDComparison(w io.Writer, rows []APDComparisonRow, ber float64) error {
	if _, err := fmt.Fprintf(w, "Ablation: detector choice at BER %.0e (future work [21])\n", ber); err != nil {
		return err
	}
	t := NewTable("detector", "min probe (mW)", "probe energy (pJ/bit)")
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%.4f", r.ProbeMW), fmt.Sprintf("%.3f", r.ProbeEnergyPJ))
	}
	return t.Render(w)
}

// ParallelScalingRow shows aggregate throughput and power density of
// the §V.C parallel-array suggestion.
type ParallelScalingRow struct {
	Lanes                 int
	ThroughputResultsPerS float64
	TotalPowerMW          float64
	PowerDensityMWPerMM2  float64
}

// ParallelScaling evaluates lane counts at the paper design with the
// given stream length.
func ParallelScaling(lanes []int, streamLen int) ([]ParallelScalingRow, error) {
	p := core.PaperParams()
	c, err := core.NewCircuit(p)
	if err != nil {
		return nil, err
	}
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})
	out := make([]ParallelScalingRow, 0, len(lanes))
	for _, l := range lanes {
		arr, err := core.NewParallelArray(c, poly, l, 11)
		if err != nil {
			return nil, err
		}
		out = append(out, ParallelScalingRow{
			Lanes:                 l,
			ThroughputResultsPerS: arr.ThroughputResultsPerSec(streamLen),
			TotalPowerMW:          arr.TotalPowerMW(),
			PowerDensityMWPerMM2:  arr.PowerDensityMWPerMM2(),
		})
	}
	return out, nil
}

// RenderParallelScaling writes the scaling table.
func RenderParallelScaling(w io.Writer, rows []ParallelScalingRow, streamLen int) error {
	if _, err := fmt.Fprintf(w, "Parallel array scaling (%d-bit streams; §V.C suggestion)\n", streamLen); err != nil {
		return err
	}
	t := NewTable("lanes", "results/s", "total power (mW)", "power density (mW/mm²)")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprint(r.Lanes),
			fmt.Sprintf("%.3g", r.ThroughputResultsPerS),
			fmt.Sprintf("%.1f", r.TotalPowerMW),
			fmt.Sprintf("%.1f", r.PowerDensityMWPerMM2),
		)
	}
	return t.Render(w)
}
