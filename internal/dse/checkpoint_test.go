package dse

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stochastic"
)

// numericKey is a small sweep identity used by the pure-checkpointer
// tests: point i is a float derived from (seed, i) alone, mimicking
// the DeriveSeed discipline of the real sweeps.
func numericKey(n int) CheckpointKey {
	return CheckpointKey{Figure: "ck-test", Config: "f(i)=derive(seed,i)", Seed: 1234, N: n}
}

func numericPoint(i int) float64 {
	return float64(stochastic.DeriveSeed(1234, i)%1000) / 7.0
}

// TestCheckpointerCompletes: a full run returns every point in index
// order and leaves a resumable snapshot behind.
func TestCheckpointerCompletes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	cp := NewCheckpointer[float64](path, 5, numericKey(37))
	got, err := cp.Run(context.Background(), engine.Serial, numericPoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 37 {
		t.Fatalf("got %d results", len(got))
	}
	for i, v := range got {
		if v != numericPoint(i) {
			t.Fatalf("point %d = %v, want %v", i, v, numericPoint(i))
		}
	}
	// The final snapshot restores completely.
	cp2 := NewCheckpointer[float64](path, 5, numericKey(37))
	restored, err := cp2.Load()
	if err != nil || restored != 37 {
		t.Fatalf("Load after completion: restored=%d err=%v", restored, err)
	}
}

// TestCheckpointerInterruptResumeBitIdentical is the acceptance
// criterion in miniature: a sweep interrupted by cancellation, resumed
// from its checkpoint by a fresh checkpointer, reassembles results
// bit-identical to an uninterrupted run.
func TestCheckpointerInterruptResumeBitIdentical(t *testing.T) {
	const n = 80
	// Uninterrupted reference.
	ref, err := NewCheckpointer[float64](filepath.Join(t.TempDir(), "ref.json"), 0, numericKey(n)).
		Run(context.Background(), engine.Serial, numericPoint)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after 25 completed points; Every 10 so a
	// durable snapshot exists before the cancellation. The serial
	// engine's ctx path polls at every item boundary, so the stop is
	// deterministic — exactly 25 points complete.
	path := filepath.Join(t.TempDir(), "ck.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int32
	cp := NewCheckpointer[float64](path, 10, numericKey(n))
	_, err = cp.Run(ctx, engine.Serial, func(i int) float64 {
		if completed.Add(1) == 25 {
			cancel()
		}
		return numericPoint(i)
	})
	var p *engine.Partial
	if !errors.As(err, &p) {
		t.Fatalf("interrupted run err = %v (%T), want *engine.Partial", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Partial does not carry context.Canceled: %v", err)
	}
	if p.Completed == 0 || p.Completed >= n {
		t.Fatalf("Completed = %d, want a strict partial of %d", p.Completed, n)
	}

	// Resume with a fresh checkpointer (a new process, in effect).
	cp2 := NewCheckpointer[float64](path, 10, numericKey(n))
	restored, err := cp2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if restored != p.Completed {
		t.Fatalf("restored %d points, checkpoint said %d completed", restored, p.Completed)
	}
	var rerun atomic.Int32
	got, err := cp2.Run(context.Background(), engine.WordParallel, func(i int) float64 {
		rerun.Add(1)
		return numericPoint(i)
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(rerun.Load()) != n-restored {
		t.Errorf("resume re-ran %d points, want only the missing %d", rerun.Load(), n-restored)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("resumed results diverge from the uninterrupted run")
	}
}

// TestCheckpointerStaleFailsClosed: a checkpoint written under a
// different key — other figure, config, seed or n — refuses to load.
func TestCheckpointerStaleFailsClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if _, err := NewCheckpointer[float64](path, 0, numericKey(10)).
		Run(context.Background(), engine.Serial, numericPoint); err != nil {
		t.Fatal(err)
	}
	for name, key := range map[string]CheckpointKey{
		"figure": {Figure: "other", Config: "f(i)=derive(seed,i)", Seed: 1234, N: 10},
		"config": {Figure: "ck-test", Config: "different", Seed: 1234, N: 10},
		"seed":   {Figure: "ck-test", Config: "f(i)=derive(seed,i)", Seed: 99, N: 10},
		"n":      {Figure: "ck-test", Config: "f(i)=derive(seed,i)", Seed: 1234, N: 11},
	} {
		if _, err := NewCheckpointer[float64](path, 0, key).Load(); !errors.Is(err, ErrStaleCheckpoint) {
			t.Errorf("mismatched %s: Load err = %v, want ErrStaleCheckpoint", name, err)
		}
	}
}

// TestCheckpointerCorruptAndMissing: corrupt JSON errors; a missing
// file is a clean zero-restore start.
func TestCheckpointerCorruptAndMissing(t *testing.T) {
	dir := t.TempDir()
	missing := NewCheckpointer[float64](filepath.Join(dir, "nope.json"), 0, numericKey(5))
	if restored, err := missing.Load(); err != nil || restored != 0 {
		t.Fatalf("missing file: restored=%d err=%v", restored, err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCheckpointer[float64](bad, 0, numericKey(5)).Load(); err == nil {
		t.Error("corrupt checkpoint loaded without error")
	}
}

// TestYieldStudyMatchesAnalyzeYield: a study row equals a standalone
// core.AnalyzeYieldOn run exactly — the property that makes the
// checkpointed yield figure trustworthy.
func TestYieldStudyMatchesAnalyzeYield(t *testing.T) {
	s := yieldStudyFixture()
	points, err := s.RunOn(engine.Serial)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(s.SigmasNM) {
		t.Fatalf("%d points for %d sigmas", len(points), len(s.SigmasNM))
	}
	for r, pt := range points {
		want, err := core.AnalyzeYieldOn(engine.Serial, s.Params, s.Variation(s.SigmasNM[r]))
		if err != nil {
			t.Fatal(err)
		}
		if pt.Result != want {
			t.Errorf("sigma %g: study %+v, standalone %+v", pt.SigmaNM, pt.Result, want)
		}
	}
}

// TestYieldStudyCheckpointRoundTrip: the checkpointed path (through
// the JSON round-trip) reproduces the direct path exactly, and a
// wrong-key checkpointer is refused up front.
func TestYieldStudyCheckpointRoundTrip(t *testing.T) {
	s := yieldStudyFixture()
	direct, err := s.RunOn(engine.Serial)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "yield.json")
	cp := NewCheckpointer[core.DieOutcome](path, 3, s.Key())
	viaCp, err := s.RunCheckpointed(context.Background(), engine.WordParallel, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaCp, direct) {
		t.Errorf("checkpointed study diverges:\n got %+v\nwant %+v", viaCp, direct)
	}
	// Resume from the completed snapshot re-runs nothing and still
	// folds identically.
	cp2 := NewCheckpointer[core.DieOutcome](path, 3, s.Key())
	if _, err := cp2.Load(); err != nil {
		t.Fatal(err)
	}
	resumed, err := s.RunCheckpointed(context.Background(), engine.Serial, cp2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, direct) {
		t.Errorf("resumed-from-complete study diverges")
	}
	wrong := s
	wrong.Seed++
	if _, err := wrong.RunCheckpointed(context.Background(), engine.Serial, cp2); !errors.Is(err, ErrStaleCheckpoint) {
		t.Errorf("wrong-key checkpointer accepted: %v", err)
	}
}
