package dse

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/engine"
)

// checkpointVersion is bumped whenever the on-disk layout changes; a
// mismatched version fails closed like a mismatched hash.
const checkpointVersion = 1

// ErrStaleCheckpoint reports a checkpoint written by a different
// (figure, config, seed, n) — resuming from it would silently mix
// incompatible results, so Load refuses.
var ErrStaleCheckpoint = errors.New("dse: checkpoint does not match this run (stale or foreign)")

// CheckpointKey identifies what a checkpoint belongs to. Two runs with
// the same key produce bit-identical per-point results (the sweep
// contract), which is exactly the condition under which resuming is
// sound; everything in the key is hashed into the file header so a
// stale checkpoint fails closed instead of corrupting a run.
type CheckpointKey struct {
	// Figure names the sweep (e.g. "yield").
	Figure string `json:"figure"`
	// Config is a deterministic rendering of every parameter that
	// affects point results.
	Config string `json:"config"`
	// Seed is the sweep's base seed.
	Seed uint64 `json:"seed"`
	// N is the total point count.
	N int `json:"n"`
}

// Hash is the content hash Load verifies: sha256 over the key's
// fields with unambiguous separators.
func (k CheckpointKey) Hash() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("v%d|%q|%q|%d|%d", checkpointVersion, k.Figure, k.Config, k.Seed, k.N)))
	return hex.EncodeToString(h[:])
}

// checkpointFile is the on-disk JSON layout: the verified header plus
// one entry per point, null where the point has not completed.
// float64 round-trips JSON exactly (shortest-representation marshal),
// so restored results are bit-identical to freshly computed ones.
type checkpointFile[T any] struct {
	Version int           `json:"version"`
	Hash    string        `json:"hash"`
	Key     CheckpointKey `json:"key"`
	Results []*T          `json:"results"`
}

// Checkpointer runs an n-point sweep with periodic durable snapshots,
// so an interrupted run (SIGINT, deadline, crash short of the last
// save) resumes by re-running only the missing points. Point i's
// result must depend on (key, i) alone — the DeriveSeed discipline
// every sweep in this repo already follows — which makes the resumed
// assembly bit-identical to an uninterrupted run.
type Checkpointer[T any] struct {
	// Path is the checkpoint file; saves go through an adjacent temp
	// file and an atomic rename, so a crash mid-save leaves the
	// previous snapshot intact.
	Path string
	// Every is the save cadence in completed points (count-based, so
	// cadence is deterministic); <= 0 disables periodic saves, leaving
	// only the final and on-interrupt ones.
	Every int
	// Key identifies and guards the run.
	Key CheckpointKey

	mu      sync.Mutex
	results []*T
	fresh   int // completions since the last save
}

// NewCheckpointer builds a checkpointer writing to path every `every`
// completed points.
func NewCheckpointer[T any](path string, every int, key CheckpointKey) *Checkpointer[T] {
	return &Checkpointer[T]{Path: path, Every: every, Key: key}
}

// Load reads a prior snapshot into the checkpointer, returning how
// many points it restored. A missing file is a clean zero-restore; a
// file whose header hash (or version, or length) does not match the
// key fails closed with ErrStaleCheckpoint in the chain.
func (c *Checkpointer[T]) Load() (restored int, err error) {
	data, err := os.ReadFile(c.Path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("dse: reading checkpoint: %w", err)
	}
	var f checkpointFile[T]
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("dse: corrupt checkpoint %s: %w", c.Path, err)
	}
	if f.Version != checkpointVersion || f.Hash != c.Key.Hash() || len(f.Results) != c.Key.N {
		return 0, fmt.Errorf("dse: %s (key %+v vs stored %+v): %w", c.Path, c.Key, f.Key, ErrStaleCheckpoint)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results = f.Results
	for _, r := range c.results {
		if r != nil {
			restored++
		}
	}
	return restored, nil
}

// record stores point i's result and saves a snapshot when the
// cadence is due. It is the only write path during a dispatch, so the
// dispatch closure itself stays allocation-free.
func (c *Checkpointer[T]) record(i int, v T) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results[i] = &v
	c.fresh++
	if c.Every > 0 && c.fresh >= c.Every {
		if err := c.saveLocked(); err != nil {
			return err
		}
		c.fresh = 0
	}
	return nil
}

// Save writes a snapshot now (atomic temp-file + rename).
func (c *Checkpointer[T]) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveLocked()
}

func (c *Checkpointer[T]) saveLocked() error {
	f := checkpointFile[T]{
		Version: checkpointVersion,
		Hash:    c.Key.Hash(),
		Key:     c.Key,
		Results: c.results,
	}
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("dse: marshaling checkpoint: %w", err)
	}
	tmp := c.Path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("dse: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.Path); err != nil {
		return fmt.Errorf("dse: committing checkpoint: %w", err)
	}
	return nil
}

// Run executes the sweep: point(i) for every i in [0, Key.N) that is
// not already restored, dispatched on e under ctx, with snapshots at
// the configured cadence and one final save. On interruption (or a
// panicking point) it saves what completed and returns a
// *engine.Partial whose Done bitmap is indexed by point — resuming
// later with a Load-ed checkpointer re-runs only the gap. On success
// it returns the complete, index-ordered results.
//
// An engine.Shard runs its slice of the sweep: Run filters the missing
// set by the shard's ownership of the true point index (the dispatch
// runs over the missing subset, so the shard cannot filter dispatch
// positions itself — on resume position j is not point j) and
// dispatches on the shard's inner engine. A shard run that completes
// every owned point saves them and returns a *engine.Partial wrapping
// engine.ErrShardRemainder — the snapshot on disk is this shard's
// durable contribution, reassembled across shards by MergeCheckpoints.
func (c *Checkpointer[T]) Run(ctx context.Context, e engine.Engine, point func(i int) T) ([]T, error) {
	if err := engine.Check(e); err != nil {
		return nil, err
	}
	if c.Key.N < 0 {
		return nil, fmt.Errorf("dse: checkpoint key has negative N %d", c.Key.N)
	}
	dispatch := e
	sh, sharded := engine.AsShard(e)
	if sharded {
		if err := sh.Validate(); err != nil {
			return nil, err
		}
		dispatch = sh.Inner
	}
	c.mu.Lock()
	if c.results == nil {
		c.results = make([]*T, c.Key.N)
	}
	missing := make([]int, 0, c.Key.N)
	for i, r := range c.results {
		if r == nil && (!sharded || sh.Owns(i, c.Key.N)) {
			missing = append(missing, i)
		}
	}
	c.mu.Unlock()

	var firstSaveErr error
	var saveErrMu sync.Mutex
	dispatchErr := engine.RunCtx(ctx, dispatch, len(missing), nil, func(j int) {
		i := missing[j]
		if err := c.record(i, point(i)); err != nil {
			saveErrMu.Lock()
			if firstSaveErr == nil {
				firstSaveErr = err
			}
			saveErrMu.Unlock()
		}
	})

	if err := c.Save(); err != nil {
		return nil, err
	}
	if firstSaveErr != nil {
		return nil, firstSaveErr
	}
	if dispatchErr != nil {
		return nil, c.partial(dispatchErr)
	}

	c.mu.Lock()
	out := make([]T, c.Key.N)
	remainder := false
	unset := -1
	for i, r := range c.results {
		if r == nil {
			if sharded && !sh.Owns(i, c.Key.N) {
				remainder = true
				continue
			}
			unset = i
			break
		}
		out[i] = *r
	}
	c.mu.Unlock()
	if unset >= 0 {
		return nil, fmt.Errorf("dse: checkpoint run left point %d unset without an error", unset)
	}
	if remainder {
		return nil, c.partial(engine.ErrShardRemainder)
	}
	return out, nil
}

// Results returns a copy of the per-point snapshot state: entry i is
// nil while point i has not completed, valid otherwise. Shard-aware
// callers (the serve layer) use it to report the owned slice a
// remainder run produced.
func (c *Checkpointer[T]) Results() []*T {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.results == nil {
		return make([]*T, c.Key.N)
	}
	out := make([]*T, len(c.results))
	copy(out, c.results)
	return out
}

// partial translates a dispatch error (whose Done bitmap indexes the
// missing-point subset) into a *engine.Partial indexed by point.
func (c *Checkpointer[T]) partial(cause error) error {
	var p *engine.Partial
	if errors.As(cause, &p) {
		cause = p.Cause
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	done := make([]bool, c.Key.N)
	completed := 0
	for i, r := range c.results {
		if r != nil {
			done[i] = true
			completed++
		}
	}
	return &engine.Partial{N: c.Key.N, Completed: completed, Done: done, Cause: cause}
}
