package dse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ShardCheckpointPath derives the shard-tagged snapshot path for shard
// k of n from the study's checkpoint path: "yield.json" becomes
// "yield.shard0of3.json". The content-hash key inside the file stays
// the study's (the shard is not part of the key — shards of one study
// are one key family), so the tag is what keeps concurrent shard
// processes from clobbering one snapshot file.
func ShardCheckpointPath(path string, k, n int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.shard%dof%d%s", strings.TrimSuffix(path, ext), k, n, ext)
}

// mergeFile is checkpointFile with opaque entries: merging is a
// header-checked index union, so the point type never needs decoding —
// raw entries carry the original bytes through bit-identically.
type mergeFile struct {
	Version int                `json:"version"`
	Hash    string             `json:"hash"`
	Key     CheckpointKey      `json:"key"`
	Results []*json.RawMessage `json:"results"`
}

// MergeReport summarizes a successful merge for CLI output.
type MergeReport struct {
	// Key is the shared study key of every input.
	Key CheckpointKey
	// N is the study size; Merged counts distinct completed points in
	// the output (== N, since a merge with gaps fails).
	N, Merged int
	// PerInput counts the completed points each input contributed
	// (overlapping agreements count for every file carrying them).
	PerInput []int
	// Overlap counts index collisions that agreed byte-for-byte.
	Overlap int
}

// MergeCheckpoints merges shard checkpoint snapshots into one complete
// study checkpoint at outPath, written atomically in Checkpointer's
// format — byte-identical to the snapshot an unsharded run of the same
// key would save, so `-resume` from the merged file replays nothing
// and renders the study exactly as one process would have.
//
// Every failure mode of a distributed run fails the merge closed:
//
//   - an input whose version, header hash, or length is inconsistent
//     with itself or with the first input (a stale or foreign shard,
//     or shards of two different studies);
//   - two inputs claiming the same index with different bytes (a
//     nondeterministic or corrupted shard — the determinism contract
//     says equal keys are equal bytes, so disagreement is never safe
//     to pick a winner from);
//   - indices no input completed (a shard never ran or was interrupted
//     — resume it, don't paper over the gap).
func MergeCheckpoints(outPath string, inputs []string) (MergeReport, error) {
	if len(inputs) == 0 {
		return MergeReport{}, fmt.Errorf("dse: merge needs at least one checkpoint")
	}
	var key CheckpointKey
	var hash string
	var merged []*json.RawMessage
	from := make([]string, 0) // from[i]: which input filled index i
	report := MergeReport{PerInput: make([]int, len(inputs))}
	for fi, path := range inputs {
		data, err := os.ReadFile(path)
		if err != nil {
			return MergeReport{}, fmt.Errorf("dse: reading shard checkpoint: %w", err)
		}
		var f mergeFile
		if err := json.Unmarshal(data, &f); err != nil {
			return MergeReport{}, fmt.Errorf("dse: corrupt shard checkpoint %s: %w", path, err)
		}
		if f.Version != checkpointVersion || f.Hash != f.Key.Hash() || len(f.Results) != f.Key.N {
			return MergeReport{}, fmt.Errorf("dse: %s: %w", path, ErrStaleCheckpoint)
		}
		if fi == 0 {
			key, hash = f.Key, f.Hash
			merged = make([]*json.RawMessage, f.Key.N)
			from = make([]string, f.Key.N)
		} else if f.Hash != hash {
			return MergeReport{}, fmt.Errorf("dse: %s belongs to a different study than %s (key %+v vs %+v): %w",
				path, inputs[0], f.Key, key, ErrStaleCheckpoint)
		}
		for i, r := range f.Results {
			if r == nil {
				continue
			}
			report.PerInput[fi]++
			if merged[i] == nil {
				merged[i] = r
				from[i] = path
				continue
			}
			if !bytes.Equal(*merged[i], *r) {
				return MergeReport{}, fmt.Errorf(
					"dse: point %d disagrees between %s and %s — shards of one key must be bit-identical, refusing to merge",
					i, from[i], path)
			}
			report.Overlap++
		}
	}
	missing := make([]int, 0)
	for i, r := range merged {
		if r == nil {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		show := missing
		if len(show) > 5 {
			show = show[:5]
		}
		return MergeReport{}, fmt.Errorf("dse: merge incomplete: %d of %d points missing (first %v) — run or resume the missing shard",
			len(missing), key.N, show)
	}

	out, err := json.Marshal(mergeFile{Version: checkpointVersion, Hash: hash, Key: key, Results: merged})
	if err != nil {
		return MergeReport{}, fmt.Errorf("dse: marshaling merged checkpoint: %w", err)
	}
	tmp := outPath + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return MergeReport{}, fmt.Errorf("dse: writing merged checkpoint: %w", err)
	}
	if err := os.Rename(tmp, outPath); err != nil {
		return MergeReport{}, fmt.Errorf("dse: committing merged checkpoint: %w", err)
	}
	report.Key, report.N, report.Merged = key, key.N, key.N
	return report, nil
}
