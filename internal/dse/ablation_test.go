package dse

import (
	"math"
	"strings"
	"testing"
)

func TestRingSensitivityTrend(t *testing.T) {
	rows := RingSensitivity([]float64{0.75, 1.0, 1.5})
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Feasible {
			t.Fatalf("scale %g infeasible", r.FWHMScale)
		}
	}
	// Wider filters leak more crosstalk, pushing the optimum to a
	// wider spacing and a higher total energy.
	if !(rows[2].OptSpacingNM > rows[0].OptSpacingNM) {
		t.Errorf("optimum spacing did not grow with linewidth: %v", rows)
	}
	if !(rows[2].OptTotalPJ > rows[0].OptTotalPJ) {
		t.Errorf("optimum energy did not grow with linewidth: %v", rows)
	}
	// Requested linewidth is realized.
	for _, r := range rows {
		want := rows[1].FilterFWHMNM * r.FWHMScale
		if math.Abs(r.FilterFWHMNM-want)/want > 0.02 {
			t.Errorf("scale %g: FWHM %g, want %g", r.FWHMScale, r.FilterFWHMNM, want)
		}
	}
}

func TestRingSensitivityUnrealizable(t *testing.T) {
	rows := RingSensitivity([]float64{-1})
	if rows[0].Feasible {
		t.Error("negative scale reported feasible")
	}
}

func TestAPDComparison(t *testing.T) {
	rows, err := APDComparison(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	pin, apd := rows[0], rows[1]
	if apd.ProbeMW >= pin.ProbeMW {
		t.Errorf("APD probe %g not below pin %g", apd.ProbeMW, pin.ProbeMW)
	}
	if apd.ProbeEnergyPJ >= pin.ProbeEnergyPJ {
		t.Error("APD probe energy not reduced")
	}
	// The improvement should be meaningful (several-fold).
	if pin.ProbeMW/apd.ProbeMW < 2 {
		t.Errorf("APD improvement only %.2fx", pin.ProbeMW/apd.ProbeMW)
	}
}

func TestParallelScaling(t *testing.T) {
	rows, err := ParallelScaling([]int{1, 4, 16}, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		tScale := rows[i].ThroughputResultsPerS / rows[0].ThroughputResultsPerS
		pScale := rows[i].TotalPowerMW / rows[0].TotalPowerMW
		want := float64(rows[i].Lanes)
		if math.Abs(tScale-want) > 1e-9 || math.Abs(pScale-want) > 1e-9 {
			t.Errorf("lane %d: throughput x%g power x%g, want x%g", rows[i].Lanes, tScale, pScale, want)
		}
		if math.Abs(rows[i].PowerDensityMWPerMM2-rows[0].PowerDensityMWPerMM2) > 1e-9 {
			t.Error("power density should be lane-invariant")
		}
	}
}

func TestAblationRenderers(t *testing.T) {
	var sb strings.Builder
	if err := RenderRingSensitivity(&sb, RingSensitivity([]float64{1.0, -1})); err != nil {
		t.Fatal(err)
	}
	rows, err := APDComparison(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderAPDComparison(&sb, rows, 1e-6); err != nil {
		t.Fatal(err)
	}
	ps, err := ParallelScaling([]int{1, 2}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderParallelScaling(&sb, ps, 128); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"linewidth", "infeasible", "APD", "Parallel array"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}
