package dse

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/optics"
)

// Fig5Case reproduces one of the worked examples of the paper's
// Fig. 5: a fixed coefficient pattern and data state, with the
// per-channel end-to-end transmissions and the received power.
type Fig5Case struct {
	Label string
	// Z is the coefficient pattern (z0, z1, z2); Weight the number
	// of '1' data bits.
	Z      []int
	Weight int
	// Totals[i] is the total transmission of probe i (paper quotes
	// 0.091 / 0.004 / 0.0002 for case (a)).
	Totals []float64
	// ReceivedMW is the photodetector power at 1 mW probes.
	ReceivedMW float64
	// FilterResonanceNM is the shifted filter position.
	FilterResonanceNM float64
}

// Fig5A returns the Fig. 5(a) case: z=(0,1,0), x1=x2=1.
func Fig5A() Fig5Case { return fig5Case("Fig 5(a): z=(0,1,0), x1=x2=1", []int{0, 1, 0}, 2) }

// Fig5B returns the Fig. 5(b) case: z=(1,1,0), x1=x2=0.
func Fig5B() Fig5Case { return fig5Case("Fig 5(b): z=(1,1,0), x1=x2=0", []int{1, 1, 0}, 0) }

func fig5Case(label string, z []int, weight int) Fig5Case {
	c := core.MustCircuit(core.PaperParams())
	return Fig5Case{
		Label:             label,
		Z:                 z,
		Weight:            weight,
		Totals:            c.ChannelTotals(weight, z),
		ReceivedMW:        c.ReceivedPowerMW(weight, z),
		FilterResonanceNM: c.FilterResonanceNM(weight),
	}
}

// RenderFig5Case writes the case's totals plus an ASCII spectrum of
// the modulator rings and the shifted filter.
func RenderFig5Case(w io.Writer, f Fig5Case) error {
	if _, err := fmt.Fprintln(w, f.Label); err != nil {
		return err
	}
	c := core.MustCircuit(core.PaperParams())
	t := NewTable("channel", "λ (nm)", "total transmission", "paper")
	paper := map[string][]string{
		"Fig 5(a): z=(0,1,0), x1=x2=1": {"0.0002", "0.004", "0.091"},
		"Fig 5(b): z=(1,1,0), x1=x2=0": {"0.476", "-", "-"},
	}
	for i, tot := range f.Totals {
		ref := "-"
		if p, ok := paper[f.Label]; ok && i < len(p) {
			ref = p[i]
		}
		t.AddRowf(fmt.Sprintf("λ%d", i), c.P.Lambda(i), tot, ref)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "received: %.4f mW; filter at %.3f nm\n\n", f.ReceivedMW, f.FilterResonanceNM); err != nil {
		return err
	}
	// Spectra: modulators at their modulated positions ('m'), filter
	// at its shifted position ('F').
	series := map[rune][]optics.SpectrumPoint{}
	lo, hi := c.P.Lambda(0)-0.8, c.P.LambdaRefNM()+0.4
	modSpectrum := func(lambda float64) float64 {
		tr := 1.0
		for wIdx, ring := range c.Modulators {
			res := ring.ResonanceNM
			if f.Z[wIdx] != 0 {
				res -= c.P.DeltaLambdaNM
			}
			tr *= ring.Through(lambda, res)
		}
		return tr
	}
	filterRes := f.FilterResonanceNM
	dropSpectrum := func(lambda float64) float64 {
		return c.Filter.Drop(lambda, filterRes)
	}
	series['m'] = optics.SampleSpectrum(modSpectrum, lo, hi, 100)
	series['F'] = optics.SampleSpectrum(dropSpectrum, lo, hi, 100)
	if err := optics.RenderSpectrumASCII(w, series, 100, 12); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "  m = modulator through spectrum, F = shifted filter drop spectrum")
	return err
}

// Fig5CRow is one bar of Fig. 5(c): a data state, a coefficient
// combination, the received power and the transmitted bit.
type Fig5CRow struct {
	Weight     int
	Z          []int
	ReceivedMW float64
	Bit        int
}

// Fig5CResult is the full enumeration plus the de-randomizer bands.
type Fig5CResult struct {
	Rows                             []Fig5CRow
	MinZero, MaxZero, MinOne, MaxOne float64
}

// Fig5C enumerates every (x-state, z-combination) of the paper
// design, as plotted in Fig. 5(c). The enumeration is a weight ×
// pattern grid evaluated over the worker pool; Grid returns rows in
// row-major order, so the table reads exactly as the serial loops did.
func Fig5C() Fig5CResult {
	c := core.MustCircuit(core.PaperParams())
	n := c.P.Order
	var res Fig5CResult
	res.Rows = Grid(n+1, 1<<(n+1), func(weight, pattern int) Fig5CRow {
		z := make([]int, n+1)
		for b := range z {
			z[b] = (pattern >> b) & 1
		}
		return Fig5CRow{
			Weight:     weight,
			Z:          z,
			ReceivedMW: c.ReceivedPowerMW(weight, z),
			Bit:        z[c.SelectedChannel(weight)],
		}
	})
	res.MinZero, res.MaxZero, res.MinOne, res.MaxOne = c.PowerBands()
	return res
}

// RenderFig5C writes the enumeration table and the band summary.
func RenderFig5C(w io.Writer, r Fig5CResult) error {
	t := NewTable("x-state (weight)", "z2 z1 z0", "received (mW)", "bit")
	for _, row := range r.Rows {
		t.AddRowf(row.Weight, fmt.Sprintf("%d %d %d", row.Z[2], row.Z[1], row.Z[0]), row.ReceivedMW, row.Bit)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"'0' band: %.4f-%.4f mW (paper 0.092-0.099)\n'1' band: %.4f-%.4f mW (paper 0.477-0.482)\n",
		r.MinZero, r.MaxZero, r.MinOne, r.MaxOne)
	return err
}
