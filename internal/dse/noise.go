package dse

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/stochastic"
	"repro/internal/transient"
)

// This file is the Monte-Carlo noise study behind `oscbench -fig
// noise`: the paper's central accuracy–power trade-off (Eq. 8–9 BER
// feeding the §V.B accuracy loss) swept over stream length, probe
// power and noise sigma. Every trial runs through the word-parallel
// noisy engine (transient.Simulator.EvaluateBatch), which fans
// per-trial seeds over the internal/parallel pool, so the study is
// reproducible on any core count.

// NoiseStudySpec parameterizes NoiseStudy.
type NoiseStudySpec struct {
	// X is the input probability evaluated in every trial.
	X float64
	// Lengths are the stochastic stream lengths to sweep.
	Lengths []int
	// ProbeMW are the probe laser powers to sweep (mW, > 0).
	ProbeMW []float64
	// SigmaScale multiplies the detector-derived noise sigma; an
	// empty list means {1} (the paper's detector as-is).
	SigmaScale []float64
	// Trials is the number of Monte-Carlo repetitions per point
	// (clamped to >= 2).
	Trials int
	// BERBits is the slot count for the batched worst-case BER
	// measurement; 0 selects 200 000.
	BERBits int
	// Seed drives every trial's randomness via stochastic.DeriveSeed.
	Seed uint64
}

// effectiveTrials is the Monte-Carlo repetition count NoiseStudy
// actually runs (and RenderNoiseStudy reports) for this spec.
func (s NoiseStudySpec) effectiveTrials() int {
	if s.Trials < 2 {
		return 2
	}
	return s.Trials
}

// DefaultNoiseStudySpec is the oscbench configuration: the paper's
// order-2 design at its 1 mW probes and at probes sized for a 1e-2
// worst-case BER, at the nominal and a 2x noise floor.
func DefaultNoiseStudySpec() (NoiseStudySpec, error) {
	c, err := core.NewCircuit(core.PaperParams())
	if err != nil {
		return NoiseStudySpec{}, err
	}
	return NoiseStudySpec{
		X:          0.5,
		Lengths:    []int{256, 1024, 4096},
		ProbeMW:    []float64{core.PaperParams().ProbePowerMW, c.MinProbePowerMW(1e-2)},
		SigmaScale: []float64{1, 2},
		Trials:     32,
		Seed:       17,
	}, nil
}

// NoiseRow is one (probe, sigma, length) point of the study.
type NoiseRow struct {
	ProbeMW    float64
	SigmaScale float64
	// SigmaMW is the resulting received-power noise deviation.
	SigmaMW   float64
	StreamLen int
	// RMSE is the Monte-Carlo root-mean-square error of the noisy
	// de-randomized result against the analytic Bernstein value.
	RMSE float64
	// MeasuredBER and AnalyticBER are the batched worst-case
	// measurement and the Eq. (9) prediction for this link.
	MeasuredBER, AnalyticBER float64
}

// NoiseStudy runs the Monte-Carlo accuracy/BER sweep on the paper's
// order-2 reference polynomial. The (probe, sigma) combinations fan
// out over the worker pool (SweepSeededErr, one derived seed per
// combination): each rebuilds its circuit, measures the worst-case BER
// in one batched run, then estimates the end-to-end RMSE at every
// stream length from Trials independent noisy evaluations — themselves
// fanned over the same pool. Results are row-ordered by (probe, sigma,
// length) and identical at any GOMAXPROCS.
func NoiseStudy(spec NoiseStudySpec) ([]NoiseRow, error) {
	if len(spec.Lengths) == 0 {
		return nil, fmt.Errorf("dse: noise study needs stream lengths")
	}
	for _, l := range spec.Lengths {
		if l < 1 {
			return nil, fmt.Errorf("dse: stream length %d, need >= 1", l)
		}
	}
	if len(spec.ProbeMW) == 0 {
		return nil, fmt.Errorf("dse: noise study needs probe powers")
	}
	scales := spec.SigmaScale
	if len(scales) == 0 {
		scales = []float64{1}
	}
	trials := spec.effectiveTrials()
	berBits := spec.BERBits
	if berBits <= 0 {
		berBits = 200_000
	}

	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})
	want := poly.Eval(spec.X)
	xs := make([]float64, trials)
	for i := range xs {
		xs[i] = spec.X
	}

	for _, probe := range spec.ProbeMW {
		if probe <= 0 {
			return nil, fmt.Errorf("dse: probe power %g not positive", probe)
		}
	}
	for _, scale := range scales {
		if scale <= 0 {
			return nil, fmt.Errorf("dse: sigma scale %g not positive", scale)
		}
	}

	// One sweep point per (probe, scale) combination, fanned over the
	// worker pool with a per-combo derived seed; each point returns its
	// stream-length rows, flattened back in combo order below.
	combos := len(spec.ProbeMW) * len(scales)
	groups, err := SweepSeededErr(combos, spec.Seed, func(combo int, comboSeed uint64) ([]NoiseRow, error) {
		probe := spec.ProbeMW[combo/len(scales)]
		scale := scales[combo%len(scales)]
		p := core.PaperParams()
		p.ProbePowerMW = probe
		c, err := core.NewCircuit(p)
		if err != nil {
			return nil, err
		}
		u, err := core.NewUnit(c, poly, comboSeed)
		if err != nil {
			return nil, err
		}
		sim := transient.NewSimulator(u, comboSeed+1)
		sim.SigmaMW *= scale
		measured, err := sim.MeasureWorstCaseBER(berBits)
		if err != nil {
			return nil, err
		}
		analytic := sim.AnalyticWorstCaseBER()
		rows := make([]NoiseRow, 0, len(spec.Lengths))
		for _, l := range spec.Lengths {
			vals, err := sim.EvaluateBatch(xs, l)
			if err != nil {
				return nil, err
			}
			sum := 0.0
			for _, v := range vals {
				d := v - want
				sum += d * d
			}
			rows = append(rows, NoiseRow{
				ProbeMW:     probe,
				SigmaScale:  scale,
				SigmaMW:     sim.SigmaMW,
				StreamLen:   l,
				RMSE:        math.Sqrt(sum / float64(trials)),
				MeasuredBER: measured,
				AnalyticBER: analytic,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]NoiseRow, 0, combos*len(spec.Lengths))
	for _, rows := range groups {
		out = append(out, rows...)
	}
	return out, nil
}

// RenderNoiseStudy writes the study as a table.
func RenderNoiseStudy(w io.Writer, rows []NoiseRow, spec NoiseStudySpec) error {
	if _, err := fmt.Fprintf(w, "Monte-Carlo noise study at x = %g (%d trials/point, batched noisy engine)\n",
		spec.X, spec.effectiveTrials()); err != nil {
		return err
	}
	t := NewTable("probe (mW)", "σ (mW)", "stream length", "RMSE", "measured BER", "analytic BER")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.4f", r.ProbeMW),
			fmt.Sprintf("%.4f", r.SigmaMW),
			fmt.Sprint(r.StreamLen),
			fmt.Sprintf("%.4f", r.RMSE),
			fmt.Sprintf("%.3e", r.MeasuredBER),
			fmt.Sprintf("%.3e", r.AnalyticBER),
		)
	}
	return t.Render(w)
}
