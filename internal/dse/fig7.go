package dse

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Fig7ASeries is one polynomial order's energy-vs-spacing curve from
// the paper's Fig. 7(a), with the located optimum.
type Fig7ASeries struct {
	Order   int
	Points  []core.EnergyBreakdown
	Optimum core.EnergyBreakdown
}

// Fig7A sweeps the wavelength spacing over [0.1, 0.3] nm for each
// order (the paper plots n = 2, 4, 6). Orders fan out over the worker
// pool, and each order's spacing sweep is itself parallel
// (core.EnergyModel.Sweep): every point re-sizes the design with
// MRR-first, so the grid is a pile of independent solves.
func Fig7A(orders []int, points int) ([]Fig7ASeries, error) {
	return SweepErr(len(orders), func(i int) (Fig7ASeries, error) {
		n := orders[i]
		m := core.NewEnergyModel(n)
		s := Fig7ASeries{Order: n, Points: m.Sweep(0.1, 0.3, points)}
		opt, err := m.OptimalSpacing(0.1, 0.3)
		if err != nil {
			return Fig7ASeries{}, fmt.Errorf("dse: Fig7A order %d: %w", n, err)
		}
		s.Optimum = opt
		return s, nil
	})
}

// RenderFig7A writes the per-order sweep tables and the optimum line.
func RenderFig7A(w io.Writer, series []Fig7ASeries) error {
	if _, err := fmt.Fprintln(w, "Fig 7(a): laser energy per computed bit vs wavelength spacing (26 ps pump pulses, 1 Gb/s, η=20%)"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "\norder n=%d:\n", s.Order); err != nil {
			return err
		}
		t := NewTable("spacing (nm)", "pump (pJ)", "probe (pJ)", "total (pJ)")
		for _, p := range s.Points {
			t.AddRow(
				fmt.Sprintf("%.3f", p.WLSpacingNM),
				fmt.Sprintf("%.2f", p.PumpPJ),
				fmt.Sprintf("%.2f", p.ProbePJ),
				fmt.Sprintf("%.2f", p.TotalPJ()),
			)
		}
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "optimum: %.3f nm -> %.2f pJ/bit\n", s.Optimum.WLSpacingNM, s.Optimum.TotalPJ()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "\npaper: optimal spacing ≈ 0.165 nm, independent of the order; n=2 total ≈ 20.1 pJ/bit")
	return err
}

// Fig7BRow is one order of the paper's Fig. 7(b): total energy at
// 1 nm spacing versus the optimal spacing.
type Fig7BRow struct {
	Order     int
	Fixed1nm  core.EnergyBreakdown
	Optimal   core.EnergyBreakdown
	SavingPct float64
}

// Fig7B evaluates the order sweep {2, 4, 8, 12, 16} with the wide-FSR
// ring preset (the 1 nm × order-16 comb spans 16.1 nm).
func Fig7B(orders []int) ([]Fig7BRow, error) {
	return SweepErr(len(orders), func(i int) (Fig7BRow, error) {
		n := orders[i]
		m := core.NewWideCombEnergyModel(n)
		fixed, err := m.Breakdown(1.0)
		if err != nil {
			return Fig7BRow{}, fmt.Errorf("dse: Fig7B order %d at 1 nm: %w", n, err)
		}
		opt, err := m.OptimalSpacing(0.1, 0.3)
		if err != nil {
			return Fig7BRow{}, fmt.Errorf("dse: Fig7B order %d optimum: %w", n, err)
		}
		return Fig7BRow{
			Order:     n,
			Fixed1nm:  fixed,
			Optimal:   opt,
			SavingPct: 100 * (1 - opt.TotalPJ()/fixed.TotalPJ()),
		}, nil
	})
}

// RenderFig7B writes the order table.
func RenderFig7B(w io.Writer, rows []Fig7BRow) error {
	if _, err := fmt.Fprintln(w, "Fig 7(b): total laser energy per bit vs polynomial order"); err != nil {
		return err
	}
	t := NewTable("order", "@1 nm (pJ)", "optimal spacing (nm)", "@optimal (pJ)", "saving")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprint(r.Order),
			fmt.Sprintf("%.1f", r.Fixed1nm.TotalPJ()),
			fmt.Sprintf("%.3f", r.Optimal.WLSpacingNM),
			fmt.Sprintf("%.1f", r.Optimal.TotalPJ()),
			fmt.Sprintf("%.1f%%", r.SavingPct),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "paper: ≈76.6% saving at the optimal spacing; n=2 @1nm ≈ 77 pJ, n=16 @1nm ≈ 590 pJ")
	return err
}

// SummaryAnchors are the in-text quantitative claims of §V.A/§V.C.
type SummaryAnchors struct {
	PumpPowerMW      float64 // paper: 591.8
	ERdB             float64 // paper: 13.22
	HeadlinePJPerBit float64 // paper: 20.1
	OptimalSpacingNM float64 // paper: 0.165
	SavingPct        float64 // paper: 76.6
	SpeedupVs100MHz  float64 // paper: 10
}

// Summary computes the anchor values from the calibrated models.
func Summary() (SummaryAnchors, error) {
	p := core.PaperParams()
	m := core.NewEnergyModel(2)
	opt, err := m.OptimalSpacing(0.1, 0.3)
	if err != nil {
		return SummaryAnchors{}, err
	}
	saving, _, _, err := m.EnergySavingVsFixed(1.0, 0.1, 0.3)
	if err != nil {
		return SummaryAnchors{}, err
	}
	return SummaryAnchors{
		PumpPowerMW:      p.PumpPowerMW,
		ERdB:             p.MZI.ERdB,
		HeadlinePJPerBit: opt.TotalPJ(),
		OptimalSpacingNM: opt.WLSpacingNM,
		SavingPct:        saving * 100,
		SpeedupVs100MHz:  p.SpeedupVsElectronic(100),
	}, nil
}

// RenderSummary writes the paper-vs-measured anchor table.
func RenderSummary(w io.Writer, s SummaryAnchors) error {
	if _, err := fmt.Fprintln(w, "In-text anchors (paper vs this reproduction)"); err != nil {
		return err
	}
	t := NewTable("quantity", "paper", "measured")
	t.AddRow("min pump power (§V.A)", "591.8 mW", fmt.Sprintf("%.1f mW", s.PumpPowerMW))
	t.AddRow("MZI extinction ratio (§V.A)", "13.22 dB", fmt.Sprintf("%.2f dB", s.ERdB))
	t.AddRow("energy/bit @1 GHz, n=2 (abstract)", "20.1 pJ", fmt.Sprintf("%.1f pJ", s.HeadlinePJPerBit))
	t.AddRow("optimal WLspacing (§V.C)", "0.165 nm", fmt.Sprintf("%.3f nm", s.OptimalSpacingNM))
	t.AddRow("saving vs 1 nm (§V.C)", "76.6%", fmt.Sprintf("%.1f%%", s.SavingPct))
	t.AddRow("speedup vs 100 MHz ReSC (§V.C)", "10x", fmt.Sprintf("%.0fx", s.SpeedupVs100MHz))
	return t.Render(w)
}
