package dse

import (
	"fmt"
	"io"

	img "repro/internal/image"
)

// EdgeStudyRow is one stream length of the image-quality study: PSNR
// (and MAE for the edge detector) of the two canonical error-tolerant
// SC image workloads against their exact references.
type EdgeStudyRow struct {
	StreamLen int
	EdgePSNR  float64
	EdgeMAE   float64
	GammaPSNR float64
}

// EdgeStudy runs Robert's-cross edge detection (packed tiled engine,
// 64×64 checkerboard) and gamma correction (batched ReSC LUT, gamma
// 0.45 on a full-range gradient) at each stream length and reports the
// quality-vs-latency trade-off that frames the paper's application
// section: PSNR grows ~3 dB per stream-length doubling until
// quantization saturates.
// Stream lengths fan out over the worker pool (SweepErr); each
// length's image engines keep their own per-pixel derived seeds, so
// the table is identical at any GOMAXPROCS.
func EdgeStudy(lengths []int, seed uint64) ([]EdgeStudyRow, error) {
	edgeSrc := img.Checkerboard(64, 64, 8, 30, 220)
	edgeExact := img.RobertsCrossExact(edgeSrc)
	gammaSrc := img.Gradient(128, 4)
	gammaExact := img.GammaExact(gammaSrc, 0.45)
	return SweepErr(len(lengths), func(i int) (EdgeStudyRow, error) {
		l := lengths[i]
		edge, err := img.RobertsCrossSC(edgeSrc, l, seed)
		if err != nil {
			return EdgeStudyRow{}, err
		}
		gamma, err := img.GammaReSC(gammaSrc, 0.45, 6, l, seed)
		if err != nil {
			return EdgeStudyRow{}, err
		}
		return EdgeStudyRow{
			StreamLen: l,
			EdgePSNR:  img.PSNR(edgeExact, edge),
			EdgeMAE:   img.MeanAbsoluteError(edgeExact, edge),
			GammaPSNR: img.PSNR(gammaExact, gamma),
		}, nil
	})
}

// RenderEdgeStudy writes the study table.
func RenderEdgeStudy(w io.Writer, rows []EdgeStudyRow) error {
	if _, err := fmt.Fprintln(w, "Image quality vs stream length (packed tiled engine, 64x64 edge / 128x4 gamma)"); err != nil {
		return err
	}
	t := NewTable("stream length", "edge PSNR (dB)", "edge MAE", "gamma PSNR (dB)")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprint(r.StreamLen),
			fmt.Sprintf("%.2f", r.EdgePSNR),
			fmt.Sprintf("%.2f", r.EdgeMAE),
			fmt.Sprintf("%.2f", r.GammaPSNR),
		)
	}
	return t.Render(w)
}
