package dse

import (
	"math"
	"strings"
	"testing"
)

func TestFig5ACase(t *testing.T) {
	f := Fig5A()
	if len(f.Totals) != 3 {
		t.Fatalf("%d channels", len(f.Totals))
	}
	// Paper: totals (0.0002, 0.004, 0.091), received 0.0952 mW.
	if f.Totals[2] < 0.08 || f.Totals[2] > 0.11 {
		t.Errorf("λ2 = %g", f.Totals[2])
	}
	if f.ReceivedMW < 0.085 || f.ReceivedMW > 0.115 {
		t.Errorf("received = %g", f.ReceivedMW)
	}
	// Filter parked at λ2 = 1550 nm.
	if math.Abs(f.FilterResonanceNM-1550) > 0.01 {
		t.Errorf("filter at %g", f.FilterResonanceNM)
	}
}

func TestFig5BCase(t *testing.T) {
	f := Fig5B()
	if f.Totals[0] < 0.42 || f.Totals[0] > 0.56 {
		t.Errorf("λ0 = %g, paper 0.476", f.Totals[0])
	}
	if math.Abs(f.FilterResonanceNM-1548) > 0.01 {
		t.Errorf("filter at %g, want λ0=1548", f.FilterResonanceNM)
	}
}

func TestFig5CBandsAndRows(t *testing.T) {
	r := Fig5C()
	// 3 weights × 8 patterns.
	if len(r.Rows) != 24 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	if r.MaxZero >= r.MinOne {
		t.Errorf("bands overlap: %g vs %g", r.MaxZero, r.MinOne)
	}
	// Every row is inside its band.
	for _, row := range r.Rows {
		if row.Bit == 0 {
			if row.ReceivedMW < r.MinZero-1e-12 || row.ReceivedMW > r.MaxZero+1e-12 {
				t.Errorf("'0' row %v outside band", row)
			}
		} else if row.ReceivedMW < r.MinOne-1e-12 || row.ReceivedMW > r.MaxOne+1e-12 {
			t.Errorf("'1' row %v outside band", row)
		}
	}
}

func TestFig6AGridTrends(t *testing.T) {
	pts := Fig6A(5, 5)
	if len(pts) != 25 {
		t.Fatalf("%d points", len(pts))
	}
	// All feasible at 0.6 W pump, and probe power grows with IL at
	// fixed ER.
	byER := map[float64][]Fig6APoint{}
	for _, p := range pts {
		if !p.Feasible {
			t.Fatalf("infeasible point IL=%g ER=%g", p.ILdB, p.ERdB)
		}
		byER[p.ERdB] = append(byER[p.ERdB], p)
	}
	for er, col := range byER {
		for i := 1; i < len(col); i++ {
			if col[i].ProbeMW <= col[i-1].ProbeMW {
				t.Errorf("ER=%g: probe not increasing with IL (%g -> %g)", er, col[i-1].ProbeMW, col[i].ProbeMW)
			}
		}
	}
	// And falls with ER at fixed IL.
	byIL := map[float64][]Fig6APoint{}
	for _, p := range pts {
		byIL[p.ILdB] = append(byIL[p.ILdB], p)
	}
	for il, row := range byIL {
		for i := 1; i < len(row); i++ {
			if row[i].ProbeMW >= row[i-1].ProbeMW {
				t.Errorf("IL=%g: probe not decreasing with ER", il)
			}
		}
	}
}

func TestFig6BAnchorsAndHalving(t *testing.T) {
	pts, err := Fig6B([]float64{1e-2, 1e-4, 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if math.Abs(pts[2].ProbeMW-0.26) > 0.005 {
		t.Errorf("1e-6 probe = %g, want 0.26", pts[2].ProbeMW)
	}
	ratio := pts[0].ProbeMW / pts[2].ProbeMW
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("1e-2/1e-6 = %g, paper ~0.5", ratio)
	}
}

func TestFig6CDevices(t *testing.T) {
	pts := Fig6C()
	if len(pts) != 4 {
		t.Fatalf("%d devices", len(pts))
	}
	for _, p := range pts {
		if p.Err != nil {
			t.Errorf("%s: %v", p.Device.Name, p.Err)
			continue
		}
		if p.ProbeMW <= 0 || p.ProbeMW > 1 {
			t.Errorf("%s: probe %g mW outside the Fig 6(c) range", p.Device.Name, p.ProbeMW)
		}
	}
}

func TestFig7ASeries(t *testing.T) {
	series, err := Fig7A([]int{2, 4}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) < 5 {
			t.Errorf("order %d: only %d feasible points", s.Order, len(s.Points))
		}
		if s.Optimum.TotalPJ() <= 0 {
			t.Errorf("order %d: optimum %v", s.Order, s.Optimum)
		}
		// The optimum beats the sweep endpoints.
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if s.Optimum.TotalPJ() > first.TotalPJ() || s.Optimum.TotalPJ() > last.TotalPJ() {
			t.Errorf("order %d: optimum not below endpoints", s.Order)
		}
	}
}

func TestFig7BRows(t *testing.T) {
	rows, err := Fig7B([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.SavingPct < 55 || r.SavingPct > 90 {
			t.Errorf("order %d saving %.1f%%, paper 76.6%%", r.Order, r.SavingPct)
		}
		if i > 0 && rows[i].Fixed1nm.TotalPJ() <= rows[i-1].Fixed1nm.TotalPJ() {
			t.Error("fixed-spacing energy not increasing with order")
		}
	}
}

func TestSummaryAnchors(t *testing.T) {
	s, err := Summary()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.PumpPowerMW-591.8) > 0.5 {
		t.Errorf("pump %g", s.PumpPowerMW)
	}
	if math.Abs(s.ERdB-13.22) > 0.05 {
		t.Errorf("ER %g", s.ERdB)
	}
	if s.HeadlinePJPerBit < 15 || s.HeadlinePJPerBit > 26 {
		t.Errorf("headline %g pJ", s.HeadlinePJPerBit)
	}
	if s.SpeedupVs100MHz != 10 {
		t.Errorf("speedup %g", s.SpeedupVs100MHz)
	}
}

func TestRenderers(t *testing.T) {
	var sb strings.Builder
	if err := RenderFig5Case(&sb, Fig5A()); err != nil {
		t.Fatal(err)
	}
	if err := RenderFig5C(&sb, Fig5C()); err != nil {
		t.Fatal(err)
	}
	if err := RenderFig6A(&sb, Fig6A(3, 3)); err != nil {
		t.Fatal(err)
	}
	pts, _ := Fig6B([]float64{1e-2, 1e-6})
	if err := RenderFig6B(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if err := RenderFig6C(&sb, Fig6C()); err != nil {
		t.Fatal(err)
	}
	series, _ := Fig7A([]int{2}, 5)
	if err := RenderFig7A(&sb, series); err != nil {
		t.Fatal(err)
	}
	rows, _ := Fig7B([]int{2})
	if err := RenderFig7B(&sb, rows); err != nil {
		t.Fatal(err)
	}
	s, _ := Summary()
	if err := RenderSummary(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig 6(a)", "Fig 6(b)", "Fig 6(c)", "Fig 7(a)", "Fig 7(b)", "591.8", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("a", "bb")
	tab.AddRow("xxx") // short row padded
	tab.AddRowf(1.23456789, "y")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "xxx") || !strings.Contains(out, "1.235") {
		t.Errorf("table output:\n%s", out)
	}
}

func TestStreamLengthSweep(t *testing.T) {
	rows, err := StreamLengthSweep([]int{64, 4096}, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].RMSEElectronic >= rows[0].RMSEElectronic {
		t.Errorf("electronic RMSE did not fall with length: %g -> %g",
			rows[0].RMSEElectronic, rows[1].RMSEElectronic)
	}
	if rows[1].RMSEOptical >= rows[0].RMSEOptical {
		t.Errorf("optical RMSE did not fall with length: %g -> %g",
			rows[0].RMSEOptical, rows[1].RMSEOptical)
	}
	var sb strings.Builder
	if err := RenderStreamLengthSweep(&sb, rows, 9); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "4096") {
		t.Errorf("render missing rows:\n%s", sb.String())
	}
	if _, err := StreamLengthSweep([]int{0}, 9, 7); err == nil {
		t.Error("zero stream length accepted")
	}
}
