package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/figures"
	img "repro/internal/image"
)

// post runs one POST through the handler and returns the recorder.
func post(s *Server, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func decodeBody[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding response %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestFigureListSorted(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	rec := get(s, "/v1/figures")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/figures = %d, want 200", rec.Code)
	}
	body := decodeBody[figureListBody](t, rec)
	want := figures.SortedKeys()
	if len(body.Figures) != len(want) {
		t.Fatalf("listing has %d figures, want %d", len(body.Figures), len(want))
	}
	for i, f := range body.Figures {
		if f.Key != want[i] {
			t.Errorf("figure[%d].key = %q, want %q (sorted)", i, f.Key, want[i])
		}
		if f.Title == "" {
			t.Errorf("figure %q has empty title", f.Key)
		}
	}
}

func TestFigureRenderMatchesDirect(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	rec := post(s, "/v1/figures/5a", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/figures/5a = %d: %s", rec.Code, rec.Body.String())
	}
	body := decodeBody[figureBody](t, rec)

	fig, ok := figures.Get("5a")
	if !ok {
		t.Fatal("figure 5a not registered")
	}
	cfg := figures.Defaults()
	cfg.Engine = engine.Serial
	var direct bytes.Buffer
	if err := fig.Render(context.Background(), &direct, cfg); err != nil {
		t.Fatalf("direct render: %v", err)
	}
	if body.Output != direct.String() {
		t.Errorf("served output differs from direct render:\nserved:\n%s\ndirect:\n%s", body.Output, direct.String())
	}
}

func TestUnknownFigure404ListsSortedKeys(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	rec := post(s, "/v1/figures/nope", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	body := decodeBody[ErrorBody](t, rec)
	if body.Kind != "not_found" {
		t.Errorf("kind = %q, want not_found", body.Kind)
	}
	want := strings.Join(figures.SortedKeys(), ", ")
	if !strings.Contains(body.Error, want) {
		t.Errorf("error %q does not list sorted keys %q", body.Error, want)
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	cases := []struct {
		name, path, body string
	}{
		{"unknown field", "/v1/ber", `{"bogus": 1}`},
		{"trailing data", "/v1/ber", `{} {}`},
		{"both probe and target", "/v1/ber", `{"probe_mw":[1],"target_ber":[0.01]}`},
		{"bits too big", "/v1/ber", `{"bits": 99000000}`},
		{"negative timeout", "/v1/ber", `{"timeout_ms": -5}`},
		{"zero samples", "/v1/yield", `{"samples": -1}`},
		{"bad target", "/v1/yield", `{"target_ber": 0.9}`},
		{"figure over caps", "/v1/figures/5a", `{"samples": 200000}`},
		{"figure grid too small", "/v1/figures/5a", `{"grid": 1}`},
		{"image no source", "/v1/image/edge", `{"source": {}}`},
		{"image bad synth", "/v1/image/edge", `{"source": {"synth": "plaid"}}`},
		{"image bad format", "/v1/image/edge", `{"source": {"synth": "gradient"}, "format": "bmp"}`},
		{"image bad base64", "/v1/image/edge", `{"source": {"pgm_base64": "!!!"}}`},
	}
	for _, tc := range cases {
		rec := post(s, tc.path, tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, rec.Code, rec.Body.String())
			continue
		}
		if body := decodeBody[ErrorBody](t, rec); body.Kind != "bad_request" {
			t.Errorf("%s: kind = %q, want bad_request", tc.name, body.Kind)
		}
	}
}

const smallBER = `{"probe_mw": [0.4, 0.6, 0.8], "bits": 2000, "seed": 7}`

func TestBERWaterfall(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	rec := post(s, "/v1/ber", smallBER)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/ber = %d: %s", rec.Code, rec.Body.String())
	}
	body := decodeBody[berBody](t, rec)
	if len(body.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(body.Points))
	}
	for i, p := range body.Points {
		if p.ProbeMW <= 0 || p.AnalyticBER < 0 || p.MeasuredBER < 0 {
			t.Errorf("point %d out of range: %+v", i, p)
		}
	}
	// Higher probe power must not worsen analytic BER.
	for i := 1; i < len(body.Points); i++ {
		if body.Points[i].AnalyticBER > body.Points[i-1].AnalyticBER {
			t.Errorf("analytic BER rose with power: %+v", body.Points)
		}
	}
}

// TestChaosByteIdentity is the tentpole chaos gate: a server dispatching
// on a fault-injecting engine (drops, delays) must answer every request
// with bytes identical to a server on engine.Serial.
func TestChaosByteIdentity(t *testing.T) {
	chaos := engine.NewChaos("serve-chaos", engine.WordParallel, 42, engine.ChaosSpec{
		DropProb:  0.4,
		DelayProb: 0.3,
		Delay:     100 * time.Microsecond,
	})
	serial := New(Config{Engine: engine.Serial})
	chaotic := New(Config{Engine: chaos})

	requests := []struct{ path, body string }{
		{"/v1/figures/5a", ""},
		{"/v1/figures/sweep", ""},
		{"/v1/ber", smallBER},
		{"/v1/yield", `{"sigmas_nm": [0.05], "samples": 8}`},
		{"/v1/image/edge", `{"source": {"synth": "checkerboard", "width": 24, "height": 16}, "stream_len": 256}`},
		{"/v1/image/gamma", `{"source": {"synth": "gradient", "width": 24, "height": 16}, "stream_len": 256}`},
	}
	for _, req := range requests {
		a := post(serial, req.path, req.body)
		b := post(chaotic, req.path, req.body)
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("%s: serial=%d chaos=%d (%s / %s)", req.path, a.Code, b.Code, a.Body.String(), b.Body.String())
		}
		if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
			t.Errorf("%s: chaos body differs from serial:\nserial: %s\nchaos:  %s", req.path, a.Body.String(), b.Body.String())
		}
	}
}

// flipEngine dispatches the first sweep on a panic-injecting chaos
// engine and every later sweep on engine.Serial — the shape of a
// one-off fault in production.
type flipEngine struct {
	mu    sync.Mutex
	used  bool
	first engine.Engine
	rest  engine.Engine
}

func (f *flipEngine) pick() engine.Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.used {
		f.used = true
		return f.first
	}
	return f.rest
}

func (f *flipEngine) Name() string      { return "flip" }
func (f *flipEngine) Workers(n int) int { return 1 }
func (f *flipEngine) For(n int, fn func(i int)) {
	f.pick().For(n, fn)
}
func (f *flipEngine) ForWorker(n, workers int, fn func(worker, i int)) {
	f.pick().ForWorker(n, workers, fn)
}

// TestPanicIsolation: a panicking work item turns into a typed 500
// naming the faulting index, and the server keeps serving afterwards.
func TestPanicIsolation(t *testing.T) {
	const panicAt = 1
	flip := &flipEngine{
		first: engine.NewChaos("boom", engine.Serial, 1, engine.ChaosSpec{Panic: true, PanicAt: panicAt}),
		rest:  engine.Serial,
	}
	s := New(Config{Engine: flip})

	rec := post(s, "/v1/ber", smallBER)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking sweep = %d, want 500: %s", rec.Code, rec.Body.String())
	}
	body := decodeBody[ErrorBody](t, rec)
	if body.Kind != "panic" {
		t.Errorf("kind = %q, want panic", body.Kind)
	}
	if body.Index == nil {
		t.Fatalf("500 body has no faulting index: %s", rec.Body.String())
	}
	if *body.Index != panicAt {
		t.Errorf("faulting index = %d, want %d", *body.Index, panicAt)
	}

	// The worker survived: health is green and the same request now
	// succeeds on the healthy engine.
	if rec := get(s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic = %d", rec.Code)
	}
	if rec := post(s, "/v1/ber", smallBER); rec.Code != http.StatusOK {
		t.Errorf("request after panic = %d, want 200: %s", rec.Code, rec.Body.String())
	}
}

// slowEngine stretches every work item so short deadlines reliably
// expire mid-sweep. It deliberately does NOT implement CtxEngine: the
// package-level adapters poll the context at item boundaries around
// its plain dispatch, which is the path third-party engines take.
type slowEngine struct {
	inner engine.Engine
	delay time.Duration
}

func (s slowEngine) Name() string      { return "slow" }
func (s slowEngine) Workers(n int) int { return s.inner.Workers(n) }
func (s slowEngine) For(n int, fn func(i int)) {
	s.inner.For(n, func(i int) { time.Sleep(s.delay); fn(i) })
}
func (s slowEngine) ForWorker(n, workers int, fn func(worker, i int)) {
	s.inner.ForWorker(n, workers, func(w, i int) { time.Sleep(s.delay); fn(w, i) })
}

// TestDeadline: an expired per-request deadline surfaces as 504 with
// kind deadline, and the sweep stops at an item boundary.
func TestDeadline(t *testing.T) {
	s := New(Config{Engine: slowEngine{inner: engine.Serial, delay: 2 * time.Millisecond}, Workers: 1})
	rec := post(s, "/v1/yield", `{"sigmas_nm": [0.05, 0.1], "samples": 10, "timeout_ms": 1}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	body := decodeBody[ErrorBody](t, rec)
	if body.Kind != "deadline" {
		t.Errorf("kind = %q, want deadline", body.Kind)
	}
	if body.Completed > body.N {
		t.Errorf("completed %d > n %d", body.Completed, body.N)
	}
}

func TestCacheHit(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	first := post(s, "/v1/ber", smallBER)
	if first.Code != http.StatusOK {
		t.Fatalf("first = %d: %s", first.Code, first.Body.String())
	}
	if xc := first.Header().Get("X-Cache"); xc != "miss" {
		t.Errorf("first X-Cache = %q, want miss", xc)
	}
	second := post(s, "/v1/ber", smallBER)
	if second.Code != http.StatusOK {
		t.Fatalf("second = %d", second.Code)
	}
	if xc := second.Header().Get("X-Cache"); xc != "hit" {
		t.Errorf("second X-Cache = %q, want hit", xc)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cache hit body differs from computed body")
	}
	if hits, _ := s.cache.Stats(); hits < 1 {
		t.Errorf("cache hits = %d, want >= 1", hits)
	}
}

func TestHealthAndDrain(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	if rec := get(s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz before drain = %d", rec.Code)
	}
	health := decodeBody[healthBody](t, get(s, "/healthz"))
	if health.Status != "ok" || health.Draining {
		t.Errorf("healthz before drain = %+v", health)
	}

	s.Drain(context.Background())
	s.Drain(context.Background()) // idempotent

	rec := get(s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", rec.Code)
	}
	if ready := decodeBody[readyBody](t, rec); ready.Ready || ready.Reason != "draining" {
		t.Errorf("readyz body = %+v", ready)
	}
	// Liveness stays green while draining; admissions are refused with
	// a typed 503.
	if rec := get(s, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200", rec.Code)
	}
	rec = post(s, "/v1/ber", smallBER)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	body := decodeBody[ErrorBody](t, rec)
	if body.Kind != "draining" {
		t.Errorf("kind = %q, want draining", body.Kind)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 draining has no Retry-After header")
	}
}

const resumeYield = `{"sigmas_nm": [0.1], "samples": 120, "seed": 5}`

// TestDrainCheckpointResume is the crash-safety gate: drain a server
// mid-yield-sweep, restart (a fresh Server on the same checkpoint
// dir), re-POST, and require bytes identical to an uninterrupted run.
func TestDrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()

	// Reference: uninterrupted run on a throwaway server.
	ref := post(New(Config{Engine: engine.Serial}), "/v1/yield", resumeYield)
	if ref.Code != http.StatusOK {
		t.Fatalf("reference run = %d: %s", ref.Code, ref.Body.String())
	}

	// The interrupted server runs each die slowly so the drain below
	// reliably lands mid-sweep; slowness changes scheduling only, so
	// the snapshot content still matches what Serial would produce.
	first := New(Config{
		Engine:  slowEngine{inner: engine.Serial, delay: time.Millisecond},
		Workers: 1, CheckpointDir: dir, CheckpointEvery: 1,
	})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- post(first, "/v1/yield", resumeYield) }()

	// Wait until at least one die has been snapshotted, then hard-drain
	// so the running sweep is cancelled at an item boundary.
	waitForCheckpoint(t, dir)
	hardCtx, cancel := context.WithCancel(context.Background())
	cancel()
	first.Drain(hardCtx)

	rec := <-done
	switch rec.Code {
	case http.StatusServiceUnavailable:
		if body := decodeBody[ErrorBody](t, rec); body.Kind != "draining" {
			t.Fatalf("interrupted kind = %q, want draining: %s", body.Kind, rec.Body.String())
		}
	case http.StatusOK:
		// The sweep beat the drain; resume still must serve identical
		// bytes below, just from a complete snapshot.
		t.Log("sweep completed before drain; exercising restart on a finished checkpoint")
	default:
		t.Fatalf("interrupted run = %d: %s", rec.Code, rec.Body.String())
	}

	// "Restart": a fresh server over the same checkpoint directory.
	second := New(Config{Engine: engine.Serial, CheckpointDir: dir, CheckpointEvery: 1})
	resumed := post(second, "/v1/yield", resumeYield)
	if resumed.Code != http.StatusOK {
		t.Fatalf("resumed run = %d: %s", resumed.Code, resumed.Body.String())
	}
	if !bytes.Equal(resumed.Body.Bytes(), ref.Body.Bytes()) {
		t.Errorf("resumed body differs from uninterrupted run:\nresumed: %s\nref:     %s",
			resumed.Body.String(), ref.Body.String())
	}
}

// waitForCheckpoint blocks until a yield snapshot appears in dir, so
// the drain below is guaranteed to interrupt a sweep with progress on
// disk. It polls instead of sleeping a fixed time to stay fast and
// non-flaky on slow machines.
func waitForCheckpoint(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		matches, err := filepath.Glob(filepath.Join(dir, "yield-*.json"))
		if err != nil {
			t.Fatalf("globbing checkpoints: %v", err)
		}
		for _, m := range matches {
			if info, err := os.Stat(m); err == nil && info.Size() > 0 {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no checkpoint file appeared within 30s")
}

func TestImageEdgePGMFormat(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	rec := post(s, "/v1/image/edge", `{"source": {"synth": "checkerboard", "width": 24, "height": 16}, "stream_len": 256, "format": "pgm"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/x-portable-graymap" {
		t.Errorf("content type = %q", ct)
	}
	g, err := img.ReadPGM(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("response is not a valid PGM: %v", err)
	}
	if g.W != 24 || g.H != 16 {
		t.Errorf("result is %dx%d, want 24x16", g.W, g.H)
	}
}

func TestImageGammaJSON(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	rec := post(s, "/v1/image/gamma", `{"source": {"synth": "gradient", "width": 24, "height": 16}, "stream_len": 512}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	body := decodeBody[imageBody](t, rec)
	if body.Op != "gamma" || body.Width != 24 || body.Height != 16 {
		t.Errorf("body header = %+v", body)
	}
	if body.PSNR < 20 {
		t.Errorf("PSNR vs exact = %.1f dB, want a faithful correction (>= 20)", body.PSNR)
	}
	if body.PGMBase64 == "" {
		t.Error("missing pgm_base64 payload")
	}
}

func TestTimeoutCappedByMax(t *testing.T) {
	s := New(Config{Engine: slowEngine{inner: engine.Serial, delay: 2 * time.Millisecond}, MaxTimeout: time.Millisecond})
	// Requesting an hour is silently capped to MaxTimeout: the job
	// deadline-expires rather than running unbounded.
	rec := post(s, "/v1/yield", `{"sigmas_nm": [0.05, 0.1], "samples": 10, "timeout_ms": 3600000}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body.String())
	}
}

// TestErrorStatusMapping covers the error→status table directly,
// including the wrapped-Partial attributions that are awkward to
// produce end-to-end.
func TestErrorStatusMapping(t *testing.T) {
	idx := 3
	cases := []struct {
		name     string
		err      error
		status   int
		kind     string
		index    *int
		retryGT0 bool
	}{
		{"queue full", ErrQueueFull, 503, "queue_full", nil, true},
		{"draining", ErrDraining, 503, "draining", nil, true},
		{"deadline", context.DeadlineExceeded, 504, "deadline", nil, false},
		{"canceled", context.Canceled, 503, "draining", nil, true},
		{"partial deadline", &engine.Partial{N: 10, Completed: 4, Cause: context.DeadlineExceeded}, 504, "deadline", nil, false},
		{"panic", &engine.Partial{N: 10, Completed: 2, Cause: chaosPanicError(idx)}, 500, "panic", &idx, false},
		{"internal", fmt.Errorf("boom"), 500, "internal", nil, false},
	}
	for _, tc := range cases {
		status, body := errorStatus(tc.err)
		if status != tc.status || body.Kind != tc.kind {
			t.Errorf("%s: got (%d, %q), want (%d, %q)", tc.name, status, body.Kind, tc.status, tc.kind)
		}
		if tc.index != nil {
			if body.Index == nil || *body.Index != *tc.index {
				t.Errorf("%s: index = %v, want %d", tc.name, body.Index, *tc.index)
			}
		}
		if tc.retryGT0 && body.RetryAfterSec <= 0 {
			t.Errorf("%s: no Retry-After", tc.name)
		}
	}
}

// chaosPanicError produces a real *parallel.PanicError the way a
// dispatch would: by capturing an injected panic.
func chaosPanicError(index int) error {
	chaos := engine.NewChaos("one-panic", engine.Serial, 1, engine.ChaosSpec{Panic: true, PanicAt: index})
	err := engine.ForCtx(context.Background(), chaos, index+1, func(i int) {})
	if err == nil {
		panic("chaos did not panic")
	}
	return err
}
