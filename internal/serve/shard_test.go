package serve

import (
	"fmt"
	"net/http"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/figures"
)

// shardYieldReq builds the sharded request body for the small study
// the shard tests share (2 sigmas x 6 dies = 12 points over 3 shards).
func shardYieldReq(k, n int) string {
	return fmt.Sprintf(`{"sigmas_nm": [0.05, 0.1], "samples": 6, "shard": %d, "of": %d}`, k, n)
}

// TestYieldShardsReassembleToUnshardedRun: the union of the shard
// responses covers every die exactly once with outcomes that fold to
// the unsharded response — the service-side version of the oscmerge
// equivalence gate.
func TestYieldShardsReassembleToUnshardedRun(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	ref := post(s, "/v1/yield", `{"sigmas_nm": [0.05, 0.1], "samples": 6}`)
	if ref.Code != http.StatusOK {
		t.Fatalf("unsharded yield = %d: %s", ref.Code, ref.Body.String())
	}
	refBody := decodeBody[yieldBody](t, ref)

	study := figures.YieldStudySpec(6)
	study.SigmasNM = []float64{0.05, 0.1}
	n := study.N()
	dies := make([]core.DieOutcome, n)
	seen := make([]bool, n)
	for k := 0; k < 3; k++ {
		rec := post(s, "/v1/yield", shardYieldReq(k, 3))
		if rec.Code != http.StatusOK {
			t.Fatalf("shard %d/3 = %d: %s", k, rec.Code, rec.Body.String())
		}
		body := decodeBody[yieldShardBody](t, rec)
		if body.Shard != k || body.Of != 3 || body.N != n {
			t.Errorf("shard %d attribution = %d/%d over %d, want %d/3 over %d", k, body.Shard, body.Of, body.N, k, n)
		}
		if body.Completed != len(body.Dies) {
			t.Errorf("shard %d: completed %d but %d dies", k, body.Completed, len(body.Dies))
		}
		for _, d := range body.Dies {
			if d.Index < 0 || d.Index >= n {
				t.Fatalf("shard %d returned out-of-range die %d", k, d.Index)
			}
			if seen[d.Index] {
				t.Errorf("die %d returned by two shards", d.Index)
			}
			seen[d.Index] = true
			dies[d.Index] = d.Outcome
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("die %d returned by no shard", i)
		}
	}
	points, err := study.Fold(dies)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range points {
		got := refBody.Points[i]
		if pt.Result.Yield != got.Yield || pt.Result.WorstBER != got.WorstBER || pt.Result.MeanEyeMW != got.MeanEyeMW {
			t.Errorf("sigma %g: reassembled %+v diverges from unsharded %+v", pt.SigmaNM, pt.Result, got)
		}
	}
}

// TestYieldShardCheckpointedMatchesDirect: with a checkpoint directory
// the shard persists a shard-tagged snapshot, and the response stays
// byte-identical to a server with no checkpointing at all — resumed
// and uninterrupted shards are indistinguishable to clients.
func TestYieldShardCheckpointedMatchesDirect(t *testing.T) {
	direct := post(New(Config{Engine: engine.Serial}), "/v1/yield", shardYieldReq(1, 3))
	if direct.Code != http.StatusOK {
		t.Fatalf("direct shard = %d: %s", direct.Code, direct.Body.String())
	}

	dir := t.TempDir()
	s := New(Config{Engine: engine.Serial, CheckpointDir: dir})
	ck := post(s, "/v1/yield", shardYieldReq(1, 3))
	if ck.Code != http.StatusOK {
		t.Fatalf("checkpointed shard = %d: %s", ck.Code, ck.Body.String())
	}
	if ck.Body.String() != direct.Body.String() {
		t.Errorf("checkpointed shard body differs from direct:\n ck: %s\ndir: %s", ck.Body.String(), direct.Body.String())
	}
	matches, err := filepath.Glob(filepath.Join(dir, "yield-*.shard1of3.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("shard-tagged snapshot: matches=%v err=%v", matches, err)
	}
	// A fresh server on the same directory resumes from the snapshot:
	// same bytes again, without recomputing (the snapshot is complete,
	// so even a die-counting engine would see zero work — asserted by
	// the byte identity under a fresh cache).
	s2 := New(Config{Engine: engine.Serial, CheckpointDir: dir})
	re := post(s2, "/v1/yield", shardYieldReq(1, 3))
	if re.Body.String() != direct.Body.String() {
		t.Errorf("resumed shard body differs from direct")
	}
}

// TestYieldShardValidation: malformed shard fields are 400s, never a
// silently unsharded (or wrongly sharded) run.
func TestYieldShardValidation(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	cases := []struct{ name, body string }{
		{"shard without of", `{"shard": 1}`},
		{"shard == of", `{"shard": 3, "of": 3}`},
		{"negative shard", `{"shard": -1, "of": 2}`},
		{"negative of", `{"of": -2}`},
		{"of over cap", `{"shard": 0, "of": 1000}`},
	}
	for _, tc := range cases {
		rec := post(s, "/v1/yield", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, rec.Code, rec.Body.String())
			continue
		}
		if body := decodeBody[ErrorBody](t, rec); body.Kind != "bad_request" {
			t.Errorf("%s: kind = %q, want bad_request", tc.name, body.Kind)
		}
	}
}

// TestYieldShardCachesPerShard: different shards of one study cache
// independently and the unsharded entry is untouched — the shard spec
// extends the content address rather than replacing it.
func TestYieldShardCachesPerShard(t *testing.T) {
	s := New(Config{Engine: engine.Serial})
	s0 := post(s, "/v1/yield", shardYieldReq(0, 3))
	s1 := post(s, "/v1/yield", shardYieldReq(1, 3))
	if s0.Body.String() == s1.Body.String() {
		t.Error("shards 0 and 1 returned identical bodies — cache key ignores the shard")
	}
	if got := post(s, "/v1/yield", shardYieldReq(0, 3)); got.Body.String() != s0.Body.String() {
		t.Error("shard 0 repost diverges from its first response")
	}
	full := post(s, "/v1/yield", `{"sigmas_nm": [0.05, 0.1], "samples": 6}`)
	if full.Code != http.StatusOK {
		t.Fatalf("unsharded after shards = %d", full.Code)
	}
	if body := decodeBody[yieldBody](t, full); len(body.Points) != 2 {
		t.Errorf("unsharded response after sharded posts has %d points, want 2", len(body.Points))
	}
}
