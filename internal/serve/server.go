package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	img "repro/internal/image"
)

// Config shapes a Server. The zero value is usable: every field has a
// production default.
type Config struct {
	// Engine dispatches every sweep; nil means engine.Default(). The
	// server wraps it in an engine.Limited shared across all jobs, so
	// concurrent requests never oversubscribe the machine.
	Engine engine.Engine
	// Slots caps concurrently running work items across all jobs
	// (default GOMAXPROCS).
	Slots int
	// Workers is the number of jobs executing concurrently (default 2);
	// QueueDepth is how many more may wait (default 8). Beyond
	// Workers+QueueDepth, admission fails with 503 queue_full.
	Workers    int
	QueueDepth int
	// DefaultTimeout bounds every job (0 = none); MaxTimeout caps the
	// per-request timeout_ms field (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// CacheEntries bounds the content-addressed result cache (default
	// 256; negative disables caching).
	CacheEntries int
	// CheckpointDir, when set, makes long sweeps (POST /v1/yield)
	// snapshot to per-key files there, so a drained or crashed server
	// resumes them bit-identically on retry after restart.
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence in completed sweep items
	// (default 10).
	CheckpointEvery int
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.Engine == nil {
		c.Engine = engine.Default()
	}
	if c.Slots < 1 {
		c.Slots = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CheckpointEvery < 1 {
		c.CheckpointEvery = 10
	}
	return c
}

// Server is the crash-safe simulation service: the figure registry,
// BER/yield analyses and gamma/edge image jobs behind a bounded job
// queue, a content-addressed result cache, per-request deadlines and
// graceful drain. See the package comment for the HTTP API.
type Server struct {
	cfg   Config
	eng   *engine.Limited
	queue *Queue
	cache *Cache
	mux   *http.ServeMux

	// lut amortizes gamma LUT construction across requests (same
	// recipe → one build), exactly like video frames share it.
	lut img.GammaLUTCache

	// writeErrs counts response-write failures (client gone mid-body);
	// there is no recovery path for them, so they surface in /healthz
	// instead of being dropped.
	writeErrs atomic.Int64
}

// New builds a Server; Start it by mounting it on an http.Server (it
// implements http.Handler) and stop it with Drain.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		eng:   engine.NewLimited("serve("+cfg.Engine.Name()+")", cfg.Engine, cfg.Slots),
		queue: NewQueue(cfg.Workers, cfg.QueueDepth),
		cache: NewCache(cfg.CacheEntries),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/figures", s.handleFigureList)
	s.mux.HandleFunc("POST /v1/figures/{key}", s.handleFigure)
	s.mux.HandleFunc("POST /v1/ber", s.handleBER)
	s.mux.HandleFunc("POST /v1/yield", s.handleYield)
	s.mux.HandleFunc("POST /v1/image/gamma", s.handleImage)
	s.mux.HandleFunc("POST /v1/image/edge", s.handleImage)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops admissions (readyz flips to 503) and waits for accepted
// jobs. When hardCtx fires first, running jobs are cancelled so
// ctx-aware sweeps stop at an item boundary and checkpoint; Drain
// still waits for them to settle. Safe to call more than once.
func (s *Server) Drain(hardCtx context.Context) {
	s.queue.Drain(hardCtx)
}

// Engine returns the shared limited engine jobs dispatch on.
func (s *Server) Engine() engine.Engine { return s.eng }

// WriteErrors reports how many response writes have failed so far.
func (s *Server) WriteErrors() int64 { return s.writeErrs.Load() }

// healthBody is the /healthz JSON shape.
type healthBody struct {
	Status   string      `json:"status"`
	Draining bool        `json:"draining"`
	Queue    queueHealth `json:"queue"`
	Cache    cacheHealth `json:"cache"`
	Engine   string      `json:"engine"`
	// InFlight is the number of work items (not jobs) running in the
	// shared limited engine right now.
	InFlight    int   `json:"in_flight"`
	Slots       int   `json:"slots"`
	WriteErrors int64 `json:"write_errors"`
}

type queueHealth struct {
	Capacity int `json:"capacity"`
	Depth    int `json:"depth"`
	Running  int `json:"running"`
	Workers  int `json:"workers"`
}

type cacheHealth struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	hits, misses := s.cache.Stats()
	s.writeJSON(w, http.StatusOK, healthBody{
		Status:   "ok",
		Draining: s.queue.Draining(),
		Queue: queueHealth{
			Capacity: s.queue.Capacity(),
			Depth:    s.queue.Depth(),
			Running:  s.queue.Running(),
			Workers:  s.cfg.Workers,
		},
		Cache:       cacheHealth{Entries: s.cache.Len(), Hits: hits, Misses: misses},
		Engine:      s.eng.Name(),
		InFlight:    s.eng.InFlight(),
		Slots:       s.eng.Slots(),
		WriteErrors: s.writeErrs.Load(),
	})
}

// readyBody is the /readyz JSON shape.
type readyBody struct {
	Ready      bool   `json:"ready"`
	Reason     string `json:"reason,omitempty"`
	QueueDepth int    `json:"queue_depth"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.queue.Draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, readyBody{
			Ready: false, Reason: "draining", QueueDepth: s.queue.Depth(),
		})
		return
	}
	s.writeJSON(w, http.StatusOK, readyBody{Ready: true, QueueDepth: s.queue.Depth()})
}

// writeJSON encodes v with a status. Encode-to-wire failures (client
// gone mid-body) have no recovery path once the status line is sent;
// they are counted for /healthz rather than dropped.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshal of our own response structs cannot fail on valid
		// float64/string/int fields; treat it as a write error if it
		// ever does and send a minimal fallback.
		s.writeErrs.Add(1)
		http.Error(w, `{"error":"response encoding failed","kind":"internal"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(data); err != nil {
		s.writeErrs.Add(1)
	}
}

// writeError maps err through errorStatus and writes the JSON body
// (plus Retry-After on retryable kinds).
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, body := errorStatus(err)
	if body.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(body.RetryAfterSec))
	}
	s.writeJSON(w, status, body)
}

// writeEntry writes a cached-or-fresh response entry; the X-Cache
// header reports which (headers are not part of the cached bytes, so
// hit and miss bodies stay byte-identical).
func (s *Server) writeEntry(w http.ResponseWriter, e entry, xcache string) {
	w.Header().Set("Content-Type", e.contentType)
	w.Header().Set("X-Cache", xcache)
	w.WriteHeader(e.status)
	if _, err := w.Write(e.body); err != nil {
		s.writeErrs.Add(1)
	}
}

// timeoutFor resolves the effective job deadline: the request's
// timeout_ms when set (capped at MaxTimeout), else DefaultTimeout.
func (s *Server) timeoutFor(requestMS int64) (time.Duration, error) {
	if requestMS < 0 {
		return 0, fmt.Errorf("timeout_ms %d: need >= 0", requestMS)
	}
	if requestMS == 0 {
		return s.cfg.DefaultTimeout, nil
	}
	d := time.Duration(requestMS) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// runCached is the one path every compute endpoint goes through:
// serve from the cache when the content address hits; otherwise admit
// onto the bounded queue (503 when full or draining), run the job
// under the resolved deadline, cache a successful response, and write
// it. job runs on a queue worker with a context that cancels on
// client deadline AND on hard drain.
func (s *Server) runCached(w http.ResponseWriter, r *http.Request, key string, timeoutMS int64, job func(ctx context.Context) (entry, error)) {
	timeout, err := s.timeoutFor(timeoutMS)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	if e, ok := s.cache.Get(key); ok {
		s.writeEntry(w, e, "hit")
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var res entry
	err = s.queue.Do(ctx, func(jctx context.Context) error {
		var jerr error
		res, jerr = job(jctx)
		return jerr
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.cache.Put(key, res)
	s.writeEntry(w, res, "miss")
}

// jsonEntry marshals a success body into a cacheable response entry.
func jsonEntry(v any) (entry, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return entry{}, fmt.Errorf("encoding response: %w", err)
	}
	return entry{status: http.StatusOK, contentType: "application/json", body: data}, nil
}

// decodeJSON decodes an optional JSON request body into v: an empty
// body leaves v at its defaults; trailing garbage and unknown fields
// are rejected so typos fail loudly instead of running the wrong
// sweep.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if err == io.EOF {
			return nil
		}
		return fmt.Errorf("decoding request body: %w", err)
	}
	// A second document in the body is a malformed request.
	if dec.More() {
		return fmt.Errorf("request body has trailing data")
	}
	return nil
}
