package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
)

// BenchmarkServeFig measures end-to-end request service for a figure
// job on a warm cache — the steady-state path of a healthy service:
// route, decode, validate, content-address, cache hit, write.
func BenchmarkServeFig(b *testing.B) {
	s := New(Config{Engine: engine.Serial})
	warm := post(s, "/v1/figures/5a", "")
	if warm.Code != http.StatusOK {
		b.Fatalf("warm-up = %d: %s", warm.Code, warm.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/figures/5a", strings.NewReader(""))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d", rec.Code)
		}
	}
}

// BenchmarkServeFigCold measures the full compute path: every
// iteration renders the figure through the bounded queue and limited
// engine (cache disabled).
func BenchmarkServeFigCold(b *testing.B) {
	s := New(Config{Engine: engine.Serial, CacheEntries: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/figures/5a", strings.NewReader(""))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d", rec.Code)
		}
	}
}
