package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/transient"
)

// berRequest is the POST /v1/ber body. Exactly one of ProbeMW or
// TargetBER selects the probe powers swept; both empty means the
// paper's standard 1e-1..1e-4 targets.
type berRequest struct {
	ProbeMW   []float64 `json:"probe_mw,omitempty"`
	TargetBER []float64 `json:"target_ber,omitempty"`
	Bits      int       `json:"bits,omitempty"`
	Seed      uint64    `json:"seed,omitempty"`
	TimeoutMS int64     `json:"timeout_ms,omitempty"`
}

// berPoint is one waterfall row.
type berPoint struct {
	ProbeMW     float64 `json:"probe_mw"`
	MeasuredBER float64 `json:"measured_ber"`
	AnalyticBER float64 `json:"analytic_ber"`
}

// berBody is the success response.
type berBody struct {
	Bits   int        `json:"bits"`
	Seed   uint64     `json:"seed"`
	Points []berPoint `json:"points"`
}

const (
	defaultBERBits = 200_000
	defaultBERSeed = 29
	maxBERBits     = 2_000_000
	maxBERPoints   = 64
)

func (s *Server) handleBER(w http.ResponseWriter, r *http.Request) {
	var req berRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	if req.Bits == 0 {
		req.Bits = defaultBERBits
	}
	if req.Seed == 0 {
		req.Seed = defaultBERSeed
	}
	if len(req.TargetBER) == 0 && len(req.ProbeMW) == 0 {
		req.TargetBER = []float64{1e-1, 1e-2, 1e-3, 1e-4}
	}
	if err := validateBER(req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	base := core.PaperParams()
	powers := req.ProbeMW
	if len(powers) == 0 {
		c := core.MustCircuit(base)
		powers = make([]float64, len(req.TargetBER))
		for i, t := range req.TargetBER {
			powers[i] = c.MinProbePowerMW(t)
		}
	}

	ck := cacheKey("ber", configString("powers", powers, "bits", req.Bits), req.Seed, len(powers))
	s.runCached(w, r, ck, req.TimeoutMS, func(ctx context.Context) (entry, error) {
		pts, err := transient.BERWaterfallCtx(ctx, s.eng, base, powers, req.Bits, req.Seed)
		if err != nil {
			return entry{}, err
		}
		body := berBody{Bits: req.Bits, Seed: req.Seed, Points: make([]berPoint, len(pts))}
		for i, p := range pts {
			body.Points[i] = berPoint{ProbeMW: p.ProbeMW, MeasuredBER: p.MeasuredBER, AnalyticBER: p.AnalyticBER}
		}
		return jsonEntry(body)
	})
}

func validateBER(req berRequest) error {
	if len(req.ProbeMW) > 0 && len(req.TargetBER) > 0 {
		return fmt.Errorf("probe_mw and target_ber are mutually exclusive")
	}
	if n := len(req.ProbeMW) + len(req.TargetBER); n > maxBERPoints {
		return fmt.Errorf("%d waterfall points: max %d per request", n, maxBERPoints)
	}
	if req.Bits < 1 || req.Bits > maxBERBits {
		return fmt.Errorf("bits %d: need 1..%d", req.Bits, maxBERBits)
	}
	for _, p := range req.ProbeMW {
		if !(p > 0) {
			return fmt.Errorf("probe_mw %g: need > 0", p)
		}
	}
	for _, t := range req.TargetBER {
		if !(t > 0 && t < 0.5) {
			return fmt.Errorf("target_ber %g: need in (0, 0.5)", t)
		}
	}
	return nil
}

// yieldRequest is the POST /v1/yield body: the checkpointable
// process-variation campaign. Zero fields take the standard study
// shape (figures.YieldStudySpec). With "of" > 0 the request runs one
// shard of a horizontally partitioned campaign: only the dies shard
// "shard" of "of" owns (round-robin by die index) are computed, and
// the response carries the per-die outcomes with shard attribution
// instead of folded sigma rows — reassembled client-side (or via
// oscmerge on the server's shard-tagged checkpoints).
type yieldRequest struct {
	SigmasNM  []float64 `json:"sigmas_nm,omitempty"`
	Samples   int       `json:"samples,omitempty"`
	Seed      uint64    `json:"seed,omitempty"`
	TargetBER float64   `json:"target_ber,omitempty"`
	TimeoutMS int64     `json:"timeout_ms,omitempty"`
	Shard     int       `json:"shard,omitempty"`
	Of        int       `json:"of,omitempty"`
}

// yieldPoint is one sigma row, flattened with explicit tags.
type yieldPoint struct {
	SigmaNM   float64 `json:"sigma_nm"`
	Samples   int     `json:"samples"`
	Pass      int     `json:"pass"`
	Yield     float64 `json:"yield"`
	MeanBER   float64 `json:"mean_ber"`
	WorstBER  float64 `json:"worst_ber"`
	MeanEyeMW float64 `json:"mean_eye_mw"`
}

// yieldBody is the success response. It carries no run-history fields
// (like a resumed-die count) on purpose: a resumed run's body must be
// byte-identical to an uninterrupted one.
type yieldBody struct {
	Seed      uint64       `json:"seed"`
	TargetBER float64      `json:"target_ber"`
	Points    []yieldPoint `json:"points"`
}

// yieldShardDie is one computed die of a shard response, attributed by
// its study-wide index so clients can reassemble shards by position.
type yieldShardDie struct {
	Index   int             `json:"index"`
	Outcome core.DieOutcome `json:"outcome"`
}

// yieldShardBody is the success response of a sharded yield request:
// shard attribution plus the owned dies. Like yieldBody it carries no
// run-history fields — a shard served from a resumed checkpoint is
// byte-identical to one computed in a single pass.
type yieldShardBody struct {
	Seed      uint64          `json:"seed"`
	TargetBER float64         `json:"target_ber"`
	Shard     int             `json:"shard"`
	Of        int             `json:"of"`
	N         int             `json:"n"`
	Completed int             `json:"completed"`
	Dies      []yieldShardDie `json:"dies"`
}

const (
	maxYieldSigmas  = 16
	maxYieldSamples = 1_000_000
	maxYieldShards  = 64
)

func (s *Server) handleYield(w http.ResponseWriter, r *http.Request) {
	var req yieldRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	study := figures.YieldStudySpec(figures.Defaults().Samples)
	if req.Samples != 0 {
		study.Samples = req.Samples
	}
	if len(req.SigmasNM) != 0 {
		study.SigmasNM = req.SigmasNM
	}
	if req.Seed != 0 {
		study.Seed = req.Seed
	}
	if req.TargetBER != 0 {
		study.TargetBER = req.TargetBER
	}
	if err := validateYield(study); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	if err := validateYieldShard(req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}

	key := study.Key()
	if req.Of > 0 {
		// The cache key extends the study's content hash with the shard
		// spec: shards of one study share the key family (the study hash)
		// but cache independently.
		ck := fmt.Sprintf("%s|shard=%d/%d", key.Hash(), req.Shard, req.Of)
		s.runCached(w, r, ck, req.TimeoutMS, func(ctx context.Context) (entry, error) {
			dies, err := s.runYieldShard(ctx, study, key, req.Shard, req.Of)
			if err != nil {
				return entry{}, err
			}
			body := yieldShardBody{
				Seed:      study.Seed,
				TargetBER: study.TargetBER,
				Shard:     req.Shard,
				Of:        req.Of,
				N:         key.N,
				Dies:      []yieldShardDie{},
			}
			for i, d := range dies {
				if d != nil {
					body.Completed++
					body.Dies = append(body.Dies, yieldShardDie{Index: i, Outcome: *d})
				}
			}
			return jsonEntry(body)
		})
		return
	}
	s.runCached(w, r, key.Hash(), req.TimeoutMS, func(ctx context.Context) (entry, error) {
		points, err := s.runYield(ctx, study, key)
		if err != nil {
			return entry{}, err
		}
		body := yieldBody{Seed: study.Seed, TargetBER: study.TargetBER, Points: make([]yieldPoint, len(points))}
		for i, pt := range points {
			body.Points[i] = yieldPoint{
				SigmaNM:   pt.SigmaNM,
				Samples:   pt.Result.Samples,
				Pass:      pt.Result.Pass,
				Yield:     pt.Result.Yield,
				MeanBER:   pt.Result.MeanBER,
				WorstBER:  pt.Result.WorstBER,
				MeanEyeMW: pt.Result.MeanEyeMW,
			}
		}
		return jsonEntry(body)
	})
}

// runYield executes the study — checkpointed per content key when the
// server has a checkpoint directory, so a drain (or crash after the
// last snapshot cadence) mid-sweep leaves completed dies on disk and
// the client's retry after restart resumes instead of restarting.
func (s *Server) runYield(ctx context.Context, study dse.YieldStudy, key dse.CheckpointKey) ([]dse.YieldPoint, error) {
	if s.cfg.CheckpointDir == "" {
		return study.RunCtx(ctx, s.eng)
	}
	path := filepath.Join(s.cfg.CheckpointDir, "yield-"+key.Hash()[:16]+".json")
	cp := dse.NewCheckpointer[core.DieOutcome](path, s.cfg.CheckpointEvery, key)
	if _, err := cp.Load(); err != nil {
		return nil, err
	}
	return study.RunCheckpointed(ctx, s.eng, cp)
}

// runYieldShard computes shard k of n of the study, returning the
// per-die results indexed by study position (nil for dies the shard
// does not own). With a checkpoint directory the shard persists to its
// own shard-tagged snapshot — same content key as the study, so the
// file family merges with oscmerge — and a drained or crashed shard
// resumes on retry exactly like the unsharded path.
func (s *Server) runYieldShard(ctx context.Context, study dse.YieldStudy, key dse.CheckpointKey, k, n int) ([]*core.DieOutcome, error) {
	sh := engine.Shard{K: k, N: n, Inner: s.eng}
	if s.cfg.CheckpointDir == "" {
		dies, err := dse.SweepCtx(ctx, sh, key.N, study.Die)
		out := make([]*core.DieOutcome, key.N)
		var p *engine.Partial
		switch {
		case err == nil:
			for i := range dies {
				d := dies[i]
				out[i] = &d
			}
		case errors.As(err, &p) && errors.Is(err, engine.ErrShardRemainder):
			for i, done := range p.Done {
				if done {
					d := dies[i]
					out[i] = &d
				}
			}
		default:
			return nil, err
		}
		return out, nil
	}
	path := dse.ShardCheckpointPath(filepath.Join(s.cfg.CheckpointDir, "yield-"+key.Hash()[:16]+".json"), k, n)
	cp := dse.NewCheckpointer[core.DieOutcome](path, s.cfg.CheckpointEvery, key)
	if _, err := cp.Load(); err != nil {
		return nil, err
	}
	if _, err := cp.Run(ctx, sh, study.Die); err != nil && !errors.Is(err, engine.ErrShardRemainder) {
		return nil, err
	}
	return cp.Results(), nil
}

// validateYieldShard checks the optional shard fields: "shard" without
// "of" is a loud error (never a silently unsharded run), and a spec
// must satisfy 0 <= shard < of within the shard cap.
func validateYieldShard(req yieldRequest) error {
	if req.Of == 0 {
		if req.Shard != 0 {
			return fmt.Errorf("shard %d without of: set of to the total shard count", req.Shard)
		}
		return nil
	}
	if req.Of < 1 || req.Of > maxYieldShards {
		return fmt.Errorf("of %d: need 1..%d shards", req.Of, maxYieldShards)
	}
	if req.Shard < 0 || req.Shard >= req.Of {
		return fmt.Errorf("shard %d: need in [0, %d)", req.Shard, req.Of)
	}
	return nil
}

func validateYield(study dse.YieldStudy) error {
	if n := len(study.SigmasNM); n < 1 || n > maxYieldSigmas {
		return fmt.Errorf("%d sigmas: need 1..%d", len(study.SigmasNM), maxYieldSigmas)
	}
	for _, sig := range study.SigmasNM {
		if !(sig >= 0) {
			return fmt.Errorf("sigma_nm %g: need >= 0", sig)
		}
	}
	if study.Samples < 1 || study.Samples > maxYieldSamples {
		return fmt.Errorf("samples %d: need 1..%d", study.Samples, maxYieldSamples)
	}
	if !(study.TargetBER > 0 && study.TargetBER < 0.5) {
		return fmt.Errorf("target_ber %g: need in (0, 0.5)", study.TargetBER)
	}
	return nil
}
