package serve

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/figures"
	"repro/internal/transient"
)

// berRequest is the POST /v1/ber body. Exactly one of ProbeMW or
// TargetBER selects the probe powers swept; both empty means the
// paper's standard 1e-1..1e-4 targets.
type berRequest struct {
	ProbeMW   []float64 `json:"probe_mw,omitempty"`
	TargetBER []float64 `json:"target_ber,omitempty"`
	Bits      int       `json:"bits,omitempty"`
	Seed      uint64    `json:"seed,omitempty"`
	TimeoutMS int64     `json:"timeout_ms,omitempty"`
}

// berPoint is one waterfall row.
type berPoint struct {
	ProbeMW     float64 `json:"probe_mw"`
	MeasuredBER float64 `json:"measured_ber"`
	AnalyticBER float64 `json:"analytic_ber"`
}

// berBody is the success response.
type berBody struct {
	Bits   int        `json:"bits"`
	Seed   uint64     `json:"seed"`
	Points []berPoint `json:"points"`
}

const (
	defaultBERBits = 200_000
	defaultBERSeed = 29
	maxBERBits     = 2_000_000
	maxBERPoints   = 64
)

func (s *Server) handleBER(w http.ResponseWriter, r *http.Request) {
	var req berRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	if req.Bits == 0 {
		req.Bits = defaultBERBits
	}
	if req.Seed == 0 {
		req.Seed = defaultBERSeed
	}
	if len(req.TargetBER) == 0 && len(req.ProbeMW) == 0 {
		req.TargetBER = []float64{1e-1, 1e-2, 1e-3, 1e-4}
	}
	if err := validateBER(req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	base := core.PaperParams()
	powers := req.ProbeMW
	if len(powers) == 0 {
		c := core.MustCircuit(base)
		powers = make([]float64, len(req.TargetBER))
		for i, t := range req.TargetBER {
			powers[i] = c.MinProbePowerMW(t)
		}
	}

	ck := cacheKey("ber", configString("powers", powers, "bits", req.Bits), req.Seed, len(powers))
	s.runCached(w, r, ck, req.TimeoutMS, func(ctx context.Context) (entry, error) {
		pts, err := transient.BERWaterfallCtx(ctx, s.eng, base, powers, req.Bits, req.Seed)
		if err != nil {
			return entry{}, err
		}
		body := berBody{Bits: req.Bits, Seed: req.Seed, Points: make([]berPoint, len(pts))}
		for i, p := range pts {
			body.Points[i] = berPoint{ProbeMW: p.ProbeMW, MeasuredBER: p.MeasuredBER, AnalyticBER: p.AnalyticBER}
		}
		return jsonEntry(body)
	})
}

func validateBER(req berRequest) error {
	if len(req.ProbeMW) > 0 && len(req.TargetBER) > 0 {
		return fmt.Errorf("probe_mw and target_ber are mutually exclusive")
	}
	if n := len(req.ProbeMW) + len(req.TargetBER); n > maxBERPoints {
		return fmt.Errorf("%d waterfall points: max %d per request", n, maxBERPoints)
	}
	if req.Bits < 1 || req.Bits > maxBERBits {
		return fmt.Errorf("bits %d: need 1..%d", req.Bits, maxBERBits)
	}
	for _, p := range req.ProbeMW {
		if !(p > 0) {
			return fmt.Errorf("probe_mw %g: need > 0", p)
		}
	}
	for _, t := range req.TargetBER {
		if !(t > 0 && t < 0.5) {
			return fmt.Errorf("target_ber %g: need in (0, 0.5)", t)
		}
	}
	return nil
}

// yieldRequest is the POST /v1/yield body: the checkpointable
// process-variation campaign. Zero fields take the standard study
// shape (figures.YieldStudySpec).
type yieldRequest struct {
	SigmasNM  []float64 `json:"sigmas_nm,omitempty"`
	Samples   int       `json:"samples,omitempty"`
	Seed      uint64    `json:"seed,omitempty"`
	TargetBER float64   `json:"target_ber,omitempty"`
	TimeoutMS int64     `json:"timeout_ms,omitempty"`
}

// yieldPoint is one sigma row, flattened with explicit tags.
type yieldPoint struct {
	SigmaNM   float64 `json:"sigma_nm"`
	Samples   int     `json:"samples"`
	Pass      int     `json:"pass"`
	Yield     float64 `json:"yield"`
	MeanBER   float64 `json:"mean_ber"`
	WorstBER  float64 `json:"worst_ber"`
	MeanEyeMW float64 `json:"mean_eye_mw"`
}

// yieldBody is the success response. It carries no run-history fields
// (like a resumed-die count) on purpose: a resumed run's body must be
// byte-identical to an uninterrupted one.
type yieldBody struct {
	Seed      uint64       `json:"seed"`
	TargetBER float64      `json:"target_ber"`
	Points    []yieldPoint `json:"points"`
}

const (
	maxYieldSigmas  = 16
	maxYieldSamples = 1_000_000
)

func (s *Server) handleYield(w http.ResponseWriter, r *http.Request) {
	var req yieldRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	study := figures.YieldStudySpec(figures.Defaults().Samples)
	if req.Samples != 0 {
		study.Samples = req.Samples
	}
	if len(req.SigmasNM) != 0 {
		study.SigmasNM = req.SigmasNM
	}
	if req.Seed != 0 {
		study.Seed = req.Seed
	}
	if req.TargetBER != 0 {
		study.TargetBER = req.TargetBER
	}
	if err := validateYield(study); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}

	key := study.Key()
	s.runCached(w, r, key.Hash(), req.TimeoutMS, func(ctx context.Context) (entry, error) {
		points, err := s.runYield(ctx, study, key)
		if err != nil {
			return entry{}, err
		}
		body := yieldBody{Seed: study.Seed, TargetBER: study.TargetBER, Points: make([]yieldPoint, len(points))}
		for i, pt := range points {
			body.Points[i] = yieldPoint{
				SigmaNM:   pt.SigmaNM,
				Samples:   pt.Result.Samples,
				Pass:      pt.Result.Pass,
				Yield:     pt.Result.Yield,
				MeanBER:   pt.Result.MeanBER,
				WorstBER:  pt.Result.WorstBER,
				MeanEyeMW: pt.Result.MeanEyeMW,
			}
		}
		return jsonEntry(body)
	})
}

// runYield executes the study — checkpointed per content key when the
// server has a checkpoint directory, so a drain (or crash after the
// last snapshot cadence) mid-sweep leaves completed dies on disk and
// the client's retry after restart resumes instead of restarting.
func (s *Server) runYield(ctx context.Context, study dse.YieldStudy, key dse.CheckpointKey) ([]dse.YieldPoint, error) {
	if s.cfg.CheckpointDir == "" {
		return study.RunCtx(ctx, s.eng)
	}
	path := filepath.Join(s.cfg.CheckpointDir, "yield-"+key.Hash()[:16]+".json")
	cp := dse.NewCheckpointer[core.DieOutcome](path, s.cfg.CheckpointEvery, key)
	if _, err := cp.Load(); err != nil {
		return nil, err
	}
	return study.RunCheckpointed(ctx, s.eng, cp)
}

func validateYield(study dse.YieldStudy) error {
	if n := len(study.SigmasNM); n < 1 || n > maxYieldSigmas {
		return fmt.Errorf("%d sigmas: need 1..%d", len(study.SigmasNM), maxYieldSigmas)
	}
	for _, sig := range study.SigmasNM {
		if !(sig >= 0) {
			return fmt.Errorf("sigma_nm %g: need >= 0", sig)
		}
	}
	if study.Samples < 1 || study.Samples > maxYieldSamples {
		return fmt.Errorf("samples %d: need 1..%d", study.Samples, maxYieldSamples)
	}
	if !(study.TargetBER > 0 && study.TargetBER < 0.5) {
		return fmt.Errorf("target_ber %g: need in (0, 0.5)", study.TargetBER)
	}
	return nil
}
