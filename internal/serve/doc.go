// Package serve is the crash-safe simulation service: the repo's
// figure registry, BER/yield analyses and stochastic image operators
// behind a small JSON-over-HTTP API with backpressure, per-request
// deadlines, panic isolation and graceful drain.
//
// # Endpoints
//
//	GET  /healthz            liveness + queue/cache/engine stats
//	GET  /readyz             200 when admitting, 503 {"reason":"draining"} during drain
//	GET  /v1/figures         figure registry listing (sorted by key)
//	POST /v1/figures/{key}   render one figure; body {grid, sweep, samples, timeout_ms}
//	POST /v1/ber             BER waterfall; body {probe_mw[] | target_ber[], bits, seed, timeout_ms}
//	POST /v1/yield           process-variation yield study (checkpointable,
//	                         shardable); body {sigmas_nm[], samples, seed,
//	                         target_ber, timeout_ms, shard, of}
//	POST /v1/image/gamma     stochastic gamma correction; body {source, gamma, degree,
//	                         spacing_nm, stream_len, seed, format, timeout_ms}
//	POST /v1/image/edge      stochastic Roberts-cross edge detection; same body minus
//	                         the gamma-specific fields
//
// Every POST body is optional JSON: an empty body runs the endpoint's
// documented defaults, unknown fields are rejected. Image sources are
// either a synthetic generator ({"synth":"gradient|radial|checkerboard",
// "width","height",...}) or an uploaded binary PGM ({"pgm_base64":...});
// image responses are JSON (base64 PGM + PSNR/MAE vs the exact
// operator) or raw PGM when format is "pgm".
//
// # Error shape
//
// Every non-2xx response is an ErrorBody: {"error","kind"} plus
// kind-specific fields. Kinds and their statuses:
//
//	bad_request (400)  malformed or out-of-range request
//	not_found   (404)  unknown figure key; the body lists valid keys
//	queue_full  (503)  admission control rejected the job (Retry-After: 1)
//	draining    (503)  server shutting down or job cancelled by drain
//	                   (Retry-After: 5)
//	deadline    (504)  request deadline expired mid-sweep; n/completed
//	                   carry engine.Partial attribution — how many items
//	                   finished before the sweep stopped at an item boundary
//	panic       (500)  a work item panicked; index names the faulting item;
//	                   the worker survives and the server keeps serving
//	internal    (500)  anything else
//
// # Backpressure and deadlines
//
// Compute requests go through one path: a content-addressed cache
// lookup, then admission onto a bounded queue (Workers running,
// QueueDepth waiting — never an unbounded goroutine per request), then
// execution on a shared engine.Limited so concurrent jobs cannot
// oversubscribe the machine. A full queue answers 503 queue_full
// immediately with Retry-After. The per-request deadline (timeout_ms,
// capped by Config.MaxTimeout, defaulting to Config.DefaultTimeout) is
// threaded into the *Ctx sweep entry points, which stop at work-item
// boundaries and report engine.Partial progress in the 504 body.
//
// # Idempotency and retries
//
// Results are cached under the fail-closed content address
// (figure, config, seed, N) hashed by dse.CheckpointKey — the same
// scheme checkpoints key on. The determinism contract (identical
// bytes on every engine at every worker count) makes every POST
// idempotent: a retry with the same body either hits the cache
// (X-Cache: hit, byte-identical body) or recomputes the same bytes.
// 503s are always safe to retry after Retry-After seconds.
//
// # Sharding and merge
//
// A yield study splits across servers with no coordination: POST the
// same body to each with {"shard": k, "of": n} and server k computes
// only the dies with index%n == k (engine.Shard over the shared
// engine), answering a shard-attributed body — {seed, target_ber,
// shard, of, n, completed, dies:[{index, outcome}]} — instead of the
// folded per-sigma points. Because every die is a pure function of
// (key, index), the union of the n responses reassembles the
// unsharded study bit-identically; the shard tests fold them back and
// diff. Shard responses cache independently (the shard spec extends
// the content address), and with Config.CheckpointDir set each shard
// persists the same shard-tagged snapshot oscbench's -shard flag
// writes (yield-<hash>.shardKofN.json), mergeable offline with
// cmd/oscmerge. Malformed specs (shard without of, shard out of
// [0,of), of outside 1..64) are 400 bad_request, never a silently
// unsharded run.
//
// # Shutdown
//
// Drain stops admissions (readyz flips to 503, new jobs get 503
// draining), waits for accepted jobs, and — once the caller's hard
// context fires — cancels running jobs so ctx-aware sweeps stop at an
// item boundary. When Config.CheckpointDir is set, /v1/yield runs
// under a dse.Checkpointer: completed dies are snapshotted atomically,
// so re-POSTing the same study to a restarted server resumes from the
// snapshot and returns a body byte-identical to an uninterrupted run.
package serve
