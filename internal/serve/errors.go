package serve

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/engine"
	"repro/internal/parallel"
)

// ErrorBody is the JSON shape of every non-2xx response. Kind is the
// machine-readable discriminator:
//
//	bad_request — malformed or out-of-range request (400)
//	not_found   — unknown figure or route (404)
//	queue_full  — admission control rejected the job; retry after
//	              Retry-After seconds (503)
//	draining    — the server is shutting down; retry against a fresh
//	              instance (503)
//	deadline    — the request deadline expired mid-sweep; N/Completed
//	              report how far the sweep got before stopping at an
//	              item boundary (504)
//	panic       — a work item panicked; Index names the faulting item
//	              and the server keeps serving other requests (500)
//	internal    — anything else (500)
type ErrorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
	// N and Completed carry engine.Partial sweep attribution for
	// deadline/panic kinds.
	N         int `json:"n,omitempty"`
	Completed int `json:"completed,omitempty"`
	// Index is the faulting work item of a panic kind.
	Index *int `json:"index,omitempty"`
	// RetryAfterSec mirrors the Retry-After header on retryable kinds.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// Retry-After values, in seconds: a full queue clears as fast as one
// job; a draining server needs a restart or a peer.
const (
	retryAfterFull     = 1
	retryAfterDraining = 5
)

// errorStatus maps a job or admission error to its HTTP status and
// JSON body. The mapping is total: anything unrecognized is a 500
// internal.
func errorStatus(err error) (int, ErrorBody) {
	var pe *parallel.PanicError
	var partial *engine.Partial

	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable, ErrorBody{
			Error: err.Error(), Kind: "queue_full", RetryAfterSec: retryAfterFull,
		}
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, ErrorBody{
			Error: err.Error(), Kind: "draining", RetryAfterSec: retryAfterDraining,
		}
	case errors.As(err, &pe):
		// A faulting work item: typed 500 naming the index (engine
		// dispatch attributes the real item; -1 means the panic escaped
		// outside any dispatch). Sweep attribution rides along when the
		// panic came wrapped in a Partial.
		idx := pe.Index
		body := ErrorBody{Error: err.Error(), Kind: "panic", Index: &idx}
		if errors.As(err, &partial) {
			body.N, body.Completed = partial.N, partial.Completed
		}
		return http.StatusInternalServerError, body
	case errors.Is(err, context.DeadlineExceeded):
		body := ErrorBody{Error: err.Error(), Kind: "deadline"}
		if errors.As(err, &partial) {
			body.N, body.Completed = partial.N, partial.Completed
		}
		return http.StatusGatewayTimeout, body
	case errors.Is(err, context.Canceled):
		// A canceled (not deadline-expired) sweep means the server went
		// into hard drain mid-job (a client that vanished never reads
		// this body). The work that completed is checkpointed when the
		// endpoint supports it, so a retry resumes rather than restarts.
		body := ErrorBody{Error: err.Error(), Kind: "draining", RetryAfterSec: retryAfterDraining}
		if errors.As(err, &partial) {
			body.N, body.Completed = partial.N, partial.Completed
		}
		return http.StatusServiceUnavailable, body
	default:
		return http.StatusInternalServerError, ErrorBody{Error: err.Error(), Kind: "internal"}
	}
}
