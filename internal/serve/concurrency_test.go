package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestConcurrentRequestsNeverTorn hammers a deliberately tiny server
// (1 worker, 1 queue slot) with concurrent identical jobs. Every
// response must be one of the typed outcomes — the correct 200 body, a
// 503 backpressure rejection, or a 504 deadline — and 200 bodies must
// all be byte-identical: saturation may shed load but never corrupt a
// response. Run under -race this also proves the queue, cache and LUT
// cache share state safely.
func TestConcurrentRequestsNeverTorn(t *testing.T) {
	s := New(Config{Engine: engine.Serial, Workers: 1, QueueDepth: 1})

	// The correct bytes, established before the stampede.
	want := post(s, "/v1/ber", smallBER)
	if want.Code != http.StatusOK {
		t.Fatalf("reference request = %d: %s", want.Code, want.Body.String())
	}

	// A different body per goroutine class: half hit the cached key,
	// half compute fresh keys through the saturated queue.
	const goroutines = 24
	bodies := make([][]byte, goroutines)
	codes := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := smallBER
			if g%2 == 1 {
				// Fresh content key: forces a real enqueue.
				body = fmt.Sprintf(`{"probe_mw": [0.5], "bits": 1500, "seed": %d}`, g+1)
			}
			rec := post(s, "/v1/ber", body)
			codes[g], bodies[g] = rec.Code, rec.Body.Bytes()
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		switch codes[g] {
		case http.StatusOK:
			var ok berBody
			if err := json.Unmarshal(bodies[g], &ok); err != nil {
				t.Errorf("goroutine %d: torn 200 body %q: %v", g, bodies[g], err)
				continue
			}
			if g%2 == 0 && !bytes.Equal(bodies[g], want.Body.Bytes()) {
				t.Errorf("goroutine %d: 200 body differs from reference", g)
			}
		case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			var e ErrorBody
			if err := json.Unmarshal(bodies[g], &e); err != nil {
				t.Errorf("goroutine %d: torn error body %q: %v", g, bodies[g], err)
				continue
			}
			switch e.Kind {
			case "queue_full", "draining", "deadline":
			default:
				t.Errorf("goroutine %d: unexpected kind %q for %d", g, e.Kind, codes[g])
			}
		default:
			t.Errorf("goroutine %d: status %d, want 200/503/504: %s", g, codes[g], bodies[g])
		}
	}
}

// TestQueueSaturationRejectsTyped guarantees admission control: with
// the single worker pinned by a controlled job and the queue slot
// occupied, an HTTP job gets an immediate typed 503 queue_full with
// Retry-After — not an unbounded goroutine — and admission recovers
// once the queue clears.
func TestQueueSaturationRejectsTyped(t *testing.T) {
	s := New(Config{Engine: engine.Serial, Workers: 1, QueueDepth: 1})

	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Pins the single worker until the test releases it.
		if err := s.queue.Do(context.Background(), func(context.Context) error {
			close(started)
			<-release
			return nil
		}); err != nil {
			t.Errorf("pinned job: %v", err)
		}
	}()
	<-started
	go func() {
		defer wg.Done()
		// Occupies the single queue slot behind the pinned worker.
		if err := s.queue.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
			t.Errorf("queued job: %v", err)
		}
	}()
	waitFor(t, func() bool { return s.queue.Depth() == 1 })

	rec := post(s, "/v1/ber", `{"probe_mw": [0.5], "bits": 1000, "seed": 99}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated POST = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	var e ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Kind != "queue_full" {
		t.Fatalf("saturated body = %s (err %v), want kind queue_full", rec.Body.String(), err)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 queue_full has no Retry-After header")
	}

	close(release)
	wg.Wait()
	if rec := post(s, "/v1/ber", `{"probe_mw": [0.5], "bits": 1000, "seed": 99}`); rec.Code != http.StatusOK {
		t.Errorf("POST after queue cleared = %d, want 200: %s", rec.Code, rec.Body.String())
	}
}

// waitFor polls cond to sidestep sleep-length flakiness.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestConcurrentCacheAccess floods one already-computed key from many
// goroutines: every response must be the identical 200, served without
// racing the cache (run under -race).
func TestConcurrentCacheAccess(t *testing.T) {
	s := New(Config{Engine: engine.Serial, Workers: 2, QueueDepth: 2})
	want := post(s, "/v1/ber", smallBER)
	if want.Code != http.StatusOK {
		t.Fatalf("warm-up = %d", want.Code)
	}

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := post(s, "/v1/ber", smallBER)
			if rec.Code != http.StatusOK {
				errs <- rec.Body.String()
				return
			}
			if !bytes.Equal(rec.Body.Bytes(), want.Body.Bytes()) {
				errs <- "body differs from reference"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("cached read failed: %s", e)
	}
}
