package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// ErrQueueFull is the admission-control rejection: the job queue has
// no free slot. Clients should retry after Retry-After; an identical
// retry is idempotent (the result cache serves it once any attempt
// completes).
var ErrQueueFull = errors.New("serve: job queue full")

// ErrDraining is the shutdown rejection: the server stopped admitting
// jobs and is waiting for in-flight ones to finish or checkpoint.
var ErrDraining = errors.New("serve: server is draining")

// queueJob is one accepted unit of work. state moves queued(0) →
// running(1) exactly once, or queued(0) → abandoned(2) when the
// submitter's context fires before a worker picks it up.
type queueJob struct {
	ctx   context.Context
	run   func(ctx context.Context) error
	state atomic.Int32
	err   error
	done  chan struct{}
}

const (
	jobQueued int32 = iota
	jobRunning
	jobAbandoned
)

// Queue is the bounded job queue behind every compute endpoint: a
// fixed worker pool consuming a fixed-capacity channel. Admission is
// non-blocking — a full queue rejects with ErrQueueFull instead of
// growing goroutines — and drain is cooperative: admissions stop,
// queued jobs still run, and when the drain grace expires every
// running job's context cancels so ctx-aware sweeps stop at an item
// boundary (checkpointing what completed).
type Queue struct {
	mu       sync.Mutex
	draining bool

	jobs     chan *queueJob
	jobWG    sync.WaitGroup // accepted jobs not yet finished or abandoned
	workerWG sync.WaitGroup

	// drainCtx cancels when a drain turns hard; every running job's
	// context is a child of both its request context and this one.
	drainCtx    context.Context
	drainCancel context.CancelFunc

	running atomic.Int64
}

// NewQueue starts a queue with `workers` concurrent jobs and room for
// `capacity` more waiting. Both are clamped to at least 1 (and 0
// waiting slots is allowed: capacity < 0 clamps to 0).
func NewQueue(workers, capacity int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if capacity < 0 {
		capacity = 0
	}
	q := &Queue{jobs: make(chan *queueJob, capacity)}
	q.drainCtx, q.drainCancel = context.WithCancel(context.Background())
	for i := 0; i < workers; i++ {
		q.workerWG.Add(1)
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.workerWG.Done()
	for j := range q.jobs {
		if !j.state.CompareAndSwap(jobQueued, jobRunning) {
			q.jobWG.Done() // abandoned while queued; submitter is gone
			continue
		}
		q.running.Add(1)
		jctx, cancel := context.WithCancel(j.ctx)
		stopAfter := context.AfterFunc(q.drainCtx, cancel)
		// A panic escaping the job must not kill the worker (the pool
		// would shrink silently) nor hang the submitter: capture it as
		// the typed error the engine layer uses. Index -1 marks "not an
		// engine item" — engine-dispatched panics surface as errors with
		// their real index before reaching here.
		if pe := parallel.Capture(0, -1, func() { j.err = j.run(jctx) }); pe != nil {
			j.err = pe
		}
		stopAfter()
		cancel()
		q.running.Add(-1)
		close(j.done)
		q.jobWG.Done()
	}
}

// Do admits run onto the queue and waits for it. It returns
// ErrDraining or ErrQueueFull without running anything when admission
// fails; ctx.Err() when the submitter's context fires while the job
// is still queued (the job is abandoned, never run); otherwise the
// job's own error. When ctx fires mid-run, Do still waits: the job's
// context is a child of ctx, so ctx-aware work stops at its next item
// boundary and reports how far it got — the caller always observes a
// complete, settled outcome, never a torn one.
func (q *Queue) Do(ctx context.Context, run func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	j := &queueJob{ctx: ctx, run: run, done: make(chan struct{})}
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return ErrDraining
	}
	select {
	case q.jobs <- j:
		q.jobWG.Add(1)
		q.mu.Unlock()
	default:
		q.mu.Unlock()
		return ErrQueueFull
	}
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		if j.state.CompareAndSwap(jobQueued, jobAbandoned) {
			return ctx.Err()
		}
		<-j.done
		return j.err
	}
}

// Drain stops admissions and waits for every accepted job. Until
// hardCtx fires, queued and running jobs finish normally; once it
// fires, every running job's context cancels so ctx-aware sweeps stop
// at an item boundary (and checkpoint). Drain returns when the queue
// is empty and all workers have exited. It is idempotent.
func (q *Queue) Drain(hardCtx context.Context) {
	if hardCtx == nil {
		hardCtx = context.Background()
	}
	q.mu.Lock()
	first := !q.draining
	if first {
		q.draining = true
		// No sends can follow: Do checks draining under this mutex.
		close(q.jobs)
	}
	q.mu.Unlock()
	stop := context.AfterFunc(hardCtx, q.drainCancel)
	defer stop()
	q.jobWG.Wait()
	q.workerWG.Wait()
	if first {
		q.drainCancel()
	}
}

// Draining reports whether admissions have stopped.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// Depth is the number of jobs waiting for a worker right now.
func (q *Queue) Depth() int { return len(q.jobs) }

// Running is the number of jobs executing right now.
func (q *Queue) Running() int { return int(q.running.Load()) }

// Capacity is the waiting-room size the queue was built with.
func (q *Queue) Capacity() int { return cap(q.jobs) }
