package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dse"
)

// cacheKey renders the content address of a response: the same
// fail-closed (figure, config, seed, N) scheme dse checkpoints key on,
// hashed with dse.CheckpointKey.Hash. Two requests with equal keys are
// guaranteed the same bytes by the repo's determinism contract (every
// result depends only on explicit config and derived seeds), which is
// what makes retries idempotent and responses shareable across
// engines and worker counts.
func cacheKey(figure, config string, seed uint64, n int) string {
	return dse.CheckpointKey{Figure: figure, Config: config, Seed: seed, N: n}.Hash()
}

// entry is one cached response: exactly the status, content type and
// body a fresh computation produced.
type entry struct {
	status      int
	contentType string
	body        []byte
}

// Cache is the bounded content-addressed result cache. Eviction is
// strict FIFO by first insertion — deterministic, no map-iteration
// order anywhere — and lookups/stores are safe under concurrent
// handler traffic.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]entry
	order   []string // insertion order, oldest first

	hits, misses atomic.Int64
}

// NewCache builds a cache holding at most max entries; max < 1
// disables caching (every Get misses, every Put is dropped).
func NewCache(max int) *Cache {
	return &Cache{max: max, entries: make(map[string]entry)}
}

// Get returns the cached response for key, counting the hit or miss.
func (c *Cache) Get(key string) (entry, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// Put stores a response under key, evicting the oldest entry when
// full. Storing an existing key overwrites in place (the bytes are
// identical by the determinism contract, so this is a no-op in
// content terms).
func (c *Cache) Put(key string, e entry) {
	if c.max < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; exists {
		c.entries[key] = e
		return
	}
	if len(c.order) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = e
	c.order = append(c.order, key)
}

// Len is the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports cumulative lookup counters.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// configString renders key=value pairs into the deterministic config
// half of a cache key. Callers pass alternating name, value pairs.
func configString(pairs ...any) string {
	s := ""
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v=%v", pairs[i], pairs[i+1])
	}
	return s
}
