package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"net/http"
	"strings"

	img "repro/internal/image"
)

// imageSource selects the input image: a synthetic generator (sized
// here) or an uploaded binary PGM, base64-encoded. Exactly one of
// Synth and PGMBase64 must be set.
type imageSource struct {
	Synth  string `json:"synth,omitempty"` // gradient | radial | checkerboard
	Width  int    `json:"width,omitempty"`
	Height int    `json:"height,omitempty"`
	// Checkerboard shape (ignored by the other generators).
	Cell  int   `json:"cell,omitempty"`
	Dark  uint8 `json:"dark,omitempty"`
	Light uint8 `json:"light,omitempty"`

	PGMBase64 string `json:"pgm_base64,omitempty"`
}

// imageRequest is the POST /v1/image/{gamma,edge} body. Gamma, Degree
// and SpacingNM apply to the gamma endpoint only.
type imageRequest struct {
	Source    imageSource `json:"source"`
	Gamma     float64     `json:"gamma,omitempty"`
	Degree    int         `json:"degree,omitempty"`
	SpacingNM float64     `json:"spacing_nm,omitempty"`
	StreamLen int         `json:"stream_len,omitempty"`
	Seed      uint64      `json:"seed,omitempty"`
	// Format selects the response: "json" (default) wraps the result
	// as base64 PGM plus quality metrics; "pgm" streams the raw binary
	// PGM with content type image/x-portable-graymap.
	Format    string `json:"format,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// imageBody is the format:"json" success response. PSNR and MAE
// compare against the exact (float) operator applied to the same
// source, mirroring the paper's quality metrics.
type imageBody struct {
	Op        string  `json:"op"`
	Width     int     `json:"width"`
	Height    int     `json:"height"`
	PGMBase64 string  `json:"pgm_base64"`
	PSNR      float64 `json:"psnr_db"`
	MAE       float64 `json:"mae"`
}

// Image caps: interactive work, bounded so one request cannot pin a
// worker for minutes.
const (
	maxImagePixels    = 1 << 22 // 4 Mpx
	maxImageStreamLen = 1 << 20
	maxImageUpload    = 8 << 20 // bytes of decoded PGM

	defaultImageGamma     = 0.45
	defaultImageDegree    = 6
	defaultImageSpacingNM = 0.3
	defaultImageStreamLen = 1024
	defaultImageSeed      = 13
)

// handleImage serves both POST /v1/image/gamma and /v1/image/edge;
// the operator is the last path segment.
func (s *Server) handleImage(w http.ResponseWriter, r *http.Request) {
	op := r.URL.Path[strings.LastIndex(r.URL.Path, "/")+1:]
	var req imageRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	applyImageDefaults(&req)
	if err := validateImage(op, req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	src, srcDesc, err := resolveSource(req.Source)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}

	cfg := configString(
		"src", srcDesc, "gamma", req.Gamma, "degree", req.Degree,
		"spacing", req.SpacingNM, "stream", req.StreamLen, "format", req.Format,
	)
	ck := cacheKey("image/"+op, cfg, req.Seed, src.W*src.H)
	s.runCached(w, r, ck, req.TimeoutMS, func(ctx context.Context) (entry, error) {
		var out, exact *img.Gray
		var jerr error
		switch op {
		case "gamma":
			frames, ferr := img.GammaVideoCtx(ctx, s.eng, []*img.Gray{src},
				req.Gamma, req.Degree, req.SpacingNM, req.StreamLen, req.Seed, &s.lut)
			if ferr != nil {
				return entry{}, ferr
			}
			out, exact = frames[0], img.GammaExact(src, req.Gamma)
		case "edge":
			out, jerr = img.RobertsCrossSCOn(s.eng, src, req.StreamLen, req.Seed)
			if jerr != nil {
				return entry{}, jerr
			}
			exact = img.RobertsCrossExact(src)
		}
		if req.Format == "pgm" {
			return pgmEntry(out)
		}
		var pgm bytes.Buffer
		if werr := out.WritePGM(&pgm); werr != nil {
			return entry{}, werr
		}
		return jsonEntry(imageBody{
			Op:        op,
			Width:     out.W,
			Height:    out.H,
			PGMBase64: base64.StdEncoding.EncodeToString(pgm.Bytes()),
			PSNR:      img.PSNR(exact, out),
			MAE:       img.MeanAbsoluteError(exact, out),
		})
	})
}

// pgmEntry renders a result image as a raw binary PGM response.
func pgmEntry(g *img.Gray) (entry, error) {
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		return entry{}, err
	}
	return entry{status: http.StatusOK, contentType: "image/x-portable-graymap", body: buf.Bytes()}, nil
}

func applyImageDefaults(req *imageRequest) {
	if req.Gamma == 0 {
		req.Gamma = defaultImageGamma
	}
	if req.Degree == 0 {
		req.Degree = defaultImageDegree
	}
	if req.SpacingNM == 0 {
		req.SpacingNM = defaultImageSpacingNM
	}
	if req.StreamLen == 0 {
		req.StreamLen = defaultImageStreamLen
	}
	if req.Seed == 0 {
		req.Seed = defaultImageSeed
	}
	if req.Format == "" {
		req.Format = "json"
	}
	if req.Source.Synth != "" {
		if req.Source.Width == 0 {
			req.Source.Width = 64
		}
		if req.Source.Height == 0 {
			req.Source.Height = 48
		}
		if req.Source.Synth == "checkerboard" {
			if req.Source.Cell == 0 {
				req.Source.Cell = 6
			}
			if req.Source.Dark == 0 && req.Source.Light == 0 {
				req.Source.Dark, req.Source.Light = 40, 210
			}
		}
	}
}

func validateImage(op string, req imageRequest) error {
	if req.Format != "json" && req.Format != "pgm" {
		return fmt.Errorf("format %q: need json or pgm", req.Format)
	}
	if req.StreamLen < 1 || req.StreamLen > maxImageStreamLen {
		return fmt.Errorf("stream_len %d: need 1..%d", req.StreamLen, maxImageStreamLen)
	}
	if op == "gamma" {
		if !(req.Gamma > 0) {
			return fmt.Errorf("gamma %g: need > 0", req.Gamma)
		}
		if req.Degree < 1 || req.Degree > 64 {
			return fmt.Errorf("degree %d: need 1..64", req.Degree)
		}
		if !(req.SpacingNM > 0) {
			return fmt.Errorf("spacing_nm %g: need > 0", req.SpacingNM)
		}
	}
	return nil
}

// resolveSource materializes the input image and a deterministic
// textual descriptor for the cache key. Uploaded images are described
// by their full base64 text: the key hash absorbs it, so two uploads
// share a cache entry exactly when their bytes match.
func resolveSource(src imageSource) (*img.Gray, string, error) {
	switch {
	case src.Synth != "" && src.PGMBase64 != "":
		return nil, "", fmt.Errorf("source.synth and source.pgm_base64 are mutually exclusive")
	case src.PGMBase64 != "":
		raw, err := base64.StdEncoding.DecodeString(src.PGMBase64)
		if err != nil {
			return nil, "", fmt.Errorf("decoding source.pgm_base64: %w", err)
		}
		if len(raw) > maxImageUpload {
			return nil, "", fmt.Errorf("source image %d bytes: max %d", len(raw), maxImageUpload)
		}
		g, err := img.ReadPGM(bytes.NewReader(raw))
		if err != nil {
			return nil, "", fmt.Errorf("parsing source PGM: %w", err)
		}
		if g.W*g.H > maxImagePixels {
			return nil, "", fmt.Errorf("source image %dx%d: max %d pixels", g.W, g.H, maxImagePixels)
		}
		return g, "pgm:" + src.PGMBase64, nil
	case src.Synth != "":
		if src.Width < 1 || src.Height < 1 || src.Width*src.Height > maxImagePixels {
			return nil, "", fmt.Errorf("synth size %dx%d: need positive dims, max %d pixels", src.Width, src.Height, maxImagePixels)
		}
		desc := fmt.Sprintf("synth:%s:%dx%d:%d:%d:%d", src.Synth, src.Width, src.Height, src.Cell, src.Dark, src.Light)
		switch src.Synth {
		case "gradient":
			return img.Gradient(src.Width, src.Height), desc, nil
		case "radial":
			return img.Radial(src.Width, src.Height), desc, nil
		case "checkerboard":
			if src.Cell < 1 {
				return nil, "", fmt.Errorf("source.cell %d: need >= 1", src.Cell)
			}
			return img.Checkerboard(src.Width, src.Height, src.Cell, src.Dark, src.Light), desc, nil
		default:
			return nil, "", fmt.Errorf("source.synth %q: need gradient, radial or checkerboard", src.Synth)
		}
	default:
		return nil, "", fmt.Errorf("source needs synth or pgm_base64")
	}
}
