package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/figures"
)

// figureInfo is one row of the GET /v1/figures listing.
type figureInfo struct {
	Key   string `json:"key"`
	Title string `json:"title"`
}

// figureListBody is the GET /v1/figures response.
type figureListBody struct {
	Figures []figureInfo `json:"figures"`
}

// handleFigureList reports the registry, sorted by key so the listing
// is deterministic.
func (s *Server) handleFigureList(w http.ResponseWriter, _ *http.Request) {
	var body figureListBody
	for _, key := range figures.SortedKeys() {
		f, _ := figures.Get(key)
		body.Figures = append(body.Figures, figureInfo{Key: f.Key, Title: f.Title})
	}
	s.writeJSON(w, http.StatusOK, body)
}

// figureRequest is the POST /v1/figures/{key} body; every field is
// optional (zero = registry default).
type figureRequest struct {
	Grid      int   `json:"grid,omitempty"`
	Sweep     int   `json:"sweep,omitempty"`
	Samples   int   `json:"samples,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// figureBody is the success response: the figure's deterministic text
// rendering, identical on every engine at every worker count.
type figureBody struct {
	Figure string `json:"figure"`
	Title  string `json:"title"`
	Output string `json:"output"`
}

// Request caps: a figure render is interactive work, not a bulk
// campaign; bulk shapes belong on /v1/yield where they checkpoint.
const (
	maxFigureGrid    = 64
	maxFigureSweep   = 256
	maxFigureSamples = 100_000
)

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	fig, ok := figures.Get(key)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, ErrorBody{
			Error: fmt.Sprintf("unknown figure %q (available: %s)", key, strings.Join(figures.SortedKeys(), ", ")),
			Kind:  "not_found",
		})
		return
	}
	var req figureRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	cfg := figures.Defaults()
	if req.Grid != 0 {
		cfg.GridN = req.Grid
	}
	if req.Sweep != 0 {
		cfg.SweepN = req.Sweep
	}
	if req.Samples != 0 {
		cfg.Samples = req.Samples
	}
	if err := cfg.Validate(); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	if cfg.GridN > maxFigureGrid || cfg.SweepN > maxFigureSweep || cfg.Samples > maxFigureSamples {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{
			Error: fmt.Sprintf("request exceeds figure caps (grid <= %d, sweep <= %d, samples <= %d)",
				maxFigureGrid, maxFigureSweep, maxFigureSamples),
			Kind: "bad_request",
		})
		return
	}
	cfg.Engine = s.eng

	ck := cacheKey("figure/"+key, configString("grid", cfg.GridN, "sweep", cfg.SweepN, "samples", cfg.Samples), 0, 1)
	s.runCached(w, r, ck, req.TimeoutMS, func(ctx context.Context) (entry, error) {
		var out bytes.Buffer
		if err := fig.Render(ctx, &out, cfg); err != nil {
			return entry{}, err
		}
		return jsonEntry(figureBody{Figure: fig.Key, Title: fig.Title, Output: out.String()})
	})
}
