package image

import (
	"testing"
)

func TestRobertsCrossExactOnStep(t *testing.T) {
	// A vertical step edge: detector fires along the boundary only.
	img := NewGray(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			img.Set(x, y, 255)
		}
	}
	e := RobertsCrossExact(img)
	// Column 3/4 boundary: both diagonal differences are 1 for
	// pixels straddling the edge.
	if e.At(3, 2) < 200 {
		t.Errorf("edge response %d at boundary", e.At(3, 2))
	}
	// Flat regions: zero response.
	if e.At(0, 0) != 0 || e.At(6, 3) != 0 {
		t.Errorf("flat response %d / %d", e.At(0, 0), e.At(6, 3))
	}
}

func TestRobertsCrossSCMatchesExact(t *testing.T) {
	src := Checkerboard(16, 16, 4, 40, 210)
	exact := RobertsCrossExact(src)
	sc, err := RobertsCrossSC(src, 2048, 9)
	if err != nil {
		t.Fatal(err)
	}
	// The SC detector must agree within a few gray levels on
	// average; correlated XOR makes |a-b| exact up to stream
	// quantization.
	if mae := MeanAbsoluteError(exact, sc); mae > 6 {
		t.Errorf("SC edge MAE = %.2f levels", mae)
	}
	if psnr := PSNR(exact, sc); psnr < 25 {
		t.Errorf("SC edge PSNR = %.1f dB", psnr)
	}
}

func TestRobertsCrossSCEdgesFire(t *testing.T) {
	img := NewGray(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			img.Set(x, y, 255)
		}
	}
	e, err := RobertsCrossSC(img, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.At(3, 2) < 180 {
		t.Errorf("SC edge response %d", e.At(3, 2))
	}
	if e.At(0, 0) > 20 {
		t.Errorf("SC flat response %d", e.At(0, 0))
	}
}

func TestRobertsCrossGradientQuiet(t *testing.T) {
	// A gentle ramp has small derivatives: responses stay low.
	src := Gradient(64, 8)
	e := RobertsCrossExact(src)
	for x := 0; x < 62; x++ {
		if e.At(x, 3) > 10 {
			t.Fatalf("ramp response %d at x=%d", e.At(x, 3), x)
		}
	}
}

func TestRobertsCrossSCErrors(t *testing.T) {
	src := Checkerboard(8, 8, 2, 0, 255)
	if _, err := RobertsCrossSC(src, 0, 1); err == nil {
		t.Error("packed: zero stream length accepted")
	}
	if _, err := RobertsCrossSC(src, -5, 1); err == nil {
		t.Error("packed: negative stream length accepted")
	}
	if _, err := RobertsCrossSCSerial(src, 0, 1); err == nil {
		t.Error("serial: zero stream length accepted")
	}
}

// TestRobertsCrossSCDegenerateDims: images with no interior 2x2
// window come back all dark without touching the engine.
func TestRobertsCrossSCDegenerateDims(t *testing.T) {
	for _, dims := range [][2]int{{1, 8}, {8, 1}, {1, 1}} {
		out, err := RobertsCrossSC(NewGray(dims[0], dims[1]), 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range out.Pix {
			if p != 0 {
				t.Fatalf("%dx%d: pixel %d = %d", dims[0], dims[1], i, p)
			}
		}
	}
}

// TestImageQualityRegression pins the PSNR of both canonical image
// workloads at fixed seeds, so engine rewrites cannot silently degrade
// quality: both paths are deterministic, and these floors sit a few
// dB under the measured 47.4 dB (edge) and 39.3 dB (gamma).
func TestImageQualityRegression(t *testing.T) {
	edgeSrc := Checkerboard(64, 64, 8, 30, 220)
	sc, err := RobertsCrossSC(edgeSrc, 2048, 7)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := PSNR(RobertsCrossExact(edgeSrc), sc); psnr < 44 {
		t.Errorf("edge PSNR regressed to %.2f dB", psnr)
	}

	gammaSrc := Gradient(128, 4)
	g, err := GammaReSC(gammaSrc, 0.45, 6, 4096, 11)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := PSNR(GammaExact(gammaSrc, 0.45), g); psnr < 36 {
		t.Errorf("gamma PSNR regressed to %.2f dB", psnr)
	}
}
