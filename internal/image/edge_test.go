package image

import (
	"testing"
)

func TestRobertsCrossExactOnStep(t *testing.T) {
	// A vertical step edge: detector fires along the boundary only.
	img := NewGray(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			img.Set(x, y, 255)
		}
	}
	e := RobertsCrossExact(img)
	// Column 3/4 boundary: both diagonal differences are 1 for
	// pixels straddling the edge.
	if e.At(3, 2) < 200 {
		t.Errorf("edge response %d at boundary", e.At(3, 2))
	}
	// Flat regions: zero response.
	if e.At(0, 0) != 0 || e.At(6, 3) != 0 {
		t.Errorf("flat response %d / %d", e.At(0, 0), e.At(6, 3))
	}
}

func TestRobertsCrossSCMatchesExact(t *testing.T) {
	src := Checkerboard(16, 16, 4, 40, 210)
	exact := RobertsCrossExact(src)
	sc := RobertsCrossSC(src, 2048, 9)
	// The SC detector must agree within a few gray levels on
	// average; correlated XOR makes |a-b| exact up to stream
	// quantization.
	if mae := MeanAbsoluteError(exact, sc); mae > 6 {
		t.Errorf("SC edge MAE = %.2f levels", mae)
	}
	if psnr := PSNR(exact, sc); psnr < 25 {
		t.Errorf("SC edge PSNR = %.1f dB", psnr)
	}
}

func TestRobertsCrossSCEdgesFire(t *testing.T) {
	img := NewGray(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			img.Set(x, y, 255)
		}
	}
	e := RobertsCrossSC(img, 1024, 3)
	if e.At(3, 2) < 180 {
		t.Errorf("SC edge response %d", e.At(3, 2))
	}
	if e.At(0, 0) > 20 {
		t.Errorf("SC flat response %d", e.At(0, 0))
	}
}

func TestRobertsCrossGradientQuiet(t *testing.T) {
	// A gentle ramp has small derivatives: responses stay low.
	src := Gradient(64, 8)
	e := RobertsCrossExact(src)
	for x := 0; x < 62; x++ {
		if e.At(x, 3) > 10 {
			t.Fatalf("ramp response %d at x=%d", e.At(x, 3), x)
		}
	}
}
