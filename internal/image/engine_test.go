package image

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/enginetest"
)

// TestEngineSuite registers every engine-accepting entry point of this
// package into the generic cross-engine equivalence and
// GOMAXPROCS-determinism suite, replacing the former per-path
// MatchesSerial / GOMAXPROCSDeterminism tests. The edge cases keep the
// ragged geometries of the old table: odd dimensions and
// non-word-multiple stream lengths exercise tile remainders and plane
// tails.
func TestEngineSuite(t *testing.T) {
	cases := []enginetest.Case{
		{
			Name: "image.GammaVideoOn",
			Eval: func(e engine.Engine) (any, error) {
				return GammaVideoOn(e, videoFrames(), 0.45, 6, 0.3, 256, 9, nil)
			},
		},
		{
			Name: "image.GammaVideoPerFrameOn",
			Eval: func(e engine.Engine) (any, error) {
				return GammaVideoPerFrameOn(e, videoFrames(), 0.45, 6, 0.3, 256, 9, nil)
			},
		},
		{
			Name: "image.GammaVideoCtx",
			Eval: func(e engine.Engine) (any, error) {
				return GammaVideoCtx(context.Background(), e, videoFrames(), 0.45, 6, 0.3, 256, 9, nil)
			},
		},
	}
	for _, tc := range []struct {
		name            string
		w, h, streamLen int
		seed            uint64
	}{
		{"16x16", 16, 16, 1024, 9},
		{"ragged-tiles", 21, 13, 100, 3}, // stream tail, ragged tiles
		{"one-word", 33, 9, 64, 77},      // exactly one word
		{"single-bit", 5, 30, 1, 5},      // single-bit streams
		{"example", 64, 64, 2048, 7},     // the example's configuration
	} {
		tc := tc
		cases = append(cases, enginetest.Case{
			Name: "image.RobertsCrossSCOn/" + tc.name,
			Eval: func(e engine.Engine) (any, error) {
				src := Checkerboard(tc.w, tc.h, 4, 40, 210)
				return RobertsCrossSCOn(e, src, tc.streamLen, tc.seed)
			},
		})
	}
	enginetest.Run(t, nil, cases)
}

// TestSerialShims pins the X / XSerial surface onto the engine layer:
// each XSerial is exactly XOn on engine.Serial, and each X is XOn on
// the process default.
func TestSerialShims(t *testing.T) {
	src := Checkerboard(21, 13, 4, 40, 210)
	edgeSerial, err := RobertsCrossSCSerial(src, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := RobertsCrossSC(src, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range edgeSerial.Pix {
		if edgeSerial.Pix[i] != edge.Pix[i] {
			t.Fatalf("pixel %d: RobertsCrossSCSerial %d vs RobertsCrossSC %d", i, edgeSerial.Pix[i], edge.Pix[i])
		}
	}

	frames := videoFrames()
	vidSerial, err := GammaVideoSerial(frames, 0.45, 6, 0.3, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	vid, err := GammaVideo(frames, 0.45, 6, 0.3, 256, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "GammaVideoSerial vs GammaVideo", vidSerial, vid)

	pfSerial, err := GammaVideoPerFrameSerial(frames, 0.45, 6, 0.3, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := GammaVideoPerFrame(frames, 0.45, 6, 0.3, 256, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "GammaVideoPerFrameSerial vs GammaVideoPerFrame", pfSerial, pf)
}

func assertFramesEqual(t *testing.T, name string, want, got []*Gray) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d frames", name, len(want), len(got))
	}
	for f := range want {
		if want[f].W != got[f].W || want[f].H != got[f].H {
			t.Fatalf("%s: frame %d dimensions differ", name, f)
		}
		for i := range want[f].Pix {
			if want[f].Pix[i] != got[f].Pix[i] {
				t.Fatalf("%s: frame %d pixel %d: %d vs %d", name, f, i, want[f].Pix[i], got[f].Pix[i])
			}
		}
	}
}

// TestNilEngineMisuse: all three entry points report a nil engine as a
// clean error (they all have error returns).
func TestNilEngineMisuse(t *testing.T) {
	src := Checkerboard(8, 8, 2, 0, 255)
	if _, err := RobertsCrossSCOn(nil, src, 64, 1); err == nil {
		t.Error("RobertsCrossSCOn(nil) did not error")
	}
	frames := []*Gray{Gradient(8, 8)}
	if _, err := GammaVideoOn(nil, frames, 0.45, 6, 0.3, 64, 1, nil); err == nil {
		t.Error("GammaVideoOn(nil) did not error")
	}
	if _, err := GammaVideoPerFrameOn(nil, frames, 0.45, 6, 0.3, 64, 1, nil); err == nil {
		t.Error("GammaVideoPerFrameOn(nil) did not error")
	}
}
