package image

import (
	"testing"

	"repro/internal/stochastic"
)

// videoFrames returns a small mixed-content frame batch.
func videoFrames() []*Gray {
	return []*Gray{
		Gradient(32, 24),
		Checkerboard(32, 24, 4, 40, 200),
		Radial(32, 24),
		Gradient(16, 16), // frame sizes may vary within a batch
	}
}

// TestGammaVideoDoesNotMutateInput: the batch clones each frame before
// applying the LUT.
func TestGammaVideoDoesNotMutateInput(t *testing.T) {
	frames := videoFrames()
	if _, err := GammaVideo(frames, 0.45, 6, 0.3, 256, 9, nil); err != nil {
		t.Fatal(err)
	}
	if frames[0].Pix[5] != Gradient(32, 24).Pix[5] {
		t.Error("GammaVideo mutated its input frame")
	}
}

// TestGammaVideoPerFrameCacheReplay: replaying a batch through the same
// cache hits every per-frame LUT already built — the returned tables
// are the same pointers, frame for frame.
func TestGammaVideoPerFrameCacheReplay(t *testing.T) {
	frames := videoFrames()
	var cache GammaLUTCache
	if _, err := GammaVideoPerFrame(frames, 0.45, 6, 0.3, 256, 9, &cache); err != nil {
		t.Fatal(err)
	}
	l0, err := cache.OpticalLUT(0.45, 6, 0.3, 256, stochastic.DeriveSeed(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	l0again, err := cache.OpticalLUT(0.45, 6, 0.3, 256, stochastic.DeriveSeed(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	if l0 != l0again {
		t.Error("replay rebuilt a frame LUT that should be cached")
	}
}

// TestGammaVideoPerFrameDecorrelation pins that the derived per-frame
// seeds actually decorrelate: two identical input frames at different
// indices come out with different noise patterns.
func TestGammaVideoPerFrameDecorrelation(t *testing.T) {
	// Same content, different frame index → different derived seed →
	// (deterministically) different quantization noise. A short stream
	// keeps the noise large enough to observe.
	twins := []*Gray{Gradient(32, 24), Gradient(32, 24)}
	out, err := GammaVideoPerFrame(twins, 0.45, 6, 0.3, 32, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range out[0].Pix {
		if out[0].Pix[i] != out[1].Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("identical frames at different indices produced identical noise; per-frame seeds are not decorrelating")
	}
}

// TestGammaLUTCacheReuse: a shared cache returns the same table
// pointer across frames and batches (built once), for both backends,
// and the cached tables match the per-frame builders exactly.
func TestGammaLUTCacheReuse(t *testing.T) {
	var cache GammaLUTCache
	a, err := cache.OpticalLUT(0.45, 6, 0.3, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.OpticalLUT(0.45, 6, 0.3, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated optical recipe rebuilt its LUT")
	}
	other, err := cache.OpticalLUT(0.45, 6, 0.3, 512, 9)
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Error("distinct recipes shared one cache entry")
	}
	r1, err := cache.ReSCLUT(0.45, 6, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cache.ReSCLUT(0.45, 6, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("repeated ReSC recipe rebuilt its LUT")
	}
	if *r1 == *a {
		t.Error("electronic and optical backends share a table but must be keyed apart")
	}

	// Cached tables reproduce the one-shot entry points bit-for-bit.
	src := Gradient(32, 8)
	viaCache := src.Clone()
	applyLUT(viaCache, a)
	direct, err := GammaOptical(src, 0.45, 6, 0.3, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Pix {
		if direct.Pix[i] != viaCache.Pix[i] {
			t.Fatalf("pixel %d: GammaOptical %d vs cached LUT %d", i, direct.Pix[i], viaCache.Pix[i])
		}
	}
	viaCache = src.Clone()
	applyLUT(viaCache, r1)
	directReSC, err := GammaReSC(src, 0.45, 6, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range directReSC.Pix {
		if directReSC.Pix[i] != viaCache.Pix[i] {
			t.Fatalf("pixel %d: GammaReSC %d vs cached LUT %d", i, directReSC.Pix[i], viaCache.Pix[i])
		}
	}
}

func TestGammaVideoErrors(t *testing.T) {
	frames := []*Gray{Gradient(8, 8)}
	if _, err := GammaVideo(frames, 0.45, 6, 0.3, 0, 1, nil); err == nil {
		t.Error("zero stream length accepted")
	}
	if _, err := GammaVideo(frames, -1, 6, 0.3, 256, 1, nil); err == nil {
		t.Error("negative gamma accepted")
	}
	var cache GammaLUTCache
	if _, err := cache.ReSCLUT(0.45, 6, -2, 1); err == nil {
		t.Error("negative stream length accepted by ReSCLUT")
	}
	// An empty batch is not an error — there is just nothing to do.
	out, err := GammaVideo(nil, 0.45, 6, 0.3, 256, 1, nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %d frames", err, len(out))
	}
}

// BenchmarkGammaVideoSerial / BenchmarkGammaVideo measure the
// cross-call amortization: the serial shim builds the gamma state in a
// private per-call cache, while the shared-cache path builds it once
// and replays the LUT across every iteration.
func BenchmarkGammaVideoSerial(b *testing.B) {
	frames := []*Gray{Gradient(64, 64), Radial(64, 64), Checkerboard(64, 64, 8, 30, 220), Gradient(64, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GammaVideoSerial(frames, 0.45, 6, 0.3, 1024, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGammaVideo(b *testing.B) {
	frames := []*Gray{Gradient(64, 64), Radial(64, 64), Checkerboard(64, 64, 8, 30, 220), Gradient(64, 64)}
	var cache GammaLUTCache
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GammaVideo(frames, 0.45, 6, 0.3, 1024, 3, &cache); err != nil {
			b.Fatal(err)
		}
	}
}
