package image

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stochastic"
)

// GammaExact applies v' = 255·(v/255)^gamma per pixel — the reference
// result for PSNR.
func GammaExact(src *Gray, gamma float64) *Gray {
	out := src.Clone()
	var lut [256]uint8
	for v := 0; v < 256; v++ {
		lut[v] = quantize(math.Pow(float64(v)/255, gamma))
	}
	applyLUT(out, &lut)
	return out
}

// GammaReSC applies gamma correction through the electronic ReSC
// baseline: a degree-`degree` Bernstein approximation of x^gamma is
// evaluated stochastically with `streamLen`-bit streams, once per
// distinct gray level.
func GammaReSC(src *Gray, gamma float64, degree, streamLen int, seed uint64) (*Gray, error) {
	poly, _, err := stochastic.GammaCorrection(gamma, degree)
	if err != nil {
		return nil, err
	}
	var lut [256]uint8
	for v := 0; v < 256; v++ {
		unit, err := stochastic.NewReSCWithSeeds(poly, seed+uint64(v)*1315423911)
		if err != nil {
			return nil, err
		}
		got, _ := unit.Evaluate(float64(v)/255, streamLen)
		lut[v] = quantize(got)
	}
	out := src.Clone()
	applyLUT(out, &lut)
	return out, nil
}

// GammaOptical applies gamma correction through the optical
// stochastic-computing unit: the same Bernstein polynomial evaluated
// by a circuit of matching order (designed by MRR-first at the given
// spacing).
func GammaOptical(src *Gray, gamma float64, degree int, spacingNM float64, streamLen int, seed uint64) (*Gray, error) {
	poly, _, err := stochastic.GammaCorrection(gamma, degree)
	if err != nil {
		return nil, err
	}
	p, err := core.MRRFirst(core.MRRFirstSpec{Order: degree, WLSpacingNM: spacingNM})
	if err != nil {
		return nil, err
	}
	c, err := core.NewCircuit(p)
	if err != nil {
		return nil, err
	}
	var lut [256]uint8
	for v := 0; v < 256; v++ {
		unit, err := core.NewUnit(c, poly, seed+uint64(v)*2654435761)
		if err != nil {
			return nil, err
		}
		got, _ := unit.Evaluate(float64(v)/255, streamLen)
		lut[v] = quantize(got)
	}
	out := src.Clone()
	applyLUT(out, &lut)
	return out, nil
}

// PSNR returns the peak signal-to-noise ratio between two images in
// dB (+Inf for identical images). It panics on dimension mismatch.
func PSNR(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("image: PSNR dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// MeanAbsoluteError returns the mean absolute pixel difference.
func MeanAbsoluteError(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		panic("image: MAE dimension mismatch")
	}
	var s float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(a.Pix))
}

func quantize(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}

func applyLUT(img *Gray, lut *[256]uint8) {
	for i, p := range img.Pix {
		img.Pix[i] = lut[p]
	}
}
