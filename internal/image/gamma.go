package image

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stochastic"
)

// GammaExact applies v' = 255·(v/255)^gamma per pixel — the reference
// result for PSNR.
func GammaExact(src *Gray, gamma float64) *Gray {
	out := src.Clone()
	var lut [256]uint8
	for v := 0; v < 256; v++ {
		lut[v] = quantize(math.Pow(float64(v)/255, gamma))
	}
	applyLUT(out, &lut)
	return out
}

// GammaReSC applies gamma correction through the electronic ReSC
// baseline: a degree-`degree` Bernstein approximation of x^gamma is
// evaluated stochastically with `streamLen`-bit streams, once per
// distinct gray level. The 256 levels run through the word-parallel
// batch evaluator with per-level derived randomness. A non-positive
// stream length is an error (it would silently produce a zero image).
func GammaReSC(src *Gray, gamma float64, degree, streamLen int, seed uint64) (*Gray, error) {
	poly, _, err := stochastic.GammaCorrection(gamma, degree)
	if err != nil {
		return nil, err
	}
	if streamLen < 1 {
		return nil, fmt.Errorf("image: stream length %d, need >= 1", streamLen)
	}
	lut, err := rescLUT(poly, streamLen, seed)
	if err != nil {
		return nil, err
	}
	out := src.Clone()
	applyLUT(out, &lut)
	return out, nil
}

// rescLUT evaluates the 256 gray levels through the electronic ReSC
// batch engine and quantizes them into a lookup table — the per-frame
// state GammaReSC builds and GammaLUTCache amortizes. The batch
// randomness is (seed, level-index)-derived, so the table is a pure
// function of its arguments.
func rescLUT(poly stochastic.BernsteinPoly, streamLen int, seed uint64) ([256]uint8, error) {
	got, err := stochastic.EvaluateBatch(poly, grayLevels(), streamLen, seed)
	if err != nil {
		return [256]uint8{}, err
	}
	return quantizeLUT(got), nil
}

// grayLevels returns the 256 normalized gray levels v/255.
func grayLevels() []float64 {
	xs := make([]float64, 256)
	for v := range xs {
		xs[v] = float64(v) / 255
	}
	return xs
}

// quantizeLUT quantizes 256 evaluated levels into a lookup table.
func quantizeLUT(levels []float64) (lut [256]uint8) {
	for v, got := range levels {
		lut[v] = quantize(got)
	}
	return lut
}

// GammaOptical applies gamma correction through the optical
// stochastic-computing unit: the same Bernstein polynomial evaluated
// by a circuit of matching order (designed by MRR-first at the given
// spacing). The 256 gray levels fan out over the unit's multi-core
// batch evaluator, each level with randomness derived from its index.
// A non-positive stream length is an error (it would silently produce
// a zero image).
func GammaOptical(src *Gray, gamma float64, degree int, spacingNM float64, streamLen int, seed uint64) (*Gray, error) {
	poly, _, err := stochastic.GammaCorrection(gamma, degree)
	if err != nil {
		return nil, err
	}
	if streamLen < 1 {
		return nil, fmt.Errorf("image: stream length %d, need >= 1", streamLen)
	}
	lut, err := opticalLUT(poly, degree, spacingNM, streamLen, seed)
	if err != nil {
		return nil, err
	}
	out := src.Clone()
	applyLUT(out, &lut)
	return out, nil
}

// opticalLUT sizes a circuit of matching order at the given spacing
// and evaluates the 256 gray levels through the optical unit's batch
// engine — the per-frame state GammaOptical builds and GammaLUTCache
// amortizes. The unit's batch randomness is (seed, level-index)-
// derived, so the table is a pure function of its arguments.
func opticalLUT(poly stochastic.BernsteinPoly, degree int, spacingNM float64, streamLen int, seed uint64) ([256]uint8, error) {
	p, err := core.MRRFirst(core.MRRFirstSpec{Order: degree, WLSpacingNM: spacingNM})
	if err != nil {
		return [256]uint8{}, err
	}
	c, err := core.NewCircuit(p)
	if err != nil {
		return [256]uint8{}, err
	}
	unit, err := core.NewUnit(c, poly, seed)
	if err != nil {
		return [256]uint8{}, err
	}
	return quantizeLUT(unit.EvaluateBatch(grayLevels(), streamLen)), nil
}

// PSNR returns the peak signal-to-noise ratio between two images in
// dB (+Inf for identical images). It panics on dimension mismatch.
func PSNR(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("image: PSNR dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// MeanAbsoluteError returns the mean absolute pixel difference.
func MeanAbsoluteError(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		panic("image: MAE dimension mismatch")
	}
	var s float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(a.Pix))
}

func quantize(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}

func applyLUT(img *Gray, lut *[256]uint8) {
	for i, p := range img.Pix {
		img.Pix[i] = lut[p]
	}
}
