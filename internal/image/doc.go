// Package image provides the error-tolerant image-processing
// applications the paper motivates stochastic computing with (§V.C):
// a minimal grayscale image type with PGM I/O, synthetic test-image
// generators, and the two canonical SC workloads — gamma correction
// and Robert's-cross edge detection — each computed exactly and
// stochastically, with PSNR against the exact result as the quality
// metric.
//
// Gamma correction maps gray levels to probabilities as v/255 and
// evaluates a degree-6 Bernstein approximation of x^gamma once per
// distinct level through the word-parallel batch engines (GammaReSC,
// GammaOptical), applying the result as a lookup table. That table is
// a pure function of its recipe — batch randomness is (seed, level)-
// derived — so video-style workloads amortize it across frames:
// GammaLUTCache memoizes the coefficient fit, the circuit solve and
// the quantized LUT per (gamma, degree, spacing, streamLen, seed),
// and GammaVideo corrects a whole frame batch through one cached
// table, fanning the per-frame LUT applications over the evaluation
// engine (GammaVideoOn takes the engine explicitly; GammaVideoSerial
// is the engine.Serial shim). Quickstart:
//
//	var cache image.GammaLUTCache
//	out, err := image.GammaVideo(frames, 0.45, 6, 0.3, 1024, 9, &cache)
//
// Edge detection has no LUT shortcut — every pixel window needs its
// own correlated streams — so RobertsCrossSC is a packed tiled
// engine: row bands fan out over the evaluation engine
// (RobertsCrossSCOn takes it explicitly), and each
// worker streams its pixels through word-level plane kernels
// (stochastic.FillAbsDiffPlane, stochastic.MuxPlanes) on per-worker
// scratch, with flat diagonal pairs eliding their RNG draws entirely.
// Per-pixel seeds derive from the pixel index via
// stochastic.DeriveSeed, so the output is bit-identical to the
// bit-serial shim (RobertsCrossSCSerial) on any engine or core count.
// Quickstart:
//
//	src := image.Checkerboard(64, 64, 8, 30, 220)
//	sc, err := image.RobertsCrossSC(src, 4096, 7)   // packed tiled engine
//	psnr := image.PSNR(image.RobertsCrossExact(src), sc)
package image
