// Package image provides the gamma-correction image-processing
// application the paper motivates its 6th-order polynomial evaluation
// with (§V.C): a minimal grayscale image type with PGM I/O, synthetic
// test-image generators, and pipelines that apply the gamma transfer
// function three ways — exactly, through the electronic ReSC
// baseline, and through the optical stochastic-computing unit — with
// PSNR against the exact result as the quality metric.
//
// Gray levels map to probabilities as v/255; a stochastic evaluation
// of the degree-6 Bernstein approximation of x^gamma produces the
// corrected level. Because an image has at most 256 distinct levels,
// the pipelines evaluate each level once and apply the result as a
// lookup table, matching how a hardware unit would stream per-level
// bit-streams.
package image
