package image

import (
	"math"

	"repro/internal/stochastic"
)

// Edge detection is the second canonical error-tolerant image
// workload of the SC literature (alongside gamma correction): the
// Robert's-cross operator
//
//	E(x,y) = ½(|P(x,y) − P(x+1,y+1)| + |P(x+1,y) − P(x,y+1)|)
//
// maps onto two XOR gates and a multiplexer when the pixel streams
// share a randomness source: for *correlated* unipolar streams
// XOR computes the absolute difference exactly (see
// stochastic.AbsDiffXOR), and a ½-select MUX averages the two terms.

// RobertsCrossExact computes the operator in floating point.
func RobertsCrossExact(src *Gray) *Gray {
	out := NewGray(src.W, src.H)
	for y := 0; y < src.H-1; y++ {
		for x := 0; x < src.W-1; x++ {
			a := float64(src.At(x, y)) / 255
			b := float64(src.At(x+1, y+1)) / 255
			c := float64(src.At(x+1, y)) / 255
			d := float64(src.At(x, y+1)) / 255
			e := (math.Abs(a-b) + math.Abs(c-d)) / 2
			out.Set(x, y, quantize(e))
		}
	}
	return out
}

// RobertsCrossSC computes the operator stochastically with
// `streamLen`-bit streams. Pixel streams within one 2×2 window share
// one randomness source (maximal correlation) so XOR realizes the
// absolute difference; the two difference streams and the averaging
// select stream are mutually independent.
func RobertsCrossSC(src *Gray, streamLen int, seed uint64) *Gray {
	out := NewGray(src.W, src.H)
	selSNG := stochastic.NewSNG(stochastic.NewSplitMix64(seed ^ 0xD1B54A32D192ED03))
	sel := selSNG.Generate(0.5, streamLen)
	for y := 0; y < src.H-1; y++ {
		for x := 0; x < src.W-1; x++ {
			// One shared source per diagonal pair => correlated
			// streams whose XOR is the absolute difference.
			d1 := absDiffStream(
				float64(src.At(x, y))/255,
				float64(src.At(x+1, y+1))/255,
				streamLen, seed+uint64(y*src.W+x)*2654435761+1)
			d2 := absDiffStream(
				float64(src.At(x+1, y))/255,
				float64(src.At(x, y+1))/255,
				streamLen, seed+uint64(y*src.W+x)*2654435761+2)
			e := stochastic.ScaledAdd(sel, d1, d2)
			out.Set(x, y, quantize(e.Value()))
		}
	}
	return out
}

// absDiffStream builds two maximally correlated streams of values a
// and b from one uniform source and XORs them: value |a−b|.
func absDiffStream(a, b float64, n int, seed uint64) *stochastic.Bitstream {
	src := stochastic.NewSplitMix64(seed)
	sa := stochastic.NewBitstream(n)
	sb := stochastic.NewBitstream(n)
	for i := 0; i < n; i++ {
		r := src.Next()
		if r < a {
			sa.Set(i, 1)
		}
		if r < b {
			sb.Set(i, 1)
		}
	}
	return stochastic.AbsDiffXOR(sa, sb)
}
