package image

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/stochastic"
)

// Edge detection is the second canonical error-tolerant image
// workload of the SC literature (alongside gamma correction): the
// Robert's-cross operator
//
//	E(x,y) = ½(|P(x,y) − P(x+1,y+1)| + |P(x+1,y) − P(x,y+1)|)
//
// maps onto two XOR gates and a multiplexer when the pixel streams
// share a randomness source: for *correlated* unipolar streams
// XOR computes the absolute difference exactly (see
// stochastic.AbsDiffXOR), and a ½-select MUX averages the two terms.

// RobertsCrossExact computes the operator in floating point.
func RobertsCrossExact(src *Gray) *Gray {
	out := NewGray(src.W, src.H)
	for y := 0; y < src.H-1; y++ {
		for x := 0; x < src.W-1; x++ {
			a := float64(src.At(x, y)) / 255
			b := float64(src.At(x+1, y+1)) / 255
			c := float64(src.At(x+1, y)) / 255
			d := float64(src.At(x, y+1)) / 255
			e := (math.Abs(a-b) + math.Abs(c-d)) / 2
			out.Set(x, y, quantize(e))
		}
	}
	return out
}

// selSalt decorrelates the shared averaging-select stream from the
// per-pixel difference streams derived from the same user seed.
const selSalt = 0xD1B54A32D192ED03

// pixelSeeds derives the two per-pixel randomness seeds (one per
// diagonal difference pair) through stochastic.DeriveSeed, so adjacent
// pixels get well-separated generator states rather than the weakly
// spaced states a linear seed+offset scheme would give.
func pixelSeeds(seed uint64, idx int) (uint64, uint64) {
	return stochastic.DeriveSeed(seed, 2*idx), stochastic.DeriveSeed(seed, 2*idx+1)
}

// edgeRowsPerTile is the tile height of the packed engine: tiles are
// bands of rows fanned out over the worker pool, coarse enough to
// amortize scheduling and fine enough to load-balance small images.
const edgeRowsPerTile = 8

// edgeScratch is one worker's reusable plane set: the two
// absolute-difference planes, the averaged output plane and a
// reseedable uniform source. One allocation per worker, zero per
// pixel.
type edgeScratch struct {
	d1, d2, e []uint64
	src       *stochastic.SplitMix64
}

func newEdgeScratch(words int) *edgeScratch {
	buf := make([]uint64, 3*words)
	return &edgeScratch{
		d1:  buf[0*words : 1*words],
		d2:  buf[1*words : 2*words],
		e:   buf[2*words : 3*words],
		src: stochastic.NewSplitMix64(0),
	}
}

// absDiffPlane fills dst with the |va−vb| stream of the correlated
// pixel pair (a, b) seeded by seed. Equal gray levels are elided:
// identically thresholded streams XOR to exactly zero, so flat
// diagonals — most of a natural image — cost no RNG draws, and the
// per-pixel source is discarded either way, so the elision is
// invisible to the oracle contract.
func (s *edgeScratch) absDiffPlane(dst []uint64, a, b uint8, seed uint64, streamLen int) {
	if a == b {
		clear(dst)
		return
	}
	s.src.Reseed(seed)
	stochastic.FillAbsDiffPlane(s.src, float64(a)/255, float64(b)/255, streamLen, dst)
}

// RobertsCrossSCOn computes the operator stochastically with
// `streamLen`-bit streams. Pixel streams within one 2×2 window share
// one randomness source (maximal correlation) so XOR realizes the
// absolute difference; the two difference streams and the averaging
// select stream are mutually independent.
//
// This is the packed tiled engine: row bands are independent work
// items dispatched on the given engine, and each worker streams its
// pixels through word-level plane kernels (stochastic.FillAbsDiffPlane
// / MuxPlanes) on reusable per-worker scratch — no per-pixel Bitstream
// allocations, and flat diagonal pairs elide their RNG draws entirely.
// Every pixel's randomness derives from its index alone (pixelSeeds),
// so the output is bit-identical on every conforming engine and
// deterministic on any GOMAXPROCS. A non-positive stream length is an
// error (it would silently produce a garbage image), as is a nil
// engine. The word-level kernels themselves are pinned against their
// bit-serial definitions by the stochastic package's plane tests.
func RobertsCrossSCOn(e engine.Engine, src *Gray, streamLen int, seed uint64) (*Gray, error) {
	if err := engine.Check(e); err != nil {
		return nil, err
	}
	if streamLen < 1 {
		return nil, fmt.Errorf("image: stream length %d, need >= 1", streamLen)
	}
	out := NewGray(src.W, src.H)
	rows, cols := src.H-1, src.W-1
	if rows < 1 || cols < 1 {
		return out, nil
	}
	words := stochastic.WordsFor(streamLen)
	sel := make([]uint64, words)
	stochastic.FillPlane(stochastic.NewSplitMix64(seed^selSalt), 0.5, streamLen, sel)
	tiles := (rows + edgeRowsPerTile - 1) / edgeRowsPerTile
	workers := e.Workers(tiles)
	scratch := make([]*edgeScratch, workers)
	e.ForWorker(tiles, workers, func(worker, t int) {
		s := scratch[worker]
		if s == nil {
			s = newEdgeScratch(words)
			scratch[worker] = s
		}
		yEnd := (t + 1) * edgeRowsPerTile
		if yEnd > rows {
			yEnd = rows
		}
		for y := t * edgeRowsPerTile; y < yEnd; y++ {
			for x := 0; x < cols; x++ {
				s1, s2 := pixelSeeds(seed, y*src.W+x)
				s.absDiffPlane(s.d1, src.At(x, y), src.At(x+1, y+1), s1, streamLen)
				s.absDiffPlane(s.d2, src.At(x+1, y), src.At(x, y+1), s2, streamLen)
				stochastic.MuxPlanes(s.e, sel, s.d1, s.d2)
				ones := stochastic.PlaneOnes(s.e)
				out.Set(x, y, quantize(float64(ones)/float64(streamLen)))
			}
		}
	})
	return out, nil
}

// RobertsCrossSC is RobertsCrossSCOn on the process-default engine.
func RobertsCrossSC(src *Gray, streamLen int, seed uint64) (*Gray, error) {
	return RobertsCrossSCOn(engine.Default(), src, streamLen, seed)
}

// RobertsCrossSCSerial is the retained serial oracle for
// RobertsCrossSC: the same tiled kernel walked in order on the calling
// goroutine via engine.Serial.
func RobertsCrossSCSerial(src *Gray, streamLen int, seed uint64) (*Gray, error) {
	return RobertsCrossSCOn(engine.Serial, src, streamLen, seed)
}
