package image

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGrayBasics(t *testing.T) {
	g := NewGray(4, 3)
	g.Set(3, 2, 200)
	if g.At(3, 2) != 200 {
		t.Error("Set/At broken")
	}
	c := g.Clone()
	c.Set(0, 0, 9)
	if g.At(0, 0) != 0 {
		t.Error("Clone aliases")
	}
	h := g.Histogram()
	if h[200] != 1 || h[0] != 11 {
		t.Errorf("Histogram = %v...", h[:3])
	}
}

func TestGrayPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero dims", func() { NewGray(0, 5) })
	g := NewGray(2, 2)
	mustPanic("oob", func() { g.At(2, 0) })
}

func TestPGMRoundTripBinary(t *testing.T) {
	src := Gradient(31, 7)
	var buf bytes.Buffer
	if err := src.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != src.W || back.H != src.H {
		t.Fatalf("dims %dx%d", back.W, back.H)
	}
	for i := range src.Pix {
		if src.Pix[i] != back.Pix[i] {
			t.Fatalf("pixel %d: %d vs %d", i, src.Pix[i], back.Pix[i])
		}
	}
}

func TestPGMRoundTripASCII(t *testing.T) {
	src := Checkerboard(8, 8, 2, 10, 240)
	var buf bytes.Buffer
	if err := src.WritePGMASCII(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src.Pix {
		if src.Pix[i] != back.Pix[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

func TestPGMComments(t *testing.T) {
	data := "P2\n# a comment\n2 1\n# another\n255\n7 8\n"
	img, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if img.At(0, 0) != 7 || img.At(1, 0) != 8 {
		t.Errorf("pixels = %v", img.Pix)
	}
}

func TestPGMErrors(t *testing.T) {
	bad := []string{
		"",
		"P3\n1 1\n255\n0\n",
		"P2\n0 1\n255\n",
		"P2\n1 1\n70000\n0\n",
		"P2\n2 1\n255\n1\n",   // missing pixel
		"P2\n1 1\n255\n999\n", // out of range
		"P5\n2 2\n255\nab",    // short raster
	}
	for i, d := range bad {
		if _, err := ReadPGM(strings.NewReader(d)); err == nil {
			t.Errorf("bad PGM %d accepted", i)
		}
	}
}

func TestSynthGenerators(t *testing.T) {
	g := Gradient(256, 2)
	if g.At(0, 0) != 0 || g.At(255, 0) != 255 {
		t.Error("gradient endpoints wrong")
	}
	cb := Checkerboard(4, 4, 2, 5, 250)
	if cb.At(0, 0) != 5 || cb.At(2, 0) != 250 || cb.At(2, 2) != 5 {
		t.Error("checkerboard tiling wrong")
	}
	r := Radial(33, 33)
	if r.At(16, 16) != 255 {
		t.Errorf("radial center = %d", r.At(16, 16))
	}
	if r.At(0, 0) >= r.At(16, 16) {
		t.Error("radial corners not darker")
	}
	// Degenerate cell clamps.
	if got := Checkerboard(2, 2, 0, 0, 255); got.At(0, 0) != 0 || got.At(1, 0) != 255 {
		t.Error("cell clamp broken")
	}
}

func TestGammaExactKnownValues(t *testing.T) {
	src := NewGray(3, 1)
	src.Set(0, 0, 0)
	src.Set(1, 0, 64)
	src.Set(2, 0, 255)
	out := GammaExact(src, 0.45)
	if out.At(0, 0) != 0 || out.At(2, 0) != 255 {
		t.Error("endpoints must be fixed points")
	}
	want := uint8(math.Pow(64.0/255, 0.45)*255 + 0.5)
	if out.At(1, 0) != want {
		t.Errorf("gamma(64) = %d, want %d", out.At(1, 0), want)
	}
}

func TestGammaReSCQuality(t *testing.T) {
	src := Gradient(128, 4)
	exact := GammaExact(src, 0.45)
	got, err := GammaReSC(src, 0.45, 6, 4096, 11)
	if err != nil {
		t.Fatal(err)
	}
	psnr := PSNR(exact, got)
	if psnr < 22 {
		t.Errorf("ReSC gamma PSNR = %.1f dB, want >= 22", psnr)
	}
	if mae := MeanAbsoluteError(exact, got); mae > 8 {
		t.Errorf("ReSC gamma MAE = %.2f levels", mae)
	}
}

func TestGammaOpticalQuality(t *testing.T) {
	src := Gradient(128, 2)
	exact := GammaExact(src, 0.45)
	got, err := GammaOptical(src, 0.45, 6, 0.3, 4096, 12)
	if err != nil {
		t.Fatal(err)
	}
	psnr := PSNR(exact, got)
	if psnr < 22 {
		t.Errorf("optical gamma PSNR = %.1f dB, want >= 22", psnr)
	}
}

func TestGammaOpticalMatchesReSC(t *testing.T) {
	// The optical unit must not be meaningfully worse than the
	// electronic baseline at the same stream length.
	src := Gradient(64, 2)
	exact := GammaExact(src, 0.45)
	ele, err := GammaReSC(src, 0.45, 6, 2048, 21)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := GammaOptical(src, 0.45, 6, 0.3, 2048, 22)
	if err != nil {
		t.Fatal(err)
	}
	pe, po := PSNR(exact, ele), PSNR(exact, opt)
	if po < pe-6 {
		t.Errorf("optical PSNR %.1f far below electronic %.1f", po, pe)
	}
}

func TestGammaErrors(t *testing.T) {
	src := Gradient(8, 2)
	if _, err := GammaReSC(src, -1, 6, 64, 1); err == nil {
		t.Error("negative gamma accepted")
	}
	if _, err := GammaOptical(src, 0.45, 6, 0.001, 64, 1); err == nil {
		t.Error("infeasible spacing accepted")
	}
}

func TestPSNRProperties(t *testing.T) {
	a := Gradient(16, 16)
	if got := PSNR(a, a); !math.IsInf(got, 1) {
		t.Errorf("self PSNR = %g", got)
	}
	b := a.Clone()
	b.Pix[0] ^= 0xFF
	if got := PSNR(a, b); got <= 0 || math.IsInf(got, 1) {
		t.Errorf("perturbed PSNR = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	PSNR(a, NewGray(2, 2))
}
