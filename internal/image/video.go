package image

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/stochastic"
)

// GammaLUTCache is the cross-frame gamma state cache for video-style
// workloads. A single gamma-corrected frame costs a Bernstein
// coefficient fit, an MRR-first circuit solve (optical backend) and
// 256 stochastic stream evaluations; all of that is a pure function of
// the build recipe — batch randomness is (seed, level-index)-derived —
// so repeated frames at one (gamma, degree, spacing, streamLen, seed)
// rebuild identical state. The cache memoizes the quantized 256-level
// lookup table per recipe (coefficient fits shared across recipes
// through a stochastic.GammaCoefCache), turning every frame after the
// first into a pure LUT application with bit-identical pixels.
//
// The zero value is ready to use and safe for concurrent callers;
// per-recipe builds run outside the cache lock, so distinct recipes
// build in parallel while a shared recipe is built exactly once.
// Returned tables are shared and must be treated as read-only.
type GammaLUTCache struct {
	coefs stochastic.GammaCoefCache
	mu    sync.Mutex
	m     map[gammaLUTKey]*gammaLUTEntry
}

type gammaLUTKey struct {
	gamma     float64
	degree    int
	spacingNM float64 // 0 for the electronic ReSC baseline
	streamLen int
	seed      uint64
	optical   bool
}

type gammaLUTEntry struct {
	once sync.Once
	lut  [256]uint8
	err  error
}

// lut returns the memoized table for key, building it on first use
// from the cached coefficient fit and the backend-specific builder.
func (c *GammaLUTCache) lut(key gammaLUTKey, build func(poly stochastic.BernsteinPoly) ([256]uint8, error)) (*[256]uint8, error) {
	if key.streamLen < 1 {
		return nil, fmt.Errorf("image: stream length %d, need >= 1", key.streamLen)
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[gammaLUTKey]*gammaLUTEntry)
	}
	e := c.m[key]
	if e == nil {
		e = &gammaLUTEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		poly, _, err := c.coefs.GammaCorrection(key.gamma, key.degree)
		if err != nil {
			e.err = err
			return
		}
		e.lut, e.err = build(poly)
	})
	if e.err != nil {
		return nil, e.err
	}
	return &e.lut, nil
}

// OpticalLUT returns the cached optical gamma table for the recipe,
// bit-identical to the table GammaOptical builds per frame.
func (c *GammaLUTCache) OpticalLUT(gamma float64, degree int, spacingNM float64, streamLen int, seed uint64) (*[256]uint8, error) {
	key := gammaLUTKey{gamma: gamma, degree: degree, spacingNM: spacingNM, streamLen: streamLen, seed: seed, optical: true}
	return c.lut(key, func(poly stochastic.BernsteinPoly) ([256]uint8, error) {
		return opticalLUT(poly, degree, spacingNM, streamLen, seed)
	})
}

// ReSCLUT returns the cached electronic-baseline gamma table for the
// recipe, bit-identical to the table GammaReSC builds per frame.
func (c *GammaLUTCache) ReSCLUT(gamma float64, degree, streamLen int, seed uint64) (*[256]uint8, error) {
	key := gammaLUTKey{gamma: gamma, degree: degree, streamLen: streamLen, seed: seed}
	return c.lut(key, func(poly stochastic.BernsteinPoly) ([256]uint8, error) {
		return rescLUT(poly, streamLen, seed)
	})
}

// GammaVideoOn applies optical gamma correction to a batch of frames
// — the video-style workload of the photonic-crystal follow-up — and
// returns the corrected frames in order. The gamma state (coefficient
// fit, circuit solve, 256-level LUT) is built once through the cache
// and amortized across the batch; frames are then independent LUT
// applications dispatched on the given engine, so the output is
// bit-identical on every conforming engine and on any core count (the
// table is a pure function of the recipe — TestGammaLUTCacheReuse
// pins it against the per-frame GammaOptical build).
//
// A nil cache builds the state privately for this call; passing a
// shared *GammaLUTCache amortizes it across calls (successive batches,
// interleaved gammas). Frames must be non-nil; a nil engine is an
// error.
func GammaVideoOn(e engine.Engine, frames []*Gray, gamma float64, degree int, spacingNM float64, streamLen int, seed uint64, cache *GammaLUTCache) ([]*Gray, error) {
	return GammaVideoCtx(context.Background(), e, frames, gamma, degree, spacingNM, streamLen, seed, cache)
}

// GammaVideoCtx is GammaVideoOn under cooperative cancellation: a
// fired ctx stops the frame fan-out at a frame boundary and surfaces a
// *engine.Partial (wrapping the context error, or the
// *parallel.PanicError of a faulting frame) instead of frames.
func GammaVideoCtx(ctx context.Context, e engine.Engine, frames []*Gray, gamma float64, degree int, spacingNM float64, streamLen int, seed uint64, cache *GammaLUTCache) ([]*Gray, error) {
	if err := engine.Check(e); err != nil {
		return nil, err
	}
	if cache == nil {
		cache = &GammaLUTCache{}
	}
	lut, err := cache.OpticalLUT(gamma, degree, spacingNM, streamLen, seed)
	if err != nil {
		return nil, err
	}
	out := make([]*Gray, len(frames))
	if err := engine.RunCtx(ctx, e, len(frames), nil, func(i int) {
		f := frames[i].Clone()
		applyLUT(f, lut)
		out[i] = f
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// GammaVideo is GammaVideoOn on the process-default engine.
func GammaVideo(frames []*Gray, gamma float64, degree int, spacingNM float64, streamLen int, seed uint64, cache *GammaLUTCache) ([]*Gray, error) {
	return GammaVideoOn(engine.Default(), frames, gamma, degree, spacingNM, streamLen, seed, cache)
}

// GammaVideoSerial is the retained serial oracle for GammaVideo: the
// same cached build with frames walked in order on the calling
// goroutine via engine.Serial.
func GammaVideoSerial(frames []*Gray, gamma float64, degree int, spacingNM float64, streamLen int, seed uint64) ([]*Gray, error) {
	return GammaVideoOn(engine.Serial, frames, gamma, degree, spacingNM, streamLen, seed, nil)
}

// GammaVideoPerFrameOn is GammaVideoOn with decorrelated stochastic noise
// across frames: frame i evaluates its LUT under the derived seed
// DeriveSeed(seed, i), so quantization error is independent frame to
// frame instead of frozen into one batch-wide pattern (the temporal
// analogue of the per-pixel decorrelation study). The output for a
// given (recipe, base seed, frame index) is still fully deterministic.
//
// Cache economics: the Bernstein coefficient fit depends only on
// (gamma, degree) and is shared across all frame seeds through the
// cache's GammaCoefCache, so the expensive fit happens once per batch;
// each distinct frame index then memoizes its own 256-level table, so
// replaying the batch (or a longer clip at the same base seed) hits
// every LUT already built. Frames are dispatched on the given engine;
// if any fail, the error of the lowest failing frame is returned — a
// deterministic choice, matching dse.SweepErr. A nil engine is an
// error.
func GammaVideoPerFrameOn(e engine.Engine, frames []*Gray, gamma float64, degree int, spacingNM float64, streamLen int, seed uint64, cache *GammaLUTCache) ([]*Gray, error) {
	if err := engine.Check(e); err != nil {
		return nil, err
	}
	if cache == nil {
		cache = &GammaLUTCache{}
	}
	// Fit the shared coefficients before the fan-out so per-frame
	// workers only ever build their own LUT.
	if _, _, err := cache.coefs.GammaCorrection(gamma, degree); err != nil {
		return nil, err
	}
	out := make([]*Gray, len(frames))
	errs := make([]error, len(frames))
	e.For(len(frames), func(i int) {
		lut, err := cache.OpticalLUT(gamma, degree, spacingNM, streamLen, stochastic.DeriveSeed(seed, i))
		if err != nil {
			errs[i] = err
			return
		}
		f := frames[i].Clone()
		applyLUT(f, lut)
		out[i] = f
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// GammaVideoPerFrame is GammaVideoPerFrameOn on the process-default
// engine.
func GammaVideoPerFrame(frames []*Gray, gamma float64, degree int, spacingNM float64, streamLen int, seed uint64, cache *GammaLUTCache) ([]*Gray, error) {
	return GammaVideoPerFrameOn(engine.Default(), frames, gamma, degree, spacingNM, streamLen, seed, cache)
}

// GammaVideoPerFrameSerial is the retained serial oracle for
// GammaVideoPerFrame: the same cached per-frame-seed build with frames
// walked in order on the calling goroutine via engine.Serial.
func GammaVideoPerFrameSerial(frames []*Gray, gamma float64, degree int, spacingNM float64, streamLen int, seed uint64) ([]*Gray, error) {
	return GammaVideoPerFrameOn(engine.Serial, frames, gamma, degree, spacingNM, streamLen, seed, nil)
}
