package image

import "math"

// Gradient returns a horizontal gray ramp, the canonical test pattern
// for transfer-function studies: every gray level appears.
func Gradient(w, h int) *Gray {
	g := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Set(x, y, uint8(x*255/max(1, w-1)))
		}
	}
	return g
}

// Checkerboard returns an alternating-tile pattern with the two given
// gray levels; cell is the tile edge in pixels.
func Checkerboard(w, h, cell int, dark, light uint8) *Gray {
	if cell < 1 {
		cell = 1
	}
	g := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if ((x/cell)+(y/cell))%2 == 0 {
				g.Set(x, y, dark)
			} else {
				g.Set(x, y, light)
			}
		}
	}
	return g
}

// Radial returns a radial brightness falloff (bright center, dark
// corners), a stand-in for vignetted photographs — the content gamma
// correction is typically applied to.
func Radial(w, h int) *Gray {
	g := NewGray(w, h)
	cx, cy := float64(w-1)/2, float64(h-1)/2
	maxR := math.Hypot(cx, cy)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := math.Hypot(float64(x)-cx, float64(y)-cy) / maxR
			v := 255 * (1 - r*r)
			if v < 0 {
				v = 0
			}
			g.Set(x, y, uint8(v+0.5))
		}
	}
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
