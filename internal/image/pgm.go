package image

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Gray is an 8-bit grayscale image in row-major order.
type Gray struct {
	W, H int
	Pix  []uint8
}

// NewGray allocates a zeroed image.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("image: invalid dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y).
func (g *Gray) At(x, y int) uint8 {
	g.check(x, y)
	return g.Pix[y*g.W+x]
}

// Set assigns the pixel at (x, y).
func (g *Gray) Set(x, y int, v uint8) {
	g.check(x, y)
	g.Pix[y*g.W+x] = v
}

func (g *Gray) check(x, y int) {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		panic(fmt.Sprintf("image: pixel (%d,%d) outside %dx%d", x, y, g.W, g.H))
	}
}

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	c := NewGray(g.W, g.H)
	copy(c.Pix, g.Pix)
	return c
}

// Histogram returns the 256-bin gray-level histogram.
func (g *Gray) Histogram() [256]int {
	var h [256]int
	for _, p := range g.Pix {
		h[p]++
	}
	return h
}

// WritePGM encodes the image as binary PGM (P5, maxval 255).
func (g *Gray) WritePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	_, err := w.Write(g.Pix)
	return err
}

// WritePGMASCII encodes the image as ASCII PGM (P2, maxval 255).
func (g *Gray) WritePGMASCII(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P2\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	for y := 0; y < g.H; y++ {
		row := make([]string, g.W)
		for x := 0; x < g.W; x++ {
			row[x] = fmt.Sprint(g.At(x, y))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, " ")); err != nil {
			return err
		}
	}
	return nil
}

// ReadPGM decodes a P2 or P5 PGM stream with maxval <= 255.
func ReadPGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, fmt.Errorf("image: reading magic: %w", err)
	}
	if magic != "P2" && magic != "P5" {
		return nil, fmt.Errorf("image: unsupported PGM magic %q", magic)
	}
	var w, h, maxval int
	for _, dst := range []*int{&w, &h, &maxval} {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, fmt.Errorf("image: reading header: %w", err)
		}
		if _, err := fmt.Sscan(tok, dst); err != nil {
			return nil, fmt.Errorf("image: bad header token %q: %w", tok, err)
		}
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("image: invalid dimensions %dx%d", w, h)
	}
	if maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("image: unsupported maxval %d", maxval)
	}
	img := NewGray(w, h)
	if magic == "P5" {
		if _, err := io.ReadFull(br, img.Pix); err != nil {
			return nil, fmt.Errorf("image: reading raster: %w", err)
		}
		return img, nil
	}
	for i := range img.Pix {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, fmt.Errorf("image: reading pixel %d: %w", i, err)
		}
		var v int
		if _, err := fmt.Sscan(tok, &v); err != nil || v < 0 || v > maxval {
			return nil, fmt.Errorf("image: bad pixel %q", tok)
		}
		img.Pix[i] = uint8(v)
	}
	return img, nil
}

// pgmToken reads the next whitespace-delimited token, skipping
// '#'-comments as the PGM grammar requires.
func pgmToken(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		b, err := br.ReadByte()
		if err != nil {
			if sb.Len() > 0 && err == io.EOF {
				return sb.String(), nil
			}
			return "", err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if sb.Len() > 0 {
				return sb.String(), nil
			}
		default:
			sb.WriteByte(b)
		}
	}
}
