package photonic

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Coupler is a lossless 2×2 directional coupler with field
// self-coupling t (bar) and cross-coupling κ, t² + κ² = 1. Its
// scattering relation for input fields (a, b) is
//
//	out_bar   = t·a + iκ·b
//	out_cross = iκ·a + t·b
//
// — the standard symmetric unitary form (the i encodes the 90° phase
// of evanescent cross-coupling).
type Coupler struct {
	T float64 // self (bar) field coupling
}

// NewCoupler validates t ∈ (0, 1].
func NewCoupler(t float64) (Coupler, error) {
	if t <= 0 || t > 1 {
		return Coupler{}, fmt.Errorf("photonic: coupler t = %g outside (0,1]", t)
	}
	return Coupler{T: t}, nil
}

// Kappa returns the cross-coupling κ = √(1−t²).
func (c Coupler) Kappa() float64 {
	return math.Sqrt(1 - c.T*c.T)
}

// Scatter maps input fields (a, b) to (bar, cross) outputs.
func (c Coupler) Scatter(a, b complex128) (bar, cross complex128) {
	t := complex(c.T, 0)
	ik := complex(0, c.Kappa())
	return t*a + ik*b, ik*a + t*b
}

// Arm is a lossy, phase-accumulating waveguide segment: the field is
// multiplied by A·e^{iφ}.
type Arm struct {
	// Amplitude is the field amplitude transmission (power A²).
	Amplitude float64
	// PhaseRad is the accumulated optical phase.
	PhaseRad float64
}

// Propagate applies the arm to a field.
func (a Arm) Propagate(e complex128) complex128 {
	return e * cmplx.Rect(a.Amplitude, a.PhaseRad)
}

// Splitter5050 is the ideal 3 dB coupler used in the MZI.
var Splitter5050 = Coupler{T: 1 / math.Sqrt2}
