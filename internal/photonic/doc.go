// Package photonic is a first-principles, complex-field model of the
// interferometric devices whose intensity responses the paper quotes
// as closed forms (Eqs. 2–3 and the MZI logic-level model of Eq. 7b).
//
// Where internal/optics implements the paper's intensity equations
// directly, this package builds the same devices from primitive
// elements — directional couplers (2×2 unitary scattering), lossy
// phase-accumulating waveguide segments, and their compositions — and
// derives transmissions from complex field amplitudes:
//
//   - an add-drop micro-ring is a feedback loop between two couplers;
//     its through/drop amplitudes follow either from the closed-form
//     geometric-series sum or from explicit summation over round
//     trips (both provided);
//   - a Mach–Zehnder interferometer is two couplers around two lossy
//     phase arms; its cross-port intensity reproduces the IL/ER
//     behavioural model exactly.
//
// The test suite proves the equivalences:
//
//	|ring.Through|²  == optics.Ring.Through  (paper Eq. 2)
//	|ring.Drop|²     == optics.Ring.Drop     (paper Eq. 3)
//	|mzi.Cross|²     == optics.MZI.TransmissionPhase
//
// making the paper's equations a *theorem* of the interference model
// rather than an assumption of this reproduction.
package photonic
