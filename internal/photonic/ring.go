package photonic

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Ring is an add-drop micro-ring built from two couplers and a lossy
// ring waveguide. Field conventions follow the standard add-drop
// analysis: the input bus couples through Coupler1, the ring
// circulates with single-pass amplitude A and phase θ, and the drop
// bus couples through Coupler2. Half the loop (amplitude √A, phase
// θ/2) lies between the couplers on either side.
type Ring struct {
	Coupler1 Coupler
	Coupler2 Coupler
	// A is the single-pass (full round-trip) field amplitude.
	A float64
}

// NewRing validates the composition.
func NewRing(t1, t2, a float64) (Ring, error) {
	c1, err := NewCoupler(t1)
	if err != nil {
		return Ring{}, fmt.Errorf("photonic: input coupler: %w", err)
	}
	c2, err := NewCoupler(t2)
	if err != nil {
		return Ring{}, fmt.Errorf("photonic: drop coupler: %w", err)
	}
	if a <= 0 || a > 1 {
		return Ring{}, fmt.Errorf("photonic: round-trip amplitude %g outside (0,1]", a)
	}
	return Ring{Coupler1: c1, Coupler2: c2, A: a}, nil
}

// ThroughAmplitude returns the complex through-port field for a unit
// input at single-pass phase θ, using the closed-form sum of the
// internal feedback loop:
//
//	E_t = (t1 − t2·A·e^{iθ}) / (1 − t1·t2·A·e^{iθ})
func (r Ring) ThroughAmplitude(theta float64) complex128 {
	t1 := complex(r.Coupler1.T, 0)
	t2 := complex(r.Coupler2.T, 0)
	loop := complex(r.A, 0) * cmplx.Exp(complex(0, theta))
	return (t1 - t2*loop) / (1 - t1*t2*loop)
}

// DropAmplitude returns the complex drop-port field for a unit input:
//
//	E_d = −κ1·κ2·√A·e^{iθ/2} / (1 − t1·t2·A·e^{iθ})
func (r Ring) DropAmplitude(theta float64) complex128 {
	k1k2 := complex(-r.Coupler1.Kappa()*r.Coupler2.Kappa(), 0)
	half := cmplx.Rect(math.Sqrt(r.A), theta/2)
	t1 := complex(r.Coupler1.T, 0)
	t2 := complex(r.Coupler2.T, 0)
	loop := complex(r.A, 0) * cmplx.Exp(complex(0, theta))
	return k1k2 * half / (1 - t1*t2*loop)
}

// ThroughAmplitudeSeries computes the through field by explicitly
// summing `trips` round-trip contributions — the physical picture the
// closed form collapses: the directly transmitted field plus the
// field that couples in, circulates m times, and couples back out.
//
//	E_t = t1 + (iκ1)·(A e^{iθ})·(iκ1)·Σ_m (t1 t2 A e^{iθ})^m · t2/t1-ish
//
// Worked through the coupler conventions this is
//
//	E_t = t1 − κ1²·t2·A e^{iθ} · Σ_{m≥0} (t1 t2 A e^{iθ})^m
func (r Ring) ThroughAmplitudeSeries(theta float64, trips int) complex128 {
	t1 := complex(r.Coupler1.T, 0)
	t2 := complex(r.Coupler2.T, 0)
	k1 := r.Coupler1.Kappa()
	loop := complex(r.A, 0) * cmplx.Exp(complex(0, theta))
	sum := complex(0, 0)
	pow := complex(1, 0)
	for m := 0; m < trips; m++ {
		sum += pow
		pow *= t1 * t2 * loop
	}
	return t1 - complex(k1*k1, 0)*t2*loop*sum
}

// DropAmplitudeSeries is the round-trip expansion of the drop field.
func (r Ring) DropAmplitudeSeries(theta float64, trips int) complex128 {
	k1k2 := complex(-r.Coupler1.Kappa()*r.Coupler2.Kappa(), 0)
	half := cmplx.Rect(math.Sqrt(r.A), theta/2)
	t1 := complex(r.Coupler1.T, 0)
	t2 := complex(r.Coupler2.T, 0)
	loop := complex(r.A, 0) * cmplx.Exp(complex(0, theta))
	sum := complex(0, 0)
	pow := complex(1, 0)
	for m := 0; m < trips; m++ {
		sum += pow
		pow *= t1 * t2 * loop
	}
	return k1k2 * half * sum
}

// ThroughIntensity and DropIntensity are the power transmissions.
func (r Ring) ThroughIntensity(theta float64) float64 {
	e := r.ThroughAmplitude(theta)
	return real(e)*real(e) + imag(e)*imag(e)
}

// DropIntensity returns |E_d|².
func (r Ring) DropIntensity(theta float64) float64 {
	e := r.DropAmplitude(theta)
	return real(e)*real(e) + imag(e)*imag(e)
}
