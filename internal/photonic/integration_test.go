package photonic

import (
	"math"
	"testing"

	"repro/internal/core"
)

// TestEndToEndProbePathMatchesCoreModel rebuilds the paper circuit's
// worst-case probe path at complex-field level — the probe traversing
// every modulator ring's through port and the filter's drop port —
// and checks the resulting power transmission against
// core.Circuit.ProbeTransmission for every coefficient pattern and
// data state. Because the bus has no reflective elements, amplitude
// products and intensity products must agree exactly; this pins the
// core model to first-principles interference end to end.
func TestEndToEndProbePathMatchesCoreModel(t *testing.T) {
	c := core.MustCircuit(core.PaperParams())
	n := c.P.Order

	// Field-level replicas of the modulator rings and filter.
	rings := make([]Ring, n+1)
	for i, m := range c.Modulators {
		r, err := NewRing(m.SelfCoupling1, m.SelfCoupling2, m.Amplitude)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	filter, err := NewRing(c.Filter.SelfCoupling1, c.Filter.SelfCoupling2, c.Filter.Amplitude)
	if err != nil {
		t.Fatal(err)
	}

	z := make([]int, n+1)
	for pattern := 0; pattern < 1<<(n+1); pattern++ {
		for b := range z {
			z[b] = (pattern >> b) & 1
		}
		for weight := 0; weight <= n; weight++ {
			d := c.FilterShiftNM(weight)
			for i := 0; i <= n; i++ {
				lam := c.P.Lambda(i)
				// Field product along the bus.
				amp := complex(1, 0)
				for w := range rings {
					res := c.Modulators[w].ResonanceNM
					if z[w] != 0 {
						res -= c.P.DeltaLambdaNM
					}
					theta := c.Modulators[w].Phase(lam, res)
					amp *= rings[w].ThroughAmplitude(theta)
				}
				thetaF := c.Filter.Phase(lam, c.P.LambdaRefNM()-d)
				amp *= filter.DropAmplitude(thetaF)
				got := real(amp)*real(amp) + imag(amp)*imag(amp)
				want := c.ProbeTransmission(i, z, d)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("z=%v weight=%d channel=%d: field %g vs core %g",
						z, weight, i, got, want)
				}
			}
		}
	}
}
