package photonic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/optics"
)

func TestCouplerUnitary(t *testing.T) {
	c, err := NewCoupler(0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Power conservation for arbitrary inputs.
	f := func(ar, ai, br, bi float64) bool {
		a := complex(math.Mod(ar, 1), math.Mod(ai, 1))
		b := complex(math.Mod(br, 1), math.Mod(bi, 1))
		bar, cross := c.Scatter(a, b)
		in := intensity(a) + intensity(b)
		out := intensity(bar) + intensity(cross)
		return math.Abs(in-out) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCouplerValidation(t *testing.T) {
	for _, bad := range []float64{0, -0.5, 1.1} {
		if _, err := NewCoupler(bad); err == nil {
			t.Errorf("coupler t=%g accepted", bad)
		}
	}
}

func TestArmPropagation(t *testing.T) {
	a := Arm{Amplitude: 0.5, PhaseRad: math.Pi}
	e := a.Propagate(1)
	if math.Abs(real(e)+0.5) > 1e-12 || math.Abs(imag(e)) > 1e-12 {
		t.Errorf("Propagate = %v, want -0.5", e)
	}
}

// TestRingMatchesPaperEq2And3 is the central cross-validation: the
// complex-field ring reproduces the paper's intensity formulas
// (implemented independently in internal/optics) at every detuning.
func TestRingMatchesPaperEq2And3(t *testing.T) {
	shapes := []struct{ t1, t2, a float64 }{
		{0.95653, 0.977672, 0.9995}, // Fig 5 modulator calibration
		{0.971998, 0.971998, 0.9995},
		{0.97959, 0.98980, 0.9995},
		{0.9, 0.8, 0.99},
	}
	for _, s := range shapes {
		ring, err := NewRing(s.t1, s.t2, s.a)
		if err != nil {
			t.Fatal(err)
		}
		ref := optics.Ring{
			SelfCoupling1: s.t1, SelfCoupling2: s.t2, Amplitude: s.a,
			ResonanceNM: 1550, FSRNM: 10,
		}
		for _, lam := range []float64{1548, 1549.5, 1549.95, 1550, 1550.05, 1551, 1553} {
			theta := ref.Phase(lam, 1550)
			through := ring.ThroughIntensity(theta)
			drop := ring.DropIntensity(theta)
			if w := ref.Through(lam, 1550); math.Abs(through-w) > 1e-12 {
				t.Errorf("t1=%g t2=%g λ=%g: field through %g vs Eq.2 %g", s.t1, s.t2, lam, through, w)
			}
			if w := ref.Drop(lam, 1550); math.Abs(drop-w) > 1e-12 {
				t.Errorf("t1=%g t2=%g λ=%g: field drop %g vs Eq.3 %g", s.t1, s.t2, lam, drop, w)
			}
		}
	}
}

func TestRingSeriesConvergesToClosedForm(t *testing.T) {
	ring, err := NewRing(0.96, 0.97, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0, 0.01, 0.1, math.Pi / 2, math.Pi} {
		ct := ring.ThroughAmplitude(theta)
		cd := ring.DropAmplitude(theta)
		st := ring.ThroughAmplitudeSeries(theta, 400)
		sd := ring.DropAmplitudeSeries(theta, 400)
		if d := intensity(ct - st); d > 1e-18 {
			t.Errorf("θ=%g: through series residual %g", theta, d)
		}
		if d := intensity(cd - sd); d > 1e-18 {
			t.Errorf("θ=%g: drop series residual %g", theta, d)
		}
	}
	// Truncating at a handful of trips is visibly wrong on resonance
	// (the feedback has not built up) — the series really is a loop.
	short := ring.DropAmplitudeSeries(0, 2)
	full := ring.DropAmplitude(0)
	if math.Abs(intensity(short)-intensity(full)) < 0.05 {
		t.Error("2-trip truncation unexpectedly accurate; loop feedback absent?")
	}
}

func TestRingEnergyConservationLossless(t *testing.T) {
	ring, err := NewRing(0.95, 0.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) bool {
		theta := math.Mod(x, 2*math.Pi)
		total := ring.ThroughIntensity(theta) + ring.DropIntensity(theta)
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0, 0.9, 0.99); err == nil {
		t.Error("bad t1 accepted")
	}
	if _, err := NewRing(0.9, 1.5, 0.99); err == nil {
		t.Error("bad t2 accepted")
	}
	if _, err := NewRing(0.9, 0.9, 0); err == nil {
		t.Error("bad amplitude accepted")
	}
}

// TestMZIMatchesBehavioralModel proves the complex MZI's cross-port
// intensity equals optics.MZI.TransmissionPhase at every phase, for
// the paper's device corpus.
func TestMZIMatchesBehavioralModel(t *testing.T) {
	devices := []optics.MZI{
		{ILdB: 4.5, ERdB: 13.22},
		{ILdB: 6.5, ERdB: 7.5},
		{ILdB: 3.0, ERdB: 4.0},
		{ILdB: 7.4, ERdB: 7.6},
	}
	for _, dev := range devices {
		m, err := FromILER(dev.ILFraction(), dev.ERFraction())
		if err != nil {
			t.Fatal(err)
		}
		for phi := 0.0; phi <= math.Pi+1e-9; phi += math.Pi / 32 {
			got := m.CrossIntensity(phi)
			want := dev.TransmissionPhase(phi)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%v φ=%g: field %g vs behavioural %g", dev, phi, got, want)
			}
		}
		// Logic levels of Eq. (7b).
		if got := m.CrossIntensity(0); math.Abs(got-dev.Transmission(0)) > 1e-12 {
			t.Errorf("%v: T(0) field %g", dev, got)
		}
		if got := m.CrossIntensity(math.Pi); math.Abs(got-dev.Transmission(1)) > 1e-12 {
			t.Errorf("%v: T(1) field %g", dev, got)
		}
	}
}

func TestMZIEnergyAccounting(t *testing.T) {
	// Lossless arms: bar + cross = 1 at every phase.
	m, err := NewMZI(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) bool {
		phi := math.Mod(x, 2*math.Pi)
		return math.Abs(m.TotalOutput(phi)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Lossy arms: total output equals the average arm power loss.
	lossy, _ := NewMZI(0.8, 0.6)
	want := (0.8*0.8 + 0.6*0.6) / 2
	if got := lossy.TotalOutput(0.7); math.Abs(got-want) > 1e-12 {
		t.Errorf("lossy total %g, want %g", got, want)
	}
}

func TestMZIComplementaryPorts(t *testing.T) {
	// The bar port peaks where the cross port nulls.
	m, _ := NewMZI(1, 1)
	if got := m.BarIntensity(0); got > 1e-12 {
		t.Errorf("bar at φ=0 = %g, want 0", got)
	}
	if got := m.BarIntensity(math.Pi); math.Abs(got-1) > 1e-12 {
		t.Errorf("bar at φ=π = %g, want 1", got)
	}
}

func TestFromILERValidation(t *testing.T) {
	if _, err := FromILER(0, 0.1); err == nil {
		t.Error("zero IL accepted")
	}
	if _, err := FromILER(1.2, 0.1); err == nil {
		t.Error("IL > 1 accepted")
	}
	if _, err := FromILER(0.5, 1); err == nil {
		t.Error("ER fraction 1 accepted")
	}
	if _, err := FromILER(0.5, -0.1); err == nil {
		t.Error("negative ER accepted")
	}
}

func TestMZIValidation(t *testing.T) {
	if _, err := NewMZI(0, 1); err == nil {
		t.Error("zero arm accepted")
	}
	if _, err := NewMZI(1, 1.1); err == nil {
		t.Error("arm > 1 accepted")
	}
}

func TestRandomRingAgreementProperty(t *testing.T) {
	// Random physical rings: field model vs paper formulas.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t1 := 0.5 + 0.499*rng.Float64()
		t2 := 0.5 + 0.499*rng.Float64()
		a := 0.9 + 0.0999*rng.Float64()
		ring, err := NewRing(t1, t2, a)
		if err != nil {
			return false
		}
		ref := optics.Ring{SelfCoupling1: t1, SelfCoupling2: t2, Amplitude: a, ResonanceNM: 1550, FSRNM: 10}
		theta := rng.Float64() * 2 * math.Pi
		lam := 1550 / (1 + theta/(2*math.Pi*ref.ModeOrder())) // invert phase relation approximately
		_ = lam
		through := ring.ThroughIntensity(theta)
		// Evaluate the reference formula directly from cos θ.
		cos := math.Cos(theta)
		num := a*a*t2*t2 - 2*a*t1*t2*cos + t1*t1
		den := 1 - 2*a*t1*t2*cos + a*a*t1*t1*t2*t2
		return math.Abs(through-num/den) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
