package photonic

import (
	"fmt"
	"math"
)

// MZI is a Mach–Zehnder interferometer: an input coupler, two lossy
// phase arms, and an output coupler. The modulated output is the
// *cross* port, which peaks for equal arm phases and extinguishes at
// a π difference; a finite extinction ratio arises physically from
// coupler imbalance and/or arm loss imbalance, both of which this
// model carries.
type MZI struct {
	C1, C2 Coupler
	// Arm1Amplitude and Arm2Amplitude are the field transmissions of
	// the two arms; the drive phase is applied to arm 1.
	Arm1Amplitude float64
	Arm2Amplitude float64
}

// NewMZI builds an interferometer with 50:50 couplers and the given
// arm amplitudes — the arm-imbalance extinction mechanism.
func NewMZI(a1, a2 float64) (MZI, error) {
	if a1 <= 0 || a1 > 1 || a2 <= 0 || a2 > 1 {
		return MZI{}, fmt.Errorf("photonic: arm amplitudes (%g, %g) outside (0,1]", a1, a2)
	}
	return MZI{C1: Splitter5050, C2: Splitter5050, Arm1Amplitude: a1, Arm2Amplitude: a2}, nil
}

// FromILER constructs an interferometer whose cross-port intensity
// matches a behavioural device with the given insertion loss and
// extinction ratio (linear fractions il ∈ (0,1], er ∈ [0,1)) at
// every drive phase.
//
// With lossless arms and couplers (t1, κ1), (t2, κ2) the cross field
// is i(κ2·t1·e^{iφ} + t2·κ1), so with u = κ2t1 and v = t2κ1:
//
//	cross(0) = (u+v)² = il      cross(π) = (u−v)² = il·er
//
// giving u = (√il + √(il·er))/2, v = (√il − √(il·er))/2. The coupler
// split then solves the quadratic s² − s(1−u²+v²) + v² = 0 for
// s = t2², which has a real root in (0,1) whenever u+v ≤ 1 — i.e.
// for every physical (il, er).
func FromILER(il, er float64) (MZI, error) {
	if il <= 0 || il > 1 {
		return MZI{}, fmt.Errorf("photonic: insertion-loss fraction %g outside (0,1]", il)
	}
	if er < 0 || er >= 1 {
		return MZI{}, fmt.Errorf("photonic: extinction fraction %g outside [0,1)", er)
	}
	u := (math.Sqrt(il) + math.Sqrt(il*er)) / 2
	v := (math.Sqrt(il) - math.Sqrt(il*er)) / 2
	b := 1 - u*u + v*v
	disc := b*b - 4*v*v
	if disc < 0 {
		disc = 0 // u+v <= 1 guarantees disc >= 0 up to rounding
	}
	s := (b + math.Sqrt(disc)) / 2 // t2², the more balanced root
	if s <= 0 || s >= 1 {
		return MZI{}, fmt.Errorf("photonic: no physical coupler split for il=%g er=%g", il, er)
	}
	t2 := math.Sqrt(s)
	t1 := u / math.Sqrt(1-s)
	if t1 <= 0 || t1 > 1 {
		return MZI{}, fmt.Errorf("photonic: derived t1 = %g unphysical", t1)
	}
	c1, err := NewCoupler(t1)
	if err != nil {
		return MZI{}, err
	}
	c2, err := NewCoupler(t2)
	if err != nil {
		return MZI{}, err
	}
	return MZI{C1: c1, C2: c2, Arm1Amplitude: 1, Arm2Amplitude: 1}, nil
}

// fields propagates a unit input through coupler, arms, coupler and
// returns both output fields.
func (m MZI) fields(phi float64) (bar, cross complex128) {
	up, low := m.C1.Scatter(1, 0)
	up = Arm{Amplitude: m.Arm1Amplitude, PhaseRad: phi}.Propagate(up)
	low = Arm{Amplitude: m.Arm2Amplitude}.Propagate(low)
	return m.C2.Scatter(up, low)
}

// CrossAmplitude returns the modulated (cross) output field for a
// drive phase.
func (m MZI) CrossAmplitude(phi float64) complex128 {
	_, cross := m.fields(phi)
	return cross
}

// BarAmplitude returns the complementary (bar) output field.
func (m MZI) BarAmplitude(phi float64) complex128 {
	bar, _ := m.fields(phi)
	return bar
}

// CrossIntensity returns the modulated power transmission.
func (m MZI) CrossIntensity(phi float64) float64 {
	return intensity(m.CrossAmplitude(phi))
}

// BarIntensity returns the complementary power transmission.
func (m MZI) BarIntensity(phi float64) float64 {
	return intensity(m.BarAmplitude(phi))
}

// TotalOutput returns the summed output power: 1 for lossless arms
// (the couplers are unitary); otherwise the coupler-weighted arm
// loss.
func (m MZI) TotalOutput(phi float64) float64 {
	return m.CrossIntensity(phi) + m.BarIntensity(phi)
}

func intensity(e complex128) float64 {
	return real(e)*real(e) + imag(e)*imag(e)
}
