package numeric

import (
	"math"
	"testing"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %g", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %g", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate stats not zero")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %g,%g", min, max)
	}
}

func TestMinMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinMax(nil) did not panic")
		}
	}()
	MinMax(nil)
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 5}
	h := Histogram(xs, 0, 1, 2)
	if h[0] != 3 || h[1] != 3 {
		t.Errorf("Histogram = %v", h)
	}
	h1 := Histogram(xs, 1, 1, 3) // degenerate range
	if h1[0] != len(xs) {
		t.Errorf("degenerate Histogram = %v", h1)
	}
}

func TestErrorMetrics(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 3, 5}
	if got := MeanAbsError(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("MeanAbsError = %g", got)
	}
	want := math.Sqrt((0 + 1 + 4) / 3.0)
	if got := RootMeanSquareError(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %g, want %g", got, want)
	}
	if MeanAbsError(nil, nil) != 0 || RootMeanSquareError(nil, nil) != 0 {
		t.Error("empty metrics not zero")
	}
}

func TestErrorMetricsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	MeanAbsError([]float64{1}, []float64{1, 2})
}
