package numeric

import (
	"math"
	"testing"
)

func TestBisectSimple(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	x, err := Bisect(f, 0, 2, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-10 {
		t.Errorf("Bisect sqrt(2) = %g", x)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	x, err := Bisect(f, 1, 3, 1e-12, 100)
	if err != nil || x != 1 {
		t.Errorf("Bisect endpoint root = %g, err=%v", x, err)
	}
	x, err = Bisect(f, 0, 1, 1e-12, 100)
	if err != nil || x != 1 {
		t.Errorf("Bisect right endpoint root = %g, err=%v", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-9, 100); err != ErrNoBracket {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

func TestBrentAgreesWithBisect(t *testing.T) {
	funcs := []struct {
		name string
		f    func(float64) float64
		a, b float64
	}{
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2},
		{"cos", math.Cos, 1, 2},
		{"cubic", func(x float64) float64 { return x*x*x - x - 2 }, 1, 2},
		{"exp", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3},
	}
	for _, tc := range funcs {
		xb, err1 := Bisect(tc.f, tc.a, tc.b, 1e-13, 200)
		xr, err2 := Brent(tc.f, tc.a, tc.b, 1e-13, 200)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: errs %v %v", tc.name, err1, err2)
		}
		if math.Abs(xb-xr) > 1e-9 {
			t.Errorf("%s: Bisect %g vs Brent %g", tc.name, xb, xr)
		}
		if r := tc.f(xr); math.Abs(r) > 1e-9 {
			t.Errorf("%s: residual %g at Brent root", tc.name, r)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return 1 + x*x }
	if _, err := Brent(f, -1, 1, 1e-9, 100); err != ErrNoBracket {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
}

func TestFindBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	lo, hi, err := FindBracket(f, 0, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !(f(lo) <= 0 && f(hi) >= 0) {
		t.Errorf("bracket [%g,%g] does not straddle root", lo, hi)
	}
	x, err := Bisect(f, lo, hi, 1e-10, 200)
	if err != nil || math.Abs(x-100) > 1e-8 {
		t.Errorf("root via expanded bracket = %g, err=%v", x, err)
	}
}

func TestFindBracketFailure(t *testing.T) {
	f := func(x float64) float64 { return 1.0 }
	if _, _, err := FindBracket(f, 0, 1, 8); err == nil {
		t.Error("expected failure for constant positive function")
	}
	if _, _, err := FindBracket(f, 1, 1, 8); err == nil {
		t.Error("expected failure for empty interval")
	}
}
