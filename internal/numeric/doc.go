// Package numeric provides the numerical substrate used throughout the
// repository: special functions, root finding, one-dimensional
// minimization, dense linear algebra, Bernstein-basis polynomials and
// least-squares function fitting.
//
// The optical stochastic-computing models in internal/core and
// internal/optics need the complementary error function and its
// inverse (bit-error-rate inversion, Eq. 9 of the paper), bracketed
// root finding (minimum-laser-power searches), golden-section
// minimization (optimal wavelength spacing, Fig. 7a), and small dense
// solves (Bernstein coefficient fitting for the gamma-correction
// application). The Go standard library offers math.Erfc but none of
// the rest, so this package implements them from scratch with no
// external dependencies.
//
// All routines operate on float64 and are deterministic; none of them
// allocate beyond their result values unless documented otherwise.
package numeric
