package numeric

import (
	"fmt"
	"math"
)

// BernsteinBasis evaluates the Bernstein basis polynomial
// B_{i,n}(x) = C(n,i) x^i (1-x)^(n-i) on [0, 1].
// It returns 0 for i outside [0, n].
func BernsteinBasis(i, n int, x float64) float64 {
	if i < 0 || i > n {
		return 0
	}
	return Binomial(n, i) * math.Pow(x, float64(i)) * math.Pow(1-x, float64(n-i))
}

// BernsteinEval evaluates the Bernstein-form polynomial with
// coefficients b (degree len(b)-1) at x using de Casteljau's
// algorithm, which is numerically stable on [0, 1].
func BernsteinEval(b []float64, x float64) float64 {
	n := len(b)
	if n == 0 {
		return 0
	}
	w := make([]float64, n)
	copy(w, b)
	for level := 1; level < n; level++ {
		for i := 0; i < n-level; i++ {
			w[i] = w[i]*(1-x) + w[i+1]*x
		}
	}
	return w[0]
}

// PowerToBernstein converts polynomial coefficients from the power
// basis (p[k] multiplies x^k) to the Bernstein basis of the same
// degree. The conversion is exact:
//
//	b_i = sum_{k=0..i} C(i,k)/C(n,k) * p_k
//
// This is how the paper's running example f1(x) = 1/4 + 9/8 x -
// 15/8 x^2 + 5/4 x^3 becomes B = (2/8, 5/8, 3/8, 6/8) (Fig. 1b).
func PowerToBernstein(p []float64) []float64 {
	n := len(p) - 1
	if n < 0 {
		return nil
	}
	b := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		s := 0.0
		for k := 0; k <= i; k++ {
			s += Binomial(i, k) / Binomial(n, k) * p[k]
		}
		b[i] = s
	}
	return b
}

// BernsteinToPower converts Bernstein coefficients to the power basis:
//
//	p_k = sum_{i=0..k} (-1)^(k-i) C(n,k) C(k,i) b_i
func BernsteinToPower(b []float64) []float64 {
	n := len(b) - 1
	if n < 0 {
		return nil
	}
	p := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		s := 0.0
		for i := 0; i <= k; i++ {
			sign := 1.0
			if (k-i)%2 == 1 {
				sign = -1
			}
			s += sign * Binomial(k, i) * b[i]
		}
		p[k] = Binomial(n, k) * s
	}
	return p
}

// BernsteinElevate raises the degree of the Bernstein-form polynomial
// b by one without changing its value anywhere:
//
//	b'_i = i/(n+1) b_{i-1} + (1 - i/(n+1)) b_i
//
// Degree elevation drives coefficients toward the function's range,
// which helps pull a fit into [0, 1] as stochastic computing requires.
func BernsteinElevate(b []float64) []float64 {
	n := len(b) - 1
	if n < 0 {
		return nil
	}
	out := make([]float64, n+2)
	out[0] = b[0]
	out[n+1] = b[n]
	for i := 1; i <= n; i++ {
		t := float64(i) / float64(n+1)
		out[i] = t*b[i-1] + (1-t)*b[i]
	}
	return out
}

// FitBernstein least-squares fits a degree-n Bernstein polynomial to
// f sampled at `samples` equally spaced points on [0, 1]. With
// clampUnit set, coefficients are clamped to [0, 1] after the fit —
// the representability condition for single-MUX stochastic computing,
// where each coefficient is a probability.
//
// The returned maxErr is the maximum absolute deviation between f and
// the (possibly clamped) fit over the sample grid.
func FitBernstein(f func(float64) float64, n, samples int, clampUnit bool) (coef []float64, maxErr float64, err error) {
	if n < 0 {
		return nil, 0, fmt.Errorf("numeric: negative Bernstein degree %d", n)
	}
	if samples < n+1 {
		samples = 4 * (n + 1)
	}
	a := NewMatrix(samples, n+1)
	b := make([]float64, samples)
	for s := 0; s < samples; s++ {
		x := float64(s) / float64(samples-1)
		for i := 0; i <= n; i++ {
			a.Set(s, i, BernsteinBasis(i, n, x))
		}
		b[s] = f(x)
	}
	coef, err = LeastSquares(a, b, 0)
	if err != nil {
		return nil, 0, err
	}
	if clampUnit {
		for i := range coef {
			coef[i] = Clamp(coef[i], 0, 1)
		}
	}
	for s := 0; s < samples; s++ {
		x := float64(s) / float64(samples-1)
		if e := math.Abs(BernsteinEval(coef, x) - f(x)); e > maxErr {
			maxErr = e
		}
	}
	return coef, maxErr, nil
}
