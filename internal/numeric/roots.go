package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by the bracketed root finders when the
// supplied interval does not straddle a sign change.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrNoConvergence is returned when an iterative routine exhausts its
// iteration budget without meeting its tolerance.
var ErrNoConvergence = errors.New("numeric: iteration did not converge")

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must
// have opposite signs (or one of them may be zero). The returned x
// satisfies |b-a| <= tol around the root after at most maxIter
// halvings. Bisection is slow but unconditionally robust, which is
// what the laser-power inversions need when the transmission model is
// non-smooth near channel collisions.
func Bisect(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	for i := 0; i < maxIter; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, ErrNoConvergence
}

// Brent finds a root of f in [a, b] using Brent's method (inverse
// quadratic interpolation with bisection fallback). It requires a
// sign change over [a, b] and converges superlinearly on smooth
// functions while retaining bisection's robustness.
func Brent(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < maxIter; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = a + (b-a)/2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConvergence
}

// FindBracket expands the interval [a, b] geometrically until f
// changes sign across it or maxExpand doublings have been tried. It
// returns the bracketing interval. The search expands to the right
// only (b grows), which matches its use for monotone laser-power
// requirement functions that start negative at zero power.
func FindBracket(f func(float64) float64, a, b float64, maxExpand int) (lo, hi float64, err error) {
	if b <= a {
		return 0, 0, errors.New("numeric: FindBracket requires a < b")
	}
	fa, fb := f(a), f(b)
	for i := 0; i < maxExpand; i++ {
		if math.Signbit(fa) != math.Signbit(fb) || fa == 0 || fb == 0 {
			return a, b, nil
		}
		w := b - a
		b += 2 * w
		fb = f(b)
	}
	return 0, 0, ErrNoBracket
}
