package numeric

import (
	"math"
)

// invPhi is 1/φ, the golden-section step ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenSection minimizes a unimodal function f over [a, b] and
// returns the abscissa of the minimum to within tol. If f is not
// unimodal the routine still terminates and returns a local minimum.
//
// The optimal-wavelength-spacing search of Fig. 7(a) uses this after a
// coarse grid scan has isolated the basin that contains the total
// laser-energy minimum.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	if b < a {
		a, b = b, a
	}
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	return a + (b-a)/2
}

// GridMinimize evaluates f at n+1 equally spaced points spanning
// [a, b] and returns the abscissa and value of the smallest sample.
// It is the robust first stage of MinimizeUnimodal for objectives with
// multiple shallow basins (e.g. total laser energy when crosstalk
// resonances make the probe-power curve non-convex).
func GridMinimize(f func(float64) float64, a, b float64, n int) (x, fx float64) {
	if n < 1 {
		n = 1
	}
	x, fx = a, f(a)
	for i := 1; i <= n; i++ {
		xi := a + (b-a)*float64(i)/float64(n)
		fi := f(xi)
		if fi < fx || math.IsNaN(fx) {
			x, fx = xi, fi
		}
	}
	return x, fx
}

// MinimizeUnimodal combines a coarse grid scan with a golden-section
// refinement around the best grid cell. gridN controls the scan
// resolution; tol the final refinement width. It returns the abscissa
// of the minimum.
func MinimizeUnimodal(f func(float64) float64, a, b float64, gridN int, tol float64) float64 {
	if gridN < 2 {
		gridN = 2
	}
	best, _ := GridMinimize(f, a, b, gridN)
	h := (b - a) / float64(gridN)
	lo := math.Max(a, best-h)
	hi := math.Min(b, best+h)
	return GoldenSection(f, lo, hi, tol)
}
