package numeric

import (
	"math"
	"testing"
)

func TestGoldenSectionParabola(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.7) * (x - 1.7) }
	x := GoldenSection(f, -5, 5, 1e-10)
	if math.Abs(x-1.7) > 1e-8 {
		t.Errorf("GoldenSection = %g, want 1.7", x)
	}
}

func TestGoldenSectionReversedInterval(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 0.25) }
	x := GoldenSection(f, 1, -1, 1e-9)
	if math.Abs(x-0.25) > 1e-7 {
		t.Errorf("GoldenSection reversed = %g, want 0.25", x)
	}
}

func TestGridMinimize(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) }
	x, fx := GridMinimize(f, 0, 2*math.Pi, 1000)
	if math.Abs(x-math.Pi) > 0.01 {
		t.Errorf("GridMinimize cos = %g, want pi", x)
	}
	if math.Abs(fx-(-1)) > 1e-4 {
		t.Errorf("GridMinimize min value = %g, want -1", fx)
	}
}

func TestGridMinimizeDegenerate(t *testing.T) {
	f := func(x float64) float64 { return x }
	x, _ := GridMinimize(f, 2, 3, 0) // n < 1 clamps to 1
	if x != 2 {
		t.Errorf("GridMinimize degenerate = %g, want 2", x)
	}
}

func TestMinimizeUnimodalMultiBasin(t *testing.T) {
	// Global minimum at x = 4.913 (approx) for this two-basin shape.
	f := func(x float64) float64 {
		return math.Sin(x) + 0.05*x
	}
	x := MinimizeUnimodal(f, 0, 7, 100, 1e-9)
	// Global min of sin(x)+0.05x on [0,7]: derivative cos(x) = -0.05
	// near x = pi/2 + ~1.62 => x ≈ 4.662; check residual via sampling.
	bestGrid, _ := GridMinimize(f, 0, 7, 100000)
	if math.Abs(x-bestGrid) > 1e-3 {
		t.Errorf("MinimizeUnimodal = %g, exhaustive grid says %g", x, bestGrid)
	}
}

func TestMinimizeUnimodalEnergyShape(t *testing.T) {
	// Shape of the Fig. 7(a) objective: linear term (pump) plus a
	// hyperbolic decaying term (probe). Analytic optimum of
	// a*x + b/x is sqrt(b/a).
	a, b := 70.0, 2.0
	f := func(x float64) float64 { return a*x + b/x }
	want := math.Sqrt(b / a)
	x := MinimizeUnimodal(f, 0.05, 1.0, 200, 1e-10)
	if math.Abs(x-want) > 1e-6 {
		t.Errorf("energy-shape optimum = %g, want %g", x, want)
	}
}
