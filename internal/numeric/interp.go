package numeric

import (
	"fmt"
	"sort"
)

// LinearInterp is a piecewise-linear interpolant over strictly
// increasing abscissae. Evaluation outside the data range clamps to
// the boundary values, which is the conservative choice for the
// device-characteristic lookup tables in internal/core.
type LinearInterp struct {
	xs, ys []float64
}

// NewLinearInterp builds an interpolant from parallel slices. The xs
// must be strictly increasing and at least two points are required.
// The data is copied.
func NewLinearInterp(xs, ys []float64) (*LinearInterp, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("numeric: interp data length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("numeric: interp needs at least 2 points, got %d", len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("numeric: interp abscissae must be strictly increasing (index %d)", i)
		}
	}
	l := &LinearInterp{xs: make([]float64, len(xs)), ys: make([]float64, len(ys))}
	copy(l.xs, xs)
	copy(l.ys, ys)
	return l, nil
}

// At evaluates the interpolant at x, clamping outside the data range.
func (l *LinearInterp) At(x float64) float64 {
	n := len(l.xs)
	if x <= l.xs[0] {
		return l.ys[0]
	}
	if x >= l.xs[n-1] {
		return l.ys[n-1]
	}
	// Index of the first abscissa > x.
	i := sort.SearchFloat64s(l.xs, x)
	if l.xs[i] == x {
		return l.ys[i]
	}
	t := (x - l.xs[i-1]) / (l.xs[i] - l.xs[i-1])
	return Lerp(l.ys[i-1], l.ys[i], t)
}

// Domain returns the abscissa range covered by the data.
func (l *LinearInterp) Domain() (lo, hi float64) {
	return l.xs[0], l.xs[len(l.xs)-1]
}

// Linspace returns n equally spaced samples spanning [a, b]
// inclusive. n must be at least 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("numeric: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}
