package numeric

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix. The zero value is an
// empty matrix; use NewMatrix to allocate one of a given shape.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix allocates a rows×cols matrix of zeros.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("numeric: negative matrix dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from a slice of equal-length rows.
// The data is copied.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("numeric: ragged rows: row %d has %d entries, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("numeric: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("numeric: dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	p := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				p.data[i*p.cols+j] += a * b.data[k*b.cols+j]
			}
		}
	}
	return p, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("numeric: dimension mismatch %dx%d · %d-vector", m.rows, m.cols, len(x))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// ErrSingular is returned when a solve encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("numeric: matrix is singular")

// SolveLinear solves the square system A·x = b using Gaussian
// elimination with partial pivoting. A and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("numeric: SolveLinear needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("numeric: right-hand side has %d entries, want %d", len(b), n)
	}
	// Working copies.
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		maxAbs := math.Abs(m.data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.data[r*n+col]); v > maxAbs {
				piv, maxAbs = r, v
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		if piv != col {
			for j := 0; j < n; j++ {
				m.data[col*n+j], m.data[piv*n+j] = m.data[piv*n+j], m.data[col*n+j]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		// Eliminate below.
		d := m.data[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m.data[r*n+col] / d
			if f == 0 {
				continue
			}
			m.data[r*n+col] = 0
			for j := col + 1; j < n; j++ {
				m.data[r*n+j] -= f * m.data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.data[i*n+j] * x[j]
		}
		x[i] = s / m.data[i*n+i]
	}
	return x, nil
}

// LeastSquares solves the overdetermined system A·x ≈ b in the
// least-squares sense via the normal equations AᵀA·x = Aᵀb with a
// small Tikhonov ridge (lambda >= 0) for conditioning. The Bernstein
// coefficient fits used by the gamma-correction application are
// low-degree (n <= 8), for which the normal equations are adequately
// conditioned.
func LeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("numeric: A has %d rows but b has %d entries", a.rows, len(b))
	}
	at := a.Transpose()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	if lambda > 0 {
		for i := 0; i < ata.rows; i++ {
			ata.data[i*ata.cols+i] += lambda
		}
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	return SolveLinear(ata, atb)
}

// VecNorm2 returns the Euclidean norm of v.
func VecNorm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// VecMaxAbs returns the infinity norm of v (0 for an empty slice).
func VecMaxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
