package numeric

import (
	"math"
	"testing"
)

func TestLinearInterpBasic(t *testing.T) {
	l, err := NewLinearInterp([]float64{0, 1, 2}, []float64{0, 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {0.5, 5}, {1, 10}, {1.5, 5}, {2, 0},
		{-1, 0}, // clamped left
		{3, 0},  // clamped right
		{0.25, 2.5},
	}
	for _, c := range cases {
		if got := l.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	lo, hi := l.Domain()
	if lo != 0 || hi != 2 {
		t.Errorf("Domain = [%g,%g]", lo, hi)
	}
}

func TestLinearInterpErrors(t *testing.T) {
	if _, err := NewLinearInterp([]float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewLinearInterp([]float64{0}, []float64{0}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := NewLinearInterp([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing abscissae accepted")
	}
}

func TestLinearInterpCopiesData(t *testing.T) {
	xs := []float64{0, 1}
	ys := []float64{0, 1}
	l, _ := NewLinearInterp(xs, ys)
	ys[1] = 100
	if got := l.At(1); got != 1 {
		t.Errorf("interp aliases caller data: At(1) = %g", got)
	}
}

func TestLinspace(t *testing.T) {
	s := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-15 {
			t.Errorf("Linspace[%d] = %g, want %g", i, s[i], want[i])
		}
	}
	if s[len(s)-1] != 1 {
		t.Error("Linspace endpoint not exact")
	}
}

func TestLinspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Linspace(0,1,1) did not panic")
		}
	}()
	Linspace(0, 1, 1)
}
