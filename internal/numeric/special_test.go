package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	if math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestErfInvRoundTrip(t *testing.T) {
	for _, x := range []float64{-3, -2, -1, -0.5, -0.1, 0, 0.1, 0.5, 1, 2, 3, 4} {
		y := math.Erf(x)
		got := ErfInv(y)
		if !almostEqual(got, x, 1e-9*math.Max(1, math.Abs(x))) {
			t.Errorf("ErfInv(Erf(%g)) = %g, want %g", x, got, x)
		}
	}
}

func TestErfInvEdgeCases(t *testing.T) {
	if got := ErfInv(0); got != 0 {
		t.Errorf("ErfInv(0) = %g, want 0", got)
	}
	if got := ErfInv(1); !math.IsInf(got, 1) {
		t.Errorf("ErfInv(1) = %g, want +Inf", got)
	}
	if got := ErfInv(-1); !math.IsInf(got, -1) {
		t.Errorf("ErfInv(-1) = %g, want -Inf", got)
	}
	for _, bad := range []float64{-1.5, 1.5, math.NaN()} {
		if got := ErfInv(bad); !math.IsNaN(got) {
			t.Errorf("ErfInv(%g) = %g, want NaN", bad, got)
		}
	}
}

func TestErfInvOdd(t *testing.T) {
	// erfinv is an odd function.
	f := func(y float64) bool {
		y = math.Mod(math.Abs(y), 1) // map into (-1,1)
		return almostEqual(ErfInv(-y), -ErfInv(y), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestErfcInvRoundTrip(t *testing.T) {
	for _, x := range []float64{-2, -1, 0, 0.5, 1, 2, 3, 3.36, 4, 5, 6} {
		y := math.Erfc(x)
		got := ErfcInv(y)
		if !almostEqual(got, x, 1e-8*math.Max(1, math.Abs(x))) {
			t.Errorf("ErfcInv(Erfc(%g)) = %g, want %g", x, got, x)
		}
	}
}

func TestErfcInvDeepTail(t *testing.T) {
	// The BER targets used in the paper and beyond.
	for _, y := range []float64{2e-2, 2e-4, 2e-6, 1e-9, 1e-12} {
		x := ErfcInv(y)
		back := math.Erfc(x)
		if math.Abs(back-y)/y > 1e-6 {
			t.Errorf("Erfc(ErfcInv(%g)) = %g, relative error %g", y, back, math.Abs(back-y)/y)
		}
	}
}

func TestErfcInvEdgeCases(t *testing.T) {
	if got := ErfcInv(1); got != 0 {
		t.Errorf("ErfcInv(1) = %g, want 0", got)
	}
	if got := ErfcInv(0); !math.IsInf(got, 1) {
		t.Errorf("ErfcInv(0) = %g, want +Inf", got)
	}
	if got := ErfcInv(2); !math.IsInf(got, -1) {
		t.Errorf("ErfcInv(2) = %g, want -Inf", got)
	}
	for _, bad := range []float64{-0.1, 2.1, math.NaN()} {
		if got := ErfcInv(bad); !math.IsNaN(got) {
			t.Errorf("ErfcInv(%g) = %g, want NaN", bad, got)
		}
	}
}

func TestQFuncKnownValues(t *testing.T) {
	// Q(0) = 0.5; Q(1.2816) ~ 0.1; Q(3.0902) ~ 1e-3.
	cases := []struct{ x, want, tol float64 }{
		{0, 0.5, 1e-15},
		{1.2815515655446004, 0.1, 1e-10},
		{3.090232306167813, 1e-3, 1e-9},
	}
	for _, c := range cases {
		if got := QFunc(c.x); math.Abs(got-c.want) > c.tol {
			t.Errorf("QFunc(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestQFuncInvRoundTrip(t *testing.T) {
	for _, p := range []float64{0.4, 0.1, 1e-2, 1e-4, 1e-6, 1e-9} {
		x := QFuncInv(p)
		if got := QFunc(x); math.Abs(got-p)/p > 1e-6 {
			t.Errorf("QFunc(QFuncInv(%g)) = %g", p, got)
		}
	}
}

func TestBERTargetSNRRatio(t *testing.T) {
	// The paper's Fig. 6(b) observation: targeting 1e-2 instead of 1e-6
	// halves the required (linear) SNR, hence probe power.
	snr2 := 2 * math.Sqrt2 * ErfcInv(2e-2)
	snr6 := 2 * math.Sqrt2 * ErfcInv(2e-6)
	ratio := snr2 / snr6
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("SNR(1e-2)/SNR(1e-6) = %g, want ~0.5 (paper: 50%% power reduction)", ratio)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1},
		{3, 1, 3}, {3, 2, 3},
		{6, 3, 20}, {10, 5, 252},
		{20, 10, 184756},
		{5, -1, 0}, {5, 6, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	// Pascal's rule C(n,k) = C(n-1,k-1) + C(n-1,k) for n up to 30.
	for n := 1; n <= 30; n++ {
		for k := 0; k <= n; k++ {
			want := Binomial(n-1, k-1) + Binomial(n-1, k)
			if got := Binomial(n, k); math.Abs(got-want) > 1e-6*want {
				t.Fatalf("Pascal rule broken at C(%d,%d): %g vs %g", n, k, got, want)
			}
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(-1, 0, 1); got != 0 {
		t.Errorf("Clamp(-1,0,1) = %g", got)
	}
	if got := Clamp(2, 0, 1); got != 1 {
		t.Errorf("Clamp(2,0,1) = %g", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %g", got)
	}
}

func TestDBConversions(t *testing.T) {
	// 4.5 dB insertion loss -> 0.3548 linear (paper §V.A uses this).
	if got := DBToLinear(-4.5); math.Abs(got-0.35481) > 1e-4 {
		t.Errorf("DBToLinear(-4.5) = %g, want ~0.35481", got)
	}
	if got := LinearToDB(0.5); math.Abs(got-(-3.0103)) > 1e-3 {
		t.Errorf("LinearToDB(0.5) = %g, want ~-3.0103", got)
	}
	if got := LinearToDB(0); !math.IsInf(got, -1) {
		t.Errorf("LinearToDB(0) = %g, want -Inf", got)
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 60) // keep within a sane dynamic range
		return almostEqual(LinearToDB(DBToLinear(db)), db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(2, 4, 0.5); got != 3 {
		t.Errorf("Lerp(2,4,0.5) = %g", got)
	}
	if got := Lerp(2, 4, 0); got != 2 {
		t.Errorf("Lerp(2,4,0) = %g", got)
	}
	if got := Lerp(2, 4, 1); got != 4 {
		t.Errorf("Lerp(2,4,1) = %g", got)
	}
}
