package numeric

import "math"

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than
// two samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the extrema of xs. It panics on an empty slice, as a
// min/max of nothing indicates a logic error in the caller.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("numeric: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Histogram counts xs into bins equally dividing [lo, hi]. Samples
// outside the range are clamped into the first/last bin. It returns
// the per-bin counts.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	if bins < 1 {
		bins = 1
	}
	counts := make([]int, bins)
	if hi <= lo {
		counts[0] = len(xs)
		return counts
	}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}

// MeanAbsError returns the mean absolute difference between parallel
// slices a and b. It panics if the lengths differ.
func MeanAbsError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: MeanAbsError length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}

// RootMeanSquareError returns the RMS difference between parallel
// slices a and b. It panics if the lengths differ.
func RootMeanSquareError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: RootMeanSquareError length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}
