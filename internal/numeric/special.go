package numeric

import (
	"math"
)

// ErfInv returns the inverse error function: ErfInv(Erf(x)) == x for
// finite x. The argument must lie in (-1, 1); ±1 map to ±Inf and
// values outside [-1, 1] return NaN.
//
// The implementation uses the rational initial guess of Giles
// ("Approximating the erfinv function", 2010) refined by two
// Newton iterations, which brings the result to full float64
// precision on the whole open interval.
func ErfInv(y float64) float64 {
	switch {
	case math.IsNaN(y) || y < -1 || y > 1:
		return math.NaN()
	case y == 1:
		return math.Inf(1)
	case y == -1:
		return math.Inf(-1)
	case y == 0:
		return 0
	}

	x := erfInvEstimate(y)
	// Newton refinement on f(x) = erf(x) - y.
	// f'(x) = 2/sqrt(pi) * exp(-x^2).
	for i := 0; i < 3; i++ {
		e := math.Erf(x) - y
		x -= e * math.Sqrt(math.Pi) / 2 * math.Exp(x*x)
	}
	return x
}

// erfInvEstimate computes a low-accuracy initial estimate of the
// inverse error function using a central polynomial for small |y| and
// a tail expansion otherwise.
func erfInvEstimate(y float64) float64 {
	a := math.Abs(y)
	if a < 0.7 {
		// Central region: series in w = y^2.
		w := y * y
		num := ((-0.140543331*w+0.914624893)*w-1.645349621)*w + 0.886226899
		den := (((0.012229801*w-0.329097515)*w+1.442710462)*w-2.118377725)*w + 1
		return y * num / den
	}
	// Tail region.
	w := math.Sqrt(-math.Log((1 - a) / 2))
	num := ((1.641345311*w+3.429567803)*w-1.62490649)*w - 1.970840454
	den := (1.637067800*w+3.543889200)*w + 1
	x := num / den
	if y < 0 {
		return -x
	}
	return x
}

// ErfcInv returns the inverse complementary error function:
// ErfcInv(Erfc(x)) == x. The argument must lie in (0, 2); 0 maps to
// +Inf and 2 maps to -Inf. Values outside [0, 2] return NaN.
//
// For very small arguments (deep BER targets such as 1e-12) the
// central identity ErfcInv(y) = ErfInv(1-y) loses all precision, so an
// asymptotic tail estimate refined by Newton iterations on
// log(erfc(x)) is used instead.
func ErfcInv(y float64) float64 {
	switch {
	case math.IsNaN(y) || y < 0 || y > 2:
		return math.NaN()
	case y == 0:
		return math.Inf(1)
	case y == 2:
		return math.Inf(-1)
	case y == 1:
		return 0
	}
	if y > 1 {
		// erfc(-x) = 2 - erfc(x).
		return -ErfcInv(2 - y)
	}
	if y > 0.1 {
		return ErfInv(1 - y)
	}

	// Tail: erfc(x) ~ exp(-x^2)/(x sqrt(pi)); invert iteratively.
	// Initial guess from x^2 ≈ -log(y*sqrt(pi)*sqrt(-log y)).
	t := -math.Log(y)
	x := math.Sqrt(t - 0.5*math.Log(math.Pi*t))
	// Newton on g(x) = log(erfc(x)) - log(y).
	// g'(x) = -2 exp(-x^2) / (sqrt(pi) erfc(x)).
	for i := 0; i < 6; i++ {
		e := math.Erfc(x)
		if e == 0 {
			break
		}
		g := math.Log(e) - math.Log(y)
		gp := -2 * math.Exp(-x*x) / (math.SqrtPi * e)
		step := g / gp
		x -= step
		if math.Abs(step) < 1e-15*math.Abs(x) {
			break
		}
	}
	return x
}

// QFunc returns the Gaussian Q-function Q(x) = 0.5*erfc(x/sqrt(2)),
// the probability that a standard normal variable exceeds x. It is
// the natural primitive behind on/off-keyed bit-error rates.
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// QFuncInv returns the inverse of the Gaussian Q-function.
func QFuncInv(p float64) float64 {
	return math.Sqrt2 * ErfcInv(2*p)
}

// Binomial returns the binomial coefficient C(n, k) as a float64.
// It returns 0 for k < 0 or k > n. The multiplicative form keeps the
// intermediate values small, so results are exact for all coefficients
// representable in a float64 (n up to ~57 for central coefficients).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b with parameter t in
// [0, 1]; t outside that range extrapolates.
func Lerp(a, b, t float64) float64 {
	return a + (b-a)*t
}

// DBToLinear converts a decibel power ratio to a linear ratio:
// 10^(db/10). A 4.5 dB insertion loss therefore corresponds to a
// linear transmission of DBToLinear(-4.5) ≈ 0.3548.
func DBToLinear(db float64) float64 {
	return math.Pow(10, db/10)
}

// LinearToDB converts a linear power ratio to decibels: 10*log10(x).
// Non-positive inputs return -Inf.
func LinearToDB(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(x)
}
