package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBernsteinBasisPartitionOfUnity(t *testing.T) {
	// sum_i B_{i,n}(x) == 1 for all x in [0,1].
	for n := 0; n <= 12; n++ {
		for _, x := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
			s := 0.0
			for i := 0; i <= n; i++ {
				s += BernsteinBasis(i, n, x)
			}
			if math.Abs(s-1) > 1e-12 {
				t.Errorf("n=%d x=%g: basis sum %g", n, x, s)
			}
		}
	}
}

func TestBernsteinBasisRange(t *testing.T) {
	if got := BernsteinBasis(-1, 3, 0.5); got != 0 {
		t.Errorf("B_{-1,3} = %g", got)
	}
	if got := BernsteinBasis(4, 3, 0.5); got != 0 {
		t.Errorf("B_{4,3} = %g", got)
	}
}

func TestBernsteinBasisEndpoints(t *testing.T) {
	for n := 1; n <= 6; n++ {
		if got := BernsteinBasis(0, n, 0); got != 1 {
			t.Errorf("B_{0,%d}(0) = %g", n, got)
		}
		if got := BernsteinBasis(n, n, 1); got != 1 {
			t.Errorf("B_{%d,%d}(1) = %g", n, n, got)
		}
	}
}

func TestBernsteinEvalConstant(t *testing.T) {
	b := []float64{0.7, 0.7, 0.7, 0.7}
	for _, x := range []float64{0, 0.3, 1} {
		if got := BernsteinEval(b, x); math.Abs(got-0.7) > 1e-14 {
			t.Errorf("constant eval at %g = %g", x, got)
		}
	}
	if got := BernsteinEval(nil, 0.5); got != 0 {
		t.Errorf("empty eval = %g", got)
	}
}

func TestPowerToBernsteinPaperExample(t *testing.T) {
	// The paper's Fig. 1(b): f1(x) = 1/4 + 9/8 x - 15/8 x^2 + 5/4 x^3
	// has Bernstein coefficients (2/8, 5/8, 3/8, 6/8).
	p := []float64{0.25, 9.0 / 8, -15.0 / 8, 5.0 / 4}
	b := PowerToBernstein(p)
	want := []float64{2.0 / 8, 5.0 / 8, 3.0 / 8, 6.0 / 8}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("b[%d] = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestPowerBernsteinRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		p := make([]float64, n+1)
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		back := BernsteinToPower(PowerToBernstein(p))
		for i := range p {
			if math.Abs(back[i]-p[i]) > 1e-8*math.Max(1, math.Abs(p[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBernsteinConversionPreservesValues(t *testing.T) {
	p := []float64{0.25, 9.0 / 8, -15.0 / 8, 5.0 / 4}
	b := PowerToBernstein(p)
	for _, x := range Linspace(0, 1, 21) {
		powVal := 0.0
		for k := len(p) - 1; k >= 0; k-- {
			powVal = powVal*x + p[k]
		}
		if got := BernsteinEval(b, x); math.Abs(got-powVal) > 1e-12 {
			t.Errorf("x=%g: Bernstein %g vs power %g", x, got, powVal)
		}
	}
}

func TestBernsteinElevatePreservesValues(t *testing.T) {
	b := []float64{0.25, 0.625, 0.375, 0.75}
	e := BernsteinElevate(b)
	if len(e) != len(b)+1 {
		t.Fatalf("elevated length %d", len(e))
	}
	for _, x := range Linspace(0, 1, 33) {
		if math.Abs(BernsteinEval(e, x)-BernsteinEval(b, x)) > 1e-12 {
			t.Errorf("elevation changed value at x=%g", x)
		}
	}
}

func TestBernsteinEndpointInterpolation(t *testing.T) {
	// A Bernstein-form polynomial interpolates its first and last
	// coefficients at x=0 and x=1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		b := make([]float64, n+1)
		for i := range b {
			b[i] = rng.Float64()
		}
		return math.Abs(BernsteinEval(b, 0)-b[0]) < 1e-12 &&
			math.Abs(BernsteinEval(b, 1)-b[n]) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitBernsteinRecoversPolynomial(t *testing.T) {
	// Fitting a degree-3 polynomial with a degree-3 basis is exact.
	want := []float64{0.25, 0.625, 0.375, 0.75}
	f := func(x float64) float64 { return BernsteinEval(want, x) }
	got, maxErr, err := FitBernstein(f, 3, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Errorf("coef[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if maxErr > 1e-8 {
		t.Errorf("maxErr = %g", maxErr)
	}
}

func TestFitBernsteinGamma(t *testing.T) {
	// The paper's motivating application: gamma correction x^0.45
	// with a 6th-order Bernstein polynomial (§V.C). The fit must be
	// representable (all coefficients in [0,1]) and accurate to a few
	// gray levels out of 256.
	gamma := func(x float64) float64 { return math.Pow(x, 0.45) }
	coef, maxErr, err := FitBernstein(gamma, 6, 256, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range coef {
		if c < 0 || c > 1 {
			t.Errorf("coef[%d] = %g outside [0,1]", i, c)
		}
	}
	// x^0.45 has unbounded slope at 0, so the max error of any
	// degree-6 polynomial concentrates near the origin (~0.08, same
	// magnitude as in Qian et al.'s ReSC evaluation). The mean error
	// over the gray-level range is what image quality depends on.
	if maxErr > 0.1 {
		t.Errorf("gamma fit maxErr = %g, want < 0.1", maxErr)
	}
	sum := 0.0
	grid := Linspace(0, 1, 257)
	for _, x := range grid {
		sum += math.Abs(BernsteinEval(coef, x) - gamma(x))
	}
	if mae := sum / float64(len(grid)); mae > 0.02 {
		t.Errorf("gamma fit mean abs error = %g, want < 0.02", mae)
	}
}

func TestFitBernsteinDegenerateInputs(t *testing.T) {
	if _, _, err := FitBernstein(math.Sqrt, -1, 10, false); err == nil {
		t.Error("negative degree accepted")
	}
	// Too few samples get widened automatically.
	coef, _, err := FitBernstein(func(x float64) float64 { return 1 }, 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range coef {
		if math.Abs(c-1) > 1e-8 {
			t.Errorf("constant fit coef %g", c)
		}
	}
}
