package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %g", got)
	}
	c := m.Clone()
	c.Set(1, 2, 9)
	if m.At(1, 2) != 7 {
		t.Error("Clone is not deep")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Error("MatrixFromRows wrong layout")
	}
	if _, err := MatrixFromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestMatrixIndexPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	_ = m.At(2, 0)
}

func TestTranspose(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	id, _ := MatrixFromRows([][]float64{{1, 0}, {0, 1}})
	p, err := a.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != a.At(i, j) {
				t.Fatalf("A·I != A at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := a.MulVec([]float64{1, 2}); err == nil {
		t.Error("vector shape mismatch accepted")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a, _ := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-5) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("pivoted solve = %v", x)
	}
}

func TestSolveLinearRandomProperty(t *testing.T) {
	// A·x reproduced by solving against the product.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant => nonsingular
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b, err := a.MulVec(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// Overdetermined but consistent: y = 2 + 3x sampled at 5 points.
	a := NewMatrix(5, 2)
	b := make([]float64, 5)
	for i := 0; i < 5; i++ {
		x := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	c, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-2) > 1e-9 || math.Abs(c[1]-3) > 1e-9 {
		t.Errorf("LeastSquares = %v, want [2 3]", c)
	}
}

func TestLeastSquaresRidge(t *testing.T) {
	// With a huge ridge the solution shrinks toward zero.
	a := NewMatrix(3, 1)
	for i := 0; i < 3; i++ {
		a.Set(i, 0, 1)
	}
	b := []float64{1, 1, 1}
	c, err := LeastSquares(a, b, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]) > 1e-6 {
		t.Errorf("ridge solution %g not shrunk", c[0])
	}
}

func TestVecNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := VecNorm2(v); math.Abs(got-5) > 1e-12 {
		t.Errorf("VecNorm2 = %g", got)
	}
	if got := VecMaxAbs(v); got != 4 {
		t.Errorf("VecMaxAbs = %g", got)
	}
	if got := VecMaxAbs(nil); got != 0 {
		t.Errorf("VecMaxAbs(nil) = %g", got)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		m := NewMatrix(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		tt := m.Transpose().Transpose()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
