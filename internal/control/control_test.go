package control

import (
	"math"
	"testing"

	"repro/internal/core"
)

func testPlant(t *testing.T, amplitudeK float64, seed uint64) (*DriftedRing, *Loop) {
	t.Helper()
	env, err := NewThermalEnvironment(amplitudeK, 1e-3, 0.02, seed)
	if err != nil {
		t.Fatal(err)
	}
	heater, err := NewHeater(0.25, 4) // up to 1 nm of red shift
	if err != nil {
		t.Fatal(err)
	}
	shape := core.DenseFilterShape()
	// The heater mid-range bias red-shifts by 0.5 nm, so park the
	// cold resonance 0.5 nm blue of the target.
	target := 1550.1
	ring := NewDriftedRing(target-0.5, env, heater)
	mon, err := NewMonitor(0.05, 1e-5, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	loop, err := NewLoop(ring, shape.At(ring.ColdResonanceNM), target, 1.0, mon)
	if err != nil {
		t.Fatal(err)
	}
	return ring, loop
}

func TestThermalEnvironmentBounds(t *testing.T) {
	env, err := NewThermalEnvironment(2, 1e-3, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		v := env.TemperatureK(float64(i) * 1e-6)
		if math.Abs(v) > 2+0.05*math.Sqrt(3)+1e-9 {
			t.Fatalf("excursion %g K outside bound", v)
		}
	}
}

func TestThermalEnvironmentErrors(t *testing.T) {
	if _, err := NewThermalEnvironment(-1, 1, 0, 1); err == nil {
		t.Error("negative amplitude accepted")
	}
	if _, err := NewThermalEnvironment(1, 0, 0, 1); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewThermalEnvironment(1, 1, -1, 1); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestHeaterClamping(t *testing.T) {
	h, err := NewHeater(0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.SetPowerMW(-1)
	if h.PowerMW() != 0 {
		t.Error("negative drive not clamped")
	}
	h.SetPowerMW(100)
	if h.PowerMW() != 4 {
		t.Error("overdrive not clamped")
	}
	h.SetPowerMW(2)
	if got := h.ShiftNM(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("shift = %g", got)
	}
	if _, err := NewHeater(0, 1); err == nil {
		t.Error("zero efficiency accepted")
	}
	if _, err := NewHeater(1, 0); err == nil {
		t.Error("zero range accepted")
	}
}

func TestDriftedRingComposition(t *testing.T) {
	env, _ := NewThermalEnvironment(0, 1, 0, 1) // no drift, no jitter
	h, _ := NewHeater(0.25, 4)
	r := NewDriftedRing(1550, env, h)
	if got := r.ResonanceNM(0); got != 1550 {
		t.Errorf("cold resonance = %g", got)
	}
	h.SetPowerMW(2)
	if got := r.ResonanceNM(0); math.Abs(got-1550.5) > 1e-12 {
		t.Errorf("heated resonance = %g", got)
	}
	if got := r.MisalignmentNM(0, 1550.5); math.Abs(got) > 1e-12 {
		t.Errorf("misalignment = %g", got)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(0, 0, 1); err == nil {
		t.Error("zero tap accepted")
	}
	if _, err := NewMonitor(1.5, 0, 1); err == nil {
		t.Error("tap > 1 accepted")
	}
	if _, err := NewMonitor(0.05, -1, 1); err == nil {
		t.Error("negative noise accepted")
	}
	m, err := NewMonitor(0.05, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Read(2); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("noiseless read = %g", got)
	}
}

func TestLoopLocksAndHolds(t *testing.T) {
	// 5 K of ambient drift = 0.05 nm of resonance wander — a third
	// of the dense filter's FWHM, enough to degrade the multiplexer.
	_, loop := testPlant(t, 5, 42)
	samples := loop.Run(4000)

	// After the acquisition phase the loop should hold the resonance
	// far tighter than the uncontrolled drift.
	var lockedMax, uncontrolledMax float64
	for _, s := range samples[len(samples)/2:] {
		if a := math.Abs(s.MisalignNM); a > lockedMax {
			lockedMax = a
		}
		if a := math.Abs(s.UncontrolledNM); a > uncontrolledMax {
			uncontrolledMax = a
		}
	}
	// Uncontrolled, the plant sits 0.5 nm off target (heater bias is
	// part of the design) — the loop must do much better than the
	// drift amplitude alone.
	if lockedMax > 0.02 {
		t.Errorf("locked misalignment %g nm, want < 0.02", lockedMax)
	}
	if uncontrolledMax < 0.4 {
		t.Errorf("uncontrolled baseline %g nm suspiciously small", uncontrolledMax)
	}
	if loop.EnergyPJ() <= 0 {
		t.Error("no heater energy accounted")
	}
}

func TestLoopTracksSlowDrift(t *testing.T) {
	// Residual misalignment with control must be well below the
	// open-loop drift amplitude across the whole run.
	_, loop := testPlant(t, 3, 77)
	samples := loop.Run(6000)
	var sum float64
	for _, s := range samples[1000:] {
		sum += math.Abs(s.MisalignNM)
	}
	mean := sum / float64(len(samples)-1000)
	if mean > 0.01 {
		t.Errorf("mean locked misalignment %g nm", mean)
	}
}

func TestLoopValidation(t *testing.T) {
	env, _ := NewThermalEnvironment(1, 1, 0, 1)
	h, _ := NewHeater(0.25, 4)
	ring := NewDriftedRing(1550, env, h)
	mon, _ := NewMonitor(0.05, 0, 2)
	shape := core.DenseFilterShape().At(1550)
	if _, err := NewLoop(nil, shape, 1550.1, 1, mon); err == nil {
		t.Error("nil ring accepted")
	}
	if _, err := NewLoop(ring, shape, 1550.1, 0, mon); err == nil {
		t.Error("zero probe accepted")
	}
	if _, err := NewLoop(ring, shape, 1550.1, 1, nil); err == nil {
		t.Error("nil monitor accepted")
	}
}

func TestDriftDegradesEyeWithoutControl(t *testing.T) {
	// System-level motivation: an uncorrected 0.05 nm filter drift
	// shrinks the received-power eye of the paper circuit; the locked
	// residual (0.01 nm) barely does.
	base := core.PaperParams()
	eye := func(offsetDrift float64) float64 {
		p := base
		p.FilterOffsetNM += offsetDrift
		// Keep the pump sized for the *designed* comb: drift is an
		// unmodeled disturbance.
		return core.MustCircuit(p).EyeOpeningMW()
	}
	nominal := eye(0)
	drifted := eye(0.05)
	locked := eye(0.01)
	if !(drifted < locked && locked <= nominal+1e-9) {
		t.Errorf("eye: nominal %g, locked %g, drifted %g — expected monotone degradation",
			nominal, locked, drifted)
	}
	if nominal-locked > 0.2*(nominal-drifted) {
		t.Errorf("locked residual costs %g mW of eye, more than 20%% of the drifted loss %g",
			nominal-locked, nominal-drifted)
	}
}
