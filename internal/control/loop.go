package control

import (
	"fmt"

	"repro/internal/optics"
	"repro/internal/stochastic"
	"repro/internal/transient"
)

// Monitor is the calibration photodiode: it taps a small fraction of
// the filter's drop port while a calibration probe at the target
// wavelength is on, and reads it with Gaussian noise.
type Monitor struct {
	// TapFraction is the power fraction diverted to the monitor
	// (typically a few percent).
	TapFraction float64
	// NoiseMW is the read noise standard deviation.
	NoiseMW float64

	noise *transient.Gaussian
}

// NewMonitor validates and seeds the monitor.
func NewMonitor(tap, noiseMW float64, seed uint64) (*Monitor, error) {
	if tap <= 0 || tap > 1 {
		return nil, fmt.Errorf("control: tap fraction %g outside (0,1]", tap)
	}
	if noiseMW < 0 {
		return nil, fmt.Errorf("control: negative monitor noise")
	}
	return &Monitor{
		TapFraction: tap,
		NoiseMW:     noiseMW,
		noise:       transient.NewGaussian(stochastic.NewSplitMix64(seed)),
	}, nil
}

// Read returns the monitored power for a drop-port power in mW.
func (m *Monitor) Read(dropMW float64) float64 {
	v := dropMW*m.TapFraction + m.noise.NextScaled(m.NoiseMW)
	if v < 0 {
		v = 0
	}
	return v
}

// Loop is the dither-and-lock calibration controller: it hill-climbs
// the heater drive to maximize the monitored drop power of a
// calibration probe parked at the target wavelength, which aligns the
// drifting ring resonance to that target.
type Loop struct {
	// Ring is the drifting plant.
	Ring *DriftedRing
	// Shape gives the drop-port lineshape used by the monitor
	// (evaluated at the instantaneous resonance).
	Shape optics.Ring
	// TargetNM is the wavelength the resonance must track.
	TargetNM float64
	// ProbeMW is the calibration probe power.
	ProbeMW float64
	// Monitor reads the tapped drop port.
	Monitor *Monitor
	// DitherMW is the heater perturbation used to estimate the
	// gradient; GainMW2PerMW scales the gradient into a heater-drive
	// update.
	DitherMW     float64
	GainMW2PerMW float64
	// StepS is the calibration period (time between corrections).
	StepS float64

	heaterEnergyPJ float64
	// peakMW remembers the best monitored power seen during
	// acquisition; falling far below it re-triggers a sweep.
	peakMW float64
}

// NewLoop assembles a controller with sane defaults for zero-valued
// tuning knobs (dither 0.05 mW, gain 40, step 1 µs).
func NewLoop(ring *DriftedRing, shape optics.Ring, targetNM, probeMW float64, mon *Monitor) (*Loop, error) {
	if ring == nil || mon == nil {
		return nil, fmt.Errorf("control: nil ring or monitor")
	}
	if probeMW <= 0 {
		return nil, fmt.Errorf("control: probe power %g not positive", probeMW)
	}
	l := &Loop{
		Ring:         ring,
		Shape:        shape,
		TargetNM:     targetNM,
		ProbeMW:      probeMW,
		Monitor:      mon,
		DitherMW:     0.05,
		GainMW2PerMW: 1,
		StepS:        1e-6,
	}
	// Bias the heater mid-range so the loop can correct drift in
	// both directions (heaters only push one way).
	ring.Heater.SetPowerMW(ring.Heater.MaxPowerMW / 2)
	return l, nil
}

// acquire sweeps the full heater range and parks the drive at the
// monitored-power maximum — the lock-acquisition phase that precedes
// dither tracking. It returns the peak reading.
func (l *Loop) acquire(tS float64) float64 {
	const sweepPoints = 128
	bestH, bestP := 0.0, -1.0
	for k := 0; k <= sweepPoints; k++ {
		h := l.Ring.Heater.MaxPowerMW * float64(k) / sweepPoints
		if p := l.measure(tS, h); p > bestP {
			bestH, bestP = h, p
		}
	}
	l.Ring.Heater.SetPowerMW(bestH)
	l.peakMW = bestP
	return bestP
}

// measure reads the monitor with the heater at a trial drive.
func (l *Loop) measure(tS, heaterMW float64) float64 {
	saved := l.Ring.Heater.PowerMW()
	l.Ring.Heater.SetPowerMW(heaterMW)
	res := l.Ring.ResonanceNM(tS)
	drop := l.ProbeMW * l.Shape.Drop(l.TargetNM, res)
	l.Ring.Heater.SetPowerMW(saved)
	return l.Monitor.Read(drop)
}

// Sample is one calibration period's outcome.
type Sample struct {
	TimeS          float64
	MisalignNM     float64
	HeaterMW       float64
	MonitorMW      float64
	UncontrolledNM float64
}

// Run executes `steps` calibration periods and returns the recorded
// trajectory. Heater energy is accumulated into EnergyPJ.
func (l *Loop) Run(steps int) []Sample {
	out := make([]Sample, 0, steps)
	for k := 0; k < steps; k++ {
		t := float64(k) * l.StepS
		// Acquisition: on the first step, or whenever the monitored
		// power collapses below half the acquired peak (lost lock),
		// sweep the heater range for the maximum.
		if l.peakMW == 0 || l.measure(t, l.Ring.Heater.PowerMW()) < 0.5*l.peakMW {
			l.acquire(t)
		}
		h := l.Ring.Heater.PowerMW()
		// Two-point gradient estimate via heater dither, then a
		// bounded hill-climb step (tracking phase).
		up := l.measure(t, h+l.DitherMW)
		dn := l.measure(t, h-l.DitherMW)
		grad := (up - dn) / (2 * l.DitherMW)
		step := l.GainMW2PerMW * grad
		if max := 4 * l.DitherMW; step > max {
			step = max
		} else if step < -max {
			step = -max
		}
		l.Ring.Heater.SetPowerMW(h + step)

		l.heaterEnergyPJ += optics.EnergyPJ(l.Ring.Heater.PowerMW(), l.StepS)
		out = append(out, Sample{
			TimeS:      t,
			MisalignNM: l.Ring.MisalignmentNM(t, l.TargetNM),
			HeaterMW:   l.Ring.Heater.PowerMW(),
			MonitorMW:  l.measure(t, l.Ring.Heater.PowerMW()),
			UncontrolledNM: l.Ring.ColdResonanceNM +
				l.Ring.Env.TemperatureK(t)*l.Ring.ThermalShiftNMPerK - l.TargetNM,
		})
	}
	return out
}

// EnergyPJ returns the heater energy spent so far — the energy side
// of the paper's energy–area calibration trade-off.
func (l *Loop) EnergyPJ() float64 { return l.heaterEnergyPJ }
