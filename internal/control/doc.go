// Package control implements the paper's future-work item (i): a
// feedback-loop control circuit for monitoring and calibrating the
// optical stochastic-computing circuit.
//
// Micro-ring resonances drift with temperature (silicon rings move by
// roughly +10 pm/K), which would misalign the multiplexing filter
// from the probe comb and collapse the received-power eye. The
// package models:
//
//   - a thermal environment (ambient drift plus self-heating) acting
//     on a ring resonance;
//   - a monitor photodiode tapping a small fraction of the filter's
//     drop port during calibration probes;
//   - an integral (dither-and-lock) controller driving a resistive
//     heater that counter-shifts the resonance;
//   - a closed-loop calibration session returning the residual
//     misalignment over time.
//
// The controller is deliberately simple — the paper only sketches the
// need for "monitoring and voltage/thermal tuning for device
// calibration" and an energy–area trade-off; Loop.EnergyPJ accounts
// the heater energy so that trade-off can be explored.
package control
