package control

import (
	"fmt"
	"math"

	"repro/internal/stochastic"
)

// SiliconThermalShiftNMPerK is the typical thermo-optic resonance
// drift of a silicon micro-ring: ≈10 pm/K red shift.
const SiliconThermalShiftNMPerK = 0.010

// ThermalEnvironment produces the ambient temperature excursion seen
// by a photonic die as a function of time: a slow sinusoidal drift
// (package/board heating cycles) plus white jitter.
type ThermalEnvironment struct {
	// AmplitudeK is the peak ambient excursion.
	AmplitudeK float64
	// PeriodS is the drift period.
	PeriodS float64
	// JitterK is the standard deviation of fast fluctuations.
	JitterK float64

	noise stochastic.NumberSource
}

// NewThermalEnvironment seeds the jitter source.
func NewThermalEnvironment(amplitudeK, periodS, jitterK float64, seed uint64) (*ThermalEnvironment, error) {
	if amplitudeK < 0 || jitterK < 0 {
		return nil, fmt.Errorf("control: negative thermal magnitudes")
	}
	if periodS <= 0 {
		return nil, fmt.Errorf("control: period %g s not positive", periodS)
	}
	return &ThermalEnvironment{
		AmplitudeK: amplitudeK,
		PeriodS:    periodS,
		JitterK:    jitterK,
		noise:      stochastic.NewSplitMix64(seed),
	}, nil
}

// TemperatureK returns the ambient excursion at time t (relative to
// the calibration baseline).
func (e *ThermalEnvironment) TemperatureK(tS float64) float64 {
	drift := e.AmplitudeK * math.Sin(2*math.Pi*tS/e.PeriodS)
	// Centered uniform jitter scaled to the requested sigma
	// (uniform on [-√3σ, √3σ] has standard deviation σ).
	j := (e.noise.Next()*2 - 1) * math.Sqrt(3) * e.JitterK
	return drift + j
}

// Heater is a resistive micro-heater tuning a ring resonance. Power
// applied red-shifts the resonance with the given efficiency.
type Heater struct {
	// EfficiencyNMPerMW is the resonance shift per heater power
	// (typical silicon micro-heaters: ~0.25 nm/mW).
	EfficiencyNMPerMW float64
	// MaxPowerMW saturates the actuator.
	MaxPowerMW float64

	powerMW float64
}

// NewHeater validates the actuator parameters.
func NewHeater(effNMPerMW, maxMW float64) (*Heater, error) {
	if effNMPerMW <= 0 {
		return nil, fmt.Errorf("control: heater efficiency %g not positive", effNMPerMW)
	}
	if maxMW <= 0 {
		return nil, fmt.Errorf("control: heater max power %g not positive", maxMW)
	}
	return &Heater{EfficiencyNMPerMW: effNMPerMW, MaxPowerMW: maxMW}, nil
}

// SetPowerMW clamps and applies the heater drive.
func (h *Heater) SetPowerMW(p float64) {
	if p < 0 {
		p = 0
	}
	if p > h.MaxPowerMW {
		p = h.MaxPowerMW
	}
	h.powerMW = p
}

// PowerMW returns the applied drive.
func (h *Heater) PowerMW() float64 { return h.powerMW }

// ShiftNM returns the heater-induced red shift.
func (h *Heater) ShiftNM() float64 { return h.powerMW * h.EfficiencyNMPerMW }

// DriftedRing couples a ring resonance to the environment and a
// heater: instantaneous resonance = cold + thermal drift + heater
// shift.
type DriftedRing struct {
	ColdResonanceNM float64
	Env             *ThermalEnvironment
	Heater          *Heater
	// ThermalShiftNMPerK converts ambient excursion to resonance
	// drift; defaults to SiliconThermalShiftNMPerK via NewDriftedRing.
	ThermalShiftNMPerK float64
}

// NewDriftedRing wires the pieces with the silicon default.
func NewDriftedRing(coldNM float64, env *ThermalEnvironment, h *Heater) *DriftedRing {
	return &DriftedRing{
		ColdResonanceNM:    coldNM,
		Env:                env,
		Heater:             h,
		ThermalShiftNMPerK: SiliconThermalShiftNMPerK,
	}
}

// ResonanceNM returns the instantaneous resonance at time t.
func (r *DriftedRing) ResonanceNM(tS float64) float64 {
	return r.ColdResonanceNM +
		r.Env.TemperatureK(tS)*r.ThermalShiftNMPerK +
		r.Heater.ShiftNM()
}

// MisalignmentNM returns resonance − target: the error signal the
// calibration loop drives to zero.
func (r *DriftedRing) MisalignmentNM(tS, targetNM float64) float64 {
	return r.ResonanceNM(tS) - targetNM
}
