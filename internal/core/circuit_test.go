package core

import (
	"math"
	"testing"
)

func paperCircuit(t *testing.T) *Circuit {
	t.Helper()
	c, err := NewCircuit(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCircuitRejectsInvalid(t *testing.T) {
	p := PaperParams()
	p.Order = 0
	if _, err := NewCircuit(p); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestMustCircuitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCircuit did not panic")
		}
	}()
	p := PaperParams()
	p.Order = -1
	MustCircuit(p)
}

func TestFilterShiftOrdering(t *testing.T) {
	c := paperCircuit(t)
	// More '1' data bits -> more destructive MZIs -> less pump ->
	// smaller shift (Fig. 3b/c/d).
	s0 := c.FilterShiftNM(0)
	s1 := c.FilterShiftNM(1)
	s2 := c.FilterShiftNM(2)
	if !(s0 > s1 && s1 > s2) {
		t.Errorf("shifts not decreasing: %g %g %g", s0, s1, s2)
	}
	// Weight 0 reaches λ0 (2.1 nm shift), weight 2 parks at λ2
	// (0.1 nm shift) by the §V.A design.
	if math.Abs(s0-2.1) > 0.01 {
		t.Errorf("full shift = %g nm, want ~2.1", s0)
	}
	if math.Abs(s2-0.1) > 0.01 {
		t.Errorf("minimal shift = %g nm, want ~0.1", s2)
	}
}

func TestFilterAlignsToSelectedChannel(t *testing.T) {
	c := paperCircuit(t)
	for w := 0; w <= 2; w++ {
		res := c.FilterResonanceNM(w)
		want := c.P.Lambda(c.SelectedChannel(w))
		if math.Abs(res-want) > 1e-3 {
			t.Errorf("weight %d: filter at %g, channel at %g", w, res, want)
		}
	}
	if got := c.AlignmentErrorNM(); got > 1e-3 {
		t.Errorf("alignment error = %g nm", got)
	}
}

func TestFig5aChannelTotals(t *testing.T) {
	// Fig. 5(a): z=(0,1,0), x1=x2=1 → totals ≈ (0.0002, 0.004, 0.091),
	// received ≈ 0.0952 mW at 1 mW probes. Tolerances allow the ring
	// calibration residual (see EXPERIMENTS.md).
	c := paperCircuit(t)
	tot := c.ChannelTotals(2, []int{0, 1, 0})
	if tot[2] < 0.08 || tot[2] > 0.11 {
		t.Errorf("λ2 total = %g, paper 0.091", tot[2])
	}
	if tot[1] < 0.002 || tot[1] > 0.008 {
		t.Errorf("λ1 crosstalk = %g, paper 0.004", tot[1])
	}
	if tot[0] < 0.00005 || tot[0] > 0.001 {
		t.Errorf("λ0 crosstalk = %g, paper 0.0002", tot[0])
	}
	rx := c.ReceivedPowerMW(2, []int{0, 1, 0})
	if rx < 0.085 || rx > 0.115 {
		t.Errorf("received = %g mW, paper 0.0952", rx)
	}
	// Cross-check: received equals probe-weighted channel sum.
	sum := 0.0
	for _, v := range tot {
		sum += v * c.P.ProbePowerMW
	}
	if math.Abs(sum-rx) > 1e-12 {
		t.Errorf("received %g != channel sum %g", rx, sum)
	}
}

func TestFig5bDataOneLevel(t *testing.T) {
	// Fig. 5(b): z=(1,1,0), x1=x2=0 → λ0 total ≈ 0.476, received
	// ≈ 0.482 mW.
	c := paperCircuit(t)
	tot := c.ChannelTotals(0, []int{1, 1, 0})
	if tot[0] < 0.42 || tot[0] > 0.56 {
		t.Errorf("λ0 total = %g, paper 0.476", tot[0])
	}
	rx := c.ReceivedPowerMW(0, []int{1, 1, 0})
	if rx < 0.43 || rx > 0.57 {
		t.Errorf("received = %g mW, paper 0.482", rx)
	}
}

func TestFig5cPowerBands(t *testing.T) {
	// Fig. 5(c): across all (x, z) combinations the received power
	// separates into a '0' band (paper 0.092–0.099 mW) and a '1' band
	// (paper 0.477–0.482 mW).
	c := paperCircuit(t)
	minZ, maxZ, minO, maxO := c.PowerBands()
	if minZ < 0.07 || maxZ > 0.13 {
		t.Errorf("'0' band [%g, %g], paper [0.092, 0.099]", minZ, maxZ)
	}
	if minO < 0.42 || maxO > 0.58 {
		t.Errorf("'1' band [%g, %g], paper [0.477, 0.482]", minO, maxO)
	}
	if maxZ >= minO {
		t.Errorf("bands overlap: maxZero %g >= minOne %g", maxZ, minO)
	}
	// The de-randomizer threshold separates the bands.
	d := c.Decider()
	if d.ThresholdMW <= maxZ || d.ThresholdMW >= minO {
		t.Errorf("threshold %g outside gap (%g, %g)", d.ThresholdMW, maxZ, minO)
	}
	if eye := c.EyeOpeningMW(); math.Abs(eye-(minO-maxZ)) > 1e-12 {
		t.Errorf("eye opening %g inconsistent", eye)
	}
}

func TestProbeTransmissionPanicsOnBadZ(t *testing.T) {
	c := paperCircuit(t)
	defer func() {
		if recover() == nil {
			t.Error("short z did not panic")
		}
	}()
	c.ProbeTransmission(0, []int{1}, 0)
}

func TestProbeTransmissionPhysicalBounds(t *testing.T) {
	c := paperCircuit(t)
	for w := 0; w <= 2; w++ {
		d := c.FilterShiftNM(w)
		for pattern := 0; pattern < 8; pattern++ {
			z := []int{pattern & 1, pattern >> 1 & 1, pattern >> 2 & 1}
			for i := 0; i <= 2; i++ {
				tr := c.ProbeTransmission(i, z, d)
				if tr < 0 || tr > 1 {
					t.Fatalf("transmission %g outside [0,1] (i=%d z=%v w=%d)", tr, i, z, w)
				}
			}
		}
	}
}

func TestSelectedChannelMatchesReSCSemantics(t *testing.T) {
	// weight w of ones must select coefficient z_w, exactly like the
	// electronic ReSC multiplexer (paper Fig. 1 vs Fig. 3).
	c := paperCircuit(t)
	for w := 0; w <= c.P.Order; w++ {
		if got := c.SelectedChannel(w); got != w {
			t.Errorf("weight %d selects channel %d", w, got)
		}
	}
}

func TestSelectedChannelDominatesReceivedPower(t *testing.T) {
	// When only the selected coefficient is '1', its channel must
	// dominate the received power in every data state.
	c := paperCircuit(t)
	for w := 0; w <= 2; w++ {
		z := []int{0, 0, 0}
		z[w] = 1
		tot := c.ChannelTotals(w, z)
		for i, v := range tot {
			if i != w && v >= tot[w] {
				t.Errorf("weight %d: channel %d (%g) >= selected %d (%g)", w, i, v, w, tot[w])
			}
		}
	}
}

func TestHigherOrderCircuit(t *testing.T) {
	// A 6th-order circuit (the gamma-correction workload) must build
	// and keep its bands separated.
	spec := MRRFirstSpec{Order: 6, WLSpacingNM: 0.3}
	p, err := MRRFirst(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCircuit(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.AlignmentErrorNM(); got > 1e-3 {
		t.Errorf("order-6 alignment error = %g nm", got)
	}
	if eye := c.EyeOpeningMW(); eye <= 0 {
		t.Errorf("order-6 eye closed: %g", eye)
	}
}
