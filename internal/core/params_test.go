package core

import (
	"math"
	"strings"
	"testing"
)

func TestPaperParamsAnchors(t *testing.T) {
	p := PaperParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	// §V.A: minimum pump power 591.8 mW.
	if math.Abs(p.PumpPowerMW-591.8) > 0.5 {
		t.Errorf("pump = %g mW, paper says 591.8", p.PumpPowerMW)
	}
	// §V.A: extinction ratio 13.22 dB.
	if math.Abs(p.MZI.ERdB-13.22) > 0.05 {
		t.Errorf("ER = %g dB, paper says 13.22", p.MZI.ERdB)
	}
	// Wavelength plan: λ0=1548, λ1=1549, λ2=1550, λref=1550.1.
	want := []float64{1548, 1549, 1550}
	for i, w := range want {
		if got := p.Lambda(i); math.Abs(got-w) > 1e-9 {
			t.Errorf("λ%d = %g, want %g", i, got, w)
		}
	}
	if got := p.LambdaRefNM(); math.Abs(got-1550.1) > 1e-9 {
		t.Errorf("λref = %g", got)
	}
	ls := p.Lambdas()
	if len(ls) != 3 || ls[0] != p.Lambda(0) {
		t.Errorf("Lambdas = %v", ls)
	}
}

func TestParamsValidateErrors(t *testing.T) {
	base := PaperParams()
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"order", func(p *Params) { p.Order = 0 }},
		{"spacing", func(p *Params) { p.WLSpacingNM = 0 }},
		{"lambda", func(p *Params) { p.LambdaMaxNM = -1 }},
		{"offset", func(p *Params) { p.FilterOffsetNM = -0.1 }},
		{"delta", func(p *Params) { p.DeltaLambdaNM = 0 }},
		{"ote", func(p *Params) { p.OTE.OTENMPerMW = 0 }},
		{"pump", func(p *Params) { p.PumpPowerMW = -1 }},
		{"probe", func(p *Params) { p.ProbePowerMW = -1 }},
		{"bitrate", func(p *Params) { p.BitRateGbps = 0 }},
		{"efficiency", func(p *Params) { p.LasingEfficiency = 0 }},
		{"mzi", func(p *Params) { p.MZI.ILdB = -1 }},
		{"modshape", func(p *Params) { p.ModShape.A = 0 }},
		{"filtershape", func(p *Params) { p.FilterShape.R1 = 2 }},
		{"detector", func(p *Params) { p.Detector.ResponsivityAPerW = 0 }},
		{"fsr", func(p *Params) { p.Order = 8; p.WLSpacingNM = 1 }},
	}
	for _, c := range cases {
		p := base
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid params accepted", c.name)
		}
	}
}

func TestRingShapePresetsAreCalibrated(t *testing.T) {
	cases := []struct {
		name           string
		shape          RingShape
		wantFWHM, tolF float64
	}{
		{"fig5 modulator", Fig5ModulatorShape(), 0.215, 0.02},
		{"fig5 filter", Fig5FilterShape(), 0.182, 0.02},
		{"dense modulator", DenseModulatorShape(), 0.100, 0.01},
		{"dense filter", DenseFilterShape(), 0.160, 0.01},
		{"wide modulator", WideFSRModulatorShape(), 0.100, 0.01},
		{"wide filter", WideFSRFilterShape(), 0.160, 0.01},
	}
	for _, c := range cases {
		if err := c.shape.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		r := c.shape.At(1550)
		if got := r.FWHMNM(); math.Abs(got-c.wantFWHM) > c.tolF {
			t.Errorf("%s: FWHM = %g nm, want ~%g", c.name, got, c.wantFWHM)
		}
	}
	// The modulator presets must have the calibrated ~0.1 on-resonance
	// through floor (the OFF-state attenuation behind Fig. 5's levels).
	for _, s := range []RingShape{Fig5ModulatorShape(), DenseModulatorShape(), WideFSRModulatorShape()} {
		r := s.At(1550)
		if got := r.Through(1550, 1550); math.Abs(got-0.10) > 0.015 {
			t.Errorf("modulator through floor = %g, want ~0.10", got)
		}
	}
}

func TestBitPeriodAndThroughput(t *testing.T) {
	p := PaperParams()
	if got := p.BitPeriodS(); math.Abs(got-1e-9) > 1e-18 {
		t.Errorf("bit period = %g", got)
	}
	// §V.C: 1 GHz optics vs 100 MHz electronics = 10x.
	if got := p.SpeedupVsElectronic(100); math.Abs(got-10) > 1e-12 {
		t.Errorf("speedup = %g, want 10", got)
	}
	if got := p.ThroughputBitsPerSec(256); math.Abs(got-1e9/256) > 1e-3 {
		t.Errorf("throughput = %g", got)
	}
	if got := p.ThroughputBitsPerSec(0); got != 1e9 {
		t.Errorf("degenerate throughput = %g", got)
	}
}

func TestSpeedupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero reference clock did not panic")
		}
	}()
	PaperParams().SpeedupVsElectronic(0)
}

func TestDeviceLibrary(t *testing.T) {
	lib := DeviceLibrary()
	if len(lib) != 4 {
		t.Fatalf("library has %d devices", len(lib))
	}
	var xiao *MZIDevice
	for i := range lib {
		if err := lib[i].Dev.Validate(); err != nil {
			t.Errorf("%s: %v", lib[i].Name, err)
		}
		if strings.Contains(lib[i].Name, "Xiao") {
			xiao = &lib[i]
		}
	}
	if xiao == nil {
		t.Fatal("Xiao et al. missing")
	}
	// The §V.B anchor device: IL 6.5 dB, ER 7.5 dB, 60 Gb/s.
	if xiao.Dev.ILdB != 6.5 || xiao.Dev.ERdB != 7.5 || xiao.Dev.SpeedGbps != 60 {
		t.Errorf("Xiao device = %+v", xiao.Dev)
	}
}
