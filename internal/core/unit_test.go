package core

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/stochastic"
)

func paperUnit(t *testing.T, seed uint64) *Unit {
	t.Helper()
	c := paperCircuit(t)
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}) // arbitrary order-2
	u, err := NewUnit(c, poly, seed)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewUnitValidation(t *testing.T) {
	c := paperCircuit(t)
	if _, err := NewUnit(c, stochastic.PaperF1(), 1); err == nil {
		t.Error("degree mismatch accepted (order-3 poly on order-2 circuit)")
	}
	bad := stochastic.NewBernstein([]float64{0.2, 1.4, 0.3})
	if _, err := NewUnit(c, bad, 1); err == nil {
		t.Error("unrepresentable polynomial accepted")
	}
}

func TestUnitThresholdWithinBands(t *testing.T) {
	u := paperUnit(t, 7)
	_, maxZ, minO, _ := u.Circuit.PowerBands()
	th := u.ThresholdMW()
	if th <= maxZ || th >= minO {
		t.Errorf("threshold %g outside (%g, %g)", th, maxZ, minO)
	}
}

func TestUnitStepConsistency(t *testing.T) {
	u := paperUnit(t, 11)
	for i := 0; i < 200; i++ {
		r := u.Step(0.5, 0)
		if r.Weight < 0 || r.Weight > 2 {
			t.Fatalf("weight %d", r.Weight)
		}
		if r.Selected != r.Weight {
			t.Fatalf("selected %d != weight %d", r.Selected, r.Weight)
		}
		// Noiseless decision must equal the driven coefficient bit
		// whenever the worst-case eye is open (it is, for the paper
		// design).
		if r.Bit != r.Z[r.Selected] {
			t.Fatalf("optical bit %d != coefficient bit %d (power %g)", r.Bit, r.Z[r.Selected], r.ReceivedMW)
		}
	}
}

func TestUnitMatchesAnalyticPolynomial(t *testing.T) {
	u := paperUnit(t, 2024)
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got, _ := u.Evaluate(x, 1<<15)
		want := u.Poly.Eval(x)
		if math.Abs(got-want) > 0.015 {
			t.Errorf("x=%g: optical %g vs analytic %g", x, got, want)
		}
	}
}

func TestUnitMatchesElectronicReSC(t *testing.T) {
	// The optical unit and the electronic baseline estimate the same
	// polynomial; with independent randomness their estimates agree
	// within stochastic tolerance.
	c := paperCircuit(t)
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})
	u, err := NewUnit(c, poly, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := stochastic.NewReSCWithSeeds(poly, 99)
	if err != nil {
		t.Fatal(err)
	}
	const bits = 1 << 14
	for _, x := range []float64{0.2, 0.5, 0.8} {
		opt, _ := u.Evaluate(x, bits)
		ele, _ := r.Evaluate(x, bits)
		if math.Abs(opt-ele) > 0.03 {
			t.Errorf("x=%g: optical %g vs electronic %g", x, opt, ele)
		}
	}
}

func TestUnitNoiseFlipsBits(t *testing.T) {
	u := paperUnit(t, 31)
	// A large negative power excursion forces a '1' to read as '0'.
	flips := 0
	for i := 0; i < 500; i++ {
		r := u.Step(0.5, -1.0) // -1 mW swamps the ~0.5 mW '1' level
		if r.Z[r.Selected] == 1 && r.Bit == 0 {
			flips++
		}
	}
	if flips == 0 {
		t.Error("strong negative noise never flipped a '1'")
	}
}

func TestUnitSweepAccuracy(t *testing.T) {
	u := paperUnit(t, 77)
	xs := numeric.Linspace(0, 1, 9)
	got := u.EvaluateSweep(xs, 1<<13)
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = u.Poly.Eval(x)
	}
	if mae := numeric.MeanAbsError(got, want); mae > 0.02 {
		t.Errorf("sweep MAE = %g", mae)
	}
}

func TestGammaPolynomialOnOpticalUnit(t *testing.T) {
	// End-to-end 6th-order gamma correction on an optical unit — the
	// paper's motivating application (§V.C).
	poly, _, err := stochastic.GammaCorrection(0.45, 6)
	if err != nil {
		t.Fatal(err)
	}
	p, err := MRRFirst(MRRFirstSpec{Order: 6, WLSpacingNM: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCircuit(p)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnit(c, poly, 123)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 0.5, 0.9} {
		got, _ := u.Evaluate(x, 1<<14)
		want := math.Pow(x, 0.45)
		if math.Abs(got-want) > 0.06 {
			t.Errorf("gamma(%g): optical %g vs exact %g", x, got, want)
		}
	}
}
