package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomValidParams draws a random but physically valid parameter set
// around the paper's operating region.
func randomValidParams(rng *rand.Rand) Params {
	p := PaperParams()
	p.Order = 1 + rng.Intn(4)
	p.WLSpacingNM = 0.2 + rng.Float64()*1.0
	p.MZI.ILdB = 3 + rng.Float64()*4
	p.MZI.ERdB = 4 + rng.Float64()*10
	p.ProbePowerMW = 0.1 + rng.Float64()*2
	// Re-derive the pump for the new comb so states stay aligned.
	shift := p.FilterOffsetNM + float64(p.Order)*p.WLSpacingNM
	p.PumpPowerMW = p.OTE.PowerForShiftMW(shift) / p.MZI.ILFraction()
	return p
}

// TestPropertyTransmissionsPhysical: for any valid design, every
// probe transmission is a power fraction and received powers are
// non-negative and bounded by the injected probe power.
func TestPropertyTransmissionsPhysical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomValidParams(rng)
		c, err := NewCircuit(p)
		if err != nil {
			// Random draw violated a structural constraint (e.g.
			// comb wider than the FSR); that is a rejection, not a
			// failure.
			return true
		}
		n := p.Order
		z := make([]int, n+1)
		for trial := 0; trial < 8; trial++ {
			for i := range z {
				z[i] = rng.Intn(2)
			}
			w := rng.Intn(n + 1)
			d := c.FilterShiftNM(w)
			total := 0.0
			for i := 0; i <= n; i++ {
				tr := c.ProbeTransmission(i, z, d)
				if tr < 0 || tr > 1 {
					return false
				}
				total += tr
			}
			rx := c.ReceivedPowerMW(w, z)
			if rx < 0 || rx > float64(n+1)*p.ProbePowerMW {
				return false
			}
			if math.Abs(rx-total*p.ProbePowerMW) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFilterShiftMonotone: more destructive MZIs always mean
// less pump and a smaller filter shift.
func TestPropertyFilterShiftMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomValidParams(rng)
		c, err := NewCircuit(p)
		if err != nil {
			return true
		}
		prev := math.Inf(1)
		for w := 0; w <= p.Order; w++ {
			s := c.FilterShiftNM(w)
			if s >= prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDesignedCircuitsAlign: both design methods produce
// exactly aligned combs for any reasonable input.
func TestPropertyDesignedCircuitsAlign(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 1 + rng.Intn(4)
		spacing := 0.15 + rng.Float64()*0.8
		p, err := MRRFirst(MRRFirstSpec{Order: order, WLSpacingNM: spacing})
		if err != nil {
			return true // infeasible draws are rejections
		}
		c, err := NewCircuit(p)
		if err != nil {
			return false
		}
		return c.AlignmentErrorNM() < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMinProbeMonotoneInBER: a stricter BER target never
// needs less probe power.
func TestPropertyMinProbeMonotoneInBER(t *testing.T) {
	c := MustCircuit(PaperParams())
	f := func(a, b float64) bool {
		// Map to BER targets in (1e-9, 1e-1).
		berA := math.Pow(10, -1-8*frac(a))
		berB := math.Pow(10, -1-8*frac(b))
		lo, hi := math.Min(berA, berB), math.Max(berA, berB)
		return c.MinProbePowerMW(lo) >= c.MinProbePowerMW(hi)-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func frac(x float64) float64 {
	x = math.Abs(x)
	return x - math.Floor(x)
}

// TestPropertyEnergyBreakdownPositive: any feasible spacing yields
// strictly positive pump and probe energies and consistent totals.
func TestPropertyEnergyBreakdownPositive(t *testing.T) {
	m := NewEnergyModel(2)
	f := func(x float64) bool {
		w := 0.1 + 0.9*frac(x)
		b, err := m.Breakdown(w)
		if err != nil {
			return true
		}
		return b.PumpPJ > 0 && b.ProbePJ > 0 &&
			math.Abs(b.TotalPJ()-(b.PumpPJ+b.ProbePJ)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
