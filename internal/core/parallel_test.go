package core

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/optics"
	"repro/internal/stochastic"
)

func TestParallelArrayCorrectness(t *testing.T) {
	c := paperCircuit(t)
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})
	arr, err := NewParallelArray(c, poly, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	xs := numeric.Linspace(0, 1, 16)
	got := arr.EvaluateBatch(xs, 4096)
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = poly.Eval(x)
	}
	if mae := numeric.MeanAbsError(got, want); mae > 0.02 {
		t.Errorf("parallel batch MAE = %g", mae)
	}
}

func TestParallelArrayLanesIndependent(t *testing.T) {
	// Different lanes use different randomness: evaluating the same
	// x on each lane should give near-but-not-identical estimates.
	c := paperCircuit(t)
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})
	arr, err := NewParallelArray(c, poly, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{0.5, 0.5, 0.5}
	got := arr.EvaluateBatch(xs, 1024)
	if got[0] == got[1] && got[1] == got[2] {
		t.Error("all lanes produced identical streams; seeds not independent")
	}
}

func TestParallelArrayThroughputScales(t *testing.T) {
	c := paperCircuit(t)
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})
	one, _ := NewParallelArray(c, poly, 1, 1)
	eight, _ := NewParallelArray(c, poly, 8, 2)
	r := eight.ThroughputResultsPerSec(256) / one.ThroughputResultsPerSec(256)
	if math.Abs(r-8) > 1e-9 {
		t.Errorf("throughput scaling = %g, want 8", r)
	}
	if p := eight.TotalPowerMW() / one.TotalPowerMW(); math.Abs(p-8) > 1e-9 {
		t.Errorf("power scaling = %g, want 8", p)
	}
	// Power density is lane-invariant (both scale linearly).
	if d := eight.PowerDensityMWPerMM2() / one.PowerDensityMWPerMM2(); math.Abs(d-1) > 1e-9 {
		t.Errorf("density changed with lanes: ratio %g", d)
	}
}

func TestParallelArrayPowerAccounting(t *testing.T) {
	c := paperCircuit(t)
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})
	arr, _ := NewParallelArray(c, poly, 1, 1)
	p := c.P
	// Hand calculation: duty-cycled pump + 3 probes, / efficiency.
	pumpAvg := p.PumpPowerMW * p.PulseWidthS / p.BitPeriodS()
	want := (pumpAvg + 3*p.ProbePowerMW) / p.LasingEfficiency
	if got := arr.TotalPowerMW(); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("total power %g, want %g", got, want)
	}
}

func TestParallelArrayErrors(t *testing.T) {
	c := paperCircuit(t)
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})
	if _, err := NewParallelArray(c, poly, 0, 1); err == nil {
		t.Error("zero lanes accepted")
	}
	if _, err := NewParallelArray(c, stochastic.PaperF1(), 2, 1); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestAreaModel(t *testing.T) {
	p := PaperParams()
	a := p.AreaMM2()
	if a <= 0 || a > 10 {
		t.Errorf("area %g mm² implausible", a)
	}
	// More MZIs and rings -> more area.
	p6, err := MRRFirst(MRRFirstSpec{Order: 6, WLSpacingNM: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if p6.AreaMM2() <= a {
		t.Error("order-6 area not larger than order-2")
	}
	// Explicit phase-shifter length is honored.
	q := PaperParams()
	q.MZI.PhaseShifterLenMM = 4
	if q.AreaMM2() <= p.AreaMM2() {
		t.Error("longer phase shifter did not grow area")
	}
}

func TestFunctionUnitSquareRoot(t *testing.T) {
	// sqrt(x) is concave with coefficients in [0,1]: a good degree-4
	// target for the general API.
	fu, err := NewFunctionUnit(math.Sqrt, 4, 0.25, MRRFirstSpec{}, 77)
	if err != nil {
		t.Fatal(err)
	}
	// sqrt has unbounded slope at 0, so the clamped degree-4 fit's
	// worst error (~0.1) concentrates at the origin.
	if fu.FitMaxErr > 0.12 {
		t.Errorf("fit error %g", fu.FitMaxErr)
	}
	for _, x := range []float64{0.1, 0.5, 0.9} {
		got := fu.Evaluate(x, 1<<14)
		if math.Abs(got-math.Sqrt(x)) > fu.FitMaxErr+0.03 {
			t.Errorf("sqrt(%g): optical %g vs exact %g (fit floor %g)", x, got, math.Sqrt(x), fu.FitMaxErr)
		}
	}
	xs := numeric.Linspace(0, 1, 5)
	if got := fu.EvaluateSweep(xs, 2048); len(got) != 5 {
		t.Errorf("sweep length %d", len(got))
	}
}

func TestFunctionUnitErrors(t *testing.T) {
	if _, err := NewFunctionUnit(nil, 3, 0.2, MRRFirstSpec{}, 1); err == nil {
		t.Error("nil function accepted")
	}
	if _, err := NewFunctionUnit(math.Sqrt, -1, 0.2, MRRFirstSpec{}, 1); err == nil {
		t.Error("negative degree accepted")
	}
	if _, err := NewFunctionUnit(math.Sqrt, 3, 0.001, MRRFirstSpec{}, 1); err == nil {
		t.Error("infeasible spacing accepted")
	}
}

func TestAPDReducesProbePowerSystemLevel(t *testing.T) {
	// Future-work ref [21]: swapping the calibrated pin detector for
	// an APD with the same thermal floor cuts the required probe
	// power by M/sqrt(F).
	pin := DefaultDetector()
	apd := optics.PaperAPD(pin.NoiseCurrentA)

	base := PaperParams()
	cPin := MustCircuit(base)
	withAPD := base
	withAPD.Detector = apd.EffectiveDetector()
	cAPD := MustCircuit(withAPD)

	ratio := cPin.MinProbePowerMW(1e-6) / cAPD.MinProbePowerMW(1e-6)
	// The pin baseline has R = 1 A/W vs the APD's unity-gain 0.4 A/W,
	// so the end-to-end gain is SNRImprovement × 0.4.
	want := apd.SNRImprovement() * apd.ResponsivityAPerW / pin.ResponsivityAPerW
	if math.Abs(ratio-want)/want > 1e-9 {
		t.Errorf("APD probe reduction %g, want %g", ratio, want)
	}
	if ratio < 3 {
		t.Errorf("APD reduction only %gx", ratio)
	}
}
