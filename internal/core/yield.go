package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/stochastic"
)

// VariationSpec describes fabrication-induced device variation for
// Monte-Carlo yield analysis. The paper motivates stochastic
// computing precisely for "application domains where soft errors and
// process variations are of major concern" (§I); this analysis turns
// that concern on the optical implementation itself.
//
// All sigmas are standard deviations of independent Gaussian
// perturbations applied per fabricated instance.
type VariationSpec struct {
	// RingResonanceSigmaNM perturbs every ring's cold resonance
	// (typical silicon fab: 0.05–0.5 nm before trimming; assume
	// post-trim residuals of a few tens of pm).
	RingResonanceSigmaNM float64
	// CouplingSigma perturbs ring self-coupling coefficients
	// (relative).
	CouplingSigma float64
	// MZIILSigmaDB and MZIERSigmaDB perturb the MZI figures.
	MZIILSigmaDB float64
	MZIERSigmaDB float64

	// Samples is the Monte-Carlo count; Seed the RNG seed.
	Samples int
	Seed    uint64
	// TargetBER defines a passing die.
	TargetBER float64
}

// YieldResult summarizes the Monte-Carlo run.
type YieldResult struct {
	Samples int
	Pass    int
	// Yield is Pass/Samples.
	Yield float64
	// MeanBER and WorstBER aggregate the per-die worst-case BER.
	MeanBER  float64
	WorstBER float64
	// MeanEyeMW is the average worst-case eye opening.
	MeanEyeMW float64
}

// DieOutcome is one fabricated die's measurement. A structural die is
// one so far off it violates the circuit's structural constraints — a
// failed die with the worst-case BER and no eye. The JSON tags make
// die outcomes checkpointable: float64 round-trips JSON exactly, so a
// resumed yield sweep reassembles bit-identically.
type DieOutcome struct {
	BER        float64 `json:"ber"`
	EyeMW      float64 `json:"eye_mw"`
	Structural bool    `json:"structural,omitempty"`
}

// fabricateDie perturbs one virtual die of p with variation v, drawing
// every Gaussian from g in a fixed order, and measures it.
func fabricateDie(p Params, v VariationSpec, g *stochastic.Gaussian) DieOutcome {
	die := p
	// MZI device variation (clamped to physical ranges).
	die.MZI.ILdB = math.Max(0, die.MZI.ILdB+g.Next()*v.MZIILSigmaDB)
	die.MZI.ERdB = math.Max(0.1, die.MZI.ERdB+g.Next()*v.MZIERSigmaDB)
	// Filter resonance variation enters through the offset.
	die.FilterOffsetNM = math.Max(0, die.FilterOffsetNM+g.Next()*v.RingResonanceSigmaNM)

	c, err := NewCircuit(die)
	if err != nil {
		return DieOutcome{BER: 0.5, Structural: true}
	}
	// Per-ring perturbations on the instantiated devices.
	for i := range c.Modulators {
		c.Modulators[i].ResonanceNM += g.Next() * v.RingResonanceSigmaNM
		c.Modulators[i].SelfCoupling1 = clamp01open(c.Modulators[i].SelfCoupling1 * (1 + g.Next()*v.CouplingSigma))
		c.Modulators[i].SelfCoupling2 = clamp01open(c.Modulators[i].SelfCoupling2 * (1 + g.Next()*v.CouplingSigma))
	}
	c.Filter.SelfCoupling1 = clamp01open(c.Filter.SelfCoupling1 * (1 + g.Next()*v.CouplingSigma))
	c.Filter.SelfCoupling2 = clamp01open(c.Filter.SelfCoupling2 * (1 + g.Next()*v.CouplingSigma))

	return DieOutcome{BER: c.BER(), EyeMW: c.EyeOpeningMW()}
}

// MeasureDie fabricates and measures virtual die s of design p under
// variation v. Its Gaussians come from stochastic.DeriveSeed(v.Seed, s)
// alone, so a die's outcome depends only on (p, v, s) — the property
// that lets yield sweeps shard, checkpoint and resume by die index
// with bit-identical reassembly.
func MeasureDie(p Params, v VariationSpec, s int) DieOutcome {
	g := stochastic.NewGaussian(stochastic.NewSplitMix64(stochastic.DeriveSeed(v.Seed, s)))
	return fabricateDie(p, v, g)
}

// FoldYield aggregates per-die outcomes (in die order) into the
// YieldResult AnalyzeYield reports — the deterministic reduce shared
// by the direct, checkpointed and resumed paths.
func FoldYield(v VariationSpec, dies []DieOutcome) YieldResult {
	res := YieldResult{Samples: len(dies)}
	sumBER, sumEye := 0.0, 0.0
	for _, o := range dies {
		sumBER += o.BER
		if o.BER > res.WorstBER {
			res.WorstBER = o.BER
		}
		if o.Structural {
			continue
		}
		sumEye += o.EyeMW
		if o.BER <= v.TargetBER {
			res.Pass++
		}
	}
	if res.Samples > 0 {
		res.Yield = float64(res.Pass) / float64(res.Samples)
		res.MeanBER = sumBER / float64(res.Samples)
		res.MeanEyeMW = sumEye / float64(res.Samples)
	}
	return res
}

// checkYield validates a yield request.
func checkYield(p Params, v VariationSpec) error {
	if v.Samples < 1 {
		return fmt.Errorf("core: yield needs >= 1 sample")
	}
	if v.TargetBER <= 0 || v.TargetBER >= 0.5 {
		return fmt.Errorf("core: yield BER target %g outside (0, 0.5)", v.TargetBER)
	}
	return p.Validate()
}

// AnalyzeYieldOn fabricates `Samples` virtual dies of the design p
// with the given variation on the given engine and reports how many
// still meet the BER target.
//
// Die s is MeasureDie(p, v, s) — Gaussians seeded from
// stochastic.DeriveSeed(Seed, s) alone — and outcomes fold in index
// order, so the result is identical on any conforming engine, core
// count or scheduling. A nil engine is an error.
func AnalyzeYieldOn(e engine.Engine, p Params, v VariationSpec) (YieldResult, error) {
	if err := engine.Check(e); err != nil {
		return YieldResult{}, err
	}
	if err := checkYield(p, v); err != nil {
		return YieldResult{}, err
	}
	dies := make([]DieOutcome, v.Samples)
	e.For(v.Samples, func(s int) {
		dies[s] = MeasureDie(p, v, s)
	})
	return FoldYield(v, dies), nil
}

// AnalyzeYield is AnalyzeYieldOn on the process-default engine.
func AnalyzeYield(p Params, v VariationSpec) (YieldResult, error) {
	return AnalyzeYieldOn(engine.Default(), p, v)
}

// AnalyzeYieldSerial is the serial oracle: AnalyzeYieldOn on
// engine.Serial.
func AnalyzeYieldSerial(p Params, v VariationSpec) (YieldResult, error) {
	return AnalyzeYieldOn(engine.Serial, p, v)
}

// AnalyzeYieldCtx is AnalyzeYieldOn with cooperative cancellation: a
// fired ctx stops the die fan-out at a die boundary and surfaces a
// *engine.Partial (wrapping the context error, or the
// *parallel.PanicError of a faulting die) instead of a result.
func AnalyzeYieldCtx(ctx context.Context, e engine.Engine, p Params, v VariationSpec) (YieldResult, error) {
	if err := engine.Check(e); err != nil {
		return YieldResult{}, err
	}
	if err := checkYield(p, v); err != nil {
		return YieldResult{}, err
	}
	dies := make([]DieOutcome, v.Samples)
	if err := engine.RunCtx(ctx, e, v.Samples, nil, func(s int) {
		dies[s] = MeasureDie(p, v, s)
	}); err != nil {
		return YieldResult{}, err
	}
	return FoldYield(v, dies), nil
}

func clamp01open(x float64) float64 {
	if x <= 0 {
		return 1e-6
	}
	if x > 1 {
		return 1
	}
	return x
}

// String implements fmt.Stringer.
func (r YieldResult) String() string {
	return fmt.Sprintf("yield %d/%d (%.1f%%), mean BER %.3g, worst BER %.3g, mean eye %.4f mW",
		r.Pass, r.Samples, r.Yield*100, r.MeanBER, r.WorstBER, r.MeanEyeMW)
}
