package core

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/stochastic"
)

// VariationSpec describes fabrication-induced device variation for
// Monte-Carlo yield analysis. The paper motivates stochastic
// computing precisely for "application domains where soft errors and
// process variations are of major concern" (§I); this analysis turns
// that concern on the optical implementation itself.
//
// All sigmas are standard deviations of independent Gaussian
// perturbations applied per fabricated instance.
type VariationSpec struct {
	// RingResonanceSigmaNM perturbs every ring's cold resonance
	// (typical silicon fab: 0.05–0.5 nm before trimming; assume
	// post-trim residuals of a few tens of pm).
	RingResonanceSigmaNM float64
	// CouplingSigma perturbs ring self-coupling coefficients
	// (relative).
	CouplingSigma float64
	// MZIILSigmaDB and MZIERSigmaDB perturb the MZI figures.
	MZIILSigmaDB float64
	MZIERSigmaDB float64

	// Samples is the Monte-Carlo count; Seed the RNG seed.
	Samples int
	Seed    uint64
	// TargetBER defines a passing die.
	TargetBER float64
}

// YieldResult summarizes the Monte-Carlo run.
type YieldResult struct {
	Samples int
	Pass    int
	// Yield is Pass/Samples.
	Yield float64
	// MeanBER and WorstBER aggregate the per-die worst-case BER.
	MeanBER  float64
	WorstBER float64
	// MeanEyeMW is the average worst-case eye opening.
	MeanEyeMW float64
}

// dieOutcome is one fabricated die's measurement. A structural die is
// one so far off it violates the circuit's structural constraints — a
// failed die with the worst-case BER and no eye.
type dieOutcome struct {
	ber, eye   float64
	structural bool
}

// fabricateDie perturbs one virtual die of p with variation v, drawing
// every Gaussian from g in a fixed order, and measures it.
func fabricateDie(p Params, v VariationSpec, g *stochastic.Gaussian) dieOutcome {
	die := p
	// MZI device variation (clamped to physical ranges).
	die.MZI.ILdB = math.Max(0, die.MZI.ILdB+g.Next()*v.MZIILSigmaDB)
	die.MZI.ERdB = math.Max(0.1, die.MZI.ERdB+g.Next()*v.MZIERSigmaDB)
	// Filter resonance variation enters through the offset.
	die.FilterOffsetNM = math.Max(0, die.FilterOffsetNM+g.Next()*v.RingResonanceSigmaNM)

	c, err := NewCircuit(die)
	if err != nil {
		return dieOutcome{ber: 0.5, structural: true}
	}
	// Per-ring perturbations on the instantiated devices.
	for i := range c.Modulators {
		c.Modulators[i].ResonanceNM += g.Next() * v.RingResonanceSigmaNM
		c.Modulators[i].SelfCoupling1 = clamp01open(c.Modulators[i].SelfCoupling1 * (1 + g.Next()*v.CouplingSigma))
		c.Modulators[i].SelfCoupling2 = clamp01open(c.Modulators[i].SelfCoupling2 * (1 + g.Next()*v.CouplingSigma))
	}
	c.Filter.SelfCoupling1 = clamp01open(c.Filter.SelfCoupling1 * (1 + g.Next()*v.CouplingSigma))
	c.Filter.SelfCoupling2 = clamp01open(c.Filter.SelfCoupling2 * (1 + g.Next()*v.CouplingSigma))

	return dieOutcome{ber: c.BER(), eye: c.EyeOpeningMW()}
}

// AnalyzeYield fabricates `Samples` virtual dies of the design p with
// the given variation and reports how many still meet the BER target.
//
// Dies fan out over the internal/parallel worker pool: die s draws its
// Gaussians from a generator seeded by stochastic.DeriveSeed(Seed, s)
// alone, and the per-die outcomes are aggregated in index order, so
// the result is identical on any core count or scheduling. The
// sweep therefore scales with cores while staying reproducible.
func AnalyzeYield(p Params, v VariationSpec) (YieldResult, error) {
	if v.Samples < 1 {
		return YieldResult{}, fmt.Errorf("core: yield needs >= 1 sample")
	}
	if v.TargetBER <= 0 || v.TargetBER >= 0.5 {
		return YieldResult{}, fmt.Errorf("core: yield BER target %g outside (0, 0.5)", v.TargetBER)
	}
	if err := p.Validate(); err != nil {
		return YieldResult{}, err
	}
	dies := make([]dieOutcome, v.Samples)
	parallel.For(v.Samples, func(s int) {
		g := stochastic.NewGaussian(stochastic.NewSplitMix64(stochastic.DeriveSeed(v.Seed, s)))
		dies[s] = fabricateDie(p, v, g)
	})

	res := YieldResult{Samples: v.Samples}
	sumBER, sumEye := 0.0, 0.0
	for _, o := range dies {
		sumBER += o.ber
		if o.ber > res.WorstBER {
			res.WorstBER = o.ber
		}
		if o.structural {
			continue
		}
		sumEye += o.eye
		if o.ber <= v.TargetBER {
			res.Pass++
		}
	}
	res.Yield = float64(res.Pass) / float64(v.Samples)
	res.MeanBER = sumBER / float64(v.Samples)
	res.MeanEyeMW = sumEye / float64(v.Samples)
	return res, nil
}

func clamp01open(x float64) float64 {
	if x <= 0 {
		return 1e-6
	}
	if x > 1 {
		return 1
	}
	return x
}

// String implements fmt.Stringer.
func (r YieldResult) String() string {
	return fmt.Sprintf("yield %d/%d (%.1f%%), mean BER %.3g, worst BER %.3g, mean eye %.4f mW",
		r.Pass, r.Samples, r.Yield*100, r.MeanBER, r.WorstBER, r.MeanEyeMW)
}
