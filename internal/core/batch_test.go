package core

import (
	"math"
	"testing"

	"repro/internal/stochastic"
)

// gammaUnit builds a degree-6 optical unit (the §V.C application
// order) for the packed-path tests.
func gammaUnit(t *testing.T, seed uint64) *Unit {
	t.Helper()
	poly, _, err := stochastic.GammaCorrection(0.45, 6)
	if err != nil {
		t.Fatal(err)
	}
	p, err := MRRFirst(MRRFirstSpec{Order: 6, WLSpacingNM: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCircuit(p)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnit(c, poly, seed)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestUnitEvaluateWordsMatchesEvaluate is the optical-side tentpole
// equivalence: the word-parallel datapath must emit the same
// bitstream as the bit-serial Step loop, for the order-2 paper design
// and the order-6 gamma design, across seeds and awkward lengths.
func TestUnitEvaluateWordsMatchesEvaluate(t *testing.T) {
	builders := map[string]func(*testing.T, uint64) *Unit{
		"paper-order2": paperUnit,
		"gamma-order6": gammaUnit,
	}
	for name, build := range builders {
		for _, seed := range []uint64{3, 1234} {
			serial := build(t, seed)
			packed := build(t, seed)
			for _, length := range []int{1, 63, 64, 65, 500} {
				for _, x := range []float64{0, 0.3, 0.8, 1} {
					vs, bs := serial.Evaluate(x, length)
					vp, bp := packed.EvaluateWords(x, length)
					if vs != vp {
						t.Fatalf("%s seed %d len %d x=%g: value %g vs %g", name, seed, length, x, vs, vp)
					}
					for w := 0; w < bs.WordCount(); w++ {
						if bs.Word(w) != bp.Word(w) {
							t.Fatalf("%s seed %d len %d x=%g: word %d %x vs %x",
								name, seed, length, x, w, bs.Word(w), bp.Word(w))
						}
					}
				}
			}
		}
	}
}

func TestUnitEvaluateBatchMatchesSeededOracle(t *testing.T) {
	u := paperUnit(t, 21)
	oracle := paperUnit(t, 21)
	xs := []float64{0, 0.2, 0.5, 0.9, 1}
	const length = 300
	got := u.EvaluateBatch(xs, length)
	if len(got) != len(xs) {
		t.Fatalf("batch length %d", len(got))
	}
	for i, x := range xs {
		want := oracle.evalSeeded(stochastic.DeriveSeed(oracle.seed, i), x, length)
		if got[i] != want {
			t.Errorf("x[%d]=%g: batch %g vs seeded oracle %g", i, x, got[i], want)
		}
	}
	again := paperUnit(t, 21).EvaluateBatch(xs, length)
	for i := range got {
		if got[i] != again[i] {
			t.Errorf("batch not reproducible at %d: %g vs %g", i, got[i], again[i])
		}
	}
}

// TestUnitEvalSeededFallbackMatchesPacked pins the cache-free serial
// fallback (used beyond maxTableOrder) to the packed path on a
// tabulatable order, so the two implementations cannot drift.
func TestUnitEvalSeededFallbackMatchesPacked(t *testing.T) {
	u := paperUnit(t, 17)
	dec := u.decisionTable()
	if dec == nil {
		t.Fatal("order 2 should tabulate")
	}
	for i, x := range []float64{0, 0.4, 1} {
		seed := stochastic.DeriveSeed(99, i)
		data, coef := seededSNGs(u.Circuit.P.Order, seed)
		packed := u.evalPacked(dec, data, coef, x, 257).Value()

		// Re-run through the serial fallback by hiding the table.
		fresh := paperUnit(t, 17)
		fresh.decOnce.Do(func() {}) // leave decisions nil
		serial := fresh.evalSeeded(seed, x, 257)
		if packed != serial {
			t.Errorf("x=%g: packed %g vs serial fallback %g", x, packed, serial)
		}
	}
}

func TestUnitEvaluateBatchAccuracy(t *testing.T) {
	u := paperUnit(t, 2024)
	xs := []float64{0, 0.25, 0.5, 0.75, 1}
	got := u.EvaluateBatch(xs, 1<<15)
	for i, x := range xs {
		want := u.Poly.Eval(x)
		if math.Abs(got[i]-want) > 0.015 {
			t.Errorf("x=%g: batch %g vs analytic %g", x, got[i], want)
		}
	}
}

// TestUnitEvaluateBatchRace exercises concurrent EvaluateBatch calls
// on one shared unit (shared decision table, per-index sources);
// `go test -race` turns it into a data-race check.
func TestUnitEvaluateBatchRace(t *testing.T) {
	u := paperUnit(t, 8)
	xs := make([]float64, 48)
	for i := range xs {
		xs[i] = float64(i) / 47
	}
	done := make(chan []float64, 4)
	for g := 0; g < 4; g++ {
		go func() { done <- u.EvaluateBatch(xs, 256) }()
	}
	first := <-done
	for g := 1; g < 4; g++ {
		other := <-done
		for i := range first {
			if first[i] != other[i] {
				t.Fatalf("concurrent batches disagree at %d: %g vs %g", i, first[i], other[i])
			}
		}
	}
}

func BenchmarkUnitEvaluateSerial(b *testing.B) {
	c := MustCircuit(PaperParams())
	u, err := NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Evaluate(0.5, 4096)
	}
}

func BenchmarkUnitEvaluateWords(b *testing.B) {
	c := MustCircuit(PaperParams())
	u, err := NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 3)
	if err != nil {
		b.Fatal(err)
	}
	u.decisionTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.EvaluateWords(0.5, 4096)
	}
}

func BenchmarkUnitEvaluateBatch(b *testing.B) {
	c := MustCircuit(PaperParams())
	u, err := NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 3)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = float64(i) / 255
	}
	u.decisionTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.EvaluateBatch(xs, 4096)
	}
}
