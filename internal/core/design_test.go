package core

import (
	"math"
	"testing"

	"repro/internal/optics"
)

func TestMRRFirstPaperAnchors(t *testing.T) {
	// §V.A with the Fig. 5 rings: 1 nm spacing, λ2 = 1550 nm,
	// λref = 1550.1 nm, IL = 4.5 dB → pump 591.8 mW, ER 13.22 dB.
	p, err := MRRFirst(MRRFirstSpec{
		Order:       2,
		WLSpacingNM: 1.0,
		ModShape:    Fig5ModulatorShape(),
		FilterShape: Fig5FilterShape(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.PumpPowerMW-591.8) > 0.5 {
		t.Errorf("pump = %g mW, paper 591.8", p.PumpPowerMW)
	}
	if math.Abs(p.MZI.ERdB-13.22) > 0.05 {
		t.Errorf("ER = %g dB, paper 13.22", p.MZI.ERdB)
	}
	if p.ProbePowerMW <= 0 || math.IsInf(p.ProbePowerMW, 1) {
		t.Errorf("probe = %g mW", p.ProbePowerMW)
	}
	// The designed circuit is exactly aligned.
	if got := MustCircuit(p).AlignmentErrorNM(); got > 1e-3 {
		t.Errorf("alignment error = %g nm", got)
	}
}

func TestMRRFirstDefaults(t *testing.T) {
	p, err := MRRFirst(MRRFirstSpec{Order: 2, WLSpacingNM: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if p.LambdaMaxNM != optics.CBandCenterNM {
		t.Errorf("default λn = %g", p.LambdaMaxNM)
	}
	if p.FilterOffsetNM != 0.1 || p.DeltaLambdaNM != 0.1 {
		t.Errorf("default offsets = %g, %g", p.FilterOffsetNM, p.DeltaLambdaNM)
	}
	if p.MZI.ILdB != 4.5 {
		t.Errorf("default IL = %g", p.MZI.ILdB)
	}
	if p.BitRateGbps != 1 || p.PulseWidthS != optics.PaperPulseWidthS || p.LasingEfficiency != 0.2 {
		t.Error("paper §V.C defaults not applied")
	}
}

func TestMRRFirstErrors(t *testing.T) {
	if _, err := MRRFirst(MRRFirstSpec{Order: 0, WLSpacingNM: 1}); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := MRRFirst(MRRFirstSpec{Order: 2, WLSpacingNM: -1}); err == nil {
		t.Error("negative spacing accepted")
	}
	// A spacing far below the ring linewidth closes the eye.
	if _, err := MRRFirst(MRRFirstSpec{Order: 2, WLSpacingNM: 0.02}); err == nil {
		t.Error("collapsed comb accepted")
	}
}

func TestMZIFirstXiaoAnchor(t *testing.T) {
	// §V.B: Xiao et al. (IL 6.5 dB, ER 7.5 dB) at 0.6 W pump and
	// 1e-6 BER → 0.26 mW probe. The derived spacing follows the
	// closed form OPpump·OTE·IL%·(1−ER%)/n ≈ 0.552 nm.
	p, err := MZIFirst(MZIFirstSpec{
		Order:       2,
		MZI:         optics.MZI{ILdB: 6.5, ERdB: 7.5},
		PumpPowerMW: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	il := optics.LossToLinear(6.5)
	er := optics.ExtinctionToLinear(7.5)
	wantSpacing := 600 * 0.01 * il * (1 - er) / 2
	if math.Abs(p.WLSpacingNM-wantSpacing) > 1e-9 {
		t.Errorf("spacing = %g, closed form %g", p.WLSpacingNM, wantSpacing)
	}
	if math.Abs(p.ProbePowerMW-0.26) > 0.005 {
		t.Errorf("probe = %g mW, paper 0.26", p.ProbePowerMW)
	}
	// Comb alignment holds by construction.
	if got := MustCircuit(p).AlignmentErrorNM(); got > 1e-3 {
		t.Errorf("alignment error = %g nm", got)
	}
}

func TestMZIFirstTrends(t *testing.T) {
	// §V.B: probe power rises as IL increases and as ER decreases.
	base := MZIFirstSpec{Order: 2, PumpPowerMW: 600}
	probe := func(il, er float64) float64 {
		s := base
		s.MZI = optics.MZI{ILdB: il, ERdB: er}
		p, err := MZIFirst(s)
		if err != nil {
			t.Fatalf("IL=%g ER=%g: %v", il, er, err)
		}
		return p.ProbePowerMW
	}
	if !(probe(7.0, 6.0) > probe(4.0, 6.0)) {
		t.Error("probe power did not rise with IL")
	}
	if !(probe(5.0, 4.5) > probe(5.0, 7.5)) {
		t.Error("probe power did not rise as ER fell")
	}
}

func TestMZIFirstErrors(t *testing.T) {
	dev := optics.MZI{ILdB: 5, ERdB: 6}
	if _, err := MZIFirst(MZIFirstSpec{Order: 0, MZI: dev, PumpPowerMW: 600}); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := MZIFirst(MZIFirstSpec{Order: 2, MZI: dev, PumpPowerMW: 0}); err == nil {
		t.Error("zero pump accepted")
	}
	if _, err := MZIFirst(MZIFirstSpec{Order: 2, MZI: optics.MZI{ILdB: -1}, PumpPowerMW: 600}); err == nil {
		t.Error("invalid MZI accepted")
	}
	// Tiny pump power → comb tighter than the ring linewidth → eye
	// closed.
	if _, err := MZIFirst(MZIFirstSpec{Order: 2, MZI: dev, PumpPowerMW: 5}); err == nil {
		t.Error("collapsed comb accepted")
	}
}

func TestMZIFirstCombUniformity(t *testing.T) {
	p, err := MZIFirst(MZIFirstSpec{Order: 4, MZI: optics.MZI{ILdB: 5, ERdB: 6}, PumpPowerMW: 800})
	if err != nil {
		t.Fatal(err)
	}
	ls := p.Lambdas()
	for i := 1; i < len(ls); i++ {
		if math.Abs((ls[i]-ls[i-1])-p.WLSpacingNM) > 1e-9 {
			t.Errorf("comb not uniform at %d: %g", i, ls[i]-ls[i-1])
		}
	}
	// Every data weight lands on its channel.
	if got := MustCircuit(p).AlignmentErrorNM(); got > 1e-3 {
		t.Errorf("alignment error = %g nm", got)
	}
}

func TestRequiredStreamLength(t *testing.T) {
	// Perfect channel, 1/32 RMS target: 0.25/eps^2 = 256.
	if got := RequiredStreamLength(1.0/32, 0); got != 256 {
		t.Errorf("L(1/32, 0) = %d, want 256", got)
	}
	// A noisy channel needs more bits. (0.25/eps² = 1024 exactly, so
	// any extra BER variance crosses the power-of-two boundary.)
	clean := RequiredStreamLength(1.0/64, 0)
	noisy := RequiredStreamLength(1.0/64, 0.1)
	if clean != 1024 {
		t.Errorf("clean length = %d, want 1024", clean)
	}
	if noisy <= clean {
		t.Errorf("BER did not increase stream length: %d vs %d", noisy, clean)
	}
	// Power of two.
	for _, l := range []int{clean, noisy} {
		if l&(l-1) != 0 {
			t.Errorf("length %d not a power of two", l)
		}
	}
}

func TestRequiredStreamLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("epsilon 0 did not panic")
		}
	}()
	RequiredStreamLength(0, 0.1)
}
