package core

import (
	"fmt"
	"sync"

	"repro/internal/stochastic"
)

// Unit is the end-to-end optical stochastic-computing unit: the
// randomizer (SNGs driving the MZIs and the coefficient modulators),
// the optical datapath (Circuit), and the de-randomizer (OOK decision
// against the calibrated threshold plus a ones counter).
//
// In the absence of detector noise the decision is exact whenever the
// worst-case eye is open, making the unit functionally equivalent to
// the electronic ReSC baseline; internal/transient injects noise to
// study the BER-induced accuracy loss.
type Unit struct {
	Circuit *Circuit
	Poly    stochastic.BernsteinPoly

	dataSNG []*stochastic.SNG
	coefSNG []*stochastic.SNG

	seed        uint64
	thresholdMW float64

	// decisions is the fully-tabulated noiseless output bit,
	// decisions[weight] a bitset over z-masks, built once on first
	// word-parallel evaluation (see decisionTable) by thresholding the
	// circuit's shared received-power table. Immutable after decOnce
	// fires, so the batch workers share it without locking.
	decOnce   sync.Once
	decisions [][]uint64
}

// NewUnit builds a unit for the polynomial on the given circuit. The
// polynomial degree must match the circuit order and the coefficients
// must be probabilities. Randomness derives from seed via independent
// SplitMix64 streams.
func NewUnit(c *Circuit, poly stochastic.BernsteinPoly, seed uint64) (*Unit, error) {
	if poly.Degree() != c.P.Order {
		return nil, fmt.Errorf("core: polynomial degree %d != circuit order %d", poly.Degree(), c.P.Order)
	}
	if !poly.Representable() {
		return nil, fmt.Errorf("core: polynomial %v not SC-representable", poly)
	}
	u := &Unit{Circuit: c, Poly: poly, seed: seed}
	u.dataSNG, u.coefSNG = seededSNGs(c.P.Order, seed)
	u.thresholdMW = c.Decider().ThresholdMW
	return u, nil
}

// seededSNGs derives the unit's n data and n+1 coefficient generators
// from a base seed as independent SplitMix64 streams.
func seededSNGs(order int, seed uint64) (data, coef []*stochastic.SNG) {
	data = make([]*stochastic.SNG, order)
	for i := range data {
		data[i] = stochastic.NewSNG(stochastic.NewSplitMix64(seed + uint64(i)*0x9E3779B9 + 1))
	}
	coef = make([]*stochastic.SNG, order+1)
	for i := range coef {
		coef[i] = stochastic.NewSNG(stochastic.NewSplitMix64(seed + 0x5DEECE66D + uint64(i)*0x61C88647))
	}
	return data, coef
}

// receivedMW returns the tabulated received power for a data weight
// and coefficient bits, enumerating the circuit directly for orders
// too large to tabulate.
func (u *Unit) receivedMW(weight int, z []int, zmask int) float64 {
	if pow := u.powerTable(); pow != nil {
		return pow[weight][zmask]
	}
	return u.Circuit.ReceivedPowerMW(weight, z)
}

// ThresholdMW returns the OOK decision threshold calibrated from the
// circuit's worst-case power bands.
func (u *Unit) ThresholdMW() float64 { return u.thresholdMW }

// StepResult captures one optical clock cycle for inspection.
type StepResult struct {
	// X holds the data bits that drove the MZIs; Z the coefficient
	// bits that drove the modulators.
	X, Z []int
	// Weight is the number of '1' data bits; Selected the probe
	// channel the filter routed to the detector.
	Weight, Selected int
	// ReceivedMW is the optical power at the photodetector (before
	// any noise).
	ReceivedMW float64
	// Bit is the thresholded output bit.
	Bit int
}

// Step runs one optical clock cycle at input probability x. noiseMW
// is added to the received power before thresholding (0 for the
// noiseless analytic model; internal/transient supplies Gaussian
// samples).
func (u *Unit) Step(x float64, noiseMW float64) StepResult {
	n := u.Circuit.P.Order
	r := StepResult{X: make([]int, n), Z: make([]int, n+1)}
	for i := range r.X {
		r.X[i] = u.dataSNG[i].NextBit(x)
		r.Weight += r.X[i]
	}
	zmask := 0
	for i := range r.Z {
		r.Z[i] = u.coefSNG[i].NextBit(u.Poly.Coef[i])
		zmask |= r.Z[i] << i
	}
	r.Selected = u.Circuit.SelectedChannel(r.Weight)
	r.ReceivedMW = u.receivedMW(r.Weight, r.Z, zmask)
	if r.ReceivedMW+noiseMW > u.thresholdMW {
		r.Bit = 1
	}
	return r
}

// Evaluate runs `length` cycles at input x (noiseless) and returns
// the de-randomized estimate of B(x) with the raw output stream.
func (u *Unit) Evaluate(x float64, length int) (float64, *stochastic.Bitstream) {
	out := stochastic.NewBitstream(length)
	for t := 0; t < length; t++ {
		out.Set(t, u.Step(x, 0).Bit)
	}
	return out.Value(), out
}

// EvaluateSweep evaluates the unit across xs, one fresh `length`-bit
// stream per point. It is EvaluateBatch: randomness derives from the
// unit's seed and the point index (not from the unit's own advancing
// generators), so repeated sweeps on one unit return identical
// results; interleave Evaluate calls for independent repetitions.
func (u *Unit) EvaluateSweep(xs []float64, length int) []float64 {
	return u.EvaluateBatch(xs, length)
}
