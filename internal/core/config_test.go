package core

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParamsJSONRoundTrip(t *testing.T) {
	p := PaperParams()
	var buf bytes.Buffer
	if err := SaveParams(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := LoadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Errorf("round trip changed params:\n%+v\nvs\n%+v", back, p)
	}
	// The reloaded design reproduces the same physics.
	c1, c2 := MustCircuit(p), MustCircuit(back)
	if math.Abs(c1.BER()-c2.BER()) > 1e-30 && c1.BER() != c2.BER() {
		t.Error("reloaded circuit differs")
	}
}

func TestLoadParamsRejectsInvalid(t *testing.T) {
	// Structurally valid JSON, physically invalid params.
	bad := `{"Order": 0}`
	if _, err := LoadParams(strings.NewReader(bad)); err == nil {
		t.Error("invalid params accepted")
	}
	// Unknown fields are typos, not extensions.
	unk := `{"Order": 2, "Typo": 1}`
	if _, err := LoadParams(strings.NewReader(unk)); err == nil {
		t.Error("unknown field accepted")
	}
	// Garbage.
	if _, err := LoadParams(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
}

func TestParamsFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "design.json")
	p := PaperParams()
	if err := SaveParamsFile(path, p); err != nil {
		t.Fatal(err)
	}
	back, err := LoadParamsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Error("file round trip changed params")
	}
	if _, err := LoadParamsFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("file not written: %v", err)
	}
}
