package core

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/enginetest"
)

// yieldSuiteSpec is the variation fixture shared by the suite cases:
// mild variation so both passing and failing dies occur.
func yieldSuiteSpec() VariationSpec {
	return VariationSpec{
		RingResonanceSigmaNM: 0.05,
		CouplingSigma:        0.01,
		Samples:              24,
		Seed:                 7,
		TargetBER:            1e-6,
	}
}

// TestEngineSuite registers the package's engine-accepting entry
// points into the generic cross-engine equivalence and
// GOMAXPROCS-determinism suite: the chunked bracketing pre-pass of
// OptimalSpacingOn must land on the bit-identical optimum on every
// engine, and SweepOn must filter feasible rows in index order.
func TestEngineSuite(t *testing.T) {
	enginetest.Run(t, nil, []enginetest.Case{
		{
			Name: "core.EnergyModel.OptimalSpacingOn/order2",
			Eval: func(e engine.Engine) (any, error) {
				return NewEnergyModel(2).OptimalSpacingOn(e, 0.1, 0.3)
			},
		},
		{
			Name: "core.EnergyModel.OptimalSpacingOn/order4",
			Eval: func(e engine.Engine) (any, error) {
				return NewEnergyModel(4).OptimalSpacingOn(e, 0.1, 0.3)
			},
		},
		{
			Name: "core.EnergyModel.SweepOn",
			Eval: func(e engine.Engine) (any, error) {
				// The range straddles the feasibility boundary, so the
				// index-ordered filter is actually exercised.
				return NewEnergyModel(2).SweepOn(e, 0.02, 0.3, 30), nil
			},
		},
		{
			Name: "core.AnalyzeYieldOn",
			Eval: func(e engine.Engine) (any, error) {
				return AnalyzeYieldOn(e, PaperParams(), yieldSuiteSpec())
			},
		},
		{
			Name: "core.AnalyzeYieldCtx",
			Eval: func(e engine.Engine) (any, error) {
				return AnalyzeYieldCtx(context.Background(), e, PaperParams(), yieldSuiteSpec())
			},
		},
	})
}

// TestSerialShims pins the legacy names onto the engine layer: the
// serial oracle OptimalSpacingSerial equals OptimalSpacing (and both
// reject an infeasible range), Sweep equals SweepOn on the default.
func TestSerialShims(t *testing.T) {
	m := NewEnergyModel(2)
	serial, err := m.OptimalSpacingSerial(0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	def, err := m.OptimalSpacing(0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if serial != def {
		t.Errorf("OptimalSpacingSerial %+v vs OptimalSpacing %+v", serial, def)
	}
	if _, err := m.OptimalSpacingSerial(0.005, 0.02); err == nil {
		t.Error("serial shim accepted infeasible range")
	}
	rows := m.Sweep(0.11, 0.3, 8)
	rowsOn := m.SweepOn(engine.Serial, 0.11, 0.3, 8)
	if len(rows) != len(rowsOn) {
		t.Fatalf("Sweep %d rows vs serial SweepOn %d", len(rows), len(rowsOn))
	}
	for i := range rows {
		if rows[i] != rowsOn[i] {
			t.Errorf("row %d: %+v vs %+v", i, rows[i], rowsOn[i])
		}
	}

	ySerial, err := AnalyzeYieldSerial(PaperParams(), yieldSuiteSpec())
	if err != nil {
		t.Fatal(err)
	}
	y, err := AnalyzeYield(PaperParams(), yieldSuiteSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ySerial != y {
		t.Errorf("AnalyzeYieldSerial %+v vs AnalyzeYield %+v", ySerial, y)
	}
}

// TestNilEngineMisuse: OptimalSpacingOn reports a nil engine as a
// clean error; SweepOn (no error return) panics, matching engine.Use.
func TestNilEngineMisuse(t *testing.T) {
	m := NewEnergyModel(2)
	if _, err := m.OptimalSpacingOn(nil, 0.1, 0.3); err == nil {
		t.Error("OptimalSpacingOn(nil) did not error")
	}
	if _, err := AnalyzeYieldOn(nil, PaperParams(), yieldSuiteSpec()); err == nil {
		t.Error("AnalyzeYieldOn(nil) did not error")
	}
	if _, err := AnalyzeYieldCtx(context.Background(), nil, PaperParams(), yieldSuiteSpec()); err == nil {
		t.Error("AnalyzeYieldCtx(nil) did not error")
	}
	defer func() {
		if recover() == nil {
			t.Error("SweepOn(nil engine) did not panic")
		}
	}()
	m.SweepOn(nil, 0.1, 0.3, 4)
}
