package core

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/stochastic"
)

// This file is the word-parallel mirror of the packed ReSC engine in
// internal/stochastic for the end-to-end optical unit. The noiseless
// optical datapath is a pure function of the data weight and the
// coefficient bit-vector — received power thresholded against the
// calibrated OOK decision level — so 64 clock cycles collapse to: SNG
// words, a carry-save adder tree for the weight, and a lookup in a
// precomputed (weight, z-mask) → bit table. The packed path emits
// bitstreams identical to the serial Step/Evaluate path.

// decisionTable returns the noiseless output-bit table,
// decisions[weight] a bitset indexed by coefficient z-mask, building
// it on first use by thresholding the circuit's shared power table —
// the finished table is immutable and lock-free to share across batch
// workers. Returns nil for orders beyond maxTableOrder.
func (u *Unit) decisionTable() [][]uint64 {
	n := u.Circuit.P.Order
	if n > maxTableOrder {
		return nil
	}
	u.decOnce.Do(func() {
		pow := u.powerTable()
		masks := 1 << (n + 1)
		rows := make([][]uint64, n+1)
		for w := range rows {
			row := make([]uint64, (masks+63)/64)
			for zmask := 0; zmask < masks; zmask++ {
				if pow[w][zmask] > u.thresholdMW {
					row[zmask/64] |= 1 << uint(zmask%64)
				}
			}
			rows[w] = row
		}
		u.decisions = rows
	})
	return u.decisions
}

// drawWord advances the generators one packed word of nbits cycles:
// data words accumulate into the carry-save planes (returned, as the
// tree may grow), coefficient words fill coefWords. Both packed
// evaluators (noiseless and noisy) consume their sources through this
// one helper, which is what keeps them cycle-aligned with the serial
// Step path and with each other.
func (u *Unit) drawWord(data, coef []*stochastic.SNG, x float64, nbits int, planes []uint64, coefWords []uint64) []uint64 {
	planes = planes[:0]
	for i := range data {
		planes = stochastic.AddPlane(planes, data[i].NextWord(x, nbits))
	}
	for i := range coef {
		coefWords[i] = coef[i].NextWord(u.Poly.Coef[i], nbits)
	}
	return planes
}

// decodeCycles transposes the packed word state back to per-cycle
// integers: weights[t] the data-bit sum and zmasks[t] the coefficient
// bit-vector of cycle t — the shared decode between the noiseless
// table lookup and the noisy threshold compare.
func decodeCycles(planes, coefWords []uint64, nbits int, weights, zmasks *[64]int) {
	for t := 0; t < nbits; t++ {
		weight := 0
		for k, pl := range planes {
			weight |= int(pl>>uint(t)&1) << uint(k)
		}
		zmask := 0
		for i, cw := range coefWords {
			zmask |= int(cw>>uint(t)&1) << uint(i)
		}
		weights[t], zmasks[t] = weight, zmask
	}
}

// evalPacked runs `length` cycles of the word-parallel datapath with
// the given generators and decision table, 64 cycles per iteration.
func (u *Unit) evalPacked(dec [][]uint64, data, coef []*stochastic.SNG, x float64, length int) *stochastic.Bitstream {
	n := u.Circuit.P.Order
	out := stochastic.NewBitstream(length)
	var planes []uint64
	coefWords := make([]uint64, n+1)
	var weights, zmasks [64]int
	for w := 0; w < out.WordCount(); w++ {
		nbits := out.WordBits(w)
		planes = u.drawWord(data, coef, x, nbits, planes, coefWords)
		decodeCycles(planes, coefWords, nbits, &weights, &zmasks)
		var word uint64
		for t := 0; t < nbits; t++ {
			zmask := zmasks[t]
			word |= dec[weights[t]][zmask/64] >> uint(zmask%64) & 1 << uint(t)
		}
		out.SetWord(w, word)
	}
	return out
}

// EvaluateWords runs `length` noiseless cycles at input x through the
// word-parallel datapath and returns the de-randomized estimate of
// B(x) with the raw output stream. It advances the unit's generators
// exactly as Evaluate does and emits an identical bitstream; orders
// beyond maxTableOrder fall back to the bit-serial path.
func (u *Unit) EvaluateWords(x float64, length int) (float64, *stochastic.Bitstream) {
	dec := u.decisionTable()
	if dec == nil {
		return u.Evaluate(x, length)
	}
	out := u.evalPacked(dec, u.dataSNG, u.coefSNG, x, length)
	return out.Value(), out
}

// Cycles runs `length` cycles at input x through the word-parallel
// datapath and calls visit(t, weight, zmask, receivedMW) for every
// cycle t in order — the decoded per-cycle state that reductions like
// the transient eye measurement consume without paying per-bit ring
// evaluations. It advances the unit's generators exactly as
// Step/Evaluate do (64 cycles of SNG words per draw, received power
// from the shared table), so interleaving Cycles with the serial paths
// keeps every stream aligned; orders beyond maxTableOrder fall back to
// the bit-serial Step walk with identical visits.
func (u *Unit) Cycles(x float64, length int, visit func(t, weight, zmask int, receivedMW float64)) error {
	if length <= 0 {
		return fmt.Errorf("core: stream length %d, need >= 1", length)
	}
	if visit == nil {
		return fmt.Errorf("core: Cycles needs a visitor")
	}
	pow := u.powerTable()
	if pow == nil {
		for t := 0; t < length; t++ {
			r := u.Step(x, 0)
			zmask := 0
			for i, z := range r.Z {
				zmask |= z << i
			}
			visit(t, r.Weight, zmask, r.ReceivedMW)
		}
		return nil
	}
	n := u.Circuit.P.Order
	words := (length + 63) / 64
	var planes []uint64
	coefWords := make([]uint64, n+1)
	var weights, zmasks [64]int
	for w := 0; w < words; w++ {
		nbits := min(64, length-w*64)
		planes = u.drawWord(u.dataSNG, u.coefSNG, x, nbits, planes, coefWords)
		decodeCycles(planes, coefWords, nbits, &weights, &zmasks)
		for t := 0; t < nbits; t++ {
			visit(w*64+t, weights[t], zmasks[t], pow[weights[t]][zmasks[t]])
		}
	}
	return nil
}

// evalSeeded evaluates one batch input with fresh sources derived
// from seed only — the reproducible per-index unit of work behind
// EvaluateBatch. Falls back to the cache-free serial walk (with a
// noiseless channel) for orders too large to tabulate.
func (u *Unit) evalSeeded(seed uint64, x float64, length int) float64 {
	data, coef := seededSNGs(u.Circuit.P.Order, seed)
	if dec := u.decisionTable(); dec != nil {
		return u.evalPacked(dec, data, coef, x, length).Value()
	}
	return u.walkSeeded(data, coef, x, length, nil)
}

// EvaluateBatch computes B(x) for every input with fresh `length`-bit
// streams, fanning the inputs out over a runtime.GOMAXPROCS-sized
// worker pool. Input i is evaluated with sources seeded from the
// unit's seed and i only (stochastic.DeriveSeed), so the result is
// reproducible regardless of core count or scheduling. The shared
// circuit state (decision table, threshold) is read-only during the
// fan-out; EvaluateBatch may itself be called concurrently.
func (u *Unit) EvaluateBatch(xs []float64, length int) []float64 {
	u.decisionTable() // build once, outside the workers
	out := make([]float64, len(xs))
	parallel.For(len(xs), func(i int) {
		out[i] = u.evalSeeded(stochastic.DeriveSeed(u.seed, i), xs[i], length)
	})
	return out
}
