package core

import (
	"repro/internal/parallel"
	"repro/internal/stochastic"
)

// This file is the word-parallel mirror of the packed ReSC engine in
// internal/stochastic for the end-to-end optical unit. The noiseless
// optical datapath is a pure function of the data weight and the
// coefficient bit-vector — received power thresholded against the
// calibrated OOK decision level — so 64 clock cycles collapse to: SNG
// words, a carry-save adder tree for the weight, and a lookup in a
// precomputed (weight, z-mask) → bit table. The packed path emits
// bitstreams identical to the serial Step/Evaluate path.

// maxDecisionOrder bounds the orders whose 2^(n+1)-entry decision
// table is tabulated — the same practicality bound as powerCache and
// Circuit.PowerBands (which NewUnit already enumerates).
const maxDecisionOrder = 16

// decisionTable returns the noiseless output-bit table,
// decisions[weight] a bitset indexed by coefficient z-mask, building
// it on first use. The build enumerates the circuit directly rather
// than through powerCache so the finished table is immutable and
// lock-free to share across batch workers. Returns nil for orders too
// large to tabulate.
func (u *Unit) decisionTable() [][]uint64 {
	n := u.Circuit.P.Order
	if n > maxDecisionOrder {
		return nil
	}
	u.decOnce.Do(func() {
		masks := 1 << (n + 1)
		z := make([]int, n+1)
		rows := make([][]uint64, n+1)
		for w := range rows {
			row := make([]uint64, (masks+63)/64)
			for zmask := 0; zmask < masks; zmask++ {
				for b := range z {
					z[b] = zmask >> b & 1
				}
				if u.Circuit.ReceivedPowerMW(w, z) > u.thresholdMW {
					row[zmask/64] |= 1 << uint(zmask%64)
				}
			}
			rows[w] = row
		}
		u.decisions = rows
	})
	return u.decisions
}

// evalPacked runs `length` cycles of the word-parallel datapath with
// the given generators and decision table, 64 cycles per iteration.
func (u *Unit) evalPacked(dec [][]uint64, data, coef []*stochastic.SNG, x float64, length int) *stochastic.Bitstream {
	n := u.Circuit.P.Order
	out := stochastic.NewBitstream(length)
	var planes []uint64
	coefWords := make([]uint64, n+1)
	for w := 0; w < out.WordCount(); w++ {
		nbits := out.WordBits(w)
		planes = planes[:0]
		for i := 0; i < n; i++ {
			planes = stochastic.AddPlane(planes, data[i].NextWord(x, nbits))
		}
		for i := 0; i <= n; i++ {
			coefWords[i] = coef[i].NextWord(u.Poly.Coef[i], nbits)
		}
		var word uint64
		for t := 0; t < nbits; t++ {
			weight := 0
			for k, pl := range planes {
				weight |= int(pl>>uint(t)&1) << uint(k)
			}
			zmask := 0
			for i, cw := range coefWords {
				zmask |= int(cw>>uint(t)&1) << uint(i)
			}
			word |= dec[weight][zmask/64] >> uint(zmask%64) & 1 << uint(t)
		}
		out.SetWord(w, word)
	}
	return out
}

// EvaluateWords runs `length` noiseless cycles at input x through the
// word-parallel datapath and returns the de-randomized estimate of
// B(x) with the raw output stream. It advances the unit's generators
// exactly as Evaluate does and emits an identical bitstream; orders
// beyond maxDecisionOrder fall back to the bit-serial path.
func (u *Unit) EvaluateWords(x float64, length int) (float64, *stochastic.Bitstream) {
	dec := u.decisionTable()
	if dec == nil {
		return u.Evaluate(x, length)
	}
	out := u.evalPacked(dec, u.dataSNG, u.coefSNG, x, length)
	return out.Value(), out
}

// evalSeeded evaluates one batch input with fresh sources derived
// from seed only — the reproducible per-index unit of work behind
// EvaluateBatch. Falls back to a cache-free serial walk for orders
// too large to tabulate.
func (u *Unit) evalSeeded(seed uint64, x float64, length int) float64 {
	data, coef := seededSNGs(u.Circuit.P.Order, seed)
	if dec := u.decisionTable(); dec != nil {
		return u.evalPacked(dec, data, coef, x, length).Value()
	}
	n := u.Circuit.P.Order
	z := make([]int, n+1)
	ones := 0
	for t := 0; t < length; t++ {
		weight := 0
		for i := 0; i < n; i++ {
			weight += data[i].NextBit(x)
		}
		for i := range z {
			z[i] = coef[i].NextBit(u.Poly.Coef[i])
		}
		if u.Circuit.ReceivedPowerMW(weight, z) > u.thresholdMW {
			ones++
		}
	}
	if length == 0 {
		return 0
	}
	return float64(ones) / float64(length)
}

// EvaluateBatch computes B(x) for every input with fresh `length`-bit
// streams, fanning the inputs out over a runtime.NumCPU()-sized
// worker pool. Input i is evaluated with sources seeded from the
// unit's seed and i only (stochastic.DeriveSeed), so the result is
// reproducible regardless of core count or scheduling. The shared
// circuit state (decision table, threshold) is read-only during the
// fan-out; EvaluateBatch may itself be called concurrently.
func (u *Unit) EvaluateBatch(xs []float64, length int) []float64 {
	u.decisionTable() // build once, outside the workers
	out := make([]float64, len(xs))
	parallel.For(len(xs), func(i int) {
		out[i] = u.evalSeeded(stochastic.DeriveSeed(u.seed, i), xs[i], length)
	})
	return out
}
