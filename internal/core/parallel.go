package core

import (
	"fmt"
	"sync"

	"repro/internal/stochastic"
)

// ParallelArray is the spatially parallel implementation the paper's
// §V.C suggests for leveraging the optical circuit's power-density
// headroom: `lanes` identical units, each with independent
// randomness, processing disjoint slices of a workload concurrently.
type ParallelArray struct {
	Units []*Unit
}

// NewParallelArray replicates the unit design across lanes. Each lane
// gets an independent randomness seed; they share the (stateless)
// circuit.
func NewParallelArray(c *Circuit, poly stochastic.BernsteinPoly, lanes int, seed uint64) (*ParallelArray, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("core: lane count %d < 1", lanes)
	}
	a := &ParallelArray{Units: make([]*Unit, lanes)}
	for i := range a.Units {
		u, err := NewUnit(c, poly, seed+uint64(i)*0x9E3779B97F4A7C15)
		if err != nil {
			return nil, err
		}
		a.Units[i] = u
	}
	return a, nil
}

// Lanes returns the parallelism degree.
func (a *ParallelArray) Lanes() int { return len(a.Units) }

// EvaluateBatch computes B(x) for every input with `length`-bit
// streams, distributing inputs across lanes (one goroutine per lane,
// strided assignment, no shared mutable state). Each lane runs the
// word-parallel evaluator.
func (a *ParallelArray) EvaluateBatch(xs []float64, length int) []float64 {
	out := make([]float64, len(xs))
	var wg sync.WaitGroup
	for lane, u := range a.Units {
		wg.Add(1)
		go func(lane int, u *Unit) {
			defer wg.Done()
			for i := lane; i < len(xs); i += len(a.Units) {
				out[i], _ = u.EvaluateWords(xs[i], length)
			}
		}(lane, u)
	}
	wg.Wait()
	return out
}

// ThroughputResultsPerSec returns the aggregate output rate.
func (a *ParallelArray) ThroughputResultsPerSec(streamLen int) float64 {
	return float64(len(a.Units)) * a.Units[0].Circuit.P.ThroughputBitsPerSec(streamLen)
}

// TotalPowerMW returns the aggregate electrical laser power draw: per
// lane, the pump's duty-cycled average plus all probe lasers, divided
// by the lasing efficiency.
func (a *ParallelArray) TotalPowerMW() float64 {
	p := a.Units[0].Circuit.P
	bitT := p.BitPeriodS()
	pumpAvg := p.PumpPowerMW
	if p.PulseWidthS > 0 && p.PulseWidthS < bitT {
		pumpAvg *= p.PulseWidthS / bitT
	}
	perLane := (pumpAvg + float64(p.Order+1)*p.ProbePowerMW) / p.LasingEfficiency
	return perLane * float64(len(a.Units))
}

// AreaMM2 estimates one unit's die area with a coarse layout model:
// each MZI occupies its phase-shifter length times a 0.10 mm routing
// pitch; each micro-ring (n+1 modulators plus the filter) and the
// photodetector occupy 0.01 mm² each. The estimate only serves
// relative power-density comparisons; absolute layouts vary widely.
func (p Params) AreaMM2() float64 {
	psl := p.MZI.PhaseShifterLenMM
	if psl <= 0 {
		psl = 1 // typical mm-scale shifter when the device omits it
	}
	mzi := float64(p.Order) * psl * 0.10
	rings := float64(p.Order+2) * 0.01
	const detector = 0.01
	return mzi + rings + detector
}

// PowerDensityMWPerMM2 returns the array's electrical power per die
// area — the quantity whose headroom the paper proposes spending on
// parallel lanes.
func (a *ParallelArray) PowerDensityMWPerMM2() float64 {
	area := a.Units[0].Circuit.P.AreaMM2() * float64(len(a.Units))
	return a.TotalPowerMW() / area
}
