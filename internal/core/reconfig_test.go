package core

import (
	"math"
	"testing"

	"repro/internal/stochastic"
)

func TestReconfigurableServesMultipleOrders(t *testing.T) {
	// The conclusion's proposal: one comb at the (order-independent)
	// optimal spacing executes polynomials of several degrees.
	r, err := NewReconfigurable(MRRFirstSpec{}, 0.165, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Orders(); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("Orders = %v", got)
	}
	// Each configured circuit is aligned and open-eyed.
	for _, n := range r.Orders() {
		c, err := r.Circuit(n)
		if err != nil {
			t.Fatal(err)
		}
		if c.AlignmentErrorNM() > 1e-3 {
			t.Errorf("order %d misaligned", n)
		}
		if c.EyeOpeningMW() <= 0 {
			t.Errorf("order %d eye closed", n)
		}
	}
	if _, err := r.Circuit(7); err == nil {
		t.Error("unconfigured order accepted")
	}
}

func TestReconfigurableEvaluate(t *testing.T) {
	r, err := NewReconfigurable(MRRFirstSpec{}, 0.165, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Degree-3: the paper's f1; degree-2: an arbitrary representable
	// polynomial.
	f1 := stochastic.PaperF1()
	got, err := r.Evaluate(f1, 0.5, 1<<14, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("f1(0.5) on reconfigurable = %g, want 0.5", got)
	}
	q := stochastic.NewBernstein([]float64{0.9, 0.1, 0.6})
	got2, err := r.Evaluate(q, 0.3, 1<<14, 43)
	if err != nil {
		t.Fatal(err)
	}
	if want := q.Eval(0.3); math.Abs(got2-want) > 0.02 {
		t.Errorf("q(0.3) = %g, want %g", got2, want)
	}
	// Unsupported degree errors cleanly.
	if _, err := r.Evaluate(stochastic.NewBernstein([]float64{0.5}), 0.5, 64, 1); err == nil {
		t.Error("degree-0 accepted")
	}
}

func TestReconfigurableEnergyByOrder(t *testing.T) {
	r, err := NewReconfigurable(MRRFirstSpec{}, 0.165, []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	en := r.EnergyByOrder()
	if len(en) != 3 {
		t.Fatalf("energy map size %d", len(en))
	}
	// Energy grows with order (more MZIs to feed, more probes), and
	// each order's energy at the shared spacing is within a few
	// percent of its own optimum — the reconfigurability argument.
	if !(en[2].TotalPJ() < en[4].TotalPJ() && en[4].TotalPJ() < en[6].TotalPJ()) {
		t.Errorf("energy not increasing with order: %v", en)
	}
	for _, n := range []int{2, 4, 6} {
		opt, err := NewEnergyModel(n).OptimalSpacing(0.1, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		penalty := en[n].TotalPJ()/opt.TotalPJ() - 1
		if penalty > 0.10 {
			t.Errorf("order %d: shared-spacing penalty %.1f%% > 10%%", n, penalty*100)
		}
	}
}

func TestReconfigurableErrors(t *testing.T) {
	if _, err := NewReconfigurable(MRRFirstSpec{}, 0.165, nil); err == nil {
		t.Error("empty order list accepted")
	}
	if _, err := NewReconfigurable(MRRFirstSpec{}, 0.01, []int{2}); err == nil {
		t.Error("infeasible spacing accepted")
	}
}
