// Package core implements the optical stochastic-computing
// architecture of El-Derhalli, Le Beux and Tahar, "Stochastic
// Computing with Integrated Optics" (DATE 2019) — the paper's primary
// contribution.
//
// # Architecture (paper Fig. 3/4)
//
// An n-order unit evaluates a Bernstein polynomial B(x) = Σ b_i
// B_{i,n}(x) optically:
//
//   - a pump laser feeds n parallel MZIs through a 1:n splitter; data
//     bit x_i = 1 drives MZI i into destructive interference, so the
//     recombined pump power encodes the number of '1' data bits
//     (Eq. 7b);
//   - the pump tunes an all-optical add-drop micro-ring filter via
//     two-photon absorption: the filter resonance blue-shifts by
//     ΔFilter = OPpump · OTE · (1/n) Σ T_MZI(x_i) (Eq. 7a);
//   - n+1 probe lasers at wavelengths λ_0 < λ_1 < ... < λ_n (WDM grid
//     with spacing WLspacing, Eq. 5) are OOK-modulated by the
//     coefficient bits z_i through micro-ring modulators; the shifted
//     filter drops exactly the probe selected by the data weight onto
//     the photodetector (Eq. 6);
//   - counting received ones de-randomizes the output.
//
// The analytical transmission model (Eqs. 5–7), SNR and BER (Eqs. 8–9),
// both design-space-exploration methods (MRR-first, MZI-first), the
// pulse-based-pump energy model (Fig. 7), and a reconfigurable
// multi-order variant are implemented here on top of the device models
// in internal/optics.
//
// # Calibration
//
// The paper does not publish micro-ring coupling coefficients or the
// photodetector noise. RingShape presets and DefaultDetector are
// calibrated so the paper's quantitative anchors hold: the Fig. 5
// received-power bands, the 591.8 mW / 13.22 dB pump sizing of §V.A,
// the 0.26 mW probe power at the Fig. 6(a) anchor, and the ≈20 pJ/bit
// optimum of Fig. 7(a). See EXPERIMENTS.md for measured-vs-paper
// numbers.
package core
