package core

import (
	"math"
	"sync"

	"repro/internal/optics"
)

// ChannelDelta returns the inner bracket of the paper's Eq. (8) for
// channel i: the transmission of probe i sent as '1' (all other
// coefficients '0') minus the summed crosstalk of every other probe w
// sent as '1' (with z_i = 0), all evaluated with the filter tuned to
// select channel i. The one-hot transmissions resolve from the shared
// per-device factor cache, bit-identical to the direct enumeration
// (channelDeltaDirect).
func (c *Circuit) ChannelDelta(i int) float64 {
	f := c.factors()
	sig := c.transmissionByMask(f, i, i, 1<<i)
	xtalk := 0.0
	for w := 0; w <= c.P.Order; w++ {
		if w == i {
			continue
		}
		xtalk += c.transmissionByMask(f, w, i, 1<<w)
	}
	return sig - xtalk
}

// channelDeltaDirect is the cache-free Eq. (8) bracket — the retained
// oracle for the factor-cached ChannelDelta.
func (c *Circuit) channelDeltaDirect(i int) float64 {
	n := c.P.Order
	d := c.FilterShiftNM(i) // weight i selects channel i
	z := make([]int, n+1)

	z[i] = 1
	sig := c.ProbeTransmission(i, z, d)
	z[i] = 0

	xtalk := 0.0
	for w := 0; w <= n; w++ {
		if w == i {
			continue
		}
		z[w] = 1
		xtalk += c.ProbeTransmission(w, z, d)
		z[w] = 0
	}
	return sig - xtalk
}

// WorstCaseDelta returns min_i ChannelDelta(i) and the index
// achieving it — the worst-case transmission margin of Eq. (8). The
// scan is cached: SNR, BER, probe sizing and the transient worst-case
// patterns all share one computation per circuit.
func (c *Circuit) WorstCaseDelta() (delta float64, channel int) {
	c.deltaOnce.Do(func() {
		c.delta = math.Inf(1)
		for i := 0; i <= c.P.Order; i++ {
			if d := c.ChannelDelta(i); d < c.delta {
				c.delta, c.deltaCh = d, i
			}
		}
	})
	return c.delta, c.deltaCh
}

// SNR evaluates Eq. (8): (R/i_n) · OPprobe · min_i ChannelDelta(i),
// the worst-case electrical signal-to-noise ratio. A non-positive
// margin returns 0 (the eye is closed).
func (c *Circuit) SNR() float64 {
	delta, _ := c.WorstCaseDelta()
	if delta <= 0 {
		return 0
	}
	return c.P.Detector.SNR(c.P.ProbePowerMW * delta)
}

// BER evaluates Eq. (9) for the circuit's worst-case SNR.
func (c *Circuit) BER() float64 {
	return optics.BERFromSNR(c.SNR())
}

// MinProbePowerMW returns the smallest per-laser probe power reaching
// the target BER, inverting Eqs. (8)–(9). It returns +Inf when the
// worst-case margin is non-positive (no power suffices).
func (c *Circuit) MinProbePowerMW(targetBER float64) float64 {
	delta, _ := c.WorstCaseDelta()
	if delta <= 0 {
		return math.Inf(1)
	}
	snr := optics.SNRForBER(targetBER)
	return c.P.Detector.MinPowerForSNRMW(snr) / delta
}

// WorstCaseDeltaOverZ is the robustness extension discussed in
// DESIGN.md: instead of Eq. (8)'s fixed one-hot crosstalk pattern it
// searches all 2^n coefficient patterns for the smallest separation
// between the selected channel's '1' and '0' received powers, per
// filter state, normalized by the probe power. It lower-bounds
// ChannelDelta and is the margin the end-to-end unit actually sees.
func (c *Circuit) WorstCaseDeltaOverZ() float64 {
	pow := c.PowerTable()
	if pow == nil {
		return c.worstCaseDeltaOverZDirect()
	}
	n := c.P.Order
	worst := math.Inf(1)
	for weight := 0; weight <= n; weight++ {
		sel := c.SelectedChannel(weight)
		minOne := math.Inf(1)
		maxZero := math.Inf(-1)
		for pattern := 0; pattern < 1<<(n+1); pattern++ {
			p := pow[weight][pattern] / c.P.ProbePowerMW
			if pattern>>sel&1 == 1 {
				if p < minOne {
					minOne = p
				}
			} else if p > maxZero {
				maxZero = p
			}
		}
		if d := minOne - maxZero; d < worst {
			worst = d
		}
	}
	return worst
}

// worstCaseDeltaOverZDirect is the cache-free exhaustive margin — the
// retained oracle for the table-backed WorstCaseDeltaOverZ and its
// fallback beyond maxTableOrder.
func (c *Circuit) worstCaseDeltaOverZDirect() float64 {
	n := c.P.Order
	worst := math.Inf(1)
	z := make([]int, n+1)
	for weight := 0; weight <= n; weight++ {
		sel := c.SelectedChannel(weight)
		minOne := math.Inf(1)
		maxZero := math.Inf(-1)
		for pattern := 0; pattern < 1<<(n+1); pattern++ {
			for b := range z {
				z[b] = (pattern >> b) & 1
			}
			p := c.ReceivedPowerMW(weight, z) / c.P.ProbePowerMW
			if z[sel] == 1 {
				if p < minOne {
					minOne = p
				}
			} else if p > maxZero {
				maxZero = p
			}
		}
		if d := minOne - maxZero; d < worst {
			worst = d
		}
	}
	return worst
}

// detectorOnce guards the lazily calibrated default photodetector.
// (An explicit Once rather than sync.OnceValue: the calibration
// closure calls MZIFirst, whose defaulting path mentions
// DefaultDetector, which a package-level initializer would report as
// an initialization cycle even though the call never recurses.)
var (
	detectorOnce  sync.Once
	defaultDetVal optics.Photodetector
)

func calibrateDefaultDetector() optics.Photodetector {
	// Calibration anchor (§V.B / Fig. 6a): with the MZI of Xiao et
	// al. [19] (IL = 6.5 dB, ER = 7.5 dB), a 0.6 W pump and a 1e-6
	// BER target, the minimum probe power is 0.26 mW. Eq. (8) is
	// linear in R/i_n, so the anchor pins i_n/R exactly:
	//
	//	i_n/R = OPprobe · Δ / SNR(1e-6)
	//
	// where Δ is the worst-case margin of the MZI-first design at
	// that operating point (computed from the dense ring preset).
	const (
		anchorProbeMW = 0.26
		anchorBER     = 1e-6
	)
	dev := optics.MZI{ILdB: 6.5, ERdB: 7.5}
	// Placeholder detector: the margin does not depend on it.
	ph := optics.Photodetector{ResponsivityAPerW: 1, NoiseCurrentA: 1e-6}
	p, err := MZIFirst(MZIFirstSpec{
		Order:       2,
		MZI:         dev,
		PumpPowerMW: 600,
		TargetBER:   anchorBER,
		Detector:    ph,
	})
	if err != nil {
		panic("core: detector calibration failed: " + err.Error())
	}
	delta, _ := MustCircuit(p).WorstCaseDelta()
	if delta <= 0 {
		panic("core: detector calibration margin not positive")
	}
	snr := optics.SNRForBER(anchorBER)
	inOverR := anchorProbeMW * 1e-3 * delta / snr // in amperes per (A/W)
	return optics.Photodetector{ResponsivityAPerW: 1, NoiseCurrentA: inOverR}
}

// DefaultDetector returns the photodetector whose noise floor is
// calibrated so that the paper's Fig. 6(a) anchor holds exactly:
// IL = 6.5 dB, ER = 7.5 dB, 0.6 W pump, BER 1e-6 → 0.26 mW probe.
// Responsivity is normalized to 1 A/W; only the ratio i_n/R matters
// anywhere in the model.
func DefaultDetector() optics.Photodetector {
	detectorOnce.Do(func() { defaultDetVal = calibrateDefaultDetector() })
	return defaultDetVal
}
