package core

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/numeric"
	"repro/internal/optics"
)

// EnergyBreakdown is the per-computed-bit laser energy of a design,
// the quantity of the paper's Fig. 7. All energies are electrical
// (optical power / lasing efficiency) in picojoules.
type EnergyBreakdown struct {
	// WLSpacingNM is the probe spacing the design was sized for.
	WLSpacingNM float64
	// PumpPJ is the pulse-based pump laser's energy per bit.
	PumpPJ float64
	// ProbePJ is the summed energy of all n+1 CW probe lasers.
	ProbePJ float64
	// PumpPowerMW and ProbePowerMW are the sized laser powers
	// (probe is per laser).
	PumpPowerMW  float64
	ProbePowerMW float64
	// ProbeLasers is the probe laser count n+1.
	ProbeLasers int
}

// TotalPJ returns pump + probe energy per bit.
func (e EnergyBreakdown) TotalPJ() float64 { return e.PumpPJ + e.ProbePJ }

// String implements fmt.Stringer.
func (e EnergyBreakdown) String() string {
	return fmt.Sprintf("spacing %.3fnm: pump %.2fpJ (%.1fmW) + probe %.2fpJ (%d×%.3fmW) = %.2fpJ/bit",
		e.WLSpacingNM, e.PumpPJ, e.PumpPowerMW, e.ProbePJ, e.ProbeLasers, e.ProbePowerMW, e.TotalPJ())
}

// EnergyModel sizes minimal lasers for a given wavelength spacing
// (via MRR-first) and evaluates the per-bit energy. It is the engine
// behind Fig. 7(a)/(b).
type EnergyModel struct {
	Spec MRRFirstSpec
}

// NewEnergyModel returns a model for the given polynomial order with
// the paper's §V.C assumptions (1 Gb/s, 26 ps pump pulses, 20 %
// lasing efficiency, dense ring preset, BER target 1e-6).
func NewEnergyModel(order int) EnergyModel {
	return EnergyModel{Spec: MRRFirstSpec{Order: order}}
}

// NewWideCombEnergyModel is NewEnergyModel with the 40 nm-FSR ring
// preset, required when the probe comb is wide (high order × wide
// spacing, as in the Fig. 7(b) sweep up to order 16 at 1 nm).
func NewWideCombEnergyModel(order int) EnergyModel {
	return EnergyModel{Spec: MRRFirstSpec{
		Order:       order,
		ModShape:    WideFSRModulatorShape(),
		FilterShape: WideFSRFilterShape(),
	}}
}

// Breakdown sizes the design at the given spacing and returns its
// energy per computed bit. The pump fires one pulse per bit; each of
// the n+1 probe lasers runs CW across the bit slot.
func (m EnergyModel) Breakdown(wlSpacingNM float64) (EnergyBreakdown, error) {
	spec := m.Spec
	spec.WLSpacingNM = wlSpacingNM
	p, err := MRRFirst(spec)
	if err != nil {
		return EnergyBreakdown{}, err
	}
	return ParamsEnergy(p), nil
}

// ParamsEnergy evaluates the per-bit energy of an already-sized
// parameter set.
func ParamsEnergy(p Params) EnergyBreakdown {
	bitT := p.BitPeriodS()
	var pumpPJ float64
	if p.PulseWidthS > 0 {
		pump := optics.PulsedLaser{
			PeakPowerMW: p.PumpPowerMW,
			PulseWidthS: p.PulseWidthS,
			Efficiency:  p.LasingEfficiency,
		}
		pumpPJ = pump.EnergyPerBitPJ(bitT)
	} else {
		cw := optics.CWLaser{PowerMW: p.PumpPowerMW, Efficiency: p.LasingEfficiency}
		pumpPJ = cw.EnergyPerBitPJ(bitT)
	}
	probe := optics.CWLaser{PowerMW: p.ProbePowerMW, Efficiency: p.LasingEfficiency}
	probePJ := float64(p.Order+1) * probe.EnergyPerBitPJ(bitT)
	return EnergyBreakdown{
		WLSpacingNM:  p.WLSpacingNM,
		PumpPJ:       pumpPJ,
		ProbePJ:      probePJ,
		PumpPowerMW:  p.PumpPowerMW,
		ProbePowerMW: p.ProbePowerMW,
		ProbeLasers:  p.Order + 1,
	}
}

// SweepOn evaluates the breakdown across a spacing range, skipping
// infeasible points (closed eye). It returns one row per feasible
// spacing — the data series of Fig. 7(a). Every point is an
// independent MRR-first solve dispatched on the given engine and
// filtered back in index order — identical results on every
// conforming engine at any GOMAXPROCS. A nil engine panics (this
// entry point has no error return).
func (m EnergyModel) SweepOn(e engine.Engine, loNM, hiNM float64, points int) []EnergyBreakdown {
	engine.Use(e)
	if points < 2 {
		points = 2
	}
	ws := numeric.Linspace(loNM, hiNM, points)
	rows := make([]EnergyBreakdown, len(ws))
	feasible := make([]bool, len(ws))
	e.For(len(ws), func(i int) {
		b, err := m.Breakdown(ws[i])
		rows[i], feasible[i] = b, err == nil
	})
	out := make([]EnergyBreakdown, 0, points)
	for i, ok := range feasible {
		if ok {
			out = append(out, rows[i])
		}
	}
	return out
}

// Sweep is SweepOn on the process-default engine.
func (m EnergyModel) Sweep(loNM, hiNM float64, points int) []EnergyBreakdown {
	return m.SweepOn(engine.Default(), loNM, hiNM, points)
}

// optimalGridN and optimalTolNM are the bracketing-scan resolution and
// golden-section tolerance of the spacing search; optimalChunkPts is
// the minimum number of bracketing-grid points per dispatched chunk.
// One grid solve is a few microseconds — comparable to per-item
// dispatch overhead, which is why the point-per-item fan-out used to
// lose to the serial walk (ROADMAP item 4) — so points are dispatched
// in contiguous chunks of at least 16: the 61-point scan costs at most
// four dispatches, and on a one-worker engine engine.Chunked degrades
// to the pure inline walk.
const (
	optimalGridN    = 60
	optimalTolNM    = 1e-4
	optimalChunkPts = 16
)

// energyObjective is the total-energy objective of the spacing search:
// infeasible spacings (closed eye) are infinitely expensive.
func (m EnergyModel) energyObjective(w float64) float64 {
	b, err := m.Breakdown(w)
	if err != nil {
		return math.Inf(1)
	}
	return b.TotalPJ()
}

// OptimalSpacingOn minimizes the total laser energy over [loNM, hiNM]
// and returns the optimum spacing with its breakdown. Infeasible
// spacings are treated as infinitely expensive. It returns an error
// if no spacing in the range is feasible, or if the engine is nil.
//
// The search runs in two stages. The bracketing pre-pass — the ~60
// independent Breakdown solves that dominate the serial search — is
// dispatched on the given engine in contiguous chunks of at least
// optimalChunkPts points (engine.Chunked) and reduced in index order
// with numeric.GridMinimize's exact selection rule. Only the
// golden-section refinement inside the winning bracket stays
// sequential (each probe depends on the last), so the result is
// bit-identical on every conforming engine at any GOMAXPROCS.
func (m EnergyModel) OptimalSpacingOn(e engine.Engine, loNM, hiNM float64) (EnergyBreakdown, error) {
	if err := engine.Check(e); err != nil {
		return EnergyBreakdown{}, err
	}
	gridX := func(i int) float64 {
		return loNM + (hiNM-loNM)*float64(i)/float64(optimalGridN)
	}
	fs := make([]float64, optimalGridN+1)
	engine.Chunked(e, len(fs), optimalChunkPts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fs[i] = m.energyObjective(gridX(i))
		}
	})
	// Replay the precomputed samples through GridMinimize itself —
	// it probes f at exactly these abscissas in index order — so the
	// selection rule (and the returned abscissa) is literally the
	// serial search's, not a copy that could drift.
	k := 0
	best, _ := numeric.GridMinimize(func(float64) float64 { v := fs[k]; k++; return v }, loNM, hiNM, optimalGridN)
	h := (hiNM - loNM) / float64(optimalGridN)
	w := numeric.GoldenSection(m.energyObjective, math.Max(loNM, best-h), math.Min(hiNM, best+h), optimalTolNM)
	// One solve covers both the feasibility check and the result:
	// energyObjective(w) is +Inf exactly when Breakdown(w) errors.
	b, err := m.Breakdown(w)
	if err != nil {
		return EnergyBreakdown{}, fmt.Errorf("core: no feasible spacing in [%g, %g] nm", loNM, hiNM)
	}
	return b, nil
}

// OptimalSpacing is OptimalSpacingOn on the process-default engine.
func (m EnergyModel) OptimalSpacing(loNM, hiNM float64) (EnergyBreakdown, error) {
	return m.OptimalSpacingOn(engine.Default(), loNM, hiNM)
}

// OptimalSpacingSerial is the retained serial oracle for
// OptimalSpacing: the same grid-then-golden-section search with every
// Breakdown solve on the calling goroutine via engine.Serial
// (equivalent to numeric.MinimizeUnimodal over the same grid and
// tolerance).
func (m EnergyModel) OptimalSpacingSerial(loNM, hiNM float64) (EnergyBreakdown, error) {
	return m.OptimalSpacingOn(engine.Serial, loNM, hiNM)
}

// EnergySavingVsFixed returns the fractional energy saving of the
// optimal spacing against a fixed reference spacing (the paper's
// Fig. 7(b) reports ≈76.6 % against 1 nm).
func (m EnergyModel) EnergySavingVsFixed(fixedNM, loNM, hiNM float64) (saving float64, fixed, opt EnergyBreakdown, err error) {
	fixed, err = m.Breakdown(fixedNM)
	if err != nil {
		return 0, fixed, opt, err
	}
	opt, err = m.OptimalSpacing(loNM, hiNM)
	if err != nil {
		return 0, fixed, opt, err
	}
	return 1 - opt.TotalPJ()/fixed.TotalPJ(), fixed, opt, nil
}

// SpeedupVsElectronic returns the throughput speedup of the optical
// unit at its bit rate against an electronic ReSC clocked at
// refMHz (the paper compares 1 GHz optics against the 100 MHz of
// Qian et al., a 10× speedup).
func (p Params) SpeedupVsElectronic(refMHz float64) float64 {
	if refMHz <= 0 {
		panic("core: reference clock must be positive")
	}
	return p.BitRateGbps * 1e3 / refMHz
}
