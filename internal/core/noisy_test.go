package core

import (
	"testing"

	"repro/internal/stochastic"
)

// zeroFill is the degenerate noise filler: a noiseless channel.
func zeroFill(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

// splitmixFill returns a deterministic filler drawing uniform noise
// from a seeded SplitMix64 — enough to pin the packed and serial
// implementations against each other without importing a
// distribution.
func splitmixFill(seed uint64, sigma float64) func([]float64) {
	src := stochastic.NewSplitMix64(seed)
	return func(dst []float64) {
		for i := range dst {
			dst[i] = (src.Next() - 0.5) * sigma
		}
	}
}

// TestUnitEvaluateNoisyZeroNoiseMatchesEvaluate: with an all-zero
// filler the noisy path must reproduce the noiseless oracle bit for
// bit — same generators, same decisions.
func TestUnitEvaluateNoisyZeroNoiseMatchesEvaluate(t *testing.T) {
	for _, length := range []int{1, 63, 64, 65, 500} {
		for _, x := range []float64{0, 0.3, 0.8, 1} {
			serial := paperUnit(t, 7)
			noisy := paperUnit(t, 7)
			_, bs := serial.Evaluate(x, length)
			bn, err := noisy.EvaluateNoisy(x, length, zeroFill)
			if err != nil {
				t.Fatal(err)
			}
			for w := 0; w < bs.WordCount(); w++ {
				if bs.Word(w) != bn.Word(w) {
					t.Fatalf("len %d x=%g: word %d %x vs %x", length, x, w, bs.Word(w), bn.Word(w))
				}
			}
		}
	}
}

// TestUnitEvaluateNoisySeededFallbackMatchesPacked pins the
// cache-free serial fallback (used beyond maxTableOrder) to the
// packed noisy path on a tabulatable order, so the two
// implementations cannot drift.
func TestUnitEvaluateNoisySeededFallbackMatchesPacked(t *testing.T) {
	u := paperUnit(t, 17)
	sigma := u.ThresholdMW() // noise comparable to the decision level
	for i, x := range []float64{0, 0.4, 1} {
		seed := stochastic.DeriveSeed(99, i)
		packed, err := u.EvaluateNoisySeeded(seed, x, 257, splitmixFill(seed+1, sigma))
		if err != nil {
			t.Fatal(err)
		}
		if u.powerTable() == nil {
			t.Fatal("order 2 should tabulate")
		}

		// Re-run through the serial fallback by hiding the table.
		fresh := paperUnit(t, 17)
		fresh.Circuit.powOnce.Do(func() {}) // leave powers nil
		serial, err := fresh.EvaluateNoisySeeded(seed, x, 257, splitmixFill(seed+1, sigma))
		if err != nil {
			t.Fatal(err)
		}
		if packed != serial {
			t.Errorf("x=%g: packed %g vs serial fallback %g", x, packed, serial)
		}
	}
}

// TestUnitEvaluateNoisyFallbackMatchesPacked does the same for the
// generator-advancing EvaluateNoisy.
func TestUnitEvaluateNoisyFallbackMatchesPacked(t *testing.T) {
	packedU := paperUnit(t, 23)
	serialU := paperUnit(t, 23)
	serialU.Circuit.powOnce.Do(func() {}) // hide the table
	sigma := packedU.ThresholdMW()
	bp, err := packedU.EvaluateNoisy(0.6, 193, splitmixFill(5, sigma))
	if err != nil {
		t.Fatal(err)
	}
	bsr, err := serialU.EvaluateNoisy(0.6, 193, splitmixFill(5, sigma))
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < bp.WordCount(); w++ {
		if bp.Word(w) != bsr.Word(w) {
			t.Fatalf("word %d: %x vs %x", w, bp.Word(w), bsr.Word(w))
		}
	}
}

func TestUnitEvaluateNoisyValidation(t *testing.T) {
	u := paperUnit(t, 3)
	if _, err := u.EvaluateNoisy(0.5, 0, zeroFill); err == nil {
		t.Error("length 0 accepted")
	}
	if _, err := u.EvaluateNoisy(0.5, -4, zeroFill); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := u.EvaluateNoisy(0.5, 16, nil); err == nil {
		t.Error("nil filler accepted")
	}
	if _, err := u.EvaluateNoisySeeded(1, 0.5, 0, zeroFill); err == nil {
		t.Error("seeded length 0 accepted")
	}
	if _, err := u.EvaluateNoisySeeded(1, 0.5, 16, nil); err == nil {
		t.Error("seeded nil filler accepted")
	}
}
