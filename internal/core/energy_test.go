package core

import (
	"math"
	"testing"
)

func TestEnergyHeadline(t *testing.T) {
	// §V.C / abstract: a 2nd-order circuit at 1 GHz consumes
	// ≈20.1 pJ of laser energy per computed bit at the optimal
	// spacing. Our calibrated model lands within 25 %.
	m := NewEnergyModel(2)
	opt, err := m.OptimalSpacing(0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.TotalPJ(); got < 15 || got > 26 {
		t.Errorf("optimal total = %g pJ, paper 20.1", got)
	}
	// The optimum sits in the paper's neighbourhood of 0.165 nm.
	if opt.WLSpacingNM < 0.12 || opt.WLSpacingNM > 0.22 {
		t.Errorf("optimal spacing = %g nm, paper 0.165", opt.WLSpacingNM)
	}
}

func TestEnergyOppositeTrends(t *testing.T) {
	// Fig. 7(a): pump energy grows with spacing, probe energy
	// shrinks.
	m := NewEnergyModel(2)
	sweep := m.Sweep(0.11, 0.3, 12)
	if len(sweep) < 8 {
		t.Fatalf("only %d feasible points", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].PumpPJ <= sweep[i-1].PumpPJ {
			t.Errorf("pump energy not increasing at %g nm", sweep[i].WLSpacingNM)
		}
		if sweep[i].ProbePJ >= sweep[i-1].ProbePJ {
			t.Errorf("probe energy not decreasing at %g nm", sweep[i].WLSpacingNM)
		}
	}
	// Probe dominates at the narrow end, pump at the wide end.
	first, last := sweep[0], sweep[len(sweep)-1]
	if first.ProbePJ <= first.PumpPJ {
		t.Errorf("at %g nm probe (%g) should dominate pump (%g)", first.WLSpacingNM, first.ProbePJ, first.PumpPJ)
	}
	if last.PumpPJ <= last.ProbePJ {
		t.Errorf("at %g nm pump (%g) should dominate probe (%g)", last.WLSpacingNM, last.PumpPJ, last.ProbePJ)
	}
}

func TestOptimalSpacingIndependentOfOrder(t *testing.T) {
	// §V.C key result: the optimal spacing barely moves with the
	// polynomial degree (paper: identical for n = 2, 4, 6).
	var spacings []float64
	for _, n := range []int{2, 4, 6} {
		opt, err := NewEnergyModel(n).OptimalSpacing(0.1, 0.3)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		spacings = append(spacings, opt.WLSpacingNM)
	}
	lo, hi := spacings[0], spacings[0]
	for _, s := range spacings {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if hi-lo > 0.05 {
		t.Errorf("optimal spacings %v spread %.3f nm; paper says order-independent", spacings, hi-lo)
	}
}

func TestFig7bEnergyVsOrder(t *testing.T) {
	// Fig. 7(b): total energy at 1 nm spacing grows linearly with
	// order (≈77 pJ at n=2 up to ≈590 pJ at n=16) and the optimal
	// spacing saves ≈76.6 %.
	totals := map[int]float64{}
	for _, n := range []int{2, 4, 8, 12, 16} {
		m := NewWideCombEnergyModel(n)
		fx, err := m.Breakdown(1.0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		totals[n] = fx.TotalPJ()
	}
	if got := totals[2]; got < 70 || got > 92 {
		t.Errorf("n=2 @1nm = %g pJ, paper ~77", got)
	}
	if got := totals[16]; got < 520 || got > 700 {
		t.Errorf("n=16 @1nm = %g pJ, paper ~590", got)
	}
	// Linearity: the pump term dominates and scales with the comb
	// span n·1nm + 0.1nm.
	ratio := totals[16] / totals[2]
	if ratio < 6 || ratio > 9 {
		t.Errorf("n=16/n=2 ratio = %g, want ~7.7", ratio)
	}
}

func TestEnergySavingVsFixed(t *testing.T) {
	saving, fixed, opt, err := NewEnergyModel(2).EnergySavingVsFixed(1.0, 0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 76.6 %. Our calibration reproduces ≈71 %.
	if saving < 0.60 || saving > 0.85 {
		t.Errorf("saving = %.1f%%, paper 76.6%%", saving*100)
	}
	if opt.TotalPJ() >= fixed.TotalPJ() {
		t.Error("optimum not better than 1 nm")
	}
}

func TestEnergyBreakdownArithmetic(t *testing.T) {
	m := NewEnergyModel(2)
	b, err := m.Breakdown(0.165)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.TotalPJ()-(b.PumpPJ+b.ProbePJ)) > 1e-12 {
		t.Error("TotalPJ != pump + probe")
	}
	if b.ProbeLasers != 3 {
		t.Errorf("probe laser count = %d", b.ProbeLasers)
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
	// Hand check of the pump term: power/η · 26 ps.
	wantPump := b.PumpPowerMW / 0.2 * 1e-3 * 26e-12 * 1e12
	if math.Abs(b.PumpPJ-wantPump) > 1e-9 {
		t.Errorf("pump energy %g, hand calc %g", b.PumpPJ, wantPump)
	}
	// And the probe term: 3 lasers · power/η · 1 ns.
	wantProbe := 3 * b.ProbePowerMW / 0.2 * 1e-3 * 1e-9 * 1e12
	if math.Abs(b.ProbePJ-wantProbe) > 1e-9 {
		t.Errorf("probe energy %g, hand calc %g", b.ProbePJ, wantProbe)
	}
}

func TestCWPumpAblation(t *testing.T) {
	// The pulse-based pump is the headline energy saver (§V.C): a CW
	// pump at the same power costs 1ns/26ps ≈ 38x more pump energy.
	p, err := MRRFirst(MRRFirstSpec{Order: 2, WLSpacingNM: 0.165})
	if err != nil {
		t.Fatal(err)
	}
	pulsed := ParamsEnergy(p)
	p.PulseWidthS = 0 // CW
	cw := ParamsEnergy(p)
	ratio := cw.PumpPJ / pulsed.PumpPJ
	want := 1e-9 / 26e-12
	if math.Abs(ratio-want)/want > 0.01 {
		t.Errorf("CW/pulsed pump ratio = %g, want %g", ratio, want)
	}
}

func TestEnergyModelInfeasibleRange(t *testing.T) {
	m := NewEnergyModel(2)
	if _, err := m.OptimalSpacing(0.005, 0.02); err == nil {
		t.Error("infeasible range accepted")
	}
	if _, _, _, err := m.EnergySavingVsFixed(0.01, 0.1, 0.3); err == nil {
		t.Error("infeasible fixed point accepted")
	}
}

func TestSweepSkipsInfeasible(t *testing.T) {
	m := NewEnergyModel(2)
	rows := m.Sweep(0.02, 0.3, 30)
	for _, r := range rows {
		if r.WLSpacingNM < 0.05 {
			t.Errorf("infeasible spacing %g present in sweep", r.WLSpacingNM)
		}
	}
	if len(rows) == 0 {
		t.Error("sweep empty")
	}
	if got := m.Sweep(0.15, 0.16, 1); len(got) != 2 {
		t.Errorf("degenerate point count handled: %d", len(got))
	}
}

func BenchmarkOptimalSpacingSerial(b *testing.B) {
	m := NewEnergyModel(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.OptimalSpacingSerial(0.1, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalSpacing(b *testing.B) {
	m := NewEnergyModel(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.OptimalSpacing(0.1, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}
