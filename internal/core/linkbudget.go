package core

import (
	"fmt"
	"io"

	"repro/internal/optics"
)

// LinkStage is one entry of the optical power budget.
type LinkStage struct {
	Name string
	// LossDB is the stage's power loss in dB (positive).
	LossDB float64
	// CumulativePowerMW is the power after this stage.
	CumulativePowerMW float64
}

// LinkBudget traces the worst-case probe path through the circuit —
// the quantitative version of the architecture walk-through of
// Fig. 3(a): probe laser → coefficient modulator (ON, detuned by Δλ)
// → the other n modulators (OFF, at their comb detunings) → filter
// drop (aligned) → band-pass filter → detector. The pump path is
// reported separately: laser → 1:n splitter → MZI (constructive) →
// n:1 combiner → filter tuning.
type LinkBudget struct {
	Probe []LinkStage
	Pump  []LinkStage
}

// BudgetBPF is the pump-rejection filter assumed in front of the
// detector for budgeting (the paper neglects its in-band loss; we
// default to 0.5 dB in-band, 40 dB rejection).
var BudgetBPF = optics.BandPassFilter{
	CenterNM:     optics.CBandCenterNM - 1,
	BandwidthNM:  8,
	InBandLossDB: 0.5,
	RejectionDB:  40,
}

// BudgetRouting is the on-chip waveguide routing assumed along the
// probe path (also neglected by the paper's model).
var BudgetRouting = optics.TypicalRouting()

// ComputeLinkBudget evaluates the budget for the worst probe channel
// (the channel with the smallest Eq. 8 margin).
func (c *Circuit) ComputeLinkBudget() LinkBudget {
	_, worst := c.WorstCaseDelta()
	var lb LinkBudget

	// Probe path for channel `worst` transmitted as '1'.
	lam := c.P.Lambda(worst)
	p := c.P.ProbePowerMW
	add := func(list *[]LinkStage, name string, factor float64) {
		if factor > 1 {
			factor = 1
		}
		p *= factor
		*list = append(*list, LinkStage{
			Name:              name,
			LossDB:            -optics.LinearToDB(factor),
			CumulativePowerMW: p,
		})
	}
	add(&lb.Probe, "probe laser", 1)
	for w, ring := range c.Modulators {
		res := ring.ResonanceNM
		state := "OFF"
		if w == worst {
			res -= c.P.DeltaLambdaNM
			state = "ON"
		}
		add(&lb.Probe, fmt.Sprintf("modulator MRR%d (%s)", w, state), ring.Through(lam, res))
	}
	add(&lb.Probe, "waveguide routing", BudgetRouting.Transmission())
	add(&lb.Probe, "filter drop (aligned)", c.Filter.Drop(lam, lam))
	add(&lb.Probe, "pump-rejection BPF", BudgetBPF.Transmission(lam))

	// Pump path for the all-constructive state (largest shift).
	p = c.P.PumpPowerMW
	add(&lb.Pump, "pump laser", 1)
	add(&lb.Pump, fmt.Sprintf("1:%d splitter + MZIs (constructive) + combiner", c.P.Order),
		c.Bank.Transmission(make([]int, c.P.Order)))
	return lb
}

// DetectedPowerMW returns the probe path's final power.
func (lb LinkBudget) DetectedPowerMW() float64 {
	if len(lb.Probe) == 0 {
		return 0
	}
	return lb.Probe[len(lb.Probe)-1].CumulativePowerMW
}

// ControlPowerMW returns the pump power reaching the filter.
func (lb LinkBudget) ControlPowerMW() float64 {
	if len(lb.Pump) == 0 {
		return 0
	}
	return lb.Pump[len(lb.Pump)-1].CumulativePowerMW
}

// Render writes the budget as two tables.
func (lb LinkBudget) Render(w io.Writer) error {
	write := func(title string, stages []LinkStage) error {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
		for _, s := range stages {
			if _, err := fmt.Fprintf(w, "  %-45s %6.2f dB  -> %10.6f mW\n",
				s.Name, s.LossDB, s.CumulativePowerMW); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("probe path (worst channel, '1'):", lb.Probe); err != nil {
		return err
	}
	return write("pump path (all-constructive state):", lb.Pump)
}
