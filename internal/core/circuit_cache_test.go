package core

import (
	"sync"
	"testing"

	"repro/internal/stochastic"
)

// TestPowerTableMatchesReceivedPower: every cached entry equals the
// direct enumeration bit-for-bit — the factor products run in the same
// order as ProbeTransmission/ReceivedPowerMW.
func TestPowerTableMatchesReceivedPower(t *testing.T) {
	c := paperCircuit(t)
	pow := c.PowerTable()
	if pow == nil {
		t.Fatal("order 2 should tabulate")
	}
	n := c.P.Order
	z := make([]int, n+1)
	for weight := 0; weight <= n; weight++ {
		for zmask := 0; zmask < 1<<(n+1); zmask++ {
			for b := range z {
				z[b] = zmask >> b & 1
			}
			if got, want := pow[weight][zmask], c.ReceivedPowerMW(weight, z); got != want {
				t.Fatalf("w=%d zmask=%x: table %g vs direct %g", weight, zmask, got, want)
			}
		}
	}
}

// TestPowerTableNilBeyondTableOrder: orders past the tabulation bound
// return nil instead of exploding the 2^(n+1) enumeration.
func TestPowerTableNilBeyondTableOrder(t *testing.T) {
	p := PaperParams()
	p.Order = maxTableOrder + 1
	p.WLSpacingNM = 0.05 // keep the comb inside the modulator FSR
	c, err := NewCircuit(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.PowerTable() != nil {
		t.Error("table built beyond maxTableOrder")
	}
}

// TestPowerBandsMatchesDirectScan pins the table-backed (and cached)
// band scan to the retained direct oracle.
func TestPowerBandsMatchesDirectScan(t *testing.T) {
	c := paperCircuit(t)
	minZ, maxZ, minO, maxO := c.PowerBands()
	dMinZ, dMaxZ, dMinO, dMaxO := c.powerBandsDirect()
	if minZ != dMinZ || maxZ != dMaxZ || minO != dMinO || maxO != dMaxO {
		t.Errorf("cached bands (%g %g %g %g) vs direct (%g %g %g %g)",
			minZ, maxZ, minO, maxO, dMinZ, dMaxZ, dMinO, dMaxO)
	}
	// Second call returns the cached values unchanged.
	minZ2, maxZ2, minO2, maxO2 := c.PowerBands()
	if minZ2 != minZ || maxZ2 != maxZ || minO2 != minO || maxO2 != maxO {
		t.Error("cached bands unstable across calls")
	}
}

// TestChannelDeltaMatchesDirect pins the factor-cached Eq. (8) bracket
// to the retained direct enumeration, per channel.
func TestChannelDeltaMatchesDirect(t *testing.T) {
	c := paperCircuit(t)
	for i := 0; i <= c.P.Order; i++ {
		if got, want := c.ChannelDelta(i), c.channelDeltaDirect(i); got != want {
			t.Errorf("channel %d: cached %g vs direct %g", i, got, want)
		}
	}
}

// TestWorstCaseDeltaOverZMatchesDirect pins the table-backed
// exhaustive margin to the retained direct enumeration.
func TestWorstCaseDeltaOverZMatchesDirect(t *testing.T) {
	c := paperCircuit(t)
	if got, want := c.WorstCaseDeltaOverZ(), c.worstCaseDeltaOverZDirect(); got != want {
		t.Errorf("cached %g vs direct %g", got, want)
	}
}

// TestUnitSharesCircuitPowerTable: units no longer build private
// copies — the circuit's table is the unit's table.
func TestUnitSharesCircuitPowerTable(t *testing.T) {
	c := paperCircuit(t)
	u1, err := NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 1)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := NewUnit(c, stochastic.NewBernstein([]float64{0.5, 0.25, 0.75}), 2)
	if err != nil {
		t.Fatal(err)
	}
	pow := c.PowerTable()
	if &u1.powerTable()[0][0] != &pow[0][0] || &u2.powerTable()[0][0] != &pow[0][0] {
		t.Error("units hold private power tables")
	}
}

// TestCircuitCachesConcurrent hammers every lazily built cache from
// concurrent goroutines on a fresh circuit; run under -race this
// verifies the sync.Once publication story.
func TestCircuitCachesConcurrent(t *testing.T) {
	c := paperCircuit(t)
	var wg sync.WaitGroup
	results := make([]float64, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 4 {
			case 0:
				_, maxZ, _, _ := c.PowerBands()
				results[g] = maxZ
			case 1:
				d, _ := c.WorstCaseDelta()
				results[g] = d
			case 2:
				results[g] = c.PowerTable()[1][2]
			case 3:
				results[g] = c.BER()
			}
		}(g)
	}
	wg.Wait()
	for g := 4; g < len(results); g++ {
		if results[g] != results[g-4] {
			t.Fatalf("goroutine %d saw %g, %d saw %g", g, results[g], g-4, results[g-4])
		}
	}
}
