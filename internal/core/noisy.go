package core

import (
	"fmt"

	"repro/internal/stochastic"
)

// This file is the noise-aware counterpart of the packed engine in
// batch.go. A noisy OOK decision cannot be tabulated as a bit — the
// comparison depends on the per-cycle Gaussian noise sample — but the
// received power can: it is a pure function of (weight, z-mask), so 64
// noisy cycles collapse to SNG words, the carry-save weight tree, a
// power-table lookup and one add-and-compare per bit. The noise itself
// arrives through a caller-supplied block filler (internal/transient
// wires it to Gaussian.FillScaled), which keeps core free of any
// distribution choice while consuming the noise source in cycle order
// — so the packed path emits bitstreams identical to the serial
// Step(x, noiseMW) loop fed from the same sources.

// noiseBlock is the block size the noisy evaluators request from the
// noise filler: one 64-bit output word per fill.
const noiseBlock = 64

// powerTable returns the circuit's shared received-power table (see
// Circuit.PowerTable) — one tabulation serves the serial Step lookups,
// both packed engines and every analysis consumer. Returns nil for
// orders too large to tabulate.
func (u *Unit) powerTable() [][]float64 {
	return u.Circuit.PowerTable()
}

// evalPackedNoisy runs `length` noisy cycles of the word-parallel
// datapath with the given generators and power table, 64 cycles per
// iteration: draw and decode one packed word (the scaffolding shared
// with evalPacked), fill one word of noise samples, then threshold
// power-table lookups against the calibrated decision level.
func (u *Unit) evalPackedNoisy(pow [][]float64, data, coef []*stochastic.SNG, x float64, length int, fill func(noiseMW []float64)) *stochastic.Bitstream {
	n := u.Circuit.P.Order
	out := stochastic.NewBitstream(length)
	var planes []uint64
	coefWords := make([]uint64, n+1)
	var weights, zmasks [64]int
	var noise [noiseBlock]float64
	for w := 0; w < out.WordCount(); w++ {
		nbits := out.WordBits(w)
		planes = u.drawWord(data, coef, x, nbits, planes, coefWords)
		decodeCycles(planes, coefWords, nbits, &weights, &zmasks)
		fill(noise[:nbits])
		var word uint64
		for t := 0; t < nbits; t++ {
			if pow[weights[t]][zmasks[t]]+noise[t] > u.thresholdMW {
				word |= 1 << uint(t)
			}
		}
		out.SetWord(w, word)
	}
	return out
}

// EvaluateNoisy runs `length` cycles at input x with additive
// received-power noise and returns the raw output stream. fill is
// called with successive blocks of up to 64 slots and must write one
// noise sample (in mW) per slot, consuming its source in cycle order;
// each sample is added to the received power before thresholding,
// exactly as Step's noiseMW argument is. It advances the unit's
// generators as Evaluate does; orders beyond maxTableOrder fall
// back to the bit-serial path with the same block noise consumption,
// so the two paths emit identical bitstreams from equal sources.
func (u *Unit) EvaluateNoisy(x float64, length int, fill func(noiseMW []float64)) (*stochastic.Bitstream, error) {
	if length <= 0 {
		return nil, fmt.Errorf("core: stream length %d, need >= 1", length)
	}
	if fill == nil {
		return nil, fmt.Errorf("core: EvaluateNoisy needs a noise filler")
	}
	if pow := u.powerTable(); pow != nil {
		return u.evalPackedNoisy(pow, u.dataSNG, u.coefSNG, x, length, fill), nil
	}
	out := stochastic.NewBitstream(length)
	var noise [noiseBlock]float64
	for t := 0; t < length; t += noiseBlock {
		nb := min(noiseBlock, length-t)
		fill(noise[:nb])
		for k := 0; k < nb; k++ {
			out.Set(t+k, u.Step(x, noise[k]).Bit)
		}
	}
	return out, nil
}

// EvaluateNoisySeeded evaluates one noisy input with fresh generators
// derived from seed only — the reproducible per-trial unit of work
// behind transient batch evaluation. The shared state it reads (power
// table, threshold) is immutable, so it may be called concurrently;
// reproducibility additionally requires fill to be derived from seed
// alone. Falls back to a cache-free serial walk for orders too large
// to tabulate.
func (u *Unit) EvaluateNoisySeeded(seed uint64, x float64, length int, fill func(noiseMW []float64)) (float64, error) {
	if length <= 0 {
		return 0, fmt.Errorf("core: stream length %d, need >= 1", length)
	}
	if fill == nil {
		return 0, fmt.Errorf("core: EvaluateNoisySeeded needs a noise filler")
	}
	data, coef := seededSNGs(u.Circuit.P.Order, seed)
	if pow := u.powerTable(); pow != nil {
		return u.evalPackedNoisy(pow, data, coef, x, length, fill).Value(), nil
	}
	return u.walkSeeded(data, coef, x, length, fill), nil
}

// walkSeeded is the cache-free bit-serial fallback shared by the
// batch evaluators for orders beyond maxTableOrder: enumerate the
// circuit per cycle and threshold. A nil fill means a noiseless
// channel (no noise samples are drawn).
func (u *Unit) walkSeeded(data, coef []*stochastic.SNG, x float64, length int, fill func(noiseMW []float64)) float64 {
	if length <= 0 {
		return 0
	}
	n := u.Circuit.P.Order
	z := make([]int, n+1)
	var noise [noiseBlock]float64 // stays all-zero without a filler
	ones := 0
	for t := 0; t < length; t += noiseBlock {
		nb := min(noiseBlock, length-t)
		if fill != nil {
			fill(noise[:nb])
		}
		for k := 0; k < nb; k++ {
			weight := 0
			for i := 0; i < n; i++ {
				weight += data[i].NextBit(x)
			}
			for i := range z {
				z[i] = coef[i].NextBit(u.Poly.Coef[i])
			}
			if u.Circuit.ReceivedPowerMW(weight, z)+noise[k] > u.thresholdMW {
				ones++
			}
		}
	}
	return float64(ones) / float64(length)
}
