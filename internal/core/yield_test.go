package core

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/stochastic"
)

func TestYieldPerfectWithoutVariation(t *testing.T) {
	p := PaperParams()
	r, err := AnalyzeYield(p, VariationSpec{Samples: 20, Seed: 1, TargetBER: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Yield != 1 {
		t.Errorf("zero-variation yield = %g", r.Yield)
	}
	if r.Pass != 20 || r.Samples != 20 {
		t.Errorf("counts %d/%d", r.Pass, r.Samples)
	}
}

func TestYieldDegradesWithVariation(t *testing.T) {
	p := PaperParams()
	mild, err := AnalyzeYield(p, VariationSpec{
		RingResonanceSigmaNM: 0.01,
		Samples:              60, Seed: 2, TargetBER: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := AnalyzeYield(p, VariationSpec{
		RingResonanceSigmaNM: 0.3, // untrimmed fab-level variation
		CouplingSigma:        0.05,
		MZIILSigmaDB:         1,
		MZIERSigmaDB:         2,
		Samples:              60, Seed: 3, TargetBER: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mild.Yield < 0.9 {
		t.Errorf("mild (post-trim) variation yield = %g", mild.Yield)
	}
	if harsh.Yield >= mild.Yield {
		t.Errorf("harsh variation did not reduce yield: %g vs %g", harsh.Yield, mild.Yield)
	}
	if harsh.MeanBER <= mild.MeanBER {
		t.Errorf("harsh variation did not worsen BER: %g vs %g", harsh.MeanBER, mild.MeanBER)
	}
	if harsh.MeanEyeMW >= mild.MeanEyeMW {
		t.Errorf("harsh variation did not shrink the eye: %g vs %g", harsh.MeanEyeMW, mild.MeanEyeMW)
	}
}

func TestYieldReproducible(t *testing.T) {
	p := PaperParams()
	spec := VariationSpec{RingResonanceSigmaNM: 0.05, Samples: 30, Seed: 7, TargetBER: 1e-6}
	a, err := AnalyzeYield(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeYield(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results: %v vs %v", a, b)
	}
	spec.Seed = 8
	c, err := AnalyzeYield(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds gave identical Monte-Carlo results")
	}
}

// TestYieldMatchesSerialOracle pins the parallel fan-out to a fixed
// per-die-seed oracle: a plain sequential loop fabricating die s from
// stochastic.DeriveSeed(Seed, s) must reproduce AnalyzeYield exactly,
// including the mean-BER/eye float sums (aggregation is serial and
// index-ordered in both).
func TestYieldMatchesSerialOracle(t *testing.T) {
	p := PaperParams()
	v := VariationSpec{
		RingResonanceSigmaNM: 0.08,
		CouplingSigma:        0.02,
		MZIILSigmaDB:         0.5,
		MZIERSigmaDB:         1,
		Samples:              40, Seed: 5, TargetBER: 1e-6,
	}
	got, err := AnalyzeYield(p, v)
	if err != nil {
		t.Fatal(err)
	}
	want := YieldResult{Samples: v.Samples}
	sumBER, sumEye := 0.0, 0.0
	for s := 0; s < v.Samples; s++ {
		g := stochastic.NewGaussian(stochastic.NewSplitMix64(stochastic.DeriveSeed(v.Seed, s)))
		o := fabricateDie(p, v, g)
		sumBER += o.BER
		if o.BER > want.WorstBER {
			want.WorstBER = o.BER
		}
		if o.Structural {
			continue
		}
		sumEye += o.EyeMW
		if o.BER <= v.TargetBER {
			want.Pass++
		}
	}
	want.Yield = float64(want.Pass) / float64(v.Samples)
	want.MeanBER = sumBER / float64(v.Samples)
	want.MeanEyeMW = sumEye / float64(v.Samples)
	if got != want {
		t.Errorf("parallel %+v\n  oracle %+v", got, want)
	}
}

// TestYieldGOMAXPROCSDeterminism: the Monte-Carlo sweep is identical
// on one core and on all of them.
func TestYieldGOMAXPROCSDeterminism(t *testing.T) {
	p := PaperParams()
	spec := VariationSpec{
		RingResonanceSigmaNM: 0.1,
		CouplingSigma:        0.03,
		Samples:              50, Seed: 17, TargetBER: 1e-6,
	}
	multi, err := AnalyzeYield(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	single, err := AnalyzeYield(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if multi != single {
		t.Errorf("GOMAXPROCS changed the result:\n  multi  %+v\n  single %+v", multi, single)
	}
}

func TestYieldValidation(t *testing.T) {
	p := PaperParams()
	if _, err := AnalyzeYield(p, VariationSpec{Samples: 0, TargetBER: 1e-6}); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := AnalyzeYield(p, VariationSpec{Samples: 5, TargetBER: 0.7}); err == nil {
		t.Error("bad BER target accepted")
	}
	p.Order = 0
	if _, err := AnalyzeYield(p, VariationSpec{Samples: 5, TargetBER: 1e-6}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestYieldString(t *testing.T) {
	r := YieldResult{Samples: 10, Pass: 9, Yield: 0.9, MeanBER: 1e-8, WorstBER: 1e-3, MeanEyeMW: 0.35}
	if s := r.String(); !strings.Contains(s, "90.0%") {
		t.Errorf("String = %q", s)
	}
}
