package core

import (
	"strings"
	"testing"
)

func TestYieldPerfectWithoutVariation(t *testing.T) {
	p := PaperParams()
	r, err := AnalyzeYield(p, VariationSpec{Samples: 20, Seed: 1, TargetBER: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Yield != 1 {
		t.Errorf("zero-variation yield = %g", r.Yield)
	}
	if r.Pass != 20 || r.Samples != 20 {
		t.Errorf("counts %d/%d", r.Pass, r.Samples)
	}
}

func TestYieldDegradesWithVariation(t *testing.T) {
	p := PaperParams()
	mild, err := AnalyzeYield(p, VariationSpec{
		RingResonanceSigmaNM: 0.01,
		Samples:              60, Seed: 2, TargetBER: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := AnalyzeYield(p, VariationSpec{
		RingResonanceSigmaNM: 0.3, // untrimmed fab-level variation
		CouplingSigma:        0.05,
		MZIILSigmaDB:         1,
		MZIERSigmaDB:         2,
		Samples:              60, Seed: 3, TargetBER: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mild.Yield < 0.9 {
		t.Errorf("mild (post-trim) variation yield = %g", mild.Yield)
	}
	if harsh.Yield >= mild.Yield {
		t.Errorf("harsh variation did not reduce yield: %g vs %g", harsh.Yield, mild.Yield)
	}
	if harsh.MeanBER <= mild.MeanBER {
		t.Errorf("harsh variation did not worsen BER: %g vs %g", harsh.MeanBER, mild.MeanBER)
	}
	if harsh.MeanEyeMW >= mild.MeanEyeMW {
		t.Errorf("harsh variation did not shrink the eye: %g vs %g", harsh.MeanEyeMW, mild.MeanEyeMW)
	}
}

func TestYieldReproducible(t *testing.T) {
	p := PaperParams()
	spec := VariationSpec{RingResonanceSigmaNM: 0.05, Samples: 30, Seed: 7, TargetBER: 1e-6}
	a, err := AnalyzeYield(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeYield(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results: %v vs %v", a, b)
	}
	spec.Seed = 8
	c, err := AnalyzeYield(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds gave identical Monte-Carlo results")
	}
}

func TestYieldValidation(t *testing.T) {
	p := PaperParams()
	if _, err := AnalyzeYield(p, VariationSpec{Samples: 0, TargetBER: 1e-6}); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := AnalyzeYield(p, VariationSpec{Samples: 5, TargetBER: 0.7}); err == nil {
		t.Error("bad BER target accepted")
	}
	p.Order = 0
	if _, err := AnalyzeYield(p, VariationSpec{Samples: 5, TargetBER: 1e-6}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestYieldString(t *testing.T) {
	r := YieldResult{Samples: 10, Pass: 9, Yield: 0.9, MeanBER: 1e-8, WorstBER: 1e-3, MeanEyeMW: 0.35}
	if s := r.String(); !strings.Contains(s, "90.0%") {
		t.Errorf("String = %q", s)
	}
}
