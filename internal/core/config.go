package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Params serialization: experiment configurations round-trip through
// JSON so that a sized design can be archived next to its results and
// reloaded bit-exactly (cmd/oscdesign's -save/-load flags).

// SaveParams writes p as indented JSON.
func SaveParams(w io.Writer, p Params) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// LoadParams reads and validates a JSON parameter set.
func LoadParams(r io.Reader) (Params, error) {
	var p Params
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Params{}, fmt.Errorf("core: decoding params: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// SaveParamsFile and LoadParamsFile are the path-based conveniences.
func SaveParamsFile(path string, p Params) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return SaveParams(f, p)
}

// LoadParamsFile reads a parameter file.
func LoadParamsFile(path string) (Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return Params{}, err
	}
	defer f.Close()
	return LoadParams(f)
}
