package core

import (
	"fmt"
	"sync"

	"repro/internal/optics"
)

// maxTableOrder bounds the orders whose 2^(n+1)-entry received-power
// (and decision) tables are tabulated; beyond it every consumer falls
// back to direct enumeration. 2^(n+1) grows too fast to tabulate past
// n = 16, which already covers every design in the paper.
const maxTableOrder = 16

// Circuit is an instantiated optical SC unit: the modulator rings
// parked on the probe comb, the add-drop filter, and the MZI adder
// bank (paper Fig. 4a).
//
// Analysis results that every consumer re-derives — per-device
// transmission factors, the (weight, z-mask) received-power table, the
// power bands, the worst-case margin — are cached lazily inside the
// circuit and shared by all evaluation paths (SNR/BER/probe sizing,
// the de-randomizer calibration, the unit's packed engines, the yield
// sweep). The caches build on first use under sync.Once and are
// immutable afterwards, so concurrent readers need no locking; callers
// that hand-perturb the exported device fields (as the yield sweep
// does) must do so before the first analysis call.
type Circuit struct {
	P Params
	// Modulators[i] is the coefficient modulator ring for channel i,
	// cold-resonant at λ_i.
	Modulators []optics.Ring
	// Filter is the all-optical multiplexer, cold-resonant at λref.
	Filter optics.Ring
	// Bank is the pump adder: n identical MZIs.
	Bank *optics.MZIBank

	factOnce sync.Once
	fact     *circuitFactors

	powOnce sync.Once
	powers  [][]float64

	bandsOnce sync.Once
	bands     [4]float64

	deltaOnce sync.Once
	delta     float64
	deltaCh   int
}

// NewCircuit validates p and instantiates the devices.
func NewCircuit(p Params) (*Circuit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Circuit{P: p}
	c.Modulators = make([]optics.Ring, p.Order+1)
	for i := range c.Modulators {
		c.Modulators[i] = p.ModShape.At(p.Lambda(i))
	}
	c.Filter = p.FilterShape.At(p.LambdaRefNM())
	c.Bank = optics.NewUniformMZIBank(p.Order, p.MZI)
	return c, nil
}

// MustCircuit panics on invalid parameters; for use with the
// calibrated presets.
func MustCircuit(p Params) *Circuit {
	c, err := NewCircuit(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Order returns the polynomial degree n.
func (c *Circuit) Order() int { return c.P.Order }

// FilterShiftNM returns ΔFilter(x) of Eq. (7a) for a data vector
// given by its Hamming weight (the shift depends on x only through
// the number of ones).
func (c *Circuit) FilterShiftNM(weight int) float64 {
	ctrl := c.P.PumpPowerMW * c.Bank.TransmissionByWeight(weight)
	return c.P.OTE.ShiftNM(ctrl)
}

// FilterResonanceNM returns the filter's instantaneous resonance for
// a data weight: λref − ΔFilter.
func (c *Circuit) FilterResonanceNM(weight int) float64 {
	return c.P.LambdaRefNM() - c.FilterShiftNM(weight)
}

// SelectedChannel returns the probe channel index the data weight is
// intended to route to the output: channel i = weight, matching the
// ReSC multiplexer semantics (weight w of ones selects coefficient
// z_w). With a design-method-derived pump power and extinction ratio
// the filter resonance lands exactly on λ_weight.
func (c *Circuit) SelectedChannel(weight int) int { return weight }

// modResonance returns the instantaneous resonance of modulator w for
// coefficient bit z: the ON state ('1') blue-shifts by Δλ.
func (c *Circuit) modResonance(w, z int) float64 {
	res := c.Modulators[w].ResonanceNM
	if z != 0 {
		res -= c.P.DeltaLambdaNM
	}
	return res
}

// ProbeTransmission returns T_{s,z}[i] of Eq. (6): the end-to-end
// power transmission of probe i through all n+1 modulator rings (each
// detuned according to its coefficient bit) and the filter shifted by
// dFilterNM:
//
//	T = Π_w φt(λ_i, λ_w − Δλ·z_w) · φd(λ_i, λref − ΔFilter)
//
// z must hold n+1 coefficient bits.
func (c *Circuit) ProbeTransmission(i int, z []int, dFilterNM float64) float64 {
	if len(z) != len(c.Modulators) {
		panic(fmt.Sprintf("core: %d coefficient bits for order %d", len(z), c.P.Order))
	}
	lam := c.P.Lambda(i)
	t := 1.0
	for w, ring := range c.Modulators {
		t *= ring.Through(lam, c.modResonance(w, z[w]))
	}
	return t * c.Filter.Drop(lam, c.P.LambdaRefNM()-dFilterNM)
}

// ReceivedPowerMW returns the total optical power at the
// photodetector for data weight and coefficient bits z: the sum of
// every probe laser's power times its end-to-end transmission. This
// is the quantity plotted in the paper's Fig. 5(c).
func (c *Circuit) ReceivedPowerMW(weight int, z []int) float64 {
	d := c.FilterShiftNM(weight)
	sum := 0.0
	for i := range c.Modulators {
		sum += c.P.ProbePowerMW * c.ProbeTransmission(i, z, d)
	}
	return sum
}

// circuitFactors caches the per-device transmission factors every
// end-to-end transmission is a product of. ProbeTransmission evaluates
// one ring Lorentzian per (probe, modulator) pair and one filter drop
// per probe — each a cosine — yet probe i only ever sees two resonance
// states per modulator (coefficient bit 0/1) and n+1 filter states
// (one per data weight). Tabulating those (n+1)²·3 factors once turns
// every later transmission into pure table products, in the exact
// multiplication order of the direct path, so cached consumers return
// bit-identical values.
type circuitFactors struct {
	// thru[i][w] holds ring w's through factor at probe λ_i for
	// coefficient bit 0 and 1.
	thru [][][2]float64
	// drop[i][weight] is the filter drop factor at probe λ_i with the
	// filter shifted for the given data weight.
	drop [][]float64
}

// factors returns the lazily built per-device factor cache.
func (c *Circuit) factors() *circuitFactors {
	c.factOnce.Do(func() {
		n1 := len(c.Modulators)
		f := &circuitFactors{
			thru: make([][][2]float64, n1),
			drop: make([][]float64, n1),
		}
		shift := make([]float64, n1)
		for weight := range shift {
			shift[weight] = c.FilterShiftNM(weight)
		}
		for i := 0; i < n1; i++ {
			lam := c.P.Lambda(i)
			f.thru[i] = make([][2]float64, n1)
			for w, ring := range c.Modulators {
				f.thru[i][w][0] = ring.Through(lam, c.modResonance(w, 0))
				f.thru[i][w][1] = ring.Through(lam, c.modResonance(w, 1))
			}
			f.drop[i] = make([]float64, n1)
			for weight := range f.drop[i] {
				f.drop[i][weight] = c.Filter.Drop(lam, c.P.LambdaRefNM()-shift[weight])
			}
		}
		c.fact = f
	})
	return c.fact
}

// transmissionByMask is ProbeTransmission for probe i with the
// coefficient bits given as a mask and the filter state given by the
// data weight, resolved from the factor cache. The factor products run
// in the same order as the direct path, so the result is bit-identical
// to ProbeTransmission(i, bits(zmask), FilterShiftNM(weight)).
func (c *Circuit) transmissionByMask(f *circuitFactors, i, weight, zmask int) float64 {
	t := 1.0
	for w := range f.thru[i] {
		t *= f.thru[i][w][zmask>>w&1]
	}
	return t * f.drop[i][weight]
}

// receivedByMask is ReceivedPowerMW resolved from the factor cache,
// summing probes in the same order as the direct path.
func (c *Circuit) receivedByMask(f *circuitFactors, weight, zmask int) float64 {
	sum := 0.0
	for i := range f.thru {
		sum += c.P.ProbePowerMW * c.transmissionByMask(f, i, weight, zmask)
	}
	return sum
}

// PowerTable returns the fully-tabulated received power,
// powers[weight][zmask] in mW, building it lazily from the factor
// cache: the optical state space has only (n+1)·2^(n+1) points, so one
// enumeration turns per-cycle ring evaluations — serial Step lookups,
// packed threshold decisions, band scans and margin searches alike —
// into table reads. Entries are bit-identical to ReceivedPowerMW. The
// finished table is immutable and shared lock-free by every consumer
// (the unit's packed engines, the de-randomizer calibration, the yield
// sweep). Returns nil for orders beyond maxTableOrder.
func (c *Circuit) PowerTable() [][]float64 {
	if c.P.Order > maxTableOrder {
		return nil
	}
	c.powOnce.Do(func() {
		f := c.factors()
		n1 := len(c.Modulators)
		masks := 1 << n1
		rows := make([][]float64, n1)
		for w := range rows {
			row := make([]float64, masks)
			for zmask := 0; zmask < masks; zmask++ {
				row[zmask] = c.receivedByMask(f, w, zmask)
			}
			rows[w] = row
		}
		c.powers = rows
	})
	return c.powers
}

// ChannelTotals returns the per-channel total transmissions for a
// given data weight and coefficient bits — the numbers the paper
// quotes for Fig. 5(a)/(b) (e.g. 0.091 / 0.004 / 0.0002).
func (c *Circuit) ChannelTotals(weight int, z []int) []float64 {
	d := c.FilterShiftNM(weight)
	out := make([]float64, len(c.Modulators))
	for i := range out {
		out[i] = c.ProbeTransmission(i, z, d)
	}
	return out
}

// PowerBands enumerates every (weight, z) combination and returns the
// received-power extrema grouped by the transmitted bit (the selected
// coefficient's value): the '0' band [minZero, maxZero] and the '1'
// band [minOne, maxOne]. These bands are the optical de-randomizer's
// decision levels (Fig. 5c). Exhaustive over 2^(n+1) coefficient
// patterns; practical for n ≤ 16. The scan runs once over the shared
// power table and is cached — Decider, EyeOpeningMW and the yield
// sweep all read the same result.
func (c *Circuit) PowerBands() (minZero, maxZero, minOne, maxOne float64) {
	c.bandsOnce.Do(func() {
		pow := c.PowerTable()
		if pow == nil {
			c.bands[0], c.bands[1], c.bands[2], c.bands[3] = c.powerBandsDirect()
			return
		}
		n := c.P.Order
		first0, first1 := true, true
		for pattern := 0; pattern < 1<<(n+1); pattern++ {
			for weight := 0; weight <= n; weight++ {
				p := pow[weight][pattern]
				if pattern>>c.SelectedChannel(weight)&1 == 0 {
					if first0 || p < c.bands[0] {
						c.bands[0] = p
					}
					if first0 || p > c.bands[1] {
						c.bands[1] = p
					}
					first0 = false
				} else {
					if first1 || p < c.bands[2] {
						c.bands[2] = p
					}
					if first1 || p > c.bands[3] {
						c.bands[3] = p
					}
					first1 = false
				}
			}
		}
	})
	return c.bands[0], c.bands[1], c.bands[2], c.bands[3]
}

// powerBandsDirect is the cache-free band scan — the retained oracle
// for the table-backed PowerBands and its fallback beyond
// maxTableOrder.
func (c *Circuit) powerBandsDirect() (minZero, maxZero, minOne, maxOne float64) {
	n := c.P.Order
	first0, first1 := true, true
	z := make([]int, n+1)
	for pattern := 0; pattern < 1<<(n+1); pattern++ {
		for b := range z {
			z[b] = (pattern >> b) & 1
		}
		for weight := 0; weight <= n; weight++ {
			p := c.ReceivedPowerMW(weight, z)
			if z[c.SelectedChannel(weight)] == 0 {
				if first0 || p < minZero {
					minZero = p
				}
				if first0 || p > maxZero {
					maxZero = p
				}
				first0 = false
			} else {
				if first1 || p < minOne {
					minOne = p
				}
				if first1 || p > maxOne {
					maxOne = p
				}
				first1 = false
			}
		}
	}
	return minZero, maxZero, minOne, maxOne
}

// Decider returns the OOK threshold placed midway between the worst
// '0' and worst '1' received powers.
func (c *Circuit) Decider() optics.OOKDecider {
	_, maxZero, minOne, _ := c.PowerBands()
	return optics.NewMidpointDecider(maxZero, minOne)
}

// EyeOpeningMW returns the worst-case separation between the '1' and
// '0' received-power bands. Non-positive means the circuit cannot
// distinguish the data levels at any laser power.
func (c *Circuit) EyeOpeningMW() float64 {
	_, maxZero, minOne, _ := c.PowerBands()
	return optics.EyeOpeningMW(maxZero, minOne)
}
