package core

import (
	"fmt"

	"repro/internal/optics"
)

// Circuit is an instantiated optical SC unit: the modulator rings
// parked on the probe comb, the add-drop filter, and the MZI adder
// bank (paper Fig. 4a).
type Circuit struct {
	P Params
	// Modulators[i] is the coefficient modulator ring for channel i,
	// cold-resonant at λ_i.
	Modulators []optics.Ring
	// Filter is the all-optical multiplexer, cold-resonant at λref.
	Filter optics.Ring
	// Bank is the pump adder: n identical MZIs.
	Bank *optics.MZIBank
}

// NewCircuit validates p and instantiates the devices.
func NewCircuit(p Params) (*Circuit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Circuit{P: p}
	c.Modulators = make([]optics.Ring, p.Order+1)
	for i := range c.Modulators {
		c.Modulators[i] = p.ModShape.At(p.Lambda(i))
	}
	c.Filter = p.FilterShape.At(p.LambdaRefNM())
	c.Bank = optics.NewUniformMZIBank(p.Order, p.MZI)
	return c, nil
}

// MustCircuit panics on invalid parameters; for use with the
// calibrated presets.
func MustCircuit(p Params) *Circuit {
	c, err := NewCircuit(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Order returns the polynomial degree n.
func (c *Circuit) Order() int { return c.P.Order }

// FilterShiftNM returns ΔFilter(x) of Eq. (7a) for a data vector
// given by its Hamming weight (the shift depends on x only through
// the number of ones).
func (c *Circuit) FilterShiftNM(weight int) float64 {
	ctrl := c.P.PumpPowerMW * c.Bank.TransmissionByWeight(weight)
	return c.P.OTE.ShiftNM(ctrl)
}

// FilterResonanceNM returns the filter's instantaneous resonance for
// a data weight: λref − ΔFilter.
func (c *Circuit) FilterResonanceNM(weight int) float64 {
	return c.P.LambdaRefNM() - c.FilterShiftNM(weight)
}

// SelectedChannel returns the probe channel index the data weight is
// intended to route to the output: channel i = weight, matching the
// ReSC multiplexer semantics (weight w of ones selects coefficient
// z_w). With a design-method-derived pump power and extinction ratio
// the filter resonance lands exactly on λ_weight.
func (c *Circuit) SelectedChannel(weight int) int { return weight }

// modResonance returns the instantaneous resonance of modulator w for
// coefficient bit z: the ON state ('1') blue-shifts by Δλ.
func (c *Circuit) modResonance(w, z int) float64 {
	res := c.Modulators[w].ResonanceNM
	if z != 0 {
		res -= c.P.DeltaLambdaNM
	}
	return res
}

// ProbeTransmission returns T_{s,z}[i] of Eq. (6): the end-to-end
// power transmission of probe i through all n+1 modulator rings (each
// detuned according to its coefficient bit) and the filter shifted by
// dFilterNM:
//
//	T = Π_w φt(λ_i, λ_w − Δλ·z_w) · φd(λ_i, λref − ΔFilter)
//
// z must hold n+1 coefficient bits.
func (c *Circuit) ProbeTransmission(i int, z []int, dFilterNM float64) float64 {
	if len(z) != len(c.Modulators) {
		panic(fmt.Sprintf("core: %d coefficient bits for order %d", len(z), c.P.Order))
	}
	lam := c.P.Lambda(i)
	t := 1.0
	for w, ring := range c.Modulators {
		t *= ring.Through(lam, c.modResonance(w, z[w]))
	}
	return t * c.Filter.Drop(lam, c.P.LambdaRefNM()-dFilterNM)
}

// ReceivedPowerMW returns the total optical power at the
// photodetector for data weight and coefficient bits z: the sum of
// every probe laser's power times its end-to-end transmission. This
// is the quantity plotted in the paper's Fig. 5(c).
func (c *Circuit) ReceivedPowerMW(weight int, z []int) float64 {
	d := c.FilterShiftNM(weight)
	sum := 0.0
	for i := range c.Modulators {
		sum += c.P.ProbePowerMW * c.ProbeTransmission(i, z, d)
	}
	return sum
}

// ChannelTotals returns the per-channel total transmissions for a
// given data weight and coefficient bits — the numbers the paper
// quotes for Fig. 5(a)/(b) (e.g. 0.091 / 0.004 / 0.0002).
func (c *Circuit) ChannelTotals(weight int, z []int) []float64 {
	d := c.FilterShiftNM(weight)
	out := make([]float64, len(c.Modulators))
	for i := range out {
		out[i] = c.ProbeTransmission(i, z, d)
	}
	return out
}

// PowerBands enumerates every (weight, z) combination and returns the
// received-power extrema grouped by the transmitted bit (the selected
// coefficient's value): the '0' band [minZero, maxZero] and the '1'
// band [minOne, maxOne]. These bands are the optical de-randomizer's
// decision levels (Fig. 5c). Exhaustive over 2^(n+1) coefficient
// patterns; practical for n ≤ 16.
func (c *Circuit) PowerBands() (minZero, maxZero, minOne, maxOne float64) {
	n := c.P.Order
	first0, first1 := true, true
	z := make([]int, n+1)
	for pattern := 0; pattern < 1<<(n+1); pattern++ {
		for b := range z {
			z[b] = (pattern >> b) & 1
		}
		for weight := 0; weight <= n; weight++ {
			p := c.ReceivedPowerMW(weight, z)
			if z[c.SelectedChannel(weight)] == 0 {
				if first0 || p < minZero {
					minZero = p
				}
				if first0 || p > maxZero {
					maxZero = p
				}
				first0 = false
			} else {
				if first1 || p < minOne {
					minOne = p
				}
				if first1 || p > maxOne {
					maxOne = p
				}
				first1 = false
			}
		}
	}
	return minZero, maxZero, minOne, maxOne
}

// Decider returns the OOK threshold placed midway between the worst
// '0' and worst '1' received powers.
func (c *Circuit) Decider() optics.OOKDecider {
	_, maxZero, minOne, _ := c.PowerBands()
	return optics.NewMidpointDecider(maxZero, minOne)
}

// EyeOpeningMW returns the worst-case separation between the '1' and
// '0' received-power bands. Non-positive means the circuit cannot
// distinguish the data levels at any laser power.
func (c *Circuit) EyeOpeningMW() float64 {
	_, maxZero, minOne, _ := c.PowerBands()
	return optics.EyeOpeningMW(maxZero, minOne)
}
