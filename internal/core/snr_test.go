package core

import (
	"math"
	"testing"

	"repro/internal/optics"
)

func TestDefaultDetectorAnchorRoundTrip(t *testing.T) {
	// The calibration promise: the Fig. 6(a) anchor design (Xiao MZI,
	// 0.6 W pump, BER 1e-6) needs exactly 0.26 mW of probe power.
	p, err := MZIFirst(MZIFirstSpec{
		Order:       2,
		MZI:         optics.MZI{ILdB: 6.5, ERdB: 7.5},
		PumpPowerMW: 600,
		TargetBER:   1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.ProbePowerMW-0.26) > 0.005 {
		t.Errorf("anchor probe = %g mW, want 0.26", p.ProbePowerMW)
	}
}

func TestDefaultDetectorStable(t *testing.T) {
	a := DefaultDetector()
	b := DefaultDetector()
	if a != b {
		t.Error("DefaultDetector not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("calibrated detector invalid: %v", err)
	}
	// Noise floor should land in the tens of µA per A/W — the scale
	// the paper's probe powers imply.
	if a.NoiseCurrentA < 1e-6 || a.NoiseCurrentA > 1e-3 {
		t.Errorf("calibrated i_n/R = %g A, implausible", a.NoiseCurrentA)
	}
}

func TestChannelDeltaAllPositiveForPaperDesign(t *testing.T) {
	c := paperCircuit(t)
	for i := 0; i <= c.P.Order; i++ {
		if d := c.ChannelDelta(i); d <= 0 {
			t.Errorf("channel %d margin %g <= 0", i, d)
		}
	}
	delta, ch := c.WorstCaseDelta()
	if delta <= 0 || ch < 0 || ch > c.P.Order {
		t.Errorf("worst case = %g at channel %d", delta, ch)
	}
	// Worst case is the min.
	for i := 0; i <= c.P.Order; i++ {
		if c.ChannelDelta(i) < delta-1e-15 {
			t.Errorf("WorstCaseDelta missed channel %d", i)
		}
	}
}

func TestSNRAndBERConsistency(t *testing.T) {
	c := paperCircuit(t)
	snr := c.SNR()
	if snr <= 0 {
		t.Fatalf("SNR = %g", snr)
	}
	ber := c.BER()
	if want := optics.BERFromSNR(snr); math.Abs(ber-want) > 1e-18 && math.Abs(ber-want)/want > 1e-9 {
		t.Errorf("BER %g inconsistent with SNR %g", ber, snr)
	}
	// The §V.A design at 1 mW probes is comfortably below 1e-6.
	if ber > 1e-6 {
		t.Errorf("paper design BER = %g, expected deep margin", ber)
	}
}

func TestSNRScalesWithProbePower(t *testing.T) {
	p := PaperParams()
	c1 := MustCircuit(p)
	p.ProbePowerMW *= 2
	c2 := MustCircuit(p)
	r := c2.SNR() / c1.SNR()
	if math.Abs(r-2) > 1e-9 {
		t.Errorf("SNR ratio for 2x probe = %g, want 2 (Eq. 8 is linear)", r)
	}
}

func TestMinProbePowerInversion(t *testing.T) {
	p := PaperParams()
	c := MustCircuit(p)
	for _, ber := range []float64{1e-2, 1e-4, 1e-6} {
		min := c.MinProbePowerMW(ber)
		if min <= 0 || math.IsInf(min, 1) {
			t.Fatalf("min probe for BER %g = %g", ber, min)
		}
		// Running the circuit at exactly that power hits the target.
		q := p
		q.ProbePowerMW = min
		got := MustCircuit(q).BER()
		if math.Abs(got-ber)/ber > 1e-6 {
			t.Errorf("BER at sized power = %g, want %g", got, ber)
		}
	}
}

func TestFig6bHalfPowerObservation(t *testing.T) {
	// Fig. 6(b): a 1e-2 target needs ~50 % of the 1e-6 probe power.
	c := paperCircuit(t)
	r := c.MinProbePowerMW(1e-2) / c.MinProbePowerMW(1e-6)
	if r < 0.45 || r > 0.55 {
		t.Errorf("power ratio 1e-2/1e-6 = %g, paper says ~0.5", r)
	}
}

func TestClosedEyeGivesInfinitePower(t *testing.T) {
	// Crush the extinction ratio so channels collide: margin < 0.
	p := PaperParams()
	p.WLSpacingNM = 0.05 // far below the ring linewidth
	p.MZI.ERdB = 13.22
	// Re-derive pump so states still target the (now colliding) comb.
	shift := p.FilterOffsetNM + float64(p.Order)*p.WLSpacingNM
	p.PumpPowerMW = p.OTE.PowerForShiftMW(shift) / p.MZI.ILFraction()
	c := MustCircuit(p)
	delta, _ := c.WorstCaseDelta()
	if delta > 0 {
		t.Skipf("margin unexpectedly positive (%g); collision point moved", delta)
	}
	if got := c.MinProbePowerMW(1e-6); !math.IsInf(got, 1) {
		t.Errorf("closed eye min power = %g, want +Inf", got)
	}
	if got := c.SNR(); got != 0 {
		t.Errorf("closed eye SNR = %g, want 0", got)
	}
	if got := c.BER(); got != 0.5 {
		t.Errorf("closed eye BER = %g, want 0.5", got)
	}
}

func TestWorstCaseDeltaOverZPositiveForPaperDesign(t *testing.T) {
	c := paperCircuit(t)
	d := c.WorstCaseDeltaOverZ()
	if d <= 0 {
		t.Errorf("full-pattern worst margin = %g", d)
	}
	// The exhaustive margin relates to the power bands directly.
	minZ, maxZ, minO, maxO := c.PowerBands()
	_ = minZ
	_ = maxO
	if want := (minO - maxZ) / c.P.ProbePowerMW; math.Abs(d-want) > 0.05*want {
		t.Errorf("WorstCaseDeltaOverZ = %g, bands imply ~%g", d, want)
	}
}
