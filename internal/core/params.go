package core

import (
	"fmt"

	"repro/internal/optics"
)

// RingShape describes a micro-ring geometry independent of where its
// resonance is parked: coupling coefficients, round-trip amplitude
// and free spectral range. Instantiating it at a resonant wavelength
// yields an optics.Ring.
type RingShape struct {
	R1    float64 // input-bus self-coupling
	R2    float64 // drop-bus self-coupling
	A     float64 // single-pass amplitude transmission
	FSRNM float64 // free spectral range
}

// At returns the ring with its cold resonance at resonanceNM.
func (s RingShape) At(resonanceNM float64) optics.Ring {
	return optics.Ring{
		SelfCoupling1: s.R1,
		SelfCoupling2: s.R2,
		Amplitude:     s.A,
		ResonanceNM:   resonanceNM,
		FSRNM:         s.FSRNM,
	}
}

// Validate checks the shape at a nominal resonance.
func (s RingShape) Validate() error {
	return s.At(optics.CBandCenterNM).Validate()
}

// The paper publishes only resulting transmissions, never ring
// coupling coefficients, so the shapes below are calibrated to its
// quantitative anchors (see package doc).
//
// Fig5ModulatorShape / Fig5FilterShape reproduce the §V.A worked
// example at 1 nm spacing: per-channel totals ≈ (0.091, 0.004,
// 0.0002) in Fig. 5(a) and the 0.092–0.099 / 0.477–0.482 mW received
// bands of Fig. 5(c). The modulator FWHM is ≈0.21 nm so that a
// Δλ = 0.1 nm drive shift yields ≈0.52 through transmission.
func Fig5ModulatorShape() RingShape {
	return RingShape{R1: 0.95653, R2: 0.977672, A: 0.9995, FSRNM: 10}
}

// Fig5FilterShape is the add-drop filter matching Fig. 5's crosstalk
// levels (FWHM ≈ 0.18 nm: adjacent-channel drop ≈ 0.008).
func Fig5FilterShape() RingShape {
	return RingShape{R1: 0.971998, R2: 0.971998, A: 0.9995, FSRNM: 10}
}

// DenseModulatorShape / DenseFilterShape are the higher-Q rings used
// for the dense-WDM energy study of Fig. 7, where the wavelength
// spacing sweeps down to 0.1 nm (modulator FWHM ≈ 0.10 nm, filter
// FWHM ≈ 0.16 nm). With the Fig. 5 rings the eye would close over
// most of that sweep range.
func DenseModulatorShape() RingShape {
	return RingShape{R1: 0.97959, R2: 0.98980, A: 0.9995, FSRNM: 10}
}

// DenseFilterShape is the energy-study companion filter.
func DenseFilterShape() RingShape {
	return RingShape{R1: 0.97543, R2: 0.97543, A: 0.9995, FSRNM: 10}
}

// WideFSRModulatorShape / WideFSRFilterShape keep the dense preset's
// linewidths (FWHM ≈ 0.10 / 0.16 nm) but with a 40 nm free spectral
// range, as needed by the Fig. 7(b) order sweep: at 1 nm spacing an
// order-16 comb spans 16.1 nm, which must fit well inside one FSR.
// Physically this corresponds to smaller-radius rings with stronger
// coupling.
func WideFSRModulatorShape() RingShape {
	return RingShape{R1: 0.994877, R2: 0.997850, A: 0.9995, FSRNM: 40}
}

// WideFSRFilterShape is the wide-FSR companion filter.
func WideFSRFilterShape() RingShape {
	return RingShape{R1: 0.993987, R2: 0.993987, A: 0.9995, FSRNM: 40}
}

// Params is the complete parameter set of the generic architecture,
// mirroring the glossary of the paper's Fig. 4(b).
type Params struct {
	// Order is the polynomial degree n: n MZIs and n+1 probe
	// channels/modulating MRRs.
	Order int
	// WLSpacingNM is the probe wavelength spacing (Eq. 5).
	WLSpacingNM float64
	// LambdaMaxNM is λ_n, the right-most probe wavelength (the paper
	// uses 1550 nm).
	LambdaMaxNM float64
	// FilterOffsetNM is λref − λ_n, the filter's cold detuning above
	// the top probe (the paper uses 0.1 nm).
	FilterOffsetNM float64
	// DeltaLambdaNM is Δλ, the modulator resonance shift between the
	// OFF and ON coefficient states (0.1 nm per [14]).
	DeltaLambdaNM float64

	// MZI is the data-modulator device (IL and ER are the knobs the
	// design methods trade against laser power).
	MZI optics.MZI
	// ModShape and FilterShape are the micro-ring geometries.
	ModShape    RingShape
	FilterShape RingShape
	// OTE is the all-optical tuning efficiency of the filter.
	OTE optics.OTETuner

	// PumpPowerMW is OPLaser_pump (peak, at the source).
	PumpPowerMW float64
	// ProbePowerMW is OPLaser_probe per probe laser.
	ProbePowerMW float64
	// Detector converts received power to photocurrent (Eq. 8).
	Detector optics.Photodetector

	// BitRateGbps is the stream modulation speed (1 Gb/s in §V.C).
	BitRateGbps float64
	// PulseWidthS is the pump pulse width (26 ps, [15]); zero means a
	// CW pump.
	PulseWidthS float64
	// LasingEfficiency is the wall-plug efficiency of every laser.
	LasingEfficiency float64
}

// Validate reports the first violated constraint.
func (p Params) Validate() error {
	switch {
	case p.Order < 1:
		return fmt.Errorf("core: order %d < 1", p.Order)
	case p.WLSpacingNM <= 0:
		return fmt.Errorf("core: wavelength spacing %g nm not positive", p.WLSpacingNM)
	case p.LambdaMaxNM <= 0:
		return fmt.Errorf("core: λ_n = %g nm not positive", p.LambdaMaxNM)
	case p.FilterOffsetNM < 0:
		return fmt.Errorf("core: filter offset %g nm negative", p.FilterOffsetNM)
	case p.DeltaLambdaNM <= 0:
		return fmt.Errorf("core: Δλ = %g nm not positive", p.DeltaLambdaNM)
	case p.OTE.OTENMPerMW <= 0:
		return fmt.Errorf("core: OTE %g nm/mW not positive", p.OTE.OTENMPerMW)
	case p.PumpPowerMW < 0:
		return fmt.Errorf("core: pump power %g mW negative", p.PumpPowerMW)
	case p.ProbePowerMW < 0:
		return fmt.Errorf("core: probe power %g mW negative", p.ProbePowerMW)
	case p.BitRateGbps <= 0:
		return fmt.Errorf("core: bit rate %g Gb/s not positive", p.BitRateGbps)
	case p.LasingEfficiency <= 0 || p.LasingEfficiency > 1:
		return fmt.Errorf("core: lasing efficiency %g outside (0,1]", p.LasingEfficiency)
	}
	if err := p.MZI.Validate(); err != nil {
		return err
	}
	if err := p.ModShape.Validate(); err != nil {
		return fmt.Errorf("core: modulator shape: %w", err)
	}
	if err := p.FilterShape.Validate(); err != nil {
		return fmt.Errorf("core: filter shape: %w", err)
	}
	if err := p.Detector.Validate(); err != nil {
		return err
	}
	// The probe comb plus filter offset must fit well inside one FSR,
	// otherwise the "next resonance" aliases onto the comb.
	span := float64(p.Order)*p.WLSpacingNM + p.FilterOffsetNM
	if span >= p.FilterShape.FSRNM/2 {
		return fmt.Errorf("core: comb span %g nm too wide for filter FSR %g nm", span, p.FilterShape.FSRNM)
	}
	return nil
}

// BitPeriodS returns the bit slot duration.
func (p Params) BitPeriodS() float64 { return 1e-9 / p.BitRateGbps }

// LambdaRefNM returns the filter's cold resonance λref = λ_n + offset.
func (p Params) LambdaRefNM() float64 { return p.LambdaMaxNM + p.FilterOffsetNM }

// Lambda returns probe wavelength λ_i = λ_n − (n−i)·WLspacing.
func (p Params) Lambda(i int) float64 {
	return p.LambdaMaxNM - float64(p.Order-i)*p.WLSpacingNM
}

// Lambdas returns all probe wavelengths λ_0..λ_n.
func (p Params) Lambdas() []float64 {
	out := make([]float64, p.Order+1)
	for i := range out {
		out[i] = p.Lambda(i)
	}
	return out
}

// PaperParams returns the §V.A 2nd-order design: WLspacing = 1 nm,
// λ2 = 1550 nm, λref = 1550.1 nm, OTE = 0.1 nm/10 mW, ILdB = 4.5,
// with the pump power (591.8 mW) and extinction ratio (13.22 dB)
// derived by the MRR-first method, 1 mW probes, and the Fig. 5 ring
// calibration.
func PaperParams() Params {
	p := Params{
		Order:            2,
		WLSpacingNM:      1.0,
		LambdaMaxNM:      1550.0,
		FilterOffsetNM:   0.1,
		DeltaLambdaNM:    0.1,
		MZI:              optics.MZI{ILdB: 4.5, ERdB: 13.22}, // ER per §V.A; recomputed by MRRFirst
		ModShape:         Fig5ModulatorShape(),
		FilterShape:      Fig5FilterShape(),
		OTE:              optics.PaperOTE,
		ProbePowerMW:     1.0,
		Detector:         DefaultDetector(),
		BitRateGbps:      1.0,
		PulseWidthS:      optics.PaperPulseWidthS,
		LasingEfficiency: optics.PaperLasingEfficiency,
	}
	// Pump sized by the MRR-first rule: enough power to shift the
	// filter across the whole comb through the constructive MZIs.
	shift := p.LambdaRefNM() - p.Lambda(0)
	p.PumpPowerMW = p.OTE.PowerForShiftMW(shift) / p.MZI.ILFraction()
	return p
}

// MZIDevice is a published Mach–Zehnder modulator, the device corpus
// behind the paper's Fig. 6(a) markers and Fig. 6(c) bars. IL/ER
// coordinates are read off Fig. 6(a); speed and phase-shifter length
// come from the Fig. 6(c) annotation.
type MZIDevice struct {
	Name string
	Dev  optics.MZI
}

// DeviceLibrary returns the four cited modulators.
func DeviceLibrary() []MZIDevice {
	return []MZIDevice{
		{Name: "Dong et al. (ref 6 in [19])", Dev: optics.MZI{ILdB: 4.8, ERdB: 6.4, SpeedGbps: 50, PhaseShifterLenMM: 1.0}},
		{Name: "Thomson et al. (ref 12 in [19])", Dev: optics.MZI{ILdB: 7.3, ERdB: 4.2, SpeedGbps: 40, PhaseShifterLenMM: 1.0}},
		{Name: "Dong et al. (ref 28 in [18])", Dev: optics.MZI{ILdB: 5.2, ERdB: 5.6, SpeedGbps: 40, PhaseShifterLenMM: 4.0}},
		{Name: "Xiao et al. [19]", Dev: optics.MZI{ILdB: 6.5, ERdB: 7.5, SpeedGbps: 60, PhaseShifterLenMM: 0.75}},
	}
}
