package core

import (
	"math"
	"strings"
	"testing"
)

func TestLinkBudgetConsistency(t *testing.T) {
	c := paperCircuit(t)
	lb := c.ComputeLinkBudget()
	if len(lb.Probe) < 5 {
		t.Fatalf("probe path has %d stages", len(lb.Probe))
	}
	// Cumulative powers are non-increasing (passive stages).
	for i := 1; i < len(lb.Probe); i++ {
		if lb.Probe[i].CumulativePowerMW > lb.Probe[i-1].CumulativePowerMW+1e-12 {
			t.Errorf("stage %q gained power", lb.Probe[i].Name)
		}
		if lb.Probe[i].LossDB < -1e-9 {
			t.Errorf("stage %q has negative loss %g", lb.Probe[i].Name, lb.Probe[i].LossDB)
		}
	}
	// The detected power matches the transmission model's signal
	// level up to the BPF loss (the model neglects the BPF).
	_, worst := c.WorstCaseDelta()
	z := make([]int, c.P.Order+1)
	z[worst] = 1
	sig := c.P.ProbePowerMW * c.ProbeTransmission(worst, z, c.FilterShiftNM(worst))
	// The budget parks the filter exactly on the channel while the
	// designed circuit has a ~5e-5 nm residual alignment error, so
	// the two agree to ~1e-6 relative (after the budget-only BPF and
	// routing stages are factored in).
	extra := BudgetBPF.Transmission(c.P.Lambda(worst)) * BudgetRouting.Transmission()
	if got := lb.DetectedPowerMW(); math.Abs(got-sig*extra)/(sig*extra) > 1e-5 {
		t.Errorf("detected %g, transmission model × BPF × routing gives %g", got, sig*extra)
	}
}

func TestLinkBudgetPumpPath(t *testing.T) {
	c := paperCircuit(t)
	lb := c.ComputeLinkBudget()
	// The control power equals pump × IL% for the all-constructive
	// state (Eq. 7b), ≈ 210 mW for the paper design.
	want := c.P.PumpPowerMW * c.P.MZI.ILFraction()
	if got := lb.ControlPowerMW(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("control power %g, want %g", got, want)
	}
	if math.Abs(lb.ControlPowerMW()-210) > 1 {
		t.Errorf("control power %g mW, expected ~210 (2.1 nm / OTE)", lb.ControlPowerMW())
	}
}

func TestLinkBudgetRender(t *testing.T) {
	c := paperCircuit(t)
	var sb strings.Builder
	if err := c.ComputeLinkBudget().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"probe path", "pump path", "modulator MRR0", "filter drop", "BPF"} {
		if !strings.Contains(out, want) {
			t.Errorf("budget output missing %q", want)
		}
	}
}
