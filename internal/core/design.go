package core

import (
	"fmt"
	"math"

	"repro/internal/optics"
)

// MRRFirstSpec is the input to the MRR-first design method (§IV.B):
// the micro-ring side of the system is fixed (resonances from the
// wavelength plan, ring shapes, Δλ, OTE) and the method derives the
// minimum probe power for a BER target, the minimum pump power that
// can sweep the filter across the whole comb, and the MZI extinction
// ratio that parks the filter on the top channel.
type MRRFirstSpec struct {
	Order          int
	WLSpacingNM    float64
	LambdaMaxNM    float64 // λ_n; defaults to 1550 nm
	FilterOffsetNM float64 // λref − λ_n; defaults to 0.1 nm
	DeltaLambdaNM  float64 // defaults to 0.1 nm
	ModShape       RingShape
	FilterShape    RingShape
	OTE            optics.OTETuner // defaults to the paper's 0.01 nm/mW
	MZIILdB        float64         // insertion loss of the chosen MZI; defaults to 4.5 dB [10]
	TargetBER      float64         // defaults to 1e-6
	Detector       optics.Photodetector
	BitRateGbps    float64 // defaults to 1
	PulseWidthS    float64 // defaults to 26 ps
	LasingEff      float64 // defaults to 0.2
}

func (s *MRRFirstSpec) applyDefaults() {
	if s.LambdaMaxNM == 0 {
		s.LambdaMaxNM = optics.CBandCenterNM
	}
	if s.FilterOffsetNM == 0 {
		s.FilterOffsetNM = 0.1
	}
	if s.DeltaLambdaNM == 0 {
		s.DeltaLambdaNM = 0.1
	}
	if s.ModShape == (RingShape{}) {
		s.ModShape = DenseModulatorShape()
	}
	if s.FilterShape == (RingShape{}) {
		s.FilterShape = DenseFilterShape()
	}
	if s.OTE.OTENMPerMW == 0 {
		s.OTE = optics.PaperOTE
	}
	if s.MZIILdB == 0 {
		s.MZIILdB = 4.5
	}
	if s.TargetBER == 0 {
		s.TargetBER = 1e-6
	}
	if s.Detector == (optics.Photodetector{}) {
		s.Detector = DefaultDetector()
	}
	if s.BitRateGbps == 0 {
		s.BitRateGbps = 1
	}
	if s.PulseWidthS == 0 {
		s.PulseWidthS = optics.PaperPulseWidthS
	}
	if s.LasingEff == 0 {
		s.LasingEff = optics.PaperLasingEfficiency
	}
}

// MRRFirst runs the MRR-first method and returns a fully sized
// parameter set:
//
//  1. probe wavelengths λ_i from WLspacing (Eq. 5);
//  2. minimum probe power for the BER target from the worst-case
//     margin of Eq. (8);
//  3. minimum pump power to reach λ_0: the full-comb shift
//     (λref − λ_0) through n constructive MZIs transmitting IL%:
//     OPpump = (λref − λ_0) / (OTE · IL%);
//  4. extinction ratio parking the filter at λ_n when all MZIs are
//     destructive: ER% = FilterOffset / (OPpump · OTE · IL%).
func MRRFirst(spec MRRFirstSpec) (Params, error) {
	spec.applyDefaults()
	if spec.Order < 1 {
		return Params{}, fmt.Errorf("core: MRRFirst order %d < 1", spec.Order)
	}
	if spec.WLSpacingNM <= 0 {
		return Params{}, fmt.Errorf("core: MRRFirst spacing %g nm not positive", spec.WLSpacingNM)
	}

	il := optics.LossToLinear(spec.MZIILdB)
	fullShift := spec.FilterOffsetNM + float64(spec.Order)*spec.WLSpacingNM
	pump := spec.OTE.PowerForShiftMW(fullShift) / il
	erFrac := spec.FilterOffsetNM / (pump * spec.OTE.OTENMPerMW * il)
	if erFrac <= 0 || erFrac >= 1 {
		return Params{}, fmt.Errorf("core: MRRFirst derived ER%% = %g outside (0,1)", erFrac)
	}
	erDB := -optics.LinearToDB(erFrac)

	p := Params{
		Order:            spec.Order,
		WLSpacingNM:      spec.WLSpacingNM,
		LambdaMaxNM:      spec.LambdaMaxNM,
		FilterOffsetNM:   spec.FilterOffsetNM,
		DeltaLambdaNM:    spec.DeltaLambdaNM,
		MZI:              optics.MZI{ILdB: spec.MZIILdB, ERdB: erDB},
		ModShape:         spec.ModShape,
		FilterShape:      spec.FilterShape,
		OTE:              spec.OTE,
		PumpPowerMW:      pump,
		Detector:         spec.Detector,
		BitRateGbps:      spec.BitRateGbps,
		PulseWidthS:      spec.PulseWidthS,
		LasingEfficiency: spec.LasingEff,
	}
	p.ProbePowerMW = 1 // provisional; replaced by the BER-sized minimum
	c, err := NewCircuit(p)
	if err != nil {
		return Params{}, err
	}
	probe := c.MinProbePowerMW(spec.TargetBER)
	if math.IsInf(probe, 1) {
		return Params{}, fmt.Errorf("core: MRRFirst eye closed at spacing %g nm (order %d)", spec.WLSpacingNM, spec.Order)
	}
	p.ProbePowerMW = probe
	return p, nil
}

// MZIFirstSpec is the input to the MZI-first design method (§IV.B):
// the pump laser and the MZI device are fixed and the method derives
// the probe wavelength plan from the achievable filter shifts, then
// sizes the probe lasers for the BER target.
type MZIFirstSpec struct {
	Order         int
	MZI           optics.MZI // IL and ER given by the chosen device
	PumpPowerMW   float64
	LambdaRefNM   float64 // filter cold resonance; defaults to 1550.1 nm
	DeltaLambdaNM float64
	ModShape      RingShape
	FilterShape   RingShape
	OTE           optics.OTETuner
	TargetBER     float64
	Detector      optics.Photodetector
	BitRateGbps   float64
	PulseWidthS   float64
	LasingEff     float64
}

func (s *MZIFirstSpec) applyDefaults() {
	if s.LambdaRefNM == 0 {
		s.LambdaRefNM = optics.CBandCenterNM + 0.1
	}
	if s.DeltaLambdaNM == 0 {
		s.DeltaLambdaNM = 0.1
	}
	if s.ModShape == (RingShape{}) {
		s.ModShape = DenseModulatorShape()
	}
	if s.FilterShape == (RingShape{}) {
		s.FilterShape = DenseFilterShape()
	}
	if s.OTE.OTENMPerMW == 0 {
		s.OTE = optics.PaperOTE
	}
	if s.TargetBER == 0 {
		s.TargetBER = 1e-6
	}
	if s.Detector == (optics.Photodetector{}) {
		s.Detector = DefaultDetector()
	}
	if s.BitRateGbps == 0 {
		s.BitRateGbps = 1
	}
	if s.PulseWidthS == 0 {
		s.PulseWidthS = optics.PaperPulseWidthS
	}
	if s.LasingEff == 0 {
		s.LasingEff = optics.PaperLasingEfficiency
	}
}

// MZIFirst runs the MZI-first method. The filter shift for data
// weight k through n MZIs with insertion loss IL% and extinction
// ratio ER% is
//
//	shift(k) = OPpump · OTE · IL% · ((n−k) + k·ER%) / n
//
// which is linear in k, so the derived probe comb λ_k = λref −
// shift(k) is uniform with spacing OPpump·OTE·IL%·(1−ER%)/n and the
// filter offset is λref − λ_n = OPpump·OTE·IL%·ER%. The probe lasers
// are then sized for the BER target.
func MZIFirst(spec MZIFirstSpec) (Params, error) {
	spec.applyDefaults()
	if spec.Order < 1 {
		return Params{}, fmt.Errorf("core: MZIFirst order %d < 1", spec.Order)
	}
	if spec.PumpPowerMW <= 0 {
		return Params{}, fmt.Errorf("core: MZIFirst pump power %g mW not positive", spec.PumpPowerMW)
	}
	if err := spec.MZI.Validate(); err != nil {
		return Params{}, err
	}

	il := spec.MZI.ILFraction()
	er := spec.MZI.ERFraction()
	n := float64(spec.Order)
	spacing := spec.PumpPowerMW * spec.OTE.OTENMPerMW * il * (1 - er) / n
	offset := spec.PumpPowerMW * spec.OTE.OTENMPerMW * il * er
	if spacing <= 0 {
		return Params{}, fmt.Errorf("core: MZIFirst derived spacing %g nm not positive", spacing)
	}

	p := Params{
		Order:            spec.Order,
		WLSpacingNM:      spacing,
		LambdaMaxNM:      spec.LambdaRefNM - offset,
		FilterOffsetNM:   offset,
		DeltaLambdaNM:    spec.DeltaLambdaNM,
		MZI:              spec.MZI,
		ModShape:         spec.ModShape,
		FilterShape:      spec.FilterShape,
		OTE:              spec.OTE,
		PumpPowerMW:      spec.PumpPowerMW,
		Detector:         spec.Detector,
		BitRateGbps:      spec.BitRateGbps,
		PulseWidthS:      spec.PulseWidthS,
		LasingEfficiency: spec.LasingEff,
	}
	p.ProbePowerMW = 1
	c, err := NewCircuit(p)
	if err != nil {
		return Params{}, err
	}
	probe := c.MinProbePowerMW(spec.TargetBER)
	if math.IsInf(probe, 1) {
		return Params{}, fmt.Errorf("core: MZIFirst eye closed for %v at %g mW pump", spec.MZI, spec.PumpPowerMW)
	}
	p.ProbePowerMW = probe
	return p, nil
}

// AlignmentErrorNM returns the largest distance between the filter
// resonance in any data state and its intended probe channel — a
// design-validity diagnostic. Both design methods produce exactly
// aligned combs (the shift is linear in the data weight), so this is
// ~0 for their outputs and grows when a user perturbs pump power or
// ER by hand.
func (c *Circuit) AlignmentErrorNM() float64 {
	worst := 0.0
	for w := 0; w <= c.P.Order; w++ {
		res := c.FilterResonanceNM(w)
		want := c.P.Lambda(c.SelectedChannel(w))
		if e := math.Abs(res - want); e > worst {
			worst = e
		}
	}
	return worst
}

// RequiredStreamLength returns the stochastic stream length needed so
// that the SC estimator's RMS error stays below epsilon at the worst
// case p = 1/2, given the transmission BER b: the variance of the
// received estimate is p(1−p)/L plus the BER-induced bias/variance.
// It implements the throughput–accuracy trade-off of §V.B: a higher
// BER can be compensated by longer streams, as
//
//	L ≈ (0.25 + b(1−b)) / ε²
//
// rounded up to the next power of two (hardware-friendly counters).
func RequiredStreamLength(epsilon, ber float64) int {
	if epsilon <= 0 {
		panic("core: epsilon must be positive")
	}
	v := 0.25 + ber*(1-ber)
	l := v / (epsilon * epsilon)
	n := 1
	for float64(n) < l {
		n <<= 1
	}
	return n
}

// ThroughputBitsPerSec returns the output sample rate of the unit for
// a given stream length: bit rate / length.
func (p Params) ThroughputBitsPerSec(streamLen int) float64 {
	if streamLen < 1 {
		streamLen = 1
	}
	return p.BitRateGbps * 1e9 / float64(streamLen)
}
