package core

import (
	"fmt"
	"sort"

	"repro/internal/stochastic"
)

// Reconfigurable is the multi-order circuit the paper's conclusion
// motivates: because the energy-optimal wavelength spacing is
// (approximately) independent of the polynomial degree, one probe
// comb at the optimal spacing can serve polynomial functions of
// several orders. The structure owns one sized design per supported
// order, all sharing the same spacing, ring shapes and detector, and
// switches between them per evaluation.
type Reconfigurable struct {
	// SpacingNM is the shared probe spacing.
	SpacingNM float64
	circuits  map[int]*Circuit
}

// NewReconfigurable sizes a design at the given spacing for every
// order in orders (via MRR-first on spec, whose Order and WLSpacing
// fields are overridden).
func NewReconfigurable(spec MRRFirstSpec, spacingNM float64, orders []int) (*Reconfigurable, error) {
	if len(orders) == 0 {
		return nil, fmt.Errorf("core: no orders given")
	}
	r := &Reconfigurable{SpacingNM: spacingNM, circuits: make(map[int]*Circuit, len(orders))}
	for _, n := range orders {
		s := spec
		s.Order = n
		s.WLSpacingNM = spacingNM
		p, err := MRRFirst(s)
		if err != nil {
			return nil, fmt.Errorf("core: sizing order %d: %w", n, err)
		}
		c, err := NewCircuit(p)
		if err != nil {
			return nil, err
		}
		r.circuits[n] = c
	}
	return r, nil
}

// Orders returns the supported polynomial orders in ascending order.
func (r *Reconfigurable) Orders() []int {
	out := make([]int, 0, len(r.circuits))
	for n := range r.circuits {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Circuit returns the sized circuit for an order.
func (r *Reconfigurable) Circuit(order int) (*Circuit, error) {
	c, ok := r.circuits[order]
	if !ok {
		return nil, fmt.Errorf("core: order %d not configured (have %v)", order, r.Orders())
	}
	return c, nil
}

// Evaluate computes B(x) for a polynomial of any supported order with
// `length`-bit streams, reconfiguring the unit to the polynomial's
// degree.
func (r *Reconfigurable) Evaluate(poly stochastic.BernsteinPoly, x float64, length int, seed uint64) (float64, error) {
	c, err := r.Circuit(poly.Degree())
	if err != nil {
		return 0, err
	}
	u, err := NewUnit(c, poly, seed)
	if err != nil {
		return 0, err
	}
	v, _ := u.Evaluate(x, length)
	return v, nil
}

// EnergyByOrder returns the per-bit energy of each configured order
// at the shared spacing — the evidence for the paper's claim that one
// spacing serves all orders efficiently.
func (r *Reconfigurable) EnergyByOrder() map[int]EnergyBreakdown {
	out := make(map[int]EnergyBreakdown, len(r.circuits))
	for n, c := range r.circuits {
		out[n] = ParamsEnergy(c.P)
	}
	return out
}
