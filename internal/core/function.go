package core

import (
	"fmt"

	"repro/internal/stochastic"
)

// FunctionUnit evaluates an arbitrary continuous function on [0, 1]
// optically: the function is least-squares fitted by a degree-n
// Bernstein polynomial with coefficients clamped to [0, 1] (the ReSC
// representability condition), an order-n circuit is sized by
// MRR-first, and the polynomial runs on the optical unit.
type FunctionUnit struct {
	Unit *Unit
	// Poly is the fitted polynomial; FitMaxErr its worst-case
	// deviation from the target function over the fit grid. The
	// optical evaluation adds stochastic noise on top of this
	// approximation floor.
	Poly      stochastic.BernsteinPoly
	FitMaxErr float64
}

// NewFunctionUnit fits f at the given degree and builds the optical
// evaluator. The spec's Order and WLSpacing are overridden by degree
// and spacingNM.
func NewFunctionUnit(f func(float64) float64, degree int, spacingNM float64, spec MRRFirstSpec, seed uint64) (*FunctionUnit, error) {
	if f == nil {
		return nil, fmt.Errorf("core: nil function")
	}
	poly, maxErr, err := stochastic.Fit(f, degree, 64*(degree+1))
	if err != nil {
		return nil, fmt.Errorf("core: fitting degree %d: %w", degree, err)
	}
	spec.Order = degree
	spec.WLSpacingNM = spacingNM
	p, err := MRRFirst(spec)
	if err != nil {
		return nil, err
	}
	c, err := NewCircuit(p)
	if err != nil {
		return nil, err
	}
	u, err := NewUnit(c, poly, seed)
	if err != nil {
		return nil, err
	}
	return &FunctionUnit{Unit: u, Poly: poly, FitMaxErr: maxErr}, nil
}

// Evaluate runs the optical unit for `length` bits at input x.
func (fu *FunctionUnit) Evaluate(x float64, length int) float64 {
	v, _ := fu.Unit.Evaluate(x, length)
	return v
}

// EvaluateSweep evaluates across xs.
func (fu *FunctionUnit) EvaluateSweep(xs []float64, length int) []float64 {
	return fu.Unit.EvaluateSweep(xs, length)
}
