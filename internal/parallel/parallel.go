// Package parallel provides the small worker-pool primitive shared by
// the batch evaluation engines in internal/stochastic and
// internal/core: a deterministic-by-index parallel for-loop sized to
// the machine.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the pool size used for n independent work items:
// runtime.GOMAXPROCS(0) — the CPUs the scheduler may actually use,
// which callers (and tests) can pin below runtime.NumCPU() — clamped
// to n and to at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0, n) on a Workers(n)-sized pool.
// Indices are handed out through an atomic counter, so the assignment
// of indices to workers is scheduling-dependent — fn must derive any
// randomness from i alone (not from worker identity) for results to
// be reproducible. For returns once every call has completed.
func For(n int, fn func(i int)) {
	ForWorker(n, 0, func(_, i int) { fn(i) })
}

// ForWorker is For with the executing worker's pool index (in
// [0, workers)) passed alongside the item index. Each worker index
// belongs to exactly one goroutine for the duration of the call, so
// fn may use it to address per-worker scratch without synchronization
// — keeping allocations O(workers) instead of O(items). Callers that
// pre-size scratch pass the same `workers` they sized it for (clamped
// to [1, n]); workers <= 0 means Workers(n). The caller-supplied
// count is what makes the scratch contract race-free: sizing from a
// separate Workers call could disagree with the pool if GOMAXPROCS
// moved in between. The scheduling caveat of For still applies: which
// worker runs which item is nondeterministic, so scratch must carry
// no state between items that affects results.
func ForWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = Workers(n)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
