// Package parallel provides the small worker-pool primitive shared by
// the batch evaluation engines in internal/stochastic and
// internal/core: a deterministic-by-index parallel for-loop sized to
// the machine, with panic containment and context-aware variants for
// long-running sweeps that must stop at an item boundary.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is the typed error a panicking work item surfaces as: the
// panic value plus the worker and item index it was raised on, and the
// stack captured at the panic site. For and ForWorker re-raise it on
// the calling goroutine (so a worker panic never crashes the process
// ungoverned); ForCtx and ForWorkerCtx return it as an ordinary error.
type PanicError struct {
	// Worker and Index attribute the panic to the pool goroutine and
	// the dispatch index it was processing.
	Worker, Index int
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker %d: item %d panicked: %v", e.Worker, e.Index, e.Value)
}

// Unwrap exposes a panic value that is itself an error (the chaos
// engine's injected engine.ChaosPanic, a re-raised runtime error) to
// errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Capture runs fn and converts a panic into a *PanicError attributed
// to (worker, index). A fn that panics with a *PanicError — a nested
// fan-out that already attributed the failure — passes through
// unchanged, keeping the innermost attribution. Returns nil when fn
// completes normally.
func Capture(worker, index int, fn func()) (pe *PanicError) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if inner, ok := r.(*PanicError); ok {
			pe = inner
			return
		}
		pe = &PanicError{Worker: worker, Index: index, Value: r, Stack: debug.Stack()}
	}()
	fn()
	return nil
}

// Workers returns the pool size used for n independent work items:
// runtime.GOMAXPROCS(0) — the CPUs the scheduler may actually use,
// which callers (and tests) can pin below runtime.NumCPU() — clamped
// to n and to at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0, n) on a Workers(n)-sized pool.
// Indices are handed out through an atomic counter, so the assignment
// of indices to workers is scheduling-dependent — fn must derive any
// randomness from i alone (not from worker identity) for results to
// be reproducible. For returns once every call has completed. A
// non-positive n returns immediately without spawning goroutines.
//
// A panicking item does not crash the process from its worker
// goroutine: the panic is captured, remaining items are abandoned, and
// once every worker has stopped the panic is re-raised on the caller
// as a *PanicError naming the worker and index.
func For(n int, fn func(i int)) {
	ForWorker(n, 0, func(_, i int) { fn(i) })
}

// ForWorker is For with the executing worker's pool index (in
// [0, workers)) passed alongside the item index. Each worker index
// belongs to exactly one goroutine for the duration of the call, so
// fn may use it to address per-worker scratch without synchronization
// — keeping allocations O(workers) instead of O(items). Callers that
// pre-size scratch pass the same `workers` they sized it for (clamped
// to [1, n]); workers <= 0 means Workers(n). The caller-supplied
// count is what makes the scratch contract race-free: sizing from a
// separate Workers call could disagree with the pool if GOMAXPROCS
// moved in between. The scheduling caveat of For still applies: which
// worker runs which item is nondeterministic, so scratch must carry
// no state between items that affects results. Non-positive n returns
// immediately; panics re-raise on the caller as *PanicError (see For).
func ForWorker(n, workers int, fn func(worker, i int)) {
	var stop atomic.Bool
	if _, pe := forWorker(&stop, n, workers, fn); pe != nil {
		panic(pe)
	}
}

// ForCtx is For with cooperative cancellation: once ctx is done, no
// new items are handed out and ForCtx returns ctx.Err() after the
// in-flight items finish — the sweep stops at an item boundary, never
// mid-item. Items that were not dispatched are skipped, so on a
// non-nil error the results are partial; callers that need to know
// which items ran track completion per index (engine.RunCtx does).
// A panicking item is returned as a *PanicError instead of re-raised.
// Returns nil once every item has completed.
func ForCtx(ctx context.Context, n int, fn func(i int)) error {
	return ForWorkerCtx(ctx, n, 0, func(_, i int) { fn(i) })
}

// ForWorkerCtx is ForWorker with the cancellation and panic-to-error
// semantics of ForCtx.
func ForWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	// An atomic stop flag keeps the per-item cost of honoring ctx to
	// one relaxed load; a watcher goroutine raises it when ctx fires.
	var stop atomic.Bool
	if done := ctx.Done(); done != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				stop.Store(true)
			case <-finished:
			}
		}()
	}
	allDone, pe := forWorker(&stop, n, workers, fn)
	switch {
	case pe != nil:
		return pe
	case allDone:
		// Every item completed before the cancellation was observed;
		// the sweep is whole, so a late ctx firing is not an error.
		return nil
	default:
		return ctx.Err()
	}
}

// forWorker dispatches under a stop flag, re-raising nothing: it
// reports whether every item ran to completion, plus the first
// captured *PanicError (lowest index when several race) for the
// caller to re-raise or surface as an error.
func forWorker(stop *atomic.Bool, n, workers int, fn func(worker, i int)) (allDone bool, first *PanicError) {
	if n <= 0 {
		return true, nil
	}
	if workers < 1 {
		workers = Workers(n)
	}
	if workers > n {
		workers = n
	}

	var panicMu sync.Mutex
	record := func(pe *PanicError) {
		panicMu.Lock()
		if first == nil || pe.Index < first.Index {
			first = pe
		}
		panicMu.Unlock()
		// Abandon the remaining handout: the caller is about to see
		// the panic, so finishing the sweep would be wasted work.
		stop.Store(true)
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			if stop.Load() {
				return false, first
			}
			if pe := Capture(0, i, func() { fn(0, i) }); pe != nil {
				record(pe)
				return false, first
			}
		}
		return true, nil
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if pe := Capture(worker, i, func() { fn(worker, i) }); pe != nil {
					record(pe)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Workers return only after their in-flight item completes, so a
	// handout counter that reached n means every index was dispatched
	// and finished.
	return first == nil && int(next.Load()) >= n, first
}
