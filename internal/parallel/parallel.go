// Package parallel provides the small worker-pool primitive shared by
// the batch evaluation engines in internal/stochastic and
// internal/core: a deterministic-by-index parallel for-loop sized to
// the machine.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the pool size used for n independent work items:
// runtime.GOMAXPROCS(0) — the CPUs the scheduler may actually use,
// which callers (and tests) can pin below runtime.NumCPU() — clamped
// to n and to at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0, n) on a Workers(n)-sized pool.
// Indices are handed out through an atomic counter, so the assignment
// of indices to workers is scheduling-dependent — fn must derive any
// randomness from i alone (not from worker identity) for results to
// be reproducible. For returns once every call has completed.
func For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Workers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
