package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestGuardsNeverSpawn: non-positive n and workers return immediately
// without running the body or spawning goroutines, on every variant.
func TestGuardsNeverSpawn(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, n := range []int{0, -1, -100} {
		For(n, func(i int) { t.Errorf("For(%d) ran body at %d", n, i) })
		ForWorker(n, 4, func(w, i int) { t.Errorf("ForWorker(%d) ran body at %d", n, i) })
		ForWorker(n, -2, func(w, i int) { t.Errorf("ForWorker(%d, -2) ran body at %d", n, i) })
		if err := ForCtx(context.Background(), n, func(i int) {
			t.Errorf("ForCtx(%d) ran body at %d", n, i)
		}); err != nil {
			t.Errorf("ForCtx(%d) = %v", n, err)
		}
		if err := ForWorkerCtx(context.Background(), n, -7, func(w, i int) {
			t.Errorf("ForWorkerCtx(%d) ran body at %d", n, i)
		}); err != nil {
			t.Errorf("ForWorkerCtx(%d) = %v", n, err)
		}
	}
	// The guards must not leave watcher or worker goroutines behind.
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked by guards: %d -> %d", before, after)
	}
	// workers <= 0 on a real workload auto-sizes instead of spawning
	// an unbounded pool.
	var count atomic.Int32
	ForWorker(8, -3, func(w, i int) { count.Add(1) })
	if count.Load() != 8 {
		t.Errorf("ForWorker(8, -3) ran %d of 8 items", count.Load())
	}
}

// TestForCtxCompletesWithoutCancel: an un-canceled context changes
// nothing — every index runs exactly once and the error is nil, at
// one worker and many.
func TestForCtxCompletesWithoutCancel(t *testing.T) {
	for _, n := range []int{1, 7, 300} {
		counts := make([]atomic.Int32, n)
		if err := ForCtx(context.Background(), n, func(i int) { counts[i].Add(1) }); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, got)
			}
		}
	}
}

// TestForCtxAlreadyCanceled: a context that is dead on arrival runs
// nothing and reports the context's error.
func TestForCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForCtx(ctx, 100, func(i int) { t.Errorf("ran item %d", i) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestForCtxStopsAtItemBoundary: cancelling mid-sweep stops the
// handout — items never start after the cancellation is observed, and
// the in-flight ones finish (no item is abandoned half-run).
func TestForCtxStopsAtItemBoundary(t *testing.T) {
	// Large enough that trivial items cannot all drain in the window
	// between cancel() and the watcher raising the stop flag.
	const n = 20_000_000
	ctx, cancel := context.WithCancel(context.Background())
	var started, finished atomic.Int32
	err := ForCtx(ctx, n, func(i int) {
		started.Add(1)
		if i == 10 {
			cancel()
			// Give the watcher a chance to raise the stop flag so the
			// test observes an actual early exit.
			time.Sleep(5 * time.Millisecond)
		}
		finished.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() != finished.Load() {
		t.Errorf("%d items started but only %d finished", started.Load(), finished.Load())
	}
	if started.Load() == n {
		t.Errorf("cancellation did not stop the handout (%d items all ran)", started.Load())
	}
}

// TestForCtxLateCancelIsNil: if every item completed, a context that
// fires afterwards does not turn the whole sweep into an error.
func TestForCtxLateCancelIsNil(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := ForCtx(ctx, 50, func(i int) {}); err != nil {
		t.Fatalf("completed sweep reported %v", err)
	}
}

// TestDeadlineStopsSweep: a deadline behaves like cancellation, with
// context.DeadlineExceeded surfacing.
func TestDeadlineStopsSweep(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := ForCtx(ctx, 1<<30, func(i int) { time.Sleep(50 * time.Microsecond) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestWorkerPanicSurfacesOnCaller: a panic inside a pooled worker no
// longer crashes the process; it re-raises on the calling goroutine as
// a *PanicError naming the failing index, at one worker and many.
func TestWorkerPanicSurfacesOnCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T %v, want *PanicError", workers, r, r)
				}
				if pe.Index != 3 {
					t.Errorf("workers=%d: panic attributed to index %d, want 3", workers, pe.Index)
				}
				if pe.Worker < 0 || pe.Worker >= workers {
					t.Errorf("workers=%d: worker %d out of range", workers, pe.Worker)
				}
				if want := "item 3 panicked: boom"; !strings.Contains(pe.Error(), want) {
					t.Errorf("workers=%d: error %q does not contain %q", workers, pe.Error(), want)
				}
				if len(pe.Stack) == 0 {
					t.Errorf("workers=%d: no stack captured", workers)
				}
			}()
			ForWorker(8, workers, func(w, i int) {
				if i == 3 {
					panic("boom")
				}
			})
		}()
	}
}

// TestForCtxPanicReturnsTypedError: the ctx variants surface the same
// panic as an ordinary error instead of re-raising, and an error panic
// value stays reachable through errors.Is.
func TestForCtxPanicReturnsTypedError(t *testing.T) {
	sentinel := errors.New("injected fault")
	err := ForCtx(context.Background(), 16, func(i int) {
		if i == 5 {
			panic(sentinel)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Index != 5 {
		t.Errorf("attributed to index %d, want 5", pe.Index)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("error panic value not reachable via errors.Is: %v", err)
	}
}

// TestLowestIndexPanicWins: when several items panic, the caller sees
// a deterministic choice — the lowest index recorded.
func TestLowestIndexPanicWins(t *testing.T) {
	err := ForCtx(context.Background(), 4, func(i int) {
		panic(fmt.Sprintf("fault-%d", i))
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	// With 4 items and panics racing, the recorded panic must be the
	// lowest-index one among those that ran; index 0 always runs first
	// on worker 0's first handout only under serial dispatch, so just
	// require the invariant the recorder maintains: no lower-index
	// panic was dropped in favor of a higher one that raced it.
	if got, want := fmt.Sprint(pe.Value), fmt.Sprintf("fault-%d", pe.Index); got != want {
		t.Errorf("panic value %q does not match attributed index %d", got, pe.Index)
	}
}

// TestNestedPanicErrorPassesThrough: a nested fan-out that already
// attributed a panic is not re-wrapped by the outer one.
func TestNestedPanicErrorPassesThrough(t *testing.T) {
	err := ForCtx(context.Background(), 2, func(outer int) {
		if outer == 1 {
			For(3, func(inner int) {
				if inner == 2 {
					panic("deep fault")
				}
			})
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 2 {
		t.Errorf("outer dispatch re-attributed the nested panic: index %d, want inner index 2", pe.Index)
	}
	if fmt.Sprint(pe.Value) != "deep fault" {
		t.Errorf("panic value %v", pe.Value)
	}
}

// TestNilCtx: a nil context is treated as context.Background rather
// than panicking deep inside the pool.
func TestNilCtx(t *testing.T) {
	var ran atomic.Int32
	//lint:ignore SA1012 deliberate nil-ctx robustness check
	if err := ForWorkerCtx(nil, 4, 2, func(w, i int) { ran.Add(1) }); err != nil || ran.Load() != 4 {
		t.Fatalf("nil ctx: err=%v ran=%d", err, ran.Load())
	}
}
