package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		counts := make([]atomic.Int32, n)
		For(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, got)
			}
		}
	}
}

func TestForNegative(t *testing.T) {
	ran := false
	For(-3, func(i int) { ran = true })
	if ran {
		t.Error("negative n ran the body")
	}
}

func TestWorkersRespectsGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	if w := Workers(64); w != 1 {
		t.Errorf("Workers(64) under GOMAXPROCS(1) = %d", w)
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Errorf("Workers(big) = %d", w)
	}
}
