package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		counts := make([]atomic.Int32, n)
		For(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, got)
			}
		}
	}
}

func TestForWorkerCoversAllIndicesWithValidWorkers(t *testing.T) {
	for _, n := range []int{1, 7, 500} {
		// Caller-supplied counts (clamped to [1, n]) and the
		// workers<=0 auto-size must both keep worker in bounds.
		for _, workers := range []int{0, 1, 3, n + 5} {
			counts := make([]atomic.Int32, n)
			maxWorker := workers
			if maxWorker < 1 {
				maxWorker = Workers(n)
			}
			if maxWorker > n {
				maxWorker = n
			}
			var bad atomic.Int32
			ForWorker(n, workers, func(worker, i int) {
				if worker < 0 || worker >= maxWorker {
					bad.Add(1)
				}
				counts[i].Add(1)
			})
			if bad.Load() != 0 {
				t.Fatalf("n=%d workers=%d: %d calls with worker outside [0,%d)",
					n, workers, bad.Load(), maxWorker)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: index %d ran %d times", n, workers, i, got)
				}
			}
		}
	}
}

// TestForWorkerScratchExclusive: per-worker scratch is never touched
// by two goroutines at once — the contract tiled engines rely on.
// `go test -race` turns any violation into a hard failure.
func TestForWorkerScratchExclusive(t *testing.T) {
	const n = 200
	workers := Workers(n)
	scratch := make([][]int, workers)
	ForWorker(n, workers, func(worker, i int) {
		scratch[worker] = append(scratch[worker], i)
	})
	total := 0
	for _, s := range scratch {
		total += len(s)
	}
	if total != n {
		t.Errorf("scratch items = %d, want %d", total, n)
	}
}

func TestForNegative(t *testing.T) {
	ran := false
	For(-3, func(i int) { ran = true })
	if ran {
		t.Error("negative n ran the body")
	}
}

func TestWorkersRespectsGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	if w := Workers(64); w != 1 {
		t.Errorf("Workers(64) under GOMAXPROCS(1) = %d", w)
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Errorf("Workers(big) = %d", w)
	}
}
