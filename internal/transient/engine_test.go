package transient

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/enginetest"
)

// TestEngineSuite registers every engine-accepting entry point of this
// package into the generic cross-engine equivalence and
// GOMAXPROCS-determinism suite. This one registration replaces the
// former per-path MatchesSerialOracle / DeterministicAcrossGOMAXPROCS
// tests: every engine in engine.All() — including ones registered
// later — must reproduce the engine.Serial reference bit-identically.
func TestEngineSuite(t *testing.T) {
	base, powers := waterfallPowers(t)
	enginetest.Run(t, nil, []enginetest.Case{
		{
			Name: "transient.AccuracyVsLengthOn",
			Eval: func(e engine.Engine) (any, error) {
				s := newTestSim(t, 0, 80)
				// Degenerate lengths (0, duplicates of word edges)
				// exercise the valid-length filter.
				return s.AccuracyVsLengthOn(e, 0.5, []int{1, 63, 64, 0, 65, 300}, 5)
			},
		},
		{
			Name: "transient.BERWaterfallOn",
			Eval: func(e engine.Engine) (any, error) {
				return BERWaterfallOn(e, base, powers, 20_000, 41)
			},
		},
		{
			Name: "transient.TraceOn",
			Eval: func(e engine.Engine) (any, error) {
				// Fresh simulator per call: the trace advances the
				// unit SNGs and the noise stream.
				s := newTestSim(t, 0, 75)
				return s.TraceOn(e, 0.5, 65, 4)
			},
		},
		{
			Name: "transient.MeasureEyeOn",
			Eval: func(e engine.Engine) (any, error) {
				s := newTestSim(t, 0, 72)
				return s.MeasureEyeOn(e, 0.5, 1000), nil
			},
		},
		{
			Name: "transient.SyncSweepOn",
			Eval: func(e engine.Engine) (any, error) {
				// Noisy link so per-slot decisions actually flip; odd
				// counts exercise partial noise blocks.
				s := newTestSim(t, 0.02, 93)
				return s.SyncSweepOn(e, 13, 997), nil
			},
		},
		{
			Name: "transient.AccuracyVsLengthCtx",
			Eval: func(e engine.Engine) (any, error) {
				s := newTestSim(t, 0, 80)
				return s.AccuracyVsLengthCtx(context.Background(), e, 0.5, []int{64, 128}, 3)
			},
		},
		{
			Name: "transient.BERWaterfallCtx",
			Eval: func(e engine.Engine) (any, error) {
				return BERWaterfallCtx(context.Background(), e, base, powers, 10_000, 41)
			},
		},
	})
}

// TestWaterfallCtxCancellation: a canceled waterfall surfaces the
// sweep layer's typed partial error instead of a curve.
func TestWaterfallCtxCancellation(t *testing.T) {
	base, powers := waterfallPowers(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BERWaterfallCtx(ctx, engine.WordParallel, base, powers, 1000, 41)
	var p *engine.Partial
	if !errors.As(err, &p) {
		t.Fatalf("err = %v (%T), want *engine.Partial", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Partial does not carry context.Canceled: %v", err)
	}
}

// TestSerialShims pins the X / XSerial surface onto the engine layer:
// each XSerial is exactly XOn on engine.Serial, and each X is XOn on
// the process default — so callers of the legacy names inherit the
// suite's guarantees.
func TestSerialShims(t *testing.T) {
	base, powers := waterfallPowers(t)

	sA, sB := newTestSim(t, 0, 80), newTestSim(t, 0, 80)
	accSerial, err := sA.AccuracyVsLengthSerial(0.5, []int{64, 256}, 3)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := sB.AccuracyVsLength(0.5, []int{64, 256}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(accSerial, acc) {
		t.Errorf("AccuracyVsLengthSerial %+v vs AccuracyVsLength %+v", accSerial, acc)
	}

	wfSerial, err := BERWaterfallSerial(base, powers, 5_000, 41)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := BERWaterfall(base, powers, 5_000, 41)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wfSerial, wf) {
		t.Errorf("BERWaterfallSerial %+v vs BERWaterfall %+v", wfSerial, wf)
	}

	trSerial, err := newTestSim(t, 0, 75).TraceSerial(0.5, 65, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := newTestSim(t, 0, 75).Trace(0.5, 65, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trSerial, tr) {
		t.Error("TraceSerial and Trace diverge")
	}

	eyeSerial := newTestSim(t, 0, 72).MeasureEyeSerial(0.5, 1000)
	eye := newTestSim(t, 0, 72).MeasureEye(0.5, 1000)
	if eyeSerial != eye {
		t.Errorf("MeasureEyeSerial %+v vs MeasureEye %+v", eyeSerial, eye)
	}

	syncSerial := newTestSim(t, 0.02, 93).SyncSweepSerial(13, 997)
	sync := newTestSim(t, 0.02, 93).SyncSweep(13, 997)
	if !reflect.DeepEqual(syncSerial, sync) {
		t.Error("SyncSweepSerial and SyncSweep diverge")
	}
}

// TestNilEngineMisuse: error-returning entry points reject a nil
// engine cleanly; value-returning ones panic with the engine package's
// guidance, matching engine.Use.
func TestNilEngineMisuse(t *testing.T) {
	s := newTestSim(t, 0, 99)
	if _, err := s.AccuracyVsLengthOn(nil, 0.5, []int{64}, 1); err == nil {
		t.Error("AccuracyVsLengthOn(nil) did not error")
	}
	base, powers := waterfallPowers(t)
	if _, err := BERWaterfallOn(nil, base, powers, 100, 1); err == nil {
		t.Error("BERWaterfallOn(nil) did not error")
	}
	if _, err := s.TraceOn(nil, 0.5, 4, 2); err == nil {
		t.Error("TraceOn(nil) did not error")
	}
	mustPanic(t, "MeasureEyeOn", func() { s.MeasureEyeOn(nil, 0.5, 16) })
	mustPanic(t, "SyncSweepOn", func() { s.SyncSweepOn(nil, 4, 16) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s(nil engine) did not panic", name)
		}
	}()
	f()
}
