package transient

import (
	"testing"

	"repro/internal/core"
)

func TestBERWaterfallTracksAnalytic(t *testing.T) {
	base := core.PaperParams()
	// Power range spanning BER ~1e-1 down to ~1e-4: measurable with
	// 3e5 bits.
	c := core.MustCircuit(base)
	p1 := c.MinProbePowerMW(1e-1)
	p4 := c.MinProbePowerMW(1e-4)
	powers := []float64{p1, (p1 + p4) / 2, p4}
	pts, err := BERWaterfall(base, powers, 300_000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		if p.AnalyticBER <= 0 {
			t.Fatalf("point %d: analytic %g", i, p.AnalyticBER)
		}
		// Measured within a factor 2 of analytic wherever statistics
		// are meaningful (>= ~30 expected errors).
		if p.AnalyticBER*300_000 > 30 {
			ratio := p.MeasuredBER / p.AnalyticBER
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("point %d (%.4f mW): measured %g vs analytic %g", i, p.ProbeMW, p.MeasuredBER, p.AnalyticBER)
			}
		}
		// More power, fewer errors.
		if i > 0 && p.AnalyticBER >= pts[i-1].AnalyticBER {
			t.Errorf("analytic BER not decreasing at %d", i)
		}
	}
	if pts[0].String() == "" {
		t.Error("empty String()")
	}
}

func TestBERWaterfallErrors(t *testing.T) {
	base := core.PaperParams()
	if _, err := BERWaterfall(base, []float64{1}, 0, 1); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := BERWaterfall(base, []float64{-1}, 100, 1); err == nil {
		t.Error("negative power accepted")
	}
	bad := base
	bad.Order = 0
	if _, err := BERWaterfall(bad, []float64{1}, 100, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestBERWaterfallAgainstEq9RoundTrip(t *testing.T) {
	// Sizing the probe for a target with Eq. (9) and then measuring
	// at exactly that power recovers the target (the §V.B design
	// loop closed end to end). The worst-case pattern-pair BER the
	// simulator measures is slightly pessimistic relative to the
	// Eq. (8) margin (simultaneous vs one-hot crosstalk), so allow a
	// one-sided band.
	base := core.PaperParams()
	c := core.MustCircuit(base)
	target := 1e-2
	power := c.MinProbePowerMW(target)
	pts, err := BERWaterfall(base, []float64{power}, 400_000, 23)
	if err != nil {
		t.Fatal(err)
	}
	got := pts[0].MeasuredBER
	if got < target/3 || got > target*4 {
		t.Errorf("measured %g at power sized for %g", got, target)
	}
}
