package transient

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stochastic"
)

// Simulator runs the optical SC unit bit slot by bit slot with
// additive Gaussian detector noise.
type Simulator struct {
	Unit *core.Unit
	// SigmaMW is the received-power noise standard deviation,
	// i_n/R expressed in mW (see package doc).
	SigmaMW float64

	noise *Gaussian
}

// NewSimulator wraps a unit, deriving the noise level from the
// circuit's photodetector.
func NewSimulator(u *core.Unit, seed uint64) *Simulator {
	det := u.Circuit.P.Detector
	sigma := det.NoiseCurrentA / det.ResponsivityAPerW * 1e3 // A/(A/W) = W -> mW
	return &Simulator{
		Unit:    u,
		SigmaMW: sigma,
		noise:   NewGaussian(stochastic.NewSplitMix64(seed)),
	}
}

// Step runs one noisy clock cycle at input probability x.
func (s *Simulator) Step(x float64) core.StepResult {
	return s.Unit.Step(x, s.noise.NextScaled(s.SigmaMW))
}

// Evaluate runs `length` noisy cycles and de-randomizes the output.
func (s *Simulator) Evaluate(x float64, length int) (float64, *stochastic.Bitstream) {
	out := stochastic.NewBitstream(length)
	for t := 0; t < length; t++ {
		out.Set(t, s.Step(x).Bit)
	}
	return out.Value(), out
}

// MeasureWorstCaseBER transmits the worst-case signal/crosstalk
// patterns of Eq. (8) for `bits` slots and returns the observed
// bit-error rate. Even slots carry the worst channel's '1' pattern
// (only z_worst set); odd slots carry its '0' pattern (every other
// coefficient set, maximizing crosstalk). The measurement converges
// to the analytical Eq. (9) BER of the circuit.
func (s *Simulator) MeasureWorstCaseBER(bits int) float64 {
	c := s.Unit.Circuit
	n := c.P.Order
	_, worst := c.WorstCaseDelta()

	onePattern := make([]int, n+1)
	onePattern[worst] = 1
	zeroPattern := make([]int, n+1)
	for i := range zeroPattern {
		if i != worst {
			zeroPattern[i] = 1
		}
	}
	oneLevel := c.ReceivedPowerMW(worst, onePattern)
	zeroLevel := c.ReceivedPowerMW(worst, zeroPattern)
	// The decision threshold for this channel pair sits midway
	// between the pair's own levels, as the analytic SNR assumes.
	threshold := (oneLevel + zeroLevel) / 2

	errors := 0
	for t := 0; t < bits; t++ {
		var level float64
		var want int
		if t%2 == 0 {
			level, want = oneLevel, 1
		} else {
			level, want = zeroLevel, 0
		}
		got := 0
		if level+s.noise.NextScaled(s.SigmaMW) > threshold {
			got = 1
		}
		if got != want {
			errors++
		}
	}
	return float64(errors) / float64(bits)
}

// AnalyticWorstCaseBER returns the Eq. (9) prediction for the same
// worst-case pattern pair measured by MeasureWorstCaseBER: the level
// separation over the noise sigma, halved for the midpoint threshold.
func (s *Simulator) AnalyticWorstCaseBER() float64 {
	c := s.Unit.Circuit
	n := c.P.Order
	_, worst := c.WorstCaseDelta()
	onePattern := make([]int, n+1)
	onePattern[worst] = 1
	zeroPattern := make([]int, n+1)
	for i := range zeroPattern {
		if i != worst {
			zeroPattern[i] = 1
		}
	}
	oneLevel := c.ReceivedPowerMW(worst, onePattern)
	zeroLevel := c.ReceivedPowerMW(worst, zeroPattern)
	snr := (oneLevel - zeroLevel) / s.SigmaMW
	if snr <= 0 {
		return 0.5
	}
	return 0.5 * math.Erfc(snr/(2*math.Sqrt2))
}

// AccuracyPoint is one sample of the throughput–accuracy trade-off.
type AccuracyPoint struct {
	// StreamLen is the stochastic stream length (bits per result).
	StreamLen int
	// RMSE is the root-mean-square error of the de-randomized result
	// against the analytic polynomial value, over `trials` runs.
	RMSE float64
	// ThroughputResultsPerSec is the resulting output rate at the
	// circuit's bit rate.
	ThroughputResultsPerSec float64
}

// AccuracyVsLength measures the end-to-end RMSE at input x for each
// stream length, averaging over trials runs — the §V.B trade-off:
// transmission errors and stochastic fluctuation both shrink as
// streams lengthen, at proportional cost in throughput.
func (s *Simulator) AccuracyVsLength(x float64, lengths []int, trials int) []AccuracyPoint {
	if trials < 1 {
		trials = 1
	}
	want := s.Unit.Poly.Eval(x)
	out := make([]AccuracyPoint, 0, len(lengths))
	for _, l := range lengths {
		if l < 1 {
			continue
		}
		sum := 0.0
		for tr := 0; tr < trials; tr++ {
			got, _ := s.Evaluate(x, l)
			d := got - want
			sum += d * d
		}
		out = append(out, AccuracyPoint{
			StreamLen:               l,
			RMSE:                    math.Sqrt(sum / float64(trials)),
			ThroughputResultsPerSec: s.Unit.Circuit.P.ThroughputBitsPerSec(l),
		})
	}
	return out
}

// String implements fmt.Stringer.
func (p AccuracyPoint) String() string {
	return fmt.Sprintf("L=%d: RMSE %.4f @ %.3g results/s", p.StreamLen, p.RMSE, p.ThroughputResultsPerSec)
}
