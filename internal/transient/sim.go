package transient

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/parallel"
	"repro/internal/stochastic"
)

// Simulator runs the optical SC unit bit slot by bit slot with
// additive Gaussian detector noise.
type Simulator struct {
	Unit *core.Unit
	// SigmaMW is the received-power noise standard deviation,
	// i_n/R expressed in mW (see package doc).
	SigmaMW float64

	// seed is the base seed the batch evaluators derive per-trial
	// randomness from; the serial path's noise generator is seeded
	// from it too.
	seed  uint64
	noise *Gaussian
}

// NewSimulator wraps a unit, deriving the noise level from the
// circuit's photodetector.
func NewSimulator(u *core.Unit, seed uint64) *Simulator {
	det := u.Circuit.P.Detector
	sigma := det.NoiseCurrentA / det.ResponsivityAPerW * 1e3 // A/(A/W) = W -> mW
	return &Simulator{
		Unit:    u,
		SigmaMW: sigma,
		seed:    seed,
		noise:   NewGaussian(stochastic.NewSplitMix64(seed)),
	}
}

// Step runs one noisy clock cycle at input probability x.
func (s *Simulator) Step(x float64) core.StepResult {
	return s.Unit.Step(x, s.noise.NextScaled(s.SigmaMW))
}

// Evaluate runs `length` noisy cycles bit-serially and de-randomizes
// the output. It is the oracle for EvaluateWords; a non-positive
// length is an error (an empty bitstream has no defined value).
func (s *Simulator) Evaluate(x float64, length int) (float64, *stochastic.Bitstream, error) {
	if length <= 0 {
		return 0, nil, fmt.Errorf("transient: stream length %d, need >= 1", length)
	}
	out := stochastic.NewBitstream(length)
	for t := 0; t < length; t++ {
		out.Set(t, s.Step(x).Bit)
	}
	return out.Value(), out, nil
}

// EvaluateWords is Evaluate through the word-parallel noisy datapath:
// SNG words, the carry-save weight tree, power-table lookups and
// block Gaussian noise (Gaussian.FillScaled), 64 cycles per inner
// iteration. It advances the unit's generators and the simulator's
// noise stream exactly as Evaluate does and emits an identical
// bitstream.
func (s *Simulator) EvaluateWords(x float64, length int) (float64, *stochastic.Bitstream, error) {
	if length <= 0 {
		return 0, nil, fmt.Errorf("transient: stream length %d, need >= 1", length)
	}
	out, err := s.Unit.EvaluateNoisy(x, length, func(dst []float64) {
		s.noise.FillScaled(dst, s.SigmaMW)
	})
	if err != nil {
		return 0, nil, err
	}
	return out.Value(), out, nil
}

// noiseSalt separates the per-trial noise seed stream from the
// per-trial SNG seed stream in trialSeeds.
const noiseSalt = 0x9D5C0F6B42A1E37D

// trialSeeds derives batch trial i's unit-generator seed and noise
// seed from the simulator's base seed, via stochastic.DeriveSeed on
// two salted streams. Trial i's randomness depends on (base, i) only,
// which is what makes batch results scheduling-independent.
func trialSeeds(base uint64, i int) (unitSeed, noiseSeed uint64) {
	return stochastic.DeriveSeed(base, i), stochastic.DeriveSeed(base^noiseSalt, i)
}

// EvaluateBatch evaluates every input with a fresh `length`-bit noisy
// stream, fanning the trials out over a runtime.GOMAXPROCS-sized
// worker pool. Trial i runs with SNGs and a Gaussian noise stream seeded
// from the simulator's seed and i only (trialSeeds), so the result is
// reproducible regardless of core count or scheduling — it matches a
// serial walk of core.NewUnit(..., unitSeed) steps fed with the
// trial's own noise stream. The simulator's shared state (unit
// tables, SigmaMW, seed) is only read: EvaluateBatch does not advance
// the serial noise stream and may itself be called concurrently.
func (s *Simulator) EvaluateBatch(xs []float64, length int) ([]float64, error) {
	if length <= 0 {
		return nil, fmt.Errorf("transient: stream length %d, need >= 1", length)
	}
	sigma := s.SigmaMW
	out := make([]float64, len(xs))
	errs := make([]error, len(xs))
	parallel.For(len(xs), func(i int) {
		unitSeed, noiseSeed := trialSeeds(s.seed, i)
		g := NewGaussian(stochastic.NewSplitMix64(noiseSeed))
		v, err := s.Unit.EvaluateNoisySeeded(unitSeed, xs[i], length, func(dst []float64) {
			g.FillScaled(dst, sigma)
		})
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = v
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// worstCasePair returns the worst channel's Eq. (8) one/zero pattern
// levels and the midpoint decision threshold shared by the measured
// and analytic worst-case BER.
func (s *Simulator) worstCasePair() (oneLevel, zeroLevel, threshold float64) {
	c := s.Unit.Circuit
	n := c.P.Order
	_, worst := c.WorstCaseDelta()

	onePattern := make([]int, n+1)
	onePattern[worst] = 1
	zeroPattern := make([]int, n+1)
	for i := range zeroPattern {
		if i != worst {
			zeroPattern[i] = 1
		}
	}
	oneLevel = c.ReceivedPowerMW(worst, onePattern)
	zeroLevel = c.ReceivedPowerMW(worst, zeroPattern)
	// The decision threshold for this channel pair sits midway
	// between the pair's own levels, as the analytic SNR assumes.
	threshold = (oneLevel + zeroLevel) / 2
	return oneLevel, zeroLevel, threshold
}

// MeasureWorstCaseBER transmits the worst-case signal/crosstalk
// patterns of Eq. (8) and returns the observed bit-error rate. Even
// slots carry the worst channel's '1' pattern (only z_worst set); odd
// slots carry its '0' pattern (every other coefficient set,
// maximizing crosstalk). A non-positive slot count is an error, and
// an odd count is rounded up so the two patterns are transmitted
// equally often — an unbalanced split would bias the measurement
// toward one pattern's error rate. Noise is drawn in blocks
// (Gaussian.FillScaled), which consumes the stream exactly as the
// serial per-slot draw would. The measurement converges to the
// analytical Eq. (9) BER of the circuit.
func (s *Simulator) MeasureWorstCaseBER(bits int) (float64, error) {
	if bits <= 0 {
		return 0, fmt.Errorf("transient: BER measurement needs bits >= 1, got %d", bits)
	}
	if bits%2 != 0 {
		bits++ // balance the even/odd pattern split
	}
	oneLevel, zeroLevel, threshold := s.worstCasePair()

	errors := 0
	var noise [64]float64
	for t := 0; t < bits; t += len(noise) {
		nb := min(len(noise), bits-t)
		s.noise.FillScaled(noise[:nb], s.SigmaMW)
		for k := 0; k < nb; k++ {
			level, want := oneLevel, 1
			if (t+k)%2 != 0 {
				level, want = zeroLevel, 0
			}
			got := 0
			if level+noise[k] > threshold {
				got = 1
			}
			if got != want {
				errors++
			}
		}
	}
	return float64(errors) / float64(bits), nil
}

// AnalyticWorstCaseBER returns the Eq. (9) prediction for the same
// worst-case pattern pair measured by MeasureWorstCaseBER: the level
// separation over the noise sigma, halved for the midpoint threshold.
func (s *Simulator) AnalyticWorstCaseBER() float64 {
	oneLevel, zeroLevel, _ := s.worstCasePair()
	snr := (oneLevel - zeroLevel) / s.SigmaMW
	if snr <= 0 {
		return 0.5
	}
	return 0.5 * math.Erfc(snr/(2*math.Sqrt2))
}

// AccuracyPoint is one sample of the throughput–accuracy trade-off.
type AccuracyPoint struct {
	// StreamLen is the stochastic stream length (bits per result).
	StreamLen int
	// RMSE is the root-mean-square error of the de-randomized result
	// against the analytic polynomial value, over `trials` runs.
	RMSE float64
	// ThroughputResultsPerSec is the resulting output rate at the
	// circuit's bit rate.
	ThroughputResultsPerSec float64
}

// accuracySalt separates the per-trial seed streams of
// AccuracyVsLength from the EvaluateBatch trial streams derived from
// the same simulator seed.
const accuracySalt = 0x3C79AC492BA7B653

// accuracyLengths filters the usable stream lengths, preserving order
// — non-positive entries are skipped (they have no defined value).
// Both AccuracyVsLength paths index their per-trial seeds against this
// filtered list, so skipped entries do not shift the seed streams.
func accuracyLengths(lengths []int) []int {
	out := make([]int, 0, len(lengths))
	for _, l := range lengths {
		if l >= 1 {
			out = append(out, l)
		}
	}
	return out
}

// accuracyReduce folds per-trial squared errors (flat, trial-major
// within each length) into the RMSE points, summing in trial order —
// the shared reduction that keeps the fanned-out and serial paths
// bit-identical.
func (s *Simulator) accuracyReduce(valid []int, trials int, sq []float64) []AccuracyPoint {
	out := make([]AccuracyPoint, len(valid))
	for li, l := range valid {
		sum := 0.0
		for tr := 0; tr < trials; tr++ {
			sum += sq[li*trials+tr]
		}
		out[li] = AccuracyPoint{
			StreamLen:               l,
			RMSE:                    math.Sqrt(sum / float64(trials)),
			ThroughputResultsPerSec: s.Unit.Circuit.P.ThroughputBitsPerSec(l),
		}
	}
	return out
}

// AccuracyVsLengthOn measures the end-to-end RMSE at input x for each
// stream length, averaging over trials runs — the §V.B trade-off:
// transmission errors and stochastic fluctuation both shrink as
// streams lengthen, at proportional cost in throughput.
//
// The (length, trial) pairs are independent work items dispatched on
// the given engine like NoiseStudy's combinations: trial i runs the
// word-parallel noisy path with SNG and noise seeds derived from the
// simulator's seed and i alone (trialSeeds over a salted stream), so
// the study is bit-identical on every conforming engine, deterministic
// on any core count, and identical across repeated calls — it does not
// advance the simulator's generators or its serial noise stream. A nil
// engine is an error. If several trials fail, the error of the lowest
// failing index is returned (a deterministic choice).
func (s *Simulator) AccuracyVsLengthOn(e engine.Engine, x float64, lengths []int, trials int) ([]AccuracyPoint, error) {
	return s.AccuracyVsLengthCtx(context.Background(), e, x, lengths, trials)
}

// AccuracyVsLengthCtx is AccuracyVsLengthOn under cooperative
// cancellation: a fired ctx stops the trial fan-out at a trial
// boundary and surfaces a *engine.Partial (wrapping the context error,
// or the *parallel.PanicError of a faulting trial) instead of points.
func (s *Simulator) AccuracyVsLengthCtx(ctx context.Context, e engine.Engine, x float64, lengths []int, trials int) ([]AccuracyPoint, error) {
	if err := engine.Check(e); err != nil {
		return nil, err
	}
	if trials < 1 {
		trials = 1
	}
	valid := accuracyLengths(lengths)
	want := s.Unit.Poly.Eval(x)
	sigma := s.SigmaMW
	sq := make([]float64, len(valid)*trials)
	errs := make([]error, len(sq))
	if err := engine.RunCtx(ctx, e, len(sq), nil, func(i int) {
		unitSeed, noiseSeed := trialSeeds(s.seed^accuracySalt, i)
		g := NewGaussian(stochastic.NewSplitMix64(noiseSeed))
		got, err := s.Unit.EvaluateNoisySeeded(unitSeed, x, valid[i/trials], func(dst []float64) {
			g.FillScaled(dst, sigma)
		})
		if err != nil {
			errs[i] = err
			return
		}
		d := got - want
		sq[i] = d * d
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s.accuracyReduce(valid, trials, sq), nil
}

// AccuracyVsLength is AccuracyVsLengthOn on the process-default
// engine.
func (s *Simulator) AccuracyVsLength(x float64, lengths []int, trials int) ([]AccuracyPoint, error) {
	return s.AccuracyVsLengthOn(engine.Default(), x, lengths, trials)
}

// AccuracyVsLengthSerial is the retained serial oracle for
// AccuracyVsLength: the same implementation on engine.Serial, trials
// in index order on the calling goroutine.
func (s *Simulator) AccuracyVsLengthSerial(x float64, lengths []int, trials int) ([]AccuracyPoint, error) {
	return s.AccuracyVsLengthOn(engine.Serial, x, lengths, trials)
}

// String implements fmt.Stringer.
func (p AccuracyPoint) String() string {
	return fmt.Sprintf("L=%d: RMSE %.4f @ %.3g results/s", p.StreamLen, p.RMSE, p.ThroughputResultsPerSec)
}
