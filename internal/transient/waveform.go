package transient

import (
	"fmt"
	"math"

	"repro/internal/engine"
)

// TracePoint is one time sample of the transient waveform.
type TracePoint struct {
	// TimeS is the absolute simulation time.
	TimeS float64
	// PumpMW is the pump laser's instantaneous optical power at the
	// source (a 26 ps pulse per bit slot for pulse-based designs).
	PumpMW float64
	// ReceivedMW is the noisy power at the photodetector.
	ReceivedMW float64
	// Gated reports whether the detector is being read at this
	// sample (within the pump pulse window, §V.D's synchronization
	// requirement).
	Gated bool
	// Bit is the decision taken in this sample's slot (constant over
	// the slot).
	Bit int
}

// traceGeom is the static slot geometry shared by the word-parallel
// Trace and its serial oracle: bit and pulse windows, pump power and
// the sample count per slot.
type traceGeom struct {
	bitT, pulseT, pumpMW float64
	samplesPerBit        int
}

func (s *Simulator) traceGeom(samplesPerBit int) traceGeom {
	p := s.Unit.Circuit.P
	g := traceGeom{
		bitT:          p.BitPeriodS(),
		pulseT:        p.PulseWidthS,
		pumpMW:        p.PumpPowerMW,
		samplesPerBit: samplesPerBit,
	}
	if g.pulseT <= 0 || g.pulseT > g.bitT {
		g.pulseT = g.bitT // CW pump: gate the whole slot
	}
	return g
}

// appendSlot writes one slot's samplesPerBit waveform samples: the
// slot's decision bit, its noiseless received power, and one noise
// sample per time sample (noise[k] for sample k). Both Trace paths
// feed it the same values in slot order, so they emit identical
// points.
func (g traceGeom) appendSlot(out []TracePoint, slot, bit int, receivedMW float64, noise []float64) []TracePoint {
	slotStart := float64(slot) * g.bitT
	for k := 0; k < g.samplesPerBit; k++ {
		ts := slotStart + g.bitT*float64(k)/float64(g.samplesPerBit)
		inPulse := ts-slotStart < g.pulseT
		pt := TracePoint{
			TimeS: ts,
			Gated: inPulse,
			Bit:   bit,
		}
		if inPulse {
			pt.PumpMW = g.pumpMW
			pt.ReceivedMW = receivedMW + noise[k]
		} else {
			// Filter relaxed: only the residual floor reaches
			// the detector.
			pt.ReceivedMW = noise[k]
		}
		if pt.ReceivedMW < 0 {
			pt.ReceivedMW = 0
		}
		out = append(out, pt)
	}
	return out
}

// traceWalk runs the whole trace as one sequential walk: the unit
// decodes 64 cycles per SNG word draw (core.Unit.Cycles, received
// powers from the shared table) and the detector noise arrives in
// per-slot blocks (Gaussian.FillScaled) — one decision sample plus
// samplesPerBit display samples per slot, consuming the noise stream
// exactly as per-slot draws would.
func (s *Simulator) traceWalk(x float64, bits, samplesPerBit int) ([]TracePoint, error) {
	g := s.traceGeom(samplesPerBit)
	threshold := s.Unit.ThresholdMW()
	out := make([]TracePoint, 0, bits*samplesPerBit)
	noise := make([]float64, 1+samplesPerBit)
	err := s.Unit.Cycles(x, bits, func(b, _, _ int, receivedMW float64) {
		// noise[0] is the slot's decision draw (Step's noiseMW in the
		// serial path); noise[1:] are the display samples.
		s.noise.FillScaled(noise, s.SigmaMW)
		bit := 0
		if receivedMW+noise[0] > threshold {
			bit = 1
		}
		out = g.appendSlot(out, b, bit, receivedMW, noise[1:])
	})
	if err != nil {
		// Unreachable today (bits >= 1, visitor non-nil), but
		// propagate rather than crash if Cycles grows error paths.
		return nil, err
	}
	return out, nil
}

// TraceOn simulates `bits` slots at input probability x with
// samplesPerBit time samples each and returns the waveform. The pump
// fires at the start of each slot; detection is gated to the pulse
// window, after which the filter relaxes and the received power is
// meaningless for decision purposes (modeled as the signal decaying
// to the unselected floor).
//
// The trace consumes the simulator's single sequential noise stream,
// so it cannot fan out: the walk is dispatched as one work item on
// the given engine, and every conforming engine emits the identical
// waveform. A non-positive bit count is an error (an empty trace has
// no waveform), matching the length <= 0 contract of the evaluation
// entry points; samplesPerBit is clamped to at least 2; a nil engine
// is an error.
func (s *Simulator) TraceOn(e engine.Engine, x float64, bits, samplesPerBit int) ([]TracePoint, error) {
	if err := engine.Check(e); err != nil {
		return nil, err
	}
	if bits <= 0 {
		return nil, fmt.Errorf("transient: trace needs bits >= 1, got %d", bits)
	}
	if samplesPerBit < 2 {
		samplesPerBit = 2
	}
	var out []TracePoint
	var walkErr error
	e.For(1, func(int) {
		out, walkErr = s.traceWalk(x, bits, samplesPerBit)
	})
	return out, walkErr
}

// Trace is TraceOn on the process-default engine.
func (s *Simulator) Trace(x float64, bits, samplesPerBit int) ([]TracePoint, error) {
	return s.TraceOn(engine.Default(), x, bits, samplesPerBit)
}

// TraceSerial is the retained serial oracle for Trace: the same walk
// on engine.Serial.
func (s *Simulator) TraceSerial(x float64, bits, samplesPerBit int) ([]TracePoint, error) {
	return s.TraceOn(engine.Serial, x, bits, samplesPerBit)
}

// EyeStats summarizes the gated received-power samples of a run,
// grouped by the transmitted coefficient bit — the numerical
// equivalent of an eye diagram at the decision instant.
type EyeStats struct {
	Count0, Count1 int
	Mean0, Mean1   float64
	Sigma0, Sigma1 float64
	Max0, Min1     float64
	// OpeningMW is Min1 − Max0; non-positive means the eye closed in
	// this run.
	OpeningMW float64
}

// eyeAccum carries the running decision-instant statistics shared by
// the word-parallel MeasureEye and its serial oracle; both feed it one
// noisy sample per cycle in cycle order, so the two paths accumulate
// bit-identical sums.
type eyeAccum struct {
	e                    EyeStats
	sum0, sum1, sq0, sq1 float64
}

func newEyeAccum() *eyeAccum {
	a := &eyeAccum{}
	a.e.Max0 = math.Inf(-1)
	a.e.Min1 = math.Inf(1)
	return a
}

// add records one cycle: the selected coefficient bit and the noisy
// received power.
func (a *eyeAccum) add(selectedBit int, noisy float64) {
	if selectedBit == 1 {
		a.e.Count1++
		a.sum1 += noisy
		a.sq1 += noisy * noisy
		if noisy < a.e.Min1 {
			a.e.Min1 = noisy
		}
	} else {
		a.e.Count0++
		a.sum0 += noisy
		a.sq0 += noisy * noisy
		if noisy > a.e.Max0 {
			a.e.Max0 = noisy
		}
	}
}

// stats finalizes the means, sigmas and opening.
func (a *eyeAccum) stats() EyeStats {
	e := a.e
	if e.Count0 > 0 {
		e.Mean0 = a.sum0 / float64(e.Count0)
		e.Sigma0 = math.Sqrt(math.Max(0, a.sq0/float64(e.Count0)-e.Mean0*e.Mean0))
	}
	if e.Count1 > 0 {
		e.Mean1 = a.sum1 / float64(e.Count1)
		e.Sigma1 = math.Sqrt(math.Max(0, a.sq1/float64(e.Count1)-e.Mean1*e.Mean1))
	}
	e.OpeningMW = e.Min1 - e.Max0
	return e
}

// eyeWalk runs the whole eye measurement as one sequential walk: the
// unit decodes 64 cycles per SNG word draw (core.Unit.Cycles, with
// received powers read from the shared table) and the detector noise
// arrives in 64-sample blocks (Gaussian.FillScaled), advancing the
// unit's generators and the simulator's noise stream exactly as
// per-slot draws would.
func (s *Simulator) eyeWalk(x float64, bits int) EyeStats {
	acc := newEyeAccum()
	var noise [64]float64
	sel := s.Unit.Circuit.SelectedChannel
	err := s.Unit.Cycles(x, bits, func(t, weight, zmask int, receivedMW float64) {
		if t%64 == 0 {
			s.noise.FillScaled(noise[:min(64, bits-t)], s.SigmaMW)
		}
		acc.add(zmask>>sel(weight)&1, receivedMW+noise[t%64])
	})
	if err != nil {
		// Unreachable: bits >= 1 and the visitor is non-nil.
		panic("transient: MeasureEye: " + err.Error())
	}
	return acc.stats()
}

// MeasureEyeOn runs `bits` noisy slots at input probability x and
// aggregates the decision-instant statistics. Like TraceOn, the
// measurement consumes the simulator's single sequential noise
// stream, so the walk is dispatched as one work item on the given
// engine and every conforming engine emits identical statistics. A
// nil engine panics (this entry point has no error return).
func (s *Simulator) MeasureEyeOn(e engine.Engine, x float64, bits int) EyeStats {
	engine.Use(e)
	if bits <= 0 {
		return newEyeAccum().stats()
	}
	var stats EyeStats
	e.For(1, func(int) {
		stats = s.eyeWalk(x, bits)
	})
	return stats
}

// MeasureEye is MeasureEyeOn on the process-default engine.
func (s *Simulator) MeasureEye(x float64, bits int) EyeStats {
	return s.MeasureEyeOn(engine.Default(), x, bits)
}

// MeasureEyeSerial is the retained serial oracle for MeasureEye: the
// same walk on engine.Serial.
func (s *Simulator) MeasureEyeSerial(x float64, bits int) EyeStats {
	return s.MeasureEyeOn(engine.Serial, x, bits)
}

// String implements fmt.Stringer.
func (e EyeStats) String() string {
	return fmt.Sprintf("eye: '0' %.4f±%.4f mW (n=%d), '1' %.4f±%.4f mW (n=%d), opening %.4f mW",
		e.Mean0, e.Sigma0, e.Count0, e.Mean1, e.Sigma1, e.Count1, e.OpeningMW)
}
