package transient

import (
	"fmt"
	"math"
)

// TracePoint is one time sample of the transient waveform.
type TracePoint struct {
	// TimeS is the absolute simulation time.
	TimeS float64
	// PumpMW is the pump laser's instantaneous optical power at the
	// source (a 26 ps pulse per bit slot for pulse-based designs).
	PumpMW float64
	// ReceivedMW is the noisy power at the photodetector.
	ReceivedMW float64
	// Gated reports whether the detector is being read at this
	// sample (within the pump pulse window, §V.D's synchronization
	// requirement).
	Gated bool
	// Bit is the decision taken in this sample's slot (constant over
	// the slot).
	Bit int
}

// Trace simulates `bits` slots at input probability x with
// samplesPerBit time samples each and returns the waveform. The pump
// fires at the start of each slot; detection is gated to the pulse
// window, after which the filter relaxes and the received power is
// meaningless for decision purposes (modeled as the signal decaying
// to the unselected floor).
func (s *Simulator) Trace(x float64, bits, samplesPerBit int) []TracePoint {
	if samplesPerBit < 2 {
		samplesPerBit = 2
	}
	p := s.Unit.Circuit.P
	bitT := p.BitPeriodS()
	pulseT := p.PulseWidthS
	if pulseT <= 0 || pulseT > bitT {
		pulseT = bitT // CW pump: gate the whole slot
	}
	out := make([]TracePoint, 0, bits*samplesPerBit)
	for b := 0; b < bits; b++ {
		r := s.Step(x)
		slotStart := float64(b) * bitT
		for k := 0; k < samplesPerBit; k++ {
			ts := slotStart + bitT*float64(k)/float64(samplesPerBit)
			inPulse := ts-slotStart < pulseT
			pt := TracePoint{
				TimeS: ts,
				Gated: inPulse,
				Bit:   r.Bit,
			}
			if inPulse {
				pt.PumpMW = p.PumpPowerMW
				pt.ReceivedMW = r.ReceivedMW + s.noise.NextScaled(s.SigmaMW)
			} else {
				// Filter relaxed: only the residual floor reaches
				// the detector.
				pt.ReceivedMW = s.noise.NextScaled(s.SigmaMW)
			}
			if pt.ReceivedMW < 0 {
				pt.ReceivedMW = 0
			}
			out = append(out, pt)
		}
	}
	return out
}

// EyeStats summarizes the gated received-power samples of a run,
// grouped by the transmitted coefficient bit — the numerical
// equivalent of an eye diagram at the decision instant.
type EyeStats struct {
	Count0, Count1 int
	Mean0, Mean1   float64
	Sigma0, Sigma1 float64
	Max0, Min1     float64
	// OpeningMW is Min1 − Max0; non-positive means the eye closed in
	// this run.
	OpeningMW float64
}

// eyeAccum carries the running decision-instant statistics shared by
// the word-parallel MeasureEye and its serial oracle; both feed it one
// noisy sample per cycle in cycle order, so the two paths accumulate
// bit-identical sums.
type eyeAccum struct {
	e                    EyeStats
	sum0, sum1, sq0, sq1 float64
}

func newEyeAccum() *eyeAccum {
	a := &eyeAccum{}
	a.e.Max0 = math.Inf(-1)
	a.e.Min1 = math.Inf(1)
	return a
}

// add records one cycle: the selected coefficient bit and the noisy
// received power.
func (a *eyeAccum) add(selectedBit int, noisy float64) {
	if selectedBit == 1 {
		a.e.Count1++
		a.sum1 += noisy
		a.sq1 += noisy * noisy
		if noisy < a.e.Min1 {
			a.e.Min1 = noisy
		}
	} else {
		a.e.Count0++
		a.sum0 += noisy
		a.sq0 += noisy * noisy
		if noisy > a.e.Max0 {
			a.e.Max0 = noisy
		}
	}
}

// stats finalizes the means, sigmas and opening.
func (a *eyeAccum) stats() EyeStats {
	e := a.e
	if e.Count0 > 0 {
		e.Mean0 = a.sum0 / float64(e.Count0)
		e.Sigma0 = math.Sqrt(math.Max(0, a.sq0/float64(e.Count0)-e.Mean0*e.Mean0))
	}
	if e.Count1 > 0 {
		e.Mean1 = a.sum1 / float64(e.Count1)
		e.Sigma1 = math.Sqrt(math.Max(0, a.sq1/float64(e.Count1)-e.Mean1*e.Mean1))
	}
	e.OpeningMW = e.Min1 - e.Max0
	return e
}

// MeasureEye runs `bits` noisy slots at input probability x and
// aggregates the decision-instant statistics. It runs word-parallel:
// the unit decodes 64 cycles per SNG word draw (core.Unit.Cycles, with
// received powers read from the shared table) and the detector noise
// arrives in 64-sample blocks (Gaussian.FillScaled). The unit's
// generators and the simulator's noise stream advance exactly as the
// bit-serial path does, so the statistics are bit-identical to
// MeasureEyeSerial from equal starting state.
func (s *Simulator) MeasureEye(x float64, bits int) EyeStats {
	if bits <= 0 {
		return newEyeAccum().stats()
	}
	acc := newEyeAccum()
	var noise [64]float64
	sel := s.Unit.Circuit.SelectedChannel
	err := s.Unit.Cycles(x, bits, func(t, weight, zmask int, receivedMW float64) {
		if t%64 == 0 {
			s.noise.FillScaled(noise[:min(64, bits-t)], s.SigmaMW)
		}
		acc.add(zmask>>sel(weight)&1, receivedMW+noise[t%64])
	})
	if err != nil {
		// Unreachable: bits >= 1 and the visitor is non-nil.
		panic("transient: MeasureEye: " + err.Error())
	}
	return acc.stats()
}

// MeasureEyeSerial is the retained bit-serial oracle for MeasureEye:
// one Step and one noise draw per slot.
func (s *Simulator) MeasureEyeSerial(x float64, bits int) EyeStats {
	acc := newEyeAccum()
	for t := 0; t < bits; t++ {
		r := s.Unit.Step(x, 0)
		acc.add(r.Z[r.Selected], r.ReceivedMW+s.noise.NextScaled(s.SigmaMW))
	}
	return acc.stats()
}

// String implements fmt.Stringer.
func (e EyeStats) String() string {
	return fmt.Sprintf("eye: '0' %.4f±%.4f mW (n=%d), '1' %.4f±%.4f mW (n=%d), opening %.4f mW",
		e.Mean0, e.Sigma0, e.Count0, e.Mean1, e.Sigma1, e.Count1, e.OpeningMW)
}
