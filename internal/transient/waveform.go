package transient

import (
	"fmt"
	"math"
)

// TracePoint is one time sample of the transient waveform.
type TracePoint struct {
	// TimeS is the absolute simulation time.
	TimeS float64
	// PumpMW is the pump laser's instantaneous optical power at the
	// source (a 26 ps pulse per bit slot for pulse-based designs).
	PumpMW float64
	// ReceivedMW is the noisy power at the photodetector.
	ReceivedMW float64
	// Gated reports whether the detector is being read at this
	// sample (within the pump pulse window, §V.D's synchronization
	// requirement).
	Gated bool
	// Bit is the decision taken in this sample's slot (constant over
	// the slot).
	Bit int
}

// Trace simulates `bits` slots at input probability x with
// samplesPerBit time samples each and returns the waveform. The pump
// fires at the start of each slot; detection is gated to the pulse
// window, after which the filter relaxes and the received power is
// meaningless for decision purposes (modeled as the signal decaying
// to the unselected floor).
func (s *Simulator) Trace(x float64, bits, samplesPerBit int) []TracePoint {
	if samplesPerBit < 2 {
		samplesPerBit = 2
	}
	p := s.Unit.Circuit.P
	bitT := p.BitPeriodS()
	pulseT := p.PulseWidthS
	if pulseT <= 0 || pulseT > bitT {
		pulseT = bitT // CW pump: gate the whole slot
	}
	out := make([]TracePoint, 0, bits*samplesPerBit)
	for b := 0; b < bits; b++ {
		r := s.Step(x)
		slotStart := float64(b) * bitT
		for k := 0; k < samplesPerBit; k++ {
			ts := slotStart + bitT*float64(k)/float64(samplesPerBit)
			inPulse := ts-slotStart < pulseT
			pt := TracePoint{
				TimeS: ts,
				Gated: inPulse,
				Bit:   r.Bit,
			}
			if inPulse {
				pt.PumpMW = p.PumpPowerMW
				pt.ReceivedMW = r.ReceivedMW + s.noise.NextScaled(s.SigmaMW)
			} else {
				// Filter relaxed: only the residual floor reaches
				// the detector.
				pt.ReceivedMW = s.noise.NextScaled(s.SigmaMW)
			}
			if pt.ReceivedMW < 0 {
				pt.ReceivedMW = 0
			}
			out = append(out, pt)
		}
	}
	return out
}

// EyeStats summarizes the gated received-power samples of a run,
// grouped by the transmitted coefficient bit — the numerical
// equivalent of an eye diagram at the decision instant.
type EyeStats struct {
	Count0, Count1 int
	Mean0, Mean1   float64
	Sigma0, Sigma1 float64
	Max0, Min1     float64
	// OpeningMW is Min1 − Max0; non-positive means the eye closed in
	// this run.
	OpeningMW float64
}

// MeasureEye runs `bits` noisy slots at input probability x and
// aggregates the decision-instant statistics.
func (s *Simulator) MeasureEye(x float64, bits int) EyeStats {
	var e EyeStats
	e.Max0 = math.Inf(-1)
	e.Min1 = math.Inf(1)
	var sum0, sum1, sq0, sq1 float64
	for t := 0; t < bits; t++ {
		r := s.Unit.Step(x, 0)
		noisy := r.ReceivedMW + s.noise.NextScaled(s.SigmaMW)
		if r.Z[r.Selected] == 1 {
			e.Count1++
			sum1 += noisy
			sq1 += noisy * noisy
			if noisy < e.Min1 {
				e.Min1 = noisy
			}
		} else {
			e.Count0++
			sum0 += noisy
			sq0 += noisy * noisy
			if noisy > e.Max0 {
				e.Max0 = noisy
			}
		}
	}
	if e.Count0 > 0 {
		e.Mean0 = sum0 / float64(e.Count0)
		e.Sigma0 = math.Sqrt(math.Max(0, sq0/float64(e.Count0)-e.Mean0*e.Mean0))
	}
	if e.Count1 > 0 {
		e.Mean1 = sum1 / float64(e.Count1)
		e.Sigma1 = math.Sqrt(math.Max(0, sq1/float64(e.Count1)-e.Mean1*e.Mean1))
	}
	e.OpeningMW = e.Min1 - e.Max0
	return e
}

// String implements fmt.Stringer.
func (e EyeStats) String() string {
	return fmt.Sprintf("eye: '0' %.4f±%.4f mW (n=%d), '1' %.4f±%.4f mW (n=%d), opening %.4f mW",
		e.Mean0, e.Sigma0, e.Count0, e.Mean1, e.Sigma1, e.Count1, e.OpeningMW)
}
