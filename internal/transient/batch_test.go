package transient

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/stochastic"
)

// hotSim builds a simulator on a deliberately noisy link (probe sized
// for BER 1e-2) so noise actually flips decision bits — equivalence
// tests on a quiet link would never exercise the noisy compare.
func hotSim(t testing.TB, seed uint64) *Simulator {
	t.Helper()
	p := core.PaperParams()
	p.ProbePowerMW = core.MustCircuit(p).MinProbePowerMW(1e-2)
	c, err := core.NewCircuit(p)
	if err != nil {
		t.Fatal(err)
	}
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), seed)
	if err != nil {
		t.Fatal(err)
	}
	return NewSimulator(u, seed+1)
}

// TestSimulatorEvaluateWordsMatchesSerial is the tentpole
// equivalence: the word-parallel noisy datapath must emit the same
// bitstream as the bit-serial Step loop — same SNG streams, same
// noise stream, same decisions — across seeds and awkward lengths.
func TestSimulatorEvaluateWordsMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{3, 1234} {
		serial := hotSim(t, seed)
		packed := hotSim(t, seed)
		for _, length := range []int{1, 63, 64, 65, 500} {
			for _, x := range []float64{0, 0.3, 0.8, 1} {
				vs, bs, err := serial.Evaluate(x, length)
				if err != nil {
					t.Fatal(err)
				}
				vp, bp, err := packed.EvaluateWords(x, length)
				if err != nil {
					t.Fatal(err)
				}
				if vs != vp {
					t.Fatalf("seed %d len %d x=%g: value %g vs %g", seed, length, x, vs, vp)
				}
				for w := 0; w < bs.WordCount(); w++ {
					if bs.Word(w) != bp.Word(w) {
						t.Fatalf("seed %d len %d x=%g: word %d %x vs %x",
							seed, length, x, w, bs.Word(w), bp.Word(w))
					}
				}
			}
		}
	}
}

// TestSimulatorEvaluateBatchMatchesSerialDerivation: batch trial i
// must equal a bit-serial walk of a fresh unit seeded from
// trialSeeds(seed, i), fed by that trial's own Gaussian stream — the
// documented contract that makes batch results reproducible.
func TestSimulatorEvaluateBatchMatchesSerialDerivation(t *testing.T) {
	s := hotSim(t, 55)
	xs := []float64{0, 0.2, 0.5, 0.9, 1}
	const length = 300
	got, err := s.EvaluateBatch(xs, length)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("batch length %d", len(got))
	}
	for i, x := range xs {
		unitSeed, noiseSeed := trialSeeds(s.seed, i)
		u, err := core.NewUnit(s.Unit.Circuit, s.Unit.Poly, unitSeed)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGaussian(stochastic.NewSplitMix64(noiseSeed))
		ones := 0
		for tt := 0; tt < length; tt++ {
			ones += u.Step(x, g.NextScaled(s.SigmaMW)).Bit
		}
		want := float64(ones) / float64(length)
		if got[i] != want {
			t.Errorf("x[%d]=%g: batch %g vs serial derivation %g", i, x, got[i], want)
		}
	}
}

// TestSimulatorEvaluateBatchDeterministic: fixed seed, identical
// results across repeated runs, across worker counts (GOMAXPROCS
// sizes the pool, so pinning it to 1 forces the serial-loop path of
// parallel.For), and across batch-prefix slicing (a shorter xs gets a
// smaller pool but must reproduce the same leading trials, since
// trial randomness derives from the index alone).
func TestSimulatorEvaluateBatchDeterministic(t *testing.T) {
	xs := make([]float64, 48)
	for i := range xs {
		xs[i] = float64(i) / 47
	}
	first, err := hotSim(t, 99).EvaluateBatch(xs, 256)
	if err != nil {
		t.Fatal(err)
	}
	again, err := hotSim(t, 99).EvaluateBatch(xs, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("repeat run differs at %d: %g vs %g", i, first[i], again[i])
		}
	}
	for _, prefix := range []int{1, 7} {
		part, err := hotSim(t, 99).EvaluateBatch(xs[:prefix], 256)
		if err != nil {
			t.Fatal(err)
		}
		for i := range part {
			if first[i] != part[i] {
				t.Fatalf("prefix %d differs at %d: %g vs %g", prefix, i, first[i], part[i])
			}
		}
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	single, err := hotSim(t, 99).EvaluateBatch(xs, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != single[i] {
			t.Fatalf("GOMAXPROCS=1 run differs at %d: %g vs %g", i, first[i], single[i])
		}
	}
}

// TestSimulatorEvaluateBatchRace exercises concurrent EvaluateBatch
// calls on one shared simulator (shared power table, per-trial
// sources); `go test -race` turns it into a data-race check.
func TestSimulatorEvaluateBatchRace(t *testing.T) {
	s := hotSim(t, 8)
	xs := make([]float64, 32)
	for i := range xs {
		xs[i] = float64(i) / 31
	}
	done := make(chan []float64, 4)
	for g := 0; g < 4; g++ {
		go func() {
			vals, err := s.EvaluateBatch(xs, 256)
			if err != nil {
				t.Error(err)
			}
			done <- vals
		}()
	}
	first := <-done
	for g := 1; g < 4; g++ {
		other := <-done
		for i := range first {
			if first[i] != other[i] {
				t.Fatalf("concurrent batches disagree at %d: %g vs %g", i, first[i], other[i])
			}
		}
	}
}

// TestSimulatorEvaluateBatchConverges: the Monte-Carlo mean over
// many independent noisy trials lands on the analytic polynomial
// value on a quiet link.
func TestSimulatorEvaluateBatchConverges(t *testing.T) {
	s := newTestSim(t, 0, 71) // paper's 1 mW probes: effectively noiseless
	const trials = 64
	for _, x := range []float64{0.25, 0.5, 0.75} {
		xs := make([]float64, trials)
		for i := range xs {
			xs[i] = x
		}
		vals, err := s.EvaluateBatch(xs, 4096)
		if err != nil {
			t.Fatal(err)
		}
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= trials
		want := s.Unit.Poly.Eval(x)
		if d := mean - want; d > 0.01 || d < -0.01 {
			t.Errorf("x=%g: batch mean %g vs analytic %g", x, mean, want)
		}
	}
}

// --- Benchmarks: the acceptance criterion is >= 3x single-core at
// 4096-bit streams (EvaluateWords vs Evaluate); EvaluateBatch adds
// the multi-core fan-out on top.

func BenchmarkSimulatorEvaluateSerial(b *testing.B) {
	s := hotSim(b, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Evaluate(0.5, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorEvaluateWords(b *testing.B) {
	s := hotSim(b, 5)
	if _, _, err := s.EvaluateWords(0.5, 64); err != nil { // build tables
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.EvaluateWords(0.5, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorEvaluateBatch(b *testing.B) {
	s := hotSim(b, 5)
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = float64(i) / 255
	}
	if _, _, err := s.EvaluateWords(0.5, 64); err != nil { // build tables
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EvaluateBatch(xs, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorMeasureWorstCaseBER(b *testing.B) {
	s := hotSim(b, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MeasureWorstCaseBER(100_000); err != nil {
			b.Fatal(err)
		}
	}
}
