package transient

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// Cross-engine equivalence and GOMAXPROCS determinism for the
// fanned-out paths in this package live in engine_test.go, which
// registers every engine-accepting entry point into the generic
// enginetest suite. This file keeps the behavioral tests and the
// benchmark pairs.

// waterfallPowers returns a small probe-power range spanning
// measurable BERs for the paper circuit.
func waterfallPowers(t testing.TB) (core.Params, []float64) {
	base := core.PaperParams()
	c := core.MustCircuit(base)
	p1 := c.MinProbePowerMW(1e-1)
	p3 := c.MinProbePowerMW(1e-3)
	return base, []float64{p1, (p1 + p3) / 2, p3}
}

// TestAccuracyVsLengthRepeatable: the study derives its randomness
// from the simulator's seed alone — it no longer advances the
// simulator's generators, so repeated calls return identical points
// and interleaved evaluations are unaffected.
func TestAccuracyVsLengthRepeatable(t *testing.T) {
	s := newTestSim(t, 0, 82)
	first, err := s.AccuracyVsLength(0.5, []int{64, 256}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.EvaluateWords(0.5, 128); err != nil {
		t.Fatal(err)
	}
	second, err := s.AccuracyVsLength(0.5, []int{64, 256}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("repeated calls differ: %+v vs %+v", first, second)
	}
}

func BenchmarkTraceSerial(b *testing.B) {
	s := hotSim(b, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.TraceSerial(0.5, 1024, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrace(b *testing.B) {
	s := hotSim(b, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Trace(0.5, 1024, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBERWaterfallSerial(b *testing.B) {
	base, powers := waterfallPowers(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BERWaterfallSerial(base, powers, 20_000, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBERWaterfall(b *testing.B) {
	base, powers := waterfallPowers(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BERWaterfall(base, powers, 20_000, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccuracyVsLengthSerial(b *testing.B) {
	s := hotSim(b, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.AccuracyVsLengthSerial(0.5, []int{256, 1024}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccuracyVsLength(b *testing.B) {
	s := hotSim(b, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.AccuracyVsLength(0.5, []int{256, 1024}, 8); err != nil {
			b.Fatal(err)
		}
	}
}
