package transient

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
)

// withGOMAXPROCS runs f at the given GOMAXPROCS, restoring the old
// value afterwards.
func withGOMAXPROCS(n int, f func()) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(n))
	f()
}

// assertDeterministic evaluates gen at GOMAXPROCS 1 and 4 and requires
// deeply equal results — the contract every fanned-out path carries.
func assertDeterministic[T any](t *testing.T, name string, gen func() (T, error)) {
	t.Helper()
	var single, multi T
	var errSingle, errMulti error
	withGOMAXPROCS(1, func() { single, errSingle = gen() })
	withGOMAXPROCS(4, func() { multi, errMulti = gen() })
	if (errSingle == nil) != (errMulti == nil) {
		t.Fatalf("%s: errors differ: %v vs %v", name, errSingle, errMulti)
	}
	if errSingle != nil {
		t.Fatalf("%s: %v", name, errSingle)
	}
	if !reflect.DeepEqual(single, multi) {
		t.Errorf("%s: GOMAXPROCS=1 and 4 disagree\n  1: %+v\n  4: %+v", name, single, multi)
	}
}

// waterfallPowers returns a small probe-power range spanning
// measurable BERs for the paper circuit.
func waterfallPowers(t testing.TB) (core.Params, []float64) {
	base := core.PaperParams()
	c := core.MustCircuit(base)
	p1 := c.MinProbePowerMW(1e-1)
	p3 := c.MinProbePowerMW(1e-3)
	return base, []float64{p1, (p1 + p3) / 2, p3}
}

// TestBERWaterfallMatchesSerialOracle: the fanned-out waterfall emits
// points bit-identical to the serial walk — same derived per-point
// seeds, same measurements.
func TestBERWaterfallMatchesSerialOracle(t *testing.T) {
	base, powers := waterfallPowers(t)
	got, err := BERWaterfall(base, powers, 20_000, 41)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BERWaterfallSerial(base, powers, 20_000, 41)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel %+v vs serial %+v", got, want)
	}
}

func TestBERWaterfallDeterministicAcrossGOMAXPROCS(t *testing.T) {
	base, powers := waterfallPowers(t)
	assertDeterministic(t, "BERWaterfall", func() ([]WaterfallPoint, error) {
		return BERWaterfall(base, powers, 10_000, 42)
	})
}

// TestAccuracyVsLengthMatchesSerialOracle: the fanned-out study is
// bit-identical to the Step-per-cycle oracle — the same derived
// per-trial seeds drive the packed and serial datapaths.
func TestAccuracyVsLengthMatchesSerialOracle(t *testing.T) {
	s := newTestSim(t, 0, 80)
	lengths := []int{1, 63, 64, 0, 65, 300}
	got, err := s.AccuracyVsLength(0.5, lengths, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.AccuracyVsLengthSerial(0.5, lengths, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel %+v vs serial %+v", got, want)
	}
}

func TestAccuracyVsLengthDeterministicAcrossGOMAXPROCS(t *testing.T) {
	s := newTestSim(t, 0, 81)
	assertDeterministic(t, "AccuracyVsLength", func() ([]AccuracyPoint, error) {
		return s.AccuracyVsLength(0.5, []int{64, 256}, 6)
	})
}

// TestAccuracyVsLengthRepeatable: the study derives its randomness
// from the simulator's seed alone — it no longer advances the
// simulator's generators, so repeated calls return identical points
// and interleaved evaluations are unaffected.
func TestAccuracyVsLengthRepeatable(t *testing.T) {
	s := newTestSim(t, 0, 82)
	first, err := s.AccuracyVsLength(0.5, []int{64, 256}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.EvaluateWords(0.5, 128); err != nil {
		t.Fatal(err)
	}
	second, err := s.AccuracyVsLength(0.5, []int{64, 256}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("repeated calls differ: %+v vs %+v", first, second)
	}
}

func BenchmarkTraceSerial(b *testing.B) {
	s := hotSim(b, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.TraceSerial(0.5, 1024, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrace(b *testing.B) {
	s := hotSim(b, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Trace(0.5, 1024, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBERWaterfallSerial(b *testing.B) {
	base, powers := waterfallPowers(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BERWaterfallSerial(base, powers, 20_000, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBERWaterfall(b *testing.B) {
	base, powers := waterfallPowers(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BERWaterfall(base, powers, 20_000, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccuracyVsLengthSerial(b *testing.B) {
	s := hotSim(b, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.AccuracyVsLengthSerial(0.5, []int{256, 1024}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccuracyVsLength(b *testing.B) {
	s := hotSim(b, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.AccuracyVsLength(0.5, []int{256, 1024}, 8); err != nil {
			b.Fatal(err)
		}
	}
}
