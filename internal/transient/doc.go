// Package transient implements the time-domain simulation the paper
// lists as future work (§V.D item ii): clocked bit-slot simulation of
// the optical stochastic-computing unit with additive Gaussian
// detector noise, pulse-gated detection for the 26 ps pump laser, and
// measurement of the resulting bit-error rate and end-to-end
// computational accuracy.
//
// The noise model follows the paper's Eq. (8) exactly: the detector's
// internal noise current i_n against responsivity R corresponds to a
// received-power standard deviation of i_n/R, so the measured BER of
// a simulation run converges to the analytical Eq. (9) prediction
// when the worst-case signal/crosstalk patterns are transmitted.
// That agreement is the package's main validation test.
//
// On top of the bit-level simulator the package provides the
// throughput–accuracy trade-off study (§V.B): longer stochastic
// streams average transmission errors away, letting a designer trade
// probe laser power against stream length.
package transient
