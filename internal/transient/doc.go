// Package transient implements the time-domain simulation the paper
// lists as future work (§V.D item ii): clocked bit-slot simulation of
// the optical stochastic-computing unit with additive Gaussian
// detector noise, pulse-gated detection for the 26 ps pump laser, and
// measurement of the resulting bit-error rate and end-to-end
// computational accuracy.
//
// The noise model follows the paper's Eq. (8) exactly: the detector's
// internal noise current i_n against responsivity R corresponds to a
// received-power standard deviation of i_n/R, so the measured BER of
// a simulation run converges to the analytical Eq. (9) prediction
// when the worst-case signal/crosstalk patterns are transmitted.
// That agreement is the package's main validation test.
//
// # Batched noisy evaluation
//
// Every noisy evaluator comes in two equivalent forms. The bit-serial
// Simulator.Step/Evaluate path advances one clock per call and serves
// as the oracle. The word-parallel path (Simulator.EvaluateWords)
// simulates 64 clocks per machine word — SNG words, the carry-save
// weight tree, received-power table lookups and block Gaussian noise
// (Gaussian.Fill/FillScaled, a Box–Muller pair at a time) — and emits
// bit-identical streams. Monte-Carlo studies go through
// Simulator.EvaluateBatch, which fans independent trials over a
// runtime.GOMAXPROCS-sized worker pool with per-trial seeds derived by
// stochastic.DeriveSeed, so results are reproducible on any core
// count. Quickstart:
//
//	u, _ := core.NewUnit(circuit, poly, 1)
//	sim := transient.NewSimulator(u, 2)
//	val, _, err := sim.EvaluateWords(0.5, 4096) // one noisy stream
//	xs := []float64{0.5, 0.5, 0.5, 0.5}         // 4 independent trials
//	vals, err := sim.EvaluateBatch(xs, 4096)    // fanned over all cores
//	ber, err := sim.MeasureWorstCaseBER(200_000)
//
// On top of the bit-level simulator the package provides the
// throughput–accuracy trade-off study (§V.B): longer stochastic
// streams average transmission errors away, letting a designer trade
// probe laser power against stream length; internal/dse.NoiseStudy
// sweeps that trade-off over probe power and noise sigma.
//
// # Word-parallel measurements
//
// Every measurement on top of the simulator follows the same pattern:
// an engine-dispatched entry point XOn(e engine.Engine, ...) whose
// randomness derives from item indices, a bare X running on the
// process-default engine, and an XSerial shim on engine.Serial — all
// bit-identical across engines on any core count, pinned by this
// package's internal/engine/enginetest suite.
//
//   - TraceOn (Trace / TraceSerial) — the pulse-gated waveform
//     written over core.Unit.Cycles (64 decoded cycles per SNG word
//     draw) with per-slot block noise fills.
//   - MeasureEyeOn (MeasureEye / MeasureEyeSerial) — decision-instant
//     statistics over the same decoded-cycle visitor.
//   - SyncSweepOn (SyncSweep / SyncSweepSerial) — sampling offsets
//     fanned over the engine with per-offset derived noise seeds.
//   - BERWaterfallOn (BERWaterfall / BERWaterfallSerial) —
//     probe-power points fanned over the engine, each rebuilding its
//     circuit with per-point derived unit and simulator seeds.
//   - AccuracyVsLengthOn (AccuracyVsLength / AccuracyVsLengthSerial)
//     — (length, trial) pairs fanned over the engine with per-trial
//     derived seeds; it does not advance the simulator's generators,
//     so repeated calls return identical points.
package transient
