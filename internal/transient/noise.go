package transient

import (
	"math"

	"repro/internal/stochastic"
)

// Gaussian draws normal deviates from a uniform NumberSource via the
// Box–Muller transform. It is deterministic given the source, which
// keeps transient simulations reproducible.
type Gaussian struct {
	src   stochastic.NumberSource
	spare float64
	has   bool
}

// NewGaussian wraps a uniform source.
func NewGaussian(src stochastic.NumberSource) *Gaussian {
	if src == nil {
		panic("transient: nil NumberSource")
	}
	return &Gaussian{src: src}
}

// Next returns a standard normal deviate.
func (g *Gaussian) Next() float64 {
	if g.has {
		g.has = false
		return g.spare
	}
	// Box–Muller; reject u1 == 0 to avoid log(0).
	var u1 float64
	for {
		u1 = g.src.Next()
		if u1 > 0 {
			break
		}
	}
	u2 := g.src.Next()
	r := math.Sqrt(-2 * math.Log(u1))
	g.spare = r * math.Sin(2*math.Pi*u2)
	g.has = true
	return r * math.Cos(2*math.Pi*u2)
}

// NextScaled returns a normal deviate with the given standard
// deviation.
func (g *Gaussian) NextScaled(sigma float64) float64 {
	return sigma * g.Next()
}
