package transient

import (
	"repro/internal/stochastic"
)

// Gaussian is the shared Box–Muller sampler (stochastic.Gaussian),
// re-exported under its historical name: transient simulations consume
// it for detector noise, and the per-sample (Next/NextScaled) and
// block (Fill/FillScaled) interfaces draw bit-identical sequences from
// equal sources — see the type's documentation in internal/stochastic.
type Gaussian = stochastic.Gaussian

// NewGaussian wraps a uniform source.
func NewGaussian(src stochastic.NumberSource) *Gaussian {
	return stochastic.NewGaussian(src)
}
