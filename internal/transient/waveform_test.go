package transient

import (
	"math"
	"strings"
	"testing"
)

func TestTraceShapeAndGating(t *testing.T) {
	s := newTestSim(t, 0, 60)
	bits, spb := 8, 20
	tr, err := s.Trace(0.5, bits, spb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != bits*spb {
		t.Fatalf("trace length %d", len(tr))
	}
	// Time strictly increasing.
	for i := 1; i < len(tr); i++ {
		if tr[i].TimeS <= tr[i-1].TimeS {
			t.Fatalf("time not increasing at %d", i)
		}
	}
	// The pump is pulsed: with 26 ps pulses in a 1 ns slot sampled
	// 20x, exactly the first sample of each slot is gated.
	gated, unGated := 0, 0
	for _, p := range tr {
		if p.Gated {
			gated++
			if p.PumpMW <= 0 {
				t.Error("gated sample without pump power")
			}
		} else {
			unGated++
			if p.PumpMW != 0 {
				t.Error("pump on outside pulse window")
			}
		}
		if p.ReceivedMW < 0 {
			t.Error("negative received power")
		}
	}
	if gated != bits {
		t.Errorf("gated samples = %d, want %d (one per slot)", gated, bits)
	}
	if unGated == 0 {
		t.Error("no ungated samples")
	}
}

func TestTraceCWGatesWholeSlot(t *testing.T) {
	s := newTestSim(t, 0, 61)
	s.Unit.Circuit.P.PulseWidthS = 0 // CW pump
	tr, err := s.Trace(0.5, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr {
		if !p.Gated {
			t.Fatal("CW pump should gate the whole slot")
		}
	}
}

func TestTraceSampleClamping(t *testing.T) {
	s := newTestSim(t, 0, 62)
	tr, err := s.Trace(0.5, 1, 1) // clamps to 2 samples per bit
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 {
		t.Errorf("clamped samples = %d", len(tr))
	}
}

// TestTraceRejectsBadBits is the regression for the silent empty trace
// a non-positive bit count used to produce: Trace must reject it with
// an error, matching the length <= 0 contract of the evaluation entry
// points.
func TestTraceRejectsBadBits(t *testing.T) {
	s := newTestSim(t, 0, 64)
	for _, bits := range []int{0, -3} {
		if tr, err := s.Trace(0.5, bits, 8); err == nil {
			t.Errorf("Trace(bits=%d) returned %d points, want error", bits, len(tr))
		}
		if tr, err := s.TraceSerial(0.5, bits, 8); err == nil {
			t.Errorf("TraceSerial(bits=%d) returned %d points, want error", bits, len(tr))
		}
	}
}

func TestMeasureEyeSeparation(t *testing.T) {
	s := newTestSim(t, 0, 70)
	e := s.MeasureEye(0.5, 20_000)
	if e.Count0 == 0 || e.Count1 == 0 {
		t.Fatalf("eye counts %d/%d", e.Count0, e.Count1)
	}
	// The paper-level design has a wide-open eye: mean separation far
	// beyond the noise.
	if e.Mean1 <= e.Mean0 {
		t.Errorf("means not separated: %g vs %g", e.Mean0, e.Mean1)
	}
	if e.OpeningMW <= 0 {
		t.Errorf("eye closed: %g", e.OpeningMW)
	}
	// Means approximate the Fig. 5(c) band centers (paper ~0.095 and
	// ~0.48 mW).
	if e.Mean0 < 0.05 || e.Mean0 > 0.15 {
		t.Errorf("'0' mean = %g, expected ~0.1", e.Mean0)
	}
	if e.Mean1 < 0.4 || e.Mean1 > 0.6 {
		t.Errorf("'1' mean = %g, expected ~0.5", e.Mean1)
	}
	// Sigmas near the injected noise level.
	if e.Sigma0 > 3*s.SigmaMW+0.01 || e.Sigma1 > 3*s.SigmaMW+0.01 {
		t.Errorf("sigmas %g/%g far above noise %g", e.Sigma0, e.Sigma1, s.SigmaMW)
	}
	if !strings.Contains(e.String(), "opening") {
		t.Error("String() malformed")
	}
}

func TestMeasureEyeDegenerateBits(t *testing.T) {
	s := newTestSim(t, 0, 73)
	e := s.MeasureEye(0.5, 0)
	if e.Count0 != 0 || e.Count1 != 0 {
		t.Errorf("counts %d/%d for zero bits", e.Count0, e.Count1)
	}
}

func TestMeasureEyeClosesUnderNoise(t *testing.T) {
	s := newTestSim(t, 0, 71)
	s.SigmaMW = 0.5 // noise comparable to the signal swing
	e := s.MeasureEye(0.5, 5_000)
	if e.OpeningMW > 0.2 {
		t.Errorf("eye unexpectedly open (%g) under heavy noise", e.OpeningMW)
	}
	if math.IsInf(e.OpeningMW, 0) {
		t.Error("opening not finite")
	}
}
