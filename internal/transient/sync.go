package transient

import (
	"fmt"
	"math"
)

// SyncPoint is one sample of the detector-gating study: the sampling
// offset within the bit slot and the resulting bit-error rate.
type SyncPoint struct {
	// OffsetS is the detector sampling instant relative to the slot
	// start.
	OffsetS float64
	// BER is the measured error rate at that offset.
	BER float64
	// InPulse reports whether the offset falls inside the pump pulse
	// window.
	InPulse bool
}

// SyncSweep quantifies the synchronization requirement the paper's
// §V.D raises for pulse-based pumps: the filter is only tuned while
// the 26 ps pulse is present, so a detector sampling outside the
// pulse window sees the relaxed (untuned) filter and the computation
// fails. The sweep measures the worst-case BER at `points` sampling
// offsets across one bit slot, with `bits` transmitted pattern pairs
// per offset.
//
// Inside the pulse window the received level carries the selected
// channel's power; outside it the filter rests at λref, where no
// probe channel aligns, so the '1' level collapses onto the '0'
// level and the BER rises toward 0.5.
func (s *Simulator) SyncSweep(points, bits int) []SyncPoint {
	if points < 2 {
		points = 2
	}
	c := s.Unit.Circuit
	p := c.P
	bitT := p.BitPeriodS()
	pulseT := p.PulseWidthS
	if pulseT <= 0 || pulseT > bitT {
		pulseT = bitT
	}

	n := p.Order
	_, worst := c.WorstCaseDelta()
	onePattern := make([]int, n+1)
	onePattern[worst] = 1
	zeroPattern := make([]int, n+1)
	for i := range zeroPattern {
		if i != worst {
			zeroPattern[i] = 1
		}
	}
	// In-pulse levels: filter tuned to the worst channel.
	oneIn := c.ReceivedPowerMW(worst, onePattern)
	zeroIn := c.ReceivedPowerMW(worst, zeroPattern)
	// Out-of-pulse levels: filter relaxed to λref (no pump). The
	// drop port then sits FilterOffset away from the top channel.
	oneOut := s.relaxedPower(onePattern)
	zeroOut := s.relaxedPower(zeroPattern)

	threshold := (oneIn + zeroIn) / 2
	out := make([]SyncPoint, 0, points)
	for k := 0; k < points; k++ {
		// Sample at slot midpoints so the window classification is
		// unambiguous at the boundaries.
		off := bitT * (float64(k) + 0.5) / float64(points)
		inPulse := off < pulseT
		oneLvl, zeroLvl := oneOut, zeroOut
		if inPulse {
			oneLvl, zeroLvl = oneIn, zeroIn
		}
		errs := 0
		for t := 0; t < bits; t++ {
			var lvl float64
			var want int
			if t%2 == 0 {
				lvl, want = oneLvl, 1
			} else {
				lvl, want = zeroLvl, 0
			}
			got := 0
			if lvl+s.noise.NextScaled(s.SigmaMW) > threshold {
				got = 1
			}
			if got != want {
				errs++
			}
		}
		out = append(out, SyncPoint{
			OffsetS: off,
			BER:     float64(errs) / float64(bits),
			InPulse: inPulse,
		})
	}
	return out
}

// relaxedPower returns the received power with the filter at its
// cold resonance (pump off).
func (s *Simulator) relaxedPower(z []int) float64 {
	c := s.Unit.Circuit
	sum := 0.0
	for i := range z {
		sum += c.P.ProbePowerMW * c.ProbeTransmission(i, z, 0)
	}
	return sum
}

// String implements fmt.Stringer.
func (p SyncPoint) String() string {
	where := "outside pulse"
	if p.InPulse {
		where = "inside pulse"
	}
	return fmt.Sprintf("offset %6.1f ps: BER %.3g (%s)", p.OffsetS*1e12, p.BER, where)
}

// WorstInPulseBER and WorstOutOfPulseBER summarize a sweep.
func WorstInPulseBER(pts []SyncPoint) float64 {
	worst := 0.0
	for _, p := range pts {
		if p.InPulse && p.BER > worst {
			worst = p.BER
		}
	}
	return worst
}

// WorstOutOfPulseBER returns the best (lowest) BER outside the pulse
// window — if even the best out-of-pulse offset is terrible, gating
// is mandatory.
func WorstOutOfPulseBER(pts []SyncPoint) float64 {
	best := math.Inf(1)
	any := false
	for _, p := range pts {
		if !p.InPulse {
			any = true
			if p.BER < best {
				best = p.BER
			}
		}
	}
	if !any {
		return 0
	}
	return best
}
