package transient

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/stochastic"
)

// SyncPoint is one sample of the detector-gating study: the sampling
// offset within the bit slot and the resulting bit-error rate.
type SyncPoint struct {
	// OffsetS is the detector sampling instant relative to the slot
	// start.
	OffsetS float64
	// BER is the measured error rate at that offset.
	BER float64
	// InPulse reports whether the offset falls inside the pump pulse
	// window.
	InPulse bool
}

// syncLevels is the static part of the sweep: the worst-case pattern
// levels inside and outside the pulse window, the decision threshold,
// and the timing windows shared by the parallel path and its serial
// oracle.
type syncLevels struct {
	bitT, pulseT                   float64
	oneIn, zeroIn, oneOut, zeroOut float64
	threshold                      float64
}

func (s *Simulator) syncLevels() syncLevels {
	c := s.Unit.Circuit
	p := c.P
	l := syncLevels{bitT: p.BitPeriodS(), pulseT: p.PulseWidthS}
	if l.pulseT <= 0 || l.pulseT > l.bitT {
		l.pulseT = l.bitT
	}

	n := p.Order
	_, worst := c.WorstCaseDelta()
	onePattern := make([]int, n+1)
	onePattern[worst] = 1
	zeroPattern := make([]int, n+1)
	for i := range zeroPattern {
		if i != worst {
			zeroPattern[i] = 1
		}
	}
	// In-pulse levels: filter tuned to the worst channel.
	l.oneIn = c.ReceivedPowerMW(worst, onePattern)
	l.zeroIn = c.ReceivedPowerMW(worst, zeroPattern)
	// Out-of-pulse levels: filter relaxed to λref (no pump). The
	// drop port then sits FilterOffset away from the top channel.
	l.oneOut = s.relaxedPower(onePattern)
	l.zeroOut = s.relaxedPower(zeroPattern)
	l.threshold = (l.oneIn + l.zeroIn) / 2
	return l
}

// point measures offset k of a `points`-offset sweep with `bits`
// transmitted pattern pairs, drawing noise from g in slot order in
// 64-sample blocks (Gaussian.FillScaled consumes g exactly as per-slot
// draws would, so block size does not affect the error count).
func (l syncLevels) point(k, points, bits int, g *Gaussian, sigma float64) SyncPoint {
	// Sample at slot midpoints so the window classification is
	// unambiguous at the boundaries.
	off := l.bitT * (float64(k) + 0.5) / float64(points)
	inPulse := off < l.pulseT
	oneLvl, zeroLvl := l.oneOut, l.zeroOut
	if inPulse {
		oneLvl, zeroLvl = l.oneIn, l.zeroIn
	}
	errs := 0
	var noise [64]float64
	for t := 0; t < bits; t += 64 {
		nb := min(64, bits-t)
		g.FillScaled(noise[:nb], sigma)
		for i := 0; i < nb; i++ {
			errs += l.slotError(t+i, oneLvl, zeroLvl, noise[i])
		}
	}
	return SyncPoint{
		OffsetS: off,
		BER:     float64(errs) / float64(bits),
		InPulse: inPulse,
	}
}

// slotError returns 1 when slot t decides wrongly: even slots carry
// the '1' level, odd slots the '0' level.
func (l syncLevels) slotError(t int, oneLvl, zeroLvl, noiseMW float64) int {
	lvl, want := oneLvl, 1
	if t%2 != 0 {
		lvl, want = zeroLvl, 0
	}
	got := 0
	if lvl+noiseMW > l.threshold {
		got = 1
	}
	if got != want {
		return 1
	}
	return 0
}

// syncSalt separates the per-offset noise seed stream of SyncSweep
// from the batch trial streams derived from the same simulator seed.
const syncSalt = 0x6A09E667F3BCC908

// offsetNoise returns offset k's noise generator, derived from the
// simulator's base seed and k only.
func (s *Simulator) offsetNoise(k int) *Gaussian {
	return NewGaussian(stochastic.NewSplitMix64(stochastic.DeriveSeed(s.seed^syncSalt, k)))
}

// SyncSweepOn quantifies the synchronization requirement the paper's
// §V.D raises for pulse-based pumps: the filter is only tuned while
// the 26 ps pulse is present, so a detector sampling outside the
// pulse window sees the relaxed (untuned) filter and the computation
// fails. The sweep measures the worst-case BER at `points` sampling
// offsets across one bit slot, with `bits` transmitted pattern pairs
// per offset.
//
// Inside the pulse window the received level carries the selected
// channel's power; outside it the filter rests at λref, where no
// probe channel aligns, so the '1' level collapses onto the '0'
// level and the BER rises toward 0.5.
//
// Offsets are independent work items dispatched on the given engine,
// each drawing block Gaussian noise from a generator seeded by the
// simulator's seed and the offset index alone, so the sweep is
// bit-identical on every conforming engine and deterministic on any
// core count. It does not advance the simulator's serial noise
// stream. A nil engine panics (this entry point has no error return).
func (s *Simulator) SyncSweepOn(e engine.Engine, points, bits int) []SyncPoint {
	engine.Use(e)
	if points < 2 {
		points = 2
	}
	l := s.syncLevels()
	sigma := s.SigmaMW
	out := make([]SyncPoint, points)
	e.For(points, func(k int) {
		out[k] = l.point(k, points, bits, s.offsetNoise(k), sigma)
	})
	return out
}

// SyncSweep is SyncSweepOn on the process-default engine.
func (s *Simulator) SyncSweep(points, bits int) []SyncPoint {
	return s.SyncSweepOn(engine.Default(), points, bits)
}

// SyncSweepSerial is the retained serial oracle for SyncSweep: the
// same per-offset derived noise generators, offsets walked in order
// on the calling goroutine via engine.Serial.
func (s *Simulator) SyncSweepSerial(points, bits int) []SyncPoint {
	return s.SyncSweepOn(engine.Serial, points, bits)
}

// relaxedPower returns the received power with the filter at its
// cold resonance (pump off).
func (s *Simulator) relaxedPower(z []int) float64 {
	c := s.Unit.Circuit
	sum := 0.0
	for i := range z {
		sum += c.P.ProbePowerMW * c.ProbeTransmission(i, z, 0)
	}
	return sum
}

// String implements fmt.Stringer.
func (p SyncPoint) String() string {
	where := "outside pulse"
	if p.InPulse {
		where = "inside pulse"
	}
	return fmt.Sprintf("offset %6.1f ps: BER %.3g (%s)", p.OffsetS*1e12, p.BER, where)
}

// WorstInPulseBER and WorstOutOfPulseBER summarize a sweep.
func WorstInPulseBER(pts []SyncPoint) float64 {
	worst := 0.0
	for _, p := range pts {
		if p.InPulse && p.BER > worst {
			worst = p.BER
		}
	}
	return worst
}

// WorstOutOfPulseBER returns the best (lowest) BER outside the pulse
// window — if even the best out-of-pulse offset is terrible, gating
// is mandatory.
func WorstOutOfPulseBER(pts []SyncPoint) float64 {
	best := math.Inf(1)
	any := false
	for _, p := range pts {
		if !p.InPulse {
			any = true
			if p.BER < best {
				best = p.BER
			}
		}
	}
	if !any {
		return 0
	}
	return best
}
