package transient

import (
	"strings"
	"testing"
)

func TestSyncSweepGatingMatters(t *testing.T) {
	// §V.D: detection must be synchronized to the 26 ps pump pulse.
	// Inside the pulse the link runs at its designed BER; outside it
	// the filter has relaxed and the error rate collapses to ~0.5.
	s := newTestSim(t, 0, 90)
	pts := s.SyncSweep(24, 4000)
	if len(pts) != 24 {
		t.Fatalf("%d points", len(pts))
	}
	in := WorstInPulseBER(pts)
	out := WorstOutOfPulseBER(pts)
	if in > 1e-3 {
		t.Errorf("in-pulse BER %g, expected deep margin at 1 mW probes", in)
	}
	if out < 0.2 {
		t.Errorf("best out-of-pulse BER %g, expected catastrophic (~0.5)", out)
	}
	// The first sample (offset 0) is inside; the last is outside.
	if !pts[0].InPulse || pts[len(pts)-1].InPulse {
		t.Error("pulse-window classification wrong at the endpoints")
	}
	if !strings.Contains(pts[0].String(), "inside pulse") {
		t.Errorf("String() = %q", pts[0].String())
	}
}

func TestSyncSweepCWPumpHasNoWindow(t *testing.T) {
	// With a CW pump every offset is usable.
	s := newTestSim(t, 0, 91)
	s.Unit.Circuit.P.PulseWidthS = 0
	pts := s.SyncSweep(8, 2000)
	for _, p := range pts {
		if !p.InPulse {
			t.Fatalf("offset %g outside window despite CW pump", p.OffsetS)
		}
		if p.BER > 1e-3 {
			t.Errorf("CW offset %g: BER %g", p.OffsetS, p.BER)
		}
	}
	if got := WorstOutOfPulseBER(pts); got != 0 {
		t.Errorf("no out-of-pulse points expected, got %g", got)
	}
}

func TestSyncSweepDegeneratePoints(t *testing.T) {
	s := newTestSim(t, 0, 92)
	if got := s.SyncSweep(1, 100); len(got) != 2 {
		t.Errorf("clamped points = %d", len(got))
	}
}

// TestSyncSweepLeavesSerialNoiseStreamUntouched: the sweep draws from
// derived generators only, so interleaving it between two Evaluate
// calls must not perturb them.
func TestSyncSweepLeavesSerialNoiseStreamUntouched(t *testing.T) {
	a := newTestSim(t, 0.02, 95)
	b := newTestSim(t, 0.02, 95)
	if _, _, err := a.Evaluate(0.5, 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Evaluate(0.5, 100); err != nil {
		t.Fatal(err)
	}
	a.SyncSweep(8, 200)
	va, _, err := a.Evaluate(0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	vb, _, err := b.Evaluate(0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if va != vb {
		t.Errorf("SyncSweep advanced the serial noise stream: %g vs %g", va, vb)
	}
}
