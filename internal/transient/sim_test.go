package transient

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stochastic"
)

func newTestSim(t *testing.T, probeMW float64, seed uint64) *Simulator {
	t.Helper()
	p := core.PaperParams()
	if probeMW > 0 {
		p.ProbePowerMW = probeMW
	}
	c, err := core.NewCircuit(p)
	if err != nil {
		t.Fatal(err)
	}
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), seed)
	if err != nil {
		t.Fatal(err)
	}
	return NewSimulator(u, seed+1)
}

func TestSigmaDerivedFromDetector(t *testing.T) {
	s := newTestSim(t, 0, 1)
	det := s.Unit.Circuit.P.Detector
	want := det.NoiseCurrentA / det.ResponsivityAPerW * 1e3
	if math.Abs(s.SigmaMW-want) > 1e-15 {
		t.Errorf("sigma = %g, want %g", s.SigmaMW, want)
	}
}

func TestMeasuredBERMatchesAnalytic(t *testing.T) {
	// Size the probe power for a 1e-2 BER so a 200k-bit run gives
	// ~2000 errors — tight statistics. Measured and analytic Eq. (9)
	// must then agree within sampling error.
	p := core.PaperParams()
	c0 := core.MustCircuit(p)
	p.ProbePowerMW = c0.MinProbePowerMW(1e-2)
	c := core.MustCircuit(p)
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 9)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulator(u, 10)

	analytic := s.AnalyticWorstCaseBER()
	measured, err := s.MeasureWorstCaseBER(200_000)
	if err != nil {
		t.Fatal(err)
	}
	if analytic <= 0 {
		t.Fatalf("analytic BER = %g", analytic)
	}
	ratio := measured / analytic
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("measured BER %g vs analytic %g (ratio %.2f)", measured, analytic, ratio)
	}
}

func TestAnalyticWorstCaseTracksCircuitBER(t *testing.T) {
	// The pattern-pair BER and the circuit's Eq. (9) BER use slightly
	// different crosstalk accounting (simultaneous vs summed one-hot
	// patterns); they must agree within an order of magnitude at
	// moderate SNR.
	p := core.PaperParams()
	p.ProbePowerMW = core.MustCircuit(p).MinProbePowerMW(1e-3)
	c := core.MustCircuit(p)
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulator(u, 5)
	a := s.AnalyticWorstCaseBER()
	b := c.BER()
	if a <= 0 || b <= 0 {
		t.Fatalf("BERs: %g, %g", a, b)
	}
	if r := math.Log10(a / b); math.Abs(r) > 1.5 {
		t.Errorf("pattern BER %g vs circuit BER %g differ by 10^%.1f", a, b, r)
	}
}

func TestNoisyEvaluationStillConverges(t *testing.T) {
	// At the paper's 1 mW probes the SNR is deep, so noise barely
	// perturbs the result.
	s := newTestSim(t, 0, 21)
	for _, x := range []float64{0.25, 0.5, 0.75} {
		got, _, err := s.Evaluate(x, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		want := s.Unit.Poly.Eval(x)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("x=%g: noisy %g vs analytic %g", x, got, want)
		}
	}
}

func TestAccuracyVsLengthTradeoff(t *testing.T) {
	s := newTestSim(t, 0, 33)
	pts, err := s.AccuracyVsLength(0.5, []int{64, 256, 1024, 4096}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	// RMSE shrinks with stream length; throughput falls.
	if !(pts[0].RMSE > pts[3].RMSE) {
		t.Errorf("RMSE did not shrink: %v -> %v", pts[0], pts[3])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ThroughputResultsPerSec >= pts[i-1].ThroughputResultsPerSec {
			t.Errorf("throughput not decreasing at %d", i)
		}
	}
	// RMSE at length L is near the binomial limit sqrt(v(1-v)/L)
	// when the channel is clean.
	want := math.Sqrt(0.5 * 0.5 / 4096)
	if pts[3].RMSE > 4*want {
		t.Errorf("RMSE %g far above binomial floor %g", pts[3].RMSE, want)
	}
	if pts[0].String() == "" {
		t.Error("empty String()")
	}
}

func TestAccuracyVsLengthDegenerate(t *testing.T) {
	s := newTestSim(t, 0, 40)
	pts, err := s.AccuracyVsLength(0.5, []int{0, -5, 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].StreamLen != 16 {
		t.Errorf("degenerate lengths mishandled: %v", pts)
	}
}

func TestNoiseDegradesAccuracy(t *testing.T) {
	// Artificially raising the noise floor must hurt the computation.
	quiet := newTestSim(t, 0, 50)
	noisy := newTestSim(t, 0, 50)
	noisy.SigmaMW = 0.25 // comparable to the eye opening

	rmse := func(s *Simulator) float64 {
		pts, err := s.AccuracyVsLength(0.5, []int{512}, 60)
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].RMSE
	}
	q, n := rmse(quiet), rmse(noisy)
	if n <= q {
		t.Errorf("noise did not degrade accuracy: quiet %g vs noisy %g", q, n)
	}
}

// TestEvaluateRejectsBadLength is the regression for the NaN an
// empty bitstream used to produce: every evaluation entry point must
// reject a non-positive stream length, matching the GammaReSC /
// GammaOptical validation.
func TestEvaluateRejectsBadLength(t *testing.T) {
	s := newTestSim(t, 0, 61)
	for _, l := range []int{0, -7} {
		if v, _, err := s.Evaluate(0.5, l); err == nil {
			t.Errorf("Evaluate(%d) = %g, want error", l, v)
		}
		if v, _, err := s.EvaluateWords(0.5, l); err == nil {
			t.Errorf("EvaluateWords(%d) = %g, want error", l, v)
		}
		if _, err := s.EvaluateBatch([]float64{0.5}, l); err == nil {
			t.Errorf("EvaluateBatch(len %d) accepted", l)
		}
	}
}

// TestMeasureWorstCaseBERValidation is the regression for the bits<=0
// division by zero (NaN) and the odd-count pattern bias.
func TestMeasureWorstCaseBERValidation(t *testing.T) {
	s := newTestSim(t, 0, 62)
	for _, bits := range []int{0, -100} {
		if ber, err := s.MeasureWorstCaseBER(bits); err == nil {
			t.Errorf("MeasureWorstCaseBER(%d) = %g, want error", bits, ber)
		}
	}
	// An odd count is rounded up so both patterns are transmitted
	// equally often: same fresh simulator, same result as the next
	// even count.
	for _, bits := range []int{1, 99_999} {
		odd, err := newTestSim(t, 0, 63).MeasureWorstCaseBER(bits)
		if err != nil {
			t.Fatal(err)
		}
		even, err := newTestSim(t, 0, 63).MeasureWorstCaseBER(bits + 1)
		if err != nil {
			t.Fatal(err)
		}
		if odd != even {
			t.Errorf("odd %d not balanced: %g vs %g at %d", bits, odd, even, bits+1)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	g := NewGaussian(stochastic.NewSplitMix64(123))
	n := 1 << 17
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Next()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("gaussian mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("gaussian variance = %g", variance)
	}
	if v := g.NextScaled(3); math.Abs(v) > 30 {
		t.Errorf("scaled deviate %g implausible", v)
	}
}

func TestGaussianNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGaussian(nil) did not panic")
		}
	}()
	NewGaussian(nil)
}
