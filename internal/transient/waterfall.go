package transient

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stochastic"
)

// WaterfallPoint is one probe power of a BER waterfall.
type WaterfallPoint struct {
	ProbeMW     float64
	AnalyticBER float64
	MeasuredBER float64
}

// BERWaterfall measures the worst-case bit-error rate at each probe
// power and pairs it with the Eq. (9) prediction — the standard link
// validation curve. Each point rebuilds the circuit at the given
// power and transmits `bits` worst-case pattern pairs.
func BERWaterfall(base core.Params, powersMW []float64, bits int, seed uint64) ([]WaterfallPoint, error) {
	if bits < 1 {
		return nil, fmt.Errorf("transient: waterfall needs bits >= 1")
	}
	poly := defaultPoly(base.Order)
	out := make([]WaterfallPoint, 0, len(powersMW))
	for i, p := range powersMW {
		if p <= 0 {
			return nil, fmt.Errorf("transient: probe power %g not positive", p)
		}
		params := base
		params.ProbePowerMW = p
		c, err := core.NewCircuit(params)
		if err != nil {
			return nil, err
		}
		u, err := core.NewUnit(c, poly, seed+uint64(i)*0x9E3779B9)
		if err != nil {
			return nil, err
		}
		sim := NewSimulator(u, seed+uint64(i)*0x85EBCA6B+1)
		measured, err := sim.MeasureWorstCaseBER(bits)
		if err != nil {
			return nil, err
		}
		out = append(out, WaterfallPoint{
			ProbeMW:     p,
			AnalyticBER: sim.AnalyticWorstCaseBER(),
			MeasuredBER: measured,
		})
	}
	return out, nil
}

// defaultPoly builds an arbitrary representable polynomial of the
// needed degree (the waterfall only exercises the link, not the
// polynomial).
func defaultPoly(order int) stochastic.BernsteinPoly {
	coef := make([]float64, order+1)
	for i := range coef {
		coef[i] = float64(i+1) / float64(order+2)
	}
	return stochastic.NewBernstein(coef)
}

// String implements fmt.Stringer.
func (p WaterfallPoint) String() string {
	return fmt.Sprintf("probe %.4f mW: measured %.3g, analytic %.3g", p.ProbeMW, p.MeasuredBER, p.AnalyticBER)
}
