package transient

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stochastic"
)

// WaterfallPoint is one probe power of a BER waterfall.
type WaterfallPoint struct {
	ProbeMW     float64
	AnalyticBER float64
	MeasuredBER float64
}

// waterfallSalt separates the per-point simulator seed stream of
// BERWaterfall from the per-point unit seed stream derived from the
// same base seed.
const waterfallSalt = 0xC2B2AE3D27D4EB4F

// waterfallSeeds derives point i's unit and simulator seeds from the
// waterfall's base seed via stochastic.DeriveSeed on two salted
// streams. Point i's randomness depends on (base, i) only, which is
// what makes the fanned-out waterfall scheduling-independent.
func waterfallSeeds(base uint64, i int) (unitSeed, simSeed uint64) {
	return stochastic.DeriveSeed(base, i), stochastic.DeriveSeed(base^waterfallSalt, i)
}

// waterfallPoint measures one probe power: rebuild the circuit at that
// power, wire a fresh unit and simulator from the point's derived
// seeds, and transmit `bits` worst-case pattern pairs. It is the unit
// of work shared by the parallel waterfall and its serial oracle, so
// the two emit identical points.
func waterfallPoint(base core.Params, poly stochastic.BernsteinPoly, powerMW float64, bits int, unitSeed, simSeed uint64) (WaterfallPoint, error) {
	if powerMW <= 0 {
		return WaterfallPoint{}, fmt.Errorf("transient: probe power %g not positive", powerMW)
	}
	params := base
	params.ProbePowerMW = powerMW
	c, err := core.NewCircuit(params)
	if err != nil {
		return WaterfallPoint{}, err
	}
	u, err := core.NewUnit(c, poly, unitSeed)
	if err != nil {
		return WaterfallPoint{}, err
	}
	sim := NewSimulator(u, simSeed)
	measured, err := sim.MeasureWorstCaseBER(bits)
	if err != nil {
		return WaterfallPoint{}, err
	}
	return WaterfallPoint{
		ProbeMW:     powerMW,
		AnalyticBER: sim.AnalyticWorstCaseBER(),
		MeasuredBER: measured,
	}, nil
}

// BERWaterfallOn measures the worst-case bit-error rate at each probe
// power and pairs it with the Eq. (9) prediction — the standard link
// validation curve. Each point rebuilds the circuit at the given
// power and transmits `bits` worst-case pattern pairs.
//
// Points are independent measurements dispatched on the given engine,
// each with unit and simulator seeds derived from the base seed and
// the point index alone (stochastic.DeriveSeed) — the waterfall is
// bit-identical on every conforming engine and deterministic on any
// core count. A nil engine is an error. If several points fail, the
// error of the lowest failing index is returned (a deterministic
// choice).
func BERWaterfallOn(e engine.Engine, base core.Params, powersMW []float64, bits int, seed uint64) ([]WaterfallPoint, error) {
	return BERWaterfallCtx(context.Background(), e, base, powersMW, bits, seed)
}

// BERWaterfallCtx is BERWaterfallOn under cooperative cancellation: a
// fired ctx stops the point fan-out at a point boundary and surfaces a
// *engine.Partial (wrapping the context error, or the
// *parallel.PanicError of a faulting point) instead of a curve.
func BERWaterfallCtx(ctx context.Context, e engine.Engine, base core.Params, powersMW []float64, bits int, seed uint64) ([]WaterfallPoint, error) {
	if err := engine.Check(e); err != nil {
		return nil, err
	}
	if bits < 1 {
		return nil, fmt.Errorf("transient: waterfall needs bits >= 1")
	}
	poly := defaultPoly(base.Order)
	out := make([]WaterfallPoint, len(powersMW))
	errs := make([]error, len(powersMW))
	if err := engine.RunCtx(ctx, e, len(powersMW), nil, func(i int) {
		unitSeed, simSeed := waterfallSeeds(seed, i)
		out[i], errs[i] = waterfallPoint(base, poly, powersMW[i], bits, unitSeed, simSeed)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BERWaterfall is BERWaterfallOn on the process-default engine.
func BERWaterfall(base core.Params, powersMW []float64, bits int, seed uint64) ([]WaterfallPoint, error) {
	return BERWaterfallOn(engine.Default(), base, powersMW, bits, seed)
}

// BERWaterfallSerial is the retained serial oracle for BERWaterfall:
// the same per-point derived seeds, points walked in order on the
// calling goroutine via engine.Serial.
func BERWaterfallSerial(base core.Params, powersMW []float64, bits int, seed uint64) ([]WaterfallPoint, error) {
	return BERWaterfallOn(engine.Serial, base, powersMW, bits, seed)
}

// defaultPoly builds an arbitrary representable polynomial of the
// needed degree (the waterfall only exercises the link, not the
// polynomial).
func defaultPoly(order int) stochastic.BernsteinPoly {
	coef := make([]float64, order+1)
	for i := range coef {
		coef[i] = float64(i+1) / float64(order+2)
	}
	return stochastic.NewBernstein(coef)
}

// String implements fmt.Stringer.
func (p WaterfallPoint) String() string {
	return fmt.Sprintf("probe %.4f mW: measured %.3g, analytic %.3g", p.ProbeMW, p.MeasuredBER, p.AnalyticBER)
}
