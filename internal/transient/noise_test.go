package transient

import (
	"math"
	"testing"

	"repro/internal/stochastic"
)

// TestGaussianFillMatchesNext: block generation must reproduce the
// per-sample sequence bit for bit, including across the Box–Muller
// pair boundary (odd fill sizes leave a spare behind).
func TestGaussianFillMatchesNext(t *testing.T) {
	for _, size := range []int{1, 2, 3, 64, 101} {
		ref := NewGaussian(stochastic.NewSplitMix64(77))
		blk := NewGaussian(stochastic.NewSplitMix64(77))
		dst := make([]float64, size)
		blk.Fill(dst)
		for i, got := range dst {
			if want := ref.Next(); got != want {
				t.Fatalf("size %d: sample %d = %v, want %v", size, i, got, want)
			}
		}
		// The spare state must match too: the next samples from both
		// generators stay in lockstep.
		for i := 0; i < 3; i++ {
			if got, want := blk.Next(), ref.Next(); got != want {
				t.Fatalf("size %d: post-fill sample %d = %v, want %v", size, i, got, want)
			}
		}
	}
}

// TestGaussianInterleavedSpare interleaves Next, NextScaled, Fill and
// FillScaled in awkward sizes against a pure-Next reference — the
// spare deviate must survive every hand-off.
func TestGaussianInterleavedSpare(t *testing.T) {
	ref := NewGaussian(stochastic.NewSplitMix64(4242))
	g := NewGaussian(stochastic.NewSplitMix64(4242))
	var got, want []float64

	take := func(n int) {
		for i := 0; i < n; i++ {
			want = append(want, ref.Next())
		}
	}

	got = append(got, g.Next())
	take(1)
	buf := make([]float64, 5) // starts on a pending spare
	g.Fill(buf)
	got = append(got, buf...)
	take(5)
	got = append(got, g.NextScaled(1))
	take(1)
	g.FillScaled(buf[:3], 1)
	got = append(got, buf[:3]...)
	take(3)
	g.Fill(buf[:0]) // empty fill is a no-op
	got = append(got, g.Next())
	take(1)

	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestGaussianFillScaled: FillScaled is sigma times the Fill
// sequence, exactly as NextScaled is sigma times Next.
func TestGaussianFillScaled(t *testing.T) {
	plain := NewGaussian(stochastic.NewSplitMix64(9))
	scaled := NewGaussian(stochastic.NewSplitMix64(9))
	a := make([]float64, 33)
	b := make([]float64, 33)
	plain.Fill(a)
	scaled.FillScaled(b, 2.5)
	for i := range a {
		if b[i] != a[i]*2.5 {
			t.Fatalf("sample %d: %v vs %v*2.5", i, b[i], a[i])
		}
	}
}

// TestGaussianFillMoments checks the block generator's first two
// moments — the distribution must survive the vectorized transform.
func TestGaussianFillMoments(t *testing.T) {
	g := NewGaussian(stochastic.NewSplitMix64(321))
	const n = 1 << 17
	buf := make([]float64, 512)
	sum, sq := 0.0, 0.0
	for done := 0; done < n; done += len(buf) {
		g.Fill(buf)
		for _, v := range buf {
			sum += v
			sq += v * v
		}
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("fill mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("fill variance = %g", variance)
	}
}
