package netlist

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/optics"
	"repro/internal/stochastic"
)

// Deck is the parsed experiment description.
type Deck struct {
	Order     int
	SpacingNM float64
	Rings     string // "fig5" or "dense"
	Method    string // "mrr-first" or "mzi-first"
	MZIILdB   float64
	MZIERdB   float64
	PumpMW    float64
	ProbeMW   float64 // 0 = use the sized minimum
	TargetBER float64
	Poly      []float64
	FitGamma  float64 // 0 = use Poly
	InputX    float64
	Bits      int
	Seed      uint64
	Noise     bool
}

// DefaultDeck returns the §V.A-flavoured defaults.
func DefaultDeck() Deck {
	return Deck{
		Order:     2,
		SpacingNM: 1.0,
		Rings:     "fig5",
		Method:    "mrr-first",
		MZIILdB:   4.5,
		MZIERdB:   7.5,
		PumpMW:    600,
		TargetBER: 1e-6,
		InputX:    0.5,
		Bits:      4096,
		Seed:      1,
		Noise:     true,
	}
}

// Parse reads a deck, applying directives over the defaults.
func Parse(r io.Reader) (Deck, error) {
	d := DefaultDeck()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if err := d.apply(fields); err != nil {
			return Deck{}, fmt.Errorf("netlist: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return Deck{}, fmt.Errorf("netlist: %w", err)
	}
	if err := d.Validate(); err != nil {
		return Deck{}, err
	}
	return d, nil
}

func (d *Deck) apply(fields []string) error {
	key := strings.ToLower(fields[0])
	args := fields[1:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%q needs %d argument(s), got %d", key, n, len(args))
		}
		return nil
	}
	switch key {
	case "order":
		if err := need(1); err != nil {
			return err
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("order: %w", err)
		}
		d.Order = n
	case "spacing":
		if err := need(1); err != nil {
			return err
		}
		return parseFloat(args[0], &d.SpacingNM)
	case "rings":
		if err := need(1); err != nil {
			return err
		}
		v := strings.ToLower(args[0])
		if v != "fig5" && v != "dense" {
			return fmt.Errorf("rings: unknown preset %q", args[0])
		}
		d.Rings = v
	case "method":
		if err := need(1); err != nil {
			return err
		}
		v := strings.ToLower(args[0])
		if v != "mrr-first" && v != "mzi-first" {
			return fmt.Errorf("method: unknown %q", args[0])
		}
		d.Method = v
	case "mzi":
		for _, a := range args {
			k, v, ok := strings.Cut(a, "=")
			if !ok {
				return fmt.Errorf("mzi: expected key=value, got %q", a)
			}
			switch strings.ToLower(k) {
			case "il":
				if err := parseFloat(v, &d.MZIILdB); err != nil {
					return err
				}
			case "er":
				if err := parseFloat(v, &d.MZIERdB); err != nil {
					return err
				}
			default:
				return fmt.Errorf("mzi: unknown key %q", k)
			}
		}
	case "pump":
		if err := need(1); err != nil {
			return err
		}
		return parseFloat(args[0], &d.PumpMW)
	case "probe":
		if err := need(1); err != nil {
			return err
		}
		return parseFloat(args[0], &d.ProbeMW)
	case "ber":
		if err := need(1); err != nil {
			return err
		}
		return parseFloat(args[0], &d.TargetBER)
	case "poly":
		if len(args) == 0 {
			return fmt.Errorf("poly: no coefficients")
		}
		d.Poly = make([]float64, len(args))
		for i, a := range args {
			if err := parseFloat(a, &d.Poly[i]); err != nil {
				return err
			}
		}
		d.FitGamma = 0
	case "fit":
		if len(args) != 2 || strings.ToLower(args[0]) != "gamma" {
			return fmt.Errorf("fit: expected 'fit gamma <g>'")
		}
		if err := parseFloat(args[1], &d.FitGamma); err != nil {
			return err
		}
		d.Poly = nil
	case "input":
		if err := need(1); err != nil {
			return err
		}
		return parseFloat(args[0], &d.InputX)
	case "bits":
		if err := need(1); err != nil {
			return err
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("bits: %w", err)
		}
		d.Bits = n
	case "seed":
		if err := need(1); err != nil {
			return err
		}
		n, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("seed: %w", err)
		}
		d.Seed = n
	case "noise":
		if err := need(1); err != nil {
			return err
		}
		switch strings.ToLower(args[0]) {
		case "on":
			d.Noise = true
		case "off":
			d.Noise = false
		default:
			return fmt.Errorf("noise: expected on|off, got %q", args[0])
		}
	default:
		return fmt.Errorf("unknown directive %q", key)
	}
	return nil
}

func parseFloat(s string, dst *float64) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("bad number %q: %w", s, err)
	}
	*dst = v
	return nil
}

// Validate checks cross-field consistency.
func (d Deck) Validate() error {
	switch {
	case d.Order < 1:
		return fmt.Errorf("netlist: order %d < 1", d.Order)
	case d.SpacingNM <= 0:
		return fmt.Errorf("netlist: spacing %g not positive", d.SpacingNM)
	case d.InputX < 0 || d.InputX > 1:
		return fmt.Errorf("netlist: input %g outside [0,1]", d.InputX)
	case d.Bits < 1:
		return fmt.Errorf("netlist: bits %d < 1", d.Bits)
	case d.TargetBER <= 0 || d.TargetBER >= 0.5:
		return fmt.Errorf("netlist: BER target %g outside (0, 0.5)", d.TargetBER)
	case math.IsNaN(d.InputX):
		return fmt.Errorf("netlist: input is NaN")
	}
	if d.Poly != nil && len(d.Poly) != d.Order+1 {
		return fmt.Errorf("netlist: poly has %d coefficients for order %d", len(d.Poly), d.Order)
	}
	return nil
}

// Elaborated is the runnable experiment.
type Elaborated struct {
	Deck    Deck
	Params  core.Params
	Circuit *core.Circuit
	Poly    stochastic.BernsteinPoly
	Unit    *core.Unit
}

// Elaborate sizes the design, builds the circuit and the unit.
func Elaborate(d Deck) (*Elaborated, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	mod, fil := core.Fig5ModulatorShape(), core.Fig5FilterShape()
	if d.Rings == "dense" {
		mod, fil = core.DenseModulatorShape(), core.DenseFilterShape()
	}
	var (
		p   core.Params
		err error
	)
	switch d.Method {
	case "mzi-first":
		p, err = core.MZIFirst(core.MZIFirstSpec{
			Order:       d.Order,
			MZI:         optics.MZI{ILdB: d.MZIILdB, ERdB: d.MZIERdB},
			PumpPowerMW: d.PumpMW,
			TargetBER:   d.TargetBER,
			ModShape:    mod,
			FilterShape: fil,
		})
	default:
		p, err = core.MRRFirst(core.MRRFirstSpec{
			Order:       d.Order,
			WLSpacingNM: d.SpacingNM,
			MZIILdB:     d.MZIILdB,
			TargetBER:   d.TargetBER,
			ModShape:    mod,
			FilterShape: fil,
		})
	}
	if err != nil {
		return nil, err
	}
	if d.ProbeMW > 0 {
		p.ProbePowerMW = d.ProbeMW
	}
	c, err := core.NewCircuit(p)
	if err != nil {
		return nil, err
	}

	var poly stochastic.BernsteinPoly
	switch {
	case d.FitGamma > 0:
		poly, _, err = stochastic.GammaCorrection(d.FitGamma, d.Order)
		if err != nil {
			return nil, err
		}
	case d.Poly != nil:
		poly = stochastic.NewBernstein(d.Poly)
	default:
		// A representative default: increasing ramp coefficients.
		coef := make([]float64, d.Order+1)
		for i := range coef {
			coef[i] = float64(i+1) / float64(d.Order+2)
		}
		poly = stochastic.NewBernstein(coef)
	}
	u, err := core.NewUnit(c, poly, d.Seed)
	if err != nil {
		return nil, err
	}
	return &Elaborated{Deck: d, Params: p, Circuit: c, Poly: poly, Unit: u}, nil
}
