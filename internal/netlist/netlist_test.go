package netlist

import (
	"math"
	"strings"
	"testing"
)

func TestParseDefaults(t *testing.T) {
	d, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultDeck()
	if d.Order != want.Order || d.SpacingNM != want.SpacingNM ||
		d.Rings != want.Rings || d.Method != want.Method ||
		d.Bits != want.Bits || d.Noise != want.Noise || d.Poly != nil {
		t.Errorf("defaults altered: %+v", d)
	}
}

func TestParseFullDeck(t *testing.T) {
	deck := `
# a full experiment
order 3
spacing 0.5        # nm
rings dense
method mrr-first
mzi il=5.0
ber 1e-4
poly 0.25 0.625 0.375 0.75
input 0.5
bits 8192
seed 42
noise off
`
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Order != 3 || d.SpacingNM != 0.5 || d.Rings != "dense" {
		t.Errorf("circuit fields: %+v", d)
	}
	if d.MZIILdB != 5.0 || d.TargetBER != 1e-4 {
		t.Errorf("device fields: %+v", d)
	}
	if len(d.Poly) != 4 || d.Poly[1] != 0.625 {
		t.Errorf("poly: %v", d.Poly)
	}
	if d.Bits != 8192 || d.Seed != 42 || d.Noise {
		t.Errorf("sim fields: %+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"frobnicate 1",    // unknown directive
		"order x",         // bad int
		"order 0",         // invalid after validate
		"spacing -1",      // invalid
		"rings hexagonal", // unknown preset
		"method quantum",  // unknown method
		"mzi il",          // not key=value
		"mzi q=3",         // unknown key
		"poly",            // empty
		"poly 0.5 0.5",    // wrong arity for default order 2? (3 needed)
		"fit sigma 2",     // not gamma
		"noise maybe",     // bad flag
		"input 1.5",       // out of range
		"bits 0",          // invalid
		"ber 0.7",         // invalid
		"seed -1",         // bad uint
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("deck %q accepted", src)
		}
	}
}

func TestParsePolyArityChecked(t *testing.T) {
	ok := "order 2\npoly 0.1 0.2 0.3\n"
	if _, err := Parse(strings.NewReader(ok)); err != nil {
		t.Errorf("valid deck rejected: %v", err)
	}
	bad := "order 2\npoly 0.1 0.2\n"
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestElaborateMRRFirst(t *testing.T) {
	d, err := Parse(strings.NewReader("order 2\npoly 0.25 0.625 0.75\nprobe 1.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := Elaborate(d)
	if err != nil {
		t.Fatal(err)
	}
	// §V.A anchors hold for the default deck.
	if math.Abs(e.Params.PumpPowerMW-591.8) > 0.5 {
		t.Errorf("pump %g", e.Params.PumpPowerMW)
	}
	if e.Params.ProbePowerMW != 1.0 {
		t.Errorf("probe override lost: %g", e.Params.ProbePowerMW)
	}
	got, _ := e.Unit.Evaluate(d.InputX, 1<<14)
	want := e.Poly.Eval(d.InputX)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("elaborated unit: %g vs %g", got, want)
	}
}

func TestElaborateMZIFirst(t *testing.T) {
	deck := "method mzi-first\nmzi il=6.5 er=7.5\npump 600\nrings dense\n"
	d, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	e, err := Elaborate(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Params.ProbePowerMW-0.26) > 0.005 {
		t.Errorf("anchor probe %g", e.Params.ProbePowerMW)
	}
}

func TestElaborateGammaFit(t *testing.T) {
	d, err := Parse(strings.NewReader("order 6\nspacing 0.3\nrings dense\nfit gamma 0.45\n"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := Elaborate(d)
	if err != nil {
		t.Fatal(err)
	}
	if e.Poly.Degree() != 6 {
		t.Errorf("fit degree %d", e.Poly.Degree())
	}
	if !e.Poly.Representable() {
		t.Error("fit not representable")
	}
}

func TestElaborateDefaultPolynomial(t *testing.T) {
	d, _ := Parse(strings.NewReader("order 4\nspacing 0.5\nrings dense\n"))
	e, err := Elaborate(d)
	if err != nil {
		t.Fatal(err)
	}
	if e.Poly.Degree() != 4 {
		t.Errorf("default poly degree %d", e.Poly.Degree())
	}
	if !e.Poly.Representable() {
		t.Error("default poly not representable")
	}
}

func TestElaborateInfeasible(t *testing.T) {
	d, _ := Parse(strings.NewReader("spacing 0.02\n"))
	if _, err := Elaborate(d); err == nil {
		t.Error("collapsed comb elaborated")
	}
}
