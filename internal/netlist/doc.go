// Package netlist parses and elaborates a small SPICE-like textual
// description of an optical stochastic-computing experiment, the
// front end for cmd/oscspice. The paper's future work plans "a SPICE
// model for transient simulation of the optical circuit"; this
// package provides the equivalent workflow: a text deck describing
// the circuit, its polynomial and the stimulus, elaborated into a
// core.Circuit plus a transient simulation plan.
//
// # Deck format
//
// One directive per line; '#' starts a comment. Keywords:
//
//	order <n>                 polynomial degree (default 2)
//	spacing <nm>              wavelength spacing (MRR-first; default 1.0)
//	rings fig5|dense          ring calibration preset (default fig5)
//	mzi il=<dB> [er=<dB>]     MZI device; er only used with method mzi-first
//	method mrr-first|mzi-first (default mrr-first)
//	pump <mW>                 pump power (mzi-first only)
//	probe <mW>                probe laser power override
//	ber <target>              BER target for laser sizing (default 1e-6)
//	poly <b0> <b1> ... <bn>   Bernstein coefficients (must match order)
//	fit gamma <g>             fit x^g at the given order instead of poly
//	input <x>                 stimulus probability (default 0.5)
//	bits <count>              stream length (default 4096)
//	seed <uint>               randomness seed (default 1)
//	noise on|off              transient detector noise (default on)
//
// Unknown keywords are an error: silent typos must not alter an
// experiment.
package netlist
