package optics

import (
	"fmt"
	"math"
)

// NoiseModel decomposes the photodetector noise current into its
// physical contributions, refining the single lumped i_n of the
// paper's Eq. (8):
//
//	i_n² = i_thermal² + i_shot²(P) + i_RIN²(P)
//
// with shot noise i_shot² = 2·q·R·P·B and laser relative intensity
// noise i_RIN² = (R·P)²·RIN·B. Because two of the three terms grow
// with received power, the effective SNR is sublinear in probe power
// at high power — the paper's constant-i_n model is the low-power
// limit, which the calibration regime satisfies (the test suite
// quantifies the deviation).
type NoiseModel struct {
	// ThermalCurrentA is the power-independent noise floor.
	ThermalCurrentA float64
	// ResponsivityAPerW is the detector responsivity.
	ResponsivityAPerW float64
	// BandwidthHz is the receiver bandwidth B (1 GHz for the paper's
	// bit rate).
	BandwidthHz float64
	// RINPerHz is the laser relative intensity noise (linear, per
	// hertz). Typical DFB lasers: 1e-15 ... 1e-14 (i.e. −150 to
	// −140 dB/Hz).
	RINPerHz float64
}

// Validate reports whether the model is physical.
func (m NoiseModel) Validate() error {
	if m.ThermalCurrentA <= 0 {
		return fmt.Errorf("optics: thermal current %g not positive", m.ThermalCurrentA)
	}
	if m.ResponsivityAPerW <= 0 {
		return fmt.Errorf("optics: responsivity %g not positive", m.ResponsivityAPerW)
	}
	if m.BandwidthHz <= 0 {
		return fmt.Errorf("optics: bandwidth %g not positive", m.BandwidthHz)
	}
	if m.RINPerHz < 0 {
		return fmt.Errorf("optics: negative RIN")
	}
	return nil
}

// elementaryCharge in coulombs.
const elementaryCharge = 1.602176634e-19

// TotalCurrentA returns the RMS noise current at a received power in
// mW.
func (m NoiseModel) TotalCurrentA(powerMW float64) float64 {
	if powerMW < 0 {
		powerMW = 0
	}
	pw := MilliwattsToWatts(powerMW)
	sig := m.ResponsivityAPerW * pw
	shot2 := 2 * elementaryCharge * sig * m.BandwidthHz
	rin2 := sig * sig * m.RINPerHz * m.BandwidthHz
	th2 := m.ThermalCurrentA * m.ThermalCurrentA
	return math.Sqrt(th2 + shot2 + rin2)
}

// SNR returns the signal-to-noise ratio for a power difference
// deltaMW when the average received power is avgMW (shot and RIN
// scale with the average, not the swing).
func (m NoiseModel) SNR(deltaMW, avgMW float64) float64 {
	n := m.TotalCurrentA(avgMW)
	return m.ResponsivityAPerW * MilliwattsToWatts(deltaMW) / n
}

// EffectiveDetector lumps the model at an operating power into the
// constant-i_n Photodetector of Eq. (8).
func (m NoiseModel) EffectiveDetector(operatingMW float64) Photodetector {
	return Photodetector{
		ResponsivityAPerW: m.ResponsivityAPerW,
		NoiseCurrentA:     m.TotalCurrentA(operatingMW),
	}
}

// ThermalLimitedFraction returns the share of the total noise
// variance contributed by the thermal floor at the given power — a
// diagnostic for whether the paper's constant-i_n assumption holds
// (near 1 means yes).
func (m NoiseModel) ThermalLimitedFraction(powerMW float64) float64 {
	tot := m.TotalCurrentA(powerMW)
	return m.ThermalCurrentA * m.ThermalCurrentA / (tot * tot)
}
