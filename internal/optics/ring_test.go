package optics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testRing() Ring {
	return Ring{
		SelfCoupling1: 0.96,
		SelfCoupling2: 0.96,
		Amplitude:     0.999,
		ResonanceNM:   1550,
		FSRNM:         10,
	}
}

func TestRingValidate(t *testing.T) {
	good := testRing()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid ring rejected: %v", err)
	}
	bad := []Ring{
		{SelfCoupling1: 0, SelfCoupling2: 0.9, Amplitude: 0.9, ResonanceNM: 1550, FSRNM: 10},
		{SelfCoupling1: 0.9, SelfCoupling2: 1.2, Amplitude: 0.9, ResonanceNM: 1550, FSRNM: 10},
		{SelfCoupling1: 0.9, SelfCoupling2: 0.9, Amplitude: 0, ResonanceNM: 1550, FSRNM: 10},
		{SelfCoupling1: 0.9, SelfCoupling2: 0.9, Amplitude: 0.9, ResonanceNM: -1, FSRNM: 10},
		{SelfCoupling1: 0.9, SelfCoupling2: 0.9, Amplitude: 0.9, ResonanceNM: 1550, FSRNM: 0},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad ring %d accepted", i)
		}
	}
}

func TestRingResonanceIsTransmissionMinimum(t *testing.T) {
	r := testRing()
	onRes := r.ThroughAtRest(r.ResonanceNM)
	for _, d := range []float64{0.05, 0.1, 0.5, 1, 2} {
		off := r.ThroughAtRest(r.ResonanceNM + d)
		if off <= onRes {
			t.Errorf("through at +%.2fnm detuning (%g) not above on-resonance (%g)", d, off, onRes)
		}
	}
}

func TestRingDropPeakAtResonance(t *testing.T) {
	r := testRing()
	peak := r.DropAtRest(r.ResonanceNM)
	for _, d := range []float64{0.05, 0.1, 0.5, 1, 2} {
		off := r.DropAtRest(r.ResonanceNM + d)
		if off >= peak {
			t.Errorf("drop at +%.2fnm detuning (%g) not below peak (%g)", d, off, peak)
		}
	}
	if peak < 0.5 {
		t.Errorf("drop peak %g unexpectedly weak for a low-loss ring", peak)
	}
}

func TestRingEnergyConservationLossless(t *testing.T) {
	// With a = 1 (lossless), through + drop = 1 at every wavelength.
	r := testRing()
	r.Amplitude = 1
	for _, l := range []float64{1548, 1549.5, 1550, 1550.03, 1551, 1555} {
		sum := r.ThroughAtRest(l) + r.DropAtRest(l)
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("lossless ring: through+drop = %g at λ=%g", sum, l)
		}
	}
}

func TestRingPassivityProperty(t *testing.T) {
	// For any physical ring and wavelength, 0 <= through, drop and
	// through + drop <= 1 (passivity).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Ring{
			SelfCoupling1: 0.5 + 0.499*rng.Float64(),
			SelfCoupling2: 0.5 + 0.499*rng.Float64(),
			Amplitude:     0.9 + 0.1*rng.Float64(),
			ResonanceNM:   1550,
			FSRNM:         5 + 10*rng.Float64(),
		}
		l := 1545 + 10*rng.Float64()
		th := r.ThroughAtRest(l)
		dr := r.DropAtRest(l)
		return th >= 0 && dr >= 0 && th+dr <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRingFSRPeriodicity(t *testing.T) {
	r := testRing()
	// The next resonance sits ~FSR away: drop transmission should
	// peak again near 1560.
	peak0 := r.DropAtRest(r.ResonanceNM)
	// Scan for the next peak in [1555, 1565].
	best, bestL := 0.0, 0.0
	for l := 1555.0; l <= 1565; l += 0.001 {
		if d := r.DropAtRest(l); d > best {
			best, bestL = d, l
		}
	}
	if math.Abs(best-peak0) > 0.05*peak0 {
		t.Errorf("next resonance peak %g differs from main peak %g", best, peak0)
	}
	if math.Abs(bestL-r.ResonanceNM-r.FSRNM) > 0.2 {
		t.Errorf("next resonance at %g, want ~%g", bestL, r.ResonanceNM+r.FSRNM)
	}
}

func TestRingDetunedResonanceMoves(t *testing.T) {
	r := testRing()
	shift := 0.5
	// When the resonance is blue-shifted by 0.5 nm, the drop peak
	// follows it.
	newRes := r.ResonanceNM - shift
	if got := r.Drop(newRes, newRes); got < 0.9*r.DropAtRest(r.ResonanceNM) {
		t.Errorf("drop at shifted resonance = %g", got)
	}
	// And the original wavelength is now attenuated.
	if got := r.Drop(r.ResonanceNM, newRes); got > 0.5*r.DropAtRest(r.ResonanceNM) {
		t.Errorf("drop at old resonance after shift = %g, should be attenuated", got)
	}
}

func TestRingFWHMMatchesScan(t *testing.T) {
	r := testRing()
	analytic := r.FWHMNM()
	peak := r.DropAtRest(r.ResonanceNM)
	// Scan outward for the half-maximum crossing.
	var half float64
	for d := 0.0; d < 5; d += 1e-5 {
		if r.DropAtRest(r.ResonanceNM+d) < peak/2 {
			half = d
			break
		}
	}
	scanned := 2 * half
	if math.Abs(scanned-analytic)/analytic > 0.05 {
		t.Errorf("FWHM scan %g vs analytic %g", scanned, analytic)
	}
}

func TestRingQualityFactorAndFinesse(t *testing.T) {
	r := testRing()
	q := r.QualityFactor()
	if q < 1e3 || q > 1e6 {
		t.Errorf("Q = %g outside plausible range for the calibrated ring", q)
	}
	if f := r.Finesse(); math.Abs(f-r.FSRNM/r.FWHMNM()) > 1e-9 {
		t.Errorf("Finesse = %g inconsistent", f)
	}
}

func TestCriticallyCoupledAllPassNullsAtResonance(t *testing.T) {
	r := CriticallyCoupledAllPass(1550, 10, 0.98)
	if got := r.ThroughAtRest(1550); got > 1e-10 {
		t.Errorf("critically coupled through at resonance = %g, want ~0", got)
	}
}

func TestRingExtinctionDB(t *testing.T) {
	r := testRing()
	ext := r.ExtinctionDB()
	if ext <= 0 {
		t.Errorf("extinction %g dB not positive", ext)
	}
	// Direct check against the scan.
	onRes := r.ThroughAtRest(r.ResonanceNM)
	offRes := r.ThroughAtRest(r.ResonanceNM + r.FSRNM/2)
	want := LinearToDB(offRes / onRes)
	if math.Abs(ext-want) > 0.5 {
		t.Errorf("ExtinctionDB = %g, scan says %g", ext, want)
	}
}

func TestRingModeOrder(t *testing.T) {
	r := testRing()
	if m := r.ModeOrder(); m != 155 {
		t.Errorf("ModeOrder = %g, want 155", m)
	}
}

func TestRingSymmetryAroundResonance(t *testing.T) {
	// The drop lineshape is symmetric to first order in detuning.
	r := testRing()
	for _, d := range []float64{0.01, 0.05, 0.1} {
		up := r.DropAtRest(r.ResonanceNM + d)
		dn := r.DropAtRest(r.ResonanceNM - d)
		if math.Abs(up-dn)/up > 0.02 {
			t.Errorf("asymmetry at ±%g nm: %g vs %g", d, up, dn)
		}
	}
}
