package optics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMZIEq7b(t *testing.T) {
	// Paper §V.A: ILdB=4.5 => IL% ≈ 0.3548; ERdB=13.22 => ER% ≈ 0.0476.
	m := MZI{ILdB: 4.5, ERdB: 13.22}
	if got := m.Transmission(0); math.Abs(got-0.35481) > 2e-4 {
		t.Errorf("T(0) = %g, want ~0.35481", got)
	}
	want1 := 0.35481 * 0.04764
	if got := m.Transmission(1); math.Abs(got-want1) > 2e-4 {
		t.Errorf("T(1) = %g, want ~%g", got, want1)
	}
}

func TestMZIValidate(t *testing.T) {
	if err := (MZI{ILdB: 4.5, ERdB: 3}).Validate(); err != nil {
		t.Errorf("valid MZI rejected: %v", err)
	}
	if err := (MZI{ILdB: -1}).Validate(); err == nil {
		t.Error("negative IL accepted")
	}
	if err := (MZI{ILdB: 1, ERdB: -2}).Validate(); err == nil {
		t.Error("negative ER accepted")
	}
}

func TestMZIPhaseModelEndpoints(t *testing.T) {
	m := MZI{ILdB: 4.5, ERdB: 13.22}
	if got, want := m.TransmissionPhase(0), m.Transmission(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("T(φ=0) = %g, want %g", got, want)
	}
	if got, want := m.TransmissionPhase(math.Pi), m.Transmission(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("T(φ=π) = %g, want %g", got, want)
	}
}

func TestMZIPhaseModelMonotone(t *testing.T) {
	m := MZI{ILdB: 3, ERdB: 8}
	prev := m.TransmissionPhase(0)
	for phi := 0.05; phi <= math.Pi+1e-9; phi += 0.05 {
		cur := m.TransmissionPhase(phi)
		if cur > prev+1e-12 {
			t.Fatalf("transmission not monotone at φ=%g", phi)
		}
		prev = cur
	}
}

func TestMZIPhaseBoundsProperty(t *testing.T) {
	f := func(ilDB, erDB, phi float64) bool {
		m := MZI{ILdB: math.Mod(math.Abs(ilDB), 10), ERdB: math.Mod(math.Abs(erDB), 20)}
		tr := m.TransmissionPhase(phi)
		return tr >= m.Transmission(1)-1e-12 && tr <= m.Transmission(0)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMZIString(t *testing.T) {
	s := MZI{ILdB: 6.5, ERdB: 7.5, SpeedGbps: 60, PhaseShifterLenMM: 0.75}.String()
	if !strings.Contains(s, "6.50dB") || !strings.Contains(s, "60Gb/s") {
		t.Errorf("String() = %q", s)
	}
}

func TestMZIBankWeightStates(t *testing.T) {
	// The 2nd-order adder produces exactly three power levels
	// (Fig. 3b/c/d) ordered T(11) < T(01)=T(10) < T(00).
	bank := NewUniformMZIBank(2, MZI{ILdB: 4.5, ERdB: 13.22})
	t00 := bank.Transmission([]int{0, 0})
	t01 := bank.Transmission([]int{0, 1})
	t10 := bank.Transmission([]int{1, 0})
	t11 := bank.Transmission([]int{1, 1})
	if t01 != t10 {
		t.Errorf("mixed states differ: %g vs %g", t01, t10)
	}
	if !(t11 < t01 && t01 < t00) {
		t.Errorf("ordering violated: %g %g %g", t11, t01, t00)
	}
	// And match Eq. (7a)'s averages.
	il := LossToLinear(4.5)
	er := ExtinctionToLinear(13.22)
	if math.Abs(t00-il) > 1e-12 {
		t.Errorf("T(00) = %g, want IL%% = %g", t00, il)
	}
	if math.Abs(t11-il*er) > 1e-12 {
		t.Errorf("T(11) = %g, want IL%%*ER%% = %g", t11, il*er)
	}
	if math.Abs(t01-il*(1+er)/2) > 1e-12 {
		t.Errorf("T(01) = %g, want IL%%(1+ER%%)/2 = %g", t01, il*(1+er)/2)
	}
}

func TestMZIBankWeightShortcut(t *testing.T) {
	bank := NewUniformMZIBank(4, MZI{ILdB: 4.5, ERdB: 10})
	combos := map[int][]int{
		0: {0, 0, 0, 0},
		1: {1, 0, 0, 0},
		2: {0, 1, 1, 0},
		3: {1, 1, 0, 1},
		4: {1, 1, 1, 1},
	}
	for ones, x := range combos {
		if got, want := bank.TransmissionByWeight(ones), bank.Transmission(x); math.Abs(got-want) > 1e-15 {
			t.Errorf("weight %d: shortcut %g vs full %g", ones, got, want)
		}
	}
}

func TestMZIBankPanics(t *testing.T) {
	bank := NewUniformMZIBank(2, MZI{ILdB: 4.5, ERdB: 10})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("wrong width", func() { bank.Transmission([]int{1}) })
	mustPanic("weight too high", func() { bank.TransmissionByWeight(3) })
	mustPanic("negative weight", func() { bank.TransmissionByWeight(-1) })
}

func TestMZIBankSplitterLoss(t *testing.T) {
	bank := NewUniformMZIBank(2, MZI{ILdB: 0, ERdB: 10})
	bank.Splitter.ExcessLossDB = 3.0103 // halves the power
	lossless := NewUniformMZIBank(2, MZI{ILdB: 0, ERdB: 10})
	got := bank.Transmission([]int{0, 0})
	want := lossless.Transmission([]int{0, 0}) / 2
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("splitter loss not applied: %g vs %g", got, want)
	}
}
