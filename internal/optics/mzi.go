package optics

import (
	"fmt"
	"math"
)

// MZI models a 1x1 Mach–Zehnder interferometer modulator (paper
// Fig. 2a). The input power is split over two arms; an electro-optic
// phase shifter on one arm produces constructive (logic '0') or
// destructive (logic '1') interference at the output combiner.
//
// The device is characterized the way the silicon-photonics
// literature quotes it — by an insertion loss ILdB (power lost in the
// constructive state) and an extinction ratio ERdB (ON/OFF power
// ratio). Speed and phase-shifter length are carried along for the
// Fig. 6(c) device-comparison study.
type MZI struct {
	// ILdB is the insertion loss in dB (positive number). The
	// paper's reference modulator [10] has 4.5 dB.
	ILdB float64
	// ERdB is the extinction ratio in dB (positive number).
	ERdB float64
	// SpeedGbps is the maximum modulation speed in Gb/s (for
	// documentation and throughput studies; it does not affect the
	// static transmission).
	SpeedGbps float64
	// PhaseShifterLenMM is the phase-shifter length in millimetres
	// (area proxy used by Fig. 6c).
	PhaseShifterLenMM float64
}

// Validate reports whether the MZI parameters are physical.
func (m MZI) Validate() error {
	if m.ILdB < 0 {
		return fmt.Errorf("optics: MZI insertion loss must be >= 0 dB, got %g", m.ILdB)
	}
	if m.ERdB < 0 {
		return fmt.Errorf("optics: MZI extinction ratio must be >= 0 dB, got %g", m.ERdB)
	}
	return nil
}

// ILFraction returns the linear constructive-state transmission IL%.
func (m MZI) ILFraction() float64 { return LossToLinear(m.ILdB) }

// ERFraction returns the linear OFF/ON ratio ER%.
func (m MZI) ERFraction() float64 { return ExtinctionToLinear(m.ERdB) }

// Transmission returns the power transmission for a logic level,
// following the paper's Eq. (7b):
//
//	T(0) = IL%            (constructive interference)
//	T(1) = IL% * ER%      (destructive interference)
//
// Note the polarity: in the optical SC adder a data bit of '1' drives
// the MZI into its destructive state, attenuating the pump.
func (m MZI) Transmission(bit int) float64 {
	if bit == 0 {
		return m.ILFraction()
	}
	return m.ILFraction() * m.ERFraction()
}

// TransmissionPhase returns the power transmission for an arbitrary
// phase difference (radians) between the arms, with the device's
// finite extinction ratio as the interference floor:
//
//	T(φ) = IL% * (ER% + (1-ER%) cos²(φ/2))
//
// T(0) equals Transmission(0) and T(π) equals Transmission(1), so the
// logic-level model of Eq. (7b) is the two-point restriction of this
// curve. The continuous model supports transient simulation of
// partially driven modulators.
func (m MZI) TransmissionPhase(phi float64) float64 {
	c := math.Cos(phi / 2)
	er := m.ERFraction()
	return m.ILFraction() * (er + (1-er)*c*c)
}

// String implements fmt.Stringer with the conventional device
// shorthand used in the paper's Fig. 6.
func (m MZI) String() string {
	return fmt.Sprintf("MZI(IL=%.2fdB, ER=%.2fdB, %.0fGb/s, %.2fmm)",
		m.ILdB, m.ERdB, m.SpeedGbps, m.PhaseShifterLenMM)
}

// MZIBank is the parallel adder stage of the optical SC circuit: n
// MZIs fed equal fractions of the pump laser through a 1:n splitter
// and recombined by an n:1 combiner (paper Fig. 4a).
type MZIBank struct {
	Devices  []MZI
	Splitter Splitter
	Combiner Combiner
}

// NewUniformMZIBank builds a bank of n identical MZIs with ideal
// (lossless beyond 1/n) splitting and combining.
func NewUniformMZIBank(n int, dev MZI) *MZIBank {
	devs := make([]MZI, n)
	for i := range devs {
		devs[i] = dev
	}
	return &MZIBank{
		Devices:  devs,
		Splitter: Splitter{Ports: n},
		Combiner: Combiner{Ports: n},
	}
}

// Order returns the number of parallel MZIs (the polynomial degree n).
func (b *MZIBank) Order() int { return len(b.Devices) }

// Transmission returns the total pump power fraction reaching the
// filter for the data-bit vector x (paper Eq. 7a's summation term):
//
//	T(x) = (1/n) * sum_i T_MZIi(x_i)
//
// multiplied by any splitter/combiner excess loss. It panics if
// len(x) differs from the bank order, as that is a wiring error.
func (b *MZIBank) Transmission(x []int) float64 {
	if len(x) != len(b.Devices) {
		panic(fmt.Sprintf("optics: MZIBank of order %d driven with %d bits", len(b.Devices), len(x)))
	}
	sum := 0.0
	for i, dev := range b.Devices {
		sum += dev.Transmission(x[i])
	}
	n := float64(len(b.Devices))
	return sum / n * b.Splitter.ExcessLossFraction() * b.Combiner.ExcessLossFraction()
}

// TransmissionByWeight returns the bank transmission as a function of
// the number of '1' data bits only. All devices must be identical for
// this shortcut to equal Transmission; it exists because the optical
// SC multiplexer depends on x only through its Hamming weight.
func (b *MZIBank) TransmissionByWeight(ones int) float64 {
	n := len(b.Devices)
	if ones < 0 || ones > n {
		panic(fmt.Sprintf("optics: weight %d out of range for order %d", ones, n))
	}
	dev := b.Devices[0]
	sum := float64(n-ones)*dev.Transmission(0) + float64(ones)*dev.Transmission(1)
	return sum / float64(n) * b.Splitter.ExcessLossFraction() * b.Combiner.ExcessLossFraction()
}
