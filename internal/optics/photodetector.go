package optics

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Photodetector converts received optical power into photocurrent
// with responsivity R (A/W) against an internal noise current i_n
// (A). These are the R and i_n of the paper's Eq. (8); their ratio is
// the only quantity the SNR depends on.
type Photodetector struct {
	// ResponsivityAPerW is the conversion gain R in amperes per watt.
	ResponsivityAPerW float64
	// NoiseCurrentA is the RMS internal noise current i_n in amperes.
	NoiseCurrentA float64
}

// Validate reports whether the detector parameters are physical.
func (p Photodetector) Validate() error {
	if p.ResponsivityAPerW <= 0 {
		return fmt.Errorf("optics: detector responsivity %g A/W not positive", p.ResponsivityAPerW)
	}
	if p.NoiseCurrentA <= 0 {
		return fmt.Errorf("optics: detector noise current %g A not positive", p.NoiseCurrentA)
	}
	return nil
}

// CurrentA returns the photocurrent for a received power in mW.
func (p Photodetector) CurrentA(powerMW float64) float64 {
	return p.ResponsivityAPerW * MilliwattsToWatts(powerMW)
}

// SNR returns the electrical signal-to-noise ratio for a power
// difference deltaMW between the '1' and '0' levels, following the
// structure of the paper's Eq. (8): SNR = R·ΔP / i_n.
func (p Photodetector) SNR(deltaMW float64) float64 {
	return p.CurrentA(deltaMW) / p.NoiseCurrentA
}

// MinPowerForSNRMW inverts SNR: the received power difference (mW)
// needed to reach the target SNR.
func (p Photodetector) MinPowerForSNRMW(snr float64) float64 {
	return WattsToMilliwatts(snr * p.NoiseCurrentA / p.ResponsivityAPerW)
}

// BERFromSNR returns the on/off-keyed bit-error rate of the paper's
// Eq. (9): BER = 0.5 erfc(SNR / (2√2)).
func BERFromSNR(snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	return 0.5 * math.Erfc(snr/(2*math.Sqrt2))
}

// SNRForBER inverts Eq. (9): the SNR required to reach a target BER.
// Targets at or above 0.5 need no signal (returns 0).
func SNRForBER(ber float64) float64 {
	if ber >= 0.5 {
		return 0
	}
	return 2 * math.Sqrt2 * numeric.ErfcInv(2*ber)
}

// OOKDecider thresholds received power into bits, the optical
// de-randomizer primitive (§V.A associates power levels with data
// values).
type OOKDecider struct {
	// ThresholdMW is the decision threshold between the '0' and '1'
	// received power levels.
	ThresholdMW float64
}

// NewMidpointDecider places the threshold halfway between the worst
// '0' level (highest) and the worst '1' level (lowest).
func NewMidpointDecider(maxZeroMW, minOneMW float64) OOKDecider {
	return OOKDecider{ThresholdMW: (maxZeroMW + minOneMW) / 2}
}

// Decide returns 1 if the received power exceeds the threshold.
func (d OOKDecider) Decide(powerMW float64) int {
	if powerMW > d.ThresholdMW {
		return 1
	}
	return 0
}

// EyeOpeningMW returns the worst-case eye opening between the two
// power-level bands; non-positive means the eye is closed and
// error-free detection is impossible regardless of laser power.
func EyeOpeningMW(maxZeroMW, minOneMW float64) float64 {
	return minOneMW - maxZeroMW
}
