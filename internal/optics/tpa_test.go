package optics

import (
	"math"
	"testing"
)

func TestPaperOTEAnchor(t *testing.T) {
	// [14]: a 0.1 nm shift for an average 10 mW pump.
	if got := PaperOTE.ShiftNM(10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("PaperOTE.ShiftNM(10) = %g, want 0.1", got)
	}
}

func TestOTETunerInversion(t *testing.T) {
	tuner := OTETuner{OTENMPerMW: 0.01}
	for _, shift := range []float64{0.1, 0.5, 2.1} {
		p := tuner.PowerForShiftMW(shift)
		if got := tuner.ShiftNM(p); math.Abs(got-shift) > 1e-12 {
			t.Errorf("round trip shift %g -> %g", shift, got)
		}
	}
	if got := tuner.PowerForShiftMW(0); got != 0 {
		t.Errorf("zero shift power = %g", got)
	}
	if got := tuner.ShiftNM(-5); got != 0 {
		t.Errorf("negative power shift = %g", got)
	}
}

func TestOTEPaperPumpSizing(t *testing.T) {
	// §V.A: reaching λ0 requires shifting the filter by
	// λref - λ0 = 1550.1 - 1548 = 2.1 nm. At the raw OTE this would
	// take 210 mW of *delivered* power; the quoted 591.8 mW is the
	// source power before the 4.5 dB MZI insertion loss, checked in
	// internal/core. Here we verify the delivered-power arithmetic.
	if got := PaperOTE.PowerForShiftMW(2.1); math.Abs(got-210) > 1e-9 {
		t.Errorf("delivered power for 2.1nm = %g mW, want 210", got)
	}
}

func TestTPAModelLinearInPower(t *testing.T) {
	m := TPAModel{N0: 3.2, N2M2PerW: 1e-17, CrossSectionM2: 1e-13, GroupIndex: 3.6}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	s1 := m.ShiftNM(1550, 10)
	s2 := m.ShiftNM(1550, 20)
	if math.Abs(s2-2*s1) > 1e-12 {
		t.Errorf("TPA shift not linear: %g vs %g", s1, s2)
	}
	if m.ShiftNM(1550, -1) != 0 {
		t.Error("negative power should clamp to zero shift")
	}
}

func TestTPAModelValidate(t *testing.T) {
	if err := (TPAModel{N0: 0, CrossSectionM2: 1}).Validate(); err == nil {
		t.Error("zero n0 accepted")
	}
	if err := (TPAModel{N0: 3, CrossSectionM2: 0}).Validate(); err == nil {
		t.Error("zero cross-section accepted")
	}
}

func TestCalibratedTPAMatchesOTE(t *testing.T) {
	// Device-level model calibrated to the paper's OTE must agree
	// with the linear tuner at every power (Eq. 4 is linear in P).
	m := CalibratedTPAModel(1550, 0.01, 3.2, 3.6, 1e-13)
	for _, p := range []float64{1, 10, 100, 591.8} {
		want := PaperOTE.ShiftNM(p)
		got := m.ShiftNM(1550, p)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("P=%g: TPA %g vs OTE %g", p, got, want)
		}
	}
	ote := m.LinearizedOTE(1550)
	if math.Abs(ote.OTENMPerMW-0.01) > 1e-12 {
		t.Errorf("linearized OTE = %g", ote.OTENMPerMW)
	}
}

func TestCalibratedTPADefaultGroupIndex(t *testing.T) {
	m := CalibratedTPAModel(1550, 0.01, 3.2, 0, 1e-13)
	if m.GroupIndex != 3.2 {
		t.Errorf("default group index = %g, want n0", m.GroupIndex)
	}
}
