// Package optics models the silicon-photonic devices that the optical
// stochastic-computing architecture of El-Derhalli et al. (DATE 2019)
// is built from:
//
//   - Mach–Zehnder interferometer (MZI) modulators characterized by
//     insertion loss and extinction ratio (paper Eq. 7b), including a
//     full interferometric phase model;
//   - micro-ring resonators (MRRs) used both as electro-optic
//     modulators (through-port transmission, paper Eq. 2) and as the
//     all-optical add-drop multiplexing filter (drop-port
//     transmission, paper Eq. 3);
//   - two-photon-absorption (TPA) resonance tuning (paper Eq. 4) and
//     its linearized optical tuning efficiency (OTE, nm/mW);
//   - continuous-wave and 26 ps pulse-based lasers with lasing
//     efficiency, splitters/combiners, a band-pass pump-rejection
//     filter and an OOK photodetector with responsivity and internal
//     noise current.
//
// # Unit conventions
//
// Wavelengths are nanometres (nm), optical powers milliwatts (mW),
// photocurrents amperes (A), times seconds (s) and energies joules
// (J). Decibel quantities are always spelled out in field names
// (ILdB, ERdB); linear transmissions are dimensionless fractions in
// [0, 1].
//
// The devices are deliberately pure functions of their parameters: no
// hidden state, no randomness. Stochastic behaviour (detector noise,
// bit-stream generation) lives in internal/transient and
// internal/stochastic.
package optics
