package optics

import (
	"math"

	"repro/internal/numeric"
)

// Physical constants and common telecom quantities.
const (
	// SpeedOfLight in vacuum, m/s.
	SpeedOfLight = 299792458.0

	// CBandCenterNM is the conventional-band reference wavelength
	// used throughout the paper's experiments (λ2 = 1550 nm).
	CBandCenterNM = 1550.0
)

// DBToLinear converts a decibel power ratio to a linear fraction.
// Insertion losses are conventionally quoted as positive dB values;
// pass the negated value (or use LossToLinear).
func DBToLinear(db float64) float64 { return numeric.DBToLinear(db) }

// LinearToDB converts a linear power ratio to decibels.
func LinearToDB(x float64) float64 { return numeric.LinearToDB(x) }

// LossToLinear converts a positive insertion-loss figure in dB to the
// transmitted power fraction: LossToLinear(4.5) ≈ 0.3548, the IL% of
// the paper's reference MZI [10].
func LossToLinear(lossDB float64) float64 {
	return numeric.DBToLinear(-lossDB)
}

// ExtinctionToLinear converts a positive extinction ratio in dB to
// the OFF/ON power fraction ER%: ExtinctionToLinear(13.22) ≈ 0.0476.
func ExtinctionToLinear(erDB float64) float64 {
	return numeric.DBToLinear(-erDB)
}

// WavelengthToFrequencyTHz converts a wavelength in nm to an optical
// frequency in THz.
func WavelengthToFrequencyTHz(lambdaNM float64) float64 {
	if lambdaNM <= 0 {
		return math.Inf(1)
	}
	return SpeedOfLight / lambdaNM / 1e3 // c[m/s] / λ[nm] = Hz*1e9; /1e3 => THz
}

// FrequencyTHzToWavelength converts an optical frequency in THz to a
// wavelength in nm.
func FrequencyTHzToWavelength(fTHz float64) float64 {
	if fTHz <= 0 {
		return math.Inf(1)
	}
	return SpeedOfLight / fTHz / 1e3
}

// PhotonEnergyJ returns the energy of a single photon at the given
// wavelength in joules (used for shot-noise sanity checks).
func PhotonEnergyJ(lambdaNM float64) float64 {
	const planck = 6.62607015e-34 // J*s
	return planck * SpeedOfLight / (lambdaNM * 1e-9)
}

// MilliwattsToWatts converts mW to W.
func MilliwattsToWatts(mw float64) float64 { return mw * 1e-3 }

// WattsToMilliwatts converts W to mW.
func WattsToMilliwatts(w float64) float64 { return w * 1e3 }

// EnergyJ returns the energy in joules of a constant power (mW)
// applied for the given duration (s).
func EnergyJ(powerMW, durationS float64) float64 {
	return MilliwattsToWatts(powerMW) * durationS
}

// EnergyPJ returns the same energy expressed in picojoules, the unit
// of the paper's Fig. 7.
func EnergyPJ(powerMW, durationS float64) float64 {
	return EnergyJ(powerMW, durationS) * 1e12
}
