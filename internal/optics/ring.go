package optics

import (
	"fmt"
	"math"
)

// Ring models an add-drop micro-ring resonator (paper Fig. 2b/2c).
// Two bus waveguides couple to the ring with self-coupling
// coefficients r1 (input bus) and r2 (drop bus); a is the single-pass
// amplitude transmission (round-trip loss). The resonance comb is
// anchored at ResonanceNM with free spectral range FSRNM.
//
// The same structure serves as:
//
//   - an electro-optic modulator: applying a drive voltage blue-shifts
//     the resonance by ShiftNM (paper's Δλ), moving the carrier off
//     resonance and raising the through-port transmission (Eq. 2);
//   - the all-optical multiplexing filter: the pump power injected via
//     two-photon absorption shifts the resonance by ΔFilter, selecting
//     which probe wavelength falls onto the drop port (Eq. 3).
type Ring struct {
	// SelfCoupling1 (r1) is the field self-coupling coefficient of
	// the input bus, in (0, 1].
	SelfCoupling1 float64
	// SelfCoupling2 (r2) is the field self-coupling coefficient of
	// the drop bus, in (0, 1]. Set to 1 for an all-pass (no drop
	// waveguide) ring.
	SelfCoupling2 float64
	// Amplitude (a) is the single-pass amplitude transmission of the
	// ring, in (0, 1]; 1 means a lossless ring.
	Amplitude float64
	// ResonanceNM is the cold (unshifted) resonant wavelength in nm.
	ResonanceNM float64
	// FSRNM is the free spectral range in nm; it fixes the ring's
	// mode order m = round(ResonanceNM / FSRNM).
	FSRNM float64
}

// Validate reports whether the ring parameters are physical.
func (r Ring) Validate() error {
	switch {
	case r.SelfCoupling1 <= 0 || r.SelfCoupling1 > 1:
		return fmt.Errorf("optics: ring r1 = %g outside (0,1]", r.SelfCoupling1)
	case r.SelfCoupling2 <= 0 || r.SelfCoupling2 > 1:
		return fmt.Errorf("optics: ring r2 = %g outside (0,1]", r.SelfCoupling2)
	case r.Amplitude <= 0 || r.Amplitude > 1:
		return fmt.Errorf("optics: ring a = %g outside (0,1]", r.Amplitude)
	case r.ResonanceNM <= 0:
		return fmt.Errorf("optics: ring resonance %g nm not positive", r.ResonanceNM)
	case r.FSRNM <= 0 || r.FSRNM >= r.ResonanceNM:
		return fmt.Errorf("optics: ring FSR %g nm not in (0, resonance)", r.FSRNM)
	}
	return nil
}

// ModeOrder returns the azimuthal mode order m implied by the
// resonance wavelength and FSR. The single-pass phase is
// θ(λ) = 2π m λres/λ, which is ≡ 0 (mod 2π) exactly at λres and
// produces resonances spaced by ≈FSR.
func (r Ring) ModeOrder() float64 {
	return math.Round(r.ResonanceNM / r.FSRNM)
}

// Phase returns the single-pass phase shift θ(λ, λres) in radians for
// a signal at lambdaNM when the ring resonance sits at resonanceNM.
// Shifting the resonance rescales the optical path length, which is
// how both the electro-optic and the TPA tuning act on the ring.
func (r Ring) Phase(lambdaNM, resonanceNM float64) float64 {
	m := r.ModeOrder()
	return 2 * math.Pi * m * resonanceNM / lambdaNM
}

// Through returns the through-port power transmission φt(λ, λres)
// of the paper's Eq. (2):
//
//	φt = (a²r2² − 2 a r1 r2 cosθ + r1²) / (1 − 2 a r1 r2 cosθ + (a r1 r2)²)
//
// resonanceNM is the instantaneous (possibly shifted) resonant
// wavelength.
func (r Ring) Through(lambdaNM, resonanceNM float64) float64 {
	cos := math.Cos(r.Phase(lambdaNM, resonanceNM))
	a, r1, r2 := r.Amplitude, r.SelfCoupling1, r.SelfCoupling2
	num := a*a*r2*r2 - 2*a*r1*r2*cos + r1*r1
	den := 1 - 2*a*r1*r2*cos + a*a*r1*r1*r2*r2
	return num / den
}

// Drop returns the drop-port power transmission φd(λ, λres) of the
// paper's Eq. (3):
//
//	φd = a (1−r1²)(1−r2²) / (1 − 2 a r1 r2 cosθ + (a r1 r2)²)
func (r Ring) Drop(lambdaNM, resonanceNM float64) float64 {
	cos := math.Cos(r.Phase(lambdaNM, resonanceNM))
	a, r1, r2 := r.Amplitude, r.SelfCoupling1, r.SelfCoupling2
	num := a * (1 - r1*r1) * (1 - r2*r2)
	den := 1 - 2*a*r1*r2*cos + a*a*r1*r1*r2*r2
	return num / den
}

// ThroughAtRest and DropAtRest evaluate the transmissions with the
// resonance at its cold position.
func (r Ring) ThroughAtRest(lambdaNM float64) float64 {
	return r.Through(lambdaNM, r.ResonanceNM)
}

// DropAtRest evaluates the drop transmission with the cold resonance.
func (r Ring) DropAtRest(lambdaNM float64) float64 {
	return r.Drop(lambdaNM, r.ResonanceNM)
}

// FWHMNM returns the full width at half maximum of the drop-port
// resonance in nm:
//
//	FWHM = FSR (1 − a r1 r2) / (π sqrt(a r1 r2))
func (r Ring) FWHMNM() float64 {
	p := r.Amplitude * r.SelfCoupling1 * r.SelfCoupling2
	return r.FSRNM * (1 - p) / (math.Pi * math.Sqrt(p))
}

// QualityFactor returns the loaded quality factor λres/FWHM.
func (r Ring) QualityFactor() float64 {
	return r.ResonanceNM / r.FWHMNM()
}

// Finesse returns FSR/FWHM.
func (r Ring) Finesse() float64 {
	return r.FSRNM / r.FWHMNM()
}

// ExtinctionDB returns the through-port extinction ratio in dB: the
// off-resonance maximum over the on-resonance minimum transmission.
func (r Ring) ExtinctionDB() float64 {
	onRes := r.Through(r.ResonanceNM, r.ResonanceNM)
	// Anti-resonance (cosθ = -1) gives the maximum.
	a, r1, r2 := r.Amplitude, r.SelfCoupling1, r.SelfCoupling2
	offRes := (a*a*r2*r2 + 2*a*r1*r2 + r1*r1) / (1 + 2*a*r1*r2 + a*a*r1*r1*r2*r2)
	return LinearToDB(offRes / onRes)
}

// CriticallyCoupledAllPass returns an all-pass (r2 = 1) ring that is
// critically coupled (r1 = a), giving zero through transmission at
// resonance. Useful as a reference point in tests.
func CriticallyCoupledAllPass(resonanceNM, fsrNM, a float64) Ring {
	return Ring{
		SelfCoupling1: a,
		SelfCoupling2: 1,
		Amplitude:     a,
		ResonanceNM:   resonanceNM,
		FSRNM:         fsrNM,
	}
}

// String implements fmt.Stringer.
func (r Ring) String() string {
	return fmt.Sprintf("Ring(λres=%.3fnm, FSR=%.2fnm, r1=%.4f, r2=%.4f, a=%.4f, FWHM=%.4fnm)",
		r.ResonanceNM, r.FSRNM, r.SelfCoupling1, r.SelfCoupling2, r.Amplitude, r.FWHMNM())
}
