package optics

import "fmt"

// Splitter is a 1:N power splitter. Each output port carries 1/N of
// the input power further reduced by an optional excess loss.
type Splitter struct {
	Ports        int
	ExcessLossDB float64
}

// ExcessLossFraction returns the linear excess-loss transmission
// (1.0 for an ideal splitter).
func (s Splitter) ExcessLossFraction() float64 {
	if s.ExcessLossDB <= 0 {
		return 1
	}
	return LossToLinear(s.ExcessLossDB)
}

// PortTransmission returns the input-to-single-output power fraction.
func (s Splitter) PortTransmission() float64 {
	if s.Ports <= 0 {
		return 0
	}
	return s.ExcessLossFraction() / float64(s.Ports)
}

// String implements fmt.Stringer.
func (s Splitter) String() string {
	return fmt.Sprintf("Splitter(1:%d, excess %.2fdB)", s.Ports, s.ExcessLossDB)
}

// Combiner is an N:1 power combiner. For the incoherent power
// bookkeeping used by the paper's transmission model the combiner is
// transparent up to its excess loss; interference between arms is
// already accounted for inside each MZI.
type Combiner struct {
	Ports        int
	ExcessLossDB float64
}

// ExcessLossFraction returns the linear excess-loss transmission.
func (c Combiner) ExcessLossFraction() float64 {
	if c.ExcessLossDB <= 0 {
		return 1
	}
	return LossToLinear(c.ExcessLossDB)
}

// String implements fmt.Stringer.
func (c Combiner) String() string {
	return fmt.Sprintf("Combiner(%d:1, excess %.2fdB)", c.Ports, c.ExcessLossDB)
}
