package optics

import (
	"fmt"
	"io"
	"slices"
	"strings"
)

// SpectrumPoint is one wavelength sample of a transmission spectrum.
type SpectrumPoint struct {
	WavelengthNM float64
	Transmission float64
}

// SampleSpectrum evaluates f at n equally spaced wavelengths covering
// [loNM, hiNM] inclusive. It is used to regenerate the spectra of the
// paper's Fig. 5(a)/(b).
func SampleSpectrum(f func(lambdaNM float64) float64, loNM, hiNM float64, n int) []SpectrumPoint {
	if n < 2 {
		n = 2
	}
	pts := make([]SpectrumPoint, n)
	step := (hiNM - loNM) / float64(n-1)
	for i := range pts {
		l := loNM + float64(i)*step
		pts[i] = SpectrumPoint{WavelengthNM: l, Transmission: f(l)}
	}
	return pts
}

// RenderSpectrumASCII writes a fixed-width ASCII plot of one or more
// spectra sharing a wavelength axis. Each series is drawn with its
// own rune. Transmissions are clipped to [0, 1]. The plot is `width`
// columns wide and `height` rows tall.
func RenderSpectrumASCII(w io.Writer, series map[rune][]SpectrumPoint, width, height int) error {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	var loNM, hiNM float64
	first := true
	for _, pts := range series {
		for _, p := range pts {
			if first || p.WavelengthNM < loNM {
				loNM = p.WavelengthNM
			}
			if first || p.WavelengthNM > hiNM {
				hiNM = p.WavelengthNM
			}
			first = false
		}
	}
	if first {
		return fmt.Errorf("optics: no spectra to render")
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	// Draw in sorted rune order: map iteration order is randomized,
	// and where two series land on one cell the later draw wins —
	// unordered iteration made the plot differ run to run.
	runes := make([]rune, 0, len(series))
	for r := range series {
		runes = append(runes, r)
	}
	slices.Sort(runes)
	for _, r := range runes {
		for _, p := range series[r] {
			col := 0
			if hiNM > loNM {
				col = int((p.WavelengthNM - loNM) / (hiNM - loNM) * float64(width-1))
			}
			t := p.Transmission
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			row := height - 1 - int(t*float64(height-1))
			grid[row][col] = r
		}
	}
	for i, line := range grid {
		label := "      "
		if i == 0 {
			label = "1.0 | "
		} else if i == height-1 {
			label = "0.0 | "
		} else {
			label = "    | "
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", label, string(line)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "      %-*.2f%*.2f nm\n", width/2, loNM, width-width/2, hiNM)
	return err
}
