package optics

import (
	"math"
	"testing"
)

func TestAPDValidate(t *testing.T) {
	good := PaperAPD(1e-5)
	if err := good.Validate(); err != nil {
		t.Fatalf("paper APD rejected: %v", err)
	}
	bad := []APD{
		{ResponsivityAPerW: 0, Gain: 10, ExcessNoiseExp: 0.5, NoiseCurrentA: 1e-5},
		{ResponsivityAPerW: 0.4, Gain: 0.5, ExcessNoiseExp: 0.5, NoiseCurrentA: 1e-5},
		{ResponsivityAPerW: 0.4, Gain: 10, ExcessNoiseExp: -0.1, NoiseCurrentA: 1e-5},
		{ResponsivityAPerW: 0.4, Gain: 10, ExcessNoiseExp: 1.1, NoiseCurrentA: 1e-5},
		{ResponsivityAPerW: 0.4, Gain: 10, ExcessNoiseExp: 0.5, NoiseCurrentA: 0},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad APD %d accepted", i)
		}
	}
}

func TestAPDExcessNoise(t *testing.T) {
	a := APD{ResponsivityAPerW: 0.4, Gain: 100, ExcessNoiseExp: 0.5, NoiseCurrentA: 1e-5}
	if got := a.ExcessNoiseFactor(); math.Abs(got-10) > 1e-9 {
		t.Errorf("F(100) = %g, want 10", got)
	}
	// SNR improvement M/sqrt(F) = 100/sqrt(10).
	if got := a.SNRImprovement(); math.Abs(got-100/math.Sqrt(10)) > 1e-9 {
		t.Errorf("SNR improvement = %g", got)
	}
	// Unity gain degenerates to a pin diode.
	pin := APD{ResponsivityAPerW: 0.4, Gain: 1, ExcessNoiseExp: 0.7, NoiseCurrentA: 1e-5}
	if got := pin.SNRImprovement(); math.Abs(got-1) > 1e-12 {
		t.Errorf("pin-equivalent improvement = %g", got)
	}
}

func TestAPDEffectiveDetector(t *testing.T) {
	a := PaperAPD(2e-5)
	d := a.EffectiveDetector()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The effective detector's SNR for any power is exactly the pin
	// SNR times the improvement factor.
	pin := Photodetector{ResponsivityAPerW: a.ResponsivityAPerW, NoiseCurrentA: a.NoiseCurrentA}
	for _, p := range []float64{0.01, 0.1, 1} {
		want := pin.SNR(p) * a.SNRImprovement()
		if got := d.SNR(p); math.Abs(got-want)/want > 1e-12 {
			t.Errorf("P=%g: SNR %g, want %g", p, got, want)
		}
	}
}

func TestAPDReducesRequiredPower(t *testing.T) {
	// The future-work motivation: for the same SNR target, an APD
	// needs M/sqrt(F) times less optical power.
	a := PaperAPD(1e-5)
	pin := Photodetector{ResponsivityAPerW: a.ResponsivityAPerW, NoiseCurrentA: a.NoiseCurrentA}
	apd := a.EffectiveDetector()
	snr := 9.5
	ratio := pin.MinPowerForSNRMW(snr) / apd.MinPowerForSNRMW(snr)
	if math.Abs(ratio-a.SNRImprovement())/a.SNRImprovement() > 1e-12 {
		t.Errorf("power reduction %g, want %g", ratio, a.SNRImprovement())
	}
	if ratio < 5 {
		t.Errorf("paper APD reduction only %gx", ratio)
	}
}
