package optics

import (
	"fmt"
)

// OTETuner is the linearized all-optical tuning model used by the
// paper's Eq. (7a): the filter resonance blue-shifts proportionally
// to the injected pump power, with slope OTE (optical tuning
// efficiency, nm/mW). The paper adopts 0.1 nm per 10 mW from the
// GaAs-AlGaAs measurement of Van et al. [14].
type OTETuner struct {
	// OTENMPerMW is the resonance shift per unit pump power.
	OTENMPerMW float64
}

// ShiftNM returns the resonance blue-shift for the given pump power.
func (t OTETuner) ShiftNM(pumpMW float64) float64 {
	if pumpMW < 0 {
		return 0
	}
	return t.OTENMPerMW * pumpMW
}

// PowerForShiftMW inverts ShiftNM: the pump power needed to produce a
// given blue-shift. This is the core of the MRR-first pump-power
// sizing (§V.A).
func (t OTETuner) PowerForShiftMW(shiftNM float64) float64 {
	if shiftNM <= 0 {
		return 0
	}
	return shiftNM / t.OTENMPerMW
}

// PaperOTE is the tuner with the paper's assumed efficiency:
// 0.1 nm / 10 mW = 0.01 nm/mW.
var PaperOTE = OTETuner{OTENMPerMW: 0.01}

// TPAModel is the device-level two-photon-absorption tuning model of
// the paper's Eq. (4): the effective index under a pump of power P is
//
//	n_eff = n0 + n2 * P / S
//
// where n0 and n2 are the linear and non-linear refractive indices
// and S is the effective cross-sectional area of the filter
// waveguide. The resonance shift follows from dλ/λ = dn/n_g.
type TPAModel struct {
	// N0 is the linear effective refractive index (silicon ≈ 2.4
	// effective, GaAs-AlGaAs rings in [14] ≈ 3.2).
	N0 float64
	// N2M2PerW is the non-linear (Kerr/TPA-induced) index in m²/W.
	N2M2PerW float64
	// CrossSectionM2 is the effective modal cross-section S in m².
	CrossSectionM2 float64
	// GroupIndex n_g relates index change to fractional wavelength
	// shift; if zero, N0 is used.
	GroupIndex float64
}

// Validate reports whether the model parameters are physical.
func (m TPAModel) Validate() error {
	if m.N0 <= 0 {
		return fmt.Errorf("optics: TPA n0 = %g not positive", m.N0)
	}
	if m.CrossSectionM2 <= 0 {
		return fmt.Errorf("optics: TPA cross-section = %g not positive", m.CrossSectionM2)
	}
	return nil
}

// EffectiveIndex returns n_eff for a pump power in mW (Eq. 4).
func (m TPAModel) EffectiveIndex(pumpMW float64) float64 {
	if pumpMW < 0 {
		pumpMW = 0
	}
	return m.N0 + m.N2M2PerW*MilliwattsToWatts(pumpMW)/m.CrossSectionM2
}

// ShiftNM returns the resonance shift at lambdaNM for a pump power in
// mW. A negative N2 (free-carrier dominated) produces the blue shift
// described in the paper; the magnitude is returned so it composes
// with OTETuner conventions.
func (m TPAModel) ShiftNM(lambdaNM, pumpMW float64) float64 {
	ng := m.GroupIndex
	if ng == 0 {
		ng = m.N0
	}
	dn := m.EffectiveIndex(pumpMW) - m.N0
	shift := lambdaNM * dn / ng
	if shift < 0 {
		shift = -shift
	}
	return shift
}

// LinearizedOTE returns the equivalent OTETuner at lambdaNM, i.e. the
// small-signal nm/mW slope of ShiftNM. Because Eq. (4) is already
// linear in P, the linearization is exact and the returned tuner
// reproduces ShiftNM at every power.
func (m TPAModel) LinearizedOTE(lambdaNM float64) OTETuner {
	return OTETuner{OTENMPerMW: m.ShiftNM(lambdaNM, 1)}
}

// CalibratedTPAModel returns a TPA model whose parameters reproduce a
// target OTE at the given wavelength, keeping the stated n0 and group
// index. It back-solves the n2/S ratio; the individual values are
// reported with S fixed at the given cross-section.
func CalibratedTPAModel(lambdaNM, oteNMPerMW, n0, ng, crossSectionM2 float64) TPAModel {
	if ng == 0 {
		ng = n0
	}
	// ote = λ * (n2 * 1e-3 / S) / ng  =>  n2 = ote * ng * S * 1e3 / λ.
	n2 := oteNMPerMW * ng * crossSectionM2 * 1e3 / lambdaNM
	return TPAModel{N0: n0, N2M2PerW: n2, CrossSectionM2: crossSectionM2, GroupIndex: ng}
}
