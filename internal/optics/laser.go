package optics

import (
	"fmt"
)

// CWLaser is a continuous-wave laser source emitting constant optical
// power at a fixed wavelength. Efficiency is the wall-plug (lasing)
// efficiency: electrical power drawn = optical power / Efficiency.
// The paper assumes 20 % lasing efficiency for all sources (§V.C).
type CWLaser struct {
	WavelengthNM float64
	PowerMW      float64
	Efficiency   float64
}

// Validate reports whether the laser parameters are physical.
func (l CWLaser) Validate() error {
	if l.PowerMW < 0 {
		return fmt.Errorf("optics: CW laser power %g mW negative", l.PowerMW)
	}
	if l.Efficiency <= 0 || l.Efficiency > 1 {
		return fmt.Errorf("optics: lasing efficiency %g outside (0,1]", l.Efficiency)
	}
	return nil
}

// ElectricalPowerMW returns the wall-plug power drawn.
func (l CWLaser) ElectricalPowerMW() float64 {
	return l.PowerMW / l.Efficiency
}

// EnergyPerBitPJ returns the electrical energy consumed per bit slot
// of the given duration, in picojoules. A CW laser burns power for
// the full slot.
func (l CWLaser) EnergyPerBitPJ(bitPeriodS float64) float64 {
	return EnergyPJ(l.ElectricalPowerMW(), bitPeriodS)
}

// String implements fmt.Stringer.
func (l CWLaser) String() string {
	return fmt.Sprintf("CWLaser(λ=%.3fnm, %.3fmW, η=%.0f%%)", l.WavelengthNM, l.PowerMW, l.Efficiency*100)
}

// PulsedLaser is a pulse-based pump laser emitting one rectangular
// pulse of PeakPowerMW and width PulseWidthS per bit slot. The paper
// (§V.C) adopts the 26 ps pulses of Van et al. [15] to cut the pump
// laser's duty cycle, which is the dominant energy saving of the
// design.
type PulsedLaser struct {
	WavelengthNM float64
	PeakPowerMW  float64
	PulseWidthS  float64
	Efficiency   float64
}

// Validate reports whether the laser parameters are physical.
func (l PulsedLaser) Validate() error {
	if l.PeakPowerMW < 0 {
		return fmt.Errorf("optics: pulsed laser peak power %g mW negative", l.PeakPowerMW)
	}
	if l.PulseWidthS <= 0 {
		return fmt.Errorf("optics: pulse width %g s not positive", l.PulseWidthS)
	}
	if l.Efficiency <= 0 || l.Efficiency > 1 {
		return fmt.Errorf("optics: lasing efficiency %g outside (0,1]", l.Efficiency)
	}
	return nil
}

// DutyCycle returns the fraction of the bit slot the pulse is on.
func (l PulsedLaser) DutyCycle(bitPeriodS float64) float64 {
	if bitPeriodS <= 0 {
		return 1
	}
	d := l.PulseWidthS / bitPeriodS
	if d > 1 {
		d = 1
	}
	return d
}

// EnergyPerBitPJ returns the electrical energy per bit slot in pJ:
// one pulse of PeakPowerMW lasting PulseWidthS, divided by the lasing
// efficiency. The bit period only matters if it is shorter than the
// pulse (the pulse is then truncated).
func (l PulsedLaser) EnergyPerBitPJ(bitPeriodS float64) float64 {
	w := l.PulseWidthS
	if bitPeriodS > 0 && bitPeriodS < w {
		w = bitPeriodS
	}
	return EnergyPJ(l.PeakPowerMW/l.Efficiency, w)
}

// AveragePowerMW returns the optical power averaged over a bit slot.
func (l PulsedLaser) AveragePowerMW(bitPeriodS float64) float64 {
	return l.PeakPowerMW * l.DutyCycle(bitPeriodS)
}

// String implements fmt.Stringer.
func (l PulsedLaser) String() string {
	return fmt.Sprintf("PulsedLaser(λ=%.3fnm, peak %.1fmW, %.0fps pulses, η=%.0f%%)",
		l.WavelengthNM, l.PeakPowerMW, l.PulseWidthS*1e12, l.Efficiency*100)
}

// PaperPulseWidthS is the 26 ps pump pulse width adopted from [15].
const PaperPulseWidthS = 26e-12

// PaperLasingEfficiency is the 20 % wall-plug efficiency assumed in
// the paper's energy study (§V.C).
const PaperLasingEfficiency = 0.20
