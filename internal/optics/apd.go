package optics

import (
	"fmt"
	"math"
)

// APD models a linear-mode avalanche photodiode, the high-
// responsivity detector the paper proposes for the optical
// de-randomizer (future work, ref [21]). Impact ionization
// multiplies the photocurrent by the avalanche gain M at the cost of
// an excess noise factor, conventionally modeled as F(M) = M^x with
// excess noise exponent x ∈ [0, 1].
//
// Relative to a pin detector with the same thermal noise floor, the
// worst-case SNR improves by M/√F(M) = M^(1−x/2): the signal current
// gains M while the amplified shot-noise contribution grows as
// M√F(M). The model keeps the thermal floor dominant, which matches
// the received-power regime of the paper (tens to hundreds of µW).
type APD struct {
	// ResponsivityAPerW is the unity-gain responsivity R.
	ResponsivityAPerW float64
	// Gain is the avalanche multiplication factor M (>= 1).
	Gain float64
	// ExcessNoiseExp is x in F(M) = M^x.
	ExcessNoiseExp float64
	// NoiseCurrentA is the thermal/readout noise floor i_n.
	NoiseCurrentA float64
}

// Validate reports whether the APD parameters are physical.
func (a APD) Validate() error {
	if a.ResponsivityAPerW <= 0 {
		return fmt.Errorf("optics: APD responsivity %g not positive", a.ResponsivityAPerW)
	}
	if a.Gain < 1 {
		return fmt.Errorf("optics: APD gain %g < 1", a.Gain)
	}
	if a.ExcessNoiseExp < 0 || a.ExcessNoiseExp > 1 {
		return fmt.Errorf("optics: APD excess noise exponent %g outside [0,1]", a.ExcessNoiseExp)
	}
	if a.NoiseCurrentA <= 0 {
		return fmt.Errorf("optics: APD noise current %g not positive", a.NoiseCurrentA)
	}
	return nil
}

// ExcessNoiseFactor returns F(M) = M^x.
func (a APD) ExcessNoiseFactor() float64 {
	return math.Pow(a.Gain, a.ExcessNoiseExp)
}

// SNRImprovement returns the worst-case SNR gain over a pin detector
// with the same R and i_n: M/√F(M).
func (a APD) SNRImprovement() float64 {
	return a.Gain / math.Sqrt(a.ExcessNoiseFactor())
}

// EffectiveDetector folds the avalanche gain into an equivalent pin
// Photodetector so the rest of the model (Eq. 8) applies unchanged:
// responsivity R·M against a noise floor inflated by √F(M).
func (a APD) EffectiveDetector() Photodetector {
	return Photodetector{
		ResponsivityAPerW: a.ResponsivityAPerW * a.Gain,
		NoiseCurrentA:     a.NoiseCurrentA * math.Sqrt(a.ExcessNoiseFactor()),
	}
}

// PaperAPD returns an APD representative of the high-responsivity
// CMOS-integrated device of Steindl et al. [21]: unity-gain
// responsivity 0.4 A/W boosted by an avalanche gain of ~25 with a
// moderate excess noise exponent.
func PaperAPD(noiseCurrentA float64) APD {
	return APD{
		ResponsivityAPerW: 0.4,
		Gain:              25,
		ExcessNoiseExp:    0.7,
		NoiseCurrentA:     noiseCurrentA,
	}
}
