package optics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPhotodetectorSNRLinearity(t *testing.T) {
	p := Photodetector{ResponsivityAPerW: 1, NoiseCurrentA: 1e-5}
	s1 := p.SNR(0.1)
	s2 := p.SNR(0.2)
	if math.Abs(s2-2*s1) > 1e-9 {
		t.Errorf("SNR not linear in power: %g vs %g", s1, s2)
	}
}

func TestPhotodetectorMinPowerRoundTrip(t *testing.T) {
	p := Photodetector{ResponsivityAPerW: 0.8, NoiseCurrentA: 1.5e-5}
	for _, snr := range []float64{1, 9.5, 100} {
		pw := p.MinPowerForSNRMW(snr)
		if got := p.SNR(pw); math.Abs(got-snr) > 1e-9 {
			t.Errorf("SNR(MinPower(%g)) = %g", snr, got)
		}
	}
}

func TestPhotodetectorValidate(t *testing.T) {
	if err := (Photodetector{ResponsivityAPerW: 1, NoiseCurrentA: 1e-6}).Validate(); err != nil {
		t.Errorf("valid detector rejected: %v", err)
	}
	if err := (Photodetector{ResponsivityAPerW: 0, NoiseCurrentA: 1e-6}).Validate(); err == nil {
		t.Error("zero responsivity accepted")
	}
	if err := (Photodetector{ResponsivityAPerW: 1, NoiseCurrentA: 0}).Validate(); err == nil {
		t.Error("zero noise accepted")
	}
}

func TestBERFromSNRKnownPoints(t *testing.T) {
	// SNR -> BER via Eq. (9). For BER 1e-6 the required SNR is
	// 2*sqrt(2)*erfcinv(2e-6) ≈ 9.507.
	snr := SNRForBER(1e-6)
	if math.Abs(snr-9.507) > 0.01 {
		t.Errorf("SNRForBER(1e-6) = %g, want ~9.507", snr)
	}
	if ber := BERFromSNR(snr); math.Abs(ber-1e-6)/1e-6 > 1e-6 {
		t.Errorf("BERFromSNR round trip = %g", ber)
	}
}

func TestBERHalvedPowerObservation(t *testing.T) {
	// Fig. 6(b): BER target 1e-2 needs ~half the SNR (hence probe
	// power) of 1e-6.
	ratio := SNRForBER(1e-2) / SNRForBER(1e-6)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("SNR ratio 1e-2/1e-6 = %g, want ~0.5", ratio)
	}
}

func TestBERDegenerateInputs(t *testing.T) {
	if got := BERFromSNR(0); got != 0.5 {
		t.Errorf("BER at zero SNR = %g, want 0.5", got)
	}
	if got := BERFromSNR(-3); got != 0.5 {
		t.Errorf("BER at negative SNR = %g, want 0.5", got)
	}
	if got := SNRForBER(0.5); got != 0 {
		t.Errorf("SNR for BER 0.5 = %g, want 0", got)
	}
	if got := SNRForBER(0.9); got != 0 {
		t.Errorf("SNR for BER 0.9 = %g, want 0", got)
	}
}

func TestBERMonotoneProperty(t *testing.T) {
	// Higher SNR always means lower BER.
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		a, b = math.Mod(a, 30), math.Mod(b, 30)
		if a == b {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return BERFromSNR(hi) <= BERFromSNR(lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOOKDecider(t *testing.T) {
	d := NewMidpointDecider(0.099, 0.477)
	if d.ThresholdMW != (0.099+0.477)/2 {
		t.Errorf("threshold = %g", d.ThresholdMW)
	}
	if d.Decide(0.095) != 0 {
		t.Error("'0' level decided as 1")
	}
	if d.Decide(0.48) != 1 {
		t.Error("'1' level decided as 0")
	}
}

func TestEyeOpening(t *testing.T) {
	if got := EyeOpeningMW(0.099, 0.477); math.Abs(got-0.378) > 1e-12 {
		t.Errorf("eye opening = %g", got)
	}
	if got := EyeOpeningMW(0.5, 0.4); got >= 0 {
		t.Errorf("closed eye not negative: %g", got)
	}
}
