package optics

import (
	"math"
	"testing"
)

func paperishNoise() NoiseModel {
	return NoiseModel{
		ThermalCurrentA:   2e-5,
		ResponsivityAPerW: 1,
		BandwidthHz:       1e9,
		RINPerHz:          1e-15,
	}
}

func TestNoiseModelValidate(t *testing.T) {
	if err := paperishNoise().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []NoiseModel{
		{ThermalCurrentA: 0, ResponsivityAPerW: 1, BandwidthHz: 1e9},
		{ThermalCurrentA: 1e-5, ResponsivityAPerW: 0, BandwidthHz: 1e9},
		{ThermalCurrentA: 1e-5, ResponsivityAPerW: 1, BandwidthHz: 0},
		{ThermalCurrentA: 1e-5, ResponsivityAPerW: 1, BandwidthHz: 1e9, RINPerHz: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestNoiseGrowsWithPower(t *testing.T) {
	m := paperishNoise()
	prev := m.TotalCurrentA(0)
	if math.Abs(prev-m.ThermalCurrentA) > 1e-18 {
		t.Errorf("dark noise %g != thermal floor %g", prev, m.ThermalCurrentA)
	}
	for _, p := range []float64{0.1, 1, 10, 100} {
		cur := m.TotalCurrentA(p)
		if cur <= prev {
			t.Fatalf("noise not increasing at %g mW", p)
		}
		prev = cur
	}
	if got := m.TotalCurrentA(-5); got != m.TotalCurrentA(0) {
		t.Error("negative power not clamped")
	}
}

func TestThermalLimitedAtPaperPowers(t *testing.T) {
	// The paper's received powers (~0.1-0.5 mW) sit in the
	// thermal-limited regime, justifying Eq. (8)'s constant i_n.
	m := paperishNoise()
	if f := m.ThermalLimitedFraction(0.5); f < 0.85 {
		t.Errorf("thermal fraction %g at 0.5 mW; constant-i_n assumption shaky", f)
	}
	// At watt-level powers RIN/shot dominate and the assumption
	// breaks — the regime the paper avoids.
	if f := m.ThermalLimitedFraction(1000); f > 0.5 {
		t.Errorf("thermal fraction %g at 1 W; model insensitive to power", f)
	}
}

func TestNoiseSNRSublinear(t *testing.T) {
	// Doubling both signal swing and average power less than doubles
	// the SNR once power-dependent noise matters.
	m := paperishNoise()
	lo := m.SNR(0.4, 50)
	hi := m.SNR(0.8, 100)
	if hi >= 2*lo {
		t.Errorf("SNR scaled superlinearly: %g -> %g", lo, hi)
	}
	// In the thermal-limited regime it is ~linear.
	lo = m.SNR(0.4, 0.25)
	hi = m.SNR(0.8, 0.5)
	if r := hi / lo; math.Abs(r-2) > 0.1 {
		t.Errorf("thermal-regime scaling %g, want ~2", r)
	}
}

func TestEffectiveDetectorConsistency(t *testing.T) {
	m := paperishNoise()
	d := m.EffectiveDetector(0.3)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.NoiseCurrentA-m.TotalCurrentA(0.3)) > 1e-18 {
		t.Error("lumped noise mismatch")
	}
	// The lumped detector agrees with the full model at the
	// operating point.
	want := m.SNR(0.1, 0.3)
	if got := d.SNR(0.1); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("lumped SNR %g vs model %g", got, want)
	}
}
