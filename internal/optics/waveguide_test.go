package optics

import (
	"math"
	"strings"
	"testing"
)

func TestWaveguideLossArithmetic(t *testing.T) {
	w := Waveguide{LengthMM: 10, LossDBPerCM: 2, Bends: 4, BendLossDB: 0.05}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// 10 mm = 1 cm at 2 dB/cm plus 4×0.05 dB = 2.2 dB.
	if got := w.TotalLossDB(); math.Abs(got-2.2) > 1e-12 {
		t.Errorf("loss = %g dB", got)
	}
	if got := w.Transmission(); math.Abs(got-LossToLinear(2.2)) > 1e-15 {
		t.Errorf("transmission = %g", got)
	}
}

func TestWaveguideValidate(t *testing.T) {
	bad := []Waveguide{
		{LengthMM: -1},
		{LengthMM: 1, LossDBPerCM: -1},
		{LengthMM: 1, BendLossDB: -1},
		{LengthMM: 1, Bends: -1},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad waveguide %d accepted", i)
		}
	}
}

func TestWaveguideZeroIsTransparent(t *testing.T) {
	var w Waveguide
	if got := w.Transmission(); got != 1 {
		t.Errorf("zero-length transmission = %g", got)
	}
}

func TestTypicalRoutingModest(t *testing.T) {
	w := TypicalRouting()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// A few mm of routing costs well under 1 dB — small against the
	// 4.5 dB MZI but not negligible in a tight budget.
	if l := w.TotalLossDB(); l <= 0 || l > 1.5 {
		t.Errorf("typical routing loss = %g dB", l)
	}
	if !strings.Contains(w.String(), "dB") {
		t.Error("String formatting")
	}
}
