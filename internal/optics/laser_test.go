package optics

import (
	"math"
	"strings"
	"testing"
)

func TestCWLaserEnergy(t *testing.T) {
	l := CWLaser{WavelengthNM: 1550, PowerMW: 1, Efficiency: 0.2}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 mW / 0.2 = 5 mW electrical; over 1 ns => 5 pJ.
	if got := l.EnergyPerBitPJ(1e-9); math.Abs(got-5) > 1e-9 {
		t.Errorf("CW energy per bit = %g pJ, want 5", got)
	}
	if got := l.ElectricalPowerMW(); math.Abs(got-5) > 1e-12 {
		t.Errorf("electrical power = %g mW", got)
	}
}

func TestCWLaserValidate(t *testing.T) {
	bad := []CWLaser{
		{PowerMW: -1, Efficiency: 0.2},
		{PowerMW: 1, Efficiency: 0},
		{PowerMW: 1, Efficiency: 1.5},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad laser %d accepted", i)
		}
	}
}

func TestPulsedLaserEnergyPaperAnchor(t *testing.T) {
	// §V.A/V.C anchor: 591.8 mW pump, 26 ps pulse, 20 % efficiency
	// => 591.8e-3 W * 26e-12 s / 0.2 = 76.9 pJ per bit. This is the
	// 1 nm-spacing n=2 bar of Fig. 7(b).
	l := PulsedLaser{WavelengthNM: 1540, PeakPowerMW: 591.8, PulseWidthS: PaperPulseWidthS, Efficiency: PaperLasingEfficiency}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	got := l.EnergyPerBitPJ(1e-9)
	if math.Abs(got-76.934) > 0.05 {
		t.Errorf("pulsed pump energy = %g pJ, want ~76.93", got)
	}
}

func TestPulsedLaserDutyCycle(t *testing.T) {
	l := PulsedLaser{PeakPowerMW: 100, PulseWidthS: 26e-12, Efficiency: 0.2}
	if got := l.DutyCycle(1e-9); math.Abs(got-0.026) > 1e-12 {
		t.Errorf("duty cycle = %g", got)
	}
	// Pulse longer than the slot clamps to 1.
	if got := l.DutyCycle(10e-12); got != 1 {
		t.Errorf("clamped duty cycle = %g", got)
	}
	if got := l.DutyCycle(0); got != 1 {
		t.Errorf("degenerate duty cycle = %g", got)
	}
}

func TestPulsedLaserTruncatedPulse(t *testing.T) {
	l := PulsedLaser{PeakPowerMW: 200, PulseWidthS: 26e-12, Efficiency: 0.2}
	full := l.EnergyPerBitPJ(1e-9)
	trunc := l.EnergyPerBitPJ(13e-12)
	if math.Abs(trunc-full/2) > 1e-9 {
		t.Errorf("truncated pulse energy %g, want half of %g", trunc, full)
	}
}

func TestPulsedLaserAveragePower(t *testing.T) {
	l := PulsedLaser{PeakPowerMW: 1000, PulseWidthS: 26e-12, Efficiency: 0.2}
	if got := l.AveragePowerMW(1e-9); math.Abs(got-26) > 1e-9 {
		t.Errorf("average power = %g mW, want 26", got)
	}
}

func TestPulsedLaserValidate(t *testing.T) {
	bad := []PulsedLaser{
		{PeakPowerMW: -1, PulseWidthS: 1e-12, Efficiency: 0.2},
		{PeakPowerMW: 1, PulseWidthS: 0, Efficiency: 0.2},
		{PeakPowerMW: 1, PulseWidthS: 1e-12, Efficiency: 0},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad pulsed laser %d accepted", i)
		}
	}
}

func TestLaserStrings(t *testing.T) {
	cw := CWLaser{WavelengthNM: 1550, PowerMW: 0.26, Efficiency: 0.2}.String()
	if !strings.Contains(cw, "1550") {
		t.Errorf("CW String = %q", cw)
	}
	pl := PulsedLaser{WavelengthNM: 1540, PeakPowerMW: 591.8, PulseWidthS: 26e-12, Efficiency: 0.2}.String()
	if !strings.Contains(pl, "26ps") {
		t.Errorf("Pulsed String = %q", pl)
	}
}
