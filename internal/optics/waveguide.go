package optics

import (
	"fmt"
)

// Waveguide is a routing segment with distributed propagation loss
// and discrete bend losses — the interconnect fabric between the
// devices of the integrated circuit. The paper's model neglects
// routing; production link budgets cannot.
type Waveguide struct {
	// LengthMM is the physical length.
	LengthMM float64
	// LossDBPerCM is the propagation loss (typical SOI strip
	// waveguides: 1–3 dB/cm).
	LossDBPerCM float64
	// Bends counts 90° bends; BendLossDB is the loss per bend
	// (typically 0.01–0.1 dB for tight SOI bends).
	Bends      int
	BendLossDB float64
}

// Validate reports whether the segment is physical.
func (w Waveguide) Validate() error {
	if w.LengthMM < 0 {
		return fmt.Errorf("optics: negative waveguide length %g mm", w.LengthMM)
	}
	if w.LossDBPerCM < 0 || w.BendLossDB < 0 {
		return fmt.Errorf("optics: negative waveguide loss")
	}
	if w.Bends < 0 {
		return fmt.Errorf("optics: negative bend count")
	}
	return nil
}

// TotalLossDB returns the segment's total insertion loss.
func (w Waveguide) TotalLossDB() float64 {
	return w.LossDBPerCM*w.LengthMM/10 + float64(w.Bends)*w.BendLossDB
}

// Transmission returns the linear power transmission.
func (w Waveguide) Transmission() float64 {
	return LossToLinear(w.TotalLossDB())
}

// String implements fmt.Stringer.
func (w Waveguide) String() string {
	return fmt.Sprintf("Waveguide(%.2fmm @%.1fdB/cm, %d bends) = %.3fdB",
		w.LengthMM, w.LossDBPerCM, w.Bends, w.TotalLossDB())
}

// TypicalRouting returns a representative on-chip routing segment for
// the SC circuit's probe path: a few millimetres of strip waveguide
// with a handful of bends.
func TypicalRouting() Waveguide {
	return Waveguide{LengthMM: 3, LossDBPerCM: 2, Bends: 6, BendLossDB: 0.02}
}
