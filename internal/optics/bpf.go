package optics

import "fmt"

// BandPassFilter models the pump-rejection band-pass filter placed
// before the photodetector (paper Fig. 3a and Fig. 4a). Probe
// wavelengths inside [CenterNM ± BandwidthNM/2] pass with the
// in-band insertion loss; everything else (notably the strong pump at
// λpump) is suppressed by the stop-band rejection.
//
// The paper neglects the BPF's effect on the pump in its transmission
// model; we model it explicitly so transient simulations can verify
// the residual pump leakage is negligible.
type BandPassFilter struct {
	CenterNM    float64
	BandwidthNM float64
	// InBandLossDB is the pass-band insertion loss (dB, positive).
	InBandLossDB float64
	// RejectionDB is the stop-band suppression (dB, positive).
	RejectionDB float64
}

// Validate reports whether the filter parameters are physical.
func (f BandPassFilter) Validate() error {
	if f.BandwidthNM <= 0 {
		return fmt.Errorf("optics: BPF bandwidth %g nm not positive", f.BandwidthNM)
	}
	if f.InBandLossDB < 0 || f.RejectionDB < 0 {
		return fmt.Errorf("optics: BPF losses must be >= 0 dB")
	}
	if f.RejectionDB < f.InBandLossDB {
		return fmt.Errorf("optics: BPF rejection %g dB below in-band loss %g dB", f.RejectionDB, f.InBandLossDB)
	}
	return nil
}

// Transmission returns the power transmission at lambdaNM.
func (f BandPassFilter) Transmission(lambdaNM float64) float64 {
	half := f.BandwidthNM / 2
	if lambdaNM >= f.CenterNM-half && lambdaNM <= f.CenterNM+half {
		return LossToLinear(f.InBandLossDB)
	}
	return LossToLinear(f.RejectionDB)
}

// InBand reports whether lambdaNM falls in the pass band.
func (f BandPassFilter) InBand(lambdaNM float64) bool {
	half := f.BandwidthNM / 2
	return lambdaNM >= f.CenterNM-half && lambdaNM <= f.CenterNM+half
}

// String implements fmt.Stringer.
func (f BandPassFilter) String() string {
	return fmt.Sprintf("BPF(center %.2fnm, bw %.2fnm, loss %.1fdB, rejection %.0fdB)",
		f.CenterNM, f.BandwidthNM, f.InBandLossDB, f.RejectionDB)
}
