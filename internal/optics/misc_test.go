package optics

import (
	"math"
	"strings"
	"testing"
)

func TestUnitConversions(t *testing.T) {
	if got := LossToLinear(4.5); math.Abs(got-0.35481) > 1e-4 {
		t.Errorf("LossToLinear(4.5) = %g", got)
	}
	if got := ExtinctionToLinear(13.22); math.Abs(got-0.04764) > 1e-4 {
		t.Errorf("ExtinctionToLinear(13.22) = %g", got)
	}
	if got := DBToLinear(3.0103); math.Abs(got-2) > 1e-4 {
		t.Errorf("DBToLinear(3.0103) = %g", got)
	}
	if got := LinearToDB(2); math.Abs(got-3.0103) > 1e-4 {
		t.Errorf("LinearToDB(2) = %g", got)
	}
}

func TestWavelengthFrequency(t *testing.T) {
	f := WavelengthToFrequencyTHz(1550)
	if math.Abs(f-193.414) > 0.01 {
		t.Errorf("1550nm = %g THz, want ~193.414", f)
	}
	if got := FrequencyTHzToWavelength(f); math.Abs(got-1550) > 1e-6 {
		t.Errorf("round trip = %g nm", got)
	}
	if got := WavelengthToFrequencyTHz(0); !math.IsInf(got, 1) {
		t.Errorf("zero wavelength = %g", got)
	}
	if got := FrequencyTHzToWavelength(0); !math.IsInf(got, 1) {
		t.Errorf("zero frequency = %g", got)
	}
}

func TestPhotonEnergy(t *testing.T) {
	// 1550 nm photon ≈ 0.8 eV ≈ 1.28e-19 J.
	e := PhotonEnergyJ(1550)
	if e < 1.2e-19 || e > 1.35e-19 {
		t.Errorf("photon energy = %g J", e)
	}
}

func TestEnergyHelpers(t *testing.T) {
	// 1 mW for 1 ns = 1 pJ.
	if got := EnergyPJ(1, 1e-9); math.Abs(got-1) > 1e-12 {
		t.Errorf("EnergyPJ = %g", got)
	}
	if got := EnergyJ(1000, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("EnergyJ = %g", got)
	}
	if got := WattsToMilliwatts(MilliwattsToWatts(5)); math.Abs(got-5) > 1e-12 {
		t.Errorf("mW round trip = %g", got)
	}
}

func TestSplitterCombiner(t *testing.T) {
	s := Splitter{Ports: 2}
	if got := s.PortTransmission(); got != 0.5 {
		t.Errorf("ideal 1:2 splitter = %g", got)
	}
	s = Splitter{Ports: 4, ExcessLossDB: 3.0103}
	if got := s.PortTransmission(); math.Abs(got-0.125) > 1e-5 {
		t.Errorf("lossy 1:4 splitter = %g", got)
	}
	if got := (Splitter{Ports: 0}).PortTransmission(); got != 0 {
		t.Errorf("degenerate splitter = %g", got)
	}
	c := Combiner{Ports: 3}
	if got := c.ExcessLossFraction(); got != 1 {
		t.Errorf("ideal combiner = %g", got)
	}
	if !strings.Contains(s.String(), "1:4") || !strings.Contains(c.String(), "3:1") {
		t.Error("String formatting")
	}
}

func TestBPF(t *testing.T) {
	f := BandPassFilter{CenterNM: 1549, BandwidthNM: 4, InBandLossDB: 0.5, RejectionDB: 40}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if !f.InBand(1550) || f.InBand(1540) {
		t.Error("InBand classification wrong")
	}
	in := f.Transmission(1548)
	out := f.Transmission(1540)
	if math.Abs(in-LossToLinear(0.5)) > 1e-12 {
		t.Errorf("in-band transmission = %g", in)
	}
	if math.Abs(out-1e-4) > 1e-8 {
		t.Errorf("stop-band transmission = %g, want 1e-4", out)
	}
}

func TestBPFValidate(t *testing.T) {
	bad := []BandPassFilter{
		{CenterNM: 1550, BandwidthNM: 0},
		{CenterNM: 1550, BandwidthNM: 1, InBandLossDB: -1},
		{CenterNM: 1550, BandwidthNM: 1, InBandLossDB: 3, RejectionDB: 2},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad BPF %d accepted", i)
		}
	}
}

func TestPumpRejectionSuppressesLeakage(t *testing.T) {
	// The model-level justification for the paper neglecting the BPF:
	// a 40 dB rejection knocks a 600 mW pump to 0.06 mW, below the
	// '0'-level band of Fig. 5(c).
	f := BandPassFilter{CenterNM: 1549, BandwidthNM: 4, RejectionDB: 40}
	leak := 600 * f.Transmission(1540.1)
	if leak > 0.092 {
		t.Errorf("pump leakage %g mW would corrupt the '0' band", leak)
	}
}

func TestSampleSpectrum(t *testing.T) {
	r := testRing()
	pts := SampleSpectrum(r.DropAtRest, 1548, 1552, 101)
	if len(pts) != 101 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].WavelengthNM != 1548 || pts[100].WavelengthNM != 1552 {
		t.Error("endpoints wrong")
	}
	// Peak should be near 1550.
	best := 0
	for i, p := range pts {
		if p.Transmission > pts[best].Transmission {
			best = i
		}
	}
	if math.Abs(pts[best].WavelengthNM-1550) > 0.05 {
		t.Errorf("peak at %g", pts[best].WavelengthNM)
	}
	// Degenerate sample count clamps to 2.
	if got := SampleSpectrum(r.DropAtRest, 1548, 1552, 1); len(got) != 2 {
		t.Errorf("clamped len = %d", len(got))
	}
}

func TestRenderSpectrumASCII(t *testing.T) {
	r := testRing()
	var sb strings.Builder
	series := map[rune][]SpectrumPoint{
		'*': SampleSpectrum(r.DropAtRest, 1548, 1552, 200),
	}
	if err := RenderSpectrumASCII(&sb, series, 60, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "1.0") {
		t.Errorf("render output missing content:\n%s", out)
	}
	if err := RenderSpectrumASCII(&sb, map[rune][]SpectrumPoint{}, 60, 10); err == nil {
		t.Error("empty render accepted")
	}
}
