// Package figures is the shared figure registry: every renderable
// evaluation section of the paper reproduction (Fig. 5–7, the
// extension studies, the checkpointable yield campaign) keyed the way
// cmd/oscbench's -fig flag and cmd/oscserve's /v1/figures endpoint
// expose them. A figure renders a deterministic text table — identical
// on any evaluation engine at any worker count — which is what makes
// figure responses safely cacheable and retryable.
package figures

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	img "repro/internal/image"
	"repro/internal/stochastic"
	"repro/internal/transient"
)

// Config carries the per-render knobs into the figure generators. The
// zero value is not runnable; start from Defaults.
type Config struct {
	// GridN is the Fig 6(a) grid resolution per axis (>= 2).
	GridN int
	// SweepN is the Fig 7(a) spacing sweep point count (>= 2).
	SweepN int
	// Samples is the per-sigma die count of the yield study (>= 1).
	Samples int
	// Checkpoint, when set, snapshots the yield study to this file;
	// Resume loads it first and re-runs only the missing dies.
	Checkpoint string
	Resume     bool
	// ShardK/ShardN, when ShardN > 0, run only the yield dies shard
	// ShardK of ShardN owns (round-robin by die index), snapshotting
	// them to a shard-tagged checkpoint file for a later oscmerge.
	// Requires Checkpoint — a shard's output is its snapshot.
	ShardK, ShardN int
	// Engine dispatches every sweep a renderer runs; nil means
	// engine.Default(). (Entry points without an engine parameter
	// always use the process default.)
	Engine engine.Engine
}

// Defaults is the standard figure configuration (what oscbench's flag
// defaults and oscserve's unset request fields resolve to).
func Defaults() Config {
	return Config{GridN: 6, SweepN: 11, Samples: 200}
}

// Validate reports the first malformed knob, phrased for flag users.
func (c Config) Validate() error {
	if c.GridN < 2 {
		return fmt.Errorf("-grid %d: need >= 2 points per axis", c.GridN)
	}
	if c.SweepN < 2 {
		return fmt.Errorf("-sweep %d: need >= 2 points", c.SweepN)
	}
	if c.Samples < 1 {
		return fmt.Errorf("-samples %d: need >= 1 die per sigma", c.Samples)
	}
	if c.ShardN != 0 || c.ShardK != 0 {
		if err := (engine.Shard{K: c.ShardK, N: c.ShardN, Inner: engine.Serial}).Validate(); err != nil {
			return fmt.Errorf("-shard %d/%d: shard index must be in [0, n) with n >= 1", c.ShardK, c.ShardN)
		}
	}
	return nil
}

// engine resolves the dispatch engine for a render.
func (c Config) engine() engine.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return engine.Default()
}

// Figure is one renderable section: its registry key, display title
// and generator.
type Figure struct {
	Key, Title string
	Render     func(ctx context.Context, w io.Writer, cfg Config) error
}

// registry lists every figure in presentation ("-fig all") order.
var registry = []Figure{
	{"5a", "Fig 5(a)", func(_ context.Context, w io.Writer, _ Config) error {
		return dse.RenderFig5Case(w, dse.Fig5A())
	}},
	{"5b", "Fig 5(b)", func(_ context.Context, w io.Writer, _ Config) error {
		return dse.RenderFig5Case(w, dse.Fig5B())
	}},
	{"5c", "Fig 5(c)", func(_ context.Context, w io.Writer, _ Config) error {
		return dse.RenderFig5C(w, dse.Fig5C())
	}},
	{"6a", "Fig 6(a)", func(_ context.Context, w io.Writer, cfg Config) error {
		return dse.RenderFig6A(w, dse.Fig6A(cfg.GridN, cfg.GridN))
	}},
	{"6b", "Fig 6(b)", func(_ context.Context, w io.Writer, _ Config) error {
		pts, err := dse.Fig6B([]float64{1e-2, 1e-4, 1e-6})
		if err != nil {
			return err
		}
		return dse.RenderFig6B(w, pts)
	}},
	{"6c", "Fig 6(c)", func(_ context.Context, w io.Writer, _ Config) error {
		return dse.RenderFig6C(w, dse.Fig6C())
	}},
	{"7a", "Fig 7(a)", renderFig7A},
	{"7b", "Fig 7(b)", func(_ context.Context, w io.Writer, _ Config) error {
		rows, err := dse.Fig7B([]int{2, 4, 8, 12, 16})
		if err != nil {
			return err
		}
		return dse.RenderFig7B(w, rows)
	}},
	{"summary", "Summary", func(_ context.Context, w io.Writer, _ Config) error {
		s, err := dse.Summary()
		if err != nil {
			return err
		}
		return dse.RenderSummary(w, s)
	}},
	{"tradeoff", "Throughput-accuracy trade-off (§V.B extension)", func(_ context.Context, w io.Writer, _ Config) error {
		return renderTradeoff(w)
	}},
	{"sweep", "Accuracy vs stream length (word-parallel batch engine)", func(_ context.Context, w io.Writer, _ Config) error {
		const sweepPoints = 17
		rows, err := dse.StreamLengthSweep([]int{64, 256, 1024, 4096, 16384}, sweepPoints, 9)
		if err != nil {
			return err
		}
		return dse.RenderStreamLengthSweep(w, rows, sweepPoints)
	}},
	{"noise", "Monte-Carlo noise study (accuracy/BER vs length, probe power, sigma)", func(_ context.Context, w io.Writer, _ Config) error {
		spec, err := dse.DefaultNoiseStudySpec()
		if err != nil {
			return err
		}
		rows, err := dse.NoiseStudy(spec)
		if err != nil {
			return err
		}
		return dse.RenderNoiseStudy(w, rows, spec)
	}},
	{"edge", "Image PSNR vs stream length (packed tiled engine)", func(_ context.Context, w io.Writer, _ Config) error {
		rows, err := dse.EdgeStudy([]int{64, 256, 1024, 4096}, 7)
		if err != nil {
			return err
		}
		return dse.RenderEdgeStudy(w, rows)
	}},
	{"waterfall", "BER waterfall (parallel over probe powers)", renderWaterfall},
	{"trace", "Transient waveform (word-parallel trace)", renderTrace},
	{"video", "Gamma video batch (cross-frame LUT cache)", renderVideo},
	{"yield", "Process-variation yield study (checkpointable)", renderYieldStudy},
	{"ablation", "Ablations", renderAblations},
}

// All returns the registry in presentation order.
func All() []Figure {
	out := make([]Figure, len(registry))
	copy(out, registry)
	return out
}

// Get resolves a figure by key.
func Get(key string) (Figure, bool) {
	for _, f := range registry {
		if f.Key == key {
			return f, true
		}
	}
	return Figure{}, false
}

// Keys lists every registered key in presentation order.
func Keys() []string {
	keys := make([]string, len(registry))
	for i, f := range registry {
		keys[i] = f.Key
	}
	return keys
}

// SortedKeys lists every registered key sorted — the order every
// "unknown figure" error message uses, so error text is deterministic
// and diffable.
func SortedKeys() []string {
	keys := Keys()
	sort.Strings(keys)
	return keys
}

func renderFig7A(_ context.Context, w io.Writer, cfg Config) error {
	series, err := dse.Fig7A([]int{2, 4, 6}, cfg.SweepN)
	if err != nil {
		return err
	}
	if err := dse.RenderFig7A(w, series); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nn=2 curves (chart):"); err != nil {
		return err
	}
	chartPts := core.NewEnergyModel(2).Sweep(0.11, 0.3, 48)
	if err := dse.RenderEnergyChartASCII(w, chartPts, 96, 18, 70); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	profile, err := dse.ApplicationProfile()
	if err != nil {
		return err
	}
	return dse.RenderApplicationProfile(w, profile)
}

func renderAblations(ctx context.Context, w io.Writer, cfg Config) error {
	if err := dse.RenderRingSensitivity(w, dse.RingSensitivity([]float64{0.75, 1.0, 1.25, 1.5})); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	rows, err := dse.APDComparison(1e-6)
	if err != nil {
		return err
	}
	if err := dse.RenderAPDComparison(w, rows, 1e-6); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	ps, err := dse.ParallelScaling([]int{1, 4, 16, 64}, 256)
	if err != nil {
		return err
	}
	if err := dse.RenderParallelScaling(w, ps, 256); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := core.MustCircuit(core.PaperParams()).ComputeLinkBudget().Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return renderYield(ctx, w, cfg)
}

func renderYield(ctx context.Context, w io.Writer, cfg Config) error {
	if _, err := fmt.Fprintln(w, "Monte-Carlo process variation (ring resonance σ, 200 dies, BER target 1e-6):"); err != nil {
		return err
	}
	p := core.PaperParams()
	t := dse.NewTable("resonance σ (nm)", "yield", "mean eye (mW)", "worst BER")
	for _, sigma := range []float64{0.01, 0.05, 0.1, 0.2} {
		r, err := core.AnalyzeYieldCtx(ctx, cfg.engine(), p, core.VariationSpec{
			RingResonanceSigmaNM: sigma,
			Samples:              200,
			Seed:                 99,
			TargetBER:            1e-6,
		})
		if err != nil {
			return err
		}
		t.AddRow(
			fmt.Sprintf("%.2f", sigma),
			fmt.Sprintf("%.1f%%", r.Yield*100),
			fmt.Sprintf("%.4f", r.MeanEyeMW),
			fmt.Sprintf("%.3g", r.WorstBER),
		)
	}
	return t.Render(w)
}

// yieldCheckpointEvery is the save cadence of the checkpointed yield
// study: a durable snapshot every this many completed dies
// (count-based so the cadence is deterministic).
const yieldCheckpointEvery = 10

// YieldStudySpec is the standard yield study shape for a given die
// count — shared by the renderer and by serve's /v1/yield endpoint so
// both run (and checkpoint) the identical sweep.
func YieldStudySpec(samples int) dse.YieldStudy {
	return dse.YieldStudy{
		Params:    core.PaperParams(),
		SigmasNM:  []float64{0.01, 0.05, 0.1, 0.2},
		Samples:   samples,
		Seed:      99,
		TargetBER: 1e-6,
	}
}

// renderYieldStudy regenerates the standalone yield figure: one row
// per ring-resonance sigma, Samples dies each, dispatched die-by-die
// on the configured engine. With Checkpoint set the completed dies
// snapshot to disk (and survive SIGINT); with Resume a matching
// snapshot is loaded first and only the missing dies re-run — the
// reassembled figure is bit-identical to an uninterrupted run.
//
// With ShardN > 0 the run computes only shard ShardK's dies into a
// shard-tagged snapshot (dse.ShardCheckpointPath) and reports its
// progress instead of a table; merging the family's snapshots with
// oscmerge yields a complete checkpoint any unsharded -resume run
// renders byte-identical to a run that never sharded.
func renderYieldStudy(ctx context.Context, w io.Writer, cfg Config) error {
	s := YieldStudySpec(cfg.Samples)
	sharded := cfg.ShardN > 0
	if sharded && cfg.Checkpoint == "" {
		return fmt.Errorf("sharded yield run needs a checkpoint file: shard %d/%d's output is its snapshot", cfg.ShardK, cfg.ShardN)
	}
	var points []dse.YieldPoint
	var err error
	if cfg.Checkpoint != "" {
		path := cfg.Checkpoint
		eng := cfg.engine()
		if sharded {
			path = dse.ShardCheckpointPath(cfg.Checkpoint, cfg.ShardK, cfg.ShardN)
			eng = engine.Shard{K: cfg.ShardK, N: cfg.ShardN, Inner: eng}
		}
		cp := dse.NewCheckpointer[core.DieOutcome](path, yieldCheckpointEvery, s.Key())
		if cfg.Resume {
			restored, lerr := cp.Load()
			if lerr != nil {
				return lerr
			}
			if _, perr := fmt.Fprintf(w, "resumed %d/%d dies from %s\n", restored, s.N(), path); perr != nil {
				return perr
			}
		}
		points, err = s.RunCheckpointed(ctx, eng, cp)
		if sharded && errors.Is(err, engine.ErrShardRemainder) {
			// This shard's slice is complete and on disk — the expected
			// end state of a distributed leg, not a failure.
			completed := 0
			var p *engine.Partial
			if errors.As(err, &p) {
				completed = p.Completed
			}
			_, werr := fmt.Fprintf(w, "shard %d/%d: %d/%d dies complete in %s; assemble the study with oscmerge, then render with -checkpoint <merged> -resume\n",
				cfg.ShardK, cfg.ShardN, completed, s.N(), path)
			return werr
		}
	} else {
		points, err = s.RunCtx(ctx, cfg.engine())
	}
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%d dies per sigma, BER target %g, seed %d:\n", s.Samples, s.TargetBER, s.Seed); err != nil {
		return err
	}
	t := dse.NewTable("resonance σ (nm)", "yield", "mean eye (mW)", "worst BER")
	for _, pt := range points {
		t.AddRow(
			fmt.Sprintf("%.2f", pt.SigmaNM),
			fmt.Sprintf("%.1f%%", pt.Result.Yield*100),
			fmt.Sprintf("%.4f", pt.Result.MeanEyeMW),
			fmt.Sprintf("%.3g", pt.Result.WorstBER),
		)
	}
	return t.Render(w)
}

// renderWaterfall regenerates the BER waterfall: worst-case measured
// vs Eq. (9) analytic BER across probe powers sized for BER 1e-1 down
// to 1e-4. The points fan over the worker pool with per-point derived
// seeds, so the table is identical at any worker count.
func renderWaterfall(ctx context.Context, w io.Writer, cfg Config) error {
	base := core.PaperParams()
	c := core.MustCircuit(base)
	powers := []float64{
		c.MinProbePowerMW(1e-1),
		c.MinProbePowerMW(1e-2),
		c.MinProbePowerMW(1e-3),
		c.MinProbePowerMW(1e-4),
	}
	pts, err := transient.BERWaterfallCtx(ctx, cfg.engine(), base, powers, 200_000, 29)
	if err != nil {
		return err
	}
	t := dse.NewTable("probe (mW)", "measured BER", "analytic BER")
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%.4f", p.ProbeMW), fmt.Sprintf("%.3g", p.MeasuredBER), fmt.Sprintf("%.3g", p.AnalyticBER))
	}
	return t.Render(w)
}

// renderTrace regenerates the pulse-gated transient waveform on a
// deliberately hot link (probe sized for BER 1e-3), one row per slot:
// the decision bit and the gated received-power peak. The trace runs
// word-parallel (core.Unit.Cycles + block noise) and is single-stream,
// so the table is identical at any worker count.
func renderTrace(_ context.Context, w io.Writer, _ Config) error {
	p := core.PaperParams()
	p.ProbePowerMW = core.MustCircuit(p).MinProbePowerMW(1e-3)
	c, err := core.NewCircuit(p)
	if err != nil {
		return err
	}
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 7)
	if err != nil {
		return err
	}
	sim := transient.NewSimulator(u, 8)
	const bits, spb = 16, 8
	tr, err := sim.Trace(0.5, bits, spb)
	if err != nil {
		return err
	}
	t := dse.NewTable("slot", "bit", "gated peak (mW)")
	for b := 0; b < bits; b++ {
		peak := 0.0
		for k := 0; k < spb; k++ {
			if pt := tr[b*spb+k]; pt.Gated && pt.ReceivedMW > peak {
				peak = pt.ReceivedMW
			}
		}
		t.AddRow(fmt.Sprint(b), fmt.Sprint(tr[b*spb].Bit), fmt.Sprintf("%.4f", peak))
	}
	return t.Render(w)
}

// renderVideo regenerates the gamma video batch: four synthetic
// frames corrected through one cached LUT (built once per recipe,
// applied per frame over the pool), scored against the exact
// transfer function.
func renderVideo(ctx context.Context, w io.Writer, cfg Config) error {
	frames := []*img.Gray{
		img.Gradient(48, 32),
		img.Radial(48, 32),
		img.Checkerboard(48, 32, 6, 40, 210),
		img.Gradient(48, 32),
	}
	var cache img.GammaLUTCache
	out, err := img.GammaVideoCtx(ctx, cfg.engine(), frames, 0.45, 6, 0.3, 1024, 13, &cache)
	if err != nil {
		return err
	}
	t := dse.NewTable("frame", "PSNR vs exact (dB)", "MAE")
	for i, f := range out {
		exact := img.GammaExact(frames[i], 0.45)
		t.AddRow(fmt.Sprint(i), fmt.Sprintf("%.2f", img.PSNR(exact, f)), fmt.Sprintf("%.3f", img.MeanAbsoluteError(exact, f)))
	}
	return t.Render(w)
}

func renderTradeoff(w io.Writer) error {
	// Size the paper circuit for a deliberately noisy 1e-2 link, then
	// show RMSE vs stream length with the implied throughput.
	p := core.PaperParams()
	p.ProbePowerMW = core.MustCircuit(p).MinProbePowerMW(1e-2)
	c, err := core.NewCircuit(p)
	if err != nil {
		return err
	}
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 7)
	if err != nil {
		return err
	}
	sim := transient.NewSimulator(u, 8)
	if _, err := fmt.Fprintf(w, "probe sized for BER 1e-2: %.4f mW; analytic worst-case BER %.2e\n\n",
		p.ProbePowerMW, sim.AnalyticWorstCaseBER()); err != nil {
		return err
	}
	pts, err := sim.AccuracyVsLength(0.5, []int{64, 256, 1024, 4096, 16384}, 30)
	if err != nil {
		return err
	}
	t := dse.NewTable("stream length", "RMSE", "results/s @1 Gb/s")
	for _, pt := range pts {
		t.AddRow(fmt.Sprint(pt.StreamLen), fmt.Sprintf("%.4f", pt.RMSE), fmt.Sprintf("%.3g", pt.ThroughputResultsPerSec))
	}
	return t.Render(w)
}
