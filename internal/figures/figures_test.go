package figures

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
)

func TestSortedKeysSortedAndComplete(t *testing.T) {
	keys := SortedKeys()
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("SortedKeys() = %v, want sorted", keys)
	}
	if len(keys) != len(Keys()) {
		t.Fatalf("SortedKeys has %d keys, Keys has %d", len(keys), len(Keys()))
	}
	seen := make(map[string]bool, len(keys))
	for _, k := range Keys() {
		seen[k] = true
	}
	for _, k := range keys {
		if !seen[k] {
			t.Errorf("SortedKeys key %q missing from Keys", k)
		}
	}
}

func TestGetRoundTrip(t *testing.T) {
	for _, k := range Keys() {
		f, ok := Get(k)
		if !ok {
			t.Errorf("Get(%q) not found", k)
			continue
		}
		if f.Key != k {
			t.Errorf("Get(%q).Key = %q", k, f.Key)
		}
		if f.Title == "" || f.Render == nil {
			t.Errorf("figure %q incomplete: %+v", k, f)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get of unknown key succeeded")
	}
	if len(All()) != len(Keys()) {
		t.Errorf("All() has %d figures, Keys() %d", len(All()), len(Keys()))
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Config)
		wantE string
	}{
		{"defaults ok", func(*Config) {}, ""},
		{"grid too small", func(c *Config) { c.GridN = 1 }, "-grid"},
		{"sweep too small", func(c *Config) { c.SweepN = 1 }, "-sweep"},
		{"samples zero", func(c *Config) { c.Samples = 0 }, "-samples"},
	}
	for _, tc := range cases {
		cfg := Defaults()
		tc.mut(&cfg)
		err := cfg.Validate()
		if tc.wantE == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantE) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantE)
		}
	}
}

// TestRenderEngineHonored: a figure render dispatches on the Config's
// engine, not the process default, so services can pin their own.
func TestRenderEngineHonored(t *testing.T) {
	f, ok := Get("5a")
	if !ok {
		t.Fatal("figure 5a not registered")
	}
	cfg := Defaults()
	cfg.Engine = engine.Serial
	var a bytes.Buffer
	if err := f.Render(context.Background(), &a, cfg); err != nil {
		t.Fatalf("render on Serial: %v", err)
	}
	cfg.Engine = engine.WordParallel
	var b bytes.Buffer
	if err := f.Render(context.Background(), &b, cfg); err != nil {
		t.Fatalf("render on WordParallel: %v", err)
	}
	if a.String() != b.String() {
		t.Error("5a output differs across engines (determinism contract broken)")
	}
	if a.Len() == 0 {
		t.Error("5a rendered empty output")
	}
}
