package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer report, anchored to a source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
	// Suppressed marks findings covered by an //osclint:ignore
	// comment; Reason carries the annotation's justification. Run
	// filters suppressed findings out unless Options.All is set.
	Suppressed bool
	Reason     string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
	if f.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", f.Reason)
	}
	return s
}

// findingJSON is the -json wire form of a Finding.
type findingJSON struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// WriteJSON emits the findings as a JSON array (machine-readable form
// behind `osclint -json`).
func WriteJSON(w io.Writer, fs []Finding) error {
	out := make([]findingJSON, len(fs))
	for i, f := range fs {
		out[i] = findingJSON{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Rule: f.Rule, Message: f.Message,
			Suppressed: f.Suppressed, Reason: f.Reason,
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", buf)
	return err
}

// Analyzer is one named rule: a pure function from a loaded package to
// findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// Analyzers lists every rule in the suite, in report order.
var Analyzers = []*Analyzer{DetRand, MapIter, OraclePair, ErrProp, HotAlloc}

// AnalyzerNames returns the registered rule names.
func AnalyzerNames() []string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	return names
}

// Options configures a Run.
type Options struct {
	// Rules restricts the run to the named analyzers (nil = all).
	Rules []string
	// All keeps suppressed findings in the result, marked, instead of
	// filtering them.
	All bool
}

// Run loads every package matched by the patterns (relative to the
// module root), runs the selected analyzers and returns the findings
// sorted by position. Suppressed findings are filtered out unless
// opt.All is set; malformed //osclint:ignore comments are themselves
// reported under the "ignore" pseudo-rule.
func Run(modRoot string, patterns []string, opt Options) ([]Finding, error) {
	l, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	dirs, err := ExpandPatterns(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	selected, err := selectAnalyzers(opt.Rules)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, dir := range dirs {
		p, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		if p == nil { // no buildable Go files (e.g. test-only dir)
			continue
		}
		sup, bad := scanSuppressions(p)
		findings = append(findings, bad...)
		for _, a := range selected {
			for _, f := range a.Run(p) {
				if reason, ok := sup.covers(f); ok {
					f.Suppressed, f.Reason = true, reason
				}
				findings = append(findings, f)
			}
		}
	}
	if !opt.All {
		kept := findings[:0]
		for _, f := range findings {
			if !f.Suppressed {
				kept = append(kept, f)
			}
		}
		findings = kept
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

func selectAnalyzers(rules []string) ([]*Analyzer, error) {
	if len(rules) == 0 {
		return Analyzers, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, r := range rules {
		a := byName[strings.TrimSpace(r)]
		if a == nil {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", r, strings.Join(AnalyzerNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// ExpandPatterns resolves go-style package patterns ("./...",
// "./internal/...", "cmd/osclint") into the list of directories under
// root that contain .go files. Directories named testdata, vendor, or
// starting with "." or "_" are skipped, matching the go tool's walk.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" || pat == "." {
			pat = root
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(root, pat)
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			if hasGoFiles(pat) {
				add(pat)
			}
			continue
		}
		err = filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
