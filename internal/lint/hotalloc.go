package lint

import (
	"go/ast"
)

// HotAlloc supports the ROADMAP zero-alloc push: inside a closure
// handed to parallel.For/ForWorker/Run (or their ctx variants) or to
// an evaluation engine's For/ForWorker (internal/engine;
// engine.Chunked and the cancellable ForCtx/ForWorkerCtx/RunCtx
// included), per-item
// `make` calls, growing `append`s, and fmt.Sprint* formatting multiply
// allocations by the item count. The fix is the ForWorker per-worker
// scratch pattern (O(workers) allocations, see image.RobertsCrossSC)
// or hoisting the buffer outside the fan-out. Results that must be
// written per item (`out[i] = ...`) are unaffected — only fresh
// allocations inside the body are flagged.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no per-item make/append-growth/fmt.Sprint* inside worker bodies; use per-worker scratch",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !dispatchesWorkers(p, call) {
				return true
			}
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					out = append(out, checkHotBody(p, fl)...)
				}
			}
			return true
		})
	}
	return out
}

func checkHotBody(p *Package, fl *ast.FuncLit) []Finding {
	var out []Finding
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isBuiltin(p, call, "make"):
			out = append(out, p.Findingf(call, "hotalloc",
				"make inside a worker body allocates per item; "+
					"hoist into per-worker scratch (parallel.ForWorker worker index)"))
		case isBuiltin(p, call, "append"):
			out = append(out, p.Findingf(call, "hotalloc",
				"append inside a worker body may grow per item; "+
					"pre-size the destination or use per-worker scratch"))
		default:
			callee := p.Callee(call)
			if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				switch callee.Name() {
				case "Sprintf", "Sprint", "Sprintln", "Errorf":
					out = append(out, p.Findingf(call, "hotalloc",
						"fmt.%s inside a worker body allocates per item; "+
							"format outside the fan-out or into per-worker scratch", callee.Name()))
				}
			}
		}
		return true
	})
	return out
}
