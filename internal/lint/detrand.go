package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRand enforces the repo's determinism discipline:
//
//   - no time.Now and no global math/rand state in internal/ — every
//     result must replay bit-identically from explicit seeds;
//   - any worker closure passed to parallel.For/ForWorker/Run (or
//     their ctx variants) or to an evaluation engine's For/ForWorker
//     (internal/engine; engine.Chunked and the cancellable
//     ForCtx/ForWorkerCtx/RunCtx included) that constructs an RNG
//     must derive its
//     seed through stochastic.DeriveSeed (directly, or via a
//     same-package seed helper such as trialSeeds), so results are
//     identical at any GOMAXPROCS and under any scheduling.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "deterministic randomness: no wall-clock or global RNG state; worker closures seed via stochastic.DeriveSeed",
	Run:  runDetRand,
}

// rngConstructors are the seeded RNG constructors of
// internal/stochastic: constructing one inside a worker closure is
// only deterministic when the seed argument is index-derived.
var rngConstructors = map[string]bool{
	"NewSplitMix64":      true,
	"NewLFSR":            true,
	"NewChaoticSource":   true,
	"NewChaoticLaserSNG": true,
	"NewReSCWithSeeds":   true,
}

// pkgSuffixIs reports whether obj's package import path is path or
// ends in "/"+path — matching repo packages by module-relative suffix
// so fixture modules resolve identically.
func pkgSuffixIs(obj types.Object, path string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == path || strings.HasSuffix(p, "/"+path)
}

func isStochasticFunc(obj *types.Func, name string) bool {
	return obj != nil && obj.Name() == name && pkgSuffixIs(obj, "internal/stochastic")
}

// dispatchesWorkers reports whether the call hands worker closures to
// a fan-out primitive: internal/parallel's For/ForWorker/Run and
// their context-aware ForCtx/ForWorkerCtx, or the engine layer's
// Engine.For/ForWorker, engine.Chunked and the cancellable
// ForCtx/ForWorkerCtx/RunCtx — the worker closures both analyzers
// inspect. The ctx variants stop early but never re-run an item, so
// the same determinism and allocation rules apply to their closures.
func dispatchesWorkers(p *Package, call *ast.CallExpr) bool {
	callee := p.Callee(call)
	if callee == nil {
		return false
	}
	switch {
	case pkgSuffixIs(callee, "internal/parallel"):
		switch callee.Name() {
		case "For", "ForWorker", "Run", "ForCtx", "ForWorkerCtx":
			return true
		}
	case pkgSuffixIs(callee, "internal/engine"):
		switch callee.Name() {
		case "For", "ForWorker", "Chunked", "ForCtx", "ForWorkerCtx", "RunCtx":
			return true
		}
	}
	return false
}

func runDetRand(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if p.IsInternal() {
			out = append(out, detRandWallClock(p, f)...)
		}
		out = append(out, detRandWorkers(p, f)...)
	}
	return out
}

// detRandWallClock flags time.Now and global math/rand usage in
// internal/ files.
func detRandWallClock(p *Package, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "time":
			if obj.Name() == "Now" {
				out = append(out, p.Findingf(id, "detrand",
					"time.Now in internal/ breaks deterministic replay; thread an explicit seed instead"))
			}
		case "math/rand", "math/rand/v2":
			// Package-level functions draw from the shared global
			// source; constructors (New, NewSource, NewPCG, ...) are
			// fine when seeded deterministically.
			if obj.Type().(*types.Signature).Recv() == nil && !strings.HasPrefix(obj.Name(), "New") {
				out = append(out, p.Findingf(id, "detrand",
					"global %s.%s draws from shared process-wide state; construct a seeded generator instead",
					obj.Pkg().Name(), obj.Name()))
			}
		}
		return true
	})
	return out
}

// detRandWorkers checks every closure handed to a fan-out primitive
// (the parallel pool or an evaluation engine): if it constructs an
// RNG, the seed must flow through stochastic.DeriveSeed, either in the
// closure body or inside a same-package helper the closure calls (the
// trialSeeds pattern).
func detRandWorkers(p *Package, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !dispatchesWorkers(p, call) {
			return true
		}
		for _, arg := range call.Args {
			if fl, ok := arg.(*ast.FuncLit); ok {
				out = append(out, checkWorkerBody(p, fl)...)
			}
		}
		return true
	})
	return out
}

func checkWorkerBody(p *Package, fl *ast.FuncLit) []Finding {
	var ctors []*ast.CallExpr
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := p.Callee(call)
		if obj == nil {
			return true
		}
		if rngConstructors[obj.Name()] && pkgSuffixIs(obj, "internal/stochastic") {
			ctors = append(ctors, call)
		}
		if (obj.Pkg() != nil && (obj.Pkg().Path() == "math/rand" || obj.Pkg().Path() == "math/rand/v2")) &&
			strings.HasPrefix(obj.Name(), "New") {
			ctors = append(ctors, call)
		}
		return true
	})
	if len(ctors) == 0 {
		return nil
	}
	if referencesDeriveSeed(p, fl.Body) {
		return nil
	}
	// One level of indirection: a same-package function or method
	// called from the closure (trialSeeds, waterfallSeeds, ...) that
	// itself uses DeriveSeed satisfies the rule.
	if helperDerivesSeed(p, fl.Body) {
		return nil
	}
	var out []Finding
	for _, c := range ctors {
		out = append(out, p.Findingf(c, "detrand",
			"RNG constructed in a worker body without stochastic.DeriveSeed; "+
				"derive the seed from the item index for cross-worker determinism"))
	}
	return out
}

// referencesDeriveSeed reports whether any identifier in the subtree
// resolves to stochastic.DeriveSeed.
func referencesDeriveSeed(p *Package, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := p.Info.Uses[id].(*types.Func); ok && isStochasticFunc(obj, "DeriveSeed") {
				found = true
			}
		}
		return true
	})
	return found
}

// helperDerivesSeed looks one call level deep: every same-package
// function invoked from the worker body is checked for a DeriveSeed
// reference in its declaration body.
func helperDerivesSeed(p *Package, body ast.Node) bool {
	decls := p.funcDecls()
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := p.Callee(call)
		if obj == nil || obj.Pkg() == nil || p.Types == nil || obj.Pkg() != p.Types {
			return true
		}
		if d := decls[obj]; d != nil && d.Body != nil && referencesDeriveSeed(p, d.Body) {
			found = true
		}
		return true
	})
	return found
}

// funcDecls maps this package's function objects to their syntax.
func (p *Package) funcDecls() map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					m[obj] = fd
				}
			}
		}
	}
	return m
}
