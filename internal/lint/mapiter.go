package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags the renderer-nondeterminism bug class caught at
// runtime by PR 5's CI smoke diff (optics.RenderSpectrumASCII): a
// `range` over a map whose body feeds ordered output — appending to a
// slice, writing to an io.Writer, sending on a channel, or building a
// string — leaks Go's randomized iteration order into results unless
// the keys are collected and sorted first. The collect-then-sort
// idiom passes: an append-only body is clean when the destination
// slice is passed to a sort.* / slices.Sort* call later in the same
// enclosing block.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "map iteration feeding ordered output must sort: collect keys, sort, then emit",
	Run:  runMapIter,
}

func runMapIter(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		walkStmtLists(f, func(list []ast.Stmt) {
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				tv, ok := p.Info.Types[rs.X]
				if !ok {
					continue
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					continue
				}
				out = append(out, checkMapRange(p, rs, list[i+1:])...)
			}
		})
	}
	return out
}

// walkStmtLists invokes fn on every statement list in the file —
// block bodies, case clauses, comm clauses — so a range statement can
// be analyzed against the statements that follow it in its own block.
func walkStmtLists(f *ast.File, fn func([]ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			fn(s.List)
		case *ast.CaseClause:
			fn(s.Body)
		case *ast.CommClause:
			fn(s.Body)
		}
		return true
	})
}

// mapSinks classifies order-sensitive effects inside a map-range body.
type mapSinks struct {
	// writes are sinks whose ordering escapes immediately: io.Writer /
	// fmt.Fprint calls, channel sends, string concatenation, table
	// row appends.
	writes []ast.Node
	// appends records destination slice objects with their first
	// append site, in source order; these are fixable by a later sort.
	appends []appendSink
}

type appendSink struct {
	obj  types.Object
	site ast.Node
}

// orderedSinkMethods are method names treated as ordered-output sinks
// when called inside a map range: io.Writer implementations and the
// repo's table/chart builders.
var orderedSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "AddRowf": true, "Render": true,
}

func checkMapRange(p *Package, rs *ast.RangeStmt, rest []ast.Stmt) []Finding {
	sinks := collectMapSinks(p, rs.Body)
	var out []Finding
	for _, w := range sinks.writes {
		out = append(out, p.Findingf(w, "mapiter",
			"ordered output inside map iteration: map order is randomized per run; "+
				"collect keys, sort, then emit"))
	}
	for _, a := range sinks.appends {
		if sortedAfter(p, rest, a.obj) {
			continue
		}
		out = append(out, p.Findingf(a.site, "mapiter",
			"slice %q built from map iteration is never sorted afterwards in this block; "+
				"sort it (or the keys) before the order can leak", a.obj.Name()))
	}
	return out
}

func collectMapSinks(p *Package, body *ast.BlockStmt) mapSinks {
	var sinks mapSinks
	seen := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			sinks.writes = append(sinks.writes, s)
		case *ast.AssignStmt:
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
				if t := p.Info.TypeOf(s.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						sinks.writes = append(sinks.writes, s)
					}
				}
			}
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(p, call, "append") || i >= len(s.Lhs) {
					continue
				}
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					if obj := p.objectOf(id); obj != nil {
						if !seen[obj] {
							seen[obj] = true
							sinks.appends = append(sinks.appends, appendSink{obj, call})
						}
						continue
					}
				}
				sinks.writes = append(sinks.writes, call)
			}
		case *ast.CallExpr:
			if callee := p.Callee(s); callee != nil && callee.Pkg() != nil {
				if callee.Pkg().Path() == "fmt" && (callee.Name() == "Fprint" || callee.Name() == "Fprintf" ||
					callee.Name() == "Fprintln" || callee.Name() == "Print" || callee.Name() == "Printf" ||
					callee.Name() == "Println") {
					sinks.writes = append(sinks.writes, s)
					return true
				}
				if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil &&
					orderedSinkMethods[callee.Name()] {
					sinks.writes = append(sinks.writes, s)
				}
			}
		}
		return true
	})
	return sinks
}

// sortedAfter reports whether obj is passed to a sort.* or
// slices.Sort* call in the statements following the range loop.
func sortedAfter(p *Package, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.Callee(call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if pkg := callee.Pkg().Path(); pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				argFound := false
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && p.objectOf(id) == obj {
						argFound = true
					}
					return !argFound
				})
				if argFound {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isBuiltin(p *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

// objectOf resolves an identifier through both uses and defs (`:=`
// introduces the object in Defs, later writes land in Uses).
func (p *Package) objectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}
