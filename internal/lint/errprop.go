package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrProp flags discarded error returns in cmd/ and internal/ — the
// PR 2 `oscspice` bug class, where evaluation errors were silently
// swallowed and the tool exited zero on garbage. Both forms are
// caught: blank assignments (`_ = f()`, `v, _ := f()` where the
// blank slot is the error) and bare call statements whose results
// include an error. `defer` and `go` statements are exempt (the
// `defer f.Close()` idiom), as are fmt.Print* to stdout and methods
// on strings.Builder / bytes.Buffer, which cannot fail.
var ErrProp = &Analyzer{
	Name: "errprop",
	Doc:  "errors must propagate: no discarded error returns in cmd/ and internal/",
	Run:  runErrProp,
}

func runErrProp(p *Package) []Finding {
	if !p.IsCmd() && !p.IsInternal() {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok || !returnsError(p, call) || allowedBare(p, call) {
					return true
				}
				out = append(out, p.Findingf(s, "errprop",
					"call discards its error result; propagate it or annotate why it cannot fail"))
			case *ast.AssignStmt:
				out = append(out, checkBlankAssign(p, s)...)
			}
			return true
		})
	}
	return out
}

// returnsError reports whether the call's results include the error
// type.
func returnsError(p *Package, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if IsErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return IsErrorType(t)
}

// allowedBare lists the error-returning calls that are conventionally
// fine as bare statements: printing to the process's own stdout or
// stderr (the error is unactionable — the usage/exit boilerplate in
// every main) and writes into in-memory buffers (defined to never
// fail).
func allowedBare(p *Package, call *ast.CallExpr) bool {
	callee := p.Callee(call)
	if callee == nil {
		return false
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		switch callee.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 && isOSStdStream(p, call.Args[0]) {
				return true
			}
		}
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		name := recv.String()
		if strings.HasSuffix(name, "strings.Builder") || strings.HasSuffix(name, "bytes.Buffer") {
			return true
		}
	}
	return false
}

// isOSStdStream reports whether the expression is os.Stderr or
// os.Stdout.
func isOSStdStream(p *Package, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stderr" || obj.Name() == "Stdout"
}

// checkBlankAssign flags blank identifiers bound to error values.
func checkBlankAssign(p *Package, s *ast.AssignStmt) []Finding {
	var out []Finding
	flag := func(n ast.Node) {
		out = append(out, p.Findingf(n, "errprop",
			"error result assigned to _; propagate it or annotate why it is safe to drop"))
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// v, _ := f() — match blank slots against the call's tuple.
		tuple, ok := p.Info.TypeOf(s.Rhs[0]).(*types.Tuple)
		if !ok {
			return nil
		}
		for i, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" &&
				i < tuple.Len() && IsErrorType(tuple.At(i).Type()) {
				flag(s)
			}
		}
		return out
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && IsErrorType(p.Info.TypeOf(s.Rhs[i])) {
			flag(s)
		}
	}
	return out
}
