package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// OraclePair enforces the repo's oracle discipline: every exported
// word-parallel engine X with a retained bit-serial sibling XSerial
// must be pinned by a _test.go file in the same package that
// references both identifiers — the equivalence test that keeps the
// pair bit-identical. Without it a new engine can land "paired" with
// an oracle nothing ever compares against.
var OraclePair = &Analyzer{
	Name: "oraclepair",
	Doc:  "every X/XSerial engine pair needs a test referencing both (the equivalence pin)",
	Run:  runOraclePair,
}

func runOraclePair(p *Package) []Finding {
	if !p.IsInternal() {
		return nil
	}
	// Exported top-level functions and methods, by name.
	decls := map[string]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.IsExported() {
				if _, seen := decls[fd.Name.Name]; !seen {
					decls[fd.Name.Name] = fd
				}
			}
		}
	}
	var out []Finding
	names := make([]string, 0, len(decls))
	for name := range decls {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic report order
	for _, name := range names {
		base, isSerial := strings.CutSuffix(name, "Serial")
		if !isSerial || base == "" || !ast.IsExported(base) {
			continue
		}
		if _, ok := decls[base]; !ok {
			continue
		}
		if pairTested(p, base, name) {
			continue
		}
		out = append(out, p.Findingf(decls[name].Name, "oraclepair",
			"oracle pair %s/%s has no test referencing both; add an equivalence test pinning them bit-identical",
			base, name))
	}
	return out
}

// pairTested reports whether a single test file references both
// identifiers.
func pairTested(p *Package, base, serial string) bool {
	for _, tf := range p.TestFiles {
		if referencesName(tf, base) && referencesName(tf, serial) {
			return true
		}
	}
	return false
}

func referencesName(f *ast.File, name string) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
