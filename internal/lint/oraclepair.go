package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// OraclePair enforces the repo's oracle discipline, in two parts.
//
// Part one (the retained X/XSerial check): every exported
// word-parallel engine X with a retained bit-serial sibling XSerial
// must be pinned by a _test.go file in the same package that
// references both identifiers — the equivalence test that keeps the
// pair bit-identical. Without it a new engine can land "paired" with
// an oracle nothing ever compares against.
//
// Part two (the suite-registration check): every exported entry point
// that accepts an engine.Engine parameter must be registered in the
// generic cross-engine equivalence suite — referenced from a _test.go
// file in the same package that calls enginetest.Run. The suite is
// what replays the entry point on every registered engine against the
// engine.Serial reference; an unregistered entry point dispatches work
// nothing ever cross-checks.
var OraclePair = &Analyzer{
	Name: "oraclepair",
	Doc:  "X/XSerial pairs need an equivalence test; engine-accepting entry points must register in the enginetest suite",
	Run:  runOraclePair,
}

func runOraclePair(p *Package) []Finding {
	if !p.IsInternal() {
		return nil
	}
	out := runPairCheck(p)
	out = append(out, runSuiteCheck(p)...)
	return out
}

func runPairCheck(p *Package) []Finding {
	// Exported top-level functions and methods, by name.
	decls := map[string]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.IsExported() {
				if _, seen := decls[fd.Name.Name]; !seen {
					decls[fd.Name.Name] = fd
				}
			}
		}
	}
	var out []Finding
	names := make([]string, 0, len(decls))
	for name := range decls {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic report order
	for _, name := range names {
		base, isSerial := strings.CutSuffix(name, "Serial")
		if !isSerial || base == "" || !ast.IsExported(base) {
			continue
		}
		if _, ok := decls[base]; !ok {
			continue
		}
		if pairTested(p, base, name) {
			continue
		}
		out = append(out, p.Findingf(decls[name].Name, "oraclepair",
			"oracle pair %s/%s has no test referencing both; add an equivalence test pinning them bit-identical",
			base, name))
	}
	return out
}

// runSuiteCheck is part two: exported functions and methods with an
// engine.Engine parameter must appear in a test file that invokes
// enginetest.Run. The engine layer itself (internal/engine and its
// subpackages) is exempt — its Register/Get/Use plumbing takes Engine
// values without dispatching domain work.
func runSuiteCheck(p *Package) []Finding {
	if strings.HasSuffix(p.Path, "/internal/engine") ||
		strings.Contains(p.Path, "/internal/engine/") {
		return nil
	}
	suite := suiteFiles(p)
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !hasEngineParam(p, fd) {
				continue
			}
			if inSuite(suite, fd.Name.Name) {
				continue
			}
			out = append(out, p.Findingf(fd.Name, "oraclepair",
				"engine entry point %s is not registered in the cross-engine suite; add an enginetest.Case for it in a test file that calls enginetest.Run",
				fd.Name.Name))
		}
	}
	return out
}

// hasEngineParam reports whether the declaration takes a parameter
// that dispatches on the engine layer: the Engine interface itself or
// any concrete internal/engine type implementing it (engine.Shard,
// *engine.Chaos, ...). Concrete wrappers count because an entry point
// taking one fans work out exactly like an interface-typed one — its
// closures are worker bodies the suite must cross-check.
func hasEngineParam(p *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok {
			continue
		}
		if isEngineType(tv.Type) {
			return true
		}
	}
	return false
}

// isEngineType reports whether t is the internal/engine Engine
// interface or an internal/engine named type (or pointer to one)
// implementing it.
func isEngineType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		ptr, isPtr := t.(*types.Pointer)
		if !isPtr {
			return false
		}
		if named, ok = ptr.Elem().(*types.Named); !ok {
			return false
		}
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pkgSuffixIs(obj, "internal/engine") {
		return false
	}
	if obj.Name() == "Engine" {
		return true
	}
	ifaceObj := obj.Pkg().Scope().Lookup("Engine")
	if ifaceObj == nil {
		return false
	}
	iface, ok := ifaceObj.Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// suiteFiles returns the package's test files that call enginetest.Run
// (through whatever local name the import is bound to).
func suiteFiles(p *Package) []*ast.File {
	var out []*ast.File
	for _, tf := range p.TestFiles {
		local := enginetestImportName(tf)
		if local == "" || local == "_" {
			continue
		}
		calls := false
		ast.Inspect(tf, func(n ast.Node) bool {
			if calls {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Run" {
				if x, ok := sel.X.(*ast.Ident); ok && x.Name == local {
					calls = true
				}
			}
			return true
		})
		if calls {
			out = append(out, tf)
		}
	}
	return out
}

// enginetestImportName returns the local name a file binds the
// enginetest package to, or "" when the file does not import it. Test
// files are parsed but not type-checked, so the check is syntactic on
// the import path suffix.
func enginetestImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "internal/engine/enginetest" || strings.HasSuffix(path, "/internal/engine/enginetest") {
			if imp.Name != nil {
				return imp.Name.Name
			}
			return "enginetest"
		}
	}
	return ""
}

// inSuite reports whether any suite file references the identifier.
func inSuite(suite []*ast.File, name string) bool {
	for _, tf := range suite {
		if referencesName(tf, name) {
			return true
		}
	}
	return false
}

// pairTested reports whether a single test file references both
// identifiers.
func pairTested(p *Package, base, serial string) bool {
	for _, tf := range p.TestFiles {
		if referencesName(tf, base) && referencesName(tf, serial) {
			return true
		}
	}
	return false
}

func referencesName(f *ast.File, name string) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
