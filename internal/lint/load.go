package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: parsed syntax for every
// file in the directory (test files included) plus go/types info for
// the non-test files. Analyzers consume this and nothing else.
type Package struct {
	Path string // import path, e.g. repro/internal/optics
	Dir  string
	Fset *token.FileSet
	// Files are the non-test files, sorted by filename — the
	// type-checked compilation unit.
	Files []*ast.File
	// TestFiles are the package's _test.go files (in-package and
	// external), parsed but not type-checked; the oraclepair rule and
	// the suppression scanner read them syntactically.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
	// TypeErrors collects type-check diagnostics. The suite analyses
	// what it can regardless: the repo gates `go vet` before osclint,
	// so real breakage surfaces there first.
	TypeErrors []error
}

// IsInternal reports whether the package lives under internal/ — the
// scope of the determinism and oracle-pair conventions.
func (p *Package) IsInternal() bool {
	return strings.Contains(p.Path, "/internal/") || strings.HasSuffix(p.Path, "/internal")
}

// IsCmd reports whether the package is a command under cmd/.
func (p *Package) IsCmd() bool {
	return strings.Contains(p.Path, "/cmd/")
}

// Loader parses and type-checks module packages with the standard
// library resolved from $GOROOT/src via go/importer's source importer —
// no go/packages, no x/tools, no export data needed. Loaded packages
// are cached, so a ./... walk type-checks each package once.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModRoot string
	std     types.Importer
	pkgs    map[string]*Package // by directory
	imports map[string]*types.Package
	loading map[string]bool
}

// NewLoader reads the module path from root's go.mod and returns a
// ready Loader.
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModRoot: root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		imports: map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

func modulePath(gomod string) (string, error) {
	buf, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(buf), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Import implements types.Importer: module-local paths load from the
// module tree, everything else from the standard library source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.imports[path]; ok {
		return p, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		if l.loading[path] {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		p, err := l.Load(filepath.Join(l.ModRoot, rel))
		if err != nil {
			return nil, err
		}
		if p == nil || p.Types == nil {
			return nil, fmt.Errorf("lint: no package in %s", rel)
		}
		l.imports[path] = p.Types
		return p.Types, nil
	}
	p, err := l.std.Import(path)
	if err == nil {
		l.imports[path] = p
	}
	return p, err
}

// Load parses and type-checks the package in dir. It returns (nil,
// nil) when the directory holds no non-test Go files. Results are
// cached per directory.
func (l *Loader) Load(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if p, ok := l.pkgs[dir]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	p := &Package{
		Path: l.importPath(dir),
		Dir:  dir,
		Fset: l.Fset,
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") {
			p.TestFiles = append(p.TestFiles, f)
		} else {
			p.Files = append(p.Files, f)
		}
	}
	if len(p.Files) == 0 {
		l.pkgs[dir] = nil
		return nil, nil
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check never fully fails here: the Error hook swallows
	// diagnostics so Info keeps whatever resolved, and the returned
	// package is usable even when partially broken.
	//osclint:ignore errprop Check's error is the first diagnostic, already collected in TypeErrors by the Error hook
	p.Types, _ = conf.Check(p.Path, l.Fset, p.Files, p.Info)
	l.pkgs[dir] = p
	return p, nil
}

func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// Callee resolves the function object a call invokes, through plain
// identifiers and selectors alike. It returns nil for builtins,
// conversions, and calls the type-checker could not resolve.
func (p *Package) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	obj, _ := p.Info.Uses[id].(*types.Func)
	return obj
}

// CalleeIs reports whether the call invokes pkgPath.name.
func (p *Package) CalleeIs(call *ast.CallExpr, pkgPath, name string) bool {
	obj := p.Callee(call)
	return obj != nil && obj.Name() == name &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsErrorType reports whether t is the predeclared error interface.
func IsErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// Position resolves a node's source position.
func (p *Package) Position(n ast.Node) token.Position {
	return p.Fset.Position(n.Pos())
}

// Findingf builds a Finding anchored at n.
func (p *Package) Findingf(n ast.Node, rule, format string, args ...any) Finding {
	return Finding{Pos: p.Position(n), Rule: rule, Message: fmt.Sprintf(format, args...)}
}
