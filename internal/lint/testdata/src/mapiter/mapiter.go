// Package mapiter is an analyzer fixture: map-iteration order leaking
// into ordered output (the RenderSpectrumASCII bug class), next to
// the collect-then-sort idiom that must pass.
package mapiter

import (
	"fmt"
	"io"
	"sort"
)

// BadWrite renders rows straight out of map order.
func BadWrite(w io.Writer, series map[string]float64) {
	for name, v := range series {
		fmt.Fprintf(w, "%s: %v\n", name, v) // want mapiter
	}
}

// BadAppend collects keys but never sorts them.
func BadAppend(series map[string]float64) []string {
	var names []string
	for name := range series {
		names = append(names, name) // want mapiter
	}
	return names
}

// BadString builds a string in map order.
func BadString(series map[string]float64) string {
	s := ""
	for name := range series {
		s += name // want mapiter
	}
	return s
}

// BadSend leaks map order into a channel.
func BadSend(ch chan string, series map[string]float64) {
	for name := range series {
		ch <- name // want mapiter
	}
}

// GoodCollectSort is the idiom the repo's renderers use: collect,
// sort, then emit.
func GoodCollectSort(w io.Writer, series map[string]float64) {
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s: %v\n", name, series[name])
	}
}

// GoodReduce computes an order-independent reduction.
func GoodReduce(series map[string]float64) float64 {
	max := 0.0
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	return max
}
