// Package ignorebad is an analyzer fixture: suppression directives
// with no reason are themselves findings.
package ignorebad

func emit() error { return nil }

// BadNoReason suppresses without justifying — reported under the
// "ignore" pseudo-rule, and the suppression does not take effect.
func BadNoReason() {
	//osclint:ignore errprop
	_ = emit()
}
