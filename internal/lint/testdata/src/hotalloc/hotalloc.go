// Package hotalloc is an analyzer fixture: per-item allocation inside
// parallel worker bodies, next to the per-worker scratch pattern that
// must pass.
package hotalloc

import (
	"fmt"

	"repro/internal/parallel"
)

// BadPerItem allocates and formats once per item.
func BadPerItem(n int) []string {
	out := make([]string, n)
	parallel.For(n, func(i int) {
		buf := make([]byte, 64)       // want hotalloc
		out[i] = fmt.Sprintf("%d", i) // want hotalloc
		var tail []byte
		tail = append(tail, buf[:8]...) // want hotalloc
		_ = tail
	})
	return out
}

// GoodScratch is the ForWorker pattern: one scratch buffer per
// worker, sized before the fan-out.
func GoodScratch(n, workers int) []int {
	if workers < 1 {
		workers = parallel.Workers(n)
	}
	scratch := make([][]byte, workers)
	for w := range scratch {
		scratch[w] = make([]byte, 64)
	}
	out := make([]int, n)
	parallel.ForWorker(n, workers, func(worker, i int) {
		buf := scratch[worker]
		buf[0] = byte(i)
		out[i] = int(buf[0])
	})
	return out
}
